//===- tests/SyntaxTest.cpp - lexer/parser tests --------------------------===//

#include "core/HotelExample.h"
#include "hist/Printer.h"
#include "hist/WellFormed.h"
#include "contract/Compliance.h"
#include "hist/Bisim.h"
#include "lambda/TypeEffect.h"
#include "plan/RequestExtract.h"
#include "policy/Compile.h"
#include "syntax/LambdaParser.h"
#include "syntax/FileParser.h"
#include "syntax/HistParser.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <sstream>

using namespace sus;
using namespace sus::hist;
using namespace sus::syntax;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, TokenizesPunctuationAndIdents) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("foo ( ) { } [ ] ; : , . ? ! % @ * + <+> -> "
                         "< <= > >= == != 42 -7",
                         Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_TRUE(Tokens.front().isIdent("foo"));
  EXPECT_TRUE(Tokens.back().is(TokenKind::Eof));
  // Count specific kinds.
  unsigned Numbers = 0;
  for (const Token &T : Tokens)
    if (T.is(TokenKind::Number))
      ++Numbers;
  EXPECT_EQ(Numbers, 2u);
}

TEST(LexerTest, NegativeNumbers) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("-12", Diags);
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Number, -12);
}

TEST(LexerTest, CommentsAreSkipped) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("a // comment + ; {\n# another\nb", Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_TRUE(Tokens[0].isIdent("a"));
  EXPECT_TRUE(Tokens[1].isIdent("b"));
}

TEST(LexerTest, TracksLineAndColumn) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("a\n  b", Diags);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
}

TEST(LexerTest, StrayCharacterIsReported) {
  DiagnosticEngine Diags;
  tokenize("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, PartialMultiCharOperatorsDecompose) {
  DiagnosticEngine Diags;
  // "<+" without ">" is '<' then '+'; "a!=b" is ident, '!=', ident.
  auto T1 = tokenize("<+", Diags);
  ASSERT_EQ(T1.size(), 3u);
  EXPECT_TRUE(T1[0].is(TokenKind::Lt));
  EXPECT_TRUE(T1[1].is(TokenKind::Plus));

  auto T2 = tokenize("a!=b", Diags);
  ASSERT_EQ(T2.size(), 4u);
  EXPECT_TRUE(T2[1].is(TokenKind::Ne));
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, LoneMinusIsStray) {
  DiagnosticEngine Diags;
  tokenize("a - b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, Int64BoundaryLiteralsScanExactly) {
  DiagnosticEngine Diags;
  auto Max = tokenize("9223372036854775807", Diags);
  ASSERT_EQ(Max.size(), 2u);
  EXPECT_EQ(Max[0].Number, std::numeric_limits<int64_t>::max());
  auto Min = tokenize("-9223372036854775807", Diags);
  ASSERT_EQ(Min.size(), 2u);
  EXPECT_EQ(Min[0].Number, -std::numeric_limits<int64_t>::max());
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, OverflowingLiteralIsDiagnosedNotWrapped) {
  // Regression: the scan used to accumulate N = N*10 + digit unchecked —
  // signed-overflow UB on anything past INT64_MAX.
  for (const char *Src :
       {"9223372036854775808", "99999999999999999999999999999999999999"}) {
    DiagnosticEngine Diags;
    auto Tokens = tokenize(Src, Diags);
    EXPECT_TRUE(Diags.hasErrors()) << Src;
    // The bad literal is dropped, not emitted with a wrapped value.
    ASSERT_EQ(Tokens.size(), 1u) << Src;
    EXPECT_TRUE(Tokens[0].is(TokenKind::Eof));
    EXPECT_NE(Diags.diagnostics().front().Message.find(
                  "number literal out of range"),
              std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Expression parser
//===----------------------------------------------------------------------===//

class HistParserTest : public ::testing::Test {
protected:
  HistContext Ctx;

  const Expr *parse(std::string_view Src) {
    DiagnosticEngine Diags;
    const Expr *E = parseHistExpr(Ctx, Src, Diags);
    if (!E) {
      std::ostringstream OS;
      Diags.print(OS);
      ADD_FAILURE() << "parse failed for '" << Src << "':\n" << OS.str();
    }
    return E;
  }

  bool fails(std::string_view Src) {
    DiagnosticEngine Diags;
    return parseHistExpr(Ctx, Src, Diags) == nullptr;
  }
};

TEST_F(HistParserTest, ParsesAtoms) {
  EXPECT_EQ(parse("eps"), Ctx.empty());
  EXPECT_EQ(parse("%sgn(s1)"), Ctx.event("sgn", "s1"));
  EXPECT_EQ(parse("%p(45)"), Ctx.event("p", 45));
  EXPECT_EQ(parse("%tick"), Ctx.event("tick"));
}

TEST_F(HistParserTest, ParsesPrefixAndSeq) {
  EXPECT_EQ(parse("a! . b?"),
            Ctx.send("a", Ctx.receive("b", Ctx.empty())));
  EXPECT_EQ(parse("%a; %b; %c"),
            Ctx.seq({Ctx.event("a"), Ctx.event("b"), Ctx.event("c")}));
}

TEST_F(HistParserTest, ParsesChoices) {
  const Expr *Ext = parse("CoBo? . Pay! + NoAv?");
  EXPECT_EQ(Ext, Ctx.extChoice({
                     {CommAction::input(Ctx.symbol("CoBo")),
                      Ctx.send("Pay", Ctx.empty())},
                     {CommAction::input(Ctx.symbol("NoAv")), Ctx.empty()},
                 }));
  const Expr *Int = parse("Bok! <+> UnA!");
  EXPECT_EQ(Int->kind(), ExprKind::IntChoice);
}

TEST_F(HistParserTest, ChoiceDistributesTrailingSequence) {
  // (a? . %x); %y + b? == a?.(%x;%y) + b?.
  const Expr *E = parse("(a? . %x); %y + b?");
  const Expr *Expected = Ctx.extChoice({
      {CommAction::input(Ctx.symbol("a")),
       Ctx.seq(Ctx.event("x"), Ctx.event("y"))},
      {CommAction::input(Ctx.symbol("b")), Ctx.empty()},
  });
  EXPECT_EQ(E, Expected);
}

TEST_F(HistParserTest, RejectsMixedChoices) {
  EXPECT_TRUE(fails("a? <+> b?"));
  EXPECT_TRUE(fails("a! + b!"));
  EXPECT_TRUE(fails("a? + b!"));
}

TEST_F(HistParserTest, RejectsUnguardedChoiceOperand) {
  EXPECT_TRUE(fails("%e + a?"));
  EXPECT_TRUE(fails("eps + a?"));
}

TEST_F(HistParserTest, ParsesMu) {
  EXPECT_EQ(parse("mu h . a! . h"),
            Ctx.mu("h", Ctx.send("a", Ctx.var("h"))));
}

TEST_F(HistParserTest, ParsesRequestAndFraming) {
  const Expr *R = parse("open 1 @ phi({s1},45,100) { Req! }");
  ASSERT_EQ(R->kind(), ExprKind::Request);
  const auto *Req = cast<RequestExpr>(R);
  EXPECT_EQ(Req->request(), 1u);
  EXPECT_EQ(Req->policy().Args.size(), 3u);

  const Expr *F = parse("phi(1)[ %e ]");
  EXPECT_EQ(F->kind(), ExprKind::Framing);

  const Expr *Trivial = parse("open 2 { a! }");
  EXPECT_TRUE(cast<RequestExpr>(Trivial)->policy().isTrivial());
}

TEST_F(HistParserTest, ParsesMarkers) {
  EXPECT_EQ(parse("close 3")->kind(), ExprKind::CloseMark);
  EXPECT_EQ(parse("fopen phi")->kind(), ExprKind::FrameOpen);
  EXPECT_EQ(parse("fclose phi")->kind(), ExprKind::FrameClose);
}

TEST_F(HistParserTest, RejectsTrailingInput) {
  EXPECT_TRUE(fails("eps eps"));
  EXPECT_TRUE(fails("%a %b"));
}

TEST_F(HistParserTest, PolicyRefSetsAreCanonicalized) {
  const Expr *A = parse("open 1 @ phi({s2,s1},1,2) { a! }");
  const Expr *B = parse("open 1 @ phi({s1,s2},1,2) { a! }");
  EXPECT_EQ(A, B);
}

//===----------------------------------------------------------------------===//
// Print/parse round-trip (property over a family of expressions)
//===----------------------------------------------------------------------===//

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, PrintThenParseIsIdentity) {
  HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  std::vector<const Expr *> Family = {
      Ctx.empty(),
      Ctx.event("sgn", "s1"),
      Ctx.event("p", 45),
      Ex.C1,
      Ex.C2,
      Ex.Br,
      Ex.S1,
      Ex.S2,
      Ex.S3,
      Ex.S4,
      Ctx.mu("h", Ctx.send("a", Ctx.seq(Ctx.event("e"), Ctx.var("h")))),
      Ctx.seq(Ctx.framing(Ex.Phi1, Ctx.event("x")), Ctx.event("y")),
      Ctx.request(9, Ex.Phi2,
                  Ctx.send("a", Ctx.extChoice(
                                    {{CommAction::input(Ctx.symbol("u")),
                                      Ctx.empty()},
                                     {CommAction::input(Ctx.symbol("v")),
                                      Ctx.event("w", 3)}}))),
      Ctx.seq(Ctx.closeMark(4, Ex.Phi1), Ctx.frameClose(Ex.Phi1)),
  };
  int I = GetParam();
  ASSERT_LT(static_cast<size_t>(I), Family.size());
  const Expr *E = Family[I];
  std::string Printed = print(Ctx, E);
  DiagnosticEngine Diags;
  const Expr *Reparsed = parseHistExpr(Ctx, Printed, Diags);
  std::ostringstream OS;
  Diags.print(OS);
  ASSERT_NE(Reparsed, nullptr) << "printed: " << Printed << "\n" << OS.str();
  EXPECT_EQ(Reparsed, E) << "printed: " << Printed << "\nreparsed: "
                         << print(Ctx, Reparsed);
}

INSTANTIATE_TEST_SUITE_P(Family, RoundTripTest, ::testing::Range(0, 14));

//===----------------------------------------------------------------------===//
// Random-expression round-trip property
//===----------------------------------------------------------------------===//

/// A random closed, well-formed history expression.
const Expr *randomExpr(HistContext &Ctx, std::mt19937 &Rng, unsigned Depth,
                       unsigned &NextRequest) {
  auto Chan = [&](unsigned I) { return "ch" + std::to_string(I % 4); };
  auto Phi = [&](unsigned I) {
    PolicyRef Ref;
    Ref.Name = Ctx.symbol("phi" + std::to_string(I % 2));
    if (Rng() % 2)
      Ref.Args.push_back({Value::integer(static_cast<int64_t>(Rng() % 10))});
    return Ref;
  };
  if (Depth == 0) {
    switch (Rng() % 3) {
    case 0:
      return Ctx.empty();
    case 1:
      return Ctx.event("ev" + std::to_string(Rng() % 3));
    default:
      return Ctx.event("ev", static_cast<int64_t>(Rng() % 100));
    }
  }
  switch (Rng() % 7) {
  case 0:
    return Ctx.seq(randomExpr(Ctx, Rng, Depth - 1, NextRequest),
                   randomExpr(Ctx, Rng, Depth - 1, NextRequest));
  case 1: {
    std::vector<ChoiceBranch> Branches;
    unsigned N = 1 + Rng() % 3;
    for (unsigned I = 0; I < N; ++I)
      Branches.push_back({CommAction::input(Ctx.symbol(Chan(I))),
                          randomExpr(Ctx, Rng, Depth - 1, NextRequest)});
    return Ctx.extChoice(std::move(Branches));
  }
  case 2: {
    std::vector<ChoiceBranch> Branches;
    unsigned N = 1 + Rng() % 3;
    for (unsigned I = 0; I < N; ++I)
      Branches.push_back({CommAction::output(Ctx.symbol(Chan(I))),
                          randomExpr(Ctx, Rng, Depth - 1, NextRequest)});
    return Ctx.intChoice(std::move(Branches));
  }
  case 3:
    return Ctx.framing(Phi(Rng()),
                       randomExpr(Ctx, Rng, Depth - 1, NextRequest));
  case 4:
    return Ctx.request(NextRequest++, Phi(Rng()),
                       randomExpr(Ctx, Rng, Depth - 1, NextRequest));
  case 5: {
    // µh. guard.(h | tail): guarded, tail-recursive by construction.
    const Expr *Tail =
        Rng() % 2 ? Ctx.var("h")
                  : randomExpr(Ctx, Rng, Depth - 1, NextRequest);
    CommAction Guard = Rng() % 2 ? CommAction::input(Ctx.symbol(Chan(Rng())))
                                 : CommAction::output(Ctx.symbol(Chan(Rng())));
    return Ctx.mu("h", Ctx.prefix(Guard, Tail));
  }
  default:
    return randomExpr(Ctx, Rng, Depth - 1, NextRequest);
  }
}

class RandomExprTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomExprTest, PrintParseRoundTrips) {
  HistContext Ctx;
  std::mt19937 Rng(GetParam());
  unsigned NextRequest = 1;
  const Expr *E = randomExpr(Ctx, Rng, 5, NextRequest);
  std::string Printed = print(Ctx, E);
  DiagnosticEngine Diags;
  const Expr *Reparsed = parseHistExpr(Ctx, Printed, Diags);
  std::ostringstream OS;
  Diags.print(OS);
  ASSERT_NE(Reparsed, nullptr) << Printed << "\n" << OS.str();
  EXPECT_EQ(Reparsed, E) << Printed;
}

TEST_P(RandomExprTest, RandomExprsAreWellFormed) {
  HistContext Ctx;
  std::mt19937 Rng(GetParam() + 10000);
  unsigned NextRequest = 1;
  const Expr *E = randomExpr(Ctx, Rng, 5, NextRequest);
  EXPECT_TRUE(Ctx.isClosed(E));
  EXPECT_TRUE(hist::isWellFormed(Ctx, E)) << print(Ctx, E);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprTest, ::testing::Range(0u, 25u));

//===----------------------------------------------------------------------===//
// Robustness: random garbage must never crash a parser
//===----------------------------------------------------------------------===//

class ParserFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzzTest, GarbageInputIsHandledGracefully) {
  std::mt19937 Rng(GetParam());
  // A soup biased toward the DSL's own tokens.
  const std::vector<std::string> Pieces = {
      "open",  "close", "mu",    "policy", "service", "client", "plan",
      "{",     "}",     "(",     ")",      "[",       "]",      ";",
      ".",     "?",     "!",     "+",      "<+>",     "->",     "%",
      "@",     "*",     "when",  "in",     "not",     "and",    "eps",
      "x",     "42",    "-7",    ",",      ":",       "rec",    "jump",
      "snd",   "rcv",   "req",   "frame",  "select",  "branch", "fun",
      "if",    "then",  "else",  "unit",   "$",       "==",     "<=",
  };
  for (int Round = 0; Round < 20; ++Round) {
    std::string Input;
    unsigned Len = Rng() % 30;
    for (unsigned I = 0; I < Len; ++I) {
      Input += Pieces[Rng() % Pieces.size()];
      Input += " ";
    }
    // None of these may crash; errors are fine.
    {
      HistContext Ctx;
      DiagnosticEngine Diags;
      const Expr *E = parseHistExpr(Ctx, Input, Diags);
      if (!E) {
        EXPECT_TRUE(Diags.hasErrors()) << Input;
      }
    }
    {
      HistContext Ctx;
      lambda::LambdaContext L(Ctx);
      DiagnosticEngine Diags;
      (void)parseLambdaTerm(L, Input, Diags);
    }
    {
      HistContext Ctx;
      DiagnosticEngine Diags;
      (void)parseSusFile(Ctx, Input, Diags);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0u, 10u));

//===----------------------------------------------------------------------===//
// File parser
//===----------------------------------------------------------------------===//

const char *HotelSus = R"(
// The paper's Fig. 1 policy.
policy phi(bl: set, p: int, t: int) {
  start q1;
  offending q6;
  q1 -> q2 on sgn(x) when x not in bl;
  q1 -> q6 on sgn(x) when x in bl;
  q2 -> q3 on p(y) when y <= p;
  q2 -> q4 on p(y) when y > p;
  q4 -> q5 on ta(z) when z >= t;
  q4 -> q6 on ta(z) when z < t;
  q3 -> q3 on *;
  q5 -> q5 on *;
  q6 -> q6 on *;
}

service br {
  Req? . (open 3 { IdC! . (Bok? + UnA?) }; (CoBo! . Pay? <+> NoAv!))
}
service s1 { %sgn(s1); %p(45); %ta(80); IdC? . (Bok! <+> UnA!) }
service s3 { %sgn(s3); %p(90); %ta(100); IdC? . (Bok! <+> UnA!) }

client c1 {
  open 1 @ phi({s1},45,100) { Req! . (CoBo? . Pay! + NoAv?) }
}

plan pi1 for c1 { 1 -> br; 3 -> s3; }
)";

TEST(FileParserTest, ParsesTheHotelFile) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(Ctx, HotelSus, Diags);
  std::ostringstream OS;
  Diags.print(OS);
  ASSERT_TRUE(File.has_value()) << OS.str();

  EXPECT_EQ(File->Repo.size(), 3u);
  EXPECT_EQ(File->Clients.size(), 1u);
  EXPECT_EQ(File->Plans.size(), 1u);
  EXPECT_NE(File->Registry.find(Ctx.symbol("phi")), nullptr);

  const syntax::PlanDecl *Pi1 = File->findPlan(Ctx.symbol("pi1"));
  ASSERT_NE(Pi1, nullptr);
  EXPECT_EQ(*Pi1->Pi.lookup(1), Ctx.symbol("br"));
  EXPECT_EQ(*Pi1->Pi.lookup(3), Ctx.symbol("s3"));
}

TEST(FileParserTest, ParsedPolicyMatchesPrelude) {
  // The parsed phi must give the same verdicts as the hand-built Fig. 1
  // automaton on characteristic traces.
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(Ctx, HotelSus, Diags);
  ASSERT_TRUE(File.has_value());

  core::HotelExample Ex = core::makeHotelExample(Ctx);
  auto ParsedInst =
      File->Registry.instantiate(Ex.Phi1, Ctx.interner(), &Diags);
  auto BuiltInst =
      Ex.Registry.instantiate(Ex.Phi1, Ctx.interner(), &Diags);
  ASSERT_TRUE(ParsedInst && BuiltInst);

  auto Ev = [&](std::string_view N, Value V) {
    return Event{Ctx.symbol(N), V};
  };
  std::vector<std::vector<Event>> Traces = {
      {Ev("sgn", Value::name(Ctx.symbol("s1")))},
      {Ev("sgn", Value::name(Ctx.symbol("s3"))), Ev("p", Value::integer(90)),
       Ev("ta", Value::integer(100))},
      {Ev("sgn", Value::name(Ctx.symbol("s4"))), Ev("p", Value::integer(50)),
       Ev("ta", Value::integer(90))},
      {Ev("sgn", Value::name(Ctx.symbol("s2"))), Ev("p", Value::integer(10)),
       Ev("ta", Value::integer(0))},
  };
  for (const auto &Trace : Traces)
    EXPECT_EQ(policy::respects(Trace, *ParsedInst),
              policy::respects(Trace, *BuiltInst));
}

TEST(FileParserTest, ParsedPolicyExactlyEquivalentToPrelude) {
  // Stronger than trace sampling: compile both automata over the whole
  // event universe of the example and check DFA language equivalence.
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(Ctx, HotelSus, Diags);
  ASSERT_TRUE(File.has_value());
  core::HotelExample Ex = core::makeHotelExample(Ctx);

  auto Parsed = File->Registry.instantiate(Ex.Phi1, Ctx.interner());
  auto Built = Ex.Registry.instantiate(Ex.Phi1, Ctx.interner());
  ASSERT_TRUE(Parsed && Built);

  std::vector<hist::Event> Universe = policy::eventUniverse(
      {Ex.S1, Ex.S2, Ex.S3, Ex.S4});
  EXPECT_FALSE(Universe.empty());
  EXPECT_TRUE(policy::equivalentOn(*Parsed, *Built, Universe));
}

TEST(FileParserTest, ParsedClientMatchesFixture) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(Ctx, HotelSus, Diags);
  ASSERT_TRUE(File.has_value());
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  const Expr *C1 = File->findClient(Ctx.symbol("c1"));
  ASSERT_NE(C1, nullptr);
  EXPECT_EQ(C1, Ex.C1); // Same hash-consed node.
  EXPECT_EQ(File->Repo.find(Ctx.symbol("br")), Ex.Br);
  EXPECT_EQ(File->Repo.find(Ctx.symbol("s3")), Ex.S3);
}

TEST(FileParserTest, RejectsIllFormedService) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(Ctx, "service bad { mu h . h }", Diags);
  EXPECT_FALSE(File.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(FileParserTest, RejectsFreeVariables) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(Ctx, "service bad { a! . k }", Diags);
  EXPECT_FALSE(File.has_value());
}

TEST(FileParserTest, RejectsArityMismatchedGuard) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(
      Ctx, "policy p() { q0 -> q0 on e(x) when x in nosuch; }", Diags);
  EXPECT_FALSE(File.has_value());
}

TEST(FileParserTest, RejectsGuardVarMismatch) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(
      Ctx, "policy p(s: set) { q0 -> q0 on e(x) when y in s; }", Diags);
  EXPECT_FALSE(File.has_value());
}

//===----------------------------------------------------------------------===//
// λ term parser
//===----------------------------------------------------------------------===//

class LambdaParserTest : public ::testing::Test {
protected:
  LambdaParserTest() : L(Ctx) {}

  const lambda::Term *parse(std::string_view Src) {
    DiagnosticEngine Diags;
    const lambda::Term *T = parseLambdaTerm(L, Src, Diags);
    if (!T) {
      std::ostringstream OS;
      Diags.print(OS);
      ADD_FAILURE() << "parse failed for '" << Src << "':\n" << OS.str();
    }
    return T;
  }

  bool fails(std::string_view Src) {
    DiagnosticEngine Diags;
    return parseLambdaTerm(L, Src, Diags) == nullptr;
  }

  /// Parses and effect-extracts in one go.
  const Expr *effectOf(std::string_view Src) {
    const lambda::Term *T = parse(Src);
    if (!T)
      return nullptr;
    DiagnosticEngine Diags;
    lambda::EffectSystem ES(L, Diags);
    auto E = ES.inferServiceEffect(T);
    if (!E) {
      std::ostringstream OS;
      Diags.print(OS);
      ADD_FAILURE() << "effect extraction failed for '" << Src << "':\n"
                    << OS.str();
      return nullptr;
    }
    return *E;
  }

  HistContext Ctx;
  lambda::LambdaContext L;
};

TEST_F(LambdaParserTest, ParsesAtoms) {
  EXPECT_EQ(parse("unit")->kind(), lambda::TermKind::Unit);
  EXPECT_EQ(parse("true")->kind(), lambda::TermKind::BoolLit);
  EXPECT_EQ(parse("%sgn(s1)")->kind(), lambda::TermKind::Event);
  EXPECT_EQ(parse("snd Ping")->kind(), lambda::TermKind::Send);
  EXPECT_EQ(parse("rcv Pong")->kind(), lambda::TermKind::Recv);
}

TEST_F(LambdaParserTest, ParsesSeqAndApplication) {
  const lambda::Term *T = parse("snd a; rcv b");
  EXPECT_EQ(T->kind(), lambda::TermKind::Seq);
  const lambda::Term *App = parse("(fun (x: unit) . %e) unit");
  EXPECT_EQ(App->kind(), lambda::TermKind::App);
}

TEST_F(LambdaParserTest, ParsesControlForms) {
  EXPECT_EQ(parse("if true then %a else %a")->kind(),
            lambda::TermKind::If);
  EXPECT_EQ(parse("select { a -> unit, b -> unit }")->kind(),
            lambda::TermKind::Select);
  EXPECT_EQ(parse("branch { a -> unit }")->kind(),
            lambda::TermKind::Branch);
  EXPECT_EQ(parse("rec h { snd a; jump h }")->kind(),
            lambda::TermKind::Rec);
  EXPECT_EQ(parse("req 3 { snd IdC }")->kind(),
            lambda::TermKind::Request);
  EXPECT_EQ(parse("frame phi(1) { %e }")->kind(),
            lambda::TermKind::Framing);
}

TEST_F(LambdaParserTest, RejectsMalformedTerms) {
  EXPECT_TRUE(fails("fun x . unit"));    // Missing parens/annotation.
  EXPECT_TRUE(fails("if true then unit")); // Missing else.
  EXPECT_TRUE(fails("select { }"));
  EXPECT_TRUE(fails("jump"));
  EXPECT_TRUE(fails("rec { unit }"));
  EXPECT_TRUE(fails("unit unit unit trailing +"));
}

TEST_F(LambdaParserTest, ExtractedEffectMatchesHandWritten) {
  const Expr *E = effectOf("%sgn(s3); rcv IdC; select { Bok -> unit, "
                           "UnA -> unit }");
  ASSERT_NE(E, nullptr);
  const Expr *Hand = Ctx.seq(
      {Ctx.event("sgn", "s3"), Ctx.receive("IdC", Ctx.empty()),
       Ctx.intChoice({{CommAction::output(Ctx.symbol("Bok")), Ctx.empty()},
                      {CommAction::output(Ctx.symbol("UnA")),
                       Ctx.empty()}})});
  EXPECT_EQ(E, Hand);
}

TEST_F(LambdaParserTest, ApplicationReleasesLatentEffectFromSurface) {
  const Expr *E = effectOf("(fun (x: unit) . %late) (%early; unit)");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E, Ctx.seq(Ctx.event("early"), Ctx.event("late")));
}

//===----------------------------------------------------------------------===//
// program declarations in .sus files
//===----------------------------------------------------------------------===//

TEST(FileParserTest, ProgramDeclarationsAreEffectExtracted) {
  const char *Src = R"(
    program service echo {
      rec h { rcv Ping; snd Pong; jump h }
    }
    program client user {
      req 1 { snd Ping; rcv Pong }
    }
    plan p for user { 1 -> echo; }
  )";
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(Ctx, Src, Diags);
  std::ostringstream OS;
  Diags.print(OS);
  ASSERT_TRUE(File.has_value()) << OS.str();

  const Expr *Echo = File->Repo.find(Ctx.symbol("echo"));
  ASSERT_NE(Echo, nullptr);
  EXPECT_TRUE(bisimilar(
      Ctx, Echo,
      Ctx.mu("h", Ctx.receive("Ping", Ctx.send("Pong", Ctx.var("h"))))));

  const Expr *User = File->findClient(Ctx.symbol("user"));
  ASSERT_NE(User, nullptr);
  // The λ client and the mirror service are compliant.
  auto Sites = plan::extractRequests(User);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_TRUE(
      contract::checkServiceCompliance(Ctx, Sites[0].body(), Echo)
          .Compliant);
}

TEST(FileParserTest, ProgramTypeErrorsAreRejected) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  // if branches with different effects: the effect system must reject.
  auto File = parseSusFile(
      Ctx, "program client bad { if true then %a else %b }", Diags);
  EXPECT_FALSE(File.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(FileParserTest, ProgramNonTailRecursionRejected) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(
      Ctx, "program client bad { rec h { snd a; jump h; snd b } }", Diags);
  EXPECT_FALSE(File.has_value());
}

TEST(FileParserTest, RejectsDuplicatePlanBinding) {
  // A plan re-binding the same request id would hit Plan::bind's fresh-id
  // precondition; the parser must reject it as a proper diagnostic first.
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File = parseSusFile(Ctx,
                           "service s { a? }\n"
                           "client c { open 1 { a! } }\n"
                           "plan p for c { 1 -> s; 1 -> s; }",
                           Diags);
  EXPECT_FALSE(File.has_value());
  ASSERT_TRUE(Diags.hasErrors());
  std::ostringstream OS;
  Diags.print(OS);
  EXPECT_NE(OS.str().find("already bound"), std::string::npos) << OS.str();
}

TEST(FileParserTest, ReportsUsefulLocations) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  parseSusFile(Ctx, "client c {\n  a! .\n}", Diags);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().front().Loc.Line, 3u);
}

//===----------------------------------------------------------------------===//
// Recursion depth guard (regression: deeply nested input used to ride the
// native stack into a stack-overflow crash; now every parser reports a
// clean "nesting too deep" diagnostic past ParserBase::MaxDepth).
//===----------------------------------------------------------------------===//

std::string nested(const std::string &Core, unsigned Levels) {
  std::string Out;
  for (unsigned I = 0; I < Levels; ++I)
    Out += "(";
  Out += Core;
  for (unsigned I = 0; I < Levels; ++I)
    Out += ")";
  return Out;
}

bool diagsSayTooDeep(const DiagnosticEngine &Diags) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Message.find("nesting too deep") != std::string::npos)
      return true;
  return false;
}

TEST(DepthGuardTest, HistParserUnderLimitParses) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  // Each paren level costs two depth tickets (expr + prefix), so 100
  // levels sits comfortably under MaxDepth = 256.
  EXPECT_NE(parseHistExpr(Ctx, nested("eps", 100), Diags), nullptr);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(DepthGuardTest, HistParserOverLimitFailsCleanly) {
  HistContext Ctx;
  for (unsigned Levels : {400u, 100000u}) {
    DiagnosticEngine Diags;
    EXPECT_EQ(parseHistExpr(Ctx, nested("eps", Levels), Diags), nullptr);
    EXPECT_TRUE(diagsSayTooDeep(Diags)) << Levels << " levels";
  }
}

TEST(DepthGuardTest, PrefixChainsHitTheSameLimit) {
  HistContext Ctx;
  DiagnosticEngine DiagsOk;
  std::string Ok;
  for (unsigned I = 0; I < 120; ++I)
    Ok += "a?.";
  EXPECT_NE(parseHistExpr(Ctx, Ok + "eps", DiagsOk), nullptr);
  EXPECT_FALSE(DiagsOk.hasErrors());

  DiagnosticEngine DiagsDeep;
  std::string Deep;
  for (unsigned I = 0; I < 5000; ++I)
    Deep += "a?.";
  EXPECT_EQ(parseHistExpr(Ctx, Deep + "eps", DiagsDeep), nullptr);
  EXPECT_TRUE(diagsSayTooDeep(DiagsDeep));
}

TEST(DepthGuardTest, LongFlatSpinesAreNotLimited) {
  // Flat ';' chains parse iteratively, and distributing a choice guard
  // over an already-parsed seq spine walks it iteratively too — neither
  // may trip the depth guard nor the native stack.
  HistContext Ctx;
  DiagnosticEngine Diags;
  std::string Spine = "a?.%e";
  for (unsigned I = 0; I < 1500; ++I)
    Spine += "; %e";
  EXPECT_NE(parseHistExpr(Ctx, Spine + " + b?.eps", Diags), nullptr);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(DepthGuardTest, LambdaParserOverLimitFailsCleanly) {
  HistContext Ctx;
  lambda::LambdaContext L(Ctx);
  DiagnosticEngine DiagsOk;
  EXPECT_NE(parseLambdaTerm(L, nested("unit", 100), DiagsOk), nullptr);
  EXPECT_FALSE(DiagsOk.hasErrors());
  DiagnosticEngine DiagsDeep;
  EXPECT_EQ(parseLambdaTerm(L, nested("unit", 600), DiagsDeep), nullptr);
  EXPECT_TRUE(diagsSayTooDeep(DiagsDeep));
}

TEST(DepthGuardTest, FileParserBehaviorsAreGuardedToo) {
  HistContext Ctx;
  DiagnosticEngine Diags;
  auto File =
      parseSusFile(Ctx, "service s { " + nested("eps", 600) + " }", Diags);
  EXPECT_FALSE(File.has_value());
  EXPECT_TRUE(diagsSayTooDeep(Diags));
}

} // namespace
