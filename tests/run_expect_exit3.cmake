# Asserts the Inconclusive(resource) CLI contract, which ctest's plain
# pass/fail model cannot express: a susc run whose resource budgets trip
# must exit with code 3 exactly (not merely nonzero) and print an explicit
# Inconclusive verdict. The deadline is armed too, but the 1-state product
# budget is what guarantees the trip deterministically on any machine.
#
# Usage: cmake -DSUSC=<susc> -DINPUT=<file.sus> -P run_expect_exit3.cmake
execute_process(
  COMMAND ${SUSC} --deadline-ms 1 --max-product-states 1
          --diag-format=json ${INPUT}
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 3)
  message(FATAL_ERROR
          "expected exit code 3 (inconclusive), got '${CODE}'\n"
          "stdout:\n${OUT}\nstderr:\n${ERR}")
endif()
string(FIND "${OUT}" "Inconclusive" POS)
if(POS EQUAL -1)
  message(FATAL_ERROR "no Inconclusive verdict in output:\n${OUT}")
endif()
