//===- tests/PipelineTest.cpp - Parallel verification pipeline tests ------===//
///
/// \file
/// Covers the pieces the parallel, memoized §5 pipeline is built from —
/// the work-stealing ThreadPool, interner seeding, cross-context expression
/// cloning — and its end-to-end guarantees: parallel and serial runs
/// produce element-wise identical reports (witnesses included), repeated
/// verification is answered from the VerifierCache, and memoized verdicts
/// keep their witnesses.
///
//===----------------------------------------------------------------------===//

#include "core/HotelExample.h"
#include "core/Verifier.h"
#include "hist/Clone.h"
#include "hist/Printer.h"
#include "plan/PlanEnumerator.h"
#include "plan/RequestExtract.h"
#include "policy/Prelude.h"
#include "support/Metrics.h"
#include "support/ResourceGovernor.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

using namespace sus;
using namespace sus::core;
using namespace sus::hist;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, EveryTaskRunsExactlyOnce) {
  ThreadPool Pool(4);
  constexpr unsigned N = 256;
  std::vector<std::atomic<unsigned>> Runs(N);
  for (unsigned I = 0; I < N; ++I)
    Pool.submit([&Runs, I](unsigned) { Runs[I]++; });
  Pool.waitIdle();
  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(Runs[I].load(), 1u) << "task " << I;
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool Pool(3);
  ASSERT_EQ(Pool.numWorkers(), 3u);
  std::atomic<bool> OutOfRange{false};
  for (unsigned I = 0; I < 64; ++I)
    Pool.submit([&](unsigned Worker) {
      if (Worker >= 3)
        OutOfRange = true;
    });
  Pool.waitIdle();
  EXPECT_FALSE(OutOfRange.load());
}

TEST(ThreadPoolTest, PoolIsReusableAfterWaitIdle) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Count{0};
  for (unsigned Round = 0; Round < 3; ++Round) {
    for (unsigned I = 0; I < 32; ++I)
      Pool.submit([&](unsigned) { Count++; });
    Pool.waitIdle();
    EXPECT_EQ(Count.load(), 32u * (Round + 1));
  }
}

TEST(ThreadPoolTest, ZeroRequestedWidthStillGetsOneWorker) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numWorkers(), 1u);
  std::atomic<bool> Ran{false};
  Pool.submit([&](unsigned) { Ran = true; });
  Pool.waitIdle();
  EXPECT_TRUE(Ran.load());
}

TEST(ThreadPoolTest, DestructionRunsTheQueuedBacklog) {
  // Far more tasks than workers, destroyed without waitIdle: the
  // destructor's drain must *run* every queued-but-unstarted task, never
  // silently drop it.
  constexpr unsigned N = 128;
  std::vector<std::atomic<unsigned>> Runs(N);
  {
    ThreadPool Pool(2);
    // Hold both workers at a gate so most of the N tasks are still queued
    // when destruction starts.
    std::atomic<bool> Gate{false};
    for (unsigned W = 0; W < 2; ++W)
      Pool.submit([&Gate](unsigned) {
        while (!Gate.load())
          std::this_thread::yield();
      });
    for (unsigned I = 0; I < N; ++I)
      Pool.submit([&Runs, I](unsigned) { Runs[I]++; });
    Gate = true;
  }
  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(Runs[I].load(), 1u) << "task " << I;
}

TEST(ThreadPoolTest, CancelPendingDiscardsOnlyUnstartedTasks) {
  ThreadPool Pool(2);
  std::atomic<bool> Gate{false};
  std::atomic<unsigned> Started{0}, Ran{0};
  for (unsigned W = 0; W < 2; ++W)
    Pool.submit([&](unsigned) {
      Started++;
      while (!Gate.load())
        std::this_thread::yield();
      Ran++;
    });
  while (Started.load() < 2)
    std::this_thread::yield();

  // Both workers are busy: everything submitted now stays queued.
  constexpr unsigned Queued = 32;
  for (unsigned I = 0; I < Queued; ++I)
    Pool.submit([&Ran](unsigned) { Ran++; });

  // Instruments record only while the registry is on; turn it on just
  // around the drain so the discard count is observable.
  metrics::enable();
  uint64_t Before = metrics::counter("pool.cancelled").value();
  EXPECT_EQ(Pool.cancelPending(), Queued);
  EXPECT_EQ(metrics::counter("pool.cancelled").value() - Before, Queued);
  metrics::disable();

  // In-flight tasks finish; discarded ones never run; the pool stays
  // usable afterwards.
  Gate = true;
  Pool.waitIdle();
  EXPECT_EQ(Ran.load(), 2u);
  std::atomic<bool> After{false};
  Pool.submit([&After](unsigned) { After = true; });
  Pool.waitIdle();
  EXPECT_TRUE(After.load());
}

//===----------------------------------------------------------------------===//
// Interner seeding and cross-context cloning
//===----------------------------------------------------------------------===//

TEST(InternerSeedTest, SeededInternerPreservesSymbolIds) {
  StringInterner A;
  Symbol X = A.intern("x");
  Symbol Y = A.intern("y");
  Symbol Z = A.intern("z");

  StringInterner B;
  B.seedFrom(A);
  EXPECT_EQ(B.size(), A.size());
  EXPECT_EQ(B.intern("x"), X);
  EXPECT_EQ(B.intern("y"), Y);
  EXPECT_EQ(B.intern("z"), Z);

  // New strings keep interning past the seeded prefix.
  Symbol W = B.intern("w");
  EXPECT_TRUE(W.isValid());
  EXPECT_NE(W, X);
  EXPECT_EQ(B.text(W), "w");
}

TEST(InternerSeedTest, SeedingAnAlignedPrefixIsIdempotent) {
  StringInterner A;
  A.intern("x");
  Symbol Y = A.intern("y");

  // Target already holds an id-aligned prefix of the source.
  StringInterner C;
  C.intern("x");
  C.seedFrom(A);
  EXPECT_EQ(C.intern("y"), Y);
  // Seeding twice is harmless.
  C.seedFrom(A);
  EXPECT_EQ(C.size(), A.size());
}

class PipelineTest : public ::testing::Test {
protected:
  PipelineTest() : Ex(makeHotelExample(Ctx)) {}
  HistContext Ctx;
  HotelExample Ex;
};

TEST_F(PipelineTest, CloneRoundTripsThroughSeededContext) {
  // C2 exercises requests, framings, choices and events in one term.
  HistContext Fresh;
  Fresh.interner().seedFrom(Ctx.interner());
  const Expr *Cloned = cloneExpr(Fresh, Ctx.interner(), Ex.C2);
  ASSERT_NE(Cloned, nullptr);
  EXPECT_EQ(print(Fresh, Cloned), print(Ctx, Ex.C2));

  // Cloning back hash-conses to the identical original node.
  const Expr *Back = cloneExpr(Ctx, Fresh.interner(), Cloned);
  EXPECT_EQ(Back, Ex.C2);
}

//===----------------------------------------------------------------------===//
// Serial-vs-parallel determinism
//===----------------------------------------------------------------------===//

/// Element-wise report equality, down to witness paths, stuck-state
/// pointers (always interned in the main context) and security traces.
void expectReportsEqual(const VerificationReport &S,
                        const VerificationReport &P,
                        const HistContext &Ctx) {
  EXPECT_EQ(S.CandidateCount, P.CandidateCount);
  EXPECT_EQ(S.BindingsTried, P.BindingsTried);
  EXPECT_EQ(S.Truncated, P.Truncated);
  EXPECT_EQ(S.EnumerationExhausted.has_value(),
            P.EnumerationExhausted.has_value());
  ASSERT_EQ(S.Verdicts.size(), P.Verdicts.size());
  for (size_t I = 0; I < S.Verdicts.size(); ++I) {
    const PlanVerdict &A = S.Verdicts[I];
    const PlanVerdict &B = P.Verdicts[I];
    EXPECT_EQ(A.Pi, B.Pi) << "plan " << I;
    ASSERT_EQ(A.RequestChecks.size(), B.RequestChecks.size()) << "plan " << I;
    for (size_t J = 0; J < A.RequestChecks.size(); ++J) {
      const RequestCheck &RA = A.RequestChecks[J];
      const RequestCheck &RB = B.RequestChecks[J];
      EXPECT_EQ(RA.Request, RB.Request);
      EXPECT_EQ(RA.Service, RB.Service);
      EXPECT_EQ(RA.Compliant, RB.Compliant);
      EXPECT_EQ(RA.Exhausted.has_value(), RB.Exhausted.has_value());
      ASSERT_EQ(RA.Witness.has_value(), RB.Witness.has_value());
      if (RA.Witness) {
        EXPECT_EQ(RA.Witness->str(Ctx), RB.Witness->str(Ctx));
        EXPECT_EQ(RA.Witness->ClientStuck, RB.Witness->ClientStuck);
        EXPECT_EQ(RA.Witness->ServerStuck, RB.Witness->ServerStuck);
      }
    }
    EXPECT_EQ(A.Security.Valid, B.Security.Valid) << "plan " << I;
    EXPECT_EQ(A.Security.Failure, B.Security.Failure);
    EXPECT_EQ(A.Security.Policy, B.Security.Policy);
    EXPECT_EQ(A.Security.Request, B.Security.Request);
    EXPECT_EQ(A.Security.Trace, B.Security.Trace) << "plan " << I;
    EXPECT_EQ(A.Security.ExploredStates, B.Security.ExploredStates)
        << "plan " << I;
    EXPECT_EQ(A.Security.HasStuckConfiguration,
              B.Security.HasStuckConfiguration);
    EXPECT_EQ(A.Security.Exhausted.has_value(),
              B.Security.Exhausted.has_value());
    EXPECT_EQ(A.inconclusive(), B.inconclusive()) << "plan " << I;
  }
}

TEST_F(PipelineTest, ParallelReportMatchesSerialOnHotelExample) {
  VerifierOptions Serial;
  Serial.Jobs = 1;
  VerifierOptions Parallel;
  Parallel.Jobs = 4;

  for (const auto &[Client, Loc] :
       {std::pair{Ex.C1, Ex.LC1}, std::pair{Ex.C2, Ex.LC2}}) {
    Verifier VS(Ctx, Ex.Repo, Ex.Registry, Serial);
    Verifier VP(Ctx, Ex.Repo, Ex.Registry, Parallel);
    VerificationReport S = VS.verifyClient(Client, Loc);
    VerificationReport P = VP.verifyClient(Client, Loc);
    expectReportsEqual(S, P, Ctx);
  }
}

TEST_F(PipelineTest, UnhitGovernorKeepsParallelReportsBitForBit) {
  // A governor armed far above what the workload needs must be
  // observationally absent: identical reports at --jobs 8, no
  // inconclusive verdicts, nothing withheld from the cache.
  VerifierOptions Plain;
  Plain.Jobs = 8;
  VerifierOptions Governed;
  Governed.Jobs = 8;
  Governed.Governor = std::make_shared<ResourceGovernor>();
  Governed.Governor->setDeadlineAfterMillis(60000);
  Governed.Governor->setLimit(ResourceKind::SubsetStates, 1u << 20);
  Governed.Governor->setLimit(ResourceKind::ProductStates, 1u << 20);

  for (const auto &[Client, Loc] :
       {std::pair{Ex.C1, Ex.LC1}, std::pair{Ex.C2, Ex.LC2}}) {
    Verifier VA(Ctx, Ex.Repo, Ex.Registry, Plain);
    Verifier VB(Ctx, Ex.Repo, Ex.Registry, Governed);
    VerificationReport A = VA.verifyClient(Client, Loc);
    VerificationReport B = VB.verifyClient(Client, Loc);
    expectReportsEqual(A, B, Ctx);
    EXPECT_FALSE(B.anyInconclusive());
  }
}

TEST_F(PipelineTest, ObservabilityUnderParallelVerificationStaysDeterministic) {
  // Tracing and metrics on, 8 worker shards: the instrumentation must not
  // perturb verdicts (and under TSan this doubles as the race check for
  // the span ring and sharded instruments).
  trace::enable(/*Capacity=*/4096);
  metrics::enable();
  metrics::reset();

  VerifierOptions Serial;
  Serial.Jobs = 1;
  VerifierOptions Parallel;
  Parallel.Jobs = 8;
  Verifier VS(Ctx, Ex.Repo, Ex.Registry, Serial);
  Verifier VP(Ctx, Ex.Repo, Ex.Registry, Parallel);
  VerificationReport S = VS.verifyClient(Ex.C1, Ex.LC1);
  VerificationReport P = VP.verifyClient(Ex.C1, Ex.LC1);
  expectReportsEqual(S, P, Ctx);

  EXPECT_GT(trace::spanCount(), 0u);
  EXPECT_GT(metrics::counter("verifier.plans_checked").value(), 0u);
  EXPECT_GT(metrics::counter("pool.tasks").value(), 0u);

  // Both exports render without crashing and carry their envelope.
  std::ostringstream Trace, Json;
  trace::writeChromeTrace(Trace);
  metrics::writeJson(Json);
  EXPECT_NE(Trace.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.str().find("\"schema\": \"sus-metrics-v1\""),
            std::string::npos);

  trace::disable();
  trace::reset();
  metrics::disable();
  metrics::reset();
}

/// A synthetic workload whose security checks run the policy monitors in
/// the worker shards: every service logs two "evHot" events per call but
/// the client's policy allows at most one, so every plan fails with a
/// PolicyViolation and a counterexample trace the shards must reproduce
/// bit-for-bit.
TEST(PipelineChattyTest, ParallelReportMatchesSerialWithPolicyMonitors) {
  constexpr unsigned Depth = 3, Services = 6, Bad = 2;
  auto Build = [&](HistContext &Ctx, plan::Repository &Repo,
                   policy::PolicyRegistry &Registry) -> const Expr * {
    for (unsigned I = 0; I < Services; ++I) {
      const Expr *E = Ctx.empty();
      for (unsigned D = Depth; D > 0; --D) {
        std::string Answer = (I < Bad && D == Depth)
                                 ? "Quux"
                                 : "q" + std::to_string(D - 1);
        E = Ctx.receive("p" + std::to_string(D - 1), Ctx.send(Answer, E));
        if (D == 1)
          E = Ctx.seq(Ctx.seq(E, Ctx.event("evHot", 0)),
                      Ctx.event("evHot", 1));
      }
      Repo.add(Ctx.symbol("svc" + std::to_string(I)), E);
    }
    Registry.add(policy::makeAtMostPolicy(Ctx.interner(), "phiHot", "evHot",
                                          /*Limit=*/1));
    auto Protocol = [&](HistContext &C) {
      const Expr *E = C.empty();
      for (unsigned D = Depth; D > 0; --D)
        E = C.send("p" + std::to_string(D - 1),
                   C.receive("q" + std::to_string(D - 1), E));
      return E;
    };
    PolicyRef Phi;
    Phi.Name = Ctx.symbol("phiHot");
    return Ctx.seq(Ctx.request(100, Phi, Protocol(Ctx)),
                   Ctx.request(101, PolicyRef(), Protocol(Ctx)));
  };

  std::vector<VerificationReport> Reports;
  std::vector<std::unique_ptr<HistContext>> Ctxs;
  for (unsigned Jobs : {1u, 4u}) {
    Ctxs.push_back(std::make_unique<HistContext>());
    HistContext &Ctx = *Ctxs.back();
    plan::Repository Repo;
    policy::PolicyRegistry Registry;
    const Expr *Client = Build(Ctx, Repo, Registry);
    VerifierOptions Opts;
    Opts.Jobs = Jobs;
    Verifier V(Ctx, Repo, Registry, Opts);
    Reports.push_back(V.verifyClient(Client, Ctx.symbol("c")));
  }
  // Fresh contexts intern the same names in the same order, so symbol ids
  // (and hence plans, traces and rendered witnesses) are comparable.
  expectReportsEqual(Reports[0], Reports[1], *Ctxs[0]);

  // The workload does what it claims: plans exist, none is valid, and the
  // failures are policy violations carrying a trace.
  ASSERT_GT(Reports[0].Verdicts.size(), 1u);
  for (const PlanVerdict &V : Reports[0].Verdicts) {
    EXPECT_FALSE(V.Security.Valid);
    EXPECT_EQ(V.Security.Failure, validity::PlanFailureKind::PolicyViolation);
    EXPECT_FALSE(V.Security.Trace.empty());
  }
}

//===----------------------------------------------------------------------===//
// Cache behaviour
//===----------------------------------------------------------------------===//

TEST_F(PipelineTest, SecondVerificationIsAnsweredFromTheCache) {
  VerifierOptions Opts;
  Opts.Jobs = 2;
  Verifier V(Ctx, Ex.Repo, Ex.Registry, Opts);

  VerificationReport First = V.verifyClient(Ex.C2, Ex.LC2);
  VerifierStats After1 = V.stats();
  EXPECT_GT(After1.ValidityLookups, 0u);
  EXPECT_GT(After1.ComplianceLookups, 0u);

  VerificationReport Second = V.verifyClient(Ex.C2, Ex.LC2);
  VerifierStats After2 = V.stats();

  // Every security verdict of the second pass is a cache hit, and no new
  // compliance products or explorations are built.
  EXPECT_EQ(After2.ValidityHits - After1.ValidityHits,
            Second.Verdicts.size());
  EXPECT_EQ(After2.validityComputes(), After1.validityComputes());
  EXPECT_EQ(After2.complianceComputes(), After1.complianceComputes());

  expectReportsEqual(First, Second, Ctx);
}

TEST_F(PipelineTest, CacheIsSharedAcrossVerifierInstances) {
  Verifier V1(Ctx, Ex.Repo, Ex.Registry);
  (void)V1.verifyClient(Ex.C1, Ex.LC1);
  size_t Computes = V1.stats().validityComputes();
  EXPECT_GT(Computes, 0u);

  // A second verifier over the same session cache re-answers everything.
  Verifier V2(Ctx, Ex.Repo, Ex.Registry, VerifierOptions(), V1.cache());
  (void)V2.verifyClient(Ex.C1, Ex.LC1);
  EXPECT_EQ(V2.stats().validityComputes(), Computes);
}

TEST_F(PipelineTest, NonCompliantWitnessSurvivesMemoization) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);

  // Warm the cache through the boolean pruning interface: request 3 lives
  // in the broker's body and S2 does not comply with it.
  const Expr *Body3 = nullptr;
  for (const plan::RequestSite &Site : plan::extractRequests(Ex.Br))
    if (Site.id() == 3)
      Body3 = Site.body();
  ASSERT_NE(Body3, nullptr);
  EXPECT_FALSE(V.bindingCompliant(Body3, Ex.S2));
  VerifierStats Warm = V.stats();

  // The memoized full verdict still carries the witness, on both the
  // first checkPlan and a repeat. The warmed (Body3, S2) pair is a hit on
  // round 0 (only π2's other pair is new work) and the repeat recomputes
  // nothing at all.
  std::string Rendered;
  size_t Computes = 0;
  for (int Round = 0; Round < 2; ++Round) {
    PlanVerdict Verdict = V.checkPlan(Ex.C2, Ex.LC2, Ex.pi2());
    EXPECT_FALSE(Verdict.compliancePassed());
    bool Saw3 = false;
    for (const RequestCheck &C : Verdict.RequestChecks) {
      if (C.Request != 3)
        continue;
      Saw3 = true;
      EXPECT_FALSE(C.Compliant);
      ASSERT_TRUE(C.Witness.has_value());
      EXPECT_NE(C.Witness->str(Ctx).find("Del"), std::string::npos);
      if (Round == 0)
        Rendered = C.Witness->str(Ctx);
      else
        EXPECT_EQ(C.Witness->str(Ctx), Rendered);
    }
    EXPECT_TRUE(Saw3);
    if (Round == 0) {
      EXPECT_GT(V.stats().ComplianceHits, Warm.ComplianceHits);
      Computes = V.stats().complianceComputes();
    } else {
      EXPECT_EQ(V.stats().complianceComputes(), Computes);
    }
  }
}

//===----------------------------------------------------------------------===//
// Bind/undo plan enumeration
//===----------------------------------------------------------------------===//

/// R echo services and a Q-request echo client: R^Q complete plans.
struct EchoWorld {
  plan::Repository Repo;
  const Expr *Client;

  EchoWorld(HistContext &Ctx, unsigned R, unsigned Q) {
    for (unsigned I = 0; I < R; ++I)
      Repo.add(Ctx.symbol("svc" + std::to_string(I)),
               Ctx.receive("Ping", Ctx.send("Pong", Ctx.empty())));
    std::vector<const Expr *> Parts;
    for (unsigned I = 0; I < Q; ++I)
      Parts.push_back(Ctx.request(
          100 + I, PolicyRef(),
          Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty()))));
    Client = Ctx.seq(Parts);
  }
};

TEST(EnumeratorTest, BindUndoKeepsCountsAndOrder) {
  HistContext Ctx;
  EchoWorld W(Ctx, /*R=*/3, /*Q=*/2);

  plan::EnumerationResult Full = plan::enumeratePlans(W.Client, W.Repo);
  EXPECT_FALSE(Full.Truncated);
  ASSERT_EQ(Full.Plans.size(), 9u); // 3^2
  // Every binding attempt is counted: 3 at the first request, then 3 per
  // branch at the second.
  EXPECT_EQ(Full.BindingsTried, 12u);
  // Emitted plans are complete and pairwise distinct.
  for (size_t I = 0; I < Full.Plans.size(); ++I) {
    EXPECT_TRUE(Full.Plans[I].lookup(100).has_value());
    EXPECT_TRUE(Full.Plans[I].lookup(101).has_value());
    for (size_t J = I + 1; J < Full.Plans.size(); ++J)
      EXPECT_FALSE(Full.Plans[I] == Full.Plans[J]);
  }
}

TEST(EnumeratorTest, TruncationEmitsTheSamePrefix) {
  HistContext Ctx;
  EchoWorld W(Ctx, /*R=*/3, /*Q=*/2);

  plan::EnumerationResult Full = plan::enumeratePlans(W.Client, W.Repo);
  plan::EnumeratorOptions Opts;
  Opts.MaxPlans = 4;
  plan::EnumerationResult Cut = plan::enumeratePlans(W.Client, W.Repo, Opts);
  EXPECT_TRUE(Cut.Truncated);
  ASSERT_EQ(Cut.Plans.size(), 4u);
  for (size_t I = 0; I < Cut.Plans.size(); ++I)
    EXPECT_EQ(Cut.Plans[I], Full.Plans[I]);
  EXPECT_LE(Cut.BindingsTried, Full.BindingsTried);
}

} // namespace
