//===- tests/LambdaTest.cpp - type-and-effect system tests ----------------===//

#include "core/HotelExample.h"
#include "hist/Bisim.h"
#include "hist/Printer.h"
#include "hist/TraceEquiv.h"
#include "hist/WellFormed.h"
#include "lambda/Eval.h"
#include "lambda/TypeEffect.h"

#include <random>

#include <gtest/gtest.h>

#include <sstream>

using namespace sus;
using namespace sus::hist;
using namespace sus::lambda;

namespace {

class LambdaTest : public ::testing::Test {
protected:
  LambdaTest() : L(Hist) {}

  HistContext Hist;
  LambdaContext L;

  std::optional<TypeAndEffect> infer(const lambda::Term *T) {
    Diags.clear();
    EffectSystem ES(L, Diags);
    return ES.infer(T);
  }

  std::optional<const Expr *> service(const lambda::Term *T) {
    Diags.clear();
    EffectSystem ES(L, Diags);
    return ES.inferServiceEffect(T);
  }

  DiagnosticEngine Diags;
};

TEST_F(LambdaTest, UnitAndBoolHaveEmptyEffect) {
  auto R = infer(L.unit());
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->Ty->isUnit());
  EXPECT_TRUE(R->Effect->isEmpty());

  auto B = infer(L.boolLit(true));
  ASSERT_TRUE(B.has_value());
  EXPECT_TRUE(B->Ty->isBool());
}

TEST_F(LambdaTest, EventHasItsEffect) {
  auto R = infer(L.event("sgn", "s1"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Effect, Hist.event("sgn", "s1"));
}

TEST_F(LambdaTest, SeqComposesEffects) {
  auto R = infer(L.seq(L.event("a"), L.event("b")));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Effect, Hist.seq(Hist.event("a"), Hist.event("b")));
}

TEST_F(LambdaTest, UnboundVariableIsReported) {
  EXPECT_FALSE(infer(L.var("x")).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(LambdaTest, LambdaHasLatentEffect) {
  // λx:unit. %e — the event is latent; the abstraction itself is pure.
  auto R = infer(L.lambda("x", L.unitType(), L.event("e")));
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->Effect->isEmpty());
  ASSERT_TRUE(R->Ty->isArrow());
  EXPECT_EQ(R->Ty->latentEffect(), Hist.event("e"));
}

TEST_F(LambdaTest, ApplicationReleasesLatentEffect) {
  const lambda::Term *Fn = L.lambda("x", L.unitType(), L.event("e"));
  auto R = infer(L.app(Fn, L.seq(L.event("pre"), L.unit())));
  ASSERT_TRUE(R.has_value());
  // H_fn (ε) · H_arg (%pre) · latent (%e).
  EXPECT_EQ(R->Effect, Hist.seq(Hist.event("pre"), Hist.event("e")));
}

TEST_F(LambdaTest, ApplicationChecksArgumentType) {
  const lambda::Term *Fn = L.lambda("x", L.boolType(), L.unit());
  EXPECT_FALSE(infer(L.app(Fn, L.unit())).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(LambdaTest, ApplyingNonFunctionIsAnError) {
  EXPECT_FALSE(infer(L.app(L.unit(), L.unit())).has_value());
}

TEST_F(LambdaTest, IfRequiresBoolCondition) {
  EXPECT_FALSE(
      infer(L.ifTerm(L.unit(), L.unit(), L.unit())).has_value());
}

TEST_F(LambdaTest, IfRequiresEqualEffects) {
  // Branches with different effects are rejected (use select instead).
  EXPECT_FALSE(infer(L.ifTerm(L.boolLit(true), L.event("a"), L.event("b")))
                   .has_value());
  // Equal effects are fine.
  auto R = infer(L.ifTerm(L.boolLit(true), L.event("a"), L.event("a")));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Effect, Hist.event("a"));
}

TEST_F(LambdaTest, SendRecvBecomePrefixes) {
  auto S = infer(L.send("ch"));
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Effect, Hist.send("ch", Hist.empty()));
  auto R = infer(L.recv("ch"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Effect, Hist.receive("ch", Hist.empty()));
}

TEST_F(LambdaTest, SelectBecomesInternalChoice) {
  auto R = infer(L.select({L.arm("Bok", L.unit()), L.arm("UnA", L.unit())}));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Effect,
            Hist.intChoice({
                {CommAction::output(Hist.symbol("Bok")), Hist.empty()},
                {CommAction::output(Hist.symbol("UnA")), Hist.empty()},
            }));
}

TEST_F(LambdaTest, BranchBecomesExternalChoice) {
  auto R = infer(L.branch(
      {L.arm("CoBo", L.send("Pay")), L.arm("NoAv", L.unit())}));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Effect->kind(), ExprKind::ExtChoice);
}

TEST_F(LambdaTest, ArmsMustAgreeOnType) {
  EXPECT_FALSE(
      infer(L.select({L.arm("a", L.unit()), L.arm("b", L.boolLit(true))}))
          .has_value());
}

TEST_F(LambdaTest, RequestWrapsEffect) {
  PolicyRef Phi;
  Phi.Name = Hist.symbol("phi");
  auto R = infer(L.request(7, Phi, L.send("Req")));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Effect,
            Hist.request(7, Phi, Hist.send("Req", Hist.empty())));
}

TEST_F(LambdaTest, FramingWrapsEffect) {
  PolicyRef Phi;
  Phi.Name = Hist.symbol("phi");
  auto R = infer(L.framing(Phi, L.event("e")));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Effect, Hist.framing(Phi, Hist.event("e")));
}

TEST_F(LambdaTest, RecJumpBecomesMu) {
  // rec h { send ping; recv pong; jump h }.
  const lambda::Term *Loop = L.rec(
      "h", L.seq(L.send("ping"), L.seq(L.recv("pong"), L.jump("h"))));
  auto R = service(Loop);
  ASSERT_TRUE(R.has_value()) << [&] {
    std::ostringstream OS;
    Diags.print(OS);
    return OS.str();
  }();
  EXPECT_TRUE(isWellFormed(Hist, *R));
  // Bisimilar to the hand-written µh. ping!.pong?.h.
  const Expr *Hand =
      Hist.mu("h", Hist.send("ping", Hist.receive("pong", Hist.var("h"))));
  EXPECT_TRUE(bisimilar(Hist, *R, Hand));
}

TEST_F(LambdaTest, JumpOutsideRecIsAnError) {
  EXPECT_FALSE(infer(L.jump("h")).has_value());
}

TEST_F(LambdaTest, NonTailJumpIsRejectedByServiceCheck) {
  // rec h { send a; jump h; send b } — effect µh.(a!·h·b!), non-tail.
  const lambda::Term *Bad = L.rec(
      "h", L.seq(L.send("a"), L.seq(L.jump("h"), L.send("b"))));
  EXPECT_FALSE(service(Bad).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(LambdaTest, HotelServiceInLambdaMatchesFig2) {
  // S3 written as service code; its extracted effect must be bisimilar to
  // the hand-written Fig. 2 expression.
  core::HotelExample Ex = core::makeHotelExample(Hist);
  const lambda::Term *S3 = L.seq(
      L.event("sgn", "s3"),
      L.seq(L.event("p", int64_t(90)),
            L.seq(L.event("ta", int64_t(100)),
                  L.seq(L.recv("IdC"),
                        L.select({L.arm("Bok", L.unit()),
                                  L.arm("UnA", L.unit())})))));
  auto Effect = service(S3);
  ASSERT_TRUE(Effect.has_value());
  EXPECT_TRUE(bisimilar(Hist, *Effect, Ex.S3))
      << "lambda: " << print(Hist, *Effect)
      << "\nfig2:   " << print(Hist, Ex.S3);
}

//===----------------------------------------------------------------------===//
// Evaluation and effect soundness
//===----------------------------------------------------------------------===//

/// An oracle that always picks arm 0.
class FirstArmOracle : public EvalOracle {
public:
  size_t chooseSelect(const std::vector<Symbol> &) override { return 0; }
  size_t chooseBranch(const std::vector<Symbol> &) override { return 0; }
};

/// A seeded random oracle.
class RandomOracle : public EvalOracle {
public:
  explicit RandomOracle(unsigned Seed) : Rng(Seed) {}
  size_t chooseSelect(const std::vector<Symbol> &Channels) override {
    return Rng() % Channels.size();
  }
  size_t chooseBranch(const std::vector<Symbol> &Channels) override {
    return Rng() % Channels.size();
  }

private:
  std::mt19937 Rng;
};

TEST_F(LambdaTest, EvaluationEmitsLabelsInOrder) {
  const lambda::Term *T = L.seq(
      L.event("a"), L.seq(L.send("ch"), L.event("b", int64_t(7))));
  FirstArmOracle O;
  EvalOutcome Out = evaluate(L, T, O);
  EXPECT_EQ(Out.Status, EvalStatus::Completed);
  ASSERT_EQ(Out.Trace.size(), 3u);
  EXPECT_TRUE(Out.Trace[0].isEvent());
  EXPECT_TRUE(Out.Trace[1].isComm());
  EXPECT_EQ(Out.Trace[2].asEvent().Arg, Value::integer(7));
}

TEST_F(LambdaTest, EvaluationAppliesClosures) {
  const lambda::Term *T =
      L.app(L.lambda("x", L.unitType(), L.event("late")),
            L.seq(L.event("early"), L.unit()));
  FirstArmOracle O;
  EvalOutcome Out = evaluate(L, T, O);
  EXPECT_EQ(Out.Status, EvalStatus::Completed);
  ASSERT_EQ(Out.Trace.size(), 2u);
  EXPECT_EQ(Out.Trace[0].asEvent().Name, Hist.symbol("early"));
  EXPECT_EQ(Out.Trace[1].asEvent().Name, Hist.symbol("late"));
}

TEST_F(LambdaTest, EvaluationFollowsIfValues) {
  const lambda::Term *T =
      L.ifTerm(L.boolLit(false), L.event("a"), L.event("a"));
  FirstArmOracle O;
  EvalOutcome Out = evaluate(L, T, O);
  EXPECT_EQ(Out.Status, EvalStatus::Completed);
  EXPECT_EQ(Out.Trace.size(), 1u);
}

TEST_F(LambdaTest, EvaluationRunsLoopsUntilFuel) {
  const lambda::Term *T = L.rec("h", L.seq(L.send("tick"), L.jump("h")));
  FirstArmOracle O;
  EvalOutcome Out = evaluate(L, T, O, /*Fuel=*/10);
  EXPECT_EQ(Out.Status, EvalStatus::OutOfFuel);
  EXPECT_EQ(Out.Trace.size(), 10u);
}

TEST_F(LambdaTest, EvaluationWrapsSessionsAndFrames) {
  PolicyRef Phi;
  Phi.Name = Hist.symbol("phi");
  const lambda::Term *T =
      L.request(4, Phi, L.framing(Phi, L.event("inside")));
  FirstArmOracle O;
  EvalOutcome Out = evaluate(L, T, O);
  ASSERT_EQ(Out.Trace.size(), 5u);
  EXPECT_TRUE(Out.Trace[0].isOpen());
  EXPECT_EQ(Out.Trace[1].kind(), LabelKind::FrameOpen);
  EXPECT_TRUE(Out.Trace[2].isEvent());
  EXPECT_EQ(Out.Trace[3].kind(), LabelKind::FrameClose);
  EXPECT_TRUE(Out.Trace[4].isClose());
}

//===----------------------------------------------------------------------===//
// Effect soundness on random programs
//===----------------------------------------------------------------------===//

/// A random closed, unit-typed program. Inside a rec, jumps are only
/// placed in tail position so the extracted effect is well-formed.
const lambda::Term *randomProgram(lambda::LambdaContext &L,
                                  std::mt19937 &Rng, unsigned Depth,
                                  unsigned &NextRequest, bool InRec) {
  auto Chan = [&](unsigned I) { return "c" + std::to_string(I % 4); };
  if (Depth == 0) {
    switch (Rng() % 4) {
    case 0:
      return L.unit();
    case 1:
      return L.event("e" + std::to_string(Rng() % 3));
    case 2:
      return L.send(Chan(Rng()));
    default:
      return L.recv(Chan(Rng()));
    }
  }
  switch (Rng() % 8) {
  case 0:
    return L.seq(randomProgram(L, Rng, Depth - 1, NextRequest, InRec),
                 randomProgram(L, Rng, Depth - 1, NextRequest, InRec));
  case 1: {
    // if with *the same* branch twice: well-typed with equal effects.
    const lambda::Term *Branch =
        randomProgram(L, Rng, Depth - 1, NextRequest, InRec);
    return L.ifTerm(L.boolLit(Rng() % 2 == 0), Branch, Branch);
  }
  case 2: {
    unsigned N = 1 + Rng() % 3;
    std::vector<lambda::CommArm> Arms;
    for (unsigned I = 0; I < N; ++I)
      Arms.push_back({L.symbol(Chan(I)),
                      randomProgram(L, Rng, Depth - 1, NextRequest, InRec)});
    return Rng() % 2 ? L.select(std::move(Arms)) : L.branch(std::move(Arms));
  }
  case 3: {
    hist::PolicyRef Phi;
    Phi.Name = L.symbol("phi" + std::to_string(Rng() % 2));
    return L.framing(Phi, randomProgram(L, Rng, Depth - 1, NextRequest,
                                        InRec));
  }
  case 4: {
    // Sessions reset the rec context (a jump may not escape a session).
    hist::PolicyRef Phi;
    return L.request(
        NextRequest++, Phi,
        randomProgram(L, Rng, Depth - 1, NextRequest, /*InRec=*/false));
  }
  case 5: {
    // Application of an immediate unit abstraction.
    const lambda::Term *Body =
        randomProgram(L, Rng, Depth - 1, NextRequest, InRec);
    const lambda::Term *Arg =
        randomProgram(L, Rng, Depth - 1, NextRequest, /*InRec=*/false);
    return L.app(L.lambda("x", L.unitType(), Body), Arg);
  }
  case 6: {
    if (InRec)
      return randomProgram(L, Rng, Depth - 1, NextRequest, InRec);
    // rec loop: guard, then jump or exit in tail position.
    bool Loops = Rng() % 2 == 0;
    const lambda::Term *Tail =
        Loops ? L.jump("r")
              : randomProgram(L, Rng, Depth - 1, NextRequest, false);
    std::vector<lambda::CommArm> Arms = {{L.symbol(Chan(Rng())), Tail}};
    return L.rec("r", Rng() % 2 ? L.select(std::move(Arms))
                                : L.branch(std::move(Arms)));
  }
  default:
    return randomProgram(L, Rng, Depth - 1, NextRequest, InRec);
  }
}

class EffectSoundnessTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EffectSoundnessTest, EmittedTracesBelongToTheExtractedEffect) {
  hist::HistContext Hist;
  lambda::LambdaContext L(Hist);
  std::mt19937 Rng(GetParam());
  unsigned NextRequest = 1;
  const lambda::Term *P = randomProgram(L, Rng, 4, NextRequest, false);

  DiagnosticEngine Diags;
  lambda::EffectSystem ES(L, Diags);
  auto TE = ES.infer(P);
  ASSERT_TRUE(TE.has_value()) << [&] {
    std::ostringstream OS;
    Diags.print(OS);
    return OS.str();
  }();

  for (unsigned Run = 0; Run < 8; ++Run) {
    RandomOracle O(GetParam() * 97 + Run);
    EvalOutcome Out = evaluate(L, P, O, /*Fuel=*/128);
    ASSERT_NE(Out.Status, EvalStatus::Error);
    EXPECT_TRUE(canPerform(Hist, TE->Effect, Out.Trace))
        << "effect: " << print(Hist, TE->Effect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EffectSoundnessTest,
                         ::testing::Range(0u, 30u));

TEST_F(LambdaTest, HotelClientInLambdaMatchesFig2) {
  core::HotelExample Ex = core::makeHotelExample(Hist);
  const lambda::Term *C1 = L.request(
      1, Ex.Phi1,
      L.seq(L.send("Req"),
            L.branch({L.arm("CoBo", L.send("Pay")),
                      L.arm("NoAv", L.unit())})));
  auto Effect = service(C1);
  ASSERT_TRUE(Effect.has_value());
  EXPECT_TRUE(bisimilar(Hist, *Effect, Ex.C1));
}

} // namespace
