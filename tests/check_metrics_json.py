#!/usr/bin/env python3
"""CI check for the susc observability outputs.

Usage: check_metrics_json.py SUSC_BINARY SCHEMA_JSON EXAMPLE_SUS \
           [BENCH_MONITOR] [BENCH_PLANS]

Runs the shipped example through susc five ways and asserts:
  1. `--metrics-out` emits JSON valid against tests/metrics_schema.json
     (the normative sus-metrics-v1 schema);
  2. `--trace-out` emits well-formed Chrome trace_event JSON;
  3. both also work through the `susc lint` subcommand;
  4. stdout/stderr and the exit code are bit-for-bit identical with and
     without the observability flags (the instrumentation may never
     change a verdict);
  5. a deliberately tripped resource budget (`--max-product-states 1`)
     exits 3, prints Inconclusive(resource) verdicts, counts the trip in
     `governor.budget_hits`, and still validates against the schema.

With the optional BENCH_MONITOR argument (the bench_monitor binary), also
smoke-runs the fused-monitor benchmark with `--quick --metrics-out=` and
asserts the emitted JSON validates and actually exercised the monitor:
`monitor.events` > 0 and `monitor.fusions` >= 1.

With the optional BENCH_PLANS argument (the bench_plans binary), also
smoke-runs the plan-search benchmark the same way and asserts the emitted
JSON validates and actually exercised indexed candidate selection:
`plan.index.lookups` > 0 and `plan.enumerator.plans` > 0. The `susc plan`
subcommand is additionally driven with `--metrics-out` (indexed, with one
churn round) and its metrics must validate and count `plan.index.lookups`
and `plan.repair.runs`.

The schema validator is deliberately minimal and self-contained — it
implements exactly the JSON Schema subset the schema file uses (type,
const, required, properties, additionalProperties, items, minimum) so
the check needs nothing beyond the standard library.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg):
    print(f"check_metrics_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(instance, schema, path="$"):
    """Validates the subset of JSON Schema used by metrics_schema.json."""
    if "const" in schema:
        if instance != schema["const"]:
            fail(f"{path}: expected {schema['const']!r}, got {instance!r}")
        return
    ty = schema.get("type")
    if ty == "object":
        if not isinstance(instance, dict):
            fail(f"{path}: expected object, got {type(instance).__name__}")
        for key in schema.get("required", []):
            if key not in instance:
                fail(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                validate(value, props[key], f"{path}.{key}")
            elif isinstance(extra, dict):
                validate(value, extra, f"{path}.{key}")
            elif extra is False:
                fail(f"{path}: unexpected key '{key}'")
    elif ty == "array":
        if not isinstance(instance, list):
            fail(f"{path}: expected array, got {type(instance).__name__}")
        items = schema.get("items")
        if items is not None:
            for i, value in enumerate(instance):
                validate(value, items, f"{path}[{i}]")
    elif ty == "integer":
        if not isinstance(instance, int) or isinstance(instance, bool):
            fail(f"{path}: expected integer, got {instance!r}")
        if "minimum" in schema and instance < schema["minimum"]:
            fail(f"{path}: {instance} below minimum {schema['minimum']}")
    else:
        fail(f"{path}: schema uses unsupported type {ty!r}")


def run(argv):
    return subprocess.run(argv, capture_output=True, text=True)


def check_trace(path):
    trace = json.loads(Path(path).read_text())
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    for i, ev in enumerate(events):
        for key in ("name", "cat", "ph", "pid", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"{path}: traceEvents[{i}] missing '{key}'")
        if ev["ph"] != "X":
            fail(f"{path}: traceEvents[{i}] is not a complete event")
        if ev["dur"] < 0:
            fail(f"{path}: traceEvents[{i}] has negative duration")
    return len(events)


def check_bench_monitor(bench, schema, tmp):
    """The monitor leg: bench_monitor --quick must emit valid metrics
    that show the fused path actually ran."""
    metrics = str(Path(tmp) / "monitor-metrics.json")
    res = run([bench, "--quick", f"--metrics-out={metrics}"])
    if res.returncode != 0:
        fail(f"bench_monitor --quick failed: exit {res.returncode}\n"
             f"{res.stderr}")
    mon = json.loads(Path(metrics).read_text())
    validate(mon, schema)
    counters = mon["counters"]
    if counters.get("monitor.events", 0) <= 0:
        fail("bench_monitor counted no monitor.events")
    if counters.get("monitor.fusions", 0) < 1:
        fail("bench_monitor performed no monitor.fusions")


def check_bench_plans(bench, schema, tmp):
    """The plan-search leg: bench_plans --quick must emit valid metrics
    that show indexed enumeration actually ran."""
    metrics = str(Path(tmp) / "plans-metrics.json")
    res = run([bench, "--quick", f"--metrics-out={metrics}"])
    if res.returncode != 0:
        fail(f"bench_plans --quick failed: exit {res.returncode}\n"
             f"{res.stderr}")
    plans = json.loads(Path(metrics).read_text())
    validate(plans, schema)
    counters = plans["counters"]
    if counters.get("plan.index.lookups", 0) <= 0:
        fail("bench_plans performed no plan.index.lookups")
    if counters.get("plan.enumerator.plans", 0) <= 0:
        fail("bench_plans enumerated no plans")


def check_susc_plan(susc, schema, example, tmp):
    """The `susc plan` leg: an indexed run with one churn round must emit
    valid metrics that count the index and the repair engine."""
    metrics = str(Path(tmp) / "plan-metrics.json")
    res = run([susc, "plan", "--index", "--churn", "1", "--seed", "7",
               "--metrics-out", metrics, example])
    if res.returncode not in (0, 1):
        fail(f"susc plan failed: exit {res.returncode}\n{res.stderr}")
    plan = json.loads(Path(metrics).read_text())
    validate(plan, schema)
    counters = plan["counters"]
    if counters.get("plan.index.lookups", 0) <= 0:
        fail("susc plan --index performed no plan.index.lookups")
    if counters.get("plan.repair.runs", 0) <= 0:
        fail("susc plan --churn performed no plan.repair.runs")


def main():
    if len(sys.argv) not in (4, 5, 6):
        fail(f"usage: {sys.argv[0]} SUSC_BINARY SCHEMA_JSON EXAMPLE_SUS "
             f"[BENCH_MONITOR] [BENCH_PLANS]")
    susc, schema_path, example = sys.argv[1:4]
    bench_monitor = sys.argv[4] if len(sys.argv) >= 5 else None
    bench_plans = sys.argv[5] if len(sys.argv) == 6 else None
    schema = json.loads(Path(schema_path).read_text())

    with tempfile.TemporaryDirectory() as tmp:
        metrics = str(Path(tmp) / "metrics.json")
        trace = str(Path(tmp) / "trace.json")

        # Baseline: no observability flags.
        plain = run([susc, "--jobs", "4", example])

        # Instrumented run: must behave identically on stdout/stderr.
        observed = run([susc, "--jobs", "4", "--metrics-out", metrics,
                        "--trace-out", trace, example])
        if observed.returncode != plain.returncode:
            fail(f"exit code changed: {plain.returncode} -> "
                 f"{observed.returncode}")
        if observed.stdout != plain.stdout or observed.stderr != plain.stderr:
            fail("observability flags changed the tool output")

        validate(json.loads(Path(metrics).read_text()), schema)
        n_events = check_trace(trace)

        # The lint subcommand honours the same flags.
        lint_metrics = str(Path(tmp) / "lint-metrics.json")
        lint_trace = str(Path(tmp) / "lint-trace.json")
        lint = run([susc, "lint", "--metrics-out", lint_metrics,
                    "--trace-out", lint_trace, example])
        if lint.returncode not in (0, 1):
            fail(f"susc lint failed: exit {lint.returncode}\n{lint.stderr}")
        validate(json.loads(Path(lint_metrics).read_text()), schema)
        check_trace(lint_trace)

        # Governor trip: a 1-state product budget is deterministic (unlike
        # a short deadline) and must make the run inconclusive rather than
        # silently wrong — exit 3, an explicit verdict, and a counted trip.
        gov_metrics = str(Path(tmp) / "gov-metrics.json")
        governed = run([susc, "--jobs", "4", "--max-product-states", "1",
                        "--metrics-out", gov_metrics, example])
        if governed.returncode != 3:
            fail(f"tripped budget run: expected exit 3, got "
                 f"{governed.returncode}\n{governed.stderr}")
        if "Inconclusive" not in governed.stdout:
            fail("tripped budget run printed no Inconclusive verdict")
        gov = json.loads(Path(gov_metrics).read_text())
        validate(gov, schema)
        if gov["counters"].get("governor.budget_hits", 0) <= 0:
            fail("governor.budget_hits not counted on a tripped run")

        if bench_monitor is not None:
            check_bench_monitor(bench_monitor, schema, tmp)
        if bench_plans is not None:
            check_bench_plans(bench_plans, schema, tmp)
            check_susc_plan(susc, schema, example, tmp)

    legs = "susc"
    if bench_monitor:
        legs += " + bench_monitor"
    if bench_plans:
        legs += " + bench_plans + susc plan"
    print(f"check_metrics_json: OK ({legs}: {n_events} trace events, "
          f"metrics valid against {Path(schema_path).name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
