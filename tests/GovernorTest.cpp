//===- tests/GovernorTest.cpp - Resource governance tests -----------------===//
///
/// \file
/// Covers the ResourceGovernor itself (deadline stickiness, per-call state
/// budgets, cooperative cancellation) and its contract with every governed
/// kernel: exhaustion comes back as a typed Outcome — never an exception,
/// never a half-built result — an unhit governor reproduces the ungoverned
/// results exactly, and no cache ever memoizes a partial verdict.
///
//===----------------------------------------------------------------------===//

#include "automata/Nfa.h"
#include "automata/Ops.h"
#include "contract/Compliance.h"
#include "core/HotelExample.h"
#include "core/Verifier.h"
#include "plan/PlanEnumerator.h"
#include "plan/RequestExtract.h"
#include "support/ResourceGovernor.h"
#include "validity/StaticValidity.h"

#include <gtest/gtest.h>

using namespace sus;
using namespace sus::automata;

namespace {

//===----------------------------------------------------------------------===//
// The governor itself
//===----------------------------------------------------------------------===//

TEST(ResourceGovernorTest, UnarmedGovernorNeverTrips) {
  ResourceGovernor G;
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(G.poll().has_value());
  EXPECT_FALSE(G.charge(ResourceKind::SubsetStates, 1u << 20).has_value());
  EXPECT_FALSE(G.charge(ResourceKind::ProductStates, 1u << 20).has_value());
  EXPECT_FALSE(G.trip().has_value());
}

TEST(ResourceGovernorTest, ZeroDeadlineTripsTheFirstPollAndSticks) {
  ResourceGovernor G;
  G.setDeadlineAfterMillis(0);
  std::optional<ResourceExhausted> E = G.poll();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Which, ResourceKind::Deadline);
  EXPECT_TRUE(E->deadlineLike());
  // Sticky: every later poll trips regardless of the tick stride, and
  // trip() exposes the observed state for drained-work synthesis.
  for (int I = 0; I < 64; ++I)
    EXPECT_TRUE(G.poll().has_value());
  ASSERT_TRUE(G.trip().has_value());
  EXPECT_EQ(G.trip()->Which, ResourceKind::Deadline);
}

TEST(ResourceGovernorTest, BudgetAllowsExactlyTheLimit) {
  ResourceGovernor G;
  G.setLimit(ResourceKind::SubsetStates, 1);
  EXPECT_FALSE(G.charge(ResourceKind::SubsetStates, 1).has_value());
  std::optional<ResourceExhausted> E = G.charge(ResourceKind::SubsetStates, 2);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Which, ResourceKind::SubsetStates);
  EXPECT_EQ(E->Spent, 2u);
  EXPECT_EQ(E->Limit, 1u);
  EXPECT_FALSE(E->deadlineLike());
  // Budget trips are per call, not sticky: polls stay clean and other
  // kinds keep their own budgets.
  EXPECT_FALSE(G.poll().has_value());
  EXPECT_FALSE(G.trip().has_value());
  EXPECT_FALSE(G.charge(ResourceKind::ProductStates, 1000).has_value());
}

TEST(ResourceGovernorTest, CancellationTripsEveryPoll) {
  ResourceGovernor G;
  EXPECT_FALSE(G.cancelRequested());
  G.requestCancel();
  EXPECT_TRUE(G.cancelRequested());
  std::optional<ResourceExhausted> E = G.poll();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Which, ResourceKind::Cancelled);
  EXPECT_TRUE(E->deadlineLike());
  ASSERT_TRUE(G.trip().has_value());
  EXPECT_EQ(G.trip()->Which, ResourceKind::Cancelled);
}

//===----------------------------------------------------------------------===//
// Governed automata kernels
//===----------------------------------------------------------------------===//

/// NFA for (ab)* over {a=0, b=1}.
Nfa makeAbStar() {
  Nfa N;
  StateId Q0 = N.addState(true);
  StateId Q1 = N.addState(false);
  N.setStart(Q0);
  N.addEdge(Q0, 0, Q1);
  N.addEdge(Q1, 1, Q0);
  return N;
}

/// NFA with nondeterminism: accepts words containing "aa".
Nfa makeContainsAa() {
  Nfa N;
  StateId Q0 = N.addState(false);
  StateId Q1 = N.addState(false);
  StateId Q2 = N.addState(true);
  N.setStart(Q0);
  N.addEdge(Q0, 0, Q0);
  N.addEdge(Q0, 1, Q0);
  N.addEdge(Q0, 0, Q1);
  N.addEdge(Q1, 0, Q2);
  N.addEdge(Q2, 0, Q2);
  N.addEdge(Q2, 1, Q2);
  return N;
}

TEST(GovernedKernelsTest, DeterminizeHonoursTheSubsetBudget) {
  Nfa N = makeContainsAa();
  ResourceGovernor G;
  G.setLimit(ResourceKind::SubsetStates, 1);
  Outcome<Dfa> R = determinize(N, G);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.exhausted().Which, ResourceKind::SubsetStates);
  EXPECT_GT(R.exhausted().Spent, R.exhausted().Limit);
}

TEST(GovernedKernelsTest, ProductKernelsHonourTheProductBudget) {
  Dfa A = determinize(makeAbStar());
  Dfa B = determinize(makeContainsAa());
  ResourceGovernor G;
  G.setLimit(ResourceKind::ProductStates, 1);

  Outcome<Dfa> P = intersect(A, B, G);
  ASSERT_FALSE(P.ok());
  EXPECT_EQ(P.exhausted().Which, ResourceKind::ProductStates);

  // (ab)* ∩ contains-aa is empty, so emptiness must explore past the
  // single budgeted state before it could conclude anything.
  Outcome<bool> Empty = intersectIsEmpty(A, B, G);
  ASSERT_FALSE(Empty.ok());
  EXPECT_EQ(Empty.exhausted().Which, ResourceKind::ProductStates);

  // Self-containment requires exhausting the whole product: trips.
  EXPECT_FALSE(containedIn(A, A, G).ok());
  EXPECT_FALSE(equivalent(A, A, G).ok());
}

TEST(GovernedKernelsTest, ExpiredDeadlineTripsEveryKernel) {
  Nfa N = makeContainsAa();
  Dfa A = determinize(makeAbStar());
  Dfa B = determinize(N);
  ResourceGovernor G;
  G.setDeadlineAfterMillis(0);

  EXPECT_FALSE(determinize(N, G).ok());
  EXPECT_FALSE(intersect(A, B, G).ok());
  EXPECT_FALSE(intersectIsEmpty(A, B, G).ok());
  EXPECT_FALSE(intersectWitness(A, B, G).ok());
  EXPECT_FALSE(containedIn(A, B, G).ok());
  EXPECT_FALSE(differenceWitness(A, B, G).ok());
  EXPECT_FALSE(minimize(B, G).ok());
  EXPECT_FALSE(equivalent(A, B, G).ok());
  EXPECT_EQ(determinize(N, G).exhausted().Which, ResourceKind::Deadline);
}

TEST(GovernedKernelsTest, UnhitGovernorMatchesUngovernedResults) {
  Nfa N = makeContainsAa();
  Dfa A = determinize(makeAbStar());
  Dfa B = determinize(N);
  ResourceGovernor G; // Unarmed: never trips.

  ASSERT_TRUE(determinize(N, G).ok());
  EXPECT_EQ(determinize(N, G).value().numStates(),
            determinize(N).numStates());
  EXPECT_EQ(intersect(A, B, G).value().numStates(),
            intersect(A, B).numStates());
  EXPECT_EQ(intersectIsEmpty(A, B, G).value(), intersectIsEmpty(A, B));
  EXPECT_EQ(intersectWitness(A, B, G).value(), intersectWitness(A, B));
  EXPECT_EQ(containedIn(A, B, G).value(), containedIn(A, B));
  EXPECT_EQ(differenceWitness(A, B, G).value(), differenceWitness(A, B));
  EXPECT_EQ(minimize(B, G).value().numStates(), minimize(B).numStates());
  EXPECT_EQ(equivalent(A, B, G).value(), equivalent(A, B));
  EXPECT_EQ(equivalent(A, A, G).value(), equivalent(A, A));
}

//===----------------------------------------------------------------------===//
// Pipeline layers
//===----------------------------------------------------------------------===//

TEST(GovernorPipelineTest, ComplianceProductHonoursTheBudget) {
  hist::HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  std::vector<plan::RequestSite> Sites = plan::extractRequests(Ex.C1);
  ASSERT_FALSE(Sites.empty());
  const hist::Expr *Body = Sites.front().body();
  const hist::Expr *Service = Ex.Repo.find(Ex.LBr);
  ASSERT_NE(Service, nullptr);

  ResourceGovernor G;
  G.setLimit(ResourceKind::ProductStates, 1);
  contract::ComplianceResult Partial =
      contract::checkServiceCompliance(Ctx, Body, Service, &G);
  ASSERT_TRUE(Partial.Exhausted.has_value());
  EXPECT_EQ(Partial.Exhausted->Which, ResourceKind::ProductStates);
  EXPECT_FALSE(Partial.Compliant);

  // The same pair ungoverned: a conclusive verdict, no exhaustion.
  contract::ComplianceResult Full =
      contract::checkServiceCompliance(Ctx, Body, Service);
  EXPECT_FALSE(Full.Exhausted.has_value());
  EXPECT_TRUE(Full.Compliant);
}

TEST(GovernorPipelineTest, PlanValidityHonoursBudgetAndDeadline) {
  hist::HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);

  validity::StaticValidityOptions Budgeted;
  ResourceGovernor GB;
  GB.setLimit(ResourceKind::ProductStates, 1);
  Budgeted.Governor = &GB;
  validity::StaticValidityResult R = validity::checkPlanValidity(
      Ctx, Ex.C1, Ex.LC1, Ex.pi1(), Ex.Repo, Ex.Registry, Budgeted);
  EXPECT_FALSE(R.Valid);
  ASSERT_EQ(R.Failure, validity::PlanFailureKind::ResourceExhausted);
  ASSERT_TRUE(R.Exhausted.has_value());
  EXPECT_EQ(R.Exhausted->Which, ResourceKind::ProductStates);

  validity::StaticValidityOptions Expired;
  ResourceGovernor GD;
  GD.setDeadlineAfterMillis(0);
  Expired.Governor = &GD;
  validity::StaticValidityResult D = validity::checkPlanValidity(
      Ctx, Ex.C1, Ex.LC1, Ex.pi1(), Ex.Repo, Ex.Registry, Expired);
  ASSERT_EQ(D.Failure, validity::PlanFailureKind::ResourceExhausted);
  ASSERT_TRUE(D.Exhausted.has_value());
  EXPECT_EQ(D.Exhausted->Which, ResourceKind::Deadline);

  // Ungoverned, the plan is the paper's valid π1.
  validity::StaticValidityResult Ok = validity::checkPlanValidity(
      Ctx, Ex.C1, Ex.LC1, Ex.pi1(), Ex.Repo, Ex.Registry,
      validity::StaticValidityOptions());
  EXPECT_TRUE(Ok.Valid);
  EXPECT_FALSE(Ok.Exhausted.has_value());
}

TEST(GovernorPipelineTest, EnumeratorReportsAnExpiredDeadline) {
  hist::HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  plan::EnumeratorOptions EOpts;
  ResourceGovernor G;
  G.setDeadlineAfterMillis(0);
  EOpts.Governor = &G;
  plan::EnumerationResult R = plan::enumeratePlans(Ex.C1, Ex.Repo, EOpts);
  ASSERT_TRUE(R.Exhausted.has_value());
  EXPECT_EQ(R.Exhausted->Which, ResourceKind::Deadline);
  EXPECT_TRUE(R.Plans.empty());
}

//===----------------------------------------------------------------------===//
// Cache hygiene
//===----------------------------------------------------------------------===//

TEST(GovernorCacheTest, ExhaustedComplianceIsNotMemoized) {
  hist::HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  std::vector<plan::RequestSite> Sites = plan::extractRequests(Ex.C1);
  ASSERT_FALSE(Sites.empty());
  const hist::Expr *Body = Sites.front().body();
  const hist::Expr *Service = Ex.Repo.find(Ex.LBr);

  core::VerifierCache Cache;
  ResourceGovernor G;
  G.setLimit(ResourceKind::ProductStates, 1);
  contract::ComplianceResult Partial =
      Cache.compliance(Ctx, Body, Service, &G);
  ASSERT_TRUE(Partial.Exhausted.has_value());

  // The follow-up unbounded lookup is a miss (nothing was memoized) and
  // computes the real verdict.
  contract::ComplianceResult Full = Cache.compliance(Ctx, Body, Service);
  EXPECT_FALSE(Full.Exhausted.has_value());
  EXPECT_TRUE(Full.Compliant);
  core::VerifierStats S = Cache.stats();
  EXPECT_EQ(S.ComplianceLookups, 2u);
  EXPECT_EQ(S.ComplianceHits, 0u);

  // The conclusive verdict *is* memoized: a third lookup hits.
  (void)Cache.compliance(Ctx, Body, Service);
  EXPECT_EQ(Cache.stats().ComplianceHits, 1u);
}

#ifndef SUS_AUDIT
TEST(GovernorCacheTest, CacheRefusesExhaustedValidityResults) {
  // Under -DSUS_AUDIT=ON the same call asserts instead of silently
  // refusing; this test covers the release-mode contract.
  core::VerifierCache Cache;
  validity::StaticValidityResult R;
  R.Valid = false;
  R.Failure = validity::PlanFailureKind::ResourceExhausted;
  R.Exhausted = ResourceExhausted{ResourceKind::Deadline, 5, 1};
  plan::Plan Pi;
  Cache.recordValidity(nullptr, plan::Loc(), Pi, 100, R);
  EXPECT_FALSE(
      Cache.findValidity(nullptr, plan::Loc(), Pi, 100).has_value());
}
#endif

TEST(GovernorCacheTest, TrippedRunDoesNotPolluteASharedCache) {
  hist::HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);

  // Reference: a fresh ungoverned verification.
  core::Verifier Reference(Ctx, Ex.Repo, Ex.Registry);
  core::VerificationReport Want = Reference.verifyClient(Ex.C1, Ex.LC1);
  EXPECT_FALSE(Want.anyInconclusive());
  ASSERT_FALSE(Want.validPlans().empty());

  // A budget-tripped run: every verdict inconclusive, none valid.
  core::VerifierOptions Tripped;
  Tripped.Governor = std::make_shared<ResourceGovernor>();
  Tripped.Governor->setLimit(ResourceKind::ProductStates, 1);
  core::Verifier Governed(Ctx, Ex.Repo, Ex.Registry, Tripped);
  core::VerificationReport Partial = Governed.verifyClient(Ex.C1, Ex.LC1);
  EXPECT_TRUE(Partial.anyInconclusive());
  for (const core::PlanVerdict &V : Partial.Verdicts) {
    EXPECT_FALSE(V.isValid());
    EXPECT_TRUE(V.inconclusive());
    EXPECT_TRUE(V.exhaustedReason().has_value());
  }

  // An unbounded follow-up *through the same cache* in the same process:
  // the real verdicts, element-wise equal to the fresh reference.
  core::Verifier Clean(Ctx, Ex.Repo, Ex.Registry, core::VerifierOptions(),
                       Governed.cache());
  core::VerificationReport Got = Clean.verifyClient(Ex.C1, Ex.LC1);
  EXPECT_FALSE(Got.anyInconclusive());
  ASSERT_EQ(Got.Verdicts.size(), Want.Verdicts.size());
  for (size_t I = 0; I < Got.Verdicts.size(); ++I) {
    EXPECT_EQ(Got.Verdicts[I].Pi, Want.Verdicts[I].Pi) << "plan " << I;
    EXPECT_EQ(Got.Verdicts[I].isValid(), Want.Verdicts[I].isValid())
        << "plan " << I;
  }
  EXPECT_EQ(Got.validPlans().size(), Want.validPlans().size());
}

} // namespace
