//===- tests/NetTest.cpp - network interpreter tests ----------------------===//

#include "core/HotelExample.h"
#include "net/Explorer.h"
#include "net/Interpreter.h"
#include "policy/Prelude.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace sus;
using namespace sus::hist;
using namespace sus::net;
using core::HotelExample;
using core::makeHotelExample;

namespace {

class NetTest : public ::testing::Test {
protected:
  NetTest() : Ex(makeHotelExample(Ctx)) {}

  Interpreter makeC1(const plan::Plan &Pi, bool Monitor = true) {
    InterpreterOptions Opts;
    Opts.MonitorEnabled = Monitor;
    return Interpreter(Ctx, Ex.Repo, Ex.Registry,
                       {{Ex.LC1, Ex.C1, Pi}}, Opts);
  }

  HistContext Ctx;
  HotelExample Ex;
};

TEST_F(NetTest, InitialConfigurationOffersOnlyOpen) {
  Interpreter I = makeC1(Ex.pi1());
  auto Steps = I.steps();
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_EQ(Steps[0].K, Step::Kind::Open);
  EXPECT_FALSE(Steps[0].Blocked);
}

TEST_F(NetTest, OpenSpawnsSessionAndLogsFraming) {
  Interpreter I = makeC1(Ex.pi1());
  auto Steps = I.steps();
  ASSERT_TRUE(I.apply(Steps[0]));
  EXPECT_EQ(I.history(0).size(), 1u);
  EXPECT_EQ(I.history(0)[0].kind(), LabelKind::FrameOpen);
  EXPECT_FALSE(I.tree(0).IsLeaf);
}

TEST_F(NetTest, ValidPlanRunsToCompletion) {
  Interpreter I = makeC1(Ex.pi1());
  RunStats Stats = I.run(/*Seed=*/7);
  EXPECT_TRUE(Stats.AllCompleted) << I.configStr();
  EXPECT_EQ(Stats.Violations, 0u);
  EXPECT_EQ(Stats.BlockedAttempts, 0u); // Valid plan: monitor never fires.
  EXPECT_TRUE(I.history(0).isBalanced());
  EXPECT_TRUE(I.isDone(0));
}

TEST_F(NetTest, ValidPlanNeverBlocksAcrossSeeds) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Interpreter I = makeC1(Ex.pi1());
    RunStats Stats = I.run(Seed);
    EXPECT_TRUE(Stats.AllCompleted) << "seed " << Seed;
    EXPECT_EQ(Stats.BlockedAttempts, 0u) << "seed " << Seed;
  }
}

TEST_F(NetTest, MonitorBlocksBlackListedHotel) {
  plan::Plan Bad;
  Bad.bind(1, Ex.LBr);
  Bad.bind(3, Ex.LS1); // Black-listed for C1.
  Interpreter I = makeC1(Bad);
  RunStats Stats = I.run(/*Seed=*/3);
  // The signature event is refused; the component cannot finish.
  EXPECT_FALSE(Stats.AllCompleted);
  EXPECT_GT(Stats.BlockedAttempts, 0u);
  EXPECT_EQ(Stats.Violations, 0u); // Blocked, not violated.
  EXPECT_TRUE(I.history(0).isBalancedPrefix());
}

TEST_F(NetTest, UnmonitoredRunRecordsViolation) {
  plan::Plan Bad;
  Bad.bind(1, Ex.LBr);
  Bad.bind(3, Ex.LS1);
  Interpreter I(Ctx, Ex.Repo, Ex.Registry, {{Ex.LC1, Ex.C1, Bad}},
                InterpreterOptions{/*MonitorEnabled=*/false});
  RunStats Stats = I.run(/*Seed=*/3);
  EXPECT_GT(Stats.Violations, 0u);
  EXPECT_TRUE(I.isViolated(0));
}

TEST_F(NetTest, AngelicSemanticsNeverFiresDel) {
  // Under the paper's angelic semantics the Del branch of S2 simply never
  // synchronizes, so π2 always completes operationally — which is exactly
  // why non-compliance must be caught *statically* (§4).
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    Interpreter I(Ctx, Ex.Repo, Ex.Registry, {{Ex.LC2, Ex.C2, Ex.pi2()}},
                  InterpreterOptions{});
    RunStats Stats = I.run(Seed);
    EXPECT_TRUE(Stats.AllCompleted) << "seed " << Seed;
  }
}

TEST_F(NetTest, CommittedChoiceExposesDelDeadlock) {
  // A real sender decides on its own: once S2 commits to Del, nobody can
  // receive it and the session wedges. Some seed picks Del.
  InterpreterOptions Opts;
  Opts.CommittedInternalChoice = true;
  bool SawStuck = false;
  for (uint64_t Seed = 1; Seed <= 64 && !SawStuck; ++Seed) {
    Interpreter I(Ctx, Ex.Repo, Ex.Registry, {{Ex.LC2, Ex.C2, Ex.pi2()}},
                  Opts);
    RunStats Stats = I.run(Seed);
    if (!Stats.AllCompleted)
      SawStuck = true;
  }
  EXPECT_TRUE(SawStuck);
}

TEST_F(NetTest, CommittedChoiceIsHarmlessForCompliantPlans) {
  InterpreterOptions Opts;
  Opts.CommittedInternalChoice = true;
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    Interpreter I(Ctx, Ex.Repo, Ex.Registry, {{Ex.LC1, Ex.C1, Ex.pi1()}},
                  Opts);
    RunStats Stats = I.run(Seed);
    EXPECT_TRUE(Stats.AllCompleted) << "seed " << Seed;
  }
}

TEST_F(NetTest, CompliantPlanForC2AlwaysCompletes) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Interpreter I(Ctx, Ex.Repo, Ex.Registry,
                  {{Ex.LC2, Ex.C2, Ex.pi2Valid()}},
                  InterpreterOptions{});
    RunStats Stats = I.run(Seed);
    EXPECT_TRUE(Stats.AllCompleted) << "seed " << Seed;
  }
}

TEST_F(NetTest, PlanGapStepsAreNeverApplicable) {
  plan::Plan Empty;
  Interpreter I = makeC1(Empty);
  auto Steps = I.steps();
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_TRUE(Steps[0].PlanGap);
  EXPECT_FALSE(I.apply(Steps[0]));
  RunStats Stats = I.run(5);
  EXPECT_EQ(Stats.StepsTaken, 0u);
  EXPECT_FALSE(Stats.AllCompleted);
}

TEST_F(NetTest, RunStatsCleanRunHasNoFailuresOrStuckComponents) {
  Interpreter I = makeC1(Ex.pi1());
  RunStats Stats = I.run(/*Seed=*/7);
  EXPECT_TRUE(Stats.AllCompleted);
  EXPECT_GT(Stats.StepsTaken, 0u);
  EXPECT_EQ(Stats.Violations, 0u);
  EXPECT_EQ(Stats.FailedApplies, 0u);
  EXPECT_TRUE(Stats.StuckComponents.empty());
}

TEST_F(NetTest, RunStatsStuckRunListsTheComponent) {
  plan::Plan Bad;
  Bad.bind(1, Ex.LBr);
  Bad.bind(3, Ex.LS1); // Black-listed for C1: the monitor wedges it.
  Interpreter I = makeC1(Bad);
  RunStats Stats = I.run(/*Seed=*/3);
  EXPECT_FALSE(Stats.AllCompleted);
  ASSERT_EQ(Stats.StuckComponents.size(), 1u);
  EXPECT_EQ(Stats.StuckComponents[0], 0u);
  // Enumerated-but-inapplicable steps are never attempted, so a blocked
  // run still has zero failed applies.
  EXPECT_EQ(Stats.FailedApplies, 0u);
  // At quiescence the component still offers steps — all refused by the
  // monitor, and apply() rejects them rather than forcing them through.
  auto Steps = I.steps();
  bool SawBlocked = false;
  for (const Step &S : Steps)
    if (S.Blocked) {
      SawBlocked = true;
      EXPECT_FALSE(I.apply(S));
    }
  EXPECT_TRUE(SawBlocked);
}

TEST_F(NetTest, RunStatsViolationsOnlyAccrueWithTheMonitorOff) {
  plan::Plan Bad;
  Bad.bind(1, Ex.LBr);
  Bad.bind(3, Ex.LS1);
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Interpreter Monitored = makeC1(Bad);
    RunStats On = Monitored.run(Seed);
    EXPECT_EQ(On.Violations, 0u) << "seed " << Seed;

    Interpreter Unmonitored(Ctx, Ex.Repo, Ex.Registry,
                            {{Ex.LC1, Ex.C1, Bad}},
                            InterpreterOptions{/*MonitorEnabled=*/false});
    RunStats Off = Unmonitored.run(Seed);
    EXPECT_GT(Off.Violations, 0u) << "seed " << Seed;
    EXPECT_EQ(Off.FailedApplies, 0u) << "seed " << Seed;
  }
}

TEST_F(NetTest, RunStatsFailedAppliesIsZeroAcrossSeedsAndModes) {
  // run() re-enumerates before every pick, so an applicable step always
  // applies; FailedApplies > 0 would mean the step/apply contract broke
  // (the run loop then stops instead of counting the step as taken).
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    for (bool Monitor : {true, false}) {
      Interpreter I = makeC1(Ex.pi1(), Monitor);
      RunStats Stats = I.run(Seed);
      EXPECT_EQ(Stats.FailedApplies, 0u)
          << "seed " << Seed << " monitor " << Monitor;
    }
  }
}

TEST_F(NetTest, TwoClientsInterleaveIndependently) {
  // The Fig. 3 network: C1 under π1 and C2 under its valid plan; both
  // components complete regardless of interleaving.
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Interpreter I(Ctx, Ex.Repo, Ex.Registry,
                  {{Ex.LC1, Ex.C1, Ex.pi1()},
                   {Ex.LC2, Ex.C2, Ex.pi2Valid()}},
                  InterpreterOptions{});
    RunStats Stats = I.run(Seed);
    EXPECT_TRUE(Stats.AllCompleted) << "seed " << Seed;
    EXPECT_TRUE(I.history(0).isBalanced());
    EXPECT_TRUE(I.history(1).isBalanced());
  }
}

TEST_F(NetTest, HistoriesArePerComponent) {
  Interpreter I(Ctx, Ex.Repo, Ex.Registry,
                {{Ex.LC1, Ex.C1, Ex.pi1()},
                 {Ex.LC2, Ex.C2, Ex.pi2Valid()}},
                InterpreterOptions{});
  I.run(11);
  // C1's history mentions s3's events; C2's mentions s4's.
  std::string H0 = I.history(0).str(Ctx.interner());
  std::string H1 = I.history(1).str(Ctx.interner());
  EXPECT_NE(H0.find("alpha_sgn(s3)"), std::string::npos);
  EXPECT_NE(H1.find("alpha_sgn(s4)"), std::string::npos);
  EXPECT_EQ(H0.find("alpha_sgn(s4)"), std::string::npos);
  EXPECT_EQ(H1.find("alpha_sgn(s3)"), std::string::npos);
}

TEST_F(NetTest, SessionNestingMatchesFig3Shape) {
  // Drive C1 under π1 up to the nested-session configuration:
  // [c1: ..., [br: ..., s3: ...]].
  Interpreter I = makeC1(Ex.pi1());

  auto ApplyFirst = [&](Step::Kind K) -> bool {
    for (const Step &S : I.steps())
      if (S.K == K && !S.Blocked && !S.PlanGap)
        return I.apply(S);
    return false;
  };

  ASSERT_TRUE(ApplyFirst(Step::Kind::Open));  // open 1 with broker.
  ASSERT_TRUE(ApplyFirst(Step::Kind::Synch)); // Req.
  ASSERT_TRUE(ApplyFirst(Step::Kind::Open));  // broker opens 3 with s3.
  std::string Shape = I.tree(0).str(Ctx);
  EXPECT_EQ(Shape.find("[c1:"), 0u);
  EXPECT_NE(Shape.find("[br:"), std::string::npos);
  EXPECT_NE(Shape.find("s3:"), std::string::npos);
}

TEST_F(NetTest, OuterSessionCannotTalkWhileInnerOpen) {
  Interpreter I = makeC1(Ex.pi1());
  auto ApplyFirst = [&](Step::Kind K) {
    for (const Step &S : I.steps())
      if (S.K == K && !S.Blocked && !S.PlanGap)
        return I.apply(S);
    return false;
  };
  ASSERT_TRUE(ApplyFirst(Step::Kind::Open));
  ASSERT_TRUE(ApplyFirst(Step::Kind::Synch));
  ASSERT_TRUE(ApplyFirst(Step::Kind::Open));
  // While [br, s3] is open, no Synch step may involve c1.
  for (const Step &S : I.steps())
    if (S.K == Step::Kind::Synch) {
      EXPECT_EQ(S.Path.size(), 1u); // Only inside the nested pair.
    }
}

TEST_F(NetTest, CloseFlushesPendingFramesOfPartner) {
  // A service that opens a frame and never closes it; when the client
  // closes the session, Φ flushes the pending ⌋ϕ into the history.
  PolicyRef NoWaR;
  NoWaR.Name = Ctx.symbol("noWaR");
  policy::PolicyRegistry Registry;
  Registry.add(
      policy::makeNeverAfterPolicy(Ctx.interner(), "noWaR", "r", "w"));

  // Service: go? . ⌊ϕ  (frame opened, never closed).
  const Expr *Service = Ctx.receive("go", Ctx.framing(NoWaR, Ctx.empty()));
  plan::Repository Repo;
  plan::Loc LS = Ctx.symbol("svc");
  Repo.add(LS, Service);

  const Expr *Client = Ctx.request(1, PolicyRef(),
                                   Ctx.send("go", Ctx.empty()));
  plan::Plan Pi;
  Pi.bind(1, LS);
  Interpreter I(Ctx, Repo, Registry, {{Ctx.symbol("c"), Client, Pi}},
                InterpreterOptions{});

  auto ApplyFirst = [&](Step::Kind K) {
    for (const Step &S : I.steps())
      if (S.K == K && !S.Blocked && !S.PlanGap)
        return I.apply(S);
    return false;
  };
  ASSERT_TRUE(ApplyFirst(Step::Kind::Open));
  ASSERT_TRUE(ApplyFirst(Step::Kind::Synch));
  ASSERT_TRUE(ApplyFirst(Step::Kind::Access)); // Service opens the frame.
  ASSERT_TRUE(ApplyFirst(Step::Kind::Close));  // Client closes session.
  EXPECT_TRUE(I.isDone(0));
  // History: ⌊ϕ then the flushed ⌋ϕ — balanced.
  EXPECT_TRUE(I.history(0).isBalanced());
  EXPECT_EQ(I.history(0).size(), 2u);
}

TEST_F(NetTest, AngelicMonitorBlocksOnlyTheOffendingBranch) {
  // A service that, after the handshake, internally chooses between a
  // policy-violating event and a harmless one. Under the angelic monitor
  // runs either complete (good branch) or stall with blocked attempts
  // (bad branch) — but the history never becomes invalid.
  policy::PolicyRegistry Registry;
  Registry.add(
      policy::makeNeverAfterPolicy(Ctx.interner(), "noBad", "ok", "bad"));
  PolicyRef NoBad;
  NoBad.Name = Ctx.symbol("noBad");

  const Expr *Svc = Ctx.receive(
      "go", Ctx.seq(Ctx.event("ok"),
                    Ctx.intChoice({
                        {CommAction::output(Ctx.symbol("a")),
                         Ctx.seq(Ctx.event("bad"), Ctx.empty())},
                        {CommAction::output(Ctx.symbol("b")),
                         Ctx.seq(Ctx.event("fine"), Ctx.empty())},
                    })));
  plan::Repository Repo;
  plan::Loc LS = Ctx.symbol("svc");
  Repo.add(LS, Svc);

  const Expr *Client = Ctx.request(
      1, NoBad,
      Ctx.send("go", Ctx.extChoice({
                         {CommAction::input(Ctx.symbol("a")), Ctx.empty()},
                         {CommAction::input(Ctx.symbol("b")), Ctx.empty()},
                     })));
  plan::Plan Pi;
  Pi.bind(1, LS);

  bool SawCompleted = false, SawBlocked = false;
  for (uint64_t Seed = 1; Seed <= 32; ++Seed) {
    Interpreter I(Ctx, Repo, Registry, {{Ctx.symbol("c"), Client, Pi}},
                  InterpreterOptions{/*MonitorEnabled=*/true});
    RunStats Stats = I.run(Seed);
    EXPECT_FALSE(I.isViolated(0));
    if (Stats.AllCompleted)
      SawCompleted = true;
    if (Stats.BlockedAttempts > 0)
      SawBlocked = true;
  }
  EXPECT_TRUE(SawCompleted);
  EXPECT_TRUE(SawBlocked);
}

//===----------------------------------------------------------------------===//
// Bounded replication (§5 future work)
//===----------------------------------------------------------------------===//

TEST_F(NetTest, CapacityOneSerializesTwoClients) {
  // One echo service with capacity 1; two clients. Both complete, and at
  // least one schedule makes a client wait for the slot.
  const Expr *Echo = Ctx.receive("Ping", Ctx.send("Pong", Ctx.empty()));
  plan::Repository Repo;
  plan::Loc LE = Ctx.symbol("echo");
  Repo.add(LE, Echo, /*Capacity=*/1);
  policy::PolicyRegistry Registry;

  const Expr *Client = Ctx.request(
      1, PolicyRef(), Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty())));
  plan::Plan Pi;
  Pi.bind(1, LE);

  bool SawWait = false;
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    Interpreter I(Ctx, Repo, Registry,
                  {{Ctx.symbol("a"), Client, Pi},
                   {Ctx.symbol("b"), Client, Pi}},
                  InterpreterOptions{});
    RunStats Stats = I.run(Seed);
    EXPECT_TRUE(Stats.AllCompleted) << "seed " << Seed;
    SawWait |= Stats.CapacityWaits > 0;
  }
  EXPECT_TRUE(SawWait);
}

TEST_F(NetTest, UnboundedCapacityNeverWaits) {
  const Expr *Echo = Ctx.receive("Ping", Ctx.send("Pong", Ctx.empty()));
  plan::Repository Repo;
  plan::Loc LE = Ctx.symbol("echo");
  Repo.add(LE, Echo); // Unbounded (the paper's default).
  policy::PolicyRegistry Registry;

  const Expr *Client = Ctx.request(
      1, PolicyRef(), Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty())));
  plan::Plan Pi;
  Pi.bind(1, LE);
  Interpreter I(Ctx, Repo, Registry,
                {{Ctx.symbol("a"), Client, Pi},
                 {Ctx.symbol("b"), Client, Pi},
                 {Ctx.symbol("c"), Client, Pi}},
                InterpreterOptions{});
  RunStats Stats = I.run(9);
  EXPECT_TRUE(Stats.AllCompleted);
  EXPECT_EQ(Stats.CapacityWaits, 0u);
}

TEST_F(NetTest, NestedSelfRequestDeadlocksOnCapacityOne) {
  // The client opens a session with the only replica and, inside it,
  // requests the same service again: the inner open waits forever.
  const Expr *Echo = Ctx.receive("Ping", Ctx.send("Pong", Ctx.empty()));
  plan::Repository Repo;
  plan::Loc LE = Ctx.symbol("echo");
  Repo.add(LE, Echo, /*Capacity=*/1);
  policy::PolicyRegistry Registry;

  const Expr *Inner = Ctx.request(
      2, PolicyRef(), Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty())));
  const Expr *Client = Ctx.request(
      1, PolicyRef(),
      Ctx.seq(Inner, Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty()))));
  plan::Plan Pi;
  Pi.bind(1, LE);
  Pi.bind(2, LE);

  Interpreter I(Ctx, Repo, Registry, {{Ctx.symbol("c"), Client, Pi}},
                InterpreterOptions{});
  RunStats Stats = I.run(3);
  EXPECT_FALSE(Stats.AllCompleted);
  EXPECT_GT(Stats.CapacityWaits, 0u);
  EXPECT_EQ(I.sessionsInUse(LE), 1u);
}

TEST_F(NetTest, CapacityTwoAllowsNestedSelfRequest) {
  const Expr *Echo = Ctx.receive("Ping", Ctx.send("Pong", Ctx.empty()));
  plan::Repository Repo;
  plan::Loc LE = Ctx.symbol("echo");
  Repo.add(LE, Echo, /*Capacity=*/2);
  policy::PolicyRegistry Registry;

  const Expr *Inner = Ctx.request(
      2, PolicyRef(), Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty())));
  const Expr *Client = Ctx.request(
      1, PolicyRef(),
      Ctx.seq(Inner, Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty()))));
  plan::Plan Pi;
  Pi.bind(1, LE);
  Pi.bind(2, LE);

  Interpreter I(Ctx, Repo, Registry, {{Ctx.symbol("c"), Client, Pi}},
                InterpreterOptions{});
  RunStats Stats = I.run(3);
  EXPECT_TRUE(Stats.AllCompleted);
  EXPECT_EQ(I.sessionsInUse(LE), 0u); // All slots released.
}

//===----------------------------------------------------------------------===//
// Whole-network exploration
//===----------------------------------------------------------------------===//

TEST_F(NetTest, ExplorerConfirmsHotelNetworkCompletes) {
  auto R = exploreNetwork(Ctx, Ex.Repo,
                          {{Ex.LC1, Ex.C1, Ex.pi1()},
                           {Ex.LC2, Ex.C2, Ex.pi2Valid()}});
  EXPECT_TRUE(R.Exhaustive);
  EXPECT_TRUE(R.CanComplete);
  EXPECT_FALSE(R.DeadlockReachable);
  EXPECT_GT(R.States, 10u);
}

TEST_F(NetTest, ExplorerSeesAngelicNonDeadlockForPi2) {
  // Angelic semantics: even under every interleaving, Del never commits.
  auto R = exploreNetwork(Ctx, Ex.Repo, {{Ex.LC2, Ex.C2, Ex.pi2()}});
  EXPECT_TRUE(R.Exhaustive);
  EXPECT_TRUE(R.CanComplete);
  EXPECT_FALSE(R.DeadlockReachable);
  // Committed choice: the Del branch is a real reachable deadlock.
  ExplorerOptions Committed;
  Committed.CommittedInternalChoice = true;
  auto R2 =
      exploreNetwork(Ctx, Ex.Repo, {{Ex.LC2, Ex.C2, Ex.pi2()}}, Committed);
  EXPECT_TRUE(R2.CanComplete);      // Bok/UnA schedules finish,
  EXPECT_TRUE(R2.DeadlockReachable); // the Del schedule wedges.
  EXPECT_FALSE(R2.DeadlockTrace.empty());
}

TEST_F(NetTest, ExplorerFindsCapacityDiningDeadlock) {
  // Client A opens svc1 then, inside, svc2; client B opens svc2 then
  // svc1. Capacities 1: individually fine, together a classic deadlock —
  // invisible to per-client verification, found by the explorer.
  const Expr *Echo = Ctx.receive("Ping", Ctx.send("Pong", Ctx.empty()));
  plan::Repository Repo;
  plan::Loc L1 = Ctx.symbol("svc1"), L2 = Ctx.symbol("svc2");
  Repo.add(L1, Echo, /*Capacity=*/1);
  Repo.add(L2, Echo, /*Capacity=*/1);

  auto MakeClient = [&](hist::RequestId Outer, hist::RequestId Inner) {
    const Expr *InnerReq = Ctx.request(
        Inner, PolicyRef(),
        Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty())));
    return Ctx.request(
        Outer, PolicyRef(),
        Ctx.seq(InnerReq,
                Ctx.send("Ping", Ctx.receive("Pong", Ctx.empty()))));
  };
  const Expr *A = MakeClient(10, 11);
  const Expr *B = MakeClient(20, 21);
  plan::Plan PiA, PiB;
  PiA.bind(10, L1);
  PiA.bind(11, L2);
  PiB.bind(20, L2);
  PiB.bind(21, L1);

  auto R = exploreNetwork(Ctx, Repo,
                          {{Ctx.symbol("a"), A, PiA},
                           {Ctx.symbol("b"), B, PiB}});
  EXPECT_TRUE(R.Exhaustive);
  EXPECT_TRUE(R.CanComplete);       // One-at-a-time schedules work.
  EXPECT_TRUE(R.DeadlockReachable); // Both grab their first slot: wedged.

  // With capacity 2 the contention disappears entirely.
  plan::Repository Roomy;
  Roomy.add(L1, Echo, 2);
  Roomy.add(L2, Echo, 2);
  auto R2 = exploreNetwork(Ctx, Roomy,
                           {{Ctx.symbol("a"), A, PiA},
                            {Ctx.symbol("b"), B, PiB}});
  EXPECT_TRUE(R2.CanComplete);
  EXPECT_FALSE(R2.DeadlockReachable);
}

TEST_F(NetTest, ExplorerReportsUnboundRequestAsDeadlock) {
  plan::Plan Empty;
  auto R = exploreNetwork(Ctx, Ex.Repo, {{Ex.LC1, Ex.C1, Empty}});
  EXPECT_FALSE(R.CanComplete);
  EXPECT_TRUE(R.DeadlockReachable);
  EXPECT_TRUE(R.DeadlockTrace.empty()); // Stuck at the initial state.
}

TEST_F(NetTest, ExplorerStateCapReportsNonExhaustive) {
  ExplorerOptions Tiny;
  Tiny.MaxStates = 2;
  auto R = exploreNetwork(Ctx, Ex.Repo, {{Ex.LC1, Ex.C1, Ex.pi1()}}, Tiny);
  EXPECT_FALSE(R.Exhaustive);
}

TEST_F(NetTest, TraceRecordsAppliedSteps) {
  Interpreter I = makeC1(Ex.pi1());
  I.run(1);
  EXPECT_FALSE(I.trace().empty());
  // The trace must contain the session openings.
  bool SawOpen = false;
  for (const std::string &Line : I.trace())
    SawOpen |= Line.find("open_1") != std::string::npos;
  EXPECT_TRUE(SawOpen);
}

TEST_F(NetTest, ConfigStrShowsHistoryAndTree) {
  Interpreter I = makeC1(Ex.pi1());
  std::string S = I.configStr();
  EXPECT_NE(S.find("c1:"), std::string::npos);
  I.run(1);
  std::string S2 = I.configStr();
  EXPECT_NE(S2.find("alpha_sgn(s3)"), std::string::npos);
}

} // namespace
