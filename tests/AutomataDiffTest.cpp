//===- tests/AutomataDiffTest.cpp - randomized differential sweeps --------===//
///
/// \file
/// Differential tests for the flat automata substrate: every optimized
/// kernel (hashed subset construction, Hopcroft minimization, the
/// on-the-fly product checks) is cross-checked against brute-force
/// bounded-word enumeration and against its materialized counterpart on
/// ~100 seeded random NFAs plus the degenerate corners (empty automata,
/// all-epsilon cycles, single-letter alphabets). Seeds are fixed; nothing
/// depends on wall-clock or iteration order of unordered containers.
///
//===----------------------------------------------------------------------===//

#include "automata/Nfa.h"
#include "automata/Ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

using namespace sus::automata;

namespace {

Nfa randomNfa(std::mt19937 &Rng, unsigned NumStates, unsigned NumSymbols,
              unsigned NumEdges, unsigned NumEps) {
  Nfa N;
  for (unsigned I = 0; I < NumStates; ++I)
    N.addState(Rng() % 3 == 0);
  N.setStart(0);
  for (unsigned I = 0; I < NumEdges; ++I)
    N.addEdge(Rng() % NumStates, Rng() % NumSymbols, Rng() % NumStates);
  for (unsigned I = 0; I < NumEps; ++I)
    N.addEpsilon(Rng() % NumStates, Rng() % NumStates);
  return N;
}

/// Calls \p F with every word over {0..NumSymbols-1} of length <= MaxLen,
/// in length-then-lexicographic order.
template <typename Fn>
void forEachWord(unsigned NumSymbols, unsigned MaxLen, Fn F) {
  std::vector<SymbolCode> Word;
  F(Word);
  for (unsigned Len = 1; Len <= MaxLen; ++Len) {
    Word.assign(Len, 0);
    while (true) {
      F(Word);
      unsigned I = Len;
      while (I > 0 && ++Word[I - 1] == NumSymbols)
        Word[--I] = 0;
      if (I == 0)
        break;
    }
  }
}

/// Brute-force shortest word in L(A) \ L(B) up to \p MaxLen, scanning in
/// the same length-then-lex order BFS discovers words in.
std::optional<std::vector<SymbolCode>>
bruteDifference(const Dfa &A, const Dfa &B, unsigned NumSymbols,
                unsigned MaxLen) {
  std::optional<std::vector<SymbolCode>> Result;
  forEachWord(NumSymbols, MaxLen, [&](const std::vector<SymbolCode> &W) {
    if (!Result && A.accepts(W) && !B.accepts(W))
      Result = W;
  });
  return Result;
}

/// The joint sorted alphabet of two DFAs.
std::vector<SymbolCode> jointAlphabet(const Dfa &A, const Dfa &B) {
  std::vector<SymbolCode> Joint;
  std::set_union(A.alphabet().begin(), A.alphabet().end(),
                 B.alphabet().begin(), B.alphabet().end(),
                 std::back_inserter(Joint));
  return Joint;
}

/// A one-state automaton accepting 0* — a non-empty language to pit the
/// empty automaton against.
Nfa makeSingleLetterLoop() {
  Nfa N;
  StateId Q0 = N.addState(true);
  N.setStart(Q0);
  N.addEdge(Q0, 0, Q0);
  return N;
}

constexpr unsigned NumSymbols = 3;
constexpr unsigned MaxLen = 6;

class AutomataDiffTest : public ::testing::TestWithParam<unsigned> {};

/// N, determinize(N) and minimize(determinize(N)) agree on every word up
/// to MaxLen (exhaustive, 3^6 = 729 words per seed).
TEST_P(AutomataDiffTest, PipelineAgreesWithBruteForceEnumeration) {
  std::mt19937 Rng(GetParam());
  Nfa N = randomNfa(Rng, 2 + Rng() % 6, NumSymbols, 4 + Rng() % 12,
                    Rng() % 3);
  Dfa D = determinize(N);
  Dfa M = minimize(D);
  forEachWord(NumSymbols, MaxLen, [&](const std::vector<SymbolCode> &W) {
    bool InN = N.accepts(W);
    ASSERT_EQ(InN, D.accepts(W)) << "determinize diverges, seed "
                                 << GetParam();
    ASSERT_EQ(InN, M.accepts(W)) << "minimize diverges, seed " << GetParam();
  });
  // Minimization is idempotent: a second pass cannot shrink the result.
  EXPECT_EQ(minimize(M).numStates(), M.numStates());
}

/// The on-the-fly product checks equal their materialized counterparts —
/// verdicts AND witnesses, bit for bit.
TEST_P(AutomataDiffTest, OnTheFlyOpsMatchMaterializedPipelines) {
  std::mt19937 Rng(1000 + GetParam());
  Dfa A = determinize(
      randomNfa(Rng, 2 + Rng() % 6, NumSymbols, 4 + Rng() % 12, Rng() % 3));
  Dfa B = determinize(
      randomNfa(Rng, 2 + Rng() % 6, NumSymbols, 4 + Rng() % 12, Rng() % 3));
  std::vector<SymbolCode> Joint = jointAlphabet(A, B);

  // Intersection emptiness and witness.
  Dfa I = intersect(A, B);
  EXPECT_EQ(intersectIsEmpty(A, B), isEmpty(I));
  EXPECT_EQ(intersectWitness(A, B), shortestWitness(I));

  // Containment and difference witness against the complement pipeline.
  Dfa DiffAB = intersect(A, complement(B, Joint));
  Dfa DiffBA = intersect(B, complement(A, Joint));
  EXPECT_EQ(containedIn(A, B), isEmpty(DiffAB));
  EXPECT_EQ(containedIn(B, A), isEmpty(DiffBA));
  EXPECT_EQ(differenceWitness(A, B), shortestWitness(DiffAB));
  EXPECT_EQ(differenceWitness(B, A), shortestWitness(DiffBA));

  // Equivalence via the symmetric difference.
  EXPECT_EQ(equivalent(A, B), isEmpty(DiffAB) && isEmpty(DiffBA));
}

/// A difference witness is a real counterexample and no shorter one
/// exists (checked by exhaustive enumeration up to the witness length).
TEST_P(AutomataDiffTest, DifferenceWitnessIsShortest) {
  std::mt19937 Rng(2000 + GetParam());
  Dfa A = determinize(
      randomNfa(Rng, 2 + Rng() % 5, NumSymbols, 4 + Rng() % 10, 0));
  Dfa B = determinize(
      randomNfa(Rng, 2 + Rng() % 5, NumSymbols, 4 + Rng() % 10, 0));
  auto W = differenceWitness(A, B);
  auto Brute = bruteDifference(A, B, NumSymbols, MaxLen);
  if (W && W->size() <= MaxLen) {
    ASSERT_TRUE(Brute.has_value());
    EXPECT_TRUE(A.accepts(*W));
    EXPECT_FALSE(B.accepts(*W));
    EXPECT_EQ(W->size(), Brute->size());
  } else if (!W) {
    EXPECT_FALSE(Brute.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomataDiffTest,
                         ::testing::Range(0u, 34u));

//===----------------------------------------------------------------------===//
// Degenerate corners
//===----------------------------------------------------------------------===//

TEST(AutomataDiffEdgeCases, EmptyAutomatonIsEmptyLanguage) {
  Nfa N; // Zero states.
  Dfa D = determinize(N);
  EXPECT_TRUE(isEmpty(D));
  EXPECT_FALSE(shortestWitness(D).has_value());
  EXPECT_FALSE(D.accepts({}));
  Dfa M = minimize(D);
  EXPECT_TRUE(isEmpty(M));

  Dfa Other = determinize(makeSingleLetterLoop());
  EXPECT_TRUE(intersectIsEmpty(D, Other));
  EXPECT_FALSE(intersectWitness(D, Other).has_value());
  EXPECT_TRUE(containedIn(D, Other));
  EXPECT_FALSE(containedIn(Other, D));
  EXPECT_FALSE(differenceWitness(D, Other).has_value());
  EXPECT_TRUE(differenceWitness(Other, D).has_value());
  EXPECT_TRUE(equivalent(D, determinize(Nfa())));
}

TEST(AutomataDiffEdgeCases, AllEpsilonCycleCollapsesToOneVerdict) {
  // A 4-cycle of epsilons with one accepting member: the closure of the
  // start hits it, so the empty word (and nothing else) is accepted.
  Nfa N;
  for (int I = 0; I < 4; ++I)
    N.addState(false);
  N.setStart(0);
  N.setAccepting(2, true);
  N.addEpsilon(0, 1);
  N.addEpsilon(1, 2);
  N.addEpsilon(2, 3);
  N.addEpsilon(3, 0);
  Dfa D = determinize(N);
  EXPECT_TRUE(D.accepts({}));
  EXPECT_EQ(D.numStates(), 1u);
  auto W = shortestWitness(D);
  ASSERT_TRUE(W.has_value());
  EXPECT_TRUE(W->empty());
  Dfa M = minimize(D);
  EXPECT_TRUE(equivalent(D, M));
}

TEST(AutomataDiffEdgeCases, SingleLetterAlphabetCountsModulo) {
  // a^3k over the single letter a=5 (an off-zero code, exercising the
  // dense alphabet map).
  Nfa N;
  StateId Q0 = N.addState(true);
  StateId Q1 = N.addState(false);
  StateId Q2 = N.addState(false);
  N.setStart(Q0);
  N.addEdge(Q0, 5, Q1);
  N.addEdge(Q1, 5, Q2);
  N.addEdge(Q2, 5, Q0);
  Dfa D = determinize(N);
  for (unsigned Len = 0; Len <= 9; ++Len) {
    std::vector<SymbolCode> W(Len, 5);
    EXPECT_EQ(D.accepts(W), Len % 3 == 0) << "length " << Len;
  }
  Dfa M = minimize(D);
  EXPECT_EQ(M.numStates(), 3u);
  EXPECT_TRUE(equivalent(D, M));
  // a^6k is contained in a^3k but not vice versa.
  Nfa Six;
  std::vector<StateId> Qs;
  for (int I = 0; I < 6; ++I)
    Qs.push_back(Six.addState(I == 0));
  Six.setStart(Qs[0]);
  for (int I = 0; I < 6; ++I)
    Six.addEdge(Qs[I], 5, Qs[(I + 1) % 6]);
  Dfa D6 = determinize(Six);
  EXPECT_TRUE(containedIn(D6, D));
  EXPECT_FALSE(containedIn(D, D6));
  auto Diff = differenceWitness(D, D6);
  ASSERT_TRUE(Diff.has_value());
  EXPECT_EQ(Diff->size(), 3u); // a^3 is the shortest counterexample.
}

} // namespace
