//===- tests/ValidityTest.cpp - static plan-validity tests ----------------===//

#include "contract/Project.h"
#include "core/HotelExample.h"
#include "policy/Prelude.h"
#include "validity/CostAnalysis.h"
#include "validity/FrameRegularize.h"
#include "validity/StaticValidity.h"

#include <gtest/gtest.h>

using namespace sus;
using namespace sus::hist;
using namespace sus::validity;
using core::HotelExample;
using core::makeHotelExample;

namespace {

class ValidityTest : public ::testing::Test {
protected:
  ValidityTest() : Ex(makeHotelExample(Ctx)) {}
  HistContext Ctx;
  HotelExample Ex;
};

//===----------------------------------------------------------------------===//
// Regularization
//===----------------------------------------------------------------------===//

TEST_F(ValidityTest, RegularizeDropsRedundantNestedFraming) {
  const Expr *E = Ctx.framing(
      Ex.Phi1, Ctx.seq(Ctx.event("a"),
                       Ctx.framing(Ex.Phi1, Ctx.event("b"))));
  EXPECT_EQ(maxFramingNesting(E), 2u);
  const Expr *R = regularizeFramings(Ctx, E);
  EXPECT_EQ(maxFramingNesting(R), 1u);
  EXPECT_EQ(R, Ctx.framing(Ex.Phi1,
                           Ctx.seq(Ctx.event("a"), Ctx.event("b"))));
}

TEST_F(ValidityTest, RegularizeKeepsDistinctPolicies) {
  const Expr *E =
      Ctx.framing(Ex.Phi1, Ctx.framing(Ex.Phi2, Ctx.event("a")));
  EXPECT_EQ(regularizeFramings(Ctx, E), E);
}

TEST_F(ValidityTest, RegularizeSeesThroughRequestPolicies) {
  // The request's policy frames its session; an identical framing inside
  // is redundant.
  const Expr *E =
      Ctx.request(1, Ex.Phi1, Ctx.framing(Ex.Phi1, Ctx.event("a")));
  const Expr *R = regularizeFramings(Ctx, E);
  EXPECT_EQ(R, Ctx.request(1, Ex.Phi1, Ctx.event("a")));
}

TEST_F(ValidityTest, RegularizePreservesProjection) {
  // Framings are invisible to contracts: H! = (regularize H)!.
  const Expr *E = Ctx.framing(
      Ex.Phi1,
      Ctx.send("a", Ctx.framing(Ex.Phi1,
                                Ctx.receive("b", Ctx.event("x")))));
  const Expr *R = regularizeFramings(Ctx, E);
  EXPECT_EQ(contract::project(Ctx, E), contract::project(Ctx, R));
}

TEST_F(ValidityTest, RegularizeIsIdempotent) {
  const Expr *E = Ctx.framing(
      Ex.Phi1,
      Ctx.seq(Ctx.framing(Ex.Phi1, Ctx.event("a")),
              Ctx.framing(Ex.Phi2, Ctx.framing(Ex.Phi2, Ctx.event("b")))));
  const Expr *R = regularizeFramings(Ctx, E);
  EXPECT_EQ(regularizeFramings(Ctx, R), R);
}

//===----------------------------------------------------------------------===//
// The §2 plan-validity claims
//===----------------------------------------------------------------------===//

TEST_F(ValidityTest, Pi1IsSecurityValidForC1) {
  auto R = checkPlanValidity(Ctx, Ex.C1, Ex.LC1, Ex.pi1(), Ex.Repo,
                             Ex.Registry);
  EXPECT_TRUE(R.Valid) << "failure kind "
                       << static_cast<int>(R.Failure);
  EXPECT_FALSE(R.HasStuckConfiguration);
  EXPECT_GT(R.ExploredStates, 5u);
}

TEST_F(ValidityTest, BlackListedS1ViolatesPhi1) {
  plan::Plan Pi;
  Pi.bind(1, Ex.LBr);
  Pi.bind(3, Ex.LS1); // S1 is black-listed by C1.
  auto R = checkPlanValidity(Ctx, Ex.C1, Ex.LC1, Pi, Ex.Repo, Ex.Registry);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.Failure, PlanFailureKind::PolicyViolation);
  ASSERT_TRUE(R.Policy.has_value());
  EXPECT_EQ(*R.Policy, Ex.Phi1);
  // The violating trace ends with the black-listed signature event.
  ASSERT_FALSE(R.Trace.empty());
  EXPECT_NE(R.Trace.back().find("sgn"), std::string::npos);
}

TEST_F(ValidityTest, S4ViolatesBothThresholdsOfPhi1) {
  plan::Plan Pi;
  Pi.bind(1, Ex.LBr);
  Pi.bind(3, Ex.LS4); // price 50 > 45, rating 90 < 100.
  auto R = checkPlanValidity(Ctx, Ex.C1, Ex.LC1, Pi, Ex.Repo, Ex.Registry);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.Failure, PlanFailureKind::PolicyViolation);
  // The violation fires at the rating event (the price alone is fine).
  ASSERT_FALSE(R.Trace.empty());
  EXPECT_NE(R.Trace.back().find("ta"), std::string::npos);
}

TEST_F(ValidityTest, Pi3ViolatesBecauseS3BlackListedByC2) {
  auto R = checkPlanValidity(Ctx, Ex.C2, Ex.LC2, Ex.pi3(), Ex.Repo,
                             Ex.Registry);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.Failure, PlanFailureKind::PolicyViolation);
  ASSERT_TRUE(R.Policy.has_value());
  EXPECT_EQ(*R.Policy, Ex.Phi2);
}

TEST_F(ValidityTest, Pi2ValidPlanForC2PassesSecurity) {
  auto R = checkPlanValidity(Ctx, Ex.C2, Ex.LC2, Ex.pi2Valid(), Ex.Repo,
                             Ex.Registry);
  EXPECT_TRUE(R.Valid);
}

TEST_F(ValidityTest, Pi2SecurityHoldsButCompletionMayStick) {
  // π2 binds request 3 to the non-compliant S2. Security-wise nothing is
  // violated (S2's events satisfy ϕ2); the failure is a progress failure,
  // caught by the §4 compliance check, not here (angelic semantics).
  auto R = checkPlanValidity(Ctx, Ex.C2, Ex.LC2, Ex.pi2(), Ex.Repo,
                             Ex.Registry);
  EXPECT_TRUE(R.Valid);
}

TEST_F(ValidityTest, UnboundRequestIsReported) {
  plan::Plan Pi;
  Pi.bind(1, Ex.LBr); // request 3 of the broker is left unbound.
  auto R = checkPlanValidity(Ctx, Ex.C1, Ex.LC1, Pi, Ex.Repo, Ex.Registry);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.Failure, PlanFailureKind::UnboundRequest);
  ASSERT_TRUE(R.Request.has_value());
  EXPECT_EQ(*R.Request, 3u);
}

TEST_F(ValidityTest, UnknownServiceLocationIsReported) {
  plan::Plan Pi;
  Pi.bind(1, Ctx.symbol("nowhere"));
  auto R = checkPlanValidity(Ctx, Ex.C1, Ex.LC1, Pi, Ex.Repo, Ex.Registry);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.Failure, PlanFailureKind::UnknownService);
}

TEST_F(ValidityTest, UnknownPolicyIsReported) {
  PolicyRef Mystery;
  Mystery.Name = Ctx.symbol("mystery");
  const Expr *Client =
      Ctx.request(9, Mystery, Ctx.send("Req", Ctx.empty()));
  plan::Plan Pi;
  Pi.bind(9, Ex.LBr);
  auto R = checkPlanValidity(Ctx, Client, Ex.LC1, Pi, Ex.Repo, Ex.Registry);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.Failure, PlanFailureKind::UnknownPolicy);
}

TEST_F(ValidityTest, HistoryDependenceAcrossSessions) {
  // A client that performs a violating event *before* opening a framed
  // session: ϕ is history-dependent, so the plan must be rejected even
  // though the event predates the frame.
  StringInterner &In = Ctx.interner();
  policy::PolicyRegistry Registry;
  Registry.add(policy::makeNeverAfterPolicy(In, "noWaR", "read", "write"));

  PolicyRef NoWaR;
  NoWaR.Name = Ctx.symbol("noWaR");

  // Service writes; client already read.
  const Expr *Writer =
      Ctx.receive("go", Ctx.seq(Ctx.event("write"), Ctx.empty()));
  plan::Repository Repo;
  plan::Loc LW = Ctx.symbol("w");
  Repo.add(LW, Writer);

  const Expr *Client = Ctx.seq(
      Ctx.event("read"),
      Ctx.request(1, NoWaR, Ctx.send("go", Ctx.empty())));
  plan::Plan Pi;
  Pi.bind(1, LW);
  auto R = checkPlanValidity(Ctx, Client, Ctx.symbol("c"), Pi, Repo,
                             Registry);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.Failure, PlanFailureKind::PolicyViolation);

  // Same service, but the client read nothing: fine.
  const Expr *CleanClient =
      Ctx.request(1, NoWaR, Ctx.send("go", Ctx.empty()));
  auto R2 = checkPlanValidity(Ctx, CleanClient, Ctx.symbol("c"), Pi, Repo,
                              Registry);
  EXPECT_TRUE(R2.Valid);
}

TEST_F(ValidityTest, FrameClosesRestorePermissiveness) {
  // Policy active only during the session; after close the client may
  // fire the "forbidden" event freely.
  StringInterner &In = Ctx.interner();
  policy::PolicyRegistry Registry;
  Registry.add(policy::makeNeverAfterPolicy(In, "noWaR", "read", "write"));
  PolicyRef NoWaR;
  NoWaR.Name = Ctx.symbol("noWaR");

  const Expr *Reader =
      Ctx.receive("go", Ctx.seq(Ctx.event("read"), Ctx.empty()));
  plan::Repository Repo;
  plan::Loc LR = Ctx.symbol("r");
  Repo.add(LR, Reader);

  // After the framed session (which reads), the client writes. The write
  // happens outside the frame: valid.
  const Expr *Client = Ctx.seq(
      Ctx.request(1, NoWaR, Ctx.send("go", Ctx.empty())),
      Ctx.event("write"));
  plan::Plan Pi;
  Pi.bind(1, LR);
  auto R = checkPlanValidity(Ctx, Client, Ctx.symbol("c"), Pi, Repo,
                             Registry);
  EXPECT_TRUE(R.Valid);
}

TEST_F(ValidityTest, ViolationInsideNestedSessionIsFound) {
  // The client's policy must also constrain events of the *nested*
  // session opened by its callee (the history is per component).
  auto R = checkPlanValidity(Ctx, Ex.C1, Ex.LC1,
                             [&] {
                               plan::Plan Pi;
                               Pi.bind(1, Ex.LBr);
                               Pi.bind(3, Ex.LS1);
                               return Pi;
                             }(),
                             Ex.Repo, Ex.Registry);
  EXPECT_FALSE(R.Valid);
}

TEST_F(ValidityTest, RegularizationDoesNotChangeVerdicts) {
  StaticValidityOptions NoReg;
  NoReg.Regularize = false;
  StaticValidityOptions WithReg;
  WithReg.Regularize = true;

  std::vector<std::pair<const Expr *, plan::Plan>> Cases = {
      {Ex.C1, Ex.pi1()},
      {Ex.C2, Ex.pi2Valid()},
      {Ex.C2, Ex.pi3()},
  };
  for (auto &[Client, Pi] : Cases) {
    auto A = checkPlanValidity(Ctx, Client, Ex.LC1, Pi, Ex.Repo,
                               Ex.Registry, NoReg);
    auto B = checkPlanValidity(Ctx, Client, Ex.LC1, Pi, Ex.Repo,
                               Ex.Registry, WithReg);
    EXPECT_EQ(A.Valid, B.Valid);
    EXPECT_EQ(A.Failure, B.Failure);
  }
}

//===----------------------------------------------------------------------===//
// Quantitative cost analysis (§5 future work)
//===----------------------------------------------------------------------===//

class CostTest : public ::testing::Test {
protected:
  HistContext Ctx;

  CostModel model(std::map<std::string, int64_t> Costs) {
    CostModel M;
    for (auto &[Name, C] : Costs)
      M.EventCost[Ctx.symbol(Name)] = C;
    return M;
  }
};

TEST_F(CostTest, SequenceCostsAdd) {
  const Expr *E = Ctx.seq({Ctx.event("io"), Ctx.event("cpu"),
                           Ctx.event("io")});
  auto R = maxEventCost(Ctx, E, model({{"io", 10}, {"cpu", 3}}));
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.MaxCost, 23);
}

TEST_F(CostTest, ChoiceTakesWorstBranch) {
  const Expr *E = Ctx.extChoice({
      {CommAction::input(Ctx.symbol("a")), Ctx.event("cheap")},
      {CommAction::input(Ctx.symbol("b")), Ctx.event("pricey")},
  });
  auto R = maxEventCost(Ctx, E, model({{"cheap", 1}, {"pricey", 100}}));
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.MaxCost, 100);
}

TEST_F(CostTest, FreeLoopIsBounded) {
  // Recursion whose body costs nothing accumulates nothing.
  const Expr *E = Ctx.mu("h", Ctx.send("ping", Ctx.var("h")));
  auto R = maxEventCost(Ctx, E, model({{"io", 5}}));
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.MaxCost, 0);
}

TEST_F(CostTest, CostlyLoopIsUnbounded) {
  const Expr *E = Ctx.mu(
      "h", Ctx.send("ping", Ctx.seq(Ctx.event("io"), Ctx.var("h"))));
  auto R = maxEventCost(Ctx, E, model({{"io", 5}}));
  EXPECT_FALSE(R.Bounded);
}

TEST_F(CostTest, LoopWithCostlyExitIsBounded) {
  // The loop itself is free; only the exit path costs.
  const Expr *E = Ctx.mu(
      "h", Ctx.extChoice({
               {CommAction::input(Ctx.symbol("again")), Ctx.var("h")},
               {CommAction::input(Ctx.symbol("stop")), Ctx.event("io")},
           }));
  auto R = maxEventCost(Ctx, E, model({{"io", 7}}));
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.MaxCost, 7);
}

TEST_F(CostTest, DefaultCostApplies) {
  CostModel M;
  M.DefaultCost = 2;
  const Expr *E = Ctx.seq(Ctx.event("x"), Ctx.event("y"));
  auto R = maxEventCost(Ctx, E, M);
  EXPECT_EQ(R.MaxCost, 4);
}

TEST_F(CostTest, HotelBookingSessionCost) {
  // The paper's S3 run costs sign + price + rating under a uniform model.
  HotelExample Ex2 = makeHotelExample(Ctx);
  CostModel M;
  M.DefaultCost = 1;
  auto R = maxEventCost(Ctx, Ex2.S3, M);
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.MaxCost, 3);
}

TEST_F(ValidityTest, StateSpaceCapIsReported) {
  StaticValidityOptions Tiny;
  Tiny.MaxStates = 2;
  auto R = checkPlanValidity(Ctx, Ex.C1, Ex.LC1, Ex.pi1(), Ex.Repo,
                             Ex.Registry, Tiny);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.Failure, PlanFailureKind::StateSpaceExceeded);
}

} // namespace
