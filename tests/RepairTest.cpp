//===- tests/RepairTest.cpp - incremental plan repair ---------------------===//
///
/// The RepairSession contract: cache eviction is precise (exactly the
/// entries a delta can make stale, counted), a repaired report is
/// element-wise what a from-scratch verification of the churned
/// repository produces, and a governor trip mid-repair surfaces as an
/// Outcome — the session stays coherent and is never wrong.
///
//===----------------------------------------------------------------------===//

#include "core/HotelExample.h"
#include "core/Repair.h"
#include "plan/RepositoryDelta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

using namespace sus;
using namespace sus::core;
using namespace sus::hist;
using namespace sus::plan;

namespace {

class RepairTest : public ::testing::Test {
protected:
  RepairTest() : Ex(makeHotelExample(Ctx)) {}

  static size_t plansMentioning(const VerificationReport &Report,
                                const std::set<Loc> &Touched) {
    size_t N = 0;
    for (const PlanVerdict &V : Report.Verdicts)
      if (planMentions(V.Pi, Touched))
        ++N;
    return N;
  }

  /// Element-wise comparison against a canonical (plan-sorted) report.
  static void expectSameVerdicts(const VerificationReport &Repaired,
                                 VerificationReport Scratch) {
    std::sort(Scratch.Verdicts.begin(), Scratch.Verdicts.end(),
              [](const PlanVerdict &A, const PlanVerdict &B) {
                return A.Pi < B.Pi;
              });
    ASSERT_EQ(Repaired.Verdicts.size(), Scratch.Verdicts.size());
    for (size_t I = 0; I < Repaired.Verdicts.size(); ++I) {
      const PlanVerdict &R = Repaired.Verdicts[I];
      const PlanVerdict &S = Scratch.Verdicts[I];
      EXPECT_TRUE(R.Pi == S.Pi) << "verdict " << I << " plans differ";
      EXPECT_EQ(R.isValid(), S.isValid()) << "verdict " << I;
      EXPECT_EQ(R.compliancePassed(), S.compliancePassed()) << "verdict " << I;
      EXPECT_EQ(R.Security.Valid, S.Security.Valid) << "verdict " << I;
    }
  }

  HistContext Ctx;
  HotelExample Ex;
};

//===----------------------------------------------------------------------===//
// Eviction precision
//===----------------------------------------------------------------------===//

TEST_F(RepairTest, EvictionTouchesExactlyTheStaleEntries) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  VerificationReport Baseline = V.verifyClient(Ex.C1, Ex.LC1);
  ASSERT_FALSE(Baseline.Verdicts.empty());
  size_t MentionS3 = plansMentioning(Baseline, {Ex.LS3});
  ASSERT_GT(MentionS3, 0u);

  // Re-version s3 with S4's behaviour: the old S3 expression is retired
  // (nobody else publishes it).
  RepositoryDelta Delta;
  Delta.Changes.push_back(applyPublish(Ex.Repo, Ex.LS3, Ex.S4));
  VerifierCache::EvictionStats Evicted = V.applyDelta(Delta);

  // Validity: exactly the cached verdicts whose plan binds s3.
  EXPECT_EQ(Evicted.ValidityEvicted, MentionS3);
  // Compliance: the pruning filter checked S3 against the bodies of
  // request 1 and request 3 — two pairs, both keyed on the retired expr.
  EXPECT_EQ(Evicted.ComplianceEvicted, 2u);
  // Projection: S3's own projection; the request-body projections are
  // client-side and must survive.
  EXPECT_EQ(Evicted.ProjectionEvicted, 1u);
}

TEST_F(RepairTest, AddingAServiceEvictsNothing) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  V.verifyClient(Ex.C1, Ex.LC1);

  RepositoryDelta Delta;
  Delta.Changes.push_back(
      applyPublish(Ex.Repo, Ctx.symbol("s9"), Ex.S1));
  VerifierCache::EvictionStats Evicted = V.applyDelta(Delta);
  EXPECT_EQ(Evicted.ValidityEvicted, 0u);
  EXPECT_EQ(Evicted.ComplianceEvicted, 0u);
  EXPECT_EQ(Evicted.ProjectionEvicted, 0u);
}

TEST_F(RepairTest, AliasedExpressionsAreNotRetiredEarly) {
  // Publish S1's hash-consed expression at a second location, verify so
  // the cache holds verdicts about it, then unpublish the alias: every
  // S1-keyed compliance/projection entry must survive, because s1 still
  // publishes the same expression. Only the plans binding the alias go.
  RepositoryDelta Publish;
  Loc Alias = Ctx.symbol("s9");
  Publish.Changes.push_back(applyPublish(Ex.Repo, Alias, Ex.S1));

  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  VerifierCache::EvictionStats PublishEvicted = V.applyDelta(Publish);
  EXPECT_EQ(PublishEvicted.ComplianceEvicted, 0u); // Cold cache: no-op.
  VerificationReport Report = V.verifyClient(Ex.C1, Ex.LC1);
  size_t MentionAlias = plansMentioning(Report, {Alias});
  ASSERT_GT(MentionAlias, 0u);

  RepositoryDelta Remove;
  Remove.Changes.push_back(applyRemove(Ex.Repo, Alias));
  VerifierCache::EvictionStats Evicted = V.applyDelta(Remove);
  EXPECT_EQ(Evicted.ValidityEvicted, MentionAlias);
  EXPECT_EQ(Evicted.ComplianceEvicted, 0u);
  EXPECT_EQ(Evicted.ProjectionEvicted, 0u);
}

//===----------------------------------------------------------------------===//
// Repair == from scratch
//===----------------------------------------------------------------------===//

TEST_F(RepairTest, RepairedReportMatchesFromScratchOverChurnSeeds) {
  struct Lcg {
    uint64_t S;
    uint64_t next() {
      S = S * 6364136223846793005ULL + 1442695040888963407ULL;
      return S >> 33;
    }
  };

  for (unsigned Seed = 0; Seed < 8; ++Seed) {
    HistContext LocalCtx;
    HotelExample Local = makeHotelExample(LocalCtx);
    std::map<Loc, const Expr *> Original;
    for (const auto &[L, S] : Local.Repo.services())
      Original[L] = S;
    std::vector<Loc> Locations;
    for (const auto &[L, S] : Local.Repo.services())
      Locations.push_back(L);

    VerifierOptions Opts;
    Opts.UseIndex = true;
    Verifier V(LocalCtx, Local.Repo, Local.Registry, Opts);
    RepairSession Session(V, Local.C1, Local.LC1);
    Session.verify();

    Lcg Rng{Seed * 0x9E3779B97F4A7C15ULL + 0xC0FFEE};
    for (unsigned Round = 0; Round < 4; ++Round) {
      // Toggle one location: unpublish it, or republish the original.
      Loc L = Locations[Rng.next() % Locations.size()];
      RepositoryDelta Delta;
      if (Local.Repo.find(L))
        Delta.Changes.push_back(applyRemove(Local.Repo, L));
      else
        Delta.Changes.push_back(applyPublish(Local.Repo, L, Original[L]));

      Outcome<RepairStats> Out = Session.applyDelta(Delta);
      ASSERT_TRUE(Out.ok()) << "seed " << Seed << " round " << Round;

      // Only the plans binding the touched location were re-checked.
      EXPECT_EQ(Out.value().PlansReverified,
                plansMentioning(Session.report(), Delta.touched()))
          << "seed " << Seed << " round " << Round;

      // A fresh verifier over the churned repository must agree verdict
      // for verdict.
      Verifier Fresh(LocalCtx, Local.Repo, Local.Registry);
      expectSameVerdicts(Session.report(),
                         Fresh.verifyClient(Local.C1, Local.LC1));
    }
  }
}

TEST_F(RepairTest, RepairDiscoversNewlyPublishedServices) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  RepairSession Session(V, Ex.C1, Ex.LC1);
  size_t Before = Session.verify().Verdicts.size();
  ASSERT_GT(Before, 0u);

  // A new hotel with S1's behaviour: request 3 gains one candidate.
  Loc Fresh = Ctx.symbol("s9");
  RepositoryDelta Delta;
  Delta.Changes.push_back(applyPublish(Ex.Repo, Fresh, Ex.S1));
  Outcome<RepairStats> Out = Session.applyDelta(Delta);
  ASSERT_TRUE(Out.ok());

  const VerificationReport &Report = Session.report();
  EXPECT_EQ(Out.value().PlansKept, Before);
  EXPECT_EQ(Out.value().PlansDropped, 0u);
  EXPECT_EQ(Report.Verdicts.size(),
            Before + Out.value().PlansReverified);
  EXPECT_GT(plansMentioning(Report, {Fresh}), 0u);

  Verifier Scratch(Ctx, Ex.Repo, Ex.Registry);
  expectSameVerdicts(Report, Scratch.verifyClient(Ex.C1, Ex.LC1));
}

//===----------------------------------------------------------------------===//
// Governed repair: Inconclusive, never wrong
//===----------------------------------------------------------------------===//

TEST_F(RepairTest, TrippedGovernorMakesRepairInconclusiveNotWrong) {
  VerifierOptions Opts;
  Opts.Governor = std::make_shared<ResourceGovernor>();
  Verifier V(Ctx, Ex.Repo, Ex.Registry, Opts);
  RepairSession Session(V, Ex.C1, Ex.LC1);
  const VerificationReport &Baseline = Session.verify();
  ASSERT_FALSE(Baseline.anyInconclusive());
  size_t Untouched =
      Baseline.Verdicts.size() - plansMentioning(Baseline, {Ex.LS3});

  // Trip the budget, then churn s3: the kept verdicts must survive, the
  // affected ones must be reported as unknown — not silently dropped as
  // "invalid".
  Opts.Governor->requestCancel();
  RepositoryDelta Delta;
  Delta.Changes.push_back(applyPublish(Ex.Repo, Ex.LS3, Ex.S4));
  Outcome<RepairStats> Out = Session.applyDelta(Delta);
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.exhausted().Which, ResourceKind::Cancelled);

  const VerificationReport &Report = Session.report();
  EXPECT_TRUE(Report.EnumerationExhausted.has_value());
  EXPECT_TRUE(Report.anyInconclusive());
  EXPECT_EQ(Report.Verdicts.size(), Untouched);
  for (const PlanVerdict &Verdict : Report.Verdicts)
    EXPECT_FALSE(planMentions(Verdict.Pi, {Ex.LS3}))
        << "a verdict about the churned location survived a cut-short "
           "repair";
}

} // namespace
