//===- negcompile/clean.cpp - positive control: MUST compile everywhere ---===//
//
// Exercises the same shapes as the violation fixtures, done correctly.
// If this fixture stops compiling, the harness is broken (bad include
// path, bad flags) — every "rejected violation" result would be
// meaningless, so the driver hard-fails on it first.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

struct Account {
  sus::Mutex M;
  long Balance SUS_GUARDED_BY(M) = 0;
};

long deposit(Account &A, long Delta) {
  sus::MutexLock Lock(A.M);
  A.Balance += Delta;
  return A.Balance;
}

class Ledger {
public:
  void postLocked(long Delta) SUS_REQUIRES(M) { Total += Delta; }

  void post(long Delta) {
    sus::MutexLock Lock(M);
    postLocked(Delta);
  }

private:
  sus::Mutex M;
  long Total SUS_GUARDED_BY(M) = 0;
};

struct TwoLocks {
  sus::Mutex A;
  sus::Mutex B SUS_ACQUIRED_AFTER(A);
};

void ordered(TwoLocks &T) {
  sus::MutexLock LockA(T.A);
  sus::MutexLock LockB(T.B);
}

void exercise(Ledger &L) { L.post(1); }
