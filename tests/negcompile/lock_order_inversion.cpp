//===- negcompile/lock_order_inversion.cpp - MUST NOT COMPILE under Clang -===//
//
// Acquires two mutexes against their declared SUS_ACQUIRED_AFTER order.
// The ordering check lives in -Wthread-safety-beta, which the harness
// (and the thread-safety CI job) enables alongside -Wthread-safety.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

struct TwoLocks {
  sus::Mutex A;
  sus::Mutex B SUS_ACQUIRED_AFTER(A);
};

void inverted(TwoLocks &T) {
  sus::MutexLock LockB(T.B);
  sus::MutexLock LockA(T.A); // VIOLATION: A is ordered before B.
}
