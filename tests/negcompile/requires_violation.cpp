//===- negcompile/requires_violation.cpp - MUST NOT COMPILE under Clang ---===//
//
// Calls a SUS_REQUIRES(M) method without holding M — the "forgot to lock
// before the ...Locked helper" mistake the annotations exist to catch.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

class Ledger {
public:
  void postLocked(long Delta) SUS_REQUIRES(M) { Total += Delta; }

  void post(long Delta) {
    postLocked(Delta); // VIOLATION: caller must hold M.
  }

private:
  sus::Mutex M;
  long Total SUS_GUARDED_BY(M) = 0;
};

void exercise(Ledger &L) { L.post(1); }
