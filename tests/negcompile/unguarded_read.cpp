//===- negcompile/unguarded_read.cpp - MUST NOT COMPILE under Clang -------===//
//
// Reads a SUS_GUARDED_BY field without holding its mutex. Under
// `-Wthread-safety -Werror` Clang must reject this translation unit; on
// compilers where the annotations are no-ops it must compile cleanly
// (that direction is checked too, so the fixture stays valid C++).
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

struct Account {
  sus::Mutex M;
  long Balance SUS_GUARDED_BY(M) = 0;
};

long unguardedRead(Account &A) {
  return A.Balance; // VIOLATION: A.M is not held.
}
