//===- tests/SerializeTest.cpp - Snapshot byte layer and codecs -----------===//
///
/// \file
/// Unit tests for the serialize/ layer under the persistent cache
/// snapshot (DESIGN.md §13): explicit little-endian primitive layout,
/// the sticky-error Reader contract, the tagged-section container's
/// strictness (magic, version, checksums, duplicate/unknown tags,
/// truncation, trailing bytes — every one a clean diagnostic), and the
/// string-table / expression-pool codecs that re-establish hash-consed
/// identity in a fresh HistContext.
///
//===----------------------------------------------------------------------===//

#include "serialize/Serialize.h"
#include "serialize/Snapshot.h"

#include "hist/HistContext.h"

#include <gtest/gtest.h>

using namespace sus;
using namespace sus::serialize;

namespace {

//===----------------------------------------------------------------------===//
// Writer / Reader primitives
//===----------------------------------------------------------------------===//

TEST(SerializeWriter, EmitsLittleEndianBytes) {
  Writer W;
  W.putU32(0x01020304u);
  std::string B = W.take();
  ASSERT_EQ(B.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(B[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(B[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(B[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(B[3]), 0x01);
}

TEST(SerializeWriter, PrimitivesRoundTrip) {
  Writer W;
  W.putU8(0xab);
  W.putU16(0xbeef);
  W.putU32(0xdeadbeefu);
  W.putU64(0x0123456789abcdefull);
  W.putI64(-42);
  W.putString("hello");
  W.putString("");
  std::string B = W.take();

  Reader R(B);
  EXPECT_EQ(R.getU8(), 0xab);
  EXPECT_EQ(R.getU16(), 0xbeef);
  EXPECT_EQ(R.getU32(), 0xdeadbeefu);
  EXPECT_EQ(R.getU64(), 0x0123456789abcdefull);
  EXPECT_EQ(R.getI64(), -42);
  EXPECT_EQ(R.getString(), "hello");
  EXPECT_EQ(R.getString(), "");
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.failed());
}

TEST(SerializeReader, UnderrunIsStickyAndZero) {
  std::string Two("\x01\x02", 2);
  Reader R(Two);
  EXPECT_EQ(R.getU32(), 0u); // Underrun: 4 > 2.
  EXPECT_TRUE(R.failed());
  EXPECT_FALSE(R.error().empty());
  // Every subsequent read stays zero/empty — no partial interpretation.
  EXPECT_EQ(R.getU8(), 0u);
  EXPECT_EQ(R.getU64(), 0u);
  EXPECT_TRUE(R.getString().empty());
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(SerializeReader, StringLengthBeyondInputFails) {
  Writer W;
  W.putU32(1000); // Claims 1000 bytes, provides 3.
  W.putBytes("abc");
  Reader R(W.bytes());
  EXPECT_TRUE(R.getString().empty());
  EXPECT_TRUE(R.failed());
}

TEST(SerializeReader, CheckCountRejectsOversizedCounts) {
  std::string Small(16, '\0');
  Reader R(Small);
  EXPECT_TRUE(R.checkCount(2, 8, "record"));
  EXPECT_FALSE(R.failed());
  EXPECT_FALSE(R.checkCount(3, 8, "record")); // 24 bytes cannot fit in 16.
  EXPECT_TRUE(R.failed());
  EXPECT_NE(R.error().find("record"), std::string::npos);
}

TEST(SerializeReader, ExplicitFailWins) {
  Reader R("abcd");
  R.fail("first");
  R.fail("second");
  EXPECT_EQ(R.error(), "first");
}

//===----------------------------------------------------------------------===//
// Section container
//===----------------------------------------------------------------------===//

std::string twoSectionSnapshot() {
  SectionWriter W;
  W.addSection(SectionTag::Strings, "alpha");
  W.addSection(SectionTag::Exprs, "beta-payload");
  return W.finish();
}

TEST(SectionContainer, RoundTripsAndReportsMissingSections) {
  std::string B = twoSectionSnapshot();
  SectionReader R(B);
  ASSERT_TRUE(R.ok()) << R.error();
  ASSERT_TRUE(R.section(SectionTag::Strings).has_value());
  EXPECT_EQ(*R.section(SectionTag::Strings), "alpha");
  EXPECT_EQ(*R.section(SectionTag::Exprs), "beta-payload");
  EXPECT_FALSE(R.section(SectionTag::Fused).has_value());
}

TEST(SectionContainer, RejectsBadMagic) {
  std::string B = twoSectionSnapshot();
  B[0] = 'X';
  SectionReader R(B);
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.error().empty());
}

TEST(SectionContainer, RejectsWrongVersionNamingBothVersions) {
  std::string B = twoSectionSnapshot();
  B[8] = static_cast<char>(FormatVersion + 1); // Version u32 little-endian.
  SectionReader R(B);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("version"), std::string::npos) << R.error();
}

TEST(SectionContainer, RejectsEveryTruncation) {
  std::string B = twoSectionSnapshot();
  for (size_t Len = 0; Len < B.size(); ++Len) {
    SectionReader R(std::string_view(B).substr(0, Len));
    EXPECT_FALSE(R.ok()) << "truncation to " << Len << " bytes accepted";
    EXPECT_FALSE(R.error().empty());
  }
}

TEST(SectionContainer, RejectsTrailingBytes) {
  std::string B = twoSectionSnapshot() + std::string(1, '\0');
  SectionReader R(B);
  EXPECT_FALSE(R.ok());
}

TEST(SectionContainer, RejectsPayloadCorruptionViaChecksum) {
  std::string B = twoSectionSnapshot();
  // Flip one bit in the last payload byte ("beta-payload" trails the blob).
  B[B.size() - 1] = static_cast<char>(B[B.size() - 1] ^ 0x01);
  SectionReader R(B);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("checksum"), std::string::npos) << R.error();
}

TEST(SectionContainer, RejectsDuplicateAndUnknownTags) {
  SectionWriter Dup;
  Dup.addSection(SectionTag::Strings, "one");
  Dup.addSection(SectionTag::Strings, "two");
  SectionReader RDup(Dup.finish());
  EXPECT_FALSE(RDup.ok());

  SectionWriter Unknown;
  Unknown.addSection(static_cast<SectionTag>(999), "zap");
  SectionReader RUnknown(Unknown.finish());
  EXPECT_FALSE(RUnknown.ok());
}

TEST(SectionContainer, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

//===----------------------------------------------------------------------===//
// Symbol table and expression pool codecs
//===----------------------------------------------------------------------===//

TEST(SnapshotCodecs, SymbolTableRoundTripsThroughAFreshInterner) {
  hist::HistContext Src;
  SymbolTable Table(Src.interner());
  Symbol A = Src.symbol("alpha"), B = Src.symbol("beta");
  uint32_t IdA = Table.idOf(A);
  uint32_t IdB = Table.idOf(B);
  EXPECT_NE(IdA, IdB);
  EXPECT_EQ(Table.idOf(A), IdA); // Registration is idempotent.
  EXPECT_EQ(Table.idOf(Symbol()), NoId);

  hist::HistContext Dst;
  std::string Payload = Table.payload(); // Reader views, does not copy.
  Reader R(Payload);
  SymbolDecoder Dec(R, Dst.interner());
  ASSERT_FALSE(R.failed()) << R.error();
  EXPECT_EQ(Dec.size(), 2u);
  EXPECT_EQ(Dst.interner().text(Dec.symbol(IdA, R)), "alpha");
  EXPECT_EQ(Dst.interner().text(Dec.symbol(IdB, R)), "beta");
  EXPECT_FALSE(Dec.symbol(NoId, R).isValid());
  EXPECT_FALSE(R.failed());
  Dec.symbol(17, R); // Out-of-range id fails the reader.
  EXPECT_TRUE(R.failed());
}

TEST(SnapshotCodecs, ExprPoolReestablishesHashConsedIdentity) {
  hist::HistContext Src;
  const hist::Expr *Body = Src.seq(Src.event("book", 1), Src.empty());
  const hist::Expr *Loop = Src.mu("h", Src.seq(Src.event("pay"),
                                               Src.var("h")));

  SymbolTable Strings(Src.interner());
  ExprEncoder Enc(Strings);
  uint32_t BodyId = Enc.idOf(Body);
  uint32_t LoopId = Enc.idOf(Loop);
  EXPECT_EQ(Enc.idOf(Body), BodyId);
  EXPECT_EQ(Enc.idOf(nullptr), NoId);

  // Render the pool *before* the string table: encoding registers
  // symbols lazily, and the decoder reads strings first.
  std::string ExprBytes = Enc.payload();
  std::string StringBytes = Strings.payload();

  hist::HistContext Dst;
  Reader SR(StringBytes);
  SymbolDecoder SDec(SR, Dst.interner());
  ASSERT_FALSE(SR.failed()) << SR.error();
  Reader ER(ExprBytes);
  ExprDecoder EDec(ER, SDec, Dst);
  ASSERT_FALSE(ER.failed()) << ER.error();

  // Identity is re-established through the factories: decoding must land
  // on exactly the pointer the target context's own factories produce.
  EXPECT_EQ(EDec.expr(BodyId, ER),
            Dst.seq(Dst.event("book", 1), Dst.empty()));
  EXPECT_EQ(EDec.expr(LoopId, ER),
            Dst.mu("h", Dst.seq(Dst.event("pay"), Dst.var("h"))));
  EXPECT_EQ(EDec.expr(NoId, ER), nullptr);
  EXPECT_FALSE(ER.failed());

  // A corrupted pool must fail the reader, never reach a factory assert.
  for (size_t Pos = 0; Pos < ExprBytes.size(); ++Pos) {
    std::string Bad = ExprBytes;
    Bad[Pos] = static_cast<char>(Bad[Pos] ^ 0x40);
    hist::HistContext Scratch;
    Reader SR2(StringBytes);
    SymbolDecoder SDec2(SR2, Scratch.interner());
    Reader BR(Bad);
    ExprDecoder BadDec(BR, SDec2, Scratch);
    // Either the decode failed, or the flip produced a different (but
    // well-formed) pool — both are fine; crashing is not.
    (void)BadDec;
  }
}

} // namespace
