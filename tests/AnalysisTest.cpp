//===- tests/AnalysisTest.cpp - lint pass unit tests ----------------------===//
///
/// Fixture-driven tests for the `susc lint` passes. Every .sus file under
/// tests/lint/ carries its own expectations as comment annotations:
///
///   # expect-warning: sus-lint-some-id
///   # expect-error: sus-lint-other-id
///
/// The harness parses the fixture, runs all passes, and compares the SET of
/// (severity, id) pairs observed against the annotated set — so a fixture
/// that legitimately fires the same pass twice carries one annotation, and
/// a clean fixture carries none.
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "hist/HistContext.h"
#include "support/Diagnostics.h"
#include "syntax/FileParser.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

using namespace sus;

namespace {

std::string readFixture(const std::string &Name) {
  std::string Path = std::string(SUS_LINT_FIXTURE_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open fixture " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// (severity, id) pairs, e.g. {"warning", "sus-lint-dead-branch"}.
using FindingSet = std::set<std::pair<std::string, std::string>>;

/// Extracts `# expect-warning:` / `# expect-error:` annotations.
FindingSet expectedFindings(const std::string &Source) {
  FindingSet Expected;
  std::istringstream Lines(Source);
  std::string Line;
  auto Extract = [&](std::string_view Marker, std::string_view Severity) {
    size_t At = Line.find(Marker);
    if (At == std::string::npos)
      return;
    std::string Id = Line.substr(At + Marker.size());
    while (!Id.empty() && (Id.front() == ' ' || Id.front() == '\t'))
      Id.erase(Id.begin());
    while (!Id.empty() && (Id.back() == ' ' || Id.back() == '\r'))
      Id.pop_back();
    Expected.emplace(std::string(Severity), Id);
  };
  while (std::getline(Lines, Line)) {
    Extract("# expect-warning:", "warning");
    Extract("# expect-error:", "error");
  }
  return Expected;
}

/// Parses \p Source and runs every lint pass; returns observed findings.
FindingSet lintFindings(const std::string &Source,
                        const analysis::LintOptions &Opts,
                        DiagnosticEngine &Diags,
                        std::string_view FileName = "fixture.sus") {
  hist::HistContext Ctx;
  std::optional<syntax::SusFile> File =
      syntax::parseSusFile(Ctx, Source, Diags, FileName);
  EXPECT_TRUE(File.has_value()) << "fixture must parse";
  FindingSet Observed;
  if (!File)
    return Observed;
  analysis::LintContext LC(Ctx, *File, FileName, Opts, Diags);
  analysis::runLintPasses(LC);
  for (const Diagnostic &D : Diags.diagnostics())
    Observed.emplace(severityName(D.Severity), D.ID);
  return Observed;
}

class LintFixtureTest : public ::testing::TestWithParam<const char *> {};

TEST_P(LintFixtureTest, FindingsMatchAnnotations) {
  std::string Source = readFixture(GetParam());
  DiagnosticEngine Diags;
  FindingSet Observed =
      lintFindings(Source, analysis::LintOptions(), Diags, GetParam());
  std::ostringstream Rendered;
  Diags.print(Rendered);
  EXPECT_EQ(Observed, expectedFindings(Source)) << Rendered.str();
}

INSTANTIATE_TEST_SUITE_P(
    AllFixtures, LintFixtureTest,
    ::testing::Values("unreachable-state.sus", "overlapping-guards.sus",
                      "unsatisfiable-policy.sus", "nonmonitorable.sus",
                      "vacuous-framing.sus",
                      "doomed-framing.sus", "dead-branch.sus",
                      "nonterminating-recursion.sus",
                      "duplicate-branch-guard.sus", "no-candidate-service.sus",
                      "deadend-ready-sets.sus", "deadend-unknown-binding.sus",
                      "clean.sus"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string Name = Info.param;
      Name = Name.substr(0, Name.find('.'));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(LintRegistryTest, ElevenPassesWithUniqueWellFormedIds) {
  const auto &Passes = analysis::allLintPasses();
  EXPECT_EQ(Passes.size(), 11u);
  std::set<std::string_view> Ids;
  for (const analysis::LintPass *P : Passes) {
    EXPECT_TRUE(P->id().rfind("sus-lint-", 0) == 0) << P->id();
    EXPECT_TRUE(P->category().rfind("lint.", 0) == 0) << P->id();
    EXPECT_FALSE(P->description().empty()) << P->id();
    EXPECT_TRUE(Ids.insert(P->id()).second)
        << "duplicate pass id " << P->id();
  }
  // Policy hygiene runs first; plan checks run last.
  EXPECT_EQ(Passes.front()->id(), "sus-lint-unreachable-state");
  EXPECT_EQ(Passes.back()->id(), "sus-lint-deadend-ready-sets");
}

TEST(LintSeverityTest, WarningsAsErrorsPromotesEverything) {
  std::string Source = readFixture("duplicate-branch-guard.sus");
  analysis::LintOptions Opts;
  Opts.WarningsAsErrors = true;
  DiagnosticEngine Diags;
  FindingSet Observed = lintFindings(Source, Opts, Diags);
  ASSERT_EQ(Observed.size(), 1u);
  EXPECT_EQ(Observed.begin()->first, "error");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LintSeverityTest, ErrorIdsPromoteOnlyThatId) {
  std::string Source = readFixture("dead-branch.sus");
  analysis::LintOptions Opts;
  Opts.ErrorIds.insert("sus-lint-dead-branch");
  DiagnosticEngine Diags;
  FindingSet Observed = lintFindings(Source, Opts, Diags);
  EXPECT_TRUE(Observed.count({"error", "sus-lint-dead-branch"}));
  // The fixture's other finding keeps its default severity.
  EXPECT_TRUE(
      Observed.count({"warning", "sus-lint-nonterminating-recursion"}));
}

TEST(LintSeverityTest, DisabledIdsSuppressFindings) {
  std::string Source = readFixture("dead-branch.sus");
  analysis::LintOptions Opts;
  Opts.DisabledIds.insert("sus-lint-dead-branch");
  Opts.DisabledIds.insert("sus-lint-nonterminating-recursion");
  DiagnosticEngine Diags;
  FindingSet Observed = lintFindings(Source, Opts, Diags);
  EXPECT_TRUE(Observed.empty());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(LintJsonGoldenTest, DuplicateGuardRendersStableJson) {
  // Inline source (not a fixture) so the golden stays byte-stable: the
  // display name is pinned and the finding has no notes.
  std::string Source = "service s { A? . B! + A? . C! }\n";
  analysis::LintOptions Opts;
  DiagnosticEngine Diags;
  lintFindings(Source, Opts, Diags, "fixture.sus");
  std::ostringstream OS;
  Diags.print(OS, DiagFormat::Json);
  EXPECT_EQ(OS.str(),
            "[\n"
            "  {\"file\": \"fixture.sus\", \"line\": 1, \"col\": 9, "
            "\"severity\": \"warning\", "
            "\"id\": \"sus-lint-duplicate-branch-guard\", "
            "\"category\": \"lint.hist\", "
            "\"message\": \"in 's', a choice has multiple branches guarded "
            "by 'A?': the branch taken is ambiguous\", \"notes\": []}\n"
            "]\n");
}

TEST(LintJsonGoldenTest, DeadBranchNoteSurvivesJson) {
  std::string Source = "service s { (mu h . A? . h); B! }\n";
  analysis::LintOptions Opts;
  // Keep one finding so the golden covers the notes array shape.
  Opts.DisabledIds.insert("sus-lint-nonterminating-recursion");
  DiagnosticEngine Diags;
  lintFindings(Source, Opts, Diags, "fixture.sus");
  std::ostringstream OS;
  Diags.print(OS, DiagFormat::Json);
  EXPECT_EQ(OS.str(),
            "[\n"
            "  {\"file\": \"fixture.sus\", \"line\": 1, \"col\": 9, "
            "\"severity\": \"warning\", \"id\": \"sus-lint-dead-branch\", "
            "\"category\": \"lint.hist\", "
            "\"message\": \"in 's', the behaviour after ';' is dead: "
            "'mu h . A? . h' never terminates\", \"notes\": [\n"
            "    {\"file\": \"fixture.sus\", \"line\": 0, \"col\": 0, "
            "\"severity\": \"note\", \"id\": \"\", \"category\": \"\", "
            "\"message\": \"unreachable: 'B!'\"}\n"
            "  ]}\n"
            "]\n");
}

} // namespace
