//===- tests/fuzz/fuzz_lexer.cpp - libFuzzer harness for the Lexer --------===//
///
/// \file
/// Feeds arbitrary bytes to tokenize(). The lexer must never crash and
/// must either diagnose or faithfully scan every byte sequence; the
/// checked accumulation in the number scan (regression: signed-overflow
/// UB on huge literals) is the main prize for the sanitizer.
///
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "syntax/Lexer.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size > 1 << 16)
    return 0;
  std::string_view Buffer(reinterpret_cast<const char *>(Data), Size);
  sus::DiagnosticEngine Diags;
  (void)sus::syntax::tokenize(Buffer, Diags);
  return 0;
}
