//===- tests/fuzz/fuzz_lambdaparser.cpp - libFuzzer LambdaParser harness --===//
///
/// \file
/// Parses arbitrary bytes as a lambda term. Same contract as the hist
/// harness: no crashes, nesting bounded by the shared depth guard,
/// rejections only via diagnostics.
///
//===----------------------------------------------------------------------===//

#include "hist/HistContext.h"
#include "lambda/LambdaContext.h"
#include "support/Diagnostics.h"
#include "syntax/LambdaParser.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size > 1 << 16)
    return 0;
  std::string_view Buffer(reinterpret_cast<const char *>(Data), Size);
  sus::hist::HistContext Ctx;
  sus::lambda::LambdaContext L(Ctx);
  sus::DiagnosticEngine Diags;
  (void)sus::syntax::parseLambdaTerm(L, Buffer, Diags);
  return 0;
}
