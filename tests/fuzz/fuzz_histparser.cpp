//===- tests/fuzz/fuzz_histparser.cpp - libFuzzer harness for HistParser --===//
///
/// \file
/// Parses arbitrary bytes as a hist expression. The parser must never
/// crash: deep nesting is bounded by ParserBase::MaxDepth (regression:
/// recursive descent used to ride the native stack into a crash), and
/// any rejection must come as a clean diagnostic.
///
//===----------------------------------------------------------------------===//

#include "hist/HistContext.h"
#include "support/Diagnostics.h"
#include "syntax/HistParser.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size > 1 << 16)
    return 0;
  std::string_view Buffer(reinterpret_cast<const char *>(Data), Size);
  sus::hist::HistContext Ctx;
  sus::DiagnosticEngine Diags;
  (void)sus::syntax::parseHistExpr(Ctx, Buffer, Diags);
  return 0;
}
