//===- tests/fuzz/fuzz_lint.cpp - libFuzzer harness for the lint passes ---===//
///
/// \file
/// Parses arbitrary bytes as a .sus file and, when the parse succeeds,
/// runs every registered lint pass over the result. Exercises the
/// analysis layer on generator-adjacent shapes the hand-written lint
/// fixtures never reach.
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "hist/HistContext.h"
#include "support/Diagnostics.h"
#include "syntax/FileParser.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size > 1 << 16)
    return 0;
  std::string_view Buffer(reinterpret_cast<const char *>(Data), Size);
  sus::hist::HistContext Ctx;
  sus::DiagnosticEngine Diags;
  std::optional<sus::syntax::SusFile> File =
      sus::syntax::parseSusFile(Ctx, Buffer, Diags, "fuzz.sus");
  if (!File)
    return 0;
  sus::analysis::LintOptions Opts;
  sus::analysis::LintContext LC(Ctx, *File, "fuzz.sus", Opts, Diags);
  (void)sus::analysis::runLintPasses(LC);
  return 0;
}
