//===- tests/fuzz/fuzz_fileparser.cpp - libFuzzer FileParser harness ------===//
///
/// \file
/// Parses arbitrary bytes as a whole .sus file: policy, service, client
/// and plan declarations plus all the cross-declaration validation the
/// file parser performs. The seed corpus holds small valid programs and
/// the regression triggers (huge literal, deep nesting).
///
//===----------------------------------------------------------------------===//

#include "hist/HistContext.h"
#include "support/Diagnostics.h"
#include "syntax/FileParser.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size > 1 << 16)
    return 0;
  std::string_view Buffer(reinterpret_cast<const char *>(Data), Size);
  sus::hist::HistContext Ctx;
  sus::DiagnosticEngine Diags;
  (void)sus::syntax::parseSusFile(Ctx, Buffer, Diags, "fuzz.sus");
  return 0;
}
