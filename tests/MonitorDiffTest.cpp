//===- tests/MonitorDiffTest.cpp - fused vs legacy monitor sweeps ---------===//
///
/// \file
/// Differential tests for the fused-DFA runtime monitor: on ~100 seeded
/// random policy sets and traces, the fused SessionMonitor must make
/// bit-for-bit the same blocked/allowed decisions as the legacy
/// policy::ValidityChecker probe — per label, per multi-label probe, and
/// through the MonitorEngine's sharded batch path — including when a
/// governor trip refuses fusion and the engine falls back to the legacy
/// checker, and through net::Interpreter end to end on the paper's hotel
/// example. Seeds are fixed; nothing depends on wall-clock or the
/// iteration order of unordered containers.
///
//===----------------------------------------------------------------------===//

#include "core/HotelExample.h"
#include "monitor/Fused.h"
#include "monitor/MonitorEngine.h"
#include "monitor/SessionMonitor.h"
#include "net/Interpreter.h"
#include "policy/Compile.h"
#include "policy/Validity.h"
#include "support/ResourceGovernor.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace sus;
using hist::Event;
using hist::Label;
using hist::PolicyRef;

namespace {

/// One randomly generated monitoring scenario: a registry of parametric
/// shapes, a set of instantiated references (plus an uninstantiable ghost
/// and the trivial ∅), a closed event universe, and a trace drawn from it.
struct Scenario {
  hist::HistContext Ctx;
  policy::PolicyRegistry Registry;
  std::vector<PolicyRef> Refs;     ///< Instantiable, non-trivial.
  std::vector<PolicyRef> OpenPool; ///< Refs + ghost + trivial (for frames).
  std::vector<Event> Universe;
  std::vector<Label> Trace;
};

policy::Guard randomGuard(std::mt19937_64 &Rng) {
  auto Op = static_cast<policy::CmpOp>(Rng() % 6);
  switch (Rng() % 4) {
  case 0:
    return policy::Guard::always();
  case 1:
    return policy::Guard::cmpParam(Op, 0);
  default:
    return policy::Guard::cmpConst(
        Op, Value::integer(static_cast<int64_t>(1 + Rng() % 3)));
  }
}

/// A random (possibly nondeterministic) shape with one scalar parameter.
policy::UsageAutomaton randomShape(std::mt19937_64 &Rng, Symbol Name,
                                   Symbol ParamName,
                                   const std::vector<Symbol> &EventNames) {
  policy::UsageAutomaton A(Name, {{ParamName, /*IsSet=*/false}});
  unsigned NumStates = 2 + Rng() % 3;
  for (unsigned I = 0; I < NumStates; ++I)
    A.addState("q" + std::to_string(I),
               /*Offending=*/I + 1 == NumStates); // Last state offends.
  unsigned NumEdges = 2 + Rng() % 5;
  for (unsigned I = 0; I < NumEdges; ++I) {
    auto From = static_cast<policy::UStateId>(Rng() % NumStates);
    auto To = static_cast<policy::UStateId>(Rng() % NumStates);
    if (Rng() % 5 == 0)
      A.addWildcardEdge(From, To);
    else
      A.addEdge(From, EventNames[Rng() % EventNames.size()],
                randomGuard(Rng), To);
  }
  return A;
}

/// Heap-allocated because HistContext pins its address (arena + interner).
std::unique_ptr<Scenario> makeScenario(uint64_t Seed, size_t TraceLen = 60) {
  auto SP = std::make_unique<Scenario>();
  Scenario &S = *SP;
  std::mt19937_64 Rng(Seed);
  StringInterner &In = S.Ctx.interner();

  std::vector<Symbol> EventNames;
  for (const char *N : {"a", "b", "c", "d"})
    EventNames.push_back(In.intern(N));
  Symbol ParamName = In.intern("t");

  unsigned NumShapes = 1 + Rng() % 4;
  for (unsigned I = 0; I < NumShapes; ++I) {
    Symbol Name = In.intern("phi" + std::to_string(I));
    S.Registry.add(randomShape(Rng, Name, ParamName, EventNames));
    unsigned NumInsts = 1 + Rng() % 2;
    for (unsigned K = 0; K < NumInsts; ++K)
      S.Refs.push_back(
          {Name, {{Value::integer(static_cast<int64_t>(1 + Rng() % 3))}}});
  }

  for (Symbol N : EventNames)
    for (int64_t V = 1; V <= 3; ++V)
      S.Universe.push_back({N, Value::integer(V)});

  S.OpenPool = S.Refs;
  // An uninstantiable reference (no such shape): opening it violates.
  S.OpenPool.push_back({In.intern("ghost"), {{Value::integer(1)}}});
  // The trivial policy ∅: framing it constrains nothing.
  S.OpenPool.push_back(PolicyRef{});

  for (size_t I = 0; I < TraceLen; ++I) {
    unsigned R = Rng() % 100;
    if (R < 60)
      S.Trace.push_back(
          Label::event(S.Universe[Rng() % S.Universe.size()]));
    else if (R < 80)
      S.Trace.push_back(
          Label::frameOpen(S.OpenPool[Rng() % S.OpenPool.size()]));
    else
      S.Trace.push_back(
          Label::frameClose(S.OpenPool[Rng() % S.OpenPool.size()]));
  }
  return SP;
}

class MonitorDiffTest : public ::testing::TestWithParam<int> {};

} // namespace

//===----------------------------------------------------------------------===//
// SessionMonitor vs ValidityChecker, label by label and probe by probe
//===----------------------------------------------------------------------===//

TEST_P(MonitorDiffTest, FusedMatchesLegacyProbe) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  std::unique_ptr<Scenario> SP = makeScenario(Seed);
  Scenario &S = *SP;

  Outcome<monitor::FusedPolicyAutomaton> Out = monitor::fusePolicies(
      S.Registry, S.Ctx.interner(), S.Refs, S.Universe);
  ASSERT_TRUE(Out.ok()) << Out.exhausted().str();
  monitor::FusedPolicyAutomaton F = Out.takeValue();

  monitor::SessionMonitor Fused(F);
  policy::ValidityChecker Legacy(S.Registry, S.Ctx.interner());

  std::mt19937_64 ChunkRng(Seed ^ 0x9e3779b97f4a7c15ull);
  size_t I = 0;
  while (I < S.Trace.size()) {
    size_t ChunkLen =
        std::min<size_t>(1 + ChunkRng() % 3, S.Trace.size() - I);
    std::vector<Label> Chunk(S.Trace.begin() + I,
                             S.Trace.begin() + I + ChunkLen);

    // The multi-label probe the Interpreter runs per candidate step.
    EXPECT_EQ(Legacy.wouldRemainValidAll(Chunk), Fused.wouldAdmitAll(Chunk))
        << "seed " << Seed << " probe at " << I;

    for (const Label &L : Chunk) {
      EXPECT_EQ(Legacy.wouldRemainValid(L), Fused.wouldAdmit(L))
          << "seed " << Seed << " wouldAdmit at " << I;
      EXPECT_EQ(Legacy.append(L), Fused.advance(L))
          << "seed " << Seed << " advance at " << I;
      EXPECT_EQ(Legacy.isValid(), !Fused.isViolated())
          << "seed " << Seed << " violation latch at " << I;
      ++I;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HundredSeeds, MonitorDiffTest,
                         ::testing::Range(0, 100));

//===----------------------------------------------------------------------===//
// Governor trip: fusion refuses, the fallback decides identically
//===----------------------------------------------------------------------===//

TEST(MonitorGovernorTest, TrippedFusionFallsBackIdentically) {
  std::unique_ptr<Scenario> SP = makeScenario(/*Seed=*/7);
  Scenario &S = *SP;

  ResourceGovernor Gov;
  Gov.setLimit(ResourceKind::ProductStates, 1);
  monitor::FuseOptions FO;
  FO.Gov = &Gov;

  // The raw fusion must report exhaustion, never a wrong automaton...
  Outcome<monitor::FusedPolicyAutomaton> Out = monitor::fusePolicies(
      S.Registry, S.Ctx.interner(), S.Refs, S.Universe, FO);
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.exhausted().Which, ResourceKind::ProductStates);

  // ...the cache must refuse without recording...
  monitor::FusedCache Cache;
  EXPECT_EQ(Cache.fuse(S.Registry, S.Ctx.interner(), S.Refs, S.Universe, FO),
            nullptr);
  EXPECT_EQ(Cache.stats().Refusals, 1u);
  EXPECT_EQ(Cache.stats().Fusions, 0u);

  // ...and the engine must fall back to a legacy checker that decides
  // exactly as a stand-alone one.
  monitor::MonitorEngine::Options EO;
  EO.Gov = &Gov;
  monitor::MonitorEngine Engine(S.Registry, S.Ctx.interner(), EO);
  monitor::MonitorEngine::SessionId Id =
      Engine.openSession(S.Refs, S.Universe);
  EXPECT_FALSE(Engine.isFused(Id));

  policy::ValidityChecker Legacy(S.Registry, S.Ctx.interner());
  for (const Label &L : S.Trace) {
    EXPECT_EQ(Engine.wouldAdmit(Id, L), Legacy.wouldRemainValid(L));
    EXPECT_EQ(Engine.advance(Id, L), Legacy.append(L));
  }
  EXPECT_EQ(Engine.isViolated(Id), !Legacy.isValid());
}

TEST(MonitorGovernorTest, WidthOverflowRefusesFusion) {
  hist::HistContext Ctx;
  StringInterner &In = Ctx.interner();
  policy::PolicyRegistry Registry;
  Symbol E = In.intern("e");
  policy::UsageAutomaton Shape(In.intern("p"), {{In.intern("t"), false}});
  Shape.addState("ok");
  Shape.addState("bad", /*Offending=*/true);
  Shape.addEdge(0, E, policy::Guard::cmpParam(policy::CmpOp::EQ, 0), 1);
  Registry.add(Shape);

  // 33 distinct instantiations exceed the 32-bit offending mask.
  std::vector<PolicyRef> Refs;
  for (int64_t I = 0; I < 33; ++I)
    Refs.push_back({In.intern("p"), {{Value::integer(I)}}});
  std::vector<Event> Universe{{E, Value::integer(1)}};

  Outcome<monitor::FusedPolicyAutomaton> Out =
      monitor::fusePolicies(Registry, In, Refs, Universe);
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.exhausted().Which, ResourceKind::ProductStates);
  EXPECT_EQ(Out.exhausted().Limit, monitor::FusedPolicyAutomaton::MaxPolicies);
}

//===----------------------------------------------------------------------===//
// MonitorEngine: sharded batches decide exactly like sequential ones
//===----------------------------------------------------------------------===//

TEST(MonitorEngineTest, ShardedIngestMatchesSequentialAndLegacy) {
  std::unique_ptr<Scenario> SP = makeScenario(/*Seed=*/11, /*TraceLen=*/0);
  Scenario &S = *SP;
  std::mt19937_64 Rng(11);

  monitor::MonitorEngine::Options Wide;
  Wide.Workers = 4;
  monitor::MonitorEngine Sharded(S.Registry, S.Ctx.interner(), Wide);
  monitor::MonitorEngine Sequential(S.Registry, S.Ctx.interner());
  std::vector<policy::ValidityChecker> Legacy;

  constexpr unsigned NumSessions = 8;
  for (unsigned I = 0; I < NumSessions; ++I) {
    EXPECT_EQ(Sharded.openSession(S.Refs, S.Universe), I);
    EXPECT_EQ(Sequential.openSession(S.Refs, S.Universe), I);
    EXPECT_TRUE(Sharded.isFused(I));
    Legacy.emplace_back(S.Registry, S.Ctx.interner());
  }

  // One batch of interleaved per-session labels; decisions must agree
  // item-for-item across shard widths and with per-session legacy runs.
  std::vector<monitor::MonitorEngine::BatchItem> Batch;
  for (unsigned I = 0; I < 600; ++I) {
    auto Session =
        static_cast<monitor::MonitorEngine::SessionId>(Rng() % NumSessions);
    unsigned R = Rng() % 100;
    Label L = R < 60
                  ? Label::event(S.Universe[Rng() % S.Universe.size()])
                  : (R < 80 ? Label::frameOpen(
                                  S.OpenPool[Rng() % S.OpenPool.size()])
                            : Label::frameClose(
                                  S.OpenPool[Rng() % S.OpenPool.size()]));
    Batch.push_back({Session, L});
  }

  std::vector<uint8_t> ShardedDecisions, SequentialDecisions;
  Sharded.ingest(Batch, &ShardedDecisions);
  Sequential.ingest(Batch, &SequentialDecisions);
  EXPECT_EQ(ShardedDecisions, SequentialDecisions);

  std::vector<uint8_t> LegacyDecisions(Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I)
    LegacyDecisions[I] = Legacy[Batch[I].Session].append(Batch[I].L) ? 1 : 0;
  EXPECT_EQ(ShardedDecisions, LegacyDecisions);

  for (unsigned I = 0; I < NumSessions; ++I) {
    EXPECT_EQ(Sharded.isViolated(I), Sequential.isViolated(I));
    EXPECT_EQ(Sharded.isViolated(I), !Legacy[I].isValid());
  }
  EXPECT_EQ(Sharded.stats().Events, Batch.size());
}

TEST(MonitorEngineTest, CacheSharesFusionsAcrossSessions) {
  std::unique_ptr<Scenario> SP = makeScenario(/*Seed=*/13, /*TraceLen=*/0);
  Scenario &S = *SP;
  monitor::FusedCache Cache;
  monitor::MonitorEngine::Options EO;
  EO.Cache = &Cache;
  monitor::MonitorEngine Engine(S.Registry, S.Ctx.interner(), EO);
  for (unsigned I = 0; I < 5; ++I)
    Engine.openSession(S.Refs, S.Universe);
  EXPECT_EQ(Cache.stats().Fusions, 1u);
  EXPECT_EQ(Cache.stats().Hits, 4u);

  // Permuting the request reaches the same canonical entry.
  std::vector<PolicyRef> Reversed(S.Refs.rbegin(), S.Refs.rend());
  Engine.openSession(Reversed, S.Universe);
  EXPECT_EQ(Cache.stats().Fusions, 1u);
  EXPECT_EQ(Cache.stats().Hits, 5u);
}

//===----------------------------------------------------------------------===//
// End to end: the Interpreter's fused runs replay the probe runs exactly
//===----------------------------------------------------------------------===//

TEST(MonitorInterpreterTest, FusedRunsMatchProbeRuns) {
  hist::HistContext Ctx;
  core::HotelExample H = core::makeHotelExample(Ctx);

  std::vector<const hist::Expr *> Behaviors{H.C1, H.C2};
  for (plan::Loc L : H.Repo.locations())
    Behaviors.push_back(H.Repo.find(L));
  Outcome<monitor::FusedPolicyAutomaton> Out = monitor::fusePolicies(
      H.Registry, Ctx.interner(), monitor::collectPolicyRefs(Behaviors),
      policy::eventUniverse(Behaviors));
  ASSERT_TRUE(Out.ok());
  monitor::FusedPolicyAutomaton F = Out.takeValue();

  // pi1/pi2Valid complete cleanly; pi3 exercises angelic blocking (S3 is
  // black-listed by C2's policy).
  std::vector<std::vector<net::NetworkComponent>> Networks = {
      {{H.LC1, H.C1, H.pi1()}, {H.LC2, H.C2, H.pi2Valid()}},
      {{H.LC2, H.C2, H.pi3()}},
  };
  for (const auto &Comps : Networks) {
    for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
      net::Interpreter Probe(Ctx, H.Repo, H.Registry, Comps,
                             net::InterpreterOptions{});
      net::InterpreterOptions FO;
      FO.FusedMonitor = &F;
      net::Interpreter Fused(Ctx, H.Repo, H.Registry, Comps, FO);
      ASSERT_TRUE(Fused.fusedMonitorActive());

      net::RunStats PS = Probe.run(Seed);
      net::RunStats FS = Fused.run(Seed);
      EXPECT_EQ(Probe.trace(), Fused.trace()) << "seed " << Seed;
      EXPECT_EQ(PS.StepsTaken, FS.StepsTaken);
      EXPECT_EQ(PS.BlockedAttempts, FS.BlockedAttempts);
      EXPECT_EQ(PS.Violations, FS.Violations);
      EXPECT_EQ(PS.AllCompleted, FS.AllCompleted);
      EXPECT_EQ(PS.StuckComponents, FS.StuckComponents);
      for (size_t C = 0; C < Comps.size(); ++C)
        EXPECT_EQ(Probe.history(C).str(Ctx.interner()),
                  Fused.history(C).str(Ctx.interner()));
    }
  }
}
