//===- tests/BpaTest.cpp - BPA rendering tests ----------------------------===//

#include "bpa/FromHist.h"
#include "hist/Derive.h"
#include "hist/HistContext.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

using namespace sus;
using namespace sus::bpa;
using namespace sus::hist;

namespace {

class BpaTest : public ::testing::Test {
protected:
  HistContext Hist;
  BpaContext Bpa;

  PolicyRef phi() {
    PolicyRef P;
    P.Name = Hist.symbol("phi");
    return P;
  }

  /// All trace prefixes of length <= Depth from a history expression.
  std::set<std::vector<std::string>> histTraces(const Expr *E,
                                                unsigned Depth) {
    std::set<std::vector<std::string>> Out;
    std::vector<std::string> Cur;
    collectHist(E, Depth, Cur, Out);
    return Out;
  }

  void collectHist(const Expr *E, unsigned Depth,
                   std::vector<std::string> &Cur,
                   std::set<std::vector<std::string>> &Out) {
    Out.insert(Cur);
    if (Depth == 0)
      return;
    for (Transition &T : derive(Hist, E)) {
      Cur.push_back(T.L.str(Hist.interner()));
      collectHist(T.Target, Depth - 1, Cur, Out);
      Cur.pop_back();
    }
  }

  /// All trace prefixes of length <= Depth from a BPA term.
  std::set<std::vector<std::string>> bpaTraces(const Term *T,
                                               unsigned Depth) {
    std::set<std::vector<std::string>> Out;
    std::vector<std::string> Cur;
    collectBpa(T, Depth, Cur, Out);
    return Out;
  }

  void collectBpa(const Term *T, unsigned Depth,
                  std::vector<std::string> &Cur,
                  std::set<std::vector<std::string>> &Out) {
    Out.insert(Cur);
    if (Depth == 0)
      return;
    for (BpaTransition &Tr : deriveBpa(Bpa, T)) {
      Cur.push_back(Tr.L.str(Hist.interner()));
      collectBpa(Tr.Target, Depth - 1, Cur, Out);
      Cur.pop_back();
    }
  }

  void expectSameTraces(const Expr *E, unsigned Depth) {
    const Term *T = fromHist(Bpa, Hist, E);
    EXPECT_EQ(histTraces(E, Depth), bpaTraces(T, Depth));
  }
};

TEST_F(BpaTest, NilAndActionsStep) {
  EXPECT_TRUE(deriveBpa(Bpa, Bpa.nil()).empty());
  const Term *A = Bpa.action(Label::event(Event{Hist.symbol("a"), Value()}));
  auto Steps = deriveBpa(Bpa, A);
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_TRUE(Steps[0].Target->isNil());
}

TEST_F(BpaTest, SeqNormalizesNil) {
  const Term *A = Bpa.action(Label::tau());
  EXPECT_EQ(Bpa.seq(Bpa.nil(), A), A);
  EXPECT_EQ(Bpa.seq(A, Bpa.nil()), A);
}

TEST_F(BpaTest, SumIsCommutativeAndIdempotent) {
  const Term *A = Bpa.action(Label::tau());
  const Term *B = Bpa.action(Label::event(Event{Hist.symbol("b"), Value()}));
  EXPECT_EQ(Bpa.sum(A, B), Bpa.sum(B, A));
  EXPECT_EQ(Bpa.sum(A, A), A);
}

TEST_F(BpaTest, SeqStepsThroughLeftThenRight) {
  const Term *A = Bpa.action(Label::event(Event{Hist.symbol("a"), Value()}));
  const Term *B = Bpa.action(Label::event(Event{Hist.symbol("b"), Value()}));
  const Term *S = Bpa.seq(A, B);
  auto Steps = deriveBpa(Bpa, S);
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_EQ(Steps[0].Target, B);
}

TEST_F(BpaTest, VariableUnfoldsDefinition) {
  Symbol X = Hist.symbol("X");
  const Term *A = Bpa.action(Label::event(Event{Hist.symbol("a"), Value()}));
  Bpa.define(X, Bpa.seq(A, Bpa.var(X)));
  auto Steps = deriveBpa(Bpa, Bpa.var(X));
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_EQ(Steps[0].Target, Bpa.var(X));
}

TEST_F(BpaTest, UndefinedVariableIsStuck) {
  EXPECT_TRUE(deriveBpa(Bpa, Bpa.var(Hist.symbol("Y"))).empty());
}

TEST_F(BpaTest, TranslationPreservesTracesOnSequence) {
  const Expr *E = Hist.seq({Hist.event("a"), Hist.event("b"),
                            Hist.event("c", 3)});
  expectSameTraces(E, 4);
}

TEST_F(BpaTest, TranslationPreservesTracesOnChoices) {
  const Expr *E = Hist.send(
      "a", Hist.extChoice({
               {CommAction::input(Hist.symbol("x")), Hist.event("e1")},
               {CommAction::input(Hist.symbol("y")), Hist.event("e2")},
           }));
  expectSameTraces(E, 4);
}

TEST_F(BpaTest, TranslationPreservesTracesOnRequestAndFraming) {
  const Expr *E = Hist.framing(
      phi(), Hist.request(3, PolicyRef(), Hist.send("a", Hist.empty())));
  expectSameTraces(E, 6);
}

TEST_F(BpaTest, TranslationPreservesTracesOnRecursion) {
  const Expr *E = Hist.mu(
      "h", Hist.send("ping", Hist.receive("pong", Hist.var("h"))));
  expectSameTraces(E, 6);
}

TEST_F(BpaTest, LtsOfRegularTermIsFinite) {
  const Expr *E = Hist.mu(
      "h", Hist.send("a", Hist.seq(Hist.event("e"), Hist.var("h"))));
  const Term *T = fromHist(Bpa, Hist, E);
  BpaLts Lts = toLts(Bpa, T);
  EXPECT_TRUE(Lts.Regular);
  EXPECT_LE(Lts.States.size(), 4u);
}

TEST_F(BpaTest, NonRegularTermIsDetected) {
  // X ≝ a·X·b is the textbook context-free BPA: its reachable terms grow
  // without bound.
  Symbol X = Hist.symbol("X");
  const Term *A = Bpa.action(Label::event(Event{Hist.symbol("a"), Value()}));
  const Term *B = Bpa.action(Label::event(Event{Hist.symbol("b"), Value()}));
  Bpa.define(X, Bpa.seq(A, Bpa.seq(Bpa.var(X), B)));
  BpaLts Lts = toLts(Bpa, Bpa.var(X), /*MaxStates=*/64);
  EXPECT_FALSE(Lts.Regular);
}

TEST_F(BpaTest, PrintTermRendersStructure) {
  Symbol X = Hist.symbol("X");
  const Term *A = Bpa.action(Label::event(Event{Hist.symbol("a"), Value()}));
  const Term *T = Bpa.sum(Bpa.seq(A, Bpa.var(X)), Bpa.nil());
  std::string S = printTerm(Bpa, Hist.interner(), T);
  EXPECT_NE(S.find("alpha_a"), std::string::npos);
  EXPECT_NE(S.find("X"), std::string::npos);
  EXPECT_NE(S.find("0"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Random-expression trace preservation
//===----------------------------------------------------------------------===//

/// A random closed expression mixing events, choices, framings, requests
/// and guarded tail recursion (kept small: traces are enumerated).
const Expr *randomSmallExpr(HistContext &Ctx, std::mt19937 &Rng,
                            unsigned Depth, unsigned &NextRequest) {
  if (Depth == 0)
    return Rng() % 2 ? Ctx.empty()
                     : Ctx.event("e" + std::to_string(Rng() % 3));
  switch (Rng() % 6) {
  case 0:
    return Ctx.seq(randomSmallExpr(Ctx, Rng, Depth - 1, NextRequest),
                   randomSmallExpr(Ctx, Rng, Depth - 1, NextRequest));
  case 1: {
    std::vector<ChoiceBranch> Branches;
    unsigned N = 1 + Rng() % 2;
    for (unsigned I = 0; I < N; ++I)
      Branches.push_back(
          {CommAction::input(Ctx.symbol("c" + std::to_string(I))),
           randomSmallExpr(Ctx, Rng, Depth - 1, NextRequest)});
    return Ctx.extChoice(std::move(Branches));
  }
  case 2: {
    std::vector<ChoiceBranch> Branches;
    unsigned N = 1 + Rng() % 2;
    for (unsigned I = 0; I < N; ++I)
      Branches.push_back(
          {CommAction::output(Ctx.symbol("c" + std::to_string(I))),
           randomSmallExpr(Ctx, Rng, Depth - 1, NextRequest)});
    return Ctx.intChoice(std::move(Branches));
  }
  case 3: {
    PolicyRef Phi;
    Phi.Name = Ctx.symbol("phi");
    return Ctx.framing(Phi,
                       randomSmallExpr(Ctx, Rng, Depth - 1, NextRequest));
  }
  case 4:
    return Ctx.request(NextRequest++, PolicyRef(),
                       randomSmallExpr(Ctx, Rng, Depth - 1, NextRequest));
  default: {
    const Expr *Tail = Rng() % 2
                           ? Ctx.var("h")
                           : randomSmallExpr(Ctx, Rng, Depth - 1,
                                             NextRequest);
    return Ctx.mu("h",
                  Ctx.prefix(CommAction::output(Ctx.symbol("loop")), Tail));
  }
  }
}

class BpaRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BpaRandomTest, TranslationPreservesBoundedTraces) {
  HistContext Hist;
  BpaContext Bpa;
  std::mt19937 Rng(GetParam());
  unsigned NextRequest = 1;
  const Expr *E = randomSmallExpr(Hist, Rng, 3, NextRequest);
  const Term *T = fromHist(Bpa, Hist, E);

  // Enumerate all trace prefixes up to depth 5 on both sides.
  struct Walker {
    HistContext &Hist;
    BpaContext &Bpa;
    std::set<std::vector<std::string>> HistTraces, BpaTraces;

    void walkHist(const Expr *E, unsigned Depth,
                  std::vector<std::string> &Cur) {
      HistTraces.insert(Cur);
      if (Depth == 0)
        return;
      for (Transition &Tr : derive(Hist, E)) {
        Cur.push_back(Tr.L.str(Hist.interner()));
        walkHist(Tr.Target, Depth - 1, Cur);
        Cur.pop_back();
      }
    }
    void walkBpa(const Term *T, unsigned Depth,
                 std::vector<std::string> &Cur) {
      BpaTraces.insert(Cur);
      if (Depth == 0)
        return;
      for (BpaTransition &Tr : deriveBpa(Bpa, T)) {
        Cur.push_back(Tr.L.str(Hist.interner()));
        walkBpa(Tr.Target, Depth - 1, Cur);
        Cur.pop_back();
      }
    }
  } W{Hist, Bpa, {}, {}};

  std::vector<std::string> Cur;
  W.walkHist(E, 5, Cur);
  W.walkBpa(T, 5, Cur);
  EXPECT_EQ(W.HistTraces, W.BpaTraces);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BpaRandomTest, ::testing::Range(0u, 20u));

TEST_F(BpaTest, CanTerminateFollowsStructure) {
  const Term *A = Bpa.action(Label::tau());
  EXPECT_TRUE(canTerminate(Bpa, Bpa.nil()));
  EXPECT_FALSE(canTerminate(Bpa, A));
  EXPECT_TRUE(canTerminate(Bpa, Bpa.sum(A, Bpa.nil())));
  EXPECT_FALSE(canTerminate(Bpa, Bpa.seq(A, Bpa.nil())));
}

} // namespace
