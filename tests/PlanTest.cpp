//===- tests/PlanTest.cpp - plans, extraction, enumeration ----------------===//

#include "core/HotelExample.h"
#include "plan/PlanEnumerator.h"
#include "plan/RepositoryDelta.h"
#include "plan/RequestExtract.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace sus;
using namespace sus::hist;
using namespace sus::plan;
using core::HotelExample;
using core::makeHotelExample;

namespace {

class PlanTest : public ::testing::Test {
protected:
  PlanTest() : Ex(makeHotelExample(Ctx)) {}
  HistContext Ctx;
  HotelExample Ex;
};

TEST_F(PlanTest, PlanBindingsAndLookup) {
  Plan Pi;
  EXPECT_FALSE(Pi.lookup(1).has_value());
  Pi.bind(1, Ex.LBr);
  ASSERT_TRUE(Pi.lookup(1).has_value());
  EXPECT_EQ(*Pi.lookup(1), Ex.LBr);
  EXPECT_TRUE(Pi.covers(1));
  EXPECT_FALSE(Pi.covers(2));
}

TEST_F(PlanTest, MergeIsRightBiased) {
  Plan A, B;
  A.bind(1, Ex.LS1);
  B.bind(1, Ex.LS2);
  B.bind(2, Ex.LS3);
  Plan M = A.merge(B);
  EXPECT_EQ(*M.lookup(1), Ex.LS2);
  EXPECT_EQ(*M.lookup(2), Ex.LS3);
}

TEST_F(PlanTest, PlanStrRendersBindings) {
  Plan Pi = Ex.pi1();
  std::string S = Pi.str(Ctx.interner());
  EXPECT_EQ(S, "{1 -> br, 3 -> s3}");
}

TEST_F(PlanTest, RepositoryFindAndLocations) {
  EXPECT_EQ(Ex.Repo.find(Ex.LBr), Ex.Br);
  EXPECT_EQ(Ex.Repo.find(Ctx.symbol("nowhere")), nullptr);
  EXPECT_EQ(Ex.Repo.locations().size(), 5u);
}

//===----------------------------------------------------------------------===//
// Request extraction
//===----------------------------------------------------------------------===//

TEST_F(PlanTest, ExtractFindsClientRequest) {
  auto Sites = extractRequests(Ex.C1);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].id(), 1u);
  EXPECT_EQ(Sites[0].policy(), Ex.Phi1);
}

TEST_F(PlanTest, ExtractFindsBrokerRequest) {
  auto Sites = extractRequests(Ex.Br);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].id(), 3u);
  EXPECT_TRUE(Sites[0].policy().isTrivial());
}

TEST_F(PlanTest, ExtractFindsNestedRequests) {
  PolicyRef None;
  const Expr *Nested = Ctx.request(
      1, None,
      Ctx.send("a", Ctx.request(2, None, Ctx.send("b", Ctx.empty()))));
  auto All = extractRequests(Nested);
  EXPECT_EQ(All.size(), 2u);
  auto Top = extractTopLevelRequests(Nested);
  ASSERT_EQ(Top.size(), 1u);
  EXPECT_EQ(Top[0].id(), 1u);
}

TEST_F(PlanTest, ExtractSearchesChoiceBranches) {
  PolicyRef None;
  const Expr *E = Ctx.extChoice({
      {CommAction::input(Ctx.symbol("a")),
       Ctx.request(7, None, Ctx.send("x", Ctx.empty()))},
      {CommAction::input(Ctx.symbol("b")),
       Ctx.request(8, None, Ctx.send("y", Ctx.empty()))},
  });
  EXPECT_EQ(extractRequests(E).size(), 2u);
}

//===----------------------------------------------------------------------===//
// Enumeration
//===----------------------------------------------------------------------===//

TEST_F(PlanTest, EnumerationChasesTransitiveRequests) {
  auto R = enumeratePlans(Ex.C1, Ex.Repo);
  EXPECT_FALSE(R.Truncated);
  // Request 1 has 5 choices; when bound to the broker, request 3 has 5
  // choices; otherwise no further requests: 4 + 5 = 9 complete plans...
  // except binding 1 to a hotel leaves no request 3, so: 4 plans with
  // 1->hotel plus 5 with 1->br: 9 total.
  EXPECT_EQ(R.Plans.size(), 9u);
  for (const Plan &Pi : R.Plans) {
    ASSERT_TRUE(Pi.covers(1));
    if (*Pi.lookup(1) == Ex.LBr)
      EXPECT_TRUE(Pi.covers(3));
    else
      EXPECT_FALSE(Pi.covers(3));
  }
}

TEST_F(PlanTest, FilterPrunesBindings) {
  EnumeratorOptions Opts;
  // Only allow the broker for request 1 and s3/s4 for request 3.
  Opts.Filter = [&](const RequestSite &Site, Loc L, const Expr *) {
    if (Site.id() == 1)
      return L == Ex.LBr;
    return L == Ex.LS3 || L == Ex.LS4;
  };
  auto R = enumeratePlans(Ex.C1, Ex.Repo, Opts);
  EXPECT_EQ(R.Plans.size(), 2u);
  EXPECT_LT(R.BindingsTried, 20u);
}

TEST_F(PlanTest, MaxPlansTruncates) {
  EnumeratorOptions Opts;
  Opts.MaxPlans = 3;
  auto R = enumeratePlans(Ex.C1, Ex.Repo, Opts);
  EXPECT_TRUE(R.Truncated);
  EXPECT_EQ(R.Plans.size(), 3u);
}

TEST_F(PlanTest, ClientWithoutRequestsHasOneEmptyPlan) {
  const Expr *NoReq = Ctx.event("just-an-event");
  auto R = enumeratePlans(NoReq, Ex.Repo);
  ASSERT_EQ(R.Plans.size(), 1u);
  EXPECT_EQ(R.Plans[0].size(), 0u);
}

TEST_F(PlanTest, RecursiveServiceReusesBinding) {
  // A service that re-issues its own request id: the enumeration must
  // terminate and keep one binding per request id.
  PolicyRef None;
  plan::Repository Repo;
  Loc LSelf = Ctx.symbol("self");
  // self = a?. open 42 { b! } — and request 42 maps to self again.
  const Expr *Self = Ctx.receive(
      "a", Ctx.request(42, None, Ctx.send("b", Ctx.empty())));
  Repo.add(LSelf, Self);

  const Expr *Client =
      Ctx.request(42, None, Ctx.send("b", Ctx.empty()));
  auto R = enumeratePlans(Client, Repo);
  ASSERT_EQ(R.Plans.size(), 1u);
  EXPECT_EQ(*R.Plans[0].lookup(42), LSelf);
}

TEST_F(PlanTest, RebindReturnsPreviousBinding) {
  Plan Pi;
  // rebind on a fresh id creates the binding and reports "nothing there".
  EXPECT_FALSE(Pi.rebind(1, Ex.LS1).has_value());
  EXPECT_EQ(*Pi.lookup(1), Ex.LS1);

  std::optional<Loc> Prev = Pi.rebind(1, Ex.LS2);
  ASSERT_TRUE(Prev.has_value());
  EXPECT_EQ(*Prev, Ex.LS1);
  EXPECT_EQ(*Pi.lookup(1), Ex.LS2);
}

TEST_F(PlanTest, UndoAfterRebindRestoresThePlan) {
  Plan Pi;
  Pi.bind(1, Ex.LS1);
  Pi.bind(2, Ex.LS3);
  const Plan Before = Pi;

  // The rebind/undo protocol: replace, then rebind the returned previous
  // location back. The plan must be exactly what it was — this is the
  // symmetry the bind/undo searches depend on.
  std::optional<Loc> Prev = Pi.rebind(1, Ex.LBr);
  EXPECT_FALSE(Pi == Before);
  ASSERT_TRUE(Prev.has_value());
  Pi.rebind(1, *Prev);
  EXPECT_EQ(Pi, Before);
}

TEST_F(PlanTest, BindRefusesToSilentlyReplace) {
  Plan Pi;
  Pi.bind(1, Ex.LS1);
  // Re-binding a bound id must trip the assertion (debug builds); it may
  // never silently overwrite, because the enumerator's undo would then
  // erase the older binding instead of restoring it.
  EXPECT_DEBUG_DEATH(Pi.bind(1, Ex.LS2), "use rebind");
}

TEST_F(PlanTest, RepositoryRemoveReturnsTheOldService) {
  Repository Repo;
  Loc L = Ctx.symbol("svc");
  const Expr *S = Ctx.receive("Ping", Ctx.send("Pong", Ctx.empty()));
  Repo.add(L, S, /*Capacity=*/2);
  EXPECT_EQ(Repo.remove(L), S);
  EXPECT_EQ(Repo.find(L), nullptr);
  EXPECT_EQ(Repo.size(), 0u);
  // Removing an absent location is a harmless no-op.
  EXPECT_EQ(Repo.remove(L), nullptr);
}

//===----------------------------------------------------------------------===//
// Stop reasons and emission filters
//===----------------------------------------------------------------------===//

TEST_F(PlanTest, ExhaustedSearchStopsWithCompleted) {
  auto R = enumeratePlans(Ex.C1, Ex.Repo);
  EXPECT_EQ(R.Stop, StopReason::Completed);
  EXPECT_FALSE(R.Truncated);
  EXPECT_FALSE(R.Exhausted.has_value());
}

TEST_F(PlanTest, PlanLimitStopIsNotAResourceStop) {
  EnumeratorOptions Opts;
  Opts.MaxPlans = 3;
  auto R = enumeratePlans(Ex.C1, Ex.Repo, Opts);
  // Hitting MaxPlans means "raise the limit", not "raise the budget":
  // the result is truncated but conclusively so — nothing was cut by a
  // governor.
  EXPECT_EQ(R.Stop, StopReason::PlanLimit);
  EXPECT_TRUE(R.Truncated);
  EXPECT_FALSE(R.Exhausted.has_value());
  EXPECT_EQ(R.Plans.size(), 3u);
}

TEST_F(PlanTest, ResourceStopIsNotAPlanLimitStop) {
  ResourceGovernor Gov;
  Gov.requestCancel(); // Deterministic pre-tripped budget.
  EnumeratorOptions Opts;
  Opts.Governor = &Gov;
  auto R = enumeratePlans(Ex.C1, Ex.Repo, Opts);
  EXPECT_EQ(R.Stop, StopReason::Resources);
  ASSERT_TRUE(R.Exhausted.has_value());
  EXPECT_EQ(R.Exhausted->Which, ResourceKind::Cancelled);
  EXPECT_FALSE(R.Truncated);
}

TEST_F(PlanTest, MustMentionEmitsExactlyTheTouchedPlans) {
  std::set<Loc> Touched{Ex.LBr};
  EnumeratorOptions Opts;
  Opts.MustMention = &Touched;
  auto Affected = enumeratePlans(Ex.C1, Ex.Repo, Opts);
  auto Full = enumeratePlans(Ex.C1, Ex.Repo);

  // The emitted plans are exactly the full enumeration's plans that bind
  // a touched location, in the same order — the complement of what a
  // repair session keeps.
  std::vector<Plan> Expected;
  for (const Plan &Pi : Full.Plans)
    if (planMentions(Pi, Touched))
      Expected.push_back(Pi);
  EXPECT_EQ(Affected.Plans, Expected);
  EXPECT_EQ(Full.Plans.size(), 9u);
  EXPECT_EQ(Affected.Plans.size(), 5u); // 1 -> br, then 5 picks for req 3.
  EXPECT_EQ(Affected.Stop, StopReason::Completed);
}

TEST_F(PlanTest, MustMentionSkipsDoNotCountAgainstMaxPlans) {
  std::set<Loc> Touched{Ex.LBr};
  EnumeratorOptions Opts;
  Opts.MustMention = &Touched;
  Opts.MaxPlans = 5; // Exactly the number of emitted plans: no truncation,
                     // even though the search completes 9 plans in total.
  auto R = enumeratePlans(Ex.C1, Ex.Repo, Opts);
  EXPECT_EQ(R.Plans.size(), 5u);
  EXPECT_FALSE(R.Truncated);
  EXPECT_EQ(R.Stop, StopReason::Completed);
}

TEST_F(PlanTest, PaperPlansAppearAmongCandidates) {
  auto R = enumeratePlans(Ex.C1, Ex.Repo);
  EXPECT_NE(std::find(R.Plans.begin(), R.Plans.end(), Ex.pi1()),
            R.Plans.end());
  auto R2 = enumeratePlans(Ex.C2, Ex.Repo);
  EXPECT_NE(std::find(R2.Plans.begin(), R2.Plans.end(), Ex.pi2()),
            R2.Plans.end());
  EXPECT_NE(std::find(R2.Plans.begin(), R2.Plans.end(), Ex.pi2Valid()),
            R2.Plans.end());
}

} // namespace
