//===- tests/AutomataTest.cpp - automata library unit tests ---------------===//

#include "automata/Nfa.h"
#include "automata/Ops.h"

#include <gtest/gtest.h>

#include <random>

using namespace sus::automata;

namespace {

/// NFA for (ab)* over {a=0, b=1}.
Nfa makeAbStar() {
  Nfa N;
  StateId Q0 = N.addState(true);
  StateId Q1 = N.addState(false);
  N.setStart(Q0);
  N.addEdge(Q0, 0, Q1);
  N.addEdge(Q1, 1, Q0);
  return N;
}

/// NFA with nondeterminism and epsilons: accepts words containing "aa".
Nfa makeContainsAa() {
  Nfa N;
  StateId Q0 = N.addState(false);
  StateId Q1 = N.addState(false);
  StateId Q2 = N.addState(true);
  N.setStart(Q0);
  N.addEdge(Q0, 0, Q0);
  N.addEdge(Q0, 1, Q0);
  N.addEdge(Q0, 0, Q1);
  N.addEdge(Q1, 0, Q2);
  N.addEdge(Q2, 0, Q2);
  N.addEdge(Q2, 1, Q2);
  return N;
}

TEST(NfaTest, AcceptsTracksWordMembership) {
  Nfa N = makeAbStar();
  EXPECT_TRUE(N.accepts({}));
  EXPECT_TRUE(N.accepts({0, 1}));
  EXPECT_TRUE(N.accepts({0, 1, 0, 1}));
  EXPECT_FALSE(N.accepts({0}));
  EXPECT_FALSE(N.accepts({1, 0}));
  EXPECT_FALSE(N.accepts({0, 0, 1}));
}

TEST(NfaTest, EpsilonClosureFollowsChains) {
  Nfa N;
  StateId Q0 = N.addState();
  StateId Q1 = N.addState();
  StateId Q2 = N.addState(true);
  N.setStart(Q0);
  N.addEpsilon(Q0, Q1);
  N.addEpsilon(Q1, Q2);
  auto C = N.epsilonClosure({Q0});
  EXPECT_EQ(C.size(), 3u);
  EXPECT_TRUE(N.accepts({}));
}

TEST(NfaTest, AlphabetCollectsEdgeSymbols) {
  Nfa N = makeContainsAa();
  const auto &A = N.alphabet();
  EXPECT_EQ(A, (std::vector<SymbolCode>{0, 1}));
}

TEST(NfaTest, AlphabetStaysSortedUnderInsertionOrder) {
  Nfa N;
  StateId Q0 = N.addState(true);
  N.setStart(Q0);
  N.addEdge(Q0, 7, Q0);
  N.addEdge(Q0, 2, Q0);
  N.addEdge(Q0, 7, Q0); // Duplicate symbol: alphabet unchanged.
  N.addEdge(Q0, 5, Q0);
  EXPECT_EQ(N.alphabet(), (std::vector<SymbolCode>{2, 5, 7}));
}

TEST(DfaTest, SetEdgeOverwritesDuplicate) {
  Dfa D;
  StateId Q0 = D.addState(false);
  StateId Q1 = D.addState(true);
  StateId Q2 = D.addState(false);
  D.setStart(Q0);
  D.setEdge(Q0, 3, Q1);
  EXPECT_EQ(D.step(Q0, 3), Q1);
  // Duplicate (state, symbol): the last write wins and the state keeps
  // exactly one edge on the symbol.
  D.setEdge(Q0, 3, Q2);
  EXPECT_EQ(D.step(Q0, 3), Q2);
  unsigned Count = 0;
  for (const NfaEdge &E : D.edges(Q0)) {
    EXPECT_EQ(E.Symbol, 3u);
    EXPECT_EQ(E.Target, Q2);
    ++Count;
  }
  EXPECT_EQ(Count, 1u);
}

TEST(DfaTest, EdgesViewIsAscendingAndSkipsMissing) {
  Dfa D;
  StateId Q0 = D.addState();
  StateId Q1 = D.addState();
  D.setStart(Q0);
  // Insert out of order, with a gap (symbol 4 is only defined on Q1, so
  // Q0's row has an absent cell to skip).
  D.setEdge(Q0, 9, Q1);
  D.setEdge(Q1, 4, Q0);
  D.setEdge(Q0, 1, Q0);
  std::vector<SymbolCode> Syms;
  std::vector<StateId> Targets;
  for (const NfaEdge &E : D.edges(Q0)) {
    Syms.push_back(E.Symbol);
    Targets.push_back(E.Target);
  }
  EXPECT_EQ(Syms, (std::vector<SymbolCode>{1, 9}));
  EXPECT_EQ(Targets, (std::vector<StateId>{Q0, Q1}));
  EXPECT_TRUE(D.edges(D.addState()).empty());
}

TEST(DfaTest, AlphabetGrowthPreservesExistingEdges) {
  Dfa D;
  StateId Q0 = D.addState(true);
  D.setStart(Q0);
  // Each insertion lands at a different rank (front, back, middle) and
  // forces the table to re-layout around the existing edges.
  D.setEdge(Q0, 50, Q0);
  D.setEdge(Q0, 10, Q0);
  D.setEdge(Q0, 90, Q0);
  D.setEdge(Q0, 30, Q0);
  D.setEdge(Q0, 70, Q0);
  for (SymbolCode Sym : {10u, 30u, 50u, 70u, 90u})
    EXPECT_EQ(D.step(Q0, Sym), Q0) << "symbol " << Sym;
  EXPECT_EQ(D.step(Q0, 20), Dfa::NoState);
  EXPECT_EQ(D.alphabet(), (std::vector<SymbolCode>{10, 30, 50, 70, 90}));
}

TEST(AuditTest, AlphabetMapAcceptsTypicalConstruction) {
  AlphabetMap M;
  EXPECT_TRUE(M.audit());
  // Mixed small (direct-mapped) and huge (sparse) codes, inserted out of
  // order so every insertion shifts ranks.
  for (SymbolCode Sym : {7u, 3u, (1u << 20), 5u, (1u << 18), 1u})
    M.insert(Sym);
  EXPECT_TRUE(M.audit());
  EXPECT_EQ(M.size(), 6u);
}

TEST(AuditTest, NfaAcceptsTypicalConstruction) {
  EXPECT_TRUE(Nfa().audit());
  Nfa N = makeContainsAa();
  StateId Extra = N.addState();
  N.addEpsilon(Extra, N.start());
  EXPECT_TRUE(N.audit());
}

TEST(AuditTest, DfaAcceptsConstructionAndKernelResults) {
  EXPECT_TRUE(Dfa().audit());
  Dfa D = determinize(makeContainsAa());
  EXPECT_TRUE(D.audit());
  EXPECT_TRUE(complete(D, D.alphabet()).audit());
  EXPECT_TRUE(complement(D, D.alphabet()).audit());
  EXPECT_TRUE(minimize(D).audit());
  Dfa D2 = determinize(makeAbStar());
  EXPECT_TRUE(intersect(D, D2).audit());
  EXPECT_TRUE(unite(D, D2).audit());
}

TEST(AuditTest, DfaAuditSurvivesRelayout) {
  // Same construction as AlphabetGrowthPreservesExistingEdges: every
  // setEdge inserts at a fresh rank and re-layouts the flat table.
  Dfa D;
  StateId Q0 = D.addState(true);
  D.setStart(Q0);
  for (SymbolCode Sym : {50u, 10u, 90u, 30u, 70u}) {
    D.setEdge(Q0, Sym, Q0);
    EXPECT_TRUE(D.audit()) << "after inserting symbol " << Sym;
  }
}

TEST(DeterminizeTest, PreservesLanguageOnExamples) {
  Nfa N = makeContainsAa();
  Dfa D = determinize(N);
  std::vector<std::vector<SymbolCode>> Words = {
      {},      {0},       {0, 0},    {1, 0, 0},      {0, 1, 0},
      {1, 1},  {0, 0, 1}, {1, 0, 1}, {0, 1, 0, 0, 1}};
  for (const auto &W : Words)
    EXPECT_EQ(N.accepts(W), D.accepts(W));
}

TEST(DeterminizeTest, ResultIsDeterministicAndReachable) {
  Dfa D = determinize(makeContainsAa());
  // The subset construction of this 3-state NFA has at most 2^3 states.
  EXPECT_LE(D.numStates(), 8u);
}

TEST(CompleteTest, AddsSinkForMissingEdges) {
  Dfa D;
  StateId Q0 = D.addState(true);
  D.setStart(Q0);
  // No edges at all; completion over {0,1} adds a sink.
  Dfa C = complete(D, {0, 1});
  EXPECT_EQ(C.numStates(), 2u);
  EXPECT_NE(C.step(Q0, 0), Dfa::NoState);
  EXPECT_NE(C.step(Q0, 1), Dfa::NoState);
}

TEST(ComplementTest, FlipsMembership) {
  Dfa D = determinize(makeAbStar());
  Dfa C = complement(D, {0, 1});
  std::vector<std::vector<SymbolCode>> Words = {
      {}, {0}, {1}, {0, 1}, {1, 0}, {0, 1, 0}, {0, 1, 0, 1}};
  for (const auto &W : Words)
    EXPECT_NE(D.accepts(W), C.accepts(W)) << "word size " << W.size();
}

TEST(IntersectTest, AcceptsOnlyCommonWords) {
  Dfa A = determinize(makeAbStar());       // (ab)*
  Dfa B = determinize(makeContainsAa());   // contains aa
  Dfa I = intersect(A, B);
  // (ab)* never contains "aa": intersection is empty.
  EXPECT_TRUE(isEmpty(I));
}

TEST(UniteTest, AcceptsEitherLanguage) {
  Dfa A = determinize(makeAbStar());
  Dfa B = determinize(makeContainsAa());
  Dfa U = unite(A, B);
  EXPECT_TRUE(U.accepts({0, 1}));    // in A
  EXPECT_TRUE(U.accepts({0, 0}));    // in B
  EXPECT_FALSE(U.accepts({1}));      // in neither
}

TEST(WitnessTest, FindsShortestAcceptedWord) {
  Dfa D = determinize(makeContainsAa());
  auto W = shortestWitness(D);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(*W, (std::vector<SymbolCode>{0, 0}));
}

TEST(WitnessTest, EmptyLanguageHasNoWitness) {
  Dfa D;
  StateId Q0 = D.addState(false);
  D.setStart(Q0);
  D.setEdge(Q0, 0, Q0);
  EXPECT_FALSE(shortestWitness(D).has_value());
  EXPECT_TRUE(isEmpty(D));
}

TEST(WitnessTest, EpsilonWitnessWhenStartAccepting) {
  Dfa D;
  StateId Q0 = D.addState(true);
  D.setStart(Q0);
  auto W = shortestWitness(D);
  ASSERT_TRUE(W.has_value());
  EXPECT_TRUE(W->empty());
}

TEST(MinimizeTest, CollapsesEquivalentStates) {
  // Two redundant accepting states reachable on 0 and on 1.
  Dfa D;
  StateId Q0 = D.addState(false);
  StateId Q1 = D.addState(true);
  StateId Q2 = D.addState(true);
  D.setStart(Q0);
  D.setEdge(Q0, 0, Q1);
  D.setEdge(Q0, 1, Q2);
  Dfa M = minimize(D);
  // Minimal complete DFA: start, accept, sink.
  EXPECT_EQ(M.numStates(), 3u);
  EXPECT_TRUE(equivalent(D, M));
}

TEST(MinimizeTest, PreservesLanguage) {
  Dfa D = determinize(makeContainsAa());
  Dfa M = minimize(D);
  EXPECT_TRUE(equivalent(D, M));
  EXPECT_LE(M.numStates(), D.numStates() + 1); // +1 for the added sink.
}

TEST(EquivalentTest, DetectsDifference) {
  Dfa A = determinize(makeAbStar());
  Dfa B = determinize(makeContainsAa());
  EXPECT_FALSE(equivalent(A, B));
  EXPECT_TRUE(equivalent(A, A));
}

//===----------------------------------------------------------------------===//
// Property-style randomized sweeps
//===----------------------------------------------------------------------===//

Nfa randomNfa(std::mt19937 &Rng, unsigned NumStates, unsigned NumSymbols,
              unsigned NumEdges) {
  Nfa N;
  for (unsigned I = 0; I < NumStates; ++I)
    N.addState(Rng() % 4 == 0);
  N.setStart(0);
  for (unsigned I = 0; I < NumEdges; ++I)
    N.addEdge(Rng() % NumStates, Rng() % NumSymbols, Rng() % NumStates);
  if (Rng() % 2)
    N.addEpsilon(Rng() % NumStates, Rng() % NumStates);
  return N;
}

std::vector<SymbolCode> randomWord(std::mt19937 &Rng, unsigned NumSymbols,
                                   unsigned MaxLen) {
  std::vector<SymbolCode> W(Rng() % (MaxLen + 1));
  for (auto &S : W)
    S = Rng() % NumSymbols;
  return W;
}

class RandomAutomataTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomAutomataTest, DeterminizationPreservesLanguage) {
  std::mt19937 Rng(GetParam());
  Nfa N = randomNfa(Rng, 6, 3, 12);
  Dfa D = determinize(N);
  for (int I = 0; I < 60; ++I) {
    auto W = randomWord(Rng, 3, 8);
    EXPECT_EQ(N.accepts(W), D.accepts(W));
  }
}

TEST_P(RandomAutomataTest, MinimizationPreservesLanguage) {
  std::mt19937 Rng(GetParam() + 1000);
  Nfa N = randomNfa(Rng, 6, 3, 12);
  Dfa D = determinize(N);
  Dfa M = minimize(D);
  for (int I = 0; I < 60; ++I) {
    auto W = randomWord(Rng, 3, 8);
    EXPECT_EQ(D.accepts(W), M.accepts(W));
  }
}

TEST_P(RandomAutomataTest, ComplementIsInvolutiveOnMembership) {
  std::mt19937 Rng(GetParam() + 2000);
  Nfa N = randomNfa(Rng, 5, 2, 10);
  Dfa D = determinize(N);
  Dfa C = complement(D, {0, 1});
  Dfa CC = complement(C, {0, 1});
  for (int I = 0; I < 40; ++I) {
    auto W = randomWord(Rng, 2, 8);
    EXPECT_NE(D.accepts(W), C.accepts(W));
    EXPECT_EQ(D.accepts(W), CC.accepts(W));
  }
}

TEST_P(RandomAutomataTest, IntersectionAgreesWithConjunction) {
  std::mt19937 Rng(GetParam() + 3000);
  Dfa A = determinize(randomNfa(Rng, 5, 2, 10));
  Dfa B = determinize(randomNfa(Rng, 5, 2, 10));
  Dfa I = intersect(A, B);
  for (int K = 0; K < 40; ++K) {
    auto W = randomWord(Rng, 2, 8);
    EXPECT_EQ(I.accepts(W), A.accepts(W) && B.accepts(W));
  }
}

TEST_P(RandomAutomataTest, UnionAgreesWithDisjunction) {
  std::mt19937 Rng(GetParam() + 4000);
  Dfa A = determinize(randomNfa(Rng, 5, 2, 10));
  Dfa B = determinize(randomNfa(Rng, 5, 2, 10));
  Dfa U = unite(A, B);
  for (int K = 0; K < 40; ++K) {
    auto W = randomWord(Rng, 2, 8);
    EXPECT_EQ(U.accepts(W), A.accepts(W) || B.accepts(W));
  }
}

TEST_P(RandomAutomataTest, WitnessIsAcceptedAndMinimal) {
  std::mt19937 Rng(GetParam() + 5000);
  Dfa D = determinize(randomNfa(Rng, 6, 2, 12));
  auto W = shortestWitness(D);
  if (!W) {
    EXPECT_TRUE(isEmpty(D));
    return;
  }
  EXPECT_TRUE(D.accepts(*W));
  // No strictly shorter word is accepted (exhaustive up to |W|-1 for the
  // binary alphabet, capped).
  if (W->size() > 0 && W->size() <= 6) {
    for (size_t Len = 0; Len < W->size(); ++Len) {
      for (unsigned Bits = 0; Bits < (1u << Len); ++Bits) {
        std::vector<SymbolCode> Word(Len);
        for (size_t I = 0; I < Len; ++I)
          Word[I] = (Bits >> I) & 1;
        EXPECT_FALSE(D.accepts(Word));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAutomataTest,
                         ::testing::Range(0u, 12u));

} // namespace
