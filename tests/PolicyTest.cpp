//===- tests/PolicyTest.cpp - usage automata and validity tests -----------===//

#include "automata/Ops.h"
#include "hist/HistContext.h"
#include "policy/Compile.h"
#include "policy/FramedAutomaton.h"
#include "policy/Prelude.h"
#include "policy/Validity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

using namespace sus;
using namespace sus::policy;
using hist::Event;
using hist::Label;
using hist::PolicyRef;

namespace {

class PolicyTest : public ::testing::Test {
protected:
  PolicyTest()
      : Hotel(makeHotelPolicy(Interner)),
        Never(makeNeverAfterPolicy(Interner, "noWaR", "read", "write")) {
    Registry.add(Hotel);
    Registry.add(Never);
  }

  Event ev(std::string_view Name) {
    return Event{Interner.intern(Name), Value()};
  }
  Event ev(std::string_view Name, int64_t N) {
    return Event{Interner.intern(Name), Value::integer(N)};
  }
  Event ev(std::string_view Name, std::string_view Who) {
    return Event{Interner.intern(Name), Value::name(Interner.intern(Who))};
  }

  /// ϕ(bl, p, t) reference.
  PolicyRef phiRef(std::vector<std::string_view> Bl, int64_t P, int64_t T) {
    PolicyRef Ref;
    Ref.Name = Interner.intern("phi");
    std::vector<Value> BlValues;
    for (auto Name : Bl)
      BlValues.push_back(Value::name(Interner.intern(Name)));
    std::sort(BlValues.begin(), BlValues.end());
    Ref.Args.push_back(std::move(BlValues));
    Ref.Args.push_back({Value::integer(P)});
    Ref.Args.push_back({Value::integer(T)});
    return Ref;
  }

  PolicyRef neverRef() {
    PolicyRef Ref;
    Ref.Name = Interner.intern("noWaR");
    return Ref;
  }

  StringInterner Interner;
  UsageAutomaton Hotel;
  UsageAutomaton Never;
  PolicyRegistry Registry;
};

//===----------------------------------------------------------------------===//
// Guards
//===----------------------------------------------------------------------===//

TEST_F(PolicyTest, CmpOpsEvaluate) {
  EXPECT_TRUE(evalCmp(CmpOp::LT, 1, 2));
  EXPECT_FALSE(evalCmp(CmpOp::LT, 2, 2));
  EXPECT_TRUE(evalCmp(CmpOp::LE, 2, 2));
  EXPECT_TRUE(evalCmp(CmpOp::GT, 3, 2));
  EXPECT_TRUE(evalCmp(CmpOp::GE, 2, 2));
  EXPECT_TRUE(evalCmp(CmpOp::EQ, 5, 5));
  EXPECT_TRUE(evalCmp(CmpOp::NE, 5, 6));
}

TEST_F(PolicyTest, GuardInParamMatchesSetMembership) {
  PolicyArgs Args = {{Value::name(Interner.intern("s1")),
                      Value::name(Interner.intern("s2"))}};
  Guard In = Guard::inParam(0);
  Guard NotIn = Guard::notInParam(0);
  Value S1 = Value::name(Interner.intern("s1"));
  Value S3 = Value::name(Interner.intern("s3"));
  EXPECT_TRUE(In.eval(S1, Args));
  EXPECT_FALSE(In.eval(S3, Args));
  EXPECT_FALSE(NotIn.eval(S1, Args));
  EXPECT_TRUE(NotIn.eval(S3, Args));
}

TEST_F(PolicyTest, GuardCmpParamIsFalseOnTypeMismatch) {
  PolicyArgs Args = {{Value::integer(10)}};
  Guard G = Guard::cmpParam(CmpOp::LE, 0);
  EXPECT_TRUE(G.eval(Value::integer(9), Args));
  EXPECT_FALSE(G.eval(Value::name(Interner.intern("x")), Args));
  EXPECT_FALSE(G.eval(Value(), Args));
}

TEST_F(PolicyTest, GuardConjunctionRequiresAllAtoms) {
  PolicyArgs Args = {{Value::integer(10)}};
  Guard G = Guard::cmpParam(CmpOp::GT, 0) &&
            Guard::cmpConst(CmpOp::LT, Value::integer(20));
  EXPECT_TRUE(G.eval(Value::integer(15), Args));
  EXPECT_FALSE(G.eval(Value::integer(5), Args));  // fails first atom
  EXPECT_FALSE(G.eval(Value::integer(25), Args)); // fails second atom
}

TEST_F(PolicyTest, GuardOutOfRangeParamIsFalse) {
  PolicyArgs Args; // no parameters bound
  EXPECT_FALSE(Guard::inParam(0).eval(Value::integer(1), Args));
  EXPECT_FALSE(Guard::cmpParam(CmpOp::EQ, 3).eval(Value::integer(1), Args));
}

//===----------------------------------------------------------------------===//
// The Fig. 1 automaton
//===----------------------------------------------------------------------===//

TEST_F(PolicyTest, HotelPolicyVerifies) {
  DiagnosticEngine Diags;
  EXPECT_TRUE(Hotel.verify(Interner, Diags));
  EXPECT_FALSE(Diags.hasErrors());
}

TEST_F(PolicyTest, BlackListedHotelViolates) {
  auto Inst = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  ASSERT_TRUE(Inst.has_value());
  EXPECT_FALSE(respects({ev("sgn", "s1")}, *Inst));
}

TEST_F(PolicyTest, NonBlackListedCheapHotelRespects) {
  auto Inst = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  ASSERT_TRUE(Inst.has_value());
  // S3-ish trace with price over threshold but perfect rating.
  EXPECT_TRUE(respects(
      {ev("sgn", "s3"), ev("p", 90), ev("ta", 100)}, *Inst));
}

TEST_F(PolicyTest, ExpensiveAndLowRatedViolates) {
  auto Inst = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  ASSERT_TRUE(Inst.has_value());
  // S4: price 50 > 45 and rating 90 < 100.
  EXPECT_FALSE(respects(
      {ev("sgn", "s4"), ev("p", 50), ev("ta", 90)}, *Inst));
}

TEST_F(PolicyTest, ExpensiveButWellRatedRespects) {
  auto Inst = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  ASSERT_TRUE(Inst.has_value());
  EXPECT_TRUE(respects(
      {ev("sgn", "s2"), ev("p", 70), ev("ta", 100)}, *Inst));
}

TEST_F(PolicyTest, CheapHotelRatingIsIrrelevant) {
  auto Inst = Registry.instantiate(phiRef({}, 45, 100), Interner);
  ASSERT_TRUE(Inst.has_value());
  EXPECT_TRUE(respects(
      {ev("sgn", "s1"), ev("p", 45), ev("ta", 1)}, *Inst));
}

TEST_F(PolicyTest, OffendingStateIsAbsorbing) {
  auto Inst = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  ASSERT_TRUE(Inst.has_value());
  PolicyMonitor M(*Inst);
  M.step(ev("sgn", "s1"));
  EXPECT_TRUE(M.isOffending());
  M.step(ev("p", 10));
  M.step(ev("ta", 100));
  EXPECT_TRUE(M.isOffending());
}

TEST_F(PolicyTest, UnmentionedEventsAreImplicitSelfLoops) {
  auto Inst = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  ASSERT_TRUE(Inst.has_value());
  PolicyMonitor M(*Inst);
  M.step(ev("unrelated"));
  M.step(ev("other", 3));
  EXPECT_FALSE(M.isOffending());
  // Still in the start state: a black-listed signature still trips it.
  M.step(ev("sgn", "s1"));
  EXPECT_TRUE(M.isOffending());
}

TEST_F(PolicyTest, MonitorResetRestartsFromStart) {
  auto Inst = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  PolicyMonitor M(*Inst);
  M.step(ev("sgn", "s1"));
  EXPECT_TRUE(M.isOffending());
  M.reset();
  EXPECT_FALSE(M.isOffending());
}

TEST_F(PolicyTest, PrintDotMentionsGuards) {
  std::ostringstream OS;
  Hotel.printDot(Interner, OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("digraph"), std::string::npos);
  EXPECT_NE(S.find("x in bl"), std::string::npos);
  EXPECT_NE(S.find("x <= p"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST_F(PolicyTest, InstantiateChecksArity) {
  DiagnosticEngine Diags;
  PolicyRef Bad;
  Bad.Name = Interner.intern("phi");
  Bad.Args.push_back({Value::integer(1)}); // phi expects 3 args.
  EXPECT_FALSE(Registry.instantiate(Bad, Interner, &Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(PolicyTest, InstantiateRejectsUnknownPolicy) {
  DiagnosticEngine Diags;
  PolicyRef Bad;
  Bad.Name = Interner.intern("nonexistent");
  EXPECT_FALSE(Registry.instantiate(Bad, Interner, &Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(PolicyTest, TrivialPolicyInstantiatesToNothing) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Registry.instantiate(PolicyRef(), Interner, &Diags));
  EXPECT_FALSE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Prelude policies
//===----------------------------------------------------------------------===//

TEST_F(PolicyTest, NeverWriteAfterRead) {
  auto Inst = Registry.instantiate(neverRef(), Interner);
  ASSERT_TRUE(Inst.has_value());
  EXPECT_TRUE(respects({ev("write"), ev("read")}, *Inst));
  EXPECT_FALSE(respects({ev("read"), ev("write")}, *Inst));
  EXPECT_TRUE(respects({ev("read"), ev("read")}, *Inst));
}

TEST_F(PolicyTest, AtMostPolicyCountsOccurrences) {
  Registry.add(makeAtMostPolicy(Interner, "twice", "hit", 2));
  PolicyRef Ref;
  Ref.Name = Interner.intern("twice");
  auto Inst = Registry.instantiate(Ref, Interner);
  ASSERT_TRUE(Inst.has_value());
  EXPECT_TRUE(respects({ev("hit"), ev("hit")}, *Inst));
  EXPECT_FALSE(respects({ev("hit"), ev("hit"), ev("hit")}, *Inst));
}

//===----------------------------------------------------------------------===//
// Histories and |= η
//===----------------------------------------------------------------------===//

TEST_F(PolicyTest, FlattenErasesFramings) {
  History Eta;
  Eta.appendFrameOpen(neverRef());
  Eta.appendEvent(ev("read"));
  Eta.appendFrameClose(neverRef());
  Eta.appendEvent(ev("write"));
  auto Flat = Eta.flatten();
  ASSERT_EQ(Flat.size(), 2u);
  EXPECT_EQ(Flat[0].Name, Interner.intern("read"));
}

TEST_F(PolicyTest, BalanceDetection) {
  History Balanced;
  Balanced.appendFrameOpen(neverRef());
  Balanced.appendEvent(ev("x"));
  Balanced.appendFrameClose(neverRef());
  EXPECT_TRUE(Balanced.isBalanced());
  EXPECT_TRUE(Balanced.isBalancedPrefix());

  History Prefix;
  Prefix.appendFrameOpen(neverRef());
  Prefix.appendEvent(ev("x"));
  EXPECT_FALSE(Prefix.isBalanced());
  EXPECT_TRUE(Prefix.isBalancedPrefix());

  History Wrong;
  Wrong.appendFrameClose(neverRef());
  EXPECT_FALSE(Wrong.isBalanced());
  EXPECT_FALSE(Wrong.isBalancedPrefix());
}

TEST_F(PolicyTest, ActivePoliciesIsAMultiset) {
  History Eta;
  Eta.appendFrameOpen(neverRef());
  Eta.appendFrameOpen(neverRef());
  Eta.appendFrameClose(neverRef());
  auto AP = Eta.activePolicies();
  ASSERT_EQ(AP.size(), 1u);
  EXPECT_EQ(AP.begin()->second, 1u);
}

TEST_F(PolicyTest, ValidHistoryUnderActivePolicy) {
  History Eta;
  Eta.appendFrameOpen(neverRef());
  Eta.appendEvent(ev("write"));
  Eta.appendEvent(ev("read"));
  Eta.appendFrameClose(neverRef());
  EXPECT_TRUE(checkValidity(Eta, Registry, Interner).Valid);
}

TEST_F(PolicyTest, ViolationWhileActiveIsDetected) {
  History Eta;
  Eta.appendFrameOpen(neverRef());
  Eta.appendEvent(ev("read"));
  Eta.appendEvent(ev("write"));
  auto R = checkValidity(Eta, Registry, Interner);
  EXPECT_FALSE(R.Valid);
  ASSERT_TRUE(R.Violation.has_value());
  EXPECT_EQ(R.Violation->Index, 2u);
}

TEST_F(PolicyTest, PaperHistoryDependenceExample) {
  // The paper's §3.1 example with ϕ = "no α after γ" (here: no write
  // after read): γ α ⌊ϕ β ⌋ϕ is NOT valid because when the frame opens
  // the past γα already violates ϕ.
  History Eta;
  Eta.appendEvent(ev("read"));   // γ
  Eta.appendEvent(ev("write"));  // α
  Eta.appendFrameOpen(neverRef());
  Eta.appendEvent(ev("other"));  // β
  Eta.appendFrameClose(neverRef());
  auto R = checkValidity(Eta, Registry, Interner);
  EXPECT_FALSE(R.Valid);
  ASSERT_TRUE(R.Violation.has_value());
  EXPECT_EQ(R.Violation->Index, 2u); // At the activation instant.
}

TEST_F(PolicyTest, PaperExampleValidWhenFramedEarly) {
  // ⌊ϕ γ ⌋ϕ α β is valid: ϕ is no longer active when α fires.
  History Eta;
  Eta.appendFrameOpen(neverRef());
  Eta.appendEvent(ev("read"));
  Eta.appendFrameClose(neverRef());
  Eta.appendEvent(ev("write"));
  Eta.appendEvent(ev("other"));
  EXPECT_TRUE(checkValidity(Eta, Registry, Interner).Valid);
}

TEST_F(PolicyTest, EventsBeforeActivationCountTowardViolation) {
  // read; ⌊ϕ; write — the read predates activation but ϕ is history-
  // dependent, so the write still violates.
  History Eta;
  Eta.appendEvent(ev("read"));
  Eta.appendFrameOpen(neverRef());
  Eta.appendEvent(ev("write"));
  EXPECT_FALSE(checkValidity(Eta, Registry, Interner).Valid);
}

TEST_F(PolicyTest, InactivePolicyDoesNotBlock) {
  History Eta;
  Eta.appendEvent(ev("read"));
  Eta.appendEvent(ev("write")); // ϕ never activated: fine.
  EXPECT_TRUE(checkValidity(Eta, Registry, Interner).Valid);
}

TEST_F(PolicyTest, MultisetActivationKeepsPolicyAlive) {
  // Open twice, close once: still active, so the write violates.
  History Eta;
  Eta.appendFrameOpen(neverRef());
  Eta.appendFrameOpen(neverRef());
  Eta.appendFrameClose(neverRef());
  Eta.appendEvent(ev("read"));
  Eta.appendEvent(ev("write"));
  EXPECT_FALSE(checkValidity(Eta, Registry, Interner).Valid);
}

TEST_F(PolicyTest, UnknownPolicyFramingInvalidatesHistory) {
  History Eta;
  PolicyRef Unknown;
  Unknown.Name = Interner.intern("mystery");
  Eta.appendFrameOpen(Unknown);
  EXPECT_FALSE(checkValidity(Eta, Registry, Interner).Valid);
}

TEST_F(PolicyTest, IncrementalCheckerMatchesBatch) {
  History Eta;
  Eta.appendEvent(ev("read"));
  Eta.appendFrameOpen(neverRef());
  Eta.appendEvent(ev("write"));

  ValidityChecker Inc(Registry, Interner);
  bool Ok = true;
  for (const Label &L : Eta.items())
    Ok = Inc.append(L) && Ok;
  EXPECT_EQ(Ok, checkValidity(Eta, Registry, Interner).Valid);
}

TEST_F(PolicyTest, WouldRemainValidProbesWithoutMutating) {
  ValidityChecker Inc(Registry, Interner);
  Inc.append(Label::frameOpen(neverRef()));
  Inc.append(Label::event(ev("read")));
  // Probing the violating event does not change the checker state.
  EXPECT_FALSE(Inc.wouldRemainValid(Label::event(ev("write"))));
  EXPECT_TRUE(Inc.wouldRemainValid(Label::event(ev("read"))));
  EXPECT_TRUE(Inc.isValid());
  // Applying it does.
  Inc.append(Label::event(ev("write")));
  EXPECT_FALSE(Inc.isValid());
}

TEST_F(PolicyTest, WouldRemainValidOnFrameOpenIsHistoryDependent) {
  ValidityChecker Inc(Registry, Interner);
  Inc.append(Label::event(ev("read")));
  Inc.append(Label::event(ev("write")));
  EXPECT_TRUE(Inc.isValid()); // Nothing active yet.
  EXPECT_FALSE(Inc.wouldRemainValid(Label::frameOpen(neverRef())));
}

//===----------------------------------------------------------------------===//
// Compilation to classical DFAs
//===----------------------------------------------------------------------===//

TEST_F(PolicyTest, CompiledPolicyAgreesWithMonitor) {
  auto Inst = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  ASSERT_TRUE(Inst.has_value());
  std::vector<hist::Event> Universe = {
      ev("sgn", "s1"), ev("sgn", "s3"), ev("p", 40),
      ev("p", 90),     ev("ta", 99),    ev("ta", 100),
  };
  CompiledPolicy C = compilePolicy(*Inst, Universe);

  // Every word up to length 3 over the universe: DFA acceptance must
  // match monitor offence.
  std::vector<std::vector<unsigned>> Words = {{}};
  for (unsigned Len = 1; Len <= 3; ++Len) {
    std::vector<std::vector<unsigned>> Next;
    for (const auto &W : Words)
      if (W.size() == Len - 1)
        for (unsigned S = 0; S < Universe.size(); ++S) {
          auto W2 = W;
          W2.push_back(S);
          Next.push_back(W2);
        }
    Words.insert(Words.end(), Next.begin(), Next.end());
  }
  for (const auto &W : Words) {
    std::vector<hist::Event> Trace;
    std::vector<automata::SymbolCode> Codes;
    for (unsigned S : W) {
      Trace.push_back(Universe[S]);
      Codes.push_back(S);
    }
    EXPECT_EQ(C.Automaton.accepts(Codes), !respects(Trace, *Inst));
  }
}

TEST_F(PolicyTest, CompiledPolicyEquivalence) {
  auto A = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  auto B = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  auto Different = Registry.instantiate(phiRef({"s1"}, 46, 100), Interner);
  std::vector<hist::Event> Universe = {ev("sgn", "s2"), ev("p", 46),
                                       ev("ta", 50)};
  EXPECT_TRUE(equivalentOn(*A, *B, Universe));
  // Price 46 is over threshold 45 but not over 46: distinguishable.
  EXPECT_FALSE(equivalentOn(*A, *Different, Universe));
}

TEST_F(PolicyTest, CompiledPolicyMinimizes) {
  auto Inst = Registry.instantiate(phiRef({"s1"}, 45, 100), Interner);
  std::vector<hist::Event> Universe = {ev("sgn", "s1"), ev("sgn", "s2"),
                                       ev("p", 50), ev("ta", 50)};
  CompiledPolicy C = compilePolicy(*Inst, Universe);
  automata::Dfa M = automata::minimize(C.Automaton);
  EXPECT_LE(M.numStates(), C.Automaton.numStates() + 1);
  EXPECT_TRUE(automata::equivalent(M, C.Automaton));
}

TEST_F(PolicyTest, EventUniverseCollectsDistinctEvents) {
  hist::HistContext Ctx;
  const hist::Expr *E = Ctx.seq(
      {Ctx.event("a", 1), Ctx.event("a", 1), Ctx.event("b"),
       Ctx.send("ch", Ctx.event("a", 2))});
  auto U = eventUniverse(E);
  EXPECT_EQ(U.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Framed monitors (the §3.1 "specially-tailored finite state automata")
//===----------------------------------------------------------------------===//

TEST_F(PolicyTest, FramedAutomatonPaperExample) {
  // ϕ = never write after read, over universe {read, write, other}:
  //   read write ⌊ϕ other ⌋ϕ  violates (history dependence at ⌊ϕ);
  //   ⌊ϕ read ⌋ϕ write        is fine (ϕ closed when write fires).
  auto Inst = Registry.instantiate(neverRef(), Interner);
  ASSERT_TRUE(Inst.has_value());
  FramedAutomaton A = buildFramedAutomaton(
      *Inst, {ev("read"), ev("write"), ev("other")});

  History Bad;
  Bad.appendEvent(ev("read"));
  Bad.appendEvent(ev("write"));
  Bad.appendFrameOpen(neverRef());
  Bad.appendEvent(ev("other"));
  Bad.appendFrameClose(neverRef());
  EXPECT_TRUE(A.violates(Bad, neverRef()));

  History Good;
  Good.appendFrameOpen(neverRef());
  Good.appendEvent(ev("read"));
  Good.appendFrameClose(neverRef());
  Good.appendEvent(ev("write"));
  EXPECT_FALSE(A.violates(Good, neverRef()));
}

TEST_F(PolicyTest, FramedAutomatonIgnoresOtherPoliciesFramings) {
  auto Inst = Registry.instantiate(neverRef(), Interner);
  FramedAutomaton A =
      buildFramedAutomaton(*Inst, {ev("read"), ev("write")});
  History Eta;
  hist::PolicyRef Other;
  Other.Name = Interner.intern("somethingElse");
  Eta.appendFrameOpen(Other); // Not ϕ: must not activate Aϕ[].
  Eta.appendEvent(ev("read"));
  Eta.appendEvent(ev("write"));
  EXPECT_FALSE(A.violates(Eta, neverRef()));
}

class FramedRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FramedRandomTest, FramedAutomatonAgreesWithDynamicChecker) {
  // Random histories over one policy: the §3.1 automaton and the direct
  // |= η implementation must agree everywhere.
  StringInterner Interner;
  PolicyRegistry Registry;
  Registry.add(makeNeverAfterPolicy(Interner, "noWaR", "read", "write"));
  hist::PolicyRef Phi;
  Phi.Name = Interner.intern("noWaR");

  auto Inst = Registry.instantiate(Phi, Interner);
  ASSERT_TRUE(Inst.has_value());
  std::vector<hist::Event> Universe = {
      {Interner.intern("read"), Value()},
      {Interner.intern("write"), Value()},
      {Interner.intern("other"), Value()},
  };
  FramedAutomaton A = buildFramedAutomaton(*Inst, Universe);

  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 40; ++Round) {
    History Eta;
    unsigned Len = Rng() % 12;
    unsigned OpenCount = 0;
    for (unsigned I = 0; I < Len; ++I) {
      switch (Rng() % 5) {
      case 0:
        Eta.appendFrameOpen(Phi);
        ++OpenCount;
        break;
      case 1:
        if (OpenCount > 0) {
          Eta.appendFrameClose(Phi);
          --OpenCount;
          break;
        }
        [[fallthrough]];
      default:
        Eta.appendEvent(Universe[Rng() % Universe.size()]);
        break;
      }
    }
    bool Dynamic = checkValidity(Eta, Registry, Interner).Valid;
    bool Automaton = !A.violates(Eta, Phi);
    EXPECT_EQ(Dynamic, Automaton) << Eta.str(Interner);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FramedRandomTest, ::testing::Range(0u, 10u));

TEST_F(PolicyTest, FramedAutomatonEncodeRejectsForeignEvents) {
  auto Inst = Registry.instantiate(neverRef(), Interner);
  FramedAutomaton A = buildFramedAutomaton(*Inst, {ev("read")});
  History Eta;
  Eta.appendEvent(ev("unknownEvent"));
  std::vector<automata::SymbolCode> Word;
  EXPECT_FALSE(A.encode(Eta, neverRef(), Word));
}

TEST_F(PolicyTest, HistoryStrRendersLabels) {
  History Eta;
  Eta.appendFrameOpen(neverRef());
  Eta.appendEvent(ev("p", 45));
  std::string S = Eta.str(Interner);
  EXPECT_NE(S.find("noWaR"), std::string::npos);
  EXPECT_NE(S.find("alpha_p(45)"), std::string::npos);
}

} // namespace
