//===- tests/SyncTest.cpp - Annotated sync primitive tests ----------------===//
//
// Runtime behavior of the capability-annotated wrappers in support/Sync.h:
// mutual exclusion, RAII release, tryLock semantics and CondVar wakeups.
// The TSan CI leg runs this binary, so every assertion here doubles as a
// data-race probe on the wrappers themselves. The *static* halves of the
// contract — that the annotations reject an unguarded access, a missing
// SUS_REQUIRES, a lock-order inversion — live in tests/negcompile/.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace sus;

namespace {

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  Mutex M;
  int Counter = 0; // Guarded by M by convention of this test.
  constexpr int Threads = 8;
  constexpr int PerThread = 10000;

  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&M, &Counter] {
      for (int I = 0; I < PerThread; ++I) {
        MutexLock Lock(M);
        ++Counter;
      }
    });
  for (std::thread &W : Workers)
    W.join();

  MutexLock Lock(M);
  EXPECT_EQ(Counter, Threads * PerThread);
}

TEST(SyncTest, MutexLockReleasesOnScopeExit) {
  Mutex M;
  {
    MutexLock Lock(M);
  }
  // Deadlocks (and times out) if the scope above leaked the lock.
  MutexLock Again(M);
  SUCCEED();
}

TEST(SyncTest, TryLockReportsContention) {
  Mutex M;
  ASSERT_TRUE(M.tryLock());
  // Non-reentrant: a second tryLock from another thread must fail while
  // the first hold is live. (Same-thread re-try is UB for std::mutex, so
  // probe from a helper thread.)
  bool SecondAcquired = true;
  std::thread Prober([&M, &SecondAcquired] { SecondAcquired = M.tryLock(); });
  Prober.join();
  EXPECT_FALSE(SecondAcquired);
  M.unlock();

  std::thread Retry([&M] {
    ASSERT_TRUE(M.tryLock());
    M.unlock();
  });
  Retry.join();
}

TEST(SyncTest, CondVarHandsOffPredicate) {
  Mutex M;
  CondVar CV;
  bool Ready = false; // Guarded by M.
  int Observed = 0;

  std::thread Consumer([&] {
    MutexLock Lock(M);
    while (!Ready) // Explicit loop: the Sync.h waiting idiom.
      CV.wait(Lock);
    Observed = 42;
  });

  {
    MutexLock Lock(M);
    Ready = true;
  }
  CV.notifyOne();
  Consumer.join();
  EXPECT_EQ(Observed, 42);
}

TEST(SyncTest, CondVarNotifyAllWakesEveryWaiter) {
  Mutex M;
  CondVar CV;
  bool Go = false;   // Guarded by M.
  int Arrived = 0;   // Guarded by M.
  constexpr int Waiters = 4;

  std::vector<std::thread> Threads;
  Threads.reserve(Waiters);
  for (int T = 0; T < Waiters; ++T)
    Threads.emplace_back([&] {
      MutexLock Lock(M);
      while (!Go)
        CV.wait(Lock);
      ++Arrived;
    });

  {
    MutexLock Lock(M);
    Go = true;
  }
  CV.notifyAll();
  for (std::thread &T : Threads)
    T.join();

  MutexLock Lock(M);
  EXPECT_EQ(Arrived, Waiters);
}

// The ThreadPool is the heaviest Sync.h consumer (two-level lock order,
// condvar waits on both sides): hammer submit/waitIdle cycles so TSan
// sees the full discipline under churn.
TEST(SyncTest, ThreadPoolStressUnderAnnotatedPrimitives) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  for (int Round = 0; Round < 50; ++Round) {
    for (int I = 0; I < 20; ++I)
      Pool.submit([&Ran](unsigned) { Ran.fetch_add(1); });
    Pool.waitIdle();
  }
  EXPECT_EQ(Ran.load(), 50 * 20);
}

} // namespace
