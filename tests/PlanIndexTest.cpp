//===- tests/PlanIndexTest.cpp - indexed candidate selection --------------===//
///
/// The ServiceIndex contract: candidates() returns a sorted superset of
/// the compliant locations, the pre-screens never reject a pair the full
/// Def. 4 check accepts, an indexed enumeration (under a compliance
/// filter) emits bit-for-bit the plan set a repository scan emits, and an
/// incrementally patched index answers like a freshly rebuilt one.
///
//===----------------------------------------------------------------------===//

#include "contract/Compliance.h"
#include "contract/Prescreen.h"
#include "core/HotelExample.h"
#include "plan/PlanEnumerator.h"
#include "plan/RepositoryDelta.h"
#include "plan/RequestExtract.h"
#include "plan/ServiceIndex.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

using namespace sus;
using namespace sus::hist;
using namespace sus::plan;
using core::HotelExample;
using core::makeHotelExample;

namespace {

//===----------------------------------------------------------------------===//
// Deterministic random workloads
//===----------------------------------------------------------------------===//

/// Splitmix-style LCG: deterministic across platforms, unlike std::rand.
struct Lcg {
  uint64_t S;
  uint64_t next() {
    S = S * 6364136223846793005ULL + 1442695040888963407ULL;
    return S >> 33;
  }
  uint64_t below(uint64_t N) { return next() % N; }
};

const char *channelName(uint64_t I) {
  static const char *Pool[] = {"a", "b", "c", "d", "e", "f"};
  return Pool[I % 6];
}

/// A random published service: echo, two-round, external choice, or a
/// broker that opens its own (transitively chased) request.
const Expr *randomService(HistContext &Ctx, Lcg &Rng, unsigned BrokerId) {
  std::string C1 = channelName(Rng.below(6));
  std::string C2 = channelName(Rng.below(6));
  switch (Rng.below(4)) {
  case 0: // Echo.
    return Ctx.receive(C1, Ctx.send(C2, Ctx.empty()));
  case 1: // Two rounds.
    return Ctx.receive(
        C1, Ctx.send(C2, Ctx.receive(channelName(Rng.below(6)),
                                     Ctx.send(channelName(Rng.below(6)),
                                              Ctx.empty()))));
  case 2: { // External choice over two distinct inputs.
    std::string D1 = channelName(Rng.below(3));
    std::string D2 = channelName(3 + Rng.below(3));
    return Ctx.extChoice(
        {{CommAction::input(Ctx.symbol(D1)), Ctx.send(C2, Ctx.empty())},
         {CommAction::input(Ctx.symbol(D2)), Ctx.send(C1, Ctx.empty())}});
  }
  default: // Broker: answers C1 after delegating through its own request.
    return Ctx.receive(
        C1, Ctx.seq(Ctx.request(BrokerId, PolicyRef(),
                                Ctx.send(C2, Ctx.receive(
                                                 channelName(Rng.below(6)),
                                                 Ctx.empty()))),
                    Ctx.send(C2, Ctx.empty())));
  }
}

Repository randomRepository(HistContext &Ctx, Lcg &Rng,
                            unsigned NumServices) {
  Repository Repo;
  for (unsigned I = 0; I < NumServices; ++I)
    Repo.add(Ctx.symbol("svc" + std::to_string(I)),
             randomService(Ctx, Rng, /*BrokerId=*/500 + I));
  return Repo;
}

/// A random request body (the client side of one of the service shapes).
const Expr *randomBody(HistContext &Ctx, Lcg &Rng) {
  std::string C1 = channelName(Rng.below(6));
  std::string C2 = channelName(Rng.below(6));
  if (Rng.below(3) == 0)
    return Ctx.send(C1, Ctx.empty());
  return Ctx.send(C1, Ctx.receive(C2, Ctx.empty()));
}

const Expr *randomClient(HistContext &Ctx, Lcg &Rng, unsigned NumRequests) {
  std::vector<const Expr *> Parts;
  for (unsigned I = 0; I < NumRequests; ++I)
    Parts.push_back(
        Ctx.request(100 + I, PolicyRef(), randomBody(Ctx, Rng)));
  return Ctx.seq(Parts);
}

/// The §4 compliance pruning filter the verifier installs, memoized per
/// (body, service) like VerifierCache does.
struct ComplianceFilter {
  HistContext &Ctx;
  std::map<std::pair<const Expr *, const Expr *>, bool> Memo;

  bool operator()(const RequestSite &Site, Loc, const Expr *Service) {
    auto Key = std::make_pair(Site.body(), Service);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
    bool Ok =
        contract::checkServiceCompliance(Ctx, Site.body(), Service).Compliant;
    return Memo.emplace(Key, Ok).first->second;
  }
};

//===----------------------------------------------------------------------===//
// Candidate lists
//===----------------------------------------------------------------------===//

class ServiceIndexTest : public ::testing::Test {
protected:
  ServiceIndexTest() : Ex(makeHotelExample(Ctx)) {}
  HistContext Ctx;
  HotelExample Ex;
};

TEST_F(ServiceIndexTest, CandidatesAreASortedSupersetOfTheCompliant) {
  ServiceIndex Index(Ctx, Ex.Repo);
  for (const RequestSite &Site : extractRequests(Ex.C1)) {
    std::vector<Loc> Cands = Index.candidates(Site.body());
    EXPECT_TRUE(std::is_sorted(Cands.begin(), Cands.end()));
    for (const auto &[L, Service] : Ex.Repo.services()) {
      if (!contract::checkServiceCompliance(Ctx, Site.body(), Service)
               .Compliant)
        continue;
      EXPECT_NE(std::find(Cands.begin(), Cands.end(), L), Cands.end())
          << "compliant service dropped for request " << Site.id();
    }
  }
}

TEST_F(ServiceIndexTest, LookupsAreMemoizedAndRejectsAreCounted) {
  ServiceIndex Index(Ctx, Ex.Repo);
  const RequestSite Site = extractRequests(Ex.C1)[0];
  std::vector<Loc> First = Index.candidates(Site.body());
  std::vector<Loc> Second = Index.candidates(Site.body());
  EXPECT_EQ(First, Second);

  IndexStats Stats = Index.stats();
  EXPECT_EQ(Stats.Lookups, 2u);
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.misses(), 1u);
  // Request 1 wants Req! — the four hotels (IdC? ...) never even reach
  // the screens: their buckets don't match, so the candidate list shrinks
  // below the repository without a single product build.
  EXPECT_LT(First.size(), Ex.Repo.size());
}

TEST_F(ServiceIndexTest, FirstStepScreenCutsBucketSurvivors) {
  // A service internally choosing between Ack! and Zzz! registers under
  // bucket[Ack?] (one initial ready set offers Ack!), but Def. 4
  // clause (1) fails on the {Zzz!} set against a client that only awaits
  // Ack — the first-step screen must cut it after the bucket stage, and
  // count the cut.
  Repository Repo;
  Loc LGood = Ctx.symbol("good");
  Loc LFlaky = Ctx.symbol("flaky");
  Repo.add(LGood, Ctx.send("Ack", Ctx.empty()));
  Repo.add(LFlaky,
           Ctx.intChoice(
               {{CommAction::output(Ctx.symbol("Ack")), Ctx.empty()},
                {CommAction::output(Ctx.symbol("Zzz")), Ctx.empty()}}));

  ServiceIndex Index(Ctx, Repo);
  const Expr *Body = Ctx.receive("Ack", Ctx.empty());
  std::vector<Loc> Cands = Index.candidates(Body);
  EXPECT_EQ(Cands, std::vector<Loc>{LGood});
  EXPECT_EQ(Index.stats().FirstStepRejects, 1u);

  // Soundness cross-check: the full product agrees with the screen.
  EXPECT_FALSE(contract::checkServiceCompliance(Ctx, Body,
                                                Repo.find(LFlaky))
                   .Compliant);
  EXPECT_TRUE(contract::checkServiceCompliance(Ctx, Body,
                                               Repo.find(LGood))
                  .Compliant);
}

TEST_F(ServiceIndexTest, PrescreenSoundnessOnRandomPairs) {
  // Necessary conditions only: a pre-screen Reject must imply the full
  // Def. 4 check rejects too, over a few hundred random pairs.
  Lcg Rng{0x5eedULL};
  for (unsigned Round = 0; Round < 40; ++Round) {
    const Expr *Body = randomBody(Ctx, Rng);
    const Expr *Service = randomService(Ctx, Rng, 900 + Round);
    contract::ContractSummary BodySummary =
        contract::summarizeContract(Ctx, Body);
    contract::ContractSummary ServiceSummary =
        contract::summarizeContract(Ctx, Service);
    bool Compliant =
        contract::checkServiceCompliance(Ctx, Body, Service).Compliant;
    contract::PrescreenVerdict Verdict =
        contract::prescreenCompliance(BodySummary, ServiceSummary);
    if (Verdict != contract::PrescreenVerdict::Pass) {
      EXPECT_FALSE(Compliant)
          << "prescreen rejected a compliant pair (round " << Round << ")";
    }
    if (Compliant) {
      EXPECT_EQ(Verdict, contract::PrescreenVerdict::Pass);
    }
  }
}

TEST_F(ServiceIndexTest, HotelPairsSurviveTheScreens) {
  // The paper's own bindings must pass: request 1 against the broker,
  // request 3 against each hotel.
  auto Sites = extractRequests(Ex.C1);
  ASSERT_EQ(Sites.size(), 1u);
  auto BrokerSites = extractRequests(Ex.Br);
  ASSERT_EQ(BrokerSites.size(), 1u);

  auto Screen = [&](const Expr *Body, const Expr *Service) {
    return contract::prescreenCompliance(
        contract::summarizeContract(Ctx, Body),
        contract::summarizeContract(Ctx, Service));
  };
  EXPECT_EQ(Screen(Sites[0].body(), Ex.Br),
            contract::PrescreenVerdict::Pass);
  for (const Expr *Hotel : {Ex.S1, Ex.S2, Ex.S3, Ex.S4})
    EXPECT_EQ(Screen(BrokerSites[0].body(), Hotel),
              contract::PrescreenVerdict::Pass);
}

//===----------------------------------------------------------------------===//
// Differential: indexed == scan
//===----------------------------------------------------------------------===//

TEST(PlanIndexDifferential, IndexedEnumerationMatchesScanOver100Seeds) {
  for (unsigned Seed = 0; Seed < 100; ++Seed) {
    HistContext Ctx;
    Lcg Rng{Seed * 0x9E3779B97F4A7C15ULL + 1};
    Repository Repo = randomRepository(Ctx, Rng, 8 + Seed % 5);
    const Expr *Client = randomClient(Ctx, Rng, 1 + Seed % 3);

    ComplianceFilter Filter{Ctx, {}};
    EnumeratorOptions Scan;
    Scan.Filter = std::ref(Filter);
    EnumerationResult ScanResult = enumeratePlans(Client, Repo, Scan);

    ServiceIndex Index(Ctx, Repo);
    EnumeratorOptions Indexed = Scan;
    Indexed.Index = &Index;
    EnumerationResult IndexResult = enumeratePlans(Client, Repo, Indexed);

    // Bit-for-bit identical plan sets, never more search effort.
    EXPECT_EQ(ScanResult.Plans, IndexResult.Plans) << "seed " << Seed;
    EXPECT_EQ(ScanResult.Truncated, IndexResult.Truncated) << "seed " << Seed;
    EXPECT_LE(IndexResult.BindingsTried, ScanResult.BindingsTried)
        << "seed " << Seed;
  }
}

TEST_F(ServiceIndexTest, IndexedHotelEnumerationMatchesScan) {
  ComplianceFilter Filter{Ctx, {}};
  EnumeratorOptions Scan;
  Scan.Filter = std::ref(Filter);
  ServiceIndex Index(Ctx, Ex.Repo);
  EnumeratorOptions Indexed = Scan;
  Indexed.Index = &Index;

  for (const Expr *Client : {Ex.C1, Ex.C2}) {
    EnumerationResult S = enumeratePlans(Client, Ex.Repo, Scan);
    EnumerationResult I = enumeratePlans(Client, Ex.Repo, Indexed);
    EXPECT_EQ(S.Plans, I.Plans);
    EXPECT_LE(I.BindingsTried, S.BindingsTried);
  }
}

//===----------------------------------------------------------------------===//
// Incremental maintenance
//===----------------------------------------------------------------------===//

TEST(PlanIndexChurn, PatchedIndexAnswersLikeARebuiltOne) {
  for (unsigned Seed = 0; Seed < 20; ++Seed) {
    HistContext Ctx;
    Lcg Rng{Seed * 0xD1B54A32D192ED03ULL + 7};
    Repository Repo = randomRepository(Ctx, Rng, 10);
    ServiceIndex Index(Ctx, Repo);

    // Churn: remove one location, re-version another, add a fresh one.
    RepositoryDelta Delta;
    Loc Removed = Ctx.symbol("svc" + std::to_string(Rng.below(10)));
    Delta.Changes.push_back(applyRemove(Repo, Removed));
    Loc Replaced = Ctx.symbol("svc" + std::to_string(Rng.below(10)));
    if (Repo.find(Replaced))
      Delta.Changes.push_back(applyPublish(
          Repo, Replaced, randomService(Ctx, Rng, /*BrokerId=*/800)));
    Delta.Changes.push_back(applyPublish(
        Repo, Ctx.symbol("fresh"), randomService(Ctx, Rng, /*BrokerId=*/801)));
    Index.apply(Delta);

    ServiceIndex Rebuilt(Ctx, Repo);
    EXPECT_EQ(Index.size(), Rebuilt.size()) << "seed " << Seed;
    for (unsigned Probe = 0; Probe < 12; ++Probe) {
      const Expr *Body = randomBody(Ctx, Rng);
      EXPECT_EQ(Index.candidates(Body), Rebuilt.candidates(Body))
          << "seed " << Seed << " probe " << Probe;
    }
  }
}

TEST_F(ServiceIndexTest, ApplyDropsTheCandidateMemo) {
  ServiceIndex Index(Ctx, Ex.Repo);
  auto BrokerSites = extractRequests(Ex.Br);
  ASSERT_EQ(BrokerSites.size(), 1u);
  const Expr *Body = BrokerSites[0].body();

  std::vector<Loc> Before = Index.candidates(Body);
  EXPECT_NE(std::find(Before.begin(), Before.end(), Ex.LS3), Before.end());

  // Unpublish s3: the memoized list must not survive the churn.
  RepositoryDelta Delta;
  Delta.Changes.push_back(applyRemove(Ex.Repo, Ex.LS3));
  Index.apply(Delta);

  std::vector<Loc> After = Index.candidates(Body);
  EXPECT_EQ(std::find(After.begin(), After.end(), Ex.LS3), After.end());
  EXPECT_EQ(Index.size(), Ex.Repo.size());
}

} // namespace
