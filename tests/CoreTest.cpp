//===- tests/CoreTest.cpp - end-to-end verifier tests ---------------------===//

#include "core/HotelExample.h"
#include "core/Verifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

using namespace sus;
using namespace sus::core;
using namespace sus::hist;

namespace {

class CoreTest : public ::testing::Test {
protected:
  CoreTest() : Ex(makeHotelExample(Ctx)) {}
  HistContext Ctx;
  HotelExample Ex;
};

TEST_F(CoreTest, C1HasExactlyThePaperValidPlan) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  VerificationReport Report = V.verifyClient(Ex.C1, Ex.LC1);
  std::vector<plan::Plan> Valid = Report.validPlans();
  ASSERT_EQ(Valid.size(), 1u);
  EXPECT_EQ(Valid[0], Ex.pi1());
}

TEST_F(CoreTest, C2HasExactlyOneValidPlan) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  VerificationReport Report = V.verifyClient(Ex.C2, Ex.LC2);
  std::vector<plan::Plan> Valid = Report.validPlans();
  ASSERT_EQ(Valid.size(), 1u);
  EXPECT_EQ(Valid[0], Ex.pi2Valid());
}

TEST_F(CoreTest, PruningDoesNotChangeValidPlanSet) {
  VerifierOptions Pruned;
  Pruned.PruneWithCompliance = true;
  VerifierOptions Exhaustive;
  Exhaustive.PruneWithCompliance = false;

  Verifier VP(Ctx, Ex.Repo, Ex.Registry, Pruned);
  Verifier VE(Ctx, Ex.Repo, Ex.Registry, Exhaustive);

  for (const Expr *Client : {Ex.C1, Ex.C2}) {
    auto P = VP.verifyClient(Client, Ex.LC1).validPlans();
    auto E = VE.verifyClient(Client, Ex.LC1).validPlans();
    EXPECT_EQ(P, E);
  }
}

TEST_F(CoreTest, PruningReducesCandidates) {
  VerifierOptions Pruned;
  Pruned.PruneWithCompliance = true;
  VerifierOptions Exhaustive;
  Exhaustive.PruneWithCompliance = false;

  Verifier VP(Ctx, Ex.Repo, Ex.Registry, Pruned);
  Verifier VE(Ctx, Ex.Repo, Ex.Registry, Exhaustive);
  auto P = VP.verifyClient(Ex.C1, Ex.LC1);
  auto E = VE.verifyClient(Ex.C1, Ex.LC1);
  EXPECT_LT(P.CandidateCount, E.CandidateCount);
  // Exhaustive: 9 candidate plans (4 direct hotels + 5 for request 3).
  EXPECT_EQ(E.CandidateCount, 9u);
  // Pruned: request 1 only fits the broker; request 3 fits S1, S3, S4
  // (S2 fails the Del pre-check, the broker does not speak IdC).
  EXPECT_EQ(P.CandidateCount, 3u);
}

TEST_F(CoreTest, CheckPlanReportsPerRequestCompliance) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  PlanVerdict Verdict = V.checkPlan(Ex.C2, Ex.LC2, Ex.pi2());
  EXPECT_FALSE(Verdict.isValid());
  EXPECT_FALSE(Verdict.compliancePassed());
  // Request 2 (to the broker) complies; request 3 (to S2) does not.
  bool Saw2 = false, Saw3 = false;
  for (const RequestCheck &C : Verdict.RequestChecks) {
    if (C.Request == 2) {
      Saw2 = true;
      EXPECT_TRUE(C.Compliant);
    }
    if (C.Request == 3) {
      Saw3 = true;
      EXPECT_FALSE(C.Compliant);
      ASSERT_TRUE(C.Witness.has_value());
      EXPECT_NE(C.Witness->str(Ctx).find("Del"), std::string::npos);
    }
  }
  EXPECT_TRUE(Saw2);
  EXPECT_TRUE(Saw3);
}

TEST_F(CoreTest, CheckPlanSeparatesComplianceFromSecurity) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  // π3 = {2->br, 3->s3}: compliant but violates ϕ2 (s3 black-listed).
  PlanVerdict Verdict = V.checkPlan(Ex.C2, Ex.LC2, Ex.pi3());
  EXPECT_TRUE(Verdict.compliancePassed());
  EXPECT_FALSE(Verdict.Security.Valid);
  EXPECT_FALSE(Verdict.isValid());
}

TEST_F(CoreTest, ValidPlanVerdictIsFullyGreen) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  PlanVerdict Verdict = V.checkPlan(Ex.C1, Ex.LC1, Ex.pi1());
  EXPECT_TRUE(Verdict.isValid());
  EXPECT_TRUE(Verdict.compliancePassed());
  EXPECT_TRUE(Verdict.Security.Valid);
  for (const RequestCheck &C : Verdict.RequestChecks)
    EXPECT_TRUE(C.Compliant);
}

TEST_F(CoreTest, BindingComplianceIsMemoized) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  auto Sites = plan::extractRequests(Ex.C1);
  ASSERT_EQ(Sites.size(), 1u);
  bool First = V.bindingCompliant(Sites[0].body(), Ex.Br);
  bool Second = V.bindingCompliant(Sites[0].body(), Ex.Br);
  EXPECT_EQ(First, Second);
  EXPECT_TRUE(First);
}

TEST_F(CoreTest, ReportPrinterMentionsVerdicts) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  VerificationReport Report = V.verifyClient(Ex.C1, Ex.LC1);
  std::ostringstream OS;
  printReport(Report, Ctx, OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("VALID"), std::string::npos);
  EXPECT_NE(S.find("valid plans: 1"), std::string::npos);
  EXPECT_NE(S.find("{1 -> br, 3 -> s3}"), std::string::npos);
}

TEST_F(CoreTest, MaxPlansTruncationIsReported) {
  VerifierOptions Opts;
  Opts.MaxPlans = 1;
  Opts.PruneWithCompliance = false;
  Verifier V(Ctx, Ex.Repo, Ex.Registry, Opts);
  auto Report = V.verifyClient(Ex.C1, Ex.LC1);
  EXPECT_TRUE(Report.Truncated);
  EXPECT_EQ(Report.CandidateCount, 1u);
}

TEST_F(CoreTest, StuckConfigurationIsFlaggedButSecurityHolds) {
  // A client speaking a protocol no service understands: the composed
  // space has a stuck configuration (progress failure), yet no policy is
  // violated — security validity holds. This is exactly why the §4
  // compliance check exists alongside the §3.1 one.
  const Expr *Odd = Ctx.request(
      50, PolicyRef(), Ctx.send("Zorp", Ctx.receive("Blip", Ctx.empty())));
  plan::Plan Pi;
  Pi.bind(50, Ex.LS3);
  auto R = validity::checkPlanValidity(Ctx, Odd, Ex.LC1, Pi, Ex.Repo,
                                       Ex.Registry);
  EXPECT_TRUE(R.Valid);
  EXPECT_TRUE(R.HasStuckConfiguration);
  // And the verifier as a whole still rejects the plan via compliance.
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  EXPECT_FALSE(V.checkPlan(Odd, Ex.LC1, Pi).isValid());
}

TEST_F(CoreTest, NetworkVerificationIsCompositional) {
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  NetworkReport Network =
      V.verifyNetwork({{Ex.C1, Ex.LC1}, {Ex.C2, Ex.LC2}});
  ASSERT_EQ(Network.PerClient.size(), 2u);
  EXPECT_TRUE(Network.allClientsHaveValidPlans());
  // Per-client results match individual verification.
  EXPECT_EQ(Network.PerClient[0].second.validPlans(),
            V.verifyClient(Ex.C1, Ex.LC1).validPlans());
}

TEST_F(CoreTest, NetworkReportDetectsHopelessClient) {
  // A client nobody can serve (unknown channel protocol).
  const Expr *Odd = Ctx.request(
      77, PolicyRef(), Ctx.send("Zorp", Ctx.receive("Blip", Ctx.empty())));
  Verifier V(Ctx, Ex.Repo, Ex.Registry);
  NetworkReport Network = V.verifyNetwork({{Ex.C1, Ex.LC1}, {Odd, Ex.LC2}});
  EXPECT_FALSE(Network.allClientsHaveValidPlans());
}

TEST_F(CoreTest, HotelExamplePlansAreWellFormedExpressions) {
  // Sanity on the shared fixture itself.
  for (const Expr *E : {Ex.C1, Ex.C2, Ex.Br, Ex.S1, Ex.S2, Ex.S3, Ex.S4})
    EXPECT_TRUE(Ctx.isClosed(E));
}

} // namespace
