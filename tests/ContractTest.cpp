//===- tests/ContractTest.cpp - projection/ready sets/compliance tests ----===//

#include "contract/Compliance.h"
#include "contract/ComplianceProduct.h"
#include "contract/Project.h"
#include "contract/ReadySets.h"
#include "automata/Ops.h"
#include "contract/Dual.h"
#include "core/HotelExample.h"
#include "hist/Printer.h"
#include "plan/RequestExtract.h"

#include <random>

#include <gtest/gtest.h>

using namespace sus;
using namespace sus::hist;
using namespace sus::contract;

namespace {

class ContractTest : public ::testing::Test {
protected:
  HistContext Ctx;

  CommAction in(std::string_view Ch) {
    return CommAction::input(Ctx.symbol(Ch));
  }
  CommAction out(std::string_view Ch) {
    return CommAction::output(Ctx.symbol(Ch));
  }

  const Expr *sendE(std::string_view Ch) { return Ctx.send(Ch, Ctx.empty()); }
  const Expr *recvE(std::string_view Ch) {
    return Ctx.receive(Ch, Ctx.empty());
  }

  PolicyRef phi() {
    PolicyRef P;
    P.Name = Ctx.symbol("phi");
    return P;
  }
};

//===----------------------------------------------------------------------===//
// Projection (§4)
//===----------------------------------------------------------------------===//

TEST_F(ContractTest, ProjectionErasesEventsFramingsRequests) {
  const Expr *H = Ctx.seq({
      Ctx.event("sgn", 1),
      Ctx.framing(phi(), Ctx.event("x")),
      Ctx.request(1, phi(), Ctx.send("inner", Ctx.empty())),
      Ctx.send("a", Ctx.empty()),
  });
  const Expr *P = project(Ctx, H);
  EXPECT_EQ(P, Ctx.send("a", Ctx.empty()));
  EXPECT_TRUE(isContract(P));
}

TEST_F(ContractTest, ProjectionKeepsCommunicationStructure) {
  const Expr *H = Ctx.receive(
      "IdC", Ctx.seq(Ctx.event("log"),
                     Ctx.intChoice({{out("Bok"), Ctx.empty()},
                                    {out("UnA"), Ctx.empty()}})));
  const Expr *P = project(Ctx, H);
  EXPECT_EQ(P, Ctx.receive("IdC", Ctx.intChoice({{out("Bok"), Ctx.empty()},
                                                 {out("UnA"), Ctx.empty()}})));
}

TEST_F(ContractTest, ProjectionOfFramingKeepsBody) {
  const Expr *H = Ctx.framing(phi(), Ctx.send("a", Ctx.empty()));
  EXPECT_EQ(project(Ctx, H), Ctx.send("a", Ctx.empty()));
}

TEST_F(ContractTest, ProjectionCommutesWithMu) {
  const Expr *H = Ctx.mu(
      "h", Ctx.send("a", Ctx.seq(Ctx.event("e"), Ctx.var("h"))));
  const Expr *P = project(Ctx, H);
  EXPECT_EQ(P, Ctx.mu("h", Ctx.send("a", Ctx.var("h"))));
}

TEST_F(ContractTest, ProjectionIsIdempotent) {
  const Expr *H = Ctx.seq({
      Ctx.event("e"),
      Ctx.send("a", Ctx.receive("b", Ctx.event("f"))),
  });
  const Expr *P = project(Ctx, H);
  EXPECT_EQ(project(Ctx, P), P);
}

TEST_F(ContractTest, IsContractRejectsNonContractForms) {
  EXPECT_FALSE(isContract(Ctx.event("e")));
  EXPECT_FALSE(isContract(Ctx.framing(phi(), Ctx.empty())));
  EXPECT_TRUE(isContract(Ctx.empty()));
  EXPECT_TRUE(isContract(sendE("a")));
}

//===----------------------------------------------------------------------===//
// Ready sets (Def. 3)
//===----------------------------------------------------------------------===//

TEST_F(ContractTest, EmptyHasEmptyReadySet) {
  auto Sets = readySets(Ctx.empty());
  ASSERT_EQ(Sets.size(), 1u);
  EXPECT_TRUE(Sets[0].empty());
}

TEST_F(ContractTest, InternalChoiceHasSingletonReadySets) {
  // (a1 ⊕ a2) ⇓ {a1} and (a1 ⊕ a2) ⇓ {a2}  (paper example).
  const Expr *E = Ctx.intChoice({{out("a1"), Ctx.empty()},
                                 {out("a2"), Ctx.empty()}});
  auto Sets = readySets(E);
  ASSERT_EQ(Sets.size(), 2u);
  EXPECT_EQ(Sets[0].size(), 1u);
  EXPECT_EQ(Sets[1].size(), 1u);
}

TEST_F(ContractTest, ExternalChoiceHasOneCombinedReadySet) {
  // (a1 + a2) ⇓ {a1, a2}  (paper example).
  const Expr *E = Ctx.extChoice({{in("a1"), Ctx.empty()},
                                 {in("a2"), Ctx.empty()}});
  auto Sets = readySets(E);
  ASSERT_EQ(Sets.size(), 1u);
  EXPECT_EQ(Sets[0].size(), 2u);
}

TEST_F(ContractTest, MuPassesThroughReadySets) {
  // H = µh.(a1 ⊕ a2)·b·h ⇓ {a1} and {a2}  (paper example).
  const Expr *E = Ctx.mu(
      "h", Ctx.seq(Ctx.intChoice({{out("a1"), Ctx.empty()},
                                  {out("a2"), Ctx.empty()}}),
                   Ctx.send("b", Ctx.var("h"))));
  auto Sets = readySets(E);
  ASSERT_EQ(Sets.size(), 2u);
  for (const auto &S : Sets)
    EXPECT_EQ(S.size(), 1u);
}

TEST_F(ContractTest, SeqSkipsNullablePrefix) {
  // ε·(a + b)·(d ⊕ e) ⇓ {a, b}  (paper example).
  const Expr *E = Ctx.seq(
      Ctx.seq(Ctx.empty(), Ctx.extChoice({{in("a"), Ctx.empty()},
                                          {in("b"), Ctx.empty()}})),
      Ctx.intChoice({{out("d"), Ctx.empty()}, {out("e"), Ctx.empty()}}));
  auto Sets = readySets(E);
  ASSERT_EQ(Sets.size(), 1u);
  EXPECT_EQ(Sets[0].size(), 2u);
  EXPECT_TRUE(Sets[0].count(in("a")));
  EXPECT_TRUE(Sets[0].count(in("b")));
}

TEST_F(ContractTest, ComplementSetFlipsPolarity) {
  ReadySet S = {in("a"), out("b")};
  ReadySet C = complementSet(S);
  EXPECT_TRUE(C.count(out("a")));
  EXPECT_TRUE(C.count(in("b")));
}

TEST_F(ContractTest, CanSynchronizeNeedsComplementaryPair) {
  EXPECT_TRUE(canSynchronize({out("a")}, {in("a")}));
  EXPECT_TRUE(canSynchronize({in("a")}, {out("a")}));
  EXPECT_FALSE(canSynchronize({out("a")}, {in("b")}));
  EXPECT_FALSE(canSynchronize({in("a")}, {in("a")}));
  EXPECT_FALSE(canSynchronize({}, {in("a")}));
}

//===----------------------------------------------------------------------===//
// Compliance (Def. 4, Def. 5, Thm. 1)
//===----------------------------------------------------------------------===//

TEST_F(ContractTest, SimpleHandshakeIsCompliant) {
  const Expr *C = sendE("a");
  const Expr *S = recvE("a");
  auto R = checkCompliance(Ctx, C, S);
  EXPECT_TRUE(R.Compliant);
  EXPECT_FALSE(R.Witness.has_value());
}

TEST_F(ContractTest, MismatchedChannelsAreNotCompliant) {
  auto R = checkCompliance(Ctx, sendE("a"), recvE("b"));
  EXPECT_FALSE(R.Compliant);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_TRUE(R.Witness->Path.empty()); // Stuck at the initial state.
}

TEST_F(ContractTest, ClientMayTerminateEarly) {
  // Client ε against a server still willing to receive: compliant (the
  // definition does not require both parties to terminate).
  auto R = checkCompliance(Ctx, Ctx.empty(), recvE("a"));
  EXPECT_TRUE(R.Compliant);
}

TEST_F(ContractTest, ServerTerminatedButClientWaitingIsStuck) {
  auto R = checkCompliance(Ctx, recvE("a"), Ctx.empty());
  EXPECT_FALSE(R.Compliant);
}

TEST_F(ContractTest, BothWaitingOnInputsIsStuck) {
  auto R = checkCompliance(Ctx, recvE("a"), recvE("a"));
  EXPECT_FALSE(R.Compliant);
}

TEST_F(ContractTest, InternalChoiceNeedsAllBranchesReceivable) {
  // Server may send Bok or UnA; client handles both: compliant.
  const Expr *Server = Ctx.intChoice({{out("Bok"), Ctx.empty()},
                                      {out("UnA"), Ctx.empty()}});
  const Expr *ClientOk = Ctx.extChoice({{in("Bok"), Ctx.empty()},
                                        {in("UnA"), Ctx.empty()}});
  EXPECT_TRUE(checkCompliance(Ctx, ClientOk, Server).Compliant);

  // Client missing UnA: the server can decide on its own to send it.
  const Expr *ClientBad = Ctx.extChoice({{in("Bok"), Ctx.empty()}});
  EXPECT_FALSE(checkCompliance(Ctx, ClientBad, Server).Compliant);
}

TEST_F(ContractTest, ExternalChoiceOnlyNeedsOneMatch) {
  // Server receives Bok or UnA; client sends just Bok: compliant — the
  // receiver's external choice is driven by the sender.
  const Expr *Server = Ctx.extChoice({{in("Bok"), Ctx.empty()},
                                      {in("UnA"), Ctx.empty()}});
  const Expr *Client = sendE("Bok");
  EXPECT_TRUE(checkCompliance(Ctx, Client, Server).Compliant);
}

TEST_F(ContractTest, RecursiveProtocolIsCompliant) {
  // Client: µh. ping!.pong?.h   Server: µk. ping?.pong!.k — infinite
  // session, compliance holds (progress, not termination).
  const Expr *C = Ctx.mu("h", Ctx.send("ping", Ctx.receive("pong",
                                                           Ctx.var("h"))));
  const Expr *S = Ctx.mu("k", Ctx.receive("ping", Ctx.send("pong",
                                                           Ctx.var("k"))));
  auto R = checkCompliance(Ctx, C, S);
  EXPECT_TRUE(R.Compliant);
  EXPECT_LE(R.ExploredStates, 4u); // Hash-consing keeps the product tiny.
}

TEST_F(ContractTest, RecursiveMismatchEventuallyStuck) {
  // Client pings forever; server answers once then stops.
  const Expr *C = Ctx.mu("h", Ctx.send("ping", Ctx.receive("pong",
                                                           Ctx.var("h"))));
  const Expr *S = Ctx.receive("ping", Ctx.send("pong", Ctx.empty()));
  auto R = checkCompliance(Ctx, C, S);
  EXPECT_FALSE(R.Compliant);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_EQ(R.Witness->Path.size(), 2u); // ping, pong, then stuck.
}

TEST_F(ContractTest, WitnessPathReplaysToStuckState) {
  const Expr *C = Ctx.send("a", Ctx.send("b", Ctx.empty()));
  const Expr *S = Ctx.receive("a", Ctx.receive("x", Ctx.empty()));
  auto R = checkCompliance(Ctx, C, S);
  ASSERT_FALSE(R.Compliant);
  ASSERT_TRUE(R.Witness.has_value());
  ASSERT_EQ(R.Witness->Path.size(), 1u);
  EXPECT_EQ(R.Witness->Path[0], out("a"));
  EXPECT_EQ(R.Witness->ClientStuck, Ctx.send("b", Ctx.empty()));
  std::string Str = R.Witness->str(Ctx);
  EXPECT_NE(Str.find("stuck"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The paper's §2 compliance claims
//===----------------------------------------------------------------------===//

class HotelComplianceTest : public ::testing::Test {
protected:
  HotelComplianceTest() : Ex(core::makeHotelExample(Ctx)) {}
  HistContext Ctx;
  core::HotelExample Ex;

  /// The broker's request-3 body: IdC!.(Bok? + UnA?).
  const Expr *brokerSessionBody() {
    auto Sites = plan::extractRequests(Ex.Br);
    EXPECT_EQ(Sites.size(), 1u);
    return Sites[0].body();
  }
};

TEST_F(HotelComplianceTest, ClientCompliesWithBroker) {
  auto Sites = plan::extractRequests(Ex.C1);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_TRUE(
      checkServiceCompliance(Ctx, Sites[0].body(), Ex.Br).Compliant);
}

TEST_F(HotelComplianceTest, HotelsS1S3S4ComplyWithBroker) {
  const Expr *Body = brokerSessionBody();
  EXPECT_TRUE(checkServiceCompliance(Ctx, Body, Ex.S1).Compliant);
  EXPECT_TRUE(checkServiceCompliance(Ctx, Body, Ex.S3).Compliant);
  EXPECT_TRUE(checkServiceCompliance(Ctx, Body, Ex.S4).Compliant);
}

TEST_F(HotelComplianceTest, S2IsNotCompliantBecauseOfDel) {
  const Expr *Body = brokerSessionBody();
  auto R = checkServiceCompliance(Ctx, Body, Ex.S2);
  EXPECT_FALSE(R.Compliant);
  ASSERT_TRUE(R.Witness.has_value());
  // The witness mentions the unreceivable Del output.
  std::string W = R.Witness->str(Ctx);
  EXPECT_NE(W.find("Del"), std::string::npos);
}

TEST_F(HotelComplianceTest, BrokerNotCompliantWithHotelDirectly) {
  // Binding the client's request 1 straight to a hotel deadlocks
  // immediately: the client sends Req, the hotel waits for IdC.
  auto Sites = plan::extractRequests(Ex.C1);
  EXPECT_FALSE(
      checkServiceCompliance(Ctx, Sites[0].body(), Ex.S3).Compliant);
}

//===----------------------------------------------------------------------===//
// Cross-validation: Thm. 1 / Lemma 1 (product vs. direct Def. 4)
//===----------------------------------------------------------------------===//

struct CompliancePair {
  const char *Name;
  // Builders keyed by index, resolved in the test body.
  int Case;
};

class CrossValidationTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidationTest, ProductAgreesWithDirectChecker) {
  HistContext Ctx;
  auto In = [&](std::string_view C) { return CommAction::input(Ctx.symbol(C)); };
  auto Out = [&](std::string_view C) {
    return CommAction::output(Ctx.symbol(C));
  };

  std::vector<std::pair<const Expr *, const Expr *>> Cases;
  // 1: handshake.
  Cases.push_back({Ctx.send("a", Ctx.empty()), Ctx.receive("a", Ctx.empty())});
  // 2: mismatch.
  Cases.push_back({Ctx.send("a", Ctx.empty()), Ctx.receive("b", Ctx.empty())});
  // 3: client terminates early.
  Cases.push_back({Ctx.empty(), Ctx.receive("a", Ctx.empty())});
  // 4: both wait.
  Cases.push_back(
      {Ctx.receive("a", Ctx.empty()), Ctx.receive("a", Ctx.empty())});
  // 5: internal choice fully covered.
  Cases.push_back({Ctx.extChoice({{In("x"), Ctx.empty()},
                                  {In("y"), Ctx.empty()}}),
                   Ctx.intChoice({{Out("x"), Ctx.empty()},
                                  {Out("y"), Ctx.empty()}})});
  // 6: internal choice with an unmatched branch.
  Cases.push_back({Ctx.extChoice({{In("x"), Ctx.empty()}}),
                   Ctx.intChoice({{Out("x"), Ctx.empty()},
                                  {Out("z"), Ctx.empty()}})});
  // 7: recursive ping/pong.
  Cases.push_back(
      {Ctx.mu("h", Ctx.send("p", Ctx.receive("q", Ctx.var("h")))),
       Ctx.mu("k", Ctx.receive("p", Ctx.send("q", Ctx.var("k"))))});
  // 8: recursion vs finite partner.
  Cases.push_back(
      {Ctx.mu("h", Ctx.send("p", Ctx.receive("q", Ctx.var("h")))),
       Ctx.receive("p", Ctx.send("q", Ctx.empty()))});
  // 9: sequencing with nullable head.
  Cases.push_back({Ctx.seq(Ctx.empty(), Ctx.send("a", Ctx.empty())),
                   Ctx.receive("a", Ctx.empty())});
  // 10: longer pipeline.
  Cases.push_back(
      {Ctx.send("a", Ctx.send("b", Ctx.receive("c", Ctx.empty()))),
       Ctx.receive("a", Ctx.receive("b", Ctx.send("c", Ctx.empty())))});

  int I = GetParam();
  ASSERT_LT(static_cast<size_t>(I), Cases.size());
  const Expr *C = Cases[I].first;
  const Expr *S = Cases[I].second;
  EXPECT_EQ(checkCompliance(Ctx, C, S).Compliant,
            checkComplianceDirect(Ctx, C, S))
      << "case " << I;
}

INSTANTIATE_TEST_SUITE_P(Cases, CrossValidationTest,
                         ::testing::Range(0, 10));

//===----------------------------------------------------------------------===//
// Thm. 2 / Cor. 1: the final-state predicate is state-local (invariant)
//===----------------------------------------------------------------------===//

TEST_F(ContractTest, FinalStatePredicateIsStateLocal) {
  // Evaluate isStuckPair on the same pair reached along different paths:
  // the verdict must agree because it only inspects the current state.
  const Expr *C = Ctx.send("a", recvE("x"));
  const Expr *S = Ctx.receive("a", Ctx.empty());
  auto StepsC = derive(Ctx, recvE("x"));
  auto StepsS = derive(Ctx, Ctx.empty());
  bool Direct = isStuckPair(recvE("x"), StepsC, StepsS);

  ComplianceProduct Product(Ctx, C, S);
  ASSERT_FALSE(Product.isEmptyLanguage());
  auto Final = Product.firstFinal();
  ASSERT_TRUE(Final.has_value());
  EXPECT_EQ(Product.state(*Final).Client, recvE("x"));
  EXPECT_TRUE(Direct);
}

TEST_F(ContractTest, ProductDfaEmptinessMatchesCompliance) {
  const Expr *C = Ctx.mu("h", Ctx.send("p", Ctx.receive("q", Ctx.var("h"))));
  const Expr *SGood =
      Ctx.mu("k", Ctx.receive("p", Ctx.send("q", Ctx.var("k"))));
  const Expr *SBad = Ctx.receive("p", Ctx.send("q", Ctx.empty()));

  ComplianceProduct GoodP(Ctx, C, SGood);
  ComplianceProduct BadP(Ctx, C, SBad);
  EXPECT_TRUE(automata::isEmpty(GoodP.toDfa()));
  EXPECT_FALSE(automata::isEmpty(BadP.toDfa()));
}

//===----------------------------------------------------------------------===//
// Duality: C ⊢ dual(C) — property-tested on random contracts
//===----------------------------------------------------------------------===//

/// A random closed contract over a small channel alphabet.
const Expr *randomContract(HistContext &Ctx, std::mt19937 &Rng,
                           unsigned Depth, bool InLoop = false) {
  auto Chan = [&](unsigned I) { return "rc" + std::to_string(I % 5); };
  unsigned Pick = Rng() % (Depth == 0 ? 1u : (InLoop ? 5u : 6u));
  switch (Pick) {
  case 0:
    return InLoop && Rng() % 2 ? Ctx.var("loop") : Ctx.empty();
  case 1: // input prefix
    return Ctx.receive(Chan(Rng()),
                       randomContract(Ctx, Rng, Depth - 1, InLoop));
  case 2: // output prefix
    return Ctx.send(Chan(Rng()),
                    randomContract(Ctx, Rng, Depth - 1, InLoop));
  case 3: { // external choice
    unsigned N = 2 + Rng() % 2;
    std::vector<ChoiceBranch> Branches;
    for (unsigned I = 0; I < N; ++I)
      Branches.push_back({CommAction::input(Ctx.symbol(Chan(I))),
                          randomContract(Ctx, Rng, Depth - 1, InLoop)});
    return Ctx.extChoice(std::move(Branches));
  }
  case 4: { // internal choice
    unsigned N = 2 + Rng() % 2;
    std::vector<ChoiceBranch> Branches;
    for (unsigned I = 0; I < N; ++I)
      Branches.push_back({CommAction::output(Ctx.symbol(Chan(I))),
                          randomContract(Ctx, Rng, Depth - 1, InLoop)});
    return Ctx.intChoice(std::move(Branches));
  }
  default: { // guarded tail loop
    const Expr *Body = Ctx.prefix(
        Rng() % 2 ? CommAction::input(Ctx.symbol(Chan(Rng())))
                  : CommAction::output(Ctx.symbol(Chan(Rng()))),
        randomContract(Ctx, Rng, Depth - 1, /*InLoop=*/true));
    return Ctx.mu("loop", Body);
  }
  }
}

class DualityTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DualityTest, DualIsInvolutive) {
  HistContext Ctx;
  std::mt19937 Rng(GetParam());
  const Expr *C = randomContract(Ctx, Rng, 4);
  EXPECT_EQ(dualContract(Ctx, dualContract(Ctx, C)), C);
}

TEST_P(DualityTest, ContractCompliesWithItsDual) {
  HistContext Ctx;
  std::mt19937 Rng(GetParam() + 500);
  const Expr *C = randomContract(Ctx, Rng, 4);
  const Expr *D = dualContract(Ctx, C);
  auto R = checkCompliance(Ctx, C, D);
  EXPECT_TRUE(R.Compliant)
      << "contract: " << print(Ctx, C) << "\nwitness: "
      << (R.Witness ? R.Witness->str(Ctx) : "none");
  // And the direct Def. 4 checker agrees.
  EXPECT_TRUE(checkComplianceDirect(Ctx, C, D));
}

TEST_P(DualityTest, DualOfHotelContractsComply) {
  HistContext Ctx;
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  std::vector<const Expr *> All = {Ex.C1, Ex.Br, Ex.S1, Ex.S2, Ex.S3};
  const Expr *C = project(Ctx, All[GetParam() % All.size()]);
  EXPECT_TRUE(checkCompliance(Ctx, C, dualContract(Ctx, C)).Compliant);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualityTest, ::testing::Range(0u, 20u));

TEST_F(ContractTest, FinalStatesHaveNoOutgoingEdges) {
  const Expr *C = Ctx.send("a", Ctx.send("b", Ctx.empty()));
  const Expr *S = Ctx.receive("a", Ctx.empty());
  ComplianceProduct P(Ctx, C, S);
  for (ComplianceProduct::StateIndex I = 0; I < P.numStates(); ++I)
    if (P.state(I).Final) {
      EXPECT_TRUE(P.edges(I).empty());
    }
}

} // namespace
