//===- tests/HistTest.cpp - history expression unit tests -----------------===//

#include "hist/Bisim.h"
#include "hist/Derive.h"
#include "hist/HistContext.h"
#include "hist/TraceEquiv.h"
#include "hist/Printer.h"
#include "hist/TransitionSystem.h"
#include "hist/WellFormed.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace sus;
using namespace sus::hist;

namespace {

class HistTest : public ::testing::Test {
protected:
  HistContext Ctx;

  PolicyRef phi() {
    PolicyRef P;
    P.Name = Ctx.symbol("phi");
    P.Args.push_back({Value::integer(1)});
    return P;
  }
};

//===----------------------------------------------------------------------===//
// Construction, congruence, hash-consing
//===----------------------------------------------------------------------===//

TEST_F(HistTest, EmptyIsUnique) {
  EXPECT_EQ(Ctx.empty(), Ctx.empty());
  EXPECT_TRUE(Ctx.empty()->isEmpty());
}

TEST_F(HistTest, SeqNormalizesEpsilonLeftAndRight) {
  const Expr *A = Ctx.event("a");
  EXPECT_EQ(Ctx.seq(Ctx.empty(), A), A);
  EXPECT_EQ(Ctx.seq(A, Ctx.empty()), A);
}

TEST_F(HistTest, SeqIsRightNested) {
  const Expr *A = Ctx.event("a");
  const Expr *B = Ctx.event("b");
  const Expr *C = Ctx.event("c");
  const Expr *Left = Ctx.seq(Ctx.seq(A, B), C);
  const Expr *Right = Ctx.seq(A, Ctx.seq(B, C));
  EXPECT_EQ(Left, Right);
  const auto *S = dyn_cast<SeqExpr>(Left);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->head(), A);
}

TEST_F(HistTest, HashConsingSharesStructurallyEqualNodes) {
  const Expr *A1 = Ctx.seq(Ctx.event("a"), Ctx.event("b"));
  const Expr *A2 = Ctx.seq(Ctx.event("a"), Ctx.event("b"));
  EXPECT_EQ(A1, A2);
}

TEST_F(HistTest, EventsDifferingInArgumentAreDistinct) {
  EXPECT_NE(Ctx.event("p", 45), Ctx.event("p", 46));
  EXPECT_NE(Ctx.event("p", 45), Ctx.event("p"));
  EXPECT_NE(Ctx.event("sgn", "s1"), Ctx.event("sgn", "s2"));
}

TEST_F(HistTest, ChoiceBranchesAreCanonicalized) {
  ChoiceBranch B1{CommAction::input(Ctx.symbol("a")), Ctx.empty()};
  ChoiceBranch B2{CommAction::input(Ctx.symbol("b")), Ctx.empty()};
  EXPECT_EQ(Ctx.extChoice({B1, B2}), Ctx.extChoice({B2, B1}));
  EXPECT_EQ(Ctx.extChoice({B1, B1, B2}), Ctx.extChoice({B1, B2}));
}

TEST_F(HistTest, MuWithoutOccurrenceIsDropped) {
  const Expr *Body = Ctx.event("a");
  EXPECT_EQ(Ctx.mu("h", Body), Body);
}

TEST_F(HistTest, FreeVarsSeesThroughBinders) {
  const Expr *H = Ctx.var("h");
  EXPECT_EQ(Ctx.freeVars(H).size(), 1u);
  const Expr *Closed = Ctx.mu("h", Ctx.send("a", H));
  EXPECT_TRUE(Ctx.isClosed(Closed));
  // Shadowing: inner mu binds its own h.
  const Expr *Shadow =
      Ctx.mu("h", Ctx.send("a", Ctx.mu("h", Ctx.send("b", Ctx.var("h")))));
  EXPECT_TRUE(Ctx.isClosed(Shadow));
}

TEST_F(HistTest, SubstituteReplacesOnlyFreeOccurrences) {
  const Expr *H = Ctx.var("h");
  const Expr *K = Ctx.event("k");
  EXPECT_EQ(Ctx.substitute(H, Ctx.symbol("h"), K), K);

  const Expr *Inner = Ctx.mu("h", Ctx.send("a", Ctx.var("h")));
  // h is bound inside Inner: substitution is the identity there.
  EXPECT_EQ(Ctx.substitute(Inner, Ctx.symbol("h"), K), Inner);
}

//===----------------------------------------------------------------------===//
// Operational semantics (the rules of §3)
//===----------------------------------------------------------------------===//

TEST_F(HistTest, EventFiresAndTerminates) {
  auto Steps = derive(Ctx, Ctx.event("a", 7));
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_TRUE(Steps[0].L.isEvent());
  EXPECT_EQ(Steps[0].L.asEvent().Arg, Value::integer(7));
  EXPECT_TRUE(Steps[0].Target->isEmpty());
}

TEST_F(HistTest, EmptyHasNoTransitions) {
  EXPECT_TRUE(derive(Ctx, Ctx.empty()).empty());
}

TEST_F(HistTest, InternalChoiceOffersEachOutput) {
  const Expr *E = Ctx.intChoice({
      {CommAction::output(Ctx.symbol("a")), Ctx.event("x")},
      {CommAction::output(Ctx.symbol("b")), Ctx.event("y")},
  });
  auto Steps = derive(Ctx, E);
  ASSERT_EQ(Steps.size(), 2u);
  for (const Transition &T : Steps) {
    EXPECT_TRUE(T.L.isComm());
    EXPECT_TRUE(T.L.asComm().isOutput());
  }
}

TEST_F(HistTest, ExternalChoiceOffersEachInput) {
  const Expr *E = Ctx.extChoice({
      {CommAction::input(Ctx.symbol("a")), Ctx.event("x")},
      {CommAction::input(Ctx.symbol("b")), Ctx.event("y")},
  });
  auto Steps = derive(Ctx, E);
  ASSERT_EQ(Steps.size(), 2u);
  for (const Transition &T : Steps)
    EXPECT_TRUE(T.L.asComm().isInput());
}

TEST_F(HistTest, RequestOpensAndLeavesCloseMark) {
  const Expr *R = Ctx.request(5, phi(), Ctx.event("a"));
  auto Steps = derive(Ctx, R);
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_TRUE(Steps[0].L.isOpen());
  EXPECT_EQ(Steps[0].L.request(), 5u);
  // Residual: a . close_5.
  auto Steps2 = derive(Ctx, Steps[0].Target);
  ASSERT_EQ(Steps2.size(), 1u);
  EXPECT_TRUE(Steps2[0].L.isEvent());
  auto Steps3 = derive(Ctx, Steps2[0].Target);
  ASSERT_EQ(Steps3.size(), 1u);
  EXPECT_TRUE(Steps3[0].L.isClose());
  EXPECT_TRUE(Steps3[0].Target->isEmpty());
}

TEST_F(HistTest, FramingOpensAndLeavesFrameClose) {
  const Expr *F = Ctx.framing(phi(), Ctx.event("a"));
  auto Steps = derive(Ctx, F);
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_EQ(Steps[0].L.kind(), LabelKind::FrameOpen);
  auto Steps2 = derive(Ctx, Steps[0].Target);
  ASSERT_EQ(Steps2.size(), 1u);
  auto Steps3 = derive(Ctx, Steps2[0].Target);
  ASSERT_EQ(Steps3.size(), 1u);
  EXPECT_EQ(Steps3[0].L.kind(), LabelKind::FrameClose);
}

TEST_F(HistTest, SeqStepsThroughHead) {
  const Expr *E = Ctx.seq(Ctx.event("a"), Ctx.event("b"));
  auto Steps = derive(Ctx, E);
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_EQ(Steps[0].Target, Ctx.event("b"));
}

TEST_F(HistTest, RecursionUnfoldsThroughGuard) {
  // µh. a!.h — an infinite sender.
  const Expr *Loop = Ctx.mu("h", Ctx.send("a", Ctx.var("h")));
  auto Steps = derive(Ctx, Loop);
  ASSERT_EQ(Steps.size(), 1u);
  EXPECT_TRUE(Steps[0].L.asComm().isOutput());
  // The derivative folds back to the same hash-consed state.
  EXPECT_EQ(Steps[0].Target, Loop);
}

TEST_F(HistTest, DegenerateUnguardedMuIsStuckNotDivergent) {
  const Expr *Bad = Ctx.mu("h", Ctx.var("h"));
  EXPECT_TRUE(derive(Ctx, Bad).empty());
}

TEST_F(HistTest, TransitionSystemOfRecursiveSenderIsFinite) {
  const Expr *Loop = Ctx.mu(
      "h", Ctx.send("a", Ctx.receive("b", Ctx.var("h"))));
  TransitionSystem Ts(Ctx, Loop);
  EXPECT_TRUE(Ts.isComplete());
  EXPECT_EQ(Ts.numStates(), 2u);
  EXPECT_EQ(Ts.numEdges(), 2u);
}

TEST_F(HistTest, TransitionSystemCountsBranches) {
  // a!.(b? + c?) has states: root, (b?+c?), ε.
  const Expr *E = Ctx.send(
      "a", Ctx.extChoice({
               {CommAction::input(Ctx.symbol("b")), Ctx.empty()},
               {CommAction::input(Ctx.symbol("c")), Ctx.empty()},
           }));
  TransitionSystem Ts(Ctx, E);
  EXPECT_EQ(Ts.numStates(), 3u);
  EXPECT_EQ(Ts.numEdges(), 3u);
}

//===----------------------------------------------------------------------===//
// Well-formedness
//===----------------------------------------------------------------------===//

TEST_F(HistTest, WellFormedAcceptsGuardedTailRecursion) {
  const Expr *Good = Ctx.mu("h", Ctx.send("a", Ctx.var("h")));
  EXPECT_TRUE(isWellFormed(Ctx, Good));
}

TEST_F(HistTest, WellFormedRejectsFreeVariable) {
  auto Issues = wellFormedIssues(Ctx, Ctx.var("h"));
  ASSERT_FALSE(Issues.empty());
  EXPECT_EQ(Issues[0].Kind, WellFormedIssueKind::FreeVariable);
}

TEST_F(HistTest, WellFormedRejectsUnguardedRecursion) {
  const Expr *Bad = Ctx.mu("h", Ctx.var("h"));
  auto Issues = wellFormedIssues(Ctx, Bad);
  bool FoundUnguarded = false;
  for (const auto &I : Issues)
    FoundUnguarded |= I.Kind == WellFormedIssueKind::UnguardedRecursion;
  EXPECT_TRUE(FoundUnguarded);
}

TEST_F(HistTest, WellFormedRejectsEventGuardedRecursion) {
  // µh. %e ; h — guarded by an event only: the projection would lose the
  // guard, so the paper requires communication guards.
  const Expr *Bad = Ctx.mu("h", Ctx.seq(Ctx.event("e"), Ctx.var("h")));
  auto Issues = wellFormedIssues(Ctx, Bad);
  bool FoundUnguarded = false;
  for (const auto &I : Issues)
    FoundUnguarded |= I.Kind == WellFormedIssueKind::UnguardedRecursion;
  EXPECT_TRUE(FoundUnguarded);
}

TEST_F(HistTest, WellFormedRejectsNonTailRecursion) {
  // µh. (a!.h) ; %b — the recursion variable is followed by more work.
  const Expr *Bad = Ctx.mu(
      "h", Ctx.seq(Ctx.send("a", Ctx.var("h")), Ctx.event("b")));
  auto Issues = wellFormedIssues(Ctx, Bad);
  bool FoundNonTail = false;
  for (const auto &I : Issues)
    FoundNonTail |= I.Kind == WellFormedIssueKind::NonTailRecursion;
  EXPECT_TRUE(FoundNonTail);
}

TEST_F(HistTest, WellFormedRejectsRecursionInsideRequest) {
  const Expr *Bad =
      Ctx.mu("h", Ctx.send("a", Ctx.request(1, phi(), Ctx.var("h"))));
  EXPECT_FALSE(isWellFormed(Ctx, Bad));
}

TEST_F(HistTest, WellFormedAcceptsSeqAfterCommunication) {
  // µh. a!.(%e ; h): the tail position after the event is still guarded by
  // the a! prefix.
  const Expr *Good =
      Ctx.mu("h", Ctx.send("a", Ctx.seq(Ctx.event("e"), Ctx.var("h"))));
  EXPECT_TRUE(isWellFormed(Ctx, Good));
}

TEST_F(HistTest, CheckWellFormedReportsDiagnostics) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(checkWellFormed(Ctx, Ctx.var("h"), Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Bisimulation
//===----------------------------------------------------------------------===//

TEST_F(HistTest, BisimIsReflexive) {
  const Expr *E = Ctx.mu("h", Ctx.send("a", Ctx.receive("b", Ctx.var("h"))));
  EXPECT_TRUE(bisimilar(Ctx, E, E));
}

TEST_F(HistTest, BisimEquatesSeqDistribution) {
  // (a!.ε)·K ~ a!.K — the Conc rule makes them indistinguishable.
  const Expr *K = Ctx.receive("k", Ctx.empty());
  const Expr *Left = Ctx.seq(Ctx.send("a", Ctx.empty()), K);
  const Expr *Right = Ctx.send("a", K);
  EXPECT_NE(Left, Right); // Different ASTs,
  EXPECT_TRUE(bisimilar(Ctx, Left, Right)); // same behaviour.
}

TEST_F(HistTest, BisimDistinguishesChoicePoint) {
  // x!.(y! ⊕ z!) vs (x!.y!) ⊕ (x!.z!): trace-equivalent but the moment of
  // commitment differs — not bisimilar.
  const Expr *Late = Ctx.send(
      "x", Ctx.intChoice({
               {CommAction::output(Ctx.symbol("y")), Ctx.empty()},
               {CommAction::output(Ctx.symbol("z")), Ctx.empty()},
           }));
  const Expr *Early = Ctx.intChoice({
      {CommAction::output(Ctx.symbol("x")), Ctx.send("y", Ctx.empty())},
      {CommAction::output(Ctx.symbol("x")), Ctx.send("z", Ctx.empty())},
  });
  EXPECT_FALSE(bisimilar(Ctx, Late, Early));
}

TEST_F(HistTest, BisimEquatesUnrolledLoops) {
  const Expr *One = Ctx.mu("h", Ctx.send("a", Ctx.var("h")));
  const Expr *Two =
      Ctx.mu("k", Ctx.send("a", Ctx.send("a", Ctx.var("k"))));
  EXPECT_TRUE(bisimilar(Ctx, One, Two));
}

TEST_F(HistTest, BisimSeparatesDifferentLabels) {
  EXPECT_FALSE(bisimilar(Ctx, Ctx.event("a"), Ctx.event("b")));
  EXPECT_FALSE(bisimilar(Ctx, Ctx.event("a", 1), Ctx.event("a", 2)));
  EXPECT_FALSE(bisimilar(Ctx, Ctx.empty(), Ctx.event("a")));
}

//===----------------------------------------------------------------------===//
// Trace equivalence
//===----------------------------------------------------------------------===//

TEST_F(HistTest, TraceEquivalenceIsCoarserThanBisim) {
  // The classic pair: trace-equivalent but not bisimilar.
  const Expr *Late = Ctx.send(
      "x", Ctx.intChoice({
               {CommAction::output(Ctx.symbol("y")), Ctx.empty()},
               {CommAction::output(Ctx.symbol("z")), Ctx.empty()},
           }));
  const Expr *Early = Ctx.intChoice({
      {CommAction::output(Ctx.symbol("x")), Ctx.send("y", Ctx.empty())},
      {CommAction::output(Ctx.symbol("x")), Ctx.send("z", Ctx.empty())},
  });
  EXPECT_TRUE(traceEquivalent(Ctx, Late, Early));
  EXPECT_FALSE(bisimilar(Ctx, Late, Early));
}

TEST_F(HistTest, TraceEquivalenceAgreesWithBisimWhenBisimilar) {
  const Expr *One = Ctx.mu("h", Ctx.send("a", Ctx.var("h")));
  const Expr *Two =
      Ctx.mu("k", Ctx.send("a", Ctx.send("a", Ctx.var("k"))));
  EXPECT_TRUE(bisimilar(Ctx, One, Two));
  EXPECT_TRUE(traceEquivalent(Ctx, One, Two));
}

TEST_F(HistTest, TraceEquivalenceSeparatesDifferentLanguages) {
  EXPECT_FALSE(traceEquivalent(Ctx, Ctx.event("a"), Ctx.event("b")));
  EXPECT_FALSE(traceEquivalent(
      Ctx, Ctx.send("a", Ctx.empty()),
      Ctx.send("a", Ctx.send("a", Ctx.empty()))));
}

TEST_F(HistTest, TraceEquivalenceSeesThroughSeqNesting) {
  const Expr *K = Ctx.receive("k", Ctx.empty());
  EXPECT_TRUE(traceEquivalent(Ctx, Ctx.seq(Ctx.send("a", Ctx.empty()), K),
                              Ctx.send("a", K)));
}

TEST_F(HistTest, CanPerformChecksTraceMembership) {
  const Expr *E = Ctx.send(
      "a", Ctx.extChoice({
               {CommAction::input(Ctx.symbol("x")), Ctx.event("done")},
               {CommAction::input(Ctx.symbol("y")), Ctx.empty()},
           }));
  auto Out = [&](std::string_view C) {
    return Label::comm(CommAction::output(Ctx.symbol(C)));
  };
  auto In = [&](std::string_view C) {
    return Label::comm(CommAction::input(Ctx.symbol(C)));
  };
  EXPECT_TRUE(canPerform(Ctx, E, {}));
  EXPECT_TRUE(canPerform(Ctx, E, {Out("a")}));
  EXPECT_TRUE(canPerform(Ctx, E, {Out("a"), In("x")}));
  EXPECT_TRUE(canPerform(
      Ctx, E, {Out("a"), In("x"), Label::event(Event{Ctx.symbol("done"),
                                                     Value()})}));
  EXPECT_FALSE(canPerform(Ctx, E, {In("a")}));
  EXPECT_FALSE(canPerform(Ctx, E, {Out("a"), In("z")}));
  EXPECT_FALSE(canPerform(
      Ctx, E, {Out("a"), In("y"), Label::event(Event{Ctx.symbol("done"),
                                                     Value()})}));
}

TEST_F(HistTest, CanPerformHandlesNondeterminism) {
  // Two branches on the same channel: the subset walk must follow both.
  const Expr *E = Ctx.intChoice({
      {CommAction::output(Ctx.symbol("a")), Ctx.event("left")},
      {CommAction::output(Ctx.symbol("a")), Ctx.event("right")},
  });
  auto OutA = Label::comm(CommAction::output(Ctx.symbol("a")));
  auto EvLeft = Label::event(Event{Ctx.symbol("left"), Value()});
  auto EvRight = Label::event(Event{Ctx.symbol("right"), Value()});
  EXPECT_TRUE(canPerform(Ctx, E, {OutA, EvLeft}));
  EXPECT_TRUE(canPerform(Ctx, E, {OutA, EvRight}));
  EXPECT_FALSE(canPerform(Ctx, E, {OutA, EvLeft, EvRight}));
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

TEST_F(HistTest, PrintsPaperShapes) {
  EXPECT_EQ(print(Ctx, Ctx.empty()), "eps");
  EXPECT_EQ(print(Ctx, Ctx.event("sgn", "s1")), "%sgn(s1)");
  EXPECT_EQ(print(Ctx, Ctx.event("p", 45)), "%p(45)");
  const Expr *Choice = Ctx.extChoice({
      {CommAction::input(Ctx.symbol("CoBo")), Ctx.send("Pay", Ctx.empty())},
      {CommAction::input(Ctx.symbol("NoAv")), Ctx.empty()},
  });
  EXPECT_EQ(print(Ctx, Choice), "CoBo? . Pay! + NoAv?");
}

TEST_F(HistTest, PrintsSeqWithSemicolons) {
  const Expr *E = Ctx.seq({Ctx.event("a"), Ctx.event("b"), Ctx.event("c")});
  EXPECT_EQ(print(Ctx, E), "%a; %b; %c");
}

TEST_F(HistTest, PrintsMuAndRequest) {
  const Expr *Loop = Ctx.mu("h", Ctx.send("a", Ctx.var("h")));
  EXPECT_EQ(print(Ctx, Loop), "mu h . a! . h");
  const Expr *R = Ctx.request(2, PolicyRef(), Ctx.event("x"));
  EXPECT_EQ(print(Ctx, R), "open 2 { %x }");
}

TEST_F(HistTest, PrintDotEmitsDigraph) {
  const Expr *Loop = Ctx.mu("h", Ctx.send("a", Ctx.var("h")));
  TransitionSystem Ts(Ctx, Loop);
  std::ostringstream OS;
  printDot(Ctx, Ts, OS, "loop");
  EXPECT_NE(OS.str().find("digraph"), std::string::npos);
  EXPECT_NE(OS.str().find("a!"), std::string::npos);
}

} // namespace
