//===- tests/SnapshotDiffTest.cpp - warm-restart equivalence sweeps -------===//
///
/// \file
/// Differential tests for the persistent cache snapshot (DESIGN.md §13):
/// a snapshot cut after a cold verification must reload into a fresh
/// HistContext (simulating a restarted susd) and reproduce the cold
/// verdict stream bit for bit — on the paper's hotel example and on a
/// sweep of seeded generated programs — while mismatched repositories,
/// wrong-version blobs and double loads behave per the strictness
/// contract. Seeds are fixed; nothing depends on wall-clock.
///
//===----------------------------------------------------------------------===//

#include "core/Snapshot.h"
#include "core/Verifier.h"
#include "fuzz/Generator.h"
#include "support/Diagnostics.h"
#include "syntax/FileParser.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>

using namespace sus;

namespace {

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// One parsed session with its own context, cache and verifier.
struct Session {
  hist::HistContext Ctx;
  std::optional<syntax::SusFile> File;
  std::shared_ptr<core::VerifierCache> Cache;
  std::unique_ptr<core::Verifier> V;

  explicit Session(const std::string &Source, bool UseIndex = true) {
    DiagnosticEngine Diags;
    File = syntax::parseSusFile(Ctx, Source, Diags, "snap.sus");
    EXPECT_TRUE(File.has_value());
    if (!File)
      return;
    core::VerifierOptions Opts;
    Opts.UseIndex = UseIndex;
    Cache = std::make_shared<core::VerifierCache>();
    V = std::make_unique<core::Verifier>(Ctx, File->Repo, File->Registry,
                                         Opts, Cache);
  }

  /// Renders every client's full report — the byte stream the snapshot
  /// must preserve across a restart.
  std::string verifyAll() {
    std::ostringstream OS;
    for (const auto &[Name, Client] : File->Clients) {
      core::VerificationReport Report = V->verifyClient(Client, Name);
      core::printReport(Report, Ctx, OS);
    }
    return OS.str();
  }

  std::string snapshot(core::SnapshotStats *Stats = nullptr) {
    return core::saveSnapshot(Ctx, File->Repo, *Cache, V->index(), Stats);
  }

  /// Loads \p Bytes and, on success, adopts the persisted index.
  core::SnapshotLoadResult load(const std::string &Bytes) {
    core::SnapshotLoadResult R =
        core::loadSnapshot(Bytes, Ctx, File->Repo, *Cache);
    if (R.Ok && !R.IndexEntries.empty())
      V->adoptIndex(std::make_unique<plan::ServiceIndex>(Ctx, File->Repo,
                                                         R.IndexEntries));
    return R;
  }
};

/// The cold-vs-warm equivalence check at the heart of the suite.
void expectWarmRestartIdentical(const std::string &Source) {
  Session Cold(Source);
  ASSERT_TRUE(Cold.V);
  std::string ColdText = Cold.verifyAll();
  core::SnapshotStats Stats;
  std::string Bytes = Cold.snapshot(&Stats);
  EXPECT_EQ(Stats.Bytes, Bytes.size());

  Session Warm(Source);
  ASSERT_TRUE(Warm.V);
  core::SnapshotLoadResult R = Warm.load(Bytes);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.Compliances, Stats.Compliances);
  EXPECT_EQ(R.Stats.Validities, Stats.Validities);
  EXPECT_EQ(Warm.verifyAll(), ColdText);
}

TEST(SnapshotDiff, HotelWarmRestartIsBitForBitIdentical) {
  expectWarmRestartIdentical(readWholeFile(SUS_EXAMPLES_DIR "/hotel.sus"));
}

TEST(SnapshotDiff, MarketplaceWarmRestartIsBitForBitIdentical) {
  expectWarmRestartIdentical(
      readWholeFile(SUS_EXAMPLES_DIR "/marketplace.sus"));
}

TEST(SnapshotDiff, SeededGeneratedProgramsSurviveRestart) {
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    fuzz::GeneratedProgram P = fuzz::generateProgram(Seed, {});
    SCOPED_TRACE("seed " + std::to_string(Seed));
    expectWarmRestartIdentical(P.source());
  }
}

TEST(SnapshotDiff, WarmCacheServesHitsNotRecomputation) {
  std::string Source = readWholeFile(SUS_EXAMPLES_DIR "/hotel.sus");
  Session Cold(Source);
  Cold.verifyAll();
  std::string Bytes = Cold.snapshot();

  Session Warm(Source);
  ASSERT_TRUE(Warm.load(Bytes).Ok);
  Warm.verifyAll();
  // Every compliance pair the warm run needed was already in the
  // snapshot: no new entries appear, and the lookups all hit.
  EXPECT_EQ(Warm.Cache->exportEntries().Compliances.size(),
            Cold.Cache->exportEntries().Compliances.size());
  EXPECT_EQ(Warm.Cache->stats().ComplianceHits,
            Warm.Cache->stats().ComplianceLookups);
}

TEST(SnapshotDiff, SnapshotFromDifferentRepositoryIsRejected) {
  std::string Hotel = readWholeFile(SUS_EXAMPLES_DIR "/hotel.sus");
  std::string Market = readWholeFile(SUS_EXAMPLES_DIR "/marketplace.sus");
  Session Cold(Hotel);
  Cold.verifyAll();
  std::string Bytes = Cold.snapshot();

  Session Other(Market);
  core::SnapshotLoadResult R = Other.load(Bytes);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("repository"), std::string::npos) << R.Error;
  // The rejection absorbed nothing.
  EXPECT_EQ(Other.Cache->exportEntries().Compliances.size(), 0u);
}

TEST(SnapshotDiff, LoadingTwiceIsIdempotent) {
  std::string Source = readWholeFile(SUS_EXAMPLES_DIR "/hotel.sus");
  Session Cold(Source);
  std::string ColdText = Cold.verifyAll();
  std::string Bytes = Cold.snapshot();

  Session Warm(Source);
  ASSERT_TRUE(Warm.load(Bytes).Ok);
  ASSERT_TRUE(Warm.load(Bytes).Ok); // Live entries win; absorb is a no-op.
  EXPECT_EQ(Warm.verifyAll(), ColdText);
}

TEST(SnapshotDiff, EmptyCacheSnapshotRoundTrips) {
  std::string Source = readWholeFile(SUS_EXAMPLES_DIR "/hotel.sus");
  Session Cold(Source);
  std::string Bytes = Cold.snapshot(); // Nothing verified yet.
  Session Warm(Source);
  core::SnapshotLoadResult R = Warm.load(Bytes);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.Compliances, 0u);
  // A cold verify after the empty load still works and matches scratch.
  Session Scratch(Source);
  EXPECT_EQ(Warm.verifyAll(), Scratch.verifyAll());
}

} // namespace
