//===- tests/FuzzTest.cpp - Generator, oracle and minimizer tests ---------===//
///
/// \file
/// In-tree coverage for the fuzzing subsystem itself: the generator is
/// deterministic and always emits parseable, well-formed programs; the
/// differential oracles agree across a seed sweep; the chaos soak holds
/// its invariants; the adversarial parser battery passes; and the
/// declaration minimizer shrinks failures greedily.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Chaos.h"
#include "fuzz/Differential.h"
#include "fuzz/Generator.h"
#include "hist/HistContext.h"
#include "hist/WellFormed.h"
#include "support/Diagnostics.h"
#include "syntax/FileParser.h"

#include "gtest/gtest.h"

namespace {

using namespace sus;
using namespace sus::fuzz;

std::string describe(const std::vector<Divergence> &Ds) {
  std::string Out;
  for (const Divergence &D : Ds)
    Out += "[" + D.Check + "] " + D.Detail + "\n";
  return Out;
}

TEST(GeneratorTest, SameSeedSameProgram) {
  GeneratedProgram A = generateProgram(42);
  GeneratedProgram B = generateProgram(42);
  EXPECT_EQ(A.source(), B.source());
  GeneratedProgram C = generateProgram(43);
  EXPECT_NE(A.source(), C.source());
}

TEST(GeneratorTest, KnobsChangeShape) {
  GeneratorOptions Small;
  Small.NumServices = 1;
  Small.NumClients = 1;
  GeneratorOptions Big;
  Big.NumServices = 6;
  Big.NumClients = 4;
  EXPECT_LT(generateProgram(1, Small).Decls.size(),
            generateProgram(1, Big).Decls.size());
}

class GeneratorParseTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorParseTest, AlwaysParsesAndIsWellFormed) {
  GeneratedProgram P = generateProgram(static_cast<uint64_t>(GetParam()));
  hist::HistContext Ctx;
  DiagnosticEngine Diags;
  std::optional<syntax::SusFile> File =
      syntax::parseSusFile(Ctx, P.source(), Diags, "gen.sus");
  ASSERT_TRUE(File.has_value()) << P.source();
  // parseSusFile itself enforces closedness and well-formedness; spot-
  // check the structure made it through: every declared piece is there.
  EXPECT_FALSE(File->Repo.locations().empty());
  EXPECT_FALSE(File->Clients.empty());
  EXPECT_FALSE(File->Plans.empty());
}

INSTANTIATE_TEST_SUITE_P(HundredSeeds, GeneratorParseTest,
                         ::testing::Range(0, 100));

class DifferentialSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSweepTest, OraclesAgree) {
  FuzzOptions Opts;
  Opts.Chaos = false; // The chaos soak gets its own (smaller) sweep below.
  SeedReport R = runSeed(static_cast<uint64_t>(GetParam()), Opts);
  EXPECT_TRUE(R.clean()) << describe(R.Divergences)
                         << "reproducer:\n" << R.MinimizedSource;
}

INSTANTIATE_TEST_SUITE_P(HundredSeeds, DifferentialSweepTest,
                         ::testing::Range(0, 100));

class ChaosSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSweepTest, InconclusiveOrCorrectAndNoCachePollution) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  GeneratedProgram P = generateProgram(Seed);
  hist::HistContext Ctx;
  DiagnosticEngine Diags;
  std::optional<syntax::SusFile> File =
      syntax::parseSusFile(Ctx, P.source(), Diags, "chaos.sus");
  ASSERT_TRUE(File.has_value());
  std::vector<Divergence> Out;
  chaosSoak(Ctx, *File, Seed, /*Rounds=*/3, Out);
  EXPECT_TRUE(Out.empty()) << describe(Out);
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ChaosSweepTest,
                         ::testing::Range(0, 20));

TEST(TortureTest, AdversarialBatteryIsClean) {
  std::vector<Divergence> Out = parserTorture();
  EXPECT_TRUE(Out.empty()) << describe(Out);
}

TEST(MinimizerTest, DropsEveryUnneededDeclaration) {
  std::vector<std::string> Decls = {"a", "bad", "c", "d", "bad2"};
  // Synthetic predicate: the failure persists while both "bad" decls
  // survive. The minimizer must strip everything else.
  auto StillFails = [](const std::vector<std::string> &Ds) {
    bool B1 = false, B2 = false;
    for (const std::string &D : Ds) {
      B1 |= D == "bad";
      B2 |= D == "bad2";
    }
    return B1 && B2;
  };
  std::vector<std::string> Min = minimizeDecls(Decls, StillFails);
  EXPECT_EQ(Min, (std::vector<std::string>{"bad", "bad2"}));
}

TEST(MinimizerTest, KeepsEverythingWhenAllLoadBearing) {
  std::vector<std::string> Decls = {"x", "y"};
  auto StillFails = [](const std::vector<std::string> &Ds) {
    return Ds.size() >= 2;
  };
  EXPECT_EQ(minimizeDecls(Decls, StillFails).size(), 2u);
}

TEST(MinimizerTest, RealDivergencePredicateShrinksAProgram) {
  // Drive the real checkSource-based predicate with a program whose only
  // "failure" is a parse error confined to one declaration: the minimizer
  // must shrink to (at most) that declaration plus nothing load-bearing.
  std::vector<std::string> Decls = generateProgram(3).Decls;
  Decls.push_back("service broken { eps"); // Unterminated on purpose.
  FuzzOptions Opts;
  auto StillFails = [&](const std::vector<std::string> &Ds) {
    std::vector<Divergence> D;
    checkSource(joinDecls(Ds), /*Seed=*/3, Opts, D);
    return !D.empty();
  };
  ASSERT_TRUE(StillFails(Decls));
  std::vector<std::string> Min = minimizeDecls(Decls, StillFails);
  EXPECT_EQ(Min.size(), 1u);
  EXPECT_EQ(Min[0], "service broken { eps");
}

} // namespace
