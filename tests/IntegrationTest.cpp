//===- tests/IntegrationTest.cpp - cross-module end-to-end tests ----------===//

#include "core/HotelExample.h"
#include "core/Verifier.h"
#include "hist/Bisim.h"
#include "lambda/TypeEffect.h"
#include "net/Interpreter.h"
#include "syntax/FileParser.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace sus;
using namespace sus::hist;

namespace {

/// The full Fig. 2 network as a .sus file.
const char *FullHotelSus = R"(
policy phi(bl: set, p: int, t: int) {
  start q1;
  offending q6;
  q1 -> q2 on sgn(x) when x not in bl;
  q1 -> q6 on sgn(x) when x in bl;
  q2 -> q3 on p(y) when y <= p;
  q2 -> q4 on p(y) when y > p;
  q4 -> q5 on ta(z) when z >= t;
  q4 -> q6 on ta(z) when z < t;
  q3 -> q3 on *; q5 -> q5 on *; q6 -> q6 on *;
}

service br {
  Req? . (open 3 { IdC! . (Bok? + UnA?) }; (CoBo! . Pay? <+> NoAv!))
}
service s1 { %sgn(s1); %p(45); %ta(80);  IdC? . (Bok! <+> UnA!) }
service s2 { %sgn(s2); %p(70); %ta(100); IdC? . (Bok! <+> UnA! <+> Del!) }
service s3 { %sgn(s3); %p(90); %ta(100); IdC? . (Bok! <+> UnA!) }
service s4 { %sgn(s4); %p(50); %ta(90);  IdC? . (Bok! <+> UnA!) }

client c1 { open 1 @ phi({s1},45,100)    { Req! . (CoBo? . Pay! + NoAv?) } }
client c2 { open 2 @ phi({s1,s3},40,70)  { Req! . (CoBo? . Pay! + NoAv?) } }

plan pi1 for c1 { 1 -> br; 3 -> s3; }
plan pi2 for c2 { 2 -> br; 3 -> s2; }
plan pi3 for c2 { 2 -> br; 3 -> s3; }
)";

class IntegrationTest : public ::testing::Test {
protected:
  IntegrationTest() {
    DiagnosticEngine Diags;
    auto Parsed = syntax::parseSusFile(Ctx, FullHotelSus, Diags);
    std::ostringstream OS;
    Diags.print(OS);
    EXPECT_TRUE(Parsed.has_value()) << OS.str();
    if (Parsed)
      File = std::move(*Parsed);
  }

  HistContext Ctx;
  syntax::SusFile File;
};

TEST_F(IntegrationTest, ParsedFileMatchesHandBuiltFixture) {
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  EXPECT_EQ(File.findClient(Ctx.symbol("c1")), Ex.C1);
  EXPECT_EQ(File.findClient(Ctx.symbol("c2")), Ex.C2);
  EXPECT_EQ(File.Repo.find(Ctx.symbol("br")), Ex.Br);
  EXPECT_EQ(File.Repo.find(Ctx.symbol("s2")), Ex.S2);
}

TEST_F(IntegrationTest, VerifierFindsThePaperPlansFromTheParsedFile) {
  core::Verifier V(Ctx, File.Repo, File.Registry);

  auto R1 = V.verifyClient(File.findClient(Ctx.symbol("c1")),
                           Ctx.symbol("c1"));
  auto Valid1 = R1.validPlans();
  ASSERT_EQ(Valid1.size(), 1u);
  EXPECT_EQ(Valid1[0], File.findPlan(Ctx.symbol("pi1"))->Pi);

  auto R2 = V.verifyClient(File.findClient(Ctx.symbol("c2")),
                           Ctx.symbol("c2"));
  auto Valid2 = R2.validPlans();
  ASSERT_EQ(Valid2.size(), 1u);
  EXPECT_EQ(*Valid2[0].lookup(3), Ctx.symbol("s4"));
}

TEST_F(IntegrationTest, DeclaredPlansGetThePaperVerdicts) {
  core::Verifier V(Ctx, File.Repo, File.Registry);
  const Expr *C1 = File.findClient(Ctx.symbol("c1"));
  const Expr *C2 = File.findClient(Ctx.symbol("c2"));

  // π1: valid.
  EXPECT_TRUE(V.checkPlan(C1, Ctx.symbol("c1"),
                          File.findPlan(Ctx.symbol("pi1"))->Pi)
                  .isValid());
  // π2: compliance failure (Del).
  auto V2 = V.checkPlan(C2, Ctx.symbol("c2"),
                        File.findPlan(Ctx.symbol("pi2"))->Pi);
  EXPECT_FALSE(V2.compliancePassed());
  // π3: compliance fine, security violation (s3 black-listed by c2).
  auto V3 = V.checkPlan(C2, Ctx.symbol("c2"),
                        File.findPlan(Ctx.symbol("pi3"))->Pi);
  EXPECT_TRUE(V3.compliancePassed());
  EXPECT_FALSE(V3.Security.Valid);
}

TEST_F(IntegrationTest, ValidPlanRunsMonitorFree) {
  // §5: "switch off any run-time monitor, and live happily". A verified
  // plan behaves identically with and without the monitor.
  const Expr *C1 = File.findClient(Ctx.symbol("c1"));
  const plan::Plan &Pi1 = File.findPlan(Ctx.symbol("pi1"))->Pi;
  for (bool Monitor : {true, false}) {
    net::InterpreterOptions Opts;
    Opts.MonitorEnabled = Monitor;
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      net::Interpreter I(Ctx, File.Repo, File.Registry,
                         {{Ctx.symbol("c1"), C1, Pi1}}, Opts);
      net::RunStats Stats = I.run(Seed);
      EXPECT_TRUE(Stats.AllCompleted);
      EXPECT_EQ(Stats.Violations, 0u);
      EXPECT_EQ(Stats.BlockedAttempts, 0u);
    }
  }
}

TEST_F(IntegrationTest, StaticVerdictPredictsRuntimeBehaviour) {
  // Sweep every enumerable plan for both clients: statically-valid plans
  // always complete unmonitored with no violation; plans rejected for a
  // *security* reason either get blocked (monitored) or record a
  // violation (unmonitored) on some schedule.
  core::Verifier V(Ctx, File.Repo, File.Registry);
  core::VerifierOptions Exhaustive;
  Exhaustive.PruneWithCompliance = false;
  core::Verifier VE(Ctx, File.Repo, File.Registry, Exhaustive);

  for (const char *ClientName : {"c1", "c2"}) {
    const Expr *Client = File.findClient(Ctx.symbol(ClientName));
    auto Report = VE.verifyClient(Client, Ctx.symbol(ClientName));
    for (const core::PlanVerdict &Verdict : Report.Verdicts) {
      if (Verdict.isValid()) {
        for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
          net::Interpreter I(Ctx, File.Repo, File.Registry,
                             {{Ctx.symbol(ClientName), Client, Verdict.Pi}},
                             net::InterpreterOptions{false});
          net::RunStats Stats = I.run(Seed);
          EXPECT_TRUE(Stats.AllCompleted)
              << ClientName << " " << Verdict.Pi.str(Ctx.interner());
          EXPECT_EQ(Stats.Violations, 0u);
        }
        continue;
      }
      if (Verdict.Security.Failure ==
          validity::PlanFailureKind::PolicyViolation) {
        bool SawTrouble = false;
        for (uint64_t Seed = 1; Seed <= 16 && !SawTrouble; ++Seed) {
          net::Interpreter I(Ctx, File.Repo, File.Registry,
                             {{Ctx.symbol(ClientName), Client, Verdict.Pi}},
                             net::InterpreterOptions{false});
          net::RunStats Stats = I.run(Seed);
          SawTrouble = Stats.Violations > 0;
        }
        EXPECT_TRUE(SawTrouble)
            << ClientName << " " << Verdict.Pi.str(Ctx.interner());
      }
    }
  }
}

TEST_F(IntegrationTest, LambdaPipelineProducesTheSameVerdicts) {
  // Write C1 in the λ calculus, extract its effect, and verify it against
  // the parsed repository: same unique valid plan.
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  lambda::LambdaContext L(Ctx);
  DiagnosticEngine Diags;
  lambda::EffectSystem ES(L, Diags);

  const lambda::Term *C1 = L.request(
      1, Ex.Phi1,
      L.seq(L.send("Req"), L.branch({L.arm("CoBo", L.send("Pay")),
                                     L.arm("NoAv", L.unit())})));
  auto Effect = ES.inferServiceEffect(C1);
  ASSERT_TRUE(Effect.has_value());
  EXPECT_TRUE(bisimilar(Ctx, *Effect, Ex.C1));

  core::Verifier V(Ctx, File.Repo, File.Registry);
  auto Report = V.verifyClient(*Effect, Ctx.symbol("c1"));
  auto Valid = Report.validPlans();
  ASSERT_EQ(Valid.size(), 1u);
  EXPECT_EQ(Valid[0], Ex.pi1());
}

TEST_F(IntegrationTest, Figure3InterleavingReproduced) {
  // Drive the two-client network along the Fig. 3 schedule and compare
  // the recorded history of component 1 with the paper's.
  core::HotelExample Ex = core::makeHotelExample(Ctx);
  net::Interpreter I(Ctx, File.Repo, File.Registry,
                     {{Ex.LC1, Ex.C1, Ex.pi1()},
                      {Ex.LC2, Ex.C2, Ex.pi2Valid()}},
                     net::InterpreterOptions{});

  auto Apply = [&](size_t Component, net::Step::Kind K,
                   std::string_view DescPart = {}) {
    for (const net::Step &S : I.steps()) {
      if (S.Component != Component || S.K != K || S.Blocked || S.PlanGap)
        continue;
      if (!DescPart.empty() && S.Desc.find(DescPart) == std::string::npos)
        continue;
      return I.apply(S);
    }
    ADD_FAILURE() << "no step of the requested shape";
    return false;
  };

  using K = net::Step::Kind;
  ASSERT_TRUE(Apply(0, K::Open));          // open_1,phi1 — C1 with broker.
  ASSERT_TRUE(Apply(0, K::Synch, "Req"));  // request accepted.
  ASSERT_TRUE(Apply(0, K::Open));          // broker opens 3 with s3.
  ASSERT_TRUE(Apply(1, K::Open));          // C2 starts concurrently.
  ASSERT_TRUE(Apply(0, K::Access, "sgn")); // s3 signs,
  ASSERT_TRUE(Apply(0, K::Access, "p"));   // publishes price,
  ASSERT_TRUE(Apply(0, K::Access, "ta"));  // and rating.
  ASSERT_TRUE(Apply(0, K::Synch, "IdC"));  // client data forwarded.
  ASSERT_TRUE(Apply(0, K::Synch));         // hotel answers (Bok or UnA).
  ASSERT_TRUE(Apply(0, K::Close));         // close_3.
  ASSERT_TRUE(Apply(0, K::Synch));         // answer forwarded to C1.
  // If the broker confirmed (CoBo), C1 still pays before closing.
  while (true) {
    bool Paid = false;
    for (const net::Step &S : I.steps())
      if (S.Component == 0 && S.K == K::Synch) {
        ASSERT_TRUE(I.apply(S));
        Paid = true;
        break;
      }
    if (!Paid)
      break;
  }
  ASSERT_TRUE(Apply(0, K::Close)); // close_1, frames ϕ1 closed.

  EXPECT_TRUE(I.isDone(0));
  const policy::History &Eta = I.history(0);
  EXPECT_TRUE(Eta.isBalanced());
  std::string H = Eta.str(Ctx.interner());
  // ⌊ϕ1 · sgn(s3) · p(90) · ta(100) · ⌋ϕ1 — exactly Fig. 3's history
  // (singleton set parameters render without braces).
  EXPECT_EQ(H, "[phi(s1,45,100) alpha_sgn(s3) alpha_p(90) alpha_ta(100) "
               "phi(s1,45,100)]");
}

TEST_F(IntegrationTest, ReportsRenderWithoutCrashing) {
  core::Verifier V(Ctx, File.Repo, File.Registry);
  for (const char *Name : {"c1", "c2"}) {
    auto Report =
        V.verifyClient(File.findClient(Ctx.symbol(Name)), Ctx.symbol(Name));
    std::ostringstream OS;
    core::printReport(Report, Ctx, OS);
    EXPECT_FALSE(OS.str().empty());
  }
}

} // namespace
