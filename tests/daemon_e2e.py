#!/usr/bin/env python3
"""End-to-end test for the resident verification daemon (susd).

Drives the shipped binaries the way a user would and asserts the PR's
headline contracts:

  1. Warm restart equivalence: a one-shot verify that loads a snapshot
     must print byte-for-byte the output of the run that saved it.
  2. Version/corruption rejection: a snapshot with a bumped format
     version, a truncated tail, or a flipped bit must be rejected with
     exit 2 and a one-line diagnostic (never a partial load or a crash).
  3. Concurrent serving: N threads x M `susc --connect` verify requests
     against one daemon must all return identical bytes and exit codes,
     and a shutdown request must stop the daemon with exit 0.

Usage: daemon_e2e.py <susd> <susc> <file.sus>
"""

import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

# The version field sits after the 8-byte magic (DESIGN.md #13).
VERSION_OFFSET = 8


def run(argv, **kwargs):
    return subprocess.run(argv, capture_output=True, text=False,
                          timeout=120, **kwargs)


def fail(msg):
    print("daemon_e2e: FAIL:", msg)
    sys.exit(1)


def expect_rejected(susd, sus_file, snap_path, what, needle=b""):
    r = run([susd, "--snapshot", snap_path, "--warm", sus_file])
    if r.returncode != 2:
        fail("%s: expected exit 2, got %d\nstderr: %s"
             % (what, r.returncode, r.stderr.decode(errors="replace")))
    if b"snapshot rejected" not in r.stderr:
        fail("%s: no rejection diagnostic\nstderr: %s"
             % (what, r.stderr.decode(errors="replace")))
    if needle and needle not in r.stderr:
        fail("%s: diagnostic does not mention %r\nstderr: %s"
             % (what, needle, r.stderr.decode(errors="replace")))


def check_snapshot_restart(susd, sus_file, tmp):
    snap = os.path.join(tmp, "cache.snap")
    cold = run([susd, "--warm", "--save-snapshot", snap, sus_file])
    if cold.returncode != 0:
        fail("cold warm-up failed: %s" % cold.stderr.decode(errors="replace"))
    warm = run([susd, "--snapshot", snap, "--warm", sus_file])
    if warm.returncode != 0:
        fail("warm restart failed: %s" % warm.stderr.decode(errors="replace"))
    if warm.stdout != cold.stdout:
        fail("warm restart output differs from the cold run\n"
             "cold %d bytes, warm %d bytes" %
             (len(cold.stdout), len(warm.stdout)))
    if b"snapshot loaded" not in warm.stderr:
        fail("warm restart did not report the loaded snapshot")
    print("daemon_e2e: warm restart is byte-identical")

    blob = open(snap, "rb").read()

    bumped = bytearray(blob)
    bumped[VERSION_OFFSET] += 1
    bumped_path = os.path.join(tmp, "bumped.snap")
    open(bumped_path, "wb").write(bytes(bumped))
    expect_rejected(susd, sus_file, bumped_path,
                    "version-bumped snapshot", b"version")

    trunc_path = os.path.join(tmp, "trunc.snap")
    open(trunc_path, "wb").write(blob[:len(blob) // 2])
    expect_rejected(susd, sus_file, trunc_path, "truncated snapshot")

    flipped = bytearray(blob)
    flipped[len(flipped) * 2 // 3] ^= 0x04
    flip_path = os.path.join(tmp, "flip.snap")
    open(flip_path, "wb").write(bytes(flipped))
    expect_rejected(susd, sus_file, flip_path, "bit-flipped snapshot")
    print("daemon_e2e: bad snapshots rejected with exit 2")


def wait_for_socket(path, proc, deadline_s=30):
    end = time.time() + deadline_s
    while time.time() < end:
        if proc.poll() is not None:
            fail("susd exited early with code %d" % proc.returncode)
        if os.path.exists(path):
            try:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.connect(path)
                s.close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    fail("susd socket %s never came up" % path)


def check_daemon(susd, susc, sus_file, tmp):
    sock = os.path.join(tmp, "susd.sock")
    daemon = subprocess.Popen(
        [susd, "--listen", sock, "--workers", "4", sus_file],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    try:
        wait_for_socket(sock, daemon)

        results = []
        lock = threading.Lock()

        def client(n):
            for _ in range(3):
                r = run([susc, "--connect", sock, "verify"])
                with lock:
                    results.append((r.returncode, r.stdout))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if len(results) != 12:
            fail("expected 12 client runs, got %d" % len(results))
        codes = {c for c, _ in results}
        bodies = {b for _, b in results}
        if codes != {0}:
            fail("verify exit codes disagree: %s" % codes)
        if len(bodies) != 1:
            fail("concurrent verify outputs are not identical")
        if b"== client" not in next(iter(bodies)):
            fail("verify output looks wrong: %r" % next(iter(bodies))[:80])
        print("daemon_e2e: 12 concurrent verifies, identical bytes")

        stats = run([susc, "--connect", sock, "stats"])
        if stats.returncode != 0 or b"cache:" not in stats.stdout:
            fail("stats verb failed: %s" % stats.stdout.decode(errors="replace"))

        bad = run([susc, "--connect", sock, "frobnicate"])
        if bad.returncode != 2:
            fail("unknown verb: expected exit 2, got %d" % bad.returncode)

        down = run([susc, "--connect", sock, "shutdown"])
        if down.returncode != 0:
            fail("shutdown request failed with %d" % down.returncode)
        code = daemon.wait(timeout=30)
        if code != 0:
            fail("daemon exit code %d after shutdown" % code)
        print("daemon_e2e: clean shutdown")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def main():
    if len(sys.argv) != 4:
        fail("usage: daemon_e2e.py <susd> <susc> <file.sus>")
    susd, susc, sus_file = sys.argv[1:]
    # AF_UNIX sun_path is ~108 bytes; keep the socket under /tmp, not the
    # (potentially deep) build tree.
    with tempfile.TemporaryDirectory(prefix="susd-e2e-", dir="/tmp") as tmp:
        check_snapshot_restart(susd, sus_file, tmp)
        check_daemon(susd, susc, sus_file, tmp)
    print("daemon_e2e: all checks passed")


if __name__ == "__main__":
    main()
