//===- tests/DaemonTest.cpp - susd protocol, budgets and engine -----------===//
///
/// \file
/// Unit tests for the resident daemon below the socket layer: the
/// percent-escaped wire protocol (framing survives arbitrary bytes, the
/// line cap and malformed frames are clean errors), the per-tenant
/// budget table (spec parsing, min-combination, governor arming), and
/// the Engine itself driven in-process through the same handle() path a
/// connection uses — verify/lint/churn verdicts, snapshot save/load,
/// per-request deadlines and the shutdown handshake.
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"
#include "daemon/Protocol.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace sus;
using namespace sus::daemon;

namespace {

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, EscapeRoundTripsArbitraryBytes) {
  std::string Nasty;
  for (int C = 0; C < 256; ++C)
    Nasty.push_back(static_cast<char>(C));
  std::string Escaped = escape(Nasty);
  // The framing bytes never appear raw in an escaped token.
  EXPECT_EQ(Escaped.find(' '), std::string::npos);
  EXPECT_EQ(Escaped.find('='), std::string::npos);
  EXPECT_EQ(Escaped.find('\n'), std::string::npos);
  std::string Back;
  ASSERT_TRUE(unescape(Escaped, Back));
  EXPECT_EQ(Back, Nasty);
}

TEST(Protocol, UnescapeRejectsMalformedEscapes) {
  std::string Out;
  EXPECT_FALSE(unescape("%", Out));   // Truncated.
  EXPECT_FALSE(unescape("%4", Out));  // Truncated.
  EXPECT_FALSE(unescape("%zz", Out)); // Non-hex.
}

TEST(Protocol, RequestRoundTripsWithHostileParams) {
  Request R;
  R.Verb = "verify";
  R.Params["client"] = "c 1=weird\nname%";
  R.Params["plan"] = "pi1";
  Request Back;
  std::string Err;
  ASSERT_TRUE(parseRequest(formatRequest(R), Back, Err)) << Err;
  EXPECT_EQ(Back.Verb, "verify");
  EXPECT_EQ(Back.Params, R.Params);
}

TEST(Protocol, ParseRequestRejectsBadFrames) {
  Request R;
  std::string Err;
  EXPECT_FALSE(parseRequest("", R, Err));
  EXPECT_FALSE(parseRequest("sus/1", R, Err));         // No verb.
  EXPECT_FALSE(parseRequest("sus/2 ping", R, Err));    // Wrong proto.
  EXPECT_FALSE(parseRequest("ping", R, Err));          // Missing prefix.
  EXPECT_FALSE(parseRequest("sus/1 ping a=1 a=2", R, Err)); // Dup key.
  EXPECT_FALSE(parseRequest("sus/1 ping noequals", R, Err));
  EXPECT_FALSE(
      parseRequest("sus/1 ping " + std::string(MaxRequestLine, 'a'), R, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(Protocol, ResponseHeaderRoundTrips) {
  Response Resp;
  Resp.Exit = 3;
  Resp.Body = "twelve bytes";
  int Exit = 0;
  uint64_t Len = 0;
  std::string Err;
  // formatResponseHeader renders the bare line; the wire adds the '\n'.
  std::string Header = formatResponseHeader(Resp);
  ASSERT_TRUE(parseResponseHeader(Header, Exit, Len, Err)) << Err;
  EXPECT_EQ(Exit, 3);
  EXPECT_EQ(Len, Resp.Body.size());
  EXPECT_FALSE(parseResponseHeader("sus/1 0 5 extra", Exit, Len, Err));
  EXPECT_FALSE(parseResponseHeader("sus/1 999 5", Exit, Len, Err));
  EXPECT_FALSE(parseResponseHeader("sus/1 0", Exit, Len, Err));
}

//===----------------------------------------------------------------------===//
// Tenant budgets
//===----------------------------------------------------------------------===//

TEST(TenantBudgets, SpecsParseAndDefaultApplies) {
  TenantBudgetTable T;
  std::string Err;
  ASSERT_TRUE(T.addSpec("web:100::", Err)) << Err;
  ASSERT_TRUE(T.addSpec("batch::50000:4096", Err)) << Err;
  ASSERT_TRUE(T.addSpec("*:5000::", Err)) << Err;
  EXPECT_EQ(T.lookup("web").DeadlineMs, 100u);
  EXPECT_EQ(T.lookup("web").MaxProductStates, TenantBudget::NoLimit);
  EXPECT_EQ(T.lookup("batch").MaxProductStates, 50000u);
  EXPECT_EQ(T.lookup("batch").MaxSubsetStates, 4096u);
  // Unlisted tenants inherit the "*" default.
  EXPECT_EQ(T.lookup("someone-else").DeadlineMs, 5000u);
}

TEST(TenantBudgets, MalformedSpecsAreDiagnosed) {
  TenantBudgetTable T;
  std::string Err;
  EXPECT_FALSE(T.addSpec("", Err));
  EXPECT_FALSE(T.addSpec("web:100", Err));        // Too few fields.
  EXPECT_FALSE(T.addSpec("web:100:::extra", Err)); // Too many fields.
  EXPECT_FALSE(T.addSpec("web:abc::", Err));      // Non-numeric.
  EXPECT_FALSE(T.addSpec(":100::", Err));         // Empty name.
  ASSERT_TRUE(T.addSpec("web:100::", Err)) << Err;
  EXPECT_FALSE(T.addSpec("web:200::", Err));      // Duplicate tenant.
  EXPECT_FALSE(Err.empty());
}

TEST(TenantBudgets, OverridesCombineByMinimum) {
  TenantBudget Tenant;
  Tenant.DeadlineMs = 100;
  TenantBudget Override;
  Override.DeadlineMs = 10000; // Cannot raise the tenant cap...
  Override.MaxProductStates = 7;
  TenantBudget Combined = Tenant.min(Override);
  EXPECT_EQ(Combined.DeadlineMs, 100u);
  EXPECT_EQ(Combined.MaxProductStates, 7u); // ...but can add a new one.
  EXPECT_EQ(Combined.MaxSubsetStates, TenantBudget::NoLimit);

  Override.DeadlineMs = 5; // A tighter request wins.
  EXPECT_EQ(Tenant.min(Override).DeadlineMs, 5u);
}

TEST(TenantBudgets, GovernorOnlyArmsWhenLimited) {
  TenantBudgetTable T;
  std::string Err;
  ASSERT_TRUE(T.addSpec("web:100::", Err)) << Err;
  EXPECT_EQ(T.governorFor("anyone", TenantBudget()), nullptr);
  EXPECT_NE(T.governorFor("web", TenantBudget()), nullptr);
  TenantBudget Override;
  Override.MaxProductStates = 9;
  EXPECT_NE(T.governorFor("anyone", Override), nullptr);
}

//===----------------------------------------------------------------------===//
// The engine, driven in-process
//===----------------------------------------------------------------------===//

std::string exampleSource(const char *Name) {
  std::ifstream In(std::string(SUS_EXAMPLES_DIR "/") + Name);
  EXPECT_TRUE(In.good());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

std::unique_ptr<Engine> makeEngine(const char *Name = "hotel.sus",
                                   EngineOptions Opts = {}) {
  std::string Err;
  std::unique_ptr<Engine> E =
      Engine::create(exampleSource(Name), Name, std::move(Opts), Err);
  EXPECT_NE(E, nullptr) << Err;
  return E;
}

Request req(const char *Verb) {
  Request R;
  R.Verb = Verb;
  return R;
}

TEST(Engine, RejectsUnparsableSource) {
  std::string Err;
  EXPECT_EQ(Engine::create("service { nope", "bad.sus", {}, Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(Engine, PingStatsAndUnknownVerbs) {
  auto E = makeEngine();
  EXPECT_EQ(E->handle(req("ping")).Exit, 0);
  EXPECT_EQ(E->handle(req("ping")).Body, "pong\n");
  Response Stats = E->handle(req("stats"));
  EXPECT_EQ(Stats.Exit, 0);
  EXPECT_NE(Stats.Body.find("compliance"), std::string::npos);
  Response Bad = E->handle(req("frobnicate"));
  EXPECT_EQ(Bad.Exit, 2);
  EXPECT_NE(Bad.Body.find("frobnicate"), std::string::npos);
}

TEST(Engine, VerifyMatchesWarmAllByteForByte) {
  auto E = makeEngine();
  std::ostringstream Warm;
  int WarmCode = E->warmAll(Warm);
  Response R = E->handle(req("verify"));
  EXPECT_EQ(R.Exit, WarmCode);
  EXPECT_EQ(R.Body, Warm.str());

  Request One = req("verify");
  One.Params["client"] = "c1";
  Response ROne = E->handle(One);
  EXPECT_EQ(ROne.Exit, 0);
  EXPECT_NE(ROne.Body.find("client c1"), std::string::npos);

  Request Missing = req("verify");
  Missing.Params["client"] = "nobody";
  EXPECT_EQ(E->handle(Missing).Exit, 2);
}

TEST(Engine, LintRunsCleanOnTheExamples) {
  auto E = makeEngine();
  Response R = E->handle(req("lint"));
  EXPECT_EQ(R.Exit, 0) << R.Body;
}

TEST(Engine, ChurnRepairsDeterministically) {
  auto E = makeEngine();
  Request Churn = req("churn");
  Churn.Params["rounds"] = "2";
  Churn.Params["seed"] = "7";
  Response A = E->handle(Churn);
  EXPECT_EQ(A.Exit, 0) << A.Body;
  EXPECT_NE(A.Body.find("repairs"), std::string::npos);
}

TEST(Engine, PerRequestDeadlineTripsToInconclusive) {
  auto E = makeEngine("marketplace.sus");
  Request R = req("verify");
  R.Params["deadline_ms"] = "0"; // Trips at the first governor poll.
  EXPECT_EQ(E->handle(R).Exit, 3);
  // And the armed governor did not leak into the next request.
  EXPECT_EQ(E->handle(req("verify")).Exit, 0);
}

TEST(Engine, SnapshotBytesRoundTripThroughAFreshEngine) {
  auto E = makeEngine();
  std::ostringstream Cold;
  E->warmAll(Cold);
  core::SnapshotStats SaveStats;
  std::string Bytes = E->saveSnapshotBytes(&SaveStats);
  EXPECT_EQ(SaveStats.Bytes, Bytes.size());
  EXPECT_GT(SaveStats.Compliances, 0u);

  auto Fresh = makeEngine();
  std::string Err;
  core::SnapshotStats LoadStats;
  ASSERT_TRUE(Fresh->loadSnapshotBytes(Bytes, Err, &LoadStats)) << Err;
  EXPECT_EQ(LoadStats.Compliances, SaveStats.Compliances);
  std::ostringstream Warm;
  EXPECT_EQ(Fresh->warmAll(Warm), 0);
  EXPECT_EQ(Warm.str(), Cold.str());

  // Corrupt bytes are rejected with a diagnostic, never absorbed.
  std::string Bad = Bytes;
  Bad[Bytes.size() / 2] = static_cast<char>(Bad[Bytes.size() / 2] ^ 0x10);
  auto Victim = makeEngine();
  EXPECT_FALSE(Victim->loadSnapshotBytes(Bad, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(Engine, ShutdownVerbFlipsTheFlag) {
  auto E = makeEngine();
  EXPECT_FALSE(E->shutdownRequested());
  Response R = E->handle(req("shutdown"));
  EXPECT_EQ(R.Exit, 0);
  EXPECT_TRUE(E->shutdownRequested());
}

} // namespace
