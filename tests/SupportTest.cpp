//===- tests/SupportTest.cpp - support library unit tests -----------------===//

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/DotWriter.h"
#include "support/HashUtil.h"
#include "support/Metrics.h"
#include "support/StringInterner.h"
#include "support/Trace.h"
#include "support/Value.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

using namespace sus;

namespace {

TEST(StringInternerTest, InternReturnsSameSymbolForEqualStrings) {
  StringInterner In;
  Symbol A = In.intern("hello");
  Symbol B = In.intern("hello");
  EXPECT_EQ(A, B);
  EXPECT_EQ(In.size(), 1u);
}

TEST(StringInternerTest, DistinctStringsGetDistinctSymbols) {
  StringInterner In;
  Symbol A = In.intern("a");
  Symbol B = In.intern("b");
  EXPECT_NE(A, B);
  EXPECT_EQ(In.text(A), "a");
  EXPECT_EQ(In.text(B), "b");
}

TEST(StringInternerTest, LookupFindsOnlyInternedStrings) {
  StringInterner In;
  Symbol A = In.intern("present");
  EXPECT_EQ(In.lookup("present"), A);
  EXPECT_FALSE(In.lookup("absent").isValid());
}

TEST(StringInternerTest, ViewsStayValidAcrossManyInsertions) {
  StringInterner In;
  Symbol First = In.intern("first-string");
  std::string_view View = In.text(First);
  for (int I = 0; I < 10000; ++I)
    In.intern("filler" + std::to_string(I));
  EXPECT_EQ(View, "first-string");
  EXPECT_EQ(In.lookup("first-string"), First);
}

TEST(StringInternerTest, DefaultSymbolIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
}

TEST(ArenaTest, CreateRunsConstructorsAndDestructors) {
  static int Live = 0;
  struct Tracked {
    Tracked() { ++Live; }
    ~Tracked() { --Live; }
    int Payload[8] = {0};
  };
  {
    Arena A;
    for (int I = 0; I < 100; ++I)
      A.create<Tracked>();
    EXPECT_EQ(Live, 100);
  }
  EXPECT_EQ(Live, 0);
}

TEST(ArenaTest, AllocationsAreAligned) {
  Arena A;
  for (int I = 0; I < 50; ++I) {
    void *P = A.allocate(3, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 8, 0u);
  }
  void *Q = A.allocate(1, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Q) % 64, 0u);
}

TEST(ArenaTest, LargeAllocationsGetTheirOwnSlab) {
  Arena A;
  void *P = A.allocate(1 << 20, 16);
  ASSERT_NE(P, nullptr);
  EXPECT_GE(A.bytesReserved(), size_t(1) << 20);
}

struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Base::Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->K == Base::Kind::B; }
};

TEST(CastingTest, IsaAndDynCastDispatchOnKind) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(cast<DerivedA>(B), &A);
}

TEST(CastingTest, PresentVariantsTolerateNull) {
  Base *Null = nullptr;
  EXPECT_FALSE(isa_and_present<DerivedA>(Null));
  EXPECT_EQ(dyn_cast_if_present<DerivedA>(Null), nullptr);
}

TEST(DiagnosticsTest, CountsErrorsOnly) {
  DiagnosticEngine D;
  D.warning(SourceLoc{1, 2, {}}, "something odd");
  EXPECT_FALSE(D.hasErrors());
  D.error("bad things");
  D.error(SourceLoc{3, 4, {}}, "more bad things");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 2u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(DiagnosticsTest, PrintIncludesLocationWhenKnown) {
  DiagnosticEngine D;
  D.error(SourceLoc{7, 9, {}}, "unexpected token");
  std::ostringstream OS;
  D.print(OS);
  EXPECT_EQ(OS.str(), "7:9: error: unexpected token\n");
}

TEST(DiagnosticsTest, PrintSortsBySourceOrderAndSeverity) {
  DiagnosticEngine D;
  // Reported out of order on purpose; rendering must sort by (file,
  // line, column, severity) with a stable tie-break.
  D.warning(SourceLoc{9, 1, "b.sus"}, "late file");
  D.error(SourceLoc{5, 3, "a.sus"}, "later line");
  D.warning(SourceLoc{2, 8, "a.sus"}, "later column");
  D.error(SourceLoc{2, 4, "a.sus"}, "error after co-located warning");
  D.warning(SourceLoc{2, 4, "a.sus"}, "first");
  std::ostringstream OS;
  D.print(OS);
  EXPECT_EQ(OS.str(), "a.sus:2:4: warning: first\n"
                      "a.sus:2:4: error: error after co-located warning\n"
                      "a.sus:2:8: warning: later column\n"
                      "a.sus:5:3: error: later line\n"
                      "b.sus:9:1: warning: late file\n");
}

TEST(DiagnosticsTest, PrintDropsExactDuplicates) {
  DiagnosticEngine D;
  D.warning(SourceLoc{4, 2, "a.sus"}, "dup");
  D.warning(SourceLoc{4, 2, "a.sus"}, "dup");
  // Same location but different severity or message: NOT a duplicate.
  D.error(SourceLoc{4, 2, "a.sus"}, "dup");
  D.warning(SourceLoc{4, 2, "a.sus"}, "other");
  std::ostringstream OS;
  D.print(OS);
  EXPECT_EQ(OS.str(), "a.sus:4:2: warning: dup\n"
                      "a.sus:4:2: warning: other\n"
                      "a.sus:4:2: error: dup\n");
  // The underlying diagnostic list is untouched by rendering.
  EXPECT_EQ(D.diagnostics().size(), 4u);
}

TEST(DiagnosticsTest, PrintRendersIdAndNotes) {
  DiagnosticEngine D;
  Diagnostic &W = D.warning(SourceLoc{3, 1, "x.sus"}, "suspicious loop");
  W.ID = "sus-lint-demo";
  W.note(SourceLoc{4, 2, "x.sus"}, "loop entered here");
  std::ostringstream OS;
  D.print(OS);
  EXPECT_EQ(OS.str(), "x.sus:3:1: warning: suspicious loop [sus-lint-demo]\n"
                      "  x.sus:4:2: note: loop entered here\n");
}

TEST(DiagnosticsTest, PrintJsonEscapesAndStructures) {
  DiagnosticEngine D;
  Diagnostic &W = D.warning(SourceLoc{1, 2, "q.sus"}, "say \"hi\"\\now");
  W.ID = "sus-lint-demo";
  W.Category = "lint.test";
  W.note(SourceLoc{0, 0, "q.sus"}, "a note");
  std::ostringstream OS;
  D.print(OS, DiagFormat::Json);
  EXPECT_EQ(
      OS.str(),
      "[\n"
      "  {\"file\": \"q.sus\", \"line\": 1, \"col\": 2, "
      "\"severity\": \"warning\", \"id\": \"sus-lint-demo\", "
      "\"category\": \"lint.test\", \"message\": \"say \\\"hi\\\"\\\\now\", "
      "\"notes\": [\n"
      "    {\"file\": \"q.sus\", \"line\": 0, \"col\": 0, "
      "\"severity\": \"note\", \"id\": \"\", \"category\": \"\", "
      "\"message\": \"a note\"}\n"
      "  ]}\n"
      "]\n");
}

TEST(DiagnosticsTest, PrintJsonEmptyIsEmptyArray) {
  DiagnosticEngine D;
  std::ostringstream OS;
  D.print(OS, DiagFormat::Json);
  EXPECT_EQ(OS.str(), "[]\n");
}

TEST(DiagnosticsTest, ClearResets) {
  DiagnosticEngine D;
  D.error("x");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

TEST(DotWriterTest, EscapesQuotesAndNewlines) {
  DotWriter W("g");
  W.node("n1", "say \"hi\"\nplease");
  std::ostringstream OS;
  W.print(OS);
  EXPECT_NE(OS.str().find("say \\\"hi\\\"\\nplease"), std::string::npos);
}

TEST(DotWriterTest, RendersNodesAndEdges) {
  DotWriter W("g");
  W.node("a", "A", "shape=circle");
  W.node("b", "B");
  W.edge("a", "b", "go");
  std::ostringstream OS;
  W.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("digraph \"g\""), std::string::npos);
  EXPECT_NE(S.find("\"a\" -> \"b\" [label=\"go\"]"), std::string::npos);
  EXPECT_NE(S.find("shape=circle"), std::string::npos);
}

TEST(ValueTest, KindsCompareUnequal) {
  StringInterner In;
  Value None;
  Value I42 = Value::integer(42);
  Value Name = Value::name(In.intern("x"));
  EXPECT_NE(None, I42);
  EXPECT_NE(I42, Name);
  EXPECT_NE(None, Name);
}

TEST(ValueTest, EqualityAndHashAgree) {
  StringInterner In;
  Value A = Value::integer(7);
  Value B = Value::integer(7);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  Value C = Value::name(In.intern("n"));
  Value D = Value::name(In.intern("n"));
  EXPECT_EQ(C, D);
  EXPECT_EQ(C.hash(), D.hash());
}

TEST(ValueTest, OrderingIsTotalWithinKind) {
  Value A = Value::integer(1);
  Value B = Value::integer(2);
  EXPECT_TRUE(A < B);
  EXPECT_FALSE(B < A);
  EXPECT_FALSE(A < A);
}

TEST(ValueTest, StrRendersEachKind) {
  StringInterner In;
  EXPECT_EQ(Value().str(In), "");
  EXPECT_EQ(Value::integer(-3).str(In), "-3");
  EXPECT_EQ(Value::name(In.intern("svc")).str(In), "svc");
}

TEST(HashUtilTest, HashAllIsOrderSensitive) {
  EXPECT_NE(hashAll(1, 2), hashAll(2, 1));
  EXPECT_EQ(hashAll(1, 2), hashAll(1, 2));
}

TEST(DotWriterTest, EscapeHandlesQuotesBackslashesAndNewlines) {
  EXPECT_EQ(DotWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(DotWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(DotWriter::escape("line1\nline2"), "line1\\nline2");
  // An escaped sequence in the input gets both characters re-escaped.
  EXPECT_EQ(DotWriter::escape("\\n"), "\\\\n");
}

TEST(DotWriterTest, EscapeFoldsCarriageReturns) {
  // Raw CR and CRLF would end a DOT quoted literal mid-string just like
  // LF; both fold to the \n escape, CRLF as a single break.
  EXPECT_EQ(DotWriter::escape("a\rb"), "a\\nb");
  EXPECT_EQ(DotWriter::escape("a\r\nb"), "a\\nb");
  EXPECT_EQ(DotWriter::escape("a\r\rb"), "a\\n\\nb");
  EXPECT_EQ(DotWriter::escape("a\n\rb"), "a\\n\\nb");
}

//===----------------------------------------------------------------------===//
// Span tracing
//===----------------------------------------------------------------------===//

/// Restores a quiet tracer/registry around each test so process-wide
/// state cannot leak across cases.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    trace::disable();
    trace::reset();
  }
  void TearDown() override {
    trace::disable();
    trace::reset();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(trace::enabled());
  {
    trace::Span S("test.span", "test");
    S.count("n", 1);
  }
  EXPECT_EQ(trace::spanCount(), 0u);
  EXPECT_EQ(trace::droppedSpans(), 0u);
}

TEST_F(TraceTest, RecordsSpansWithArgs) {
  trace::enable(/*Capacity=*/16);
  {
    trace::Span S("test.tagged", "test");
    S.tag("verdict", "ok");
    S.count("items", 42);
  }
  { trace::Span S("test.plain", "test"); }
  EXPECT_EQ(trace::spanCount(), 2u);

  std::ostringstream OS;
  trace::writeChromeTrace(OS);
  std::string Json = OS.str();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"test.tagged\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"verdict\":\"ok\""), std::string::npos);
  EXPECT_NE(Json.find("\"items\":42"), std::string::npos);
}

TEST_F(TraceTest, RingKeepsTheMostRecentSpansAndCountsDrops) {
  trace::enable(/*Capacity=*/4);
  for (int I = 0; I < 7; ++I) {
    trace::Span S("test.wrap", "test");
  }
  EXPECT_EQ(trace::spanCount(), 4u);
  EXPECT_EQ(trace::droppedSpans(), 3u);
  trace::reset();
  EXPECT_EQ(trace::spanCount(), 0u);
  EXPECT_EQ(trace::droppedSpans(), 0u);
}

TEST_F(TraceTest, SpansAfterDisableAreNotRecorded) {
  trace::enable(16);
  { trace::Span S("test.kept", "test"); }
  trace::disable();
  { trace::Span S("test.lost", "test"); }
  EXPECT_EQ(trace::spanCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    metrics::disable();
    metrics::reset();
  }
  void TearDown() override {
    metrics::disable();
    metrics::reset();
  }
};

TEST_F(MetricsTest, DisabledMutationsAreNoOps) {
  metrics::Counter &C = metrics::counter("test.disabled.counter");
  metrics::Gauge &G = metrics::gauge("test.disabled.gauge");
  metrics::Histogram &H = metrics::histogram("test.disabled.hist");
  C.add(5);
  G.set(7);
  G.setMax(9);
  H.observe(3);
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
}

TEST_F(MetricsTest, CounterMergesAcrossThreads) {
  metrics::enable();
  metrics::Counter &C = metrics::counter("test.threads.counter");
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I < 1000; ++I)
        C.add();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), 4000u);
}

TEST_F(MetricsTest, GaugeSetAndHighWaterMark) {
  metrics::enable();
  metrics::Gauge &G = metrics::gauge("test.gauge");
  G.set(10);
  EXPECT_EQ(G.value(), 10);
  G.setMax(5); // Below the mark: no change.
  EXPECT_EQ(G.value(), 10);
  G.setMax(25);
  EXPECT_EQ(G.value(), 25);
}

TEST_F(MetricsTest, HistogramLog2BucketsAndEnvelope) {
  metrics::enable();
  metrics::Histogram &H = metrics::histogram("test.hist");
  H.observe(0); // bucket 0
  H.observe(1); // bucket 1: bit_width(1) == 1
  H.observe(5); // bucket 3: bit_width(5) == 3
  H.observe(7); // bucket 3
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 13u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 7u);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 0u);
  EXPECT_EQ(H.bucket(3), 2u);
}

TEST_F(MetricsTest, TimeAccountsAreAlwaysOn) {
  ASSERT_FALSE(metrics::enabled());
  metrics::TimeAccount &T = metrics::timeAccount("test.time");
  T.resetValue();
  T.add(125);
  T.add(75);
  EXPECT_EQ(T.nanos(), 200u);
  T.resetValue();
  EXPECT_EQ(T.nanos(), 0u);
}

TEST_F(MetricsTest, WriteJsonEmitsTheV1Shape) {
  metrics::enable();
  metrics::counter("test.json.counter").add(3);
  metrics::gauge("test.json.gauge").set(-4);
  metrics::histogram("test.json.hist").observe(2);
  std::ostringstream OS;
  metrics::writeJson(OS);
  std::string Json = OS.str();
  EXPECT_NE(Json.find("\"schema\": \"sus-metrics-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"test.json.counter\": 3"), std::string::npos);
  EXPECT_NE(Json.find("\"test.json.gauge\": -4"), std::string::npos);
  EXPECT_NE(Json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(Json.find("\"buckets\""), std::string::npos);
}

} // namespace
