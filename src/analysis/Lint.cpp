//===- analysis/Lint.cpp - Lint-pass framework ----------------------------===//

#include "analysis/Lint.h"

using namespace sus;
using namespace sus::analysis;

namespace sus {
namespace analysis {
// One accessor per pass file; each returns a function-local singleton so
// registration order is explicit here rather than at static-init time.
const LintPass &unreachableStatePass();
const LintPass &overlappingGuardsPass();
const LintPass &unsatisfiablePolicyPass();
const LintPass &nonmonitorablePass();
const LintPass &vacuousFramingPass();
const LintPass &doomedFramingPass();
const LintPass &deadBranchPass();
const LintPass &nonterminatingRecursionPass();
const LintPass &duplicateBranchGuardPass();
const LintPass &noCandidateServicePass();
const LintPass &deadendReadySetsPass();
} // namespace analysis
} // namespace sus

Diagnostic *LintContext::emit(std::string_view Id, std::string_view Category,
                              SourceLoc Loc, std::string Message,
                              DiagSeverity DefaultSeverity) {
  if (Options.DisabledIds.count(Id))
    return nullptr;
  DiagSeverity Severity = DefaultSeverity;
  if (Severity == DiagSeverity::Warning &&
      (Options.WarningsAsErrors || Options.ErrorIds.count(Id)))
    Severity = DiagSeverity::Error;
  Loc.File = FileName;
  Diagnostic &D = Diags.report(Severity, Loc, std::move(Message));
  D.ID = std::string(Id);
  D.Category = std::string(Category);
  ++NumFindings;
  return &D;
}

SourceLoc LintContext::declLoc(const std::map<Symbol, SourceLoc> &Locs,
                               Symbol Name) const {
  SourceLoc Loc = File.locOf(Locs, Name);
  Loc.File = FileName;
  return Loc;
}

const std::vector<const LintPass *> &sus::analysis::allLintPasses() {
  static const std::vector<const LintPass *> Passes = {
      &unreachableStatePass(),       &overlappingGuardsPass(),
      &unsatisfiablePolicyPass(),    &nonmonitorablePass(),
      &vacuousFramingPass(),         &doomedFramingPass(),
      &deadBranchPass(),             &nonterminatingRecursionPass(),
      &duplicateBranchGuardPass(),   &noCandidateServicePass(),
      &deadendReadySetsPass(),
  };
  return Passes;
}

unsigned sus::analysis::runLintPasses(LintContext &LC) {
  unsigned Before = LC.findings();
  for (const LintPass *Pass : allLintPasses()) {
    if (LC.options().DisabledIds.count(Pass->id()))
      continue;
    Pass->run(LC);
  }
  return LC.findings() - Before;
}
