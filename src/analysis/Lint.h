//===- analysis/Lint.h - Semantic lint-pass framework -----------*- C++ -*-===//
///
/// \file
/// The `susc lint` subsystem: a battery of semantic static-analysis passes
/// that run over a parsed .sus file and diagnose degenerate shapes the
/// front end accepts but the paper's machinery treats as defects —
/// unreachable policy states, framings that can never fire, requests no
/// published service can satisfy, loops that never terminate. Passes reuse
/// the verification kernels strictly read-only: linting a file never
/// changes what `susc` verification later reports.
///
/// Each pass owns one stable diagnostic ID (`sus-lint-*`). Severity is
/// configurable per ID (`-Werror`, `-Werror=ID`, `--disable=ID`), and all
/// findings flow through the shared DiagnosticEngine, so text and JSON
/// rendering come for free.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_ANALYSIS_LINT_H
#define SUS_ANALYSIS_LINT_H

#include "hist/HistContext.h"
#include "support/Diagnostics.h"
#include "syntax/FileParser.h"

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace sus {
namespace analysis {

/// Severity and budget configuration for a lint run.
struct LintOptions {
  /// Promote every lint warning to an error (-Werror).
  bool WarningsAsErrors = false;

  /// Promote specific IDs to errors (-Werror=sus-lint-...).
  std::set<std::string, std::less<>> ErrorIds;

  /// Suppress specific IDs entirely (--disable=sus-lint-...).
  std::set<std::string, std::less<>> DisabledIds;

  /// Budget for the doomed-framing pass: candidate plans examined per
  /// client and states explored per plan. Linting stays cheap; the full
  /// verifier remains the authority on plan validity.
  size_t MaxPlansPerClient = 64;
  size_t MaxStatesPerPlan = 1 << 14;

  /// Budget for termination analyses (reachable expressions explored).
  size_t MaxDeriveStates = 1 << 12;
};

/// Everything a pass sees: the parsed file, its context, and the emitter.
/// Passes must treat the file and context as read-only program state —
/// interning new expressions for scratch work (projections, derivatives)
/// is fine, mutating the SusFile is not.
class LintContext {
public:
  LintContext(hist::HistContext &Ctx, const syntax::SusFile &File,
              std::string_view FileName, const LintOptions &Options,
              DiagnosticEngine &Diags)
      : Ctx(Ctx), File(File), FileName(FileName), Options(Options),
        Diags(Diags) {}

  hist::HistContext &context() const { return Ctx; }
  const syntax::SusFile &file() const { return File; }
  std::string_view fileName() const { return FileName; }
  const LintOptions &options() const { return Options; }

  /// Emits one finding for pass \p Id at \p Loc. Applies the severity
  /// configuration: returns null when the ID is disabled (the caller skips
  /// any notes), otherwise the reported diagnostic, promoted to an error
  /// when configured. \p DefaultSeverity must be Warning or Error.
  Diagnostic *emit(std::string_view Id, std::string_view Category,
                   SourceLoc Loc, std::string Message,
                   DiagSeverity DefaultSeverity = DiagSeverity::Warning);

  /// Findings emitted so far (disabled IDs excluded, notes excluded).
  unsigned findings() const { return NumFindings; }

  /// Fallback location: the declaration site of \p Name in \p Locs, with
  /// the lint file name attached even when the declaration is unknown.
  SourceLoc declLoc(const std::map<Symbol, SourceLoc> &Locs,
                    Symbol Name) const;

private:
  hist::HistContext &Ctx;
  const syntax::SusFile &File;
  std::string_view FileName;
  const LintOptions &Options;
  DiagnosticEngine &Diags;
  unsigned NumFindings = 0;
};

/// One semantic analysis pass. Implementations are stateless singletons.
class LintPass {
public:
  virtual ~LintPass() = default;

  /// The stable diagnostic ID this pass emits ("sus-lint-...").
  virtual std::string_view id() const = 0;

  /// Category for grouping ("lint.policy", "lint.framing", ...).
  virtual std::string_view category() const = 0;

  /// One-line human description (for --list-passes and DESIGN.md).
  virtual std::string_view description() const = 0;

  virtual void run(LintContext &LC) const = 0;
};

/// Every registered pass, in the fixed registration order the passes run
/// in (policy hygiene, then framing, then history, then plan checks).
const std::vector<const LintPass *> &allLintPasses();

/// Runs every enabled pass over \p LC; returns the number of findings.
/// A pass whose ID is disabled is skipped entirely.
unsigned runLintPasses(LintContext &LC);

} // namespace analysis
} // namespace sus

#endif // SUS_ANALYSIS_LINT_H
