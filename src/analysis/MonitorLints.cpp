//===- analysis/MonitorLints.cpp - Runtime-monitorability analyses --------===//
///
/// One pass over the policies a file actually frames:
///
///  - sus-lint-nonmonitorable: the policy's automaton has an edge leaving
///    an offending state for a non-offending one. Usage automata declare
///    violations per *prefix*, and both the per-policy monitors and the
///    fused-DFA engine treat offending states as absorbing (a violation,
///    once observed, cannot be revoked by later events). An escape edge
///    therefore describes a liveness-shaped, revocable verdict that no
///    runtime monitor can enforce — only the policy's safety closure is
///    actually checked, which is usually not what the author meant.
///
/// The pass reuses the registry read-only and warns once per framed
/// policy shape, at its declaration.
///
//===----------------------------------------------------------------------===//

#include "analysis/ExprWalk.h"
#include "analysis/Lint.h"

#include "policy/UsageAutomaton.h"

#include <set>

using namespace sus;
using namespace sus::analysis;

namespace {

/// The escape edge that makes \p Shape non-monitorable, if any.
const policy::UsageEdge *findEscapeEdge(const policy::UsageAutomaton &Shape) {
  for (const policy::UsageEdge &E : Shape.edges())
    if (Shape.isOffending(E.From) && !Shape.isOffending(E.To))
      return &E;
  return nullptr;
}

class NonmonitorablePass : public LintPass {
public:
  std::string_view id() const override { return "sus-lint-nonmonitorable"; }
  std::string_view category() const override { return "lint.monitor"; }
  std::string_view description() const override {
    return "framed policies whose offending states can be escaped, which "
           "a runtime monitor cannot enforce";
  }

  void run(LintContext &LC) const override {
    const StringInterner &In = LC.context().interner();
    const syntax::SusFile &File = LC.file();

    // Every policy name framed (or requested under) anywhere in the file.
    // Unframed policies are not monitored, so escape edges there are inert.
    std::set<Symbol> Framed;
    for (const BehaviorRef &B : allBehaviors(File))
      walkExpr(B.Body, [&](const hist::Expr *E) {
        if (const auto *F = dyn_cast<hist::FramingExpr>(E))
          Framed.insert(F->policy().Name);
        else if (const auto *R = dyn_cast<hist::RequestExpr>(E))
          Framed.insert(R->policy().Name);
        else if (const auto *FO = dyn_cast<hist::FrameOpenExpr>(E))
          Framed.insert(FO->policy().Name);
        else if (const auto *FC = dyn_cast<hist::FrameCloseExpr>(E))
          Framed.insert(FC->policy().Name);
      });

    for (Symbol Name : Framed) {
      if (!Name.isValid())
        continue; // The trivial policy ∅ has no automaton.
      const policy::UsageAutomaton *Shape = File.Registry.find(Name);
      if (!Shape)
        continue; // Unknown policies are the front end's diagnostic.
      const policy::UsageEdge *Escape = findEscapeEdge(*Shape);
      if (!Escape)
        continue;
      LC.emit(id(), category(), LC.declLoc(File.PolicyLocs, Name),
              "policy '" + std::string(In.text(Name)) +
                  "' is not runtime-monitorable: edge from offending "
                  "state '" + Shape->stateLabel(Escape->From) + "' to '" +
                  Shape->stateLabel(Escape->To) +
                  "' revokes a violation, but monitors treat offending "
                  "states as absorbing and enforce only the safety "
                  "closure of the policy");
    }
  }
};

} // namespace

namespace sus {
namespace analysis {

const LintPass &nonmonitorablePass() {
  static const NonmonitorablePass P;
  return P;
}

} // namespace analysis
} // namespace sus
