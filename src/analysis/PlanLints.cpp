//===- analysis/PlanLints.cpp - Plan and session checks -------------------===//
///
/// Two passes over the orchestration layer:
///
///  - sus-lint-no-candidate-service: a request site no published service
///    can serve — every compliance check Hc! ⊢ Hs! against the repository
///    fails, so no plan can ever bind the request;
///  - sus-lint-deadend-ready-sets: declared `plan` blocks whose bindings
///    cannot work — unknown clients or locations, requests nothing opens,
///    and bindings where some nonempty client ready set cannot synchronize
///    with some service ready set (Def. 4's condition fails at the very
///    first step, so the pair can get stuck immediately).
///
//===----------------------------------------------------------------------===//

#include "analysis/ExprWalk.h"
#include "analysis/Lint.h"

#include "contract/Compliance.h"
#include "contract/Project.h"
#include "contract/ReadySets.h"
#include "plan/RequestExtract.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

using namespace sus;
using namespace sus::analysis;

namespace {

std::string renderReadySet(const contract::ReadySet &S,
                           const StringInterner &In) {
  std::string Out = "{";
  for (const hist::CommAction &A : S) {
    if (Out.size() > 1)
      Out += ", ";
    Out += A.str(In);
  }
  return Out + "}";
}

class NoCandidateServicePass : public LintPass {
public:
  std::string_view id() const override {
    return "sus-lint-no-candidate-service";
  }
  std::string_view category() const override { return "lint.plan"; }
  std::string_view description() const override {
    return "requests no published service is compliant with";
  }

  void run(LintContext &LC) const override {
    hist::HistContext &Ctx = LC.context();
    const StringInterner &In = Ctx.interner();
    const syntax::SusFile &File = LC.file();

    // Compliance depends only on the two behaviours; memoize across
    // request sites that share a body (hash-consing makes this common).
    std::map<std::pair<const hist::Expr *, const hist::Expr *>, bool> Memo;
    auto Compliant = [&](const hist::Expr *Body, const hist::Expr *Service) {
      auto Key = std::make_pair(Body, Service);
      auto It = Memo.find(Key);
      if (It != Memo.end())
        return It->second;
      bool OK =
          static_cast<bool>(contract::checkServiceCompliance(Ctx, Body,
                                                             Service));
      Memo.emplace(Key, OK);
      return OK;
    };

    for (const BehaviorRef &B : allBehaviors(File)) {
      SourceLoc Loc = LC.declLoc(
          B.IsService ? File.ServiceLocs : File.ClientLocs, B.Name);
      for (const plan::RequestSite &Site :
           plan::extractRequests(B.Body)) {
        bool AnyCandidate = false;
        for (const auto &[L, Service] : File.Repo.services())
          if (Compliant(Site.body(), Service)) {
            AnyCandidate = true;
            break;
          }
        if (AnyCandidate)
          continue;
        LC.emit(id(), category(), Loc,
                "request " + std::to_string(Site.id()) + " in '" +
                    std::string(In.text(B.Name)) +
                    "' has no candidate service: none of the " +
                    std::to_string(File.Repo.size()) +
                    " published services is compliant with it");
      }
    }
  }
};

class DeadendReadySetsPass : public LintPass {
public:
  std::string_view id() const override {
    return "sus-lint-deadend-ready-sets";
  }
  std::string_view category() const override { return "lint.plan"; }
  std::string_view description() const override {
    return "declared plans with broken or immediately-stuck bindings";
  }

  void run(LintContext &LC) const override {
    hist::HistContext &Ctx = LC.context();
    const StringInterner &In = Ctx.interner();
    const syntax::SusFile &File = LC.file();

    // Every request site any behaviour opens, by identifier: a plan may
    // bind requests of the client *and* of the services it pulls in.
    std::map<hist::RequestId, std::vector<plan::RequestSite>> Sites;
    for (const BehaviorRef &B : allBehaviors(File))
      for (const plan::RequestSite &Site : plan::extractRequests(B.Body))
        Sites[Site.id()].push_back(Site);

    for (const syntax::PlanDecl &Decl : File.Plans) {
      SourceLoc Loc = Decl.Loc;
      std::string PlanName(In.text(Decl.Name));
      if (!File.findClient(Decl.Client)) {
        LC.emit(id(), category(), Loc,
                "plan '" + PlanName + "' is for unknown client '" +
                    std::string(In.text(Decl.Client)) + "'");
        continue;
      }
      for (const auto &[R, L] : Decl.Pi.bindings()) {
        const hist::Expr *Service = File.Repo.find(L);
        if (!Service) {
          LC.emit(id(), category(), Loc,
                  "plan '" + PlanName + "' binds request " +
                      std::to_string(R) + " to '" +
                      std::string(In.text(L)) +
                      "', which is not a published service");
          continue;
        }
        auto SiteIt = Sites.find(R);
        if (SiteIt == Sites.end()) {
          LC.emit(id(), category(), Loc,
                  "plan '" + PlanName + "' binds request " +
                      std::to_string(R) +
                      ", but no declared behaviour opens it");
          continue;
        }
        const hist::Expr *Cs = contract::project(Ctx, Service);
        if (!contract::isContract(Cs))
          continue;
        std::vector<contract::ReadySet> ServerSets =
            contract::readySets(Cs);
        for (const plan::RequestSite &Site : SiteIt->second) {
          const hist::Expr *Cc = contract::project(Ctx, Site.body());
          if (!contract::isContract(Cc))
            continue;
          bool Reported = false;
          for (const contract::ReadySet &C : contract::readySets(Cc)) {
            if (C.empty() || Reported)
              continue;
            for (const contract::ReadySet &S : ServerSets) {
              if (contract::canSynchronize(C, S))
                continue;
              Diagnostic *D = LC.emit(
                  id(), category(), Loc,
                  "plan '" + PlanName + "' binds request " +
                      std::to_string(R) + " to '" +
                      std::string(In.text(L)) +
                      "', but they can get stuck at the first step");
              if (D)
                D->note(SourceLoc{0, 0, LC.fileName()},
                        "the request may offer " + renderReadySet(C, In) +
                            " while '" + std::string(In.text(L)) +
                            "' offers " + renderReadySet(S, In) +
                            ": no synchronization is possible");
              Reported = true;
              break;
            }
            if (Reported)
              break;
          }
          if (Reported)
            break;
        }
      }
    }
  }
};

} // namespace

namespace sus {
namespace analysis {

const LintPass &noCandidateServicePass() {
  static const NoCandidateServicePass P;
  return P;
}

const LintPass &deadendReadySetsPass() {
  static const DeadendReadySetsPass P;
  return P;
}

} // namespace analysis
} // namespace sus
