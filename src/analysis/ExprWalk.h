//===- analysis/ExprWalk.h - History-expression DAG walking -----*- C++ -*-===//
///
/// \file
/// A small pre-order walker over the hash-consed history-expression DAG.
/// Every distinct node is visited exactly once (expressions are interned,
/// so shared subterms appear once), in deterministic left-to-right order.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_ANALYSIS_EXPRWALK_H
#define SUS_ANALYSIS_EXPRWALK_H

#include "hist/Expr.h"
#include "support/Casting.h"
#include "syntax/FileParser.h"

#include <unordered_set>
#include <vector>

namespace sus {
namespace analysis {

/// Calls \p Visit on \p Root and every distinct sub-expression, pre-order,
/// left-to-right. \p Visit takes `const hist::Expr *`.
template <typename Fn> void walkExpr(const hist::Expr *Root, Fn &&Visit) {
  std::vector<const hist::Expr *> Stack{Root};
  std::unordered_set<const hist::Expr *> Seen;
  while (!Stack.empty()) {
    const hist::Expr *E = Stack.back();
    Stack.pop_back();
    if (!E || !Seen.insert(E).second)
      continue;
    Visit(E);

    // Push children in reverse so they pop in syntactic order.
    using namespace hist;
    switch (E->kind()) {
    case ExprKind::Empty:
    case ExprKind::Var:
    case ExprKind::Event:
    case ExprKind::CloseMark:
    case ExprKind::FrameOpen:
    case ExprKind::FrameClose:
      break;
    case ExprKind::Mu:
      Stack.push_back(cast<MuExpr>(E)->body());
      break;
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      Stack.push_back(S->tail());
      Stack.push_back(S->head());
      break;
    }
    case ExprKind::ExtChoice:
    case ExprKind::IntChoice: {
      const auto &Branches = cast<ChoiceExpr>(E)->branches();
      for (auto It = Branches.rbegin(); It != Branches.rend(); ++It)
        Stack.push_back(It->Body);
      break;
    }
    case ExprKind::Request:
      Stack.push_back(cast<RequestExpr>(E)->body());
      break;
    case ExprKind::Framing:
      Stack.push_back(cast<FramingExpr>(E)->body());
      break;
    }
  }
}

/// Every declared behaviour of a file — services first (repository order),
/// then clients (declaration order) — with its name and decl-loc map.
struct BehaviorRef {
  Symbol Name;
  const hist::Expr *Body;
  bool IsService;
};

inline std::vector<BehaviorRef> allBehaviors(const syntax::SusFile &File) {
  std::vector<BehaviorRef> Out;
  for (const auto &[Loc, Service] : File.Repo.services())
    Out.push_back({Loc, Service, true});
  for (const auto &[Name, Client] : File.Clients)
    Out.push_back({Name, Client, false});
  return Out;
}

} // namespace analysis
} // namespace sus

#endif // SUS_ANALYSIS_EXPRWALK_H
