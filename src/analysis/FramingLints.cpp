//===- analysis/FramingLints.cpp - Security-framing analyses --------------===//
///
/// Two passes over the policy framings a file actually uses:
///
///  - sus-lint-vacuous-framing: the instantiated policy cannot be violated
///    by ANY sequence of the events occurring anywhere in this file — the
///    framing compiles to an empty violation language over the file's
///    event universe, so enforcing it monitors nothing;
///  - sus-lint-doomed-framing: every candidate plan of a client fails the
///    static validity check with a policy violation — the client can never
///    be orchestrated securely against the published repository.
///
/// Both reuse the verification kernels read-only: compilePolicy/isEmpty
/// for vacuity, enumeratePlans/checkPlanValidity for doom. Budgets keep
/// the lint cheap; exceeding one makes the pass stay silent rather than
/// guess.
///
//===----------------------------------------------------------------------===//

#include "analysis/ExprWalk.h"
#include "analysis/Lint.h"

#include "automata/Ops.h"
#include "plan/PlanEnumerator.h"
#include "policy/Compile.h"
#include "validity/StaticValidity.h"

#include <map>
#include <string>
#include <vector>

using namespace sus;
using namespace sus::analysis;

namespace {

/// The file-wide event universe: every concrete event any declared
/// behaviour can fire. Framed bodies are subterms of behaviours, so this
/// over-approximates what can reach any framing.
std::vector<hist::Event> fileEventUniverse(const syntax::SusFile &File) {
  std::vector<const hist::Expr *> Bodies;
  for (const BehaviorRef &B : allBehaviors(File))
    Bodies.push_back(B.Body);
  return policy::eventUniverse(Bodies);
}

class VacuousFramingPass : public LintPass {
public:
  std::string_view id() const override { return "sus-lint-vacuous-framing"; }
  std::string_view category() const override { return "lint.framing"; }
  std::string_view description() const override {
    return "framings of policies no event in the file can ever violate";
  }

  void run(LintContext &LC) const override {
    const StringInterner &In = LC.context().interner();
    const syntax::SusFile &File = LC.file();
    std::vector<hist::Event> Universe = fileEventUniverse(File);

    // Vacuity depends only on the instantiated policy and the (shared)
    // universe, so memoize per reference.
    std::map<hist::PolicyRef, bool> Vacuous;
    auto IsVacuous = [&](const hist::PolicyRef &Ref) -> bool {
      auto It = Vacuous.find(Ref);
      if (It != Vacuous.end())
        return It->second;
      bool Result = false;
      if (std::optional<policy::PolicyInstance> Instance =
              File.Registry.instantiate(Ref, In)) {
        policy::CompiledPolicy CP =
            policy::compilePolicy(*Instance, Universe);
        Result = automata::isEmpty(CP.Automaton);
      }
      Vacuous.emplace(Ref, Result);
      return Result;
    };

    for (const BehaviorRef &B : allBehaviors(File)) {
      SourceLoc Loc = LC.declLoc(
          B.IsService ? File.ServiceLocs : File.ClientLocs, B.Name);
      walkExpr(B.Body, [&](const hist::Expr *E) {
        const hist::PolicyRef *Ref = nullptr;
        if (const auto *F = dyn_cast<hist::FramingExpr>(E))
          Ref = &F->policy();
        else if (const auto *R = dyn_cast<hist::RequestExpr>(E))
          Ref = &R->policy();
        if (!Ref || Ref->isTrivial() || !IsVacuous(*Ref))
          return;
        LC.emit(id(), category(), Loc,
                "framing of policy '" + Ref->str(In) + "' in '" +
                    std::string(In.text(B.Name)) +
                    "' is vacuous: no sequence of events occurring in "
                    "this file can violate it");
      });
    }
  }
};

class DoomedFramingPass : public LintPass {
public:
  std::string_view id() const override { return "sus-lint-doomed-framing"; }
  std::string_view category() const override { return "lint.framing"; }
  std::string_view description() const override {
    return "clients whose every candidate plan violates a policy";
  }

  void run(LintContext &LC) const override {
    const StringInterner &In = LC.context().interner();
    const syntax::SusFile &File = LC.file();
    const LintOptions &Opts = LC.options();

    for (const auto &[Name, Client] : File.Clients) {
      plan::EnumeratorOptions EnumOpts;
      EnumOpts.MaxPlans = Opts.MaxPlansPerClient;
      plan::EnumerationResult Enum =
          plan::enumeratePlans(Client, File.Repo, EnumOpts);
      // Inconclusive when the candidate space was truncated, and out of
      // scope when there are no complete plans at all (that is the
      // no-candidate-service pass's report, not a framing problem).
      if (Enum.Truncated || Enum.Plans.empty())
        continue;

      bool AllViolate = true;
      std::optional<validity::StaticValidityResult> Witness;
      for (const plan::Plan &P : Enum.Plans) {
        validity::StaticValidityOptions VOpts;
        VOpts.MaxStates = Opts.MaxStatesPerPlan;
        validity::StaticValidityResult R = validity::checkPlanValidity(
            LC.context(), Client, Name, P, File.Repo, File.Registry, VOpts);
        if (R.Valid ||
            R.Failure != validity::PlanFailureKind::PolicyViolation) {
          // A valid plan, or a failure we cannot blame on the policies
          // (unknown service, exhausted budget, ...): not doomed.
          AllViolate = false;
          break;
        }
        if (!Witness)
          Witness = std::move(R);
      }
      if (!AllViolate || !Witness)
        continue;

      Diagnostic *D = LC.emit(
          id(), category(), LC.declLoc(File.ClientLocs, Name),
          "client '" + std::string(In.text(Name)) +
              "' is statically doomed: all " +
              std::to_string(Enum.Plans.size()) +
              " candidate plans violate a policy");
      if (!D)
        continue;
      std::string Trace;
      for (const std::string &Step : Witness->Trace) {
        if (!Trace.empty())
          Trace += " . ";
        Trace += Step;
      }
      std::string Policy =
          Witness->Policy ? Witness->Policy->str(In) : std::string("?");
      D->note(SourceLoc{0, 0, LC.fileName()},
              "for example, policy '" + Policy + "' is violated after: " +
                  (Trace.empty() ? "<empty trace>" : Trace));
    }
  }
};

} // namespace

namespace sus {
namespace analysis {

const LintPass &vacuousFramingPass() {
  static const VacuousFramingPass P;
  return P;
}

const LintPass &doomedFramingPass() {
  static const DoomedFramingPass P;
  return P;
}

} // namespace analysis
} // namespace sus
