//===- analysis/HistLints.cpp - History-expression hygiene passes ---------===//
///
/// Three passes over the declared behaviours themselves:
///
///  - sus-lint-dead-branch: in H·H′, H can never terminate, so H′ is
///    syntactically present but semantically unreachable;
///  - sus-lint-nonterminating-recursion: a closed µh.H from which ε is
///    unreachable — the loop offers no exit at all (services that *can*
///    stop but usually loop are fine; this flags loops with no way out);
///  - sus-lint-duplicate-branch-guard: a choice with two branches guarded
///    by the same action, making the branch taken ambiguous.
///
/// Termination is decided by exploring the one-step derivatives
/// (hist::derive) up to a budget; hash-consing keeps the reachable set
/// finite for well-formed expressions. Subterms with free recursion
/// variables are skipped — a free `h` has no transitions, which would
/// read as spurious non-termination.
///
//===----------------------------------------------------------------------===//

#include "analysis/ExprWalk.h"
#include "analysis/Lint.h"

#include "hist/Derive.h"
#include "hist/Printer.h"
#include "hist/WellFormed.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace sus;
using namespace sus::analysis;

namespace {

enum class Termination { Yes, No, Unknown };

/// Bounded reachability of ε from \p Root under the one-step semantics.
/// \p Root must be closed. Returns Unknown when the budget runs out.
Termination canTerminate(hist::HistContext &Ctx, const hist::Expr *Root,
                         size_t MaxStates,
                         std::unordered_map<const hist::Expr *, Termination>
                             &Memo) {
  auto Cached = Memo.find(Root);
  if (Cached != Memo.end())
    return Cached->second;

  std::unordered_set<const hist::Expr *> Seen{Root};
  std::vector<const hist::Expr *> Work{Root};
  Termination Result = Termination::No;
  while (!Work.empty()) {
    const hist::Expr *E = Work.back();
    Work.pop_back();
    if (hist::isTerminated(E)) {
      Result = Termination::Yes;
      break;
    }
    if (Seen.size() > MaxStates) {
      Result = Termination::Unknown;
      break;
    }
    for (const hist::Transition &T : hist::derive(Ctx, E))
      if (Seen.insert(T.Target).second)
        Work.push_back(T.Target);
  }
  Memo.emplace(Root, Result);
  return Result;
}

/// Renders \p E for a message, eliding long expressions.
std::string renderShort(const hist::HistContext &Ctx, const hist::Expr *E) {
  std::string S = hist::print(Ctx, E);
  if (S.size() > 40)
    S = S.substr(0, 37) + "...";
  return S;
}

class DeadBranchPass : public LintPass {
public:
  std::string_view id() const override { return "sus-lint-dead-branch"; }
  std::string_view category() const override { return "lint.hist"; }
  std::string_view description() const override {
    return "sequential tails unreachable because the head never terminates";
  }

  void run(LintContext &LC) const override {
    hist::HistContext &Ctx = LC.context();
    const StringInterner &In = Ctx.interner();
    std::unordered_map<const hist::Expr *, Termination> Memo;
    for (const BehaviorRef &B : allBehaviors(LC.file())) {
      SourceLoc Loc = LC.declLoc(
          B.IsService ? LC.file().ServiceLocs : LC.file().ClientLocs, B.Name);
      walkExpr(B.Body, [&](const hist::Expr *E) {
        const auto *S = dyn_cast<hist::SeqExpr>(E);
        if (!S)
          return;
        // A head with free recursion variables cannot be analysed on its
        // own (free variables are stuck, not looping): skip it.
        if (!hist::isWellFormed(Ctx, S->head()))
          return;
        if (canTerminate(Ctx, S->head(), LC.options().MaxDeriveStates,
                         Memo) != Termination::No)
          return;
        Diagnostic *D = LC.emit(
            id(), category(), Loc,
            "in '" + std::string(In.text(B.Name)) + "', the behaviour after "
                "';' is dead: '" + renderShort(Ctx, S->head()) +
                "' never terminates");
        if (D)
          D->note(SourceLoc{0, 0, LC.fileName()},
                  "unreachable: '" + renderShort(Ctx, S->tail()) + "'");
      });
    }
  }
};

class NonterminatingRecursionPass : public LintPass {
public:
  std::string_view id() const override {
    return "sus-lint-nonterminating-recursion";
  }
  std::string_view category() const override { return "lint.hist"; }
  std::string_view description() const override {
    return "recursions with no exit: termination is unreachable";
  }

  void run(LintContext &LC) const override {
    hist::HistContext &Ctx = LC.context();
    const StringInterner &In = Ctx.interner();
    std::unordered_map<const hist::Expr *, Termination> Memo;
    for (const BehaviorRef &B : allBehaviors(LC.file())) {
      SourceLoc Loc = LC.declLoc(
          B.IsService ? LC.file().ServiceLocs : LC.file().ClientLocs, B.Name);
      walkExpr(B.Body, [&](const hist::Expr *E) {
        const auto *Mu = dyn_cast<hist::MuExpr>(E);
        if (!Mu || !hist::isWellFormed(Ctx, Mu))
          return;
        if (canTerminate(Ctx, Mu, LC.options().MaxDeriveStates, Memo) !=
            Termination::No)
          return;
        LC.emit(id(), category(), Loc,
                "in '" + std::string(In.text(B.Name)) + "', recursion 'mu " +
                    std::string(In.text(Mu->var())) +
                    "' never terminates: no branch leads out of the loop");
      });
    }
  }
};

class DuplicateBranchGuardPass : public LintPass {
public:
  std::string_view id() const override {
    return "sus-lint-duplicate-branch-guard";
  }
  std::string_view category() const override { return "lint.hist"; }
  std::string_view description() const override {
    return "choices with two branches guarded by the same action";
  }

  void run(LintContext &LC) const override {
    hist::HistContext &Ctx = LC.context();
    const StringInterner &In = Ctx.interner();
    for (const BehaviorRef &B : allBehaviors(LC.file())) {
      SourceLoc Loc = LC.declLoc(
          B.IsService ? LC.file().ServiceLocs : LC.file().ClientLocs, B.Name);
      walkExpr(B.Body, [&](const hist::Expr *E) {
        const auto *C = dyn_cast<hist::ChoiceExpr>(E);
        if (!C)
          return;
        const auto &Branches = C->branches();
        for (size_t I = 0; I + 1 < Branches.size(); ++I) {
          // Branches are kept in canonical order, so equal guards are
          // adjacent; report each run of duplicates once.
          if (Branches[I].Guard != Branches[I + 1].Guard)
            continue;
          if (I > 0 && Branches[I - 1].Guard == Branches[I].Guard)
            continue;
          LC.emit(id(), category(), Loc,
                  "in '" + std::string(In.text(B.Name)) +
                      "', a choice has multiple branches guarded by '" +
                      Branches[I].Guard.str(In) +
                      "': the branch taken is ambiguous");
        }
      });
    }
  }
};

} // namespace

namespace sus {
namespace analysis {

const LintPass &deadBranchPass() {
  static const DeadBranchPass P;
  return P;
}

const LintPass &nonterminatingRecursionPass() {
  static const NonterminatingRecursionPass P;
  return P;
}

const LintPass &duplicateBranchGuardPass() {
  static const DuplicateBranchGuardPass P;
  return P;
}

} // namespace analysis
} // namespace sus
