//===- analysis/PolicyLints.cpp - Usage-automaton hygiene passes ----------===//
///
/// Three passes over every declared policy shape:
///
///  - sus-lint-unreachable-state: states no event sequence can enter;
///  - sus-lint-overlapping-guards: same-state, same-event transitions to
///    different targets whose guards are not provably disjoint (the
///    automaton silently becomes nondeterministic);
///  - sus-lint-unsatisfiable-policy: no reachable offending state, so the
///    policy can never flag a violation and every framing of it is inert.
///
/// Reachability treats every edge as traversable (guards ignored), which
/// over-approximates the truth: a state we call reachable might not be,
/// but a state we flag as unreachable definitely is. Lints stay
/// false-positive-free at the price of missing guard-dead edges.
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "policy/UsageAutomaton.h"

#include <algorithm>
#include <limits>
#include <vector>

using namespace sus;
using namespace sus::analysis;
using namespace sus::policy;

//===----------------------------------------------------------------------===//
// Guard disjointness
//===----------------------------------------------------------------------===//

namespace {

/// The (clamped) integer interval an integer-comparison atom admits.
struct IntInterval {
  int64_t Lo = std::numeric_limits<int64_t>::min();
  int64_t Hi = std::numeric_limits<int64_t>::max();

  bool empty() const { return Lo > Hi; }
};

bool intervalOf(CmpOp Op, int64_t C, IntInterval &Out) {
  constexpr int64_t Min = std::numeric_limits<int64_t>::min();
  constexpr int64_t Max = std::numeric_limits<int64_t>::max();
  switch (Op) {
  case CmpOp::LT:
    if (C == Min)
      Out = {Max, Min}; // empty
    else
      Out = {Min, C - 1};
    return true;
  case CmpOp::LE:
    Out = {Min, C};
    return true;
  case CmpOp::GT:
    if (C == Max)
      Out = {Max, Min}; // empty
    else
      Out = {C + 1, Max};
    return true;
  case CmpOp::GE:
    Out = {C, Max};
    return true;
  case CmpOp::EQ:
    Out = {C, C};
    return true;
  case CmpOp::NE:
    return false; // Not an interval.
  }
  return false;
}

/// True when `arg Op1 P` and `arg Op2 P` cannot both hold for any arg and
/// any single value of the shared parameter P.
bool cmpOpsContradict(CmpOp A, CmpOp B) {
  auto Is = [&](CmpOp X, CmpOp Y) {
    return (A == X && B == Y) || (A == Y && B == X);
  };
  return Is(CmpOp::LT, CmpOp::GE) || Is(CmpOp::LE, CmpOp::GT) ||
         Is(CmpOp::LT, CmpOp::GT) || Is(CmpOp::LT, CmpOp::EQ) ||
         Is(CmpOp::GT, CmpOp::EQ) || Is(CmpOp::EQ, CmpOp::NE);
}

/// True when some value satisfies `arg Op C` with C drawn from \p Vs.
bool someValueSatisfies(CmpOp Op, const Value &C, const std::vector<Value> &Vs) {
  for (const Value &V : Vs) {
    switch (Op) {
    case CmpOp::EQ:
      if (V == C)
        return true;
      break;
    case CmpOp::NE:
      if (V != C)
        return true;
      break;
    default:
      // Ordered comparisons are integer-only; a type mismatch evaluates
      // the atom to false, so non-integers cannot satisfy them.
      if (V.isInt() && C.isInt() && evalCmp(Op, V.asInt(), C.asInt()))
        return true;
      break;
    }
  }
  return false;
}

bool isSubset(const std::vector<Value> &A, const std::vector<Value> &B) {
  // Constant sets are kept sorted and duplicate-free by the parser, but a
  // linear probe keeps this correct regardless.
  return std::all_of(A.begin(), A.end(), [&](const Value &V) {
    return std::find(B.begin(), B.end(), V) != B.end();
  });
}

bool intersects(const std::vector<Value> &A, const std::vector<Value> &B) {
  return std::any_of(A.begin(), A.end(), [&](const Value &V) {
    return std::find(B.begin(), B.end(), V) != B.end();
  });
}

/// True when atoms \p A and \p B can be *proved* mutually exclusive: no
/// event argument satisfies both, whatever the actual policy parameters.
/// Sound but incomplete — "false" means "could not prove", not "overlap".
bool atomsContradict(const GuardAtom &A, const GuardAtom &B) {
  using K = GuardAtom::Kind;
  // Normalize so A.K <= B.K; every rule below assumes that order.
  if (static_cast<int>(A.K) > static_cast<int>(B.K))
    return atomsContradict(B, A);

  switch (A.K) {
  case K::True:
    return false;
  case K::InParam:
    // arg in P vs arg not in P: contradictory for the same parameter.
    return B.K == K::NotInParam && A.ParamIndex == B.ParamIndex;
  case K::NotInParam:
    return false;
  case K::CmpParam:
    // arg Op1 P vs arg Op2 P over the same scalar parameter.
    return B.K == K::CmpParam && A.ParamIndex == B.ParamIndex &&
           cmpOpsContradict(A.Op, B.Op);
  case K::CmpConst: {
    if (B.K == K::CmpConst) {
      const Value &CA = A.Constants.empty() ? Value() : A.Constants.front();
      const Value &CB = B.Constants.empty() ? Value() : B.Constants.front();
      if (CA.isInt() && CB.isInt()) {
        IntInterval IA, IB;
        if (intervalOf(A.Op, CA.asInt(), IA) &&
            intervalOf(B.Op, CB.asInt(), IB))
          return IA.empty() || IB.empty() || IA.Lo > IB.Hi || IB.Lo > IA.Hi;
        // One side is NE: contradictory only against EQ on the same value.
        if (A.Op == CmpOp::NE && B.Op == CmpOp::EQ)
          return CA == CB;
        if (B.Op == CmpOp::NE && A.Op == CmpOp::EQ)
          return CA == CB;
        return false;
      }
      // Name constants support only equality logic.
      if (A.Op == CmpOp::EQ && B.Op == CmpOp::EQ)
        return CA != CB;
      if ((A.Op == CmpOp::EQ && B.Op == CmpOp::NE) ||
          (A.Op == CmpOp::NE && B.Op == CmpOp::EQ))
        return CA == CB;
      return false;
    }
    if (B.K == K::InConst)
      return !someValueSatisfies(A.Op, A.Constants.empty() ? Value()
                                                           : A.Constants.front(),
                                 B.Constants);
    return false;
  }
  case K::InConst:
    if (B.K == K::InConst)
      return !intersects(A.Constants, B.Constants);
    if (B.K == K::NotInConst)
      return isSubset(A.Constants, B.Constants);
    return false;
  case K::NotInConst:
    return false;
  }
  return false;
}

/// True when guards \p A and \p B are provably disjoint: some atom of one
/// contradicts some atom of the other, so no event satisfies both.
bool guardsDisjoint(const Guard &A, const Guard &B) {
  for (const GuardAtom &AA : A.atoms())
    for (const GuardAtom &BA : B.atoms())
      if (atomsContradict(AA, BA))
        return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Shared reachability
//===----------------------------------------------------------------------===//

/// Guard-agnostic forward reachability from the start state. Implicit
/// self-loops never change the state, so only explicit edges matter.
std::vector<bool> reachableStates(const UsageAutomaton &Shape) {
  std::vector<bool> Seen(Shape.numStates(), false);
  std::vector<UStateId> Work;
  if (Shape.start() < Shape.numStates()) {
    Seen[Shape.start()] = true;
    Work.push_back(Shape.start());
  }
  while (!Work.empty()) {
    UStateId S = Work.back();
    Work.pop_back();
    for (const UsageEdge &E : Shape.edges())
      if (E.From == S && E.To < Seen.size() && !Seen[E.To]) {
        Seen[E.To] = true;
        Work.push_back(E.To);
      }
  }
  return Seen;
}

/// Iterates every declared policy shape in declaration-site order.
template <typename Fn> void forEachPolicy(LintContext &LC, Fn &&Visit) {
  for (const auto &[Name, Loc] : LC.file().PolicyLocs)
    if (const UsageAutomaton *Shape = LC.file().Registry.find(Name))
      Visit(Name, *Shape);
}

//===----------------------------------------------------------------------===//
// Passes
//===----------------------------------------------------------------------===//

class UnreachableStatePass : public LintPass {
public:
  std::string_view id() const override { return "sus-lint-unreachable-state"; }
  std::string_view category() const override { return "lint.policy"; }
  std::string_view description() const override {
    return "policy states that no event sequence can enter";
  }

  void run(LintContext &LC) const override {
    const StringInterner &In = LC.context().interner();
    forEachPolicy(LC, [&](Symbol Name, const UsageAutomaton &Shape) {
      std::vector<bool> Seen = reachableStates(Shape);
      for (UStateId S = 0; S < Shape.numStates(); ++S) {
        if (Seen[S])
          continue;
        LC.emit(id(), category(),
                LC.declLoc(LC.file().PolicyLocs, Name),
                "state '" + Shape.stateLabel(S) + "' of policy '" +
                    std::string(In.text(Name)) +
                    "' is unreachable from the start state");
      }
    });
  }
};

class OverlappingGuardsPass : public LintPass {
public:
  std::string_view id() const override { return "sus-lint-overlapping-guards"; }
  std::string_view category() const override { return "lint.policy"; }
  std::string_view description() const override {
    return "same-event transitions whose guards are not provably disjoint";
  }

  void run(LintContext &LC) const override {
    const StringInterner &In = LC.context().interner();
    forEachPolicy(LC, [&](Symbol Name, const UsageAutomaton &Shape) {
      std::vector<Symbol> ParamNames;
      for (const PolicyParam &P : Shape.params())
        ParamNames.push_back(P.Name);
      const std::vector<UsageEdge> &Edges = Shape.edges();
      for (size_t I = 0; I < Edges.size(); ++I) {
        for (size_t J = I + 1; J < Edges.size(); ++J) {
          const UsageEdge &A = Edges[I], &B = Edges[J];
          if (A.From != B.From || A.To == B.To)
            continue;
          // A wildcard matches every event, so it overlaps any co-located
          // edge; two named edges only overlap on the same event name.
          if (!A.Wildcard && !B.Wildcard) {
            if (A.EventName != B.EventName)
              continue;
            if (guardsDisjoint(A.G, B.G))
              continue;
          }
          std::string Event = A.Wildcard
                                  ? (B.Wildcard ? std::string("*")
                                                : std::string(In.text(B.EventName)))
                                  : std::string(In.text(A.EventName));
          Diagnostic *D = LC.emit(
              id(), category(), LC.declLoc(LC.file().PolicyLocs, Name),
              "policy '" + std::string(In.text(Name)) +
                  "': transitions from state '" + Shape.stateLabel(A.From) +
                  "' on event '" + Event +
                  "' overlap: the automaton becomes nondeterministic");
          if (!D)
            continue;
          auto Render = [&](const UsageEdge &E) {
            std::string G = E.Wildcard ? std::string("*")
                                       : E.G.str(In, ParamNames);
            if (G.empty())
              G = "true";
            return G;
          };
          D->note(SourceLoc{0, 0, LC.fileName()},
                  "guard '" + Render(A) + "' leads to state '" +
                      Shape.stateLabel(A.To) + "'");
          D->note(SourceLoc{0, 0, LC.fileName()},
                  "guard '" + Render(B) + "' leads to state '" +
                      Shape.stateLabel(B.To) + "'");
        }
      }
    });
  }
};

class UnsatisfiablePolicyPass : public LintPass {
public:
  std::string_view id() const override {
    return "sus-lint-unsatisfiable-policy";
  }
  std::string_view category() const override { return "lint.policy"; }
  std::string_view description() const override {
    return "policies with no reachable offending state (never violated)";
  }

  void run(LintContext &LC) const override {
    const StringInterner &In = LC.context().interner();
    forEachPolicy(LC, [&](Symbol Name, const UsageAutomaton &Shape) {
      std::vector<bool> Seen = reachableStates(Shape);
      for (UStateId S = 0; S < Shape.numStates(); ++S)
        if (Seen[S] && Shape.isOffending(S))
          return;
      LC.emit(id(), category(), LC.declLoc(LC.file().PolicyLocs, Name),
              "policy '" + std::string(In.text(Name)) +
                  "' has no reachable offending state: it can never be "
                  "violated, so enforcing it is pointless");
    });
  }
};

} // namespace

namespace sus {
namespace analysis {

const LintPass &unreachableStatePass() {
  static const UnreachableStatePass P;
  return P;
}

const LintPass &overlappingGuardsPass() {
  static const OverlappingGuardsPass P;
  return P;
}

const LintPass &unsatisfiablePolicyPass() {
  static const UnsatisfiablePolicyPass P;
  return P;
}

} // namespace analysis
} // namespace sus
