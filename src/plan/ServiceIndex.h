//===- plan/ServiceIndex.h - Indexed candidate selection --------*- C++ -*-===//
///
/// \file
/// An inverted index over the repository that answers "which published
/// services could possibly comply with this request body?" in time
/// proportional to the answer, not to the repository.
///
/// Layout: every service's projection is summarized once (initial ready
/// sets, syntactic alphabet; contract::ContractSummary) and each action a
/// occurring in one of its initial ready sets registers its location under
/// bucket[ā]. A request body with smallest non-empty initial ready set C₀
/// then looks up ∪_{c ∈ C₀} bucket[c]: Def. 4 clause (1) forces every
/// compliant service to offer a dual of some c ∈ C₀ in each of its initial
/// ready sets, so the union is a superset of the compliant services
/// (soundness argument in DESIGN.md §10). Survivors are cut further with
/// contract::prescreenCompliance before the caller pays for the full
/// product. Services (or bodies) whose projection leaves the contract
/// fragment are never screened — they are always candidates.
///
/// Candidate lists are sorted by location, which is exactly the order
/// Repository::services() iterates in — an indexed enumeration therefore
/// visits surviving candidates in the same order a full scan would, and
/// emits bit-for-bit identical plan sets whenever its screens only drop
/// services a compliance filter would also drop.
///
/// The index is incrementally maintainable: apply(RepositoryDelta) patches
/// only the buckets the touched services contribute to.
///
/// Thread safety: candidates() may summarize new request bodies through
/// the HistContext, which is single-threaded — call it from the context's
/// owning thread only (the enumerator does; the parallel verifier fans out
/// *after* enumeration). Counters and memo tables are still mutex-guarded
/// so concurrent read-only users of a warm index stay safe.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_PLAN_SERVICEINDEX_H
#define SUS_PLAN_SERVICEINDEX_H

#include "contract/Prescreen.h"
#include "plan/Plan.h"
#include "plan/RepositoryDelta.h"
#include "support/Sync.h"

#include <map>
#include <set>
#include <vector>

namespace sus {
namespace plan {

/// Observable index effectiveness counters (monotone per index).
struct IndexStats {
  size_t Lookups = 0;          ///< candidates() calls.
  size_t Hits = 0;             ///< ... served from the per-body memo.
  size_t Candidates = 0;       ///< Locations returned, summed.
  size_t AlphabetRejects = 0;  ///< Bucket survivors cut by the alphabet screen.
  size_t FirstStepRejects = 0; ///< ... cut by the first-step screen.
  size_t Rebuilds = 0;         ///< Full builds (1) + per-service updates.

  size_t misses() const { return Lookups - Hits; }
};

/// The inverted candidate index. Build once per repository, then keep it
/// current with apply() as the repository churns.
class ServiceIndex {
public:
  ServiceIndex(hist::HistContext &Ctx, const Repository &Repo);

  /// One indexed service with its (expensive-to-compute) summary, the
  /// unit of index persistence (serialized by core/Snapshot).
  struct SnapshotEntry {
    Loc Location;
    const hist::Expr *Service = nullptr;
    contract::ContractSummary Summary;
  };

  /// Warm build: like the plain constructor, but a repository entry whose
  /// (location, service) matches one of \p Warm reuses its summary
  /// instead of re-summarizing — loading a snapshot of a 10k-service
  /// repository skips 10k projection+ready-set computations. Entries not
  /// matching the live repository are ignored; unmatched live services
  /// are summarized fresh, so a stale snapshot degrades to a cold build,
  /// never to a wrong index.
  ServiceIndex(hist::HistContext &Ctx, const Repository &Repo,
               const std::vector<SnapshotEntry> &Warm);

  /// Every indexed (location, service, summary), ordered by location.
  std::vector<SnapshotEntry> snapshotEntries() const;

  /// The candidate locations for \p RequestBody: a superset of the
  /// locations whose service complies with it, sorted by location. The
  /// result is memoized per (hash-consed) body; churn invalidates the
  /// memo, never the summaries (those are keyed on immutable exprs).
  std::vector<Loc> candidates(const hist::Expr *RequestBody) const;

  /// Patches the index for one batch of (already applied) repository
  /// churn and drops the candidate-list memo.
  void apply(const RepositoryDelta &Delta);

  /// Published locations currently indexed.
  size_t size() const;

  IndexStats stats() const;

private:
  struct Entry {
    const hist::Expr *Service = nullptr;
    contract::ContractSummary Summary;
  };

  /// Registers/unregisters ℓ's bucket contributions.
  void insertLocked(Loc Location, const hist::Expr *Service) SUS_REQUIRES(M);
  void removeLocked(Loc Location) SUS_REQUIRES(M);

  /// insertLocked with a pre-computed summary (the warm-start path).
  void installLocked(Loc Location, const hist::Expr *Service,
                     contract::ContractSummary Summary) SUS_REQUIRES(M);

  /// Single-threaded by contract (see the thread-safety note above); the
  /// lock does not cover calls into it.
  hist::HistContext &Ctx;
  /// Leaf lock over everything below; nothing else is acquired under it.
  mutable Mutex M;
  mutable IndexStats Stats SUS_GUARDED_BY(M);

  /// bucket[ā] = locations offering action a in some initial ready set.
  std::map<hist::CommAction, std::set<Loc>> Buckets SUS_GUARDED_BY(M);
  /// Locations whose projection is not screenable: always candidates.
  std::set<Loc> Unscreened SUS_GUARDED_BY(M);
  /// Per-location reverse map, for incremental removal.
  std::map<Loc, Entry> Entries SUS_GUARDED_BY(M);
  /// Request-body summaries (immutable: keyed on hash-consed exprs).
  mutable std::map<const hist::Expr *, contract::ContractSummary>
      Bodies SUS_GUARDED_BY(M);
  /// Memoized candidate lists; invalidated wholesale by apply().
  mutable std::map<const hist::Expr *, std::vector<Loc>>
      Memo SUS_GUARDED_BY(M);
};

} // namespace plan
} // namespace sus

#endif // SUS_PLAN_SERVICEINDEX_H
