//===- plan/PlanEnumerator.h - Candidate plan enumeration -------*- C++ -*-===//
///
/// \file
/// Enumerates the candidate plans for a client over a repository: every
/// request of the client is bound to a published location, and requests are
/// chased *transitively* — binding r[ℓ] adds ℓ's own requests to the
/// worklist (the paper's broker opens request 3 on behalf of the client's
/// request 1). A filter hook allows early pruning (e.g. discard bindings
/// whose contracts are not compliant) before the exponential blow-up.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_PLAN_PLANENUMERATOR_H
#define SUS_PLAN_PLANENUMERATOR_H

#include "plan/Plan.h"
#include "plan/RequestExtract.h"
#include "support/ResourceGovernor.h"

#include <functional>
#include <optional>
#include <vector>

namespace sus {
namespace plan {

/// Tuning knobs for enumeration.
struct EnumeratorOptions {
  /// Stop after this many complete plans.
  size_t MaxPlans = 1 << 16;

  /// Optional pruning predicate: return false to reject binding
  /// \p Site -> \p Location (whose published service is \p Service).
  std::function<bool(const RequestSite &Site, Loc Location,
                     const hist::Expr *Service)>
      Filter;

  /// Optional resource governor: polled once per search node. Not owned.
  const ResourceGovernor *Governor = nullptr;
};

/// Result of enumeration.
struct EnumerationResult {
  std::vector<Plan> Plans;
  bool Truncated = false;  ///< Hit MaxPlans.
  size_t BindingsTried = 0; ///< Search effort (for the B3 benchmark).
  /// Set when the governor stopped the search: Plans holds only the plans
  /// found so far (a partial candidate set, distinct from Truncated).
  std::optional<ResourceExhausted> Exhausted;
};

/// Enumerates complete plans for \p Client over \p Repo.
EnumerationResult enumeratePlans(const hist::Expr *Client,
                                 const Repository &Repo,
                                 const EnumeratorOptions &Options = {});

} // namespace plan
} // namespace sus

#endif // SUS_PLAN_PLANENUMERATOR_H
