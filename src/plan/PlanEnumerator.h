//===- plan/PlanEnumerator.h - Candidate plan enumeration -------*- C++ -*-===//
///
/// \file
/// Enumerates the candidate plans for a client over a repository: every
/// request of the client is bound to a published location, and requests are
/// chased *transitively* — binding r[ℓ] adds ℓ's own requests to the
/// worklist (the paper's broker opens request 3 on behalf of the client's
/// request 1). A filter hook allows early pruning (e.g. discard bindings
/// whose contracts are not compliant) before the exponential blow-up.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_PLAN_PLANENUMERATOR_H
#define SUS_PLAN_PLANENUMERATOR_H

#include "plan/Plan.h"
#include "plan/RequestExtract.h"
#include "plan/ServiceIndex.h"
#include "support/ResourceGovernor.h"

#include <functional>
#include <optional>
#include <set>
#include <vector>

namespace sus {
namespace plan {

/// Tuning knobs for enumeration.
struct EnumeratorOptions {
  /// Stop after this many complete plans.
  size_t MaxPlans = 1 << 16;

  /// Optional pruning predicate: return false to reject binding
  /// \p Site -> \p Location (whose published service is \p Service).
  std::function<bool(const RequestSite &Site, Loc Location,
                     const hist::Expr *Service)>
      Filter;

  /// Optional resource governor: polled once per search node. Not owned.
  const ResourceGovernor *Governor = nullptr;

  /// Optional candidate index: per request, try only the locations the
  /// index proposes (sorted by location, so the search visits them in the
  /// same order a full Repository scan would) instead of every published
  /// service. The index only drops statically non-compliant bindings, so
  /// with a compliance Filter installed the emitted plan set is identical
  /// to a scan's. Not owned; must describe the same repository.
  const ServiceIndex *Index = nullptr;

  /// Optional emission filter for incremental repair: when set, only
  /// complete plans binding at least one of these locations are emitted
  /// (the untouched plans are the ones a repair session kept). Does not
  /// affect which bindings are *searched*, only which plans surface.
  const std::set<Loc> *MustMention = nullptr;
};

/// Why enumeration stopped.
enum class StopReason : uint8_t {
  Completed, ///< Search space exhausted: the plan set is complete.
  PlanLimit, ///< Hit MaxPlans: complete plans beyond the cap were cut.
  Resources, ///< Governor trip: the search itself was cut short.
};

/// Result of enumeration.
struct EnumerationResult {
  std::vector<Plan> Plans;
  bool Truncated = false;  ///< Hit MaxPlans (== Stop == PlanLimit).
  size_t BindingsTried = 0; ///< Search effort (for the B3 benchmark).
  /// Distinguishes "the limit cut emission" (PlanLimit) from "the budget
  /// cut the search" (Resources): the two need different reactions —
  /// raise MaxPlans vs. raise the budget — and were previously ambiguous.
  StopReason Stop = StopReason::Completed;
  /// Set when the governor stopped the search: Plans holds only the plans
  /// found so far (a partial candidate set, distinct from Truncated).
  std::optional<ResourceExhausted> Exhausted;
};

/// Enumerates complete plans for \p Client over \p Repo.
EnumerationResult enumeratePlans(const hist::Expr *Client,
                                 const Repository &Repo,
                                 const EnumeratorOptions &Options = {});

} // namespace plan
} // namespace sus

#endif // SUS_PLAN_PLANENUMERATOR_H
