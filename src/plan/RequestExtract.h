//===- plan/RequestExtract.h - Collecting service requests ------*- C++ -*-===//
///
/// \file
/// "First we manipulate the syntactic structure of a service in order to
/// identify and pick up all the requests, i.e. the subterms of the form
/// open_{r,ϕ} H1 close_{r,ϕ}" (§4). Extraction is syntactic and includes
/// requests nested inside other requests' bodies.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_PLAN_REQUESTEXTRACT_H
#define SUS_PLAN_REQUESTEXTRACT_H

#include "hist/Expr.h"

#include <vector>

namespace sus {
namespace plan {

/// One extracted request site.
struct RequestSite {
  const hist::RequestExpr *Site;

  hist::RequestId id() const { return Site->request(); }
  const hist::PolicyRef &policy() const { return Site->policy(); }
  const hist::Expr *body() const { return Site->body(); }
};

/// Collects every open_{r,ϕ}…close_{r,ϕ} subterm of \p E, outermost first,
/// in left-to-right syntactic order. Each distinct subterm is reported
/// once (expressions are hash-consed).
std::vector<RequestSite> extractRequests(const hist::Expr *E);

/// The immediate (non-nested) requests only: requests occurring in \p E
/// but not inside another request's body. These are the sessions \p E
/// itself opens; nested ones are opened by the callee services.
std::vector<RequestSite> extractTopLevelRequests(const hist::Expr *E);

} // namespace plan
} // namespace sus

#endif // SUS_PLAN_REQUESTEXTRACT_H
