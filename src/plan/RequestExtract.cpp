//===- plan/RequestExtract.cpp - Collecting service requests --------------===//

#include "plan/RequestExtract.h"

#include "support/Casting.h"

#include <unordered_set>

using namespace sus;
using namespace sus::hist;
using namespace sus::plan;

namespace {

void collect(const Expr *E, bool Recurse, std::vector<RequestSite> &Out,
             std::unordered_set<const Expr *> &Seen) {
  if (!Seen.insert(E).second)
    return;
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
  case ExprKind::Event:
  case ExprKind::CloseMark:
  case ExprKind::FrameOpen:
  case ExprKind::FrameClose:
    return;
  case ExprKind::Mu:
    collect(cast<MuExpr>(E)->body(), Recurse, Out, Seen);
    return;
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    collect(S->head(), Recurse, Out, Seen);
    collect(S->tail(), Recurse, Out, Seen);
    return;
  }
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice:
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      collect(B.Body, Recurse, Out, Seen);
    return;
  case ExprKind::Request: {
    const auto *R = cast<RequestExpr>(E);
    Out.push_back(RequestSite{R});
    if (Recurse)
      collect(R->body(), Recurse, Out, Seen);
    return;
  }
  case ExprKind::Framing:
    collect(cast<FramingExpr>(E)->body(), Recurse, Out, Seen);
    return;
  }
}

} // namespace

std::vector<RequestSite> sus::plan::extractRequests(const Expr *E) {
  std::vector<RequestSite> Out;
  std::unordered_set<const Expr *> Seen;
  collect(E, /*Recurse=*/true, Out, Seen);
  return Out;
}

std::vector<RequestSite> sus::plan::extractTopLevelRequests(const Expr *E) {
  std::vector<RequestSite> Out;
  std::unordered_set<const Expr *> Seen;
  collect(E, /*Recurse=*/false, Out, Seen);
  return Out;
}
