//===- plan/RepositoryDelta.h - Repository churn descriptions ---*- C++ -*-===//
///
/// \file
/// Describes one batch of repository churn — services added, removed or
/// re-versioned — *after* it has been applied to the Repository. A delta
/// is the unit of incremental maintenance: ServiceIndex::apply patches the
/// candidate buckets, VerifierCache::invalidate evicts exactly the entries
/// a change can make stale, and core::RepairSession re-runs bind/undo
/// search only from the affected bindings.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_PLAN_REPOSITORYDELTA_H
#define SUS_PLAN_REPOSITORYDELTA_H

#include "plan/Plan.h"

#include <set>
#include <vector>

namespace sus {
namespace plan {

/// One changed publication. Old/New are the service expressions *before*
/// and *after* the change: (null, S) = added, (S, null) = removed,
/// (S, S′) = re-versioned.
struct ServiceChange {
  Loc Location;
  const hist::Expr *Old = nullptr;
  const hist::Expr *New = nullptr;

  bool isAdd() const { return !Old && New; }
  bool isRemove() const { return Old && !New; }
  bool isReplace() const { return Old && New; }
};

/// A batch of changes, already applied to the Repository they describe.
struct RepositoryDelta {
  std::vector<ServiceChange> Changes;

  /// The touched locations, deduplicated.
  std::set<Loc> touched() const {
    std::set<Loc> Out;
    for (const ServiceChange &C : Changes)
      Out.insert(C.Location);
    return Out;
  }

  bool empty() const { return Changes.empty(); }
};

/// Publishes \p Service at \p Location in \p Repo (add or re-version) and
/// returns the describing change. A no-op re-publication of the identical
/// hash-consed expression still counts as a re-version: the caller asked
/// for churn, and "touched" must stay conservative.
inline ServiceChange applyPublish(Repository &Repo, Loc Location,
                                  const hist::Expr *Service,
                                  unsigned Capacity = 0) {
  ServiceChange C{Location, Repo.find(Location), Service};
  Repo.add(Location, Service, Capacity);
  return C;
}

/// Removes \p Location from \p Repo and returns the describing change
/// (Old = null when nothing was published there, making the change a
/// harmless no-op for index/cache maintenance).
inline ServiceChange applyRemove(Repository &Repo, Loc Location) {
  ServiceChange C{Location, Repo.find(Location), nullptr};
  Repo.remove(Location);
  return C;
}

/// True when \p Pi binds any request to a touched location.
inline bool planMentions(const Plan &Pi, const std::set<Loc> &Touched) {
  for (const auto &[R, L] : Pi.bindings())
    if (Touched.count(L))
      return true;
  return false;
}

} // namespace plan
} // namespace sus

#endif // SUS_PLAN_REPOSITORYDELTA_H
