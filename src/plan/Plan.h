//===- plan/Plan.h - Plans and service repositories -------------*- C++ -*-===//
///
/// \file
/// Definition 2's orchestration data: a *plan* π maps request identifiers
/// to the locations of the services chosen to serve them (π ::= ∅ | r[ℓ] |
/// π ∪ π′), and a *repository* R = {ℓj : Hj} publishes the services
/// available for joining sessions.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_PLAN_PLAN_H
#define SUS_PLAN_PLAN_H

#include "hist/Expr.h"
#include "hist/HistContext.h"

#include <cassert>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sus {
namespace plan {

/// A service location ℓ ∈ Loc.
using Loc = Symbol;

/// A plan π: a finite map from request identifiers to locations.
class Plan {
public:
  Plan() = default;

  /// Binds r[ℓ]. The request must be *fresh*: the bind/undo searches rely
  /// on bind and unbind being symmetric, which a silent replacement breaks
  /// (the undo would erase the older binding instead of restoring it).
  /// Use rebind() when replacement is the point.
  void bind(hist::RequestId Request, Loc Location) {
    assert(!Binding.count(Request) &&
           "bind would silently replace an existing binding; use rebind");
    Binding[Request] = Location;
  }

  /// Replaces (or creates) the binding of r, returning the previous
  /// location so the caller can undo by rebinding it back.
  std::optional<Loc> rebind(hist::RequestId Request, Loc Location) {
    std::optional<Loc> Previous;
    auto It = Binding.find(Request);
    if (It != Binding.end())
      Previous = It->second;
    Binding[Request] = Location;
    return Previous;
  }

  /// Removes the binding of r (no-op when the plan does not cover r).
  /// Lets backtracking searches undo a bind instead of copying the plan.
  void unbind(hist::RequestId Request) { Binding.erase(Request); }

  /// π(r), or std::nullopt when the plan does not cover r.
  std::optional<Loc> lookup(hist::RequestId Request) const {
    auto It = Binding.find(Request);
    if (It == Binding.end())
      return std::nullopt;
    return It->second;
  }

  bool covers(hist::RequestId Request) const {
    return Binding.count(Request) != 0;
  }

  size_t size() const { return Binding.size(); }
  const std::map<hist::RequestId, Loc> &bindings() const { return Binding; }

  /// π ∪ π′ (right-biased on conflicts).
  Plan merge(const Plan &Other) const {
    Plan Result = *this;
    for (const auto &[R, L] : Other.Binding)
      Result.Binding[R] = L;
    return Result;
  }

  friend bool operator==(const Plan &A, const Plan &B) {
    return A.Binding == B.Binding;
  }
  friend bool operator<(const Plan &A, const Plan &B) {
    return A.Binding < B.Binding;
  }

  /// Renders as "{1 -> br, 3 -> s3}".
  std::string str(const StringInterner &Interner) const;

private:
  std::map<hist::RequestId, Loc> Binding;
};

/// The global trusted repository R of published services.
///
/// The paper assumes services "can replicate themselves unboundedly many
/// times" and lists bounded availability as future work (§5); a published
/// service may therefore carry a replication capacity: the number of
/// sessions it can serve concurrently (0 = unbounded, the paper's
/// default). The interpreter enforces capacities at run time.
class Repository {
public:
  /// Publishes \p Service at \p Location (replacing any previous one).
  /// \p Capacity bounds concurrent sessions; 0 means unbounded.
  void add(Loc Location, const hist::Expr *Service, unsigned Capacity = 0) {
    Services[Location] = Service;
    if (Capacity == 0)
      Capacities.erase(Location);
    else
      Capacities[Location] = Capacity;
  }

  /// The replication capacity of ℓ (0 = unbounded).
  unsigned capacity(Loc Location) const {
    auto It = Capacities.find(Location);
    return It == Capacities.end() ? 0 : It->second;
  }

  /// Withdraws the publication at \p Location (no-op when absent).
  /// Returns the service that was published there, or null.
  const hist::Expr *remove(Loc Location) {
    auto It = Services.find(Location);
    if (It == Services.end())
      return nullptr;
    const hist::Expr *Old = It->second;
    Services.erase(It);
    Capacities.erase(Location);
    return Old;
  }

  /// The service at ℓ, or null.
  const hist::Expr *find(Loc Location) const {
    auto It = Services.find(Location);
    return It == Services.end() ? nullptr : It->second;
  }

  size_t size() const { return Services.size(); }

  /// All published locations, in deterministic order.
  std::vector<Loc> locations() const {
    std::vector<Loc> Out;
    Out.reserve(Services.size());
    for (const auto &[L, S] : Services)
      Out.push_back(L);
    return Out;
  }

  const std::map<Loc, const hist::Expr *> &services() const {
    return Services;
  }

private:
  std::map<Loc, const hist::Expr *> Services;
  std::map<Loc, unsigned> Capacities;
};

} // namespace plan
} // namespace sus

#endif // SUS_PLAN_PLAN_H
