//===- plan/PlanEnumerator.cpp - Candidate plan enumeration ---------------===//

#include "plan/PlanEnumerator.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <map>
#include <set>

using namespace sus;
using namespace sus::hist;
using namespace sus::plan;

namespace {

/// Depth-first enumeration over a *single* mutable plan, pending stack and
/// seen set: each binding is applied, explored and undone in place, so per
/// step the only allocation is for emitted complete plans — not one deep
/// copy of the whole search state per repository entry.
class Enumerator {
public:
  Enumerator(const Repository &Repo, const EnumeratorOptions &Options,
             EnumerationResult &Result)
      : Repo(Repo), Options(Options), Result(Result) {}

  void run(const Expr *Client) {
    Pending = extractRequests(Client);
    for (const RequestSite &S : Pending)
      Seen.insert(S.id());
    search();
  }

private:
  /// The requests of \p Service, memoized: the same service is chased once
  /// per enumeration instead of once per visited branch.
  const std::vector<RequestSite> &requestsOf(const Expr *Service) {
    auto It = ServiceRequests.find(Service);
    if (It != ServiceRequests.end())
      return It->second;
    return ServiceRequests.emplace(Service, extractRequests(Service))
        .first->second;
  }

  void search() {
    if (Result.Truncated || Result.Exhausted)
      return;
    if (Options.Governor) {
      if (std::optional<ResourceExhausted> E = Options.Governor->poll()) {
        Result.Exhausted = E;
        Result.Stop = StopReason::Resources;
        return;
      }
    }
    if (Pending.empty()) {
      // Repair mode: a complete plan not binding any touched location is
      // one the caller already has a verdict for — don't re-emit it (and
      // don't let it count against MaxPlans).
      if (Options.MustMention &&
          !planMentions(Current, *Options.MustMention))
        return;
      if (Result.Plans.size() >= Options.MaxPlans) {
        Result.Truncated = true;
        Result.Stop = StopReason::PlanLimit;
        return;
      }
      Result.Plans.push_back(Current);
      return;
    }

    RequestSite Site = Pending.back();
    Pending.pop_back();

    if (Current.covers(Site.id())) {
      // Already bound on this branch (shared id, e.g. a recursive
      // service); keep the existing binding.
      search();
    } else if (Options.Index) {
      // Indexed candidate selection: only the locations whose published
      // contract could possibly comply, in the same (sorted-by-location)
      // order the full scan below visits them.
      for (Loc Location : Options.Index->candidates(Site.body())) {
        const Expr *Service = Repo.find(Location);
        if (!Service)
          continue; // Index ahead of the repository; skip defensively.
        if (!tryBinding(Site, Location, Service))
          break;
      }
    } else {
      for (const auto &[Location, Service] : Repo.services())
        if (!tryBinding(Site, Location, Service))
          break;
    }

    Pending.push_back(Site);
  }

  /// Applies one candidate binding, recurses, undoes it. Returns false
  /// when the search is over (limit or budget) and the caller should stop
  /// trying further candidates for this site.
  bool tryBinding(const RequestSite &Site, Loc Location,
                  const Expr *Service) {
    ++Result.BindingsTried;
    if (Options.Filter && !Options.Filter(Site, Location, Service))
      return true;

    Current.bind(Site.id(), Location);

    // Chase the chosen service's own requests.
    size_t Added = 0;
    for (const RequestSite &S : requestsOf(Service))
      if (Seen.insert(S.id()).second) {
        Pending.push_back(S);
        ++Added;
      }

    search();

    // Undo: drop the chased requests and the binding.
    for (; Added > 0; --Added) {
      Seen.erase(Pending.back().id());
      Pending.pop_back();
    }
    Current.unbind(Site.id());
    return !Result.Truncated && !Result.Exhausted;
  }

  const Repository &Repo;
  const EnumeratorOptions &Options;
  EnumerationResult &Result;

  Plan Current;
  std::vector<RequestSite> Pending;
  std::set<RequestId> Seen;
  std::map<const Expr *, std::vector<RequestSite>> ServiceRequests;
};

} // namespace

EnumerationResult sus::plan::enumeratePlans(const Expr *Client,
                                            const Repository &Repo,
                                            const EnumeratorOptions &Options) {
  EnumerationResult Result;
  trace::Span Span("plan.enumerate", "verifier");
  Enumerator E(Repo, Options, Result);
  E.run(Client);
  Span.count("plans", static_cast<int64_t>(Result.Plans.size()));
  static metrics::Counter &Bindings =
      metrics::counter("plan.enumerator.bindings_tried");
  static metrics::Counter &Plans = metrics::counter("plan.enumerator.plans");
  Bindings.add(Result.BindingsTried);
  Plans.add(Result.Plans.size());
  return Result;
}
