//===- plan/PlanEnumerator.cpp - Candidate plan enumeration ---------------===//

#include "plan/PlanEnumerator.h"

#include <set>

using namespace sus;
using namespace sus::hist;
using namespace sus::plan;

namespace {

class Enumerator {
public:
  Enumerator(const Repository &Repo, const EnumeratorOptions &Options,
             EnumerationResult &Result)
      : Repo(Repo), Options(Options), Result(Result) {}

  void run(const Expr *Client) {
    std::vector<RequestSite> Pending = extractRequests(Client);
    Plan Empty;
    std::set<RequestId> Seen;
    for (const RequestSite &S : Pending)
      Seen.insert(S.id());
    search(Empty, std::move(Pending), std::move(Seen));
  }

private:
  void search(Plan Current, std::vector<RequestSite> Pending,
              std::set<RequestId> Seen) {
    if (Result.Truncated)
      return;
    if (Pending.empty()) {
      if (Result.Plans.size() >= Options.MaxPlans) {
        Result.Truncated = true;
        return;
      }
      Result.Plans.push_back(std::move(Current));
      return;
    }

    RequestSite Site = Pending.back();
    Pending.pop_back();

    if (Current.covers(Site.id())) {
      // Already bound on this branch (shared id, e.g. a recursive
      // service); keep the existing binding.
      search(std::move(Current), std::move(Pending), std::move(Seen));
      return;
    }

    for (const auto &[Location, Service] : Repo.services()) {
      ++Result.BindingsTried;
      if (Options.Filter && !Options.Filter(Site, Location, Service))
        continue;

      Plan Next = Current;
      Next.bind(Site.id(), Location);

      // Chase the chosen service's own requests.
      std::vector<RequestSite> NextPending = Pending;
      std::set<RequestId> NextSeen = Seen;
      for (const RequestSite &S : extractRequests(Service))
        if (NextSeen.insert(S.id()).second)
          NextPending.push_back(S);

      search(std::move(Next), std::move(NextPending), std::move(NextSeen));
      if (Result.Truncated)
        return;
    }
  }

  const Repository &Repo;
  const EnumeratorOptions &Options;
  EnumerationResult &Result;
};

} // namespace

EnumerationResult sus::plan::enumeratePlans(const Expr *Client,
                                            const Repository &Repo,
                                            const EnumeratorOptions &Options) {
  EnumerationResult Result;
  Enumerator E(Repo, Options, Result);
  E.run(Client);
  return Result;
}
