//===- plan/Plan.cpp - Plans and service repositories ---------------------===//

#include "plan/Plan.h"

using namespace sus;
using namespace sus::plan;

std::string Plan::str(const StringInterner &Interner) const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[R, L] : Binding) {
    if (!First)
      Out += ", ";
    First = false;
    Out += std::to_string(R);
    Out += " -> ";
    Out += Interner.text(L);
  }
  Out += "}";
  return Out;
}
