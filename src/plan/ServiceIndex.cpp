//===- plan/ServiceIndex.cpp - Indexed candidate selection ----------------===//

#include "plan/ServiceIndex.h"

#include "support/Metrics.h"

using namespace sus;
using namespace sus::hist;
using namespace sus::plan;

namespace {

metrics::Counter &lookupsCounter() {
  static metrics::Counter &C = metrics::counter("plan.index.lookups");
  return C;
}
metrics::Counter &hitsCounter() {
  static metrics::Counter &C = metrics::counter("plan.index.hits");
  return C;
}
metrics::Counter &missesCounter() {
  static metrics::Counter &C = metrics::counter("plan.index.misses");
  return C;
}
metrics::Counter &candidatesCounter() {
  static metrics::Counter &C = metrics::counter("plan.index.candidates");
  return C;
}
metrics::Counter &alphabetRejectsCounter() {
  static metrics::Counter &C =
      metrics::counter("plan.prescreen.alphabet_rejects");
  return C;
}
metrics::Counter &firstStepRejectsCounter() {
  static metrics::Counter &C =
      metrics::counter("plan.prescreen.first_step_rejects");
  return C;
}
metrics::Counter &updatesCounter() {
  static metrics::Counter &C = metrics::counter("plan.index.updates");
  return C;
}

} // namespace

ServiceIndex::ServiceIndex(HistContext &Ctx, const Repository &Repo)
    : Ctx(Ctx) {
  MutexLock Lock(M);
  for (const auto &[Location, Service] : Repo.services())
    insertLocked(Location, Service);
  ++Stats.Rebuilds;
}

ServiceIndex::ServiceIndex(HistContext &Ctx, const Repository &Repo,
                           const std::vector<SnapshotEntry> &Warm)
    : Ctx(Ctx) {
  std::map<std::pair<Loc, const Expr *>, const contract::ContractSummary *>
      ByKey;
  for (const SnapshotEntry &E : Warm)
    ByKey.emplace(std::make_pair(E.Location, E.Service), &E.Summary);
  MutexLock Lock(M);
  for (const auto &[Location, Service] : Repo.services()) {
    auto It = ByKey.find(std::make_pair(Location, Service));
    if (It != ByKey.end())
      installLocked(Location, Service, *It->second);
    else
      insertLocked(Location, Service);
  }
  ++Stats.Rebuilds;
}

std::vector<ServiceIndex::SnapshotEntry> ServiceIndex::snapshotEntries()
    const {
  MutexLock Lock(M);
  std::vector<SnapshotEntry> Out;
  Out.reserve(Entries.size());
  for (const auto &[Location, E] : Entries)
    Out.push_back({Location, E.Service, E.Summary});
  return Out;
}

void ServiceIndex::insertLocked(Loc Location, const Expr *Service) {
  installLocked(Location, Service, contract::summarizeContract(Ctx, Service));
}

void ServiceIndex::installLocked(Loc Location, const Expr *Service,
                                 contract::ContractSummary Summary) {
  Entry E;
  E.Service = Service;
  E.Summary = std::move(Summary);
  if (!E.Summary.Screenable) {
    Unscreened.insert(Location);
  } else {
    for (const contract::ReadySet &S : E.Summary.InitialSets)
      for (const CommAction &A : S)
        Buckets[A.complement()].insert(Location);
  }
  Entries[Location] = std::move(E);
}

void ServiceIndex::removeLocked(Loc Location) {
  auto It = Entries.find(Location);
  if (It == Entries.end())
    return;
  const Entry &E = It->second;
  if (!E.Summary.Screenable) {
    Unscreened.erase(Location);
  } else {
    for (const contract::ReadySet &S : E.Summary.InitialSets)
      for (const CommAction &A : S) {
        auto BIt = Buckets.find(A.complement());
        if (BIt == Buckets.end())
          continue;
        BIt->second.erase(Location);
        if (BIt->second.empty())
          Buckets.erase(BIt);
      }
  }
  Entries.erase(It);
}

std::vector<Loc> ServiceIndex::candidates(const Expr *RequestBody) const {
  MutexLock Lock(M);
  ++Stats.Lookups;
  lookupsCounter().add(1);

  auto MemoIt = Memo.find(RequestBody);
  if (MemoIt != Memo.end()) {
    ++Stats.Hits;
    hitsCounter().add(1);
    Stats.Candidates += MemoIt->second.size();
    candidatesCounter().add(MemoIt->second.size());
    return MemoIt->second;
  }
  missesCounter().add(1);

  auto BodyIt = Bodies.find(RequestBody);
  if (BodyIt == Bodies.end())
    BodyIt = Bodies
                 .emplace(RequestBody,
                          contract::summarizeContract(Ctx, RequestBody))
                 .first;
  const contract::ContractSummary &Body = BodyIt->second;

  // std::set<Loc> orders by Symbol, exactly like Repository::services(),
  // so the emitted candidate list is a subsequence of the full scan.
  std::set<Loc> Selected;
  if (!Body.Screenable || !Body.NeedsSync) {
    // No non-empty initial ready set to key on: every location is a
    // candidate (and the pre-screens below cannot reject anything).
    for (const auto &[Location, E] : Entries)
      Selected.insert(Location);
  } else {
    for (const CommAction &C : Body.IndexKey) {
      auto BIt = Buckets.find(C);
      if (BIt != Buckets.end())
        Selected.insert(BIt->second.begin(), BIt->second.end());
    }
    Selected.insert(Unscreened.begin(), Unscreened.end());
  }

  std::vector<Loc> Out;
  Out.reserve(Selected.size());
  for (Loc Location : Selected) {
    const Entry &E = Entries.at(Location);
    switch (contract::prescreenCompliance(Body, E.Summary)) {
    case contract::PrescreenVerdict::Pass:
      Out.push_back(Location);
      break;
    case contract::PrescreenVerdict::AlphabetReject:
      ++Stats.AlphabetRejects;
      alphabetRejectsCounter().add(1);
      break;
    case contract::PrescreenVerdict::FirstStepReject:
      ++Stats.FirstStepRejects;
      firstStepRejectsCounter().add(1);
      break;
    }
  }

  Stats.Candidates += Out.size();
  candidatesCounter().add(Out.size());
  Memo.emplace(RequestBody, Out);
  return Out;
}

void ServiceIndex::apply(const RepositoryDelta &Delta) {
  MutexLock Lock(M);
  for (const ServiceChange &C : Delta.Changes) {
    removeLocked(C.Location);
    if (C.New)
      insertLocked(C.Location, C.New);
    ++Stats.Rebuilds;
    updatesCounter().add(1);
  }
  // Candidate lists mention locations, so churn invalidates them all; the
  // body summaries stay (they are keyed on immutable hash-consed exprs).
  Memo.clear();
}

size_t ServiceIndex::size() const {
  MutexLock Lock(M);
  return Entries.size();
}

IndexStats ServiceIndex::stats() const {
  MutexLock Lock(M);
  return Stats;
}
