//===- hist/TraceEquiv.h - Trace equivalence of expressions -----*- C++ -*-===//
///
/// \file
/// Trace (prefix-language) equivalence of two history expressions, decided
/// through the automata substrate: materialize both LTSs, intern labels
/// into a shared alphabet, make every state accepting (traces are
/// prefix-closed), determinize and compare languages. Coarser than strong
/// bisimilarity (hist/Bisim.h): it identifies expressions that differ only
/// in the timing of internal-choice commitment.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_TRACEEQUIV_H
#define SUS_HIST_TRACEEQUIV_H

#include "automata/Nfa.h"
#include "hist/HistContext.h"
#include "hist/TransitionSystem.h"

#include <vector>

namespace sus {
namespace hist {

/// Interns labels into dense automata symbol codes.
class LabelTable {
public:
  automata::SymbolCode code(const Label &L);
  const Label &label(automata::SymbolCode C) const { return Labels[C]; }
  size_t size() const { return Labels.size(); }

private:
  std::vector<Label> Labels;
};

/// Renders the reachable LTS of \p E as an NFA over \p Table's codes; all
/// states accept (prefix-closed trace language).
automata::Nfa toNfa(HistContext &Ctx, const Expr *E, LabelTable &Table,
                    size_t MaxStates = 1 << 18);

/// True if \p A and \p B have the same (prefix-closed) trace language.
bool traceEquivalent(HistContext &Ctx, const Expr *A, const Expr *B,
                     size_t MaxStates = 1 << 18);

/// True if \p E can perform exactly the label sequence \p Word (i.e. the
/// word is a trace prefix of E). Decides by subset-walking derivatives —
/// no LTS materialization, so it also works on expressions with large or
/// infinite state spaces, as long as the word is finite.
bool canPerform(HistContext &Ctx, const Expr *E,
                const std::vector<Label> &Word);

} // namespace hist
} // namespace sus

#endif // SUS_HIST_TRACEEQUIV_H
