//===- hist/Clone.cpp - Cross-context expression cloning ------------------===//

#include "hist/Clone.h"

#include "support/Casting.h"

#include <unordered_map>

using namespace sus;
using namespace sus::hist;

Symbol sus::hist::cloneSymbol(HistContext &To, const StringInterner &From,
                              Symbol S) {
  if (!S.isValid())
    return S;
  return To.interner().intern(From.text(S));
}

namespace {

Value cloneValue(HistContext &To, const StringInterner &From, const Value &V) {
  if (V.isName())
    return Value::name(cloneSymbol(To, From, V.asName()));
  return V;
}

class Cloner {
public:
  Cloner(HistContext &To, const StringInterner &From) : To(To), From(From) {}

  const Expr *visit(const Expr *E) {
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;
    const Expr *Result = compute(E);
    Memo.emplace(E, Result);
    return Result;
  }

private:
  PolicyRef policy(const PolicyRef &Ref) {
    return clonePolicyRef(To, From, Ref);
  }

  const Expr *compute(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Empty:
      return To.empty();
    case ExprKind::Var:
      return To.var(cloneSymbol(To, From, cast<VarExpr>(E)->name()));
    case ExprKind::Mu: {
      const auto *M = cast<MuExpr>(E);
      return To.mu(cloneSymbol(To, From, M->var()), visit(M->body()));
    }
    case ExprKind::Event: {
      const Event &Ev = cast<EventExpr>(E)->event();
      return To.event(Event{cloneSymbol(To, From, Ev.Name),
                            cloneValue(To, From, Ev.Arg)});
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      return To.seq(visit(S->head()), visit(S->tail()));
    }
    case ExprKind::ExtChoice:
    case ExprKind::IntChoice: {
      const auto *C = cast<ChoiceExpr>(E);
      std::vector<ChoiceBranch> Branches;
      Branches.reserve(C->numBranches());
      for (const ChoiceBranch &B : C->branches())
        Branches.push_back(
            {CommAction{cloneSymbol(To, From, B.Guard.Channel), B.Guard.Pol},
             visit(B.Body)});
      return E->kind() == ExprKind::ExtChoice
                 ? To.extChoice(std::move(Branches))
                 : To.intChoice(std::move(Branches));
    }
    case ExprKind::Request: {
      const auto *R = cast<RequestExpr>(E);
      return To.request(R->request(), policy(R->policy()), visit(R->body()));
    }
    case ExprKind::Framing: {
      const auto *F = cast<FramingExpr>(E);
      return To.framing(policy(F->policy()), visit(F->body()));
    }
    case ExprKind::CloseMark: {
      const auto *C = cast<CloseMarkExpr>(E);
      return To.closeMark(C->request(), policy(C->policy()));
    }
    case ExprKind::FrameOpen:
      return To.frameOpen(policy(cast<FrameOpenExpr>(E)->policy()));
    case ExprKind::FrameClose:
      return To.frameClose(policy(cast<FrameCloseExpr>(E)->policy()));
    }
    return To.empty();
  }

  HistContext &To;
  const StringInterner &From;
  std::unordered_map<const Expr *, const Expr *> Memo;
};

} // namespace

PolicyRef sus::hist::clonePolicyRef(HistContext &To,
                                    const StringInterner &From,
                                    const PolicyRef &Ref) {
  PolicyRef Out;
  Out.Name = cloneSymbol(To, From, Ref.Name);
  Out.Args.reserve(Ref.Args.size());
  for (const std::vector<Value> &Arg : Ref.Args) {
    std::vector<Value> Mapped;
    Mapped.reserve(Arg.size());
    for (const Value &V : Arg)
      Mapped.push_back(cloneValue(To, From, V));
    Out.Args.push_back(std::move(Mapped));
  }
  return Out;
}

const Expr *sus::hist::cloneExpr(HistContext &To, const StringInterner &From,
                                 const Expr *E) {
  Cloner C(To, From);
  return C.visit(E);
}
