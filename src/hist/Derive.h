//===- hist/Derive.h - Stand-alone operational semantics --------*- C++ -*-===//
///
/// \file
/// The stand-alone operational semantics of history expressions (the
/// H --λ--> H′ rules of §3): I-Choice, E-Choice, (α Acc), S-Open, P-Open,
/// Conc and Rec. `derive` computes the full set of one-step derivatives of
/// an expression; hash-consing guarantees the reachable set is finite for
/// well-formed (guarded, tail-recursive) expressions.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_DERIVE_H
#define SUS_HIST_DERIVE_H

#include "hist/Action.h"
#include "hist/Expr.h"
#include "hist/HistContext.h"

#include <vector>

namespace sus {
namespace hist {

/// One labelled step H --λ--> H′.
struct Transition {
  Label L;
  const Expr *Target;
};

/// Computes all one-step derivatives of \p E.
///
/// \p E must be closed; a free variable (or an unguarded µ) yields no
/// transitions. ε has no transitions (successful termination).
std::vector<Transition> derive(HistContext &Ctx, const Expr *E);

/// Returns true if \p E is terminated, i.e. E ≡ ε.
inline bool isTerminated(const Expr *E) { return E->isEmpty(); }

} // namespace hist
} // namespace sus

#endif // SUS_HIST_DERIVE_H
