//===- hist/Expr.h - History expression AST ---------------------*- C++ -*-===//
///
/// \file
/// The history-expression AST of Definition 1:
///
///   H ::= ε | h | µh.H | Σᵢ aᵢ.Hᵢ | ⊕ᵢ āᵢ.Hᵢ | α | H·H
///       | open_{r,ϕ} H close_{r,ϕ} | ϕ⟦H⟧
///
/// plus the two residual markers the operational semantics produces:
/// `close_{r,ϕ}` (after S-Open fires) and `⌋ϕ` (after P-Open fires). A
/// standalone `⌊ϕ` marker is also provided for the ϕ⟦H⟧ ≡ ⌊ϕ·H·⌋ϕ reading.
///
/// Nodes are immutable, arena-allocated and hash-consed by HistContext, so
/// pointer equality is structural equality. The structural congruence
/// ε·H ≡ H ≡ H·ε is applied at construction time, and sequences are kept
/// right-nested.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_EXPR_H
#define SUS_HIST_EXPR_H

#include "hist/Action.h"
#include "support/Casting.h"
#include "support/Symbol.h"

#include <cstdint>
#include <vector>

namespace sus {

class Arena;

namespace hist {

class HistContext;

/// Kind discriminator for Expr nodes (LLVM-style RTTI).
enum class ExprKind : uint8_t {
  Empty,      ///< ε
  Var,        ///< h — recursion variable.
  Mu,         ///< µh.H — guarded tail recursion.
  Event,      ///< α — access event.
  Seq,        ///< H·H′ — sequential composition.
  ExtChoice,  ///< Σᵢ aᵢ.Hᵢ — external choice (input-guarded).
  IntChoice,  ///< ⊕ᵢ āᵢ.Hᵢ — internal choice (output-guarded).
  Request,    ///< open_{r,ϕ} H close_{r,ϕ} — service request.
  Framing,    ///< ϕ⟦H⟧ — security framing.
  CloseMark,  ///< close_{r,ϕ} residual marker.
  FrameOpen,  ///< ⌊ϕ marker.
  FrameClose, ///< ⌋ϕ residual marker.
};

/// Base class of all history-expression nodes.
///
/// Nodes are created exclusively through HistContext; two structurally
/// equal nodes from the same context are the same pointer.
class Expr {
public:
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;

  ExprKind kind() const { return Kind; }

  /// True for ε.
  bool isEmpty() const { return Kind == ExprKind::Empty; }

  /// Structural hash (computed once at interning time).
  size_t hash() const { return HashValue; }

protected:
  Expr(ExprKind K, size_t Hash) : Kind(K), HashValue(Hash) {}
  ~Expr() = default;

private:
  ExprKind Kind;
  size_t HashValue;
};

/// ε — the expression that cannot do anything.
class EmptyExpr : public Expr {
public:
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Empty; }

private:
  friend class HistContext;
  friend class sus::Arena;
  explicit EmptyExpr(size_t Hash) : Expr(ExprKind::Empty, Hash) {}
};

/// h — a recursion variable bound by an enclosing µ.
class VarExpr : public Expr {
public:
  Symbol name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  friend class HistContext;
  friend class sus::Arena;
  VarExpr(Symbol Name, size_t Hash) : Expr(ExprKind::Var, Hash), Name(Name) {}
  Symbol Name;
};

/// µh.H — infinite behaviour; restricted to guarded tail recursion.
class MuExpr : public Expr {
public:
  Symbol var() const { return Var; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Mu; }

private:
  friend class HistContext;
  friend class sus::Arena;
  MuExpr(Symbol Var, const Expr *Body, size_t Hash)
      : Expr(ExprKind::Mu, Hash), Var(Var), Body(Body) {}
  Symbol Var;
  const Expr *Body;
};

/// α — an access event.
class EventExpr : public Expr {
public:
  const Event &event() const { return Ev; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Event; }

private:
  friend class HistContext;
  friend class sus::Arena;
  EventExpr(Event Ev, size_t Hash) : Expr(ExprKind::Event, Hash), Ev(Ev) {}
  Event Ev;
};

/// H·H′ — sequential composition (kept right-nested; neither side is ε).
class SeqExpr : public Expr {
public:
  const Expr *head() const { return Head; }
  const Expr *tail() const { return Tail; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Seq; }

private:
  friend class HistContext;
  friend class sus::Arena;
  SeqExpr(const Expr *Head, const Expr *Tail, size_t Hash)
      : Expr(ExprKind::Seq, Hash), Head(Head), Tail(Tail) {}
  const Expr *Head;
  const Expr *Tail;
};

/// One guarded branch of a choice: an action prefix and a continuation.
struct ChoiceBranch {
  CommAction Guard;
  const Expr *Body;

  friend bool operator==(const ChoiceBranch &A, const ChoiceBranch &B) {
    return A.Guard == B.Guard && A.Body == B.Body;
  }
};

/// Common base of the two choice forms.
class ChoiceExpr : public Expr {
public:
  const std::vector<ChoiceBranch> &branches() const { return Branches; }
  size_t numBranches() const { return Branches.size(); }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ExtChoice ||
           E->kind() == ExprKind::IntChoice;
  }

protected:
  ChoiceExpr(ExprKind K, std::vector<ChoiceBranch> Branches, size_t Hash)
      : Expr(K, Hash), Branches(std::move(Branches)) {}

private:
  std::vector<ChoiceBranch> Branches;
};

/// Σᵢ aᵢ.Hᵢ — external choice; the received message drives the branch.
class ExtChoiceExpr : public ChoiceExpr {
public:
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ExtChoice;
  }

private:
  friend class HistContext;
  friend class sus::Arena;
  ExtChoiceExpr(std::vector<ChoiceBranch> Branches, size_t Hash)
      : ChoiceExpr(ExprKind::ExtChoice, std::move(Branches), Hash) {}
};

/// ⊕ᵢ āᵢ.Hᵢ — internal choice; the sender decides on its own.
class IntChoiceExpr : public ChoiceExpr {
public:
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IntChoice;
  }

private:
  friend class HistContext;
  friend class sus::Arena;
  IntChoiceExpr(std::vector<ChoiceBranch> Branches, size_t Hash)
      : ChoiceExpr(ExprKind::IntChoice, std::move(Branches), Hash) {}
};

/// open_{r,ϕ} H close_{r,ϕ} — a service request: open a session identified
/// by r under policy ϕ, run H, close the session.
class RequestExpr : public Expr {
public:
  RequestId request() const { return Request; }
  const PolicyRef &policy() const { return Policy; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Request;
  }

private:
  friend class HistContext;
  friend class sus::Arena;
  RequestExpr(RequestId Request, PolicyRef Policy, const Expr *Body,
              size_t Hash)
      : Expr(ExprKind::Request, Hash), Request(Request),
        Policy(std::move(Policy)), Body(Body) {}
  RequestId Request;
  PolicyRef Policy;
  const Expr *Body;
};

/// ϕ⟦H⟧ — while H runs, ϕ must be enforced (history-dependently).
class FramingExpr : public Expr {
public:
  const PolicyRef &policy() const { return Policy; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Framing;
  }

private:
  friend class HistContext;
  friend class sus::Arena;
  FramingExpr(PolicyRef Policy, const Expr *Body, size_t Hash)
      : Expr(ExprKind::Framing, Hash), Policy(std::move(Policy)),
        Body(Body) {}
  PolicyRef Policy;
  const Expr *Body;
};

/// close_{r,ϕ} — the residual of a request after S-Open fired.
class CloseMarkExpr : public Expr {
public:
  RequestId request() const { return Request; }
  const PolicyRef &policy() const { return Policy; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::CloseMark;
  }

private:
  friend class HistContext;
  friend class sus::Arena;
  CloseMarkExpr(RequestId Request, PolicyRef Policy, size_t Hash)
      : Expr(ExprKind::CloseMark, Hash), Request(Request),
        Policy(std::move(Policy)) {}
  RequestId Request;
  PolicyRef Policy;
};

/// ⌊ϕ — framing opening marker (the ϕ⟦H⟧ ≡ ⌊ϕ·H·⌋ϕ reading).
class FrameOpenExpr : public Expr {
public:
  const PolicyRef &policy() const { return Policy; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FrameOpen;
  }

private:
  friend class HistContext;
  friend class sus::Arena;
  FrameOpenExpr(PolicyRef Policy, size_t Hash)
      : Expr(ExprKind::FrameOpen, Hash), Policy(std::move(Policy)) {}
  PolicyRef Policy;
};

/// ⌋ϕ — framing closing marker (the residual of P-Open).
class FrameCloseExpr : public Expr {
public:
  const PolicyRef &policy() const { return Policy; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FrameClose;
  }

private:
  friend class HistContext;
  friend class sus::Arena;
  FrameCloseExpr(PolicyRef Policy, size_t Hash)
      : Expr(ExprKind::FrameClose, Hash), Policy(std::move(Policy)) {}
  PolicyRef Policy;
};

} // namespace hist
} // namespace sus

#endif // SUS_HIST_EXPR_H
