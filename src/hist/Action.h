//===- hist/Action.h - Events, actions and transition labels ----*- C++ -*-===//
///
/// \file
/// The label vocabulary of the paper (§3): access events α ∈ Ev,
/// communication actions Comm = {a, ā, τ, open_{r,ϕ}, close_{r,ϕ}} and
/// framing actions Frm = {⌊ϕ, ⌋ϕ}. A transition label λ ranges over
/// Comm ∪ Ev ∪ Frm.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_ACTION_H
#define SUS_HIST_ACTION_H

#include "support/HashUtil.h"
#include "support/StringInterner.h"
#include "support/Symbol.h"
#include "support/Value.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace sus {
namespace hist {

/// An access event α(v): a name plus an optional parameter value, e.g.
/// α_sgn(1) or α_p(45) from Fig. 1/2.
struct Event {
  Symbol Name;
  Value Arg;

  friend bool operator==(const Event &A, const Event &B) {
    return A.Name == B.Name && A.Arg == B.Arg;
  }
  friend bool operator!=(const Event &A, const Event &B) { return !(A == B); }
  friend bool operator<(const Event &A, const Event &B) {
    if (A.Name != B.Name)
      return A.Name < B.Name;
    return A.Arg < B.Arg;
  }

  size_t hash() const { return hashAll(Name.id(), Arg.hash()); }

  std::string str(const StringInterner &Interner) const;
};

/// Direction of a communication action on a channel.
enum class Polarity : uint8_t {
  Input,  ///< a — receive on channel a (external-choice guards).
  Output, ///< ā — send on channel a (internal-choice guards).
};

/// A visible communication action: a channel name plus a polarity.
struct CommAction {
  Symbol Channel;
  Polarity Pol = Polarity::Input;

  static CommAction input(Symbol Ch) { return {Ch, Polarity::Input}; }
  static CommAction output(Symbol Ch) { return {Ch, Polarity::Output}; }

  bool isInput() const { return Pol == Polarity::Input; }
  bool isOutput() const { return Pol == Polarity::Output; }

  /// The complementary action ("co-action"): co(a) = ā, co(ā) = a.
  CommAction complement() const {
    return {Channel, isInput() ? Polarity::Output : Polarity::Input};
  }

  friend bool operator==(CommAction A, CommAction B) {
    return A.Channel == B.Channel && A.Pol == B.Pol;
  }
  friend bool operator!=(CommAction A, CommAction B) { return !(A == B); }
  friend bool operator<(CommAction A, CommAction B) {
    if (A.Channel != B.Channel)
      return A.Channel < B.Channel;
    return static_cast<int>(A.Pol) < static_cast<int>(B.Pol);
  }

  size_t hash() const {
    return hashAll(Channel.id(), static_cast<uint32_t>(Pol));
  }

  std::string str(const StringInterner &Interner) const;
};

/// An instantiated policy reference ϕ(v1,…,vn), e.g. ϕ({s1},45,100).
///
/// The history-expression layer treats policies opaquely — a name plus
/// closed argument values; the policy layer resolves them to usage-automaton
/// instances. Set-valued parameters are flattened to a sorted value list per
/// argument.
struct PolicyRef {
  Symbol Name;
  /// Each argument is a (sorted, duplicate-free) list of values; scalar
  /// arguments are singleton lists, set arguments list their elements.
  std::vector<std::vector<Value>> Args;

  /// The always-satisfied policy ∅ used by requests with no constraint.
  bool isTrivial() const { return !Name.isValid(); }

  friend bool operator==(const PolicyRef &A, const PolicyRef &B) {
    return A.Name == B.Name && A.Args == B.Args;
  }
  friend bool operator!=(const PolicyRef &A, const PolicyRef &B) {
    return !(A == B);
  }
  friend bool operator<(const PolicyRef &A, const PolicyRef &B) {
    if (A.Name != B.Name)
      return A.Name < B.Name;
    return A.Args < B.Args;
  }

  size_t hash() const {
    size_t Seed = hashAll(Name.id());
    for (const auto &Arg : Args) {
      hashCombine(Seed, Arg.size());
      for (const Value &V : Arg)
        hashCombine(Seed, V.hash());
    }
    return Seed;
  }

  std::string str(const StringInterner &Interner) const;
};

/// Identifier of a service request r ∈ Req (the r in open_{r,ϕ}).
using RequestId = uint32_t;

/// Kind discriminator for transition labels.
enum class LabelKind : uint8_t {
  Event,      ///< α — access event.
  Input,      ///< a — receive.
  Output,     ///< ā — send.
  Tau,        ///< τ — internal synchronization.
  Open,       ///< open_{r,ϕ} — session opening.
  Close,      ///< close_{r,ϕ} — session closing.
  FrameOpen,  ///< ⌊ϕ — policy framing opens.
  FrameClose, ///< ⌋ϕ — policy framing closes.
};

/// A transition label λ ∈ Comm ∪ Ev ∪ Frm.
class Label {
public:
  static Label event(Event Ev) {
    Label L(LabelKind::Event);
    L.Ev = Ev;
    return L;
  }
  static Label comm(CommAction A) {
    Label L(A.isInput() ? LabelKind::Input : LabelKind::Output);
    L.Channel = A.Channel;
    return L;
  }
  static Label tau() { return Label(LabelKind::Tau); }
  static Label open(RequestId R, PolicyRef Policy) {
    Label L(LabelKind::Open);
    L.Request = R;
    L.Policy = std::move(Policy);
    return L;
  }
  static Label close(RequestId R, PolicyRef Policy) {
    Label L(LabelKind::Close);
    L.Request = R;
    L.Policy = std::move(Policy);
    return L;
  }
  static Label frameOpen(PolicyRef Policy) {
    Label L(LabelKind::FrameOpen);
    L.Policy = std::move(Policy);
    return L;
  }
  static Label frameClose(PolicyRef Policy) {
    Label L(LabelKind::FrameClose);
    L.Policy = std::move(Policy);
    return L;
  }

  LabelKind kind() const { return Kind; }
  bool isEvent() const { return Kind == LabelKind::Event; }
  bool isComm() const {
    return Kind == LabelKind::Input || Kind == LabelKind::Output;
  }
  bool isTau() const { return Kind == LabelKind::Tau; }
  bool isOpen() const { return Kind == LabelKind::Open; }
  bool isClose() const { return Kind == LabelKind::Close; }
  bool isFraming() const {
    return Kind == LabelKind::FrameOpen || Kind == LabelKind::FrameClose;
  }

  /// True for labels that are appended to the execution history η
  /// (γ ∈ Ev ∪ Frm in rule Access).
  bool isHistoryRelevant() const { return isEvent() || isFraming(); }

  const Event &asEvent() const {
    assert(isEvent() && "not an event label");
    return Ev;
  }
  CommAction asComm() const {
    assert(isComm() && "not a communication label");
    return {Channel, Kind == LabelKind::Input ? Polarity::Input
                                              : Polarity::Output};
  }
  RequestId request() const {
    assert((isOpen() || isClose()) && "no request on this label");
    return Request;
  }
  const PolicyRef &policy() const {
    assert((isOpen() || isClose() || isFraming()) &&
           "no policy on this label");
    return Policy;
  }

  friend bool operator==(const Label &A, const Label &B) {
    if (A.Kind != B.Kind)
      return false;
    switch (A.Kind) {
    case LabelKind::Event:
      return A.Ev == B.Ev;
    case LabelKind::Input:
    case LabelKind::Output:
      return A.Channel == B.Channel;
    case LabelKind::Tau:
      return true;
    case LabelKind::Open:
    case LabelKind::Close:
      return A.Request == B.Request && A.Policy == B.Policy;
    case LabelKind::FrameOpen:
    case LabelKind::FrameClose:
      return A.Policy == B.Policy;
    }
    return false;
  }
  friend bool operator!=(const Label &A, const Label &B) { return !(A == B); }

  size_t hash() const {
    size_t Seed = static_cast<size_t>(Kind);
    switch (Kind) {
    case LabelKind::Event:
      hashCombine(Seed, Ev.hash());
      break;
    case LabelKind::Input:
    case LabelKind::Output:
      hashCombine(Seed, Channel.id());
      break;
    case LabelKind::Tau:
      break;
    case LabelKind::Open:
    case LabelKind::Close:
      hashCombine(Seed, Request);
      hashCombine(Seed, Policy.hash());
      break;
    case LabelKind::FrameOpen:
    case LabelKind::FrameClose:
      hashCombine(Seed, Policy.hash());
      break;
    }
    return Seed;
  }

  std::string str(const StringInterner &Interner) const;

private:
  explicit Label(LabelKind K) : Kind(K) {}

  LabelKind Kind;
  Event Ev;
  Symbol Channel;
  RequestId Request = 0;
  PolicyRef Policy;
};

} // namespace hist
} // namespace sus

namespace std {
template <> struct hash<sus::hist::Label> {
  size_t operator()(const sus::hist::Label &L) const noexcept {
    return L.hash();
  }
};
template <> struct hash<sus::hist::Event> {
  size_t operator()(const sus::hist::Event &E) const noexcept {
    return E.hash();
  }
};
template <> struct hash<sus::hist::CommAction> {
  size_t operator()(const sus::hist::CommAction &A) const noexcept {
    return A.hash();
  }
};
} // namespace std

#endif // SUS_HIST_ACTION_H
