//===- hist/Action.cpp - Events, actions and transition labels -----------===//

#include "hist/Action.h"

using namespace sus;
using namespace sus::hist;

std::string Event::str(const StringInterner &Interner) const {
  std::string Out = "alpha_";
  Out += Interner.text(Name);
  if (!Arg.isNone()) {
    Out += "(";
    Out += Arg.str(Interner);
    Out += ")";
  }
  return Out;
}

std::string CommAction::str(const StringInterner &Interner) const {
  std::string Out(Interner.text(Channel));
  if (isOutput())
    Out += "!";
  else
    Out += "?";
  return Out;
}

std::string PolicyRef::str(const StringInterner &Interner) const {
  if (isTrivial())
    return "@";
  std::string Out(Interner.text(Name));
  if (Args.empty())
    return Out;
  Out += "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I != 0)
      Out += ",";
    const auto &Arg = Args[I];
    if (Arg.size() == 1) {
      Out += Arg.front().str(Interner);
      continue;
    }
    Out += "{";
    for (size_t J = 0; J < Arg.size(); ++J) {
      if (J != 0)
        Out += ",";
      Out += Arg[J].str(Interner);
    }
    Out += "}";
  }
  Out += ")";
  return Out;
}

std::string Label::str(const StringInterner &Interner) const {
  switch (Kind) {
  case LabelKind::Event:
    return Ev.str(Interner);
  case LabelKind::Input:
  case LabelKind::Output:
    return asComm().str(Interner);
  case LabelKind::Tau:
    return "tau";
  case LabelKind::Open:
    return "open_" + std::to_string(Request) + ":" + Policy.str(Interner);
  case LabelKind::Close:
    return "close_" + std::to_string(Request) + ":" + Policy.str(Interner);
  case LabelKind::FrameOpen:
    return "[" + Policy.str(Interner);
  case LabelKind::FrameClose:
    return Policy.str(Interner) + "]";
  }
  return "?";
}
