//===- hist/Printer.cpp - Rendering history expressions ------------------===//

#include "hist/Printer.h"

#include "support/Casting.h"
#include "support/DotWriter.h"

#include <cassert>
#include <sstream>

using namespace sus;
using namespace sus::hist;

namespace {

/// Precedence levels, loosest to tightest.
enum Level : int {
  LevelExpr = 0,   // mu
  LevelChoice = 1, // + / <+>
  LevelSeq = 2,    // ;
  LevelPrefix = 3, // a? . H
  LevelPrimary = 4,
};

int levelOf(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Mu:
    return LevelExpr;
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice:
    return cast<ChoiceExpr>(E)->numBranches() > 1 ? LevelChoice
                                                  : LevelPrefix;
  case ExprKind::Seq:
    return LevelSeq;
  default:
    return LevelPrimary;
  }
}

std::string printValue(const StringInterner &Interner, const Value &V) {
  return V.str(Interner);
}

std::string printPolicyRef(const StringInterner &Interner,
                           const PolicyRef &P) {
  assert(!P.isTrivial() && "trivial policy has no surface form");
  std::string Out(Interner.text(P.Name));
  if (P.Args.empty())
    return Out;
  Out += "(";
  for (size_t I = 0; I < P.Args.size(); ++I) {
    if (I != 0)
      Out += ",";
    const auto &Arg = P.Args[I];
    if (Arg.size() == 1 && !Arg.front().isNone()) {
      Out += printValue(Interner, Arg.front());
      continue;
    }
    Out += "{";
    for (size_t J = 0; J < Arg.size(); ++J) {
      if (J != 0)
        Out += ",";
      Out += printValue(Interner, Arg[J]);
    }
    Out += "}";
  }
  Out += ")";
  return Out;
}

class ExprPrinter {
public:
  explicit ExprPrinter(const HistContext &Ctx) : Interner(Ctx.interner()) {}

  void print(const Expr *E, int MinLevel, std::string &Out) {
    bool Parens = levelOf(E) < MinLevel;
    if (Parens)
      Out += "(";
    printBare(E, Out);
    if (Parens)
      Out += ")";
  }

private:
  void printBare(const Expr *E, std::string &Out) {
    switch (E->kind()) {
    case ExprKind::Empty:
      Out += "eps";
      return;
    case ExprKind::Var:
      Out += Interner.text(cast<VarExpr>(E)->name());
      return;
    case ExprKind::Mu: {
      const auto *M = cast<MuExpr>(E);
      Out += "mu ";
      Out += Interner.text(M->var());
      Out += " . ";
      print(M->body(), LevelExpr, Out);
      return;
    }
    case ExprKind::Event: {
      const Event &Ev = cast<EventExpr>(E)->event();
      Out += "%";
      Out += Interner.text(Ev.Name);
      if (!Ev.Arg.isNone()) {
        Out += "(";
        Out += printValue(Interner, Ev.Arg);
        Out += ")";
      }
      return;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      print(S->head(), LevelPrefix, Out);
      Out += "; ";
      // Sequences are right-nested; print the tail at seq level so chains
      // render flat.
      print(S->tail(), LevelSeq, Out);
      return;
    }
    case ExprKind::ExtChoice:
    case ExprKind::IntChoice: {
      const auto *C = cast<ChoiceExpr>(E);
      bool IsExt = E->kind() == ExprKind::ExtChoice;
      bool First = true;
      for (const ChoiceBranch &B : C->branches()) {
        if (!First)
          Out += IsExt ? " + " : " <+> ";
        First = false;
        Out += Interner.text(B.Guard.Channel);
        Out += B.Guard.isInput() ? "?" : "!";
        if (!B.Body->isEmpty()) {
          Out += " . ";
          print(B.Body, LevelPrefix, Out);
        }
      }
      return;
    }
    case ExprKind::Request: {
      const auto *R = cast<RequestExpr>(E);
      Out += "open ";
      Out += std::to_string(R->request());
      if (!R->policy().isTrivial()) {
        Out += " @ ";
        Out += printPolicyRef(Interner, R->policy());
      }
      Out += " { ";
      print(R->body(), LevelExpr, Out);
      Out += " }";
      return;
    }
    case ExprKind::Framing: {
      const auto *F = cast<FramingExpr>(E);
      Out += printPolicyRef(Interner, F->policy());
      Out += "[ ";
      print(F->body(), LevelExpr, Out);
      Out += " ]";
      return;
    }
    case ExprKind::CloseMark: {
      const auto *C = cast<CloseMarkExpr>(E);
      Out += "close ";
      Out += std::to_string(C->request());
      if (!C->policy().isTrivial()) {
        Out += " @ ";
        Out += printPolicyRef(Interner, C->policy());
      }
      return;
    }
    case ExprKind::FrameOpen: {
      Out += "fopen ";
      Out += printPolicyRef(Interner, cast<FrameOpenExpr>(E)->policy());
      return;
    }
    case ExprKind::FrameClose: {
      Out += "fclose ";
      Out += printPolicyRef(Interner, cast<FrameCloseExpr>(E)->policy());
      return;
    }
    }
  }

  const StringInterner &Interner;
};

} // namespace

std::string sus::hist::print(const HistContext &Ctx, const Expr *E) {
  std::string Out;
  ExprPrinter P(Ctx);
  P.print(E, LevelExpr, Out);
  return Out;
}

void sus::hist::print(const HistContext &Ctx, const Expr *E,
                      std::ostream &OS) {
  OS << print(Ctx, E);
}

void sus::hist::printDot(const HistContext &Ctx, const TransitionSystem &Ts,
                         std::ostream &OS, const std::string &Name) {
  DotWriter W(Name);
  for (TransitionSystem::StateIndex I = 0; I < Ts.numStates(); ++I) {
    std::string Id = "s" + std::to_string(I);
    std::string ShortLabel = print(Ctx, Ts.state(I));
    if (ShortLabel.size() > 40)
      ShortLabel = ShortLabel.substr(0, 37) + "...";
    W.node(Id, ShortLabel,
           Ts.state(I)->isEmpty() ? "shape=doublecircle" : "shape=circle");
  }
  for (TransitionSystem::StateIndex I = 0; I < Ts.numStates(); ++I)
    for (const TransitionSystem::Edge &E : Ts.edges(I))
      W.edge("s" + std::to_string(I), "s" + std::to_string(E.Target),
             E.L.str(Ctx.interner()));
  W.print(OS);
}
