//===- hist/Bisim.cpp - Strong bisimulation on expression LTSs ------------===//

#include "hist/Bisim.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace sus;
using namespace sus::hist;

bool sus::hist::bisimilar(HistContext &Ctx, const Expr *A, const Expr *B,
                          size_t MaxStates) {
  TransitionSystem TsA(Ctx, A, MaxStates);
  TransitionSystem TsB(Ctx, B, MaxStates);
  if (!TsA.isComplete() || !TsB.isComplete())
    return false;

  // Disjoint union: indices [0, |A|) from A, [|A|, |A|+|B|) from B.
  size_t N = TsA.numStates() + TsB.numStates();
  auto EdgesOf = [&](size_t S) {
    std::vector<std::pair<Label, size_t>> Out;
    if (S < TsA.numStates()) {
      for (const TransitionSystem::Edge &E :
           TsA.edges(static_cast<uint32_t>(S)))
        Out.push_back({E.L, E.Target});
    } else {
      for (const TransitionSystem::Edge &E :
           TsB.edges(static_cast<uint32_t>(S - TsA.numStates())))
        Out.push_back({E.L, E.Target + TsA.numStates()});
    }
    return Out;
  };

  // Partition refinement on signatures. Labels are interned into dense
  // codes for deterministic signatures.
  std::vector<Label> LabelTable;
  auto LabelCode = [&](const Label &L) -> size_t {
    for (size_t I = 0; I < LabelTable.size(); ++I)
      if (LabelTable[I] == L)
        return I;
    LabelTable.push_back(L);
    return LabelTable.size() - 1;
  };

  std::vector<unsigned> Class(N, 0);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::map<std::vector<size_t>, unsigned> SigIndex;
    std::vector<unsigned> NewClass(N, 0);
    for (size_t S = 0; S < N; ++S) {
      // Signature: current class + sorted set of (label, target class).
      std::vector<size_t> Sig;
      Sig.push_back(Class[S]);
      std::vector<std::pair<size_t, size_t>> Moves;
      for (auto &[L, T] : EdgesOf(S))
        Moves.push_back({LabelCode(L), Class[T]});
      std::sort(Moves.begin(), Moves.end());
      Moves.erase(std::unique(Moves.begin(), Moves.end()), Moves.end());
      for (auto &[LC, TC] : Moves) {
        Sig.push_back(LC + 1);
        Sig.push_back(TC);
      }
      auto [It, Inserted] = SigIndex.emplace(std::move(Sig), SigIndex.size());
      (void)Inserted;
      NewClass[S] = It->second;
    }
    for (size_t S = 0; S < N; ++S)
      if (NewClass[S] != Class[S])
        Changed = true;
    Class = std::move(NewClass);
  }

  return Class[TsA.rootIndex()] == Class[TsA.numStates() + TsB.rootIndex()];
}
