//===- hist/WellFormed.h - Static well-formedness checks --------*- C++ -*-===//
///
/// \file
/// Checks the paper's syntactic restrictions on history expressions:
/// closedness, tail recursion, and recursion guarded by communication
/// actions (§3: "restricted to be tail-recursive and guarded by
/// communication actions ā or a"). The guard must be a *communication*
/// action so that the projection H! (§4) stays guarded too.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_WELLFORMED_H
#define SUS_HIST_WELLFORMED_H

#include "hist/Expr.h"
#include "hist/HistContext.h"
#include "support/Diagnostics.h"

namespace sus {
namespace hist {

/// Why an expression is ill-formed.
enum class WellFormedIssueKind {
  FreeVariable,     ///< An unbound recursion variable occurs.
  NonTailRecursion, ///< A µ-variable occurs in non-tail position.
  UnguardedRecursion, ///< A µ-variable is not under a communication prefix.
};

/// One well-formedness violation.
struct WellFormedIssue {
  WellFormedIssueKind Kind;
  Symbol Var; ///< The offending recursion variable.
};

/// Collects every violation in \p E. Empty result means well-formed.
std::vector<WellFormedIssue> wellFormedIssues(HistContext &Ctx,
                                              const Expr *E);

/// True if \p E is closed, tail-recursive and comm-guarded.
bool isWellFormed(HistContext &Ctx, const Expr *E);

/// Like wellFormedIssues, but reports into \p Diags; returns true when
/// well-formed.
bool checkWellFormed(HistContext &Ctx, const Expr *E,
                     DiagnosticEngine &Diags);

} // namespace hist
} // namespace sus

#endif // SUS_HIST_WELLFORMED_H
