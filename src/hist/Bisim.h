//===- hist/Bisim.h - Strong bisimulation on expression LTSs ----*- C++ -*-===//
///
/// \file
/// Strong bisimilarity between two history expressions' (finite)
/// transition systems, via naive partition refinement on the disjoint
/// union. Used to relate differently-shaped but behaviourally equal
/// expressions — e.g. an effect extracted by the λ type-and-effect system
/// versus the hand-written Fig. 2 expression.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_BISIM_H
#define SUS_HIST_BISIM_H

#include "hist/HistContext.h"
#include "hist/TransitionSystem.h"

namespace sus {
namespace hist {

/// True if \p A and \p B are strongly bisimilar (same branching behaviour
/// over identical labels). Both LTSs must be finite (well-formed input).
bool bisimilar(HistContext &Ctx, const Expr *A, const Expr *B,
               size_t MaxStates = 1 << 18);

} // namespace hist
} // namespace sus

#endif // SUS_HIST_BISIM_H
