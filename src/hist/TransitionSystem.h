//===- hist/TransitionSystem.h - Reachable LTS of an expression -*- C++ -*-===//
///
/// \file
/// Materializes the labelled transition system reachable from a history
/// expression under the stand-alone semantics. For well-formed expressions
/// this is finite (guarded tail recursion + hash-consing), which is the
/// property §4 relies on: "the transition system of H! is finite state".
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_TRANSITIONSYSTEM_H
#define SUS_HIST_TRANSITIONSYSTEM_H

#include "hist/Derive.h"
#include "hist/HistContext.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sus {
namespace hist {

/// The reachable LTS of one expression. States are identified both by
/// dense indices and by their hash-consed expression pointer.
class TransitionSystem {
public:
  using StateIndex = uint32_t;

  struct Edge {
    Label L;
    StateIndex Target;
  };

  /// Builds the LTS reachable from \p Root, exploring at most
  /// \p MaxStates states.
  TransitionSystem(HistContext &Ctx, const Expr *Root,
                   size_t MaxStates = 1 << 20);

  /// False if exploration was truncated by MaxStates (ill-formed input).
  bool isComplete() const { return Complete; }

  size_t numStates() const { return States.size(); }
  size_t numEdges() const { return EdgeCount; }

  StateIndex rootIndex() const { return 0; }
  const Expr *state(StateIndex I) const { return States[I]; }
  const std::vector<Edge> &edges(StateIndex I) const { return Out[I]; }

  /// The dense index of a reachable expression; asserts on misses.
  StateIndex indexOf(const Expr *E) const;

  /// True if \p E is a reachable state of this LTS.
  bool contains(const Expr *E) const { return Index.count(E) != 0; }

private:
  std::vector<const Expr *> States;
  std::vector<std::vector<Edge>> Out;
  std::unordered_map<const Expr *, StateIndex> Index;
  size_t EdgeCount = 0;
  bool Complete = true;
};

} // namespace hist
} // namespace sus

#endif // SUS_HIST_TRANSITIONSYSTEM_H
