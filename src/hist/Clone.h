//===- hist/Clone.h - Cross-context expression cloning ----------*- C++ -*-===//
///
/// \file
/// Structural cloning of history expressions from one HistContext into
/// another. HistContext (and the StringInterner backing it) is documented
/// single-threaded, so parallel verification shards each own a private
/// context; cloning is how a shard imports the client and the repository.
///
/// Symbols are mapped *by text* through the target interner. When the
/// target interner was seeded from the source (StringInterner::seedFrom),
/// the mapping is the identity on ids, so every canonical Symbol-ordered
/// structure (choice-branch sorting, transition enumeration) is preserved
/// bit-for-bit — the property the verifier's determinism guarantee rests
/// on.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_CLONE_H
#define SUS_HIST_CLONE_H

#include "hist/Expr.h"
#include "hist/HistContext.h"

namespace sus {
namespace hist {

/// Rebuilds \p E (owned by the context behind \p From) inside \p To.
/// Shared subterms are cloned once (the clone respects hash-consing).
const Expr *cloneExpr(HistContext &To, const StringInterner &From,
                      const Expr *E);

/// Maps a symbol of \p From to the equal-text symbol of \p To's interner.
Symbol cloneSymbol(HistContext &To, const StringInterner &From, Symbol S);

/// Maps a policy reference across contexts (name and named arguments).
PolicyRef clonePolicyRef(HistContext &To, const StringInterner &From,
                         const PolicyRef &Ref);

} // namespace hist
} // namespace sus

#endif // SUS_HIST_CLONE_H
