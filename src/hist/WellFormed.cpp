//===- hist/WellFormed.cpp - Static well-formedness checks ---------------===//

#include "hist/WellFormed.h"

#include "support/Casting.h"

#include <algorithm>
#include <set>

using namespace sus;
using namespace sus::hist;

namespace {

/// Returns true if every execution of \p E performs at least one
/// communication action before terminating or recurring. Used to decide
/// whether a sequence tail is comm-guarded by its head.
bool definitelyCommunicates(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
  case ExprKind::Event:
  case ExprKind::CloseMark:
  case ExprKind::FrameOpen:
  case ExprKind::FrameClose:
    return false;
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice:
    return true;
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    return definitelyCommunicates(S->head()) ||
           definitelyCommunicates(S->tail());
  }
  case ExprKind::Mu:
    return definitelyCommunicates(cast<MuExpr>(E)->body());
  case ExprKind::Request:
    return definitelyCommunicates(cast<RequestExpr>(E)->body());
  case ExprKind::Framing:
    return definitelyCommunicates(cast<FramingExpr>(E)->body());
  }
  return false;
}

class Checker {
public:
  explicit Checker(std::vector<WellFormedIssue> &Issues) : Issues(Issues) {}

  /// Walks \p E. \p BoundTail holds the µ-variables for which the current
  /// position is a legal tail position; \p BoundGuarded those whose
  /// occurrences are currently under a communication prefix; \p Bound all
  /// in-scope µ-variables.
  void visit(const Expr *E, std::set<Symbol> Bound,
             std::set<Symbol> TailOk, std::set<Symbol> Guarded) {
    switch (E->kind()) {
    case ExprKind::Empty:
    case ExprKind::Event:
    case ExprKind::CloseMark:
    case ExprKind::FrameOpen:
    case ExprKind::FrameClose:
      return;

    case ExprKind::Var: {
      Symbol Name = cast<VarExpr>(E)->name();
      if (!Bound.count(Name)) {
        addIssue(WellFormedIssueKind::FreeVariable, Name);
        return;
      }
      if (!TailOk.count(Name))
        addIssue(WellFormedIssueKind::NonTailRecursion, Name);
      if (!Guarded.count(Name))
        addIssue(WellFormedIssueKind::UnguardedRecursion, Name);
      return;
    }

    case ExprKind::Mu: {
      const auto *M = cast<MuExpr>(E);
      Bound.insert(M->var());
      TailOk.insert(M->var());
      // A fresh µ-variable starts unguarded; an enclosing prefix does not
      // guard the *next* iteration of this µ.
      Guarded.erase(M->var());
      visit(M->body(), std::move(Bound), std::move(TailOk),
            std::move(Guarded));
      return;
    }

    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      // Nothing is in tail position inside the head.
      visit(S->head(), Bound, {}, Guarded);
      // The tail inherits guardedness if the head always communicates.
      std::set<Symbol> TailGuarded = Guarded;
      if (definitelyCommunicates(S->head()))
        TailGuarded = Bound;
      visit(S->tail(), std::move(Bound), std::move(TailOk),
            std::move(TailGuarded));
      return;
    }

    case ExprKind::ExtChoice:
    case ExprKind::IntChoice: {
      // Branch bodies are under a communication prefix: everything bound
      // becomes guarded.
      for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
        visit(B.Body, Bound, TailOk, Bound);
      return;
    }

    case ExprKind::Request: {
      // A recursion variable inside a request body would jump out of the
      // session (close_{r,ϕ} still follows): not a tail position.
      const auto *R = cast<RequestExpr>(E);
      visit(R->body(), std::move(Bound), {}, std::move(Guarded));
      return;
    }

    case ExprKind::Framing: {
      // Same reasoning: ⌋ϕ follows the body.
      const auto *F = cast<FramingExpr>(E);
      visit(F->body(), std::move(Bound), {}, std::move(Guarded));
      return;
    }
    }
  }

private:
  void addIssue(WellFormedIssueKind Kind, Symbol Var) {
    // Deduplicate: report each (kind, var) once.
    for (const WellFormedIssue &I : Issues)
      if (I.Kind == Kind && I.Var == Var)
        return;
    Issues.push_back({Kind, Var});
  }

  std::vector<WellFormedIssue> &Issues;
};

} // namespace

std::vector<WellFormedIssue>
sus::hist::wellFormedIssues(HistContext &Ctx, const Expr *E) {
  (void)Ctx;
  std::vector<WellFormedIssue> Issues;
  Checker C(Issues);
  C.visit(E, {}, {}, {});
  return Issues;
}

bool sus::hist::isWellFormed(HistContext &Ctx, const Expr *E) {
  return wellFormedIssues(Ctx, E).empty();
}

bool sus::hist::checkWellFormed(HistContext &Ctx, const Expr *E,
                                DiagnosticEngine &Diags) {
  std::vector<WellFormedIssue> Issues = wellFormedIssues(Ctx, E);
  for (const WellFormedIssue &I : Issues) {
    std::string Name(Ctx.interner().text(I.Var));
    switch (I.Kind) {
    case WellFormedIssueKind::FreeVariable:
      Diags.error("free recursion variable '" + Name + "'");
      break;
    case WellFormedIssueKind::NonTailRecursion:
      Diags.error("recursion variable '" + Name +
                  "' occurs in non-tail position");
      break;
    case WellFormedIssueKind::UnguardedRecursion:
      Diags.error("recursion variable '" + Name +
                  "' is not guarded by a communication action");
      break;
    }
  }
  return Issues.empty();
}
