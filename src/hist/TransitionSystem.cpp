//===- hist/TransitionSystem.cpp - Reachable LTS of an expression --------===//

#include "hist/TransitionSystem.h"

#include <cassert>
#include <deque>

using namespace sus;
using namespace sus::hist;

TransitionSystem::TransitionSystem(HistContext &Ctx, const Expr *Root,
                                   size_t MaxStates) {
  std::deque<const Expr *> Work;

  auto InternState = [&](const Expr *E) -> StateIndex {
    auto It = Index.find(E);
    if (It != Index.end())
      return It->second;
    StateIndex I = static_cast<StateIndex>(States.size());
    States.push_back(E);
    Out.emplace_back();
    Index.emplace(E, I);
    Work.push_back(E);
    return I;
  };

  InternState(Root);
  while (!Work.empty()) {
    const Expr *E = Work.front();
    Work.pop_front();
    StateIndex From = Index.at(E);
    for (Transition &T : derive(Ctx, E)) {
      if (States.size() >= MaxStates && !Index.count(T.Target)) {
        Complete = false;
        continue;
      }
      // Sequence the interning before indexing Out: InternState may grow
      // Out and invalidate references into it.
      StateIndex To = InternState(T.Target);
      Out[From].push_back({T.L, To});
      ++EdgeCount;
    }
  }
}

TransitionSystem::StateIndex TransitionSystem::indexOf(const Expr *E) const {
  auto It = Index.find(E);
  assert(It != Index.end() && "expression is not a reachable state");
  return It->second;
}
