//===- hist/TraceEquiv.cpp - Trace equivalence of expressions -------------===//

#include "hist/TraceEquiv.h"

#include "automata/Ops.h"

#include <algorithm>

using namespace sus;
using namespace sus::hist;

automata::SymbolCode LabelTable::code(const Label &L) {
  for (size_t I = 0; I < Labels.size(); ++I)
    if (Labels[I] == L)
      return static_cast<automata::SymbolCode>(I);
  Labels.push_back(L);
  return static_cast<automata::SymbolCode>(Labels.size() - 1);
}

automata::Nfa sus::hist::toNfa(HistContext &Ctx, const Expr *E,
                               LabelTable &Table, size_t MaxStates) {
  TransitionSystem Ts(Ctx, E, MaxStates);
  automata::Nfa N;
  for (size_t I = 0; I < Ts.numStates(); ++I)
    N.addState(/*Accepting=*/true);
  N.setStart(Ts.rootIndex());
  for (TransitionSystem::StateIndex I = 0; I < Ts.numStates(); ++I)
    for (const TransitionSystem::Edge &Edge :
         Ts.edges(static_cast<TransitionSystem::StateIndex>(I)))
      N.addEdge(I, Table.code(Edge.L), Edge.Target);
  return N;
}

bool sus::hist::canPerform(HistContext &Ctx, const Expr *E,
                           const std::vector<Label> &Word) {
  std::vector<const Expr *> Current = {E};
  for (const Label &L : Word) {
    std::vector<const Expr *> Next;
    for (const Expr *S : Current)
      for (const Transition &T : derive(Ctx, S))
        if (T.L == L)
          Next.push_back(T.Target);
    std::sort(Next.begin(), Next.end());
    Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
    if (Next.empty())
      return false;
    Current = std::move(Next);
  }
  return true;
}

bool sus::hist::traceEquivalent(HistContext &Ctx, const Expr *A,
                                const Expr *B, size_t MaxStates) {
  LabelTable Table;
  automata::Nfa NA = toNfa(Ctx, A, Table, MaxStates);
  automata::Nfa NB = toNfa(Ctx, B, Table, MaxStates);
  return automata::equivalent(automata::determinize(NA),
                              automata::determinize(NB));
}
