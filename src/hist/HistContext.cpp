//===- hist/HistContext.cpp - Hash-consing factory for Expr --------------===//

#include "hist/HistContext.h"

#include "support/HashUtil.h"

#include <algorithm>
#include <cassert>

using namespace sus;
using namespace sus::hist;

//===----------------------------------------------------------------------===//
// Profile encoding
//===----------------------------------------------------------------------===//

namespace {

uint64_t encodePointer(const Expr *E) {
  return reinterpret_cast<uint64_t>(E);
}

void encodeValue(std::vector<uint64_t> &P, const Value &V) {
  P.push_back(static_cast<uint64_t>(V.kind()));
  switch (V.kind()) {
  case Value::Kind::None:
    break;
  case Value::Kind::Int:
    P.push_back(static_cast<uint64_t>(V.asInt()));
    break;
  case Value::Kind::Name:
    P.push_back(V.asName().id());
    break;
  }
}

void encodePolicy(std::vector<uint64_t> &P, const PolicyRef &Policy) {
  P.push_back(Policy.Name.isValid() ? Policy.Name.id() + 1 : 0);
  P.push_back(Policy.Args.size());
  for (const auto &Arg : Policy.Args) {
    P.push_back(Arg.size());
    for (const Value &V : Arg)
      encodeValue(P, V);
  }
}

} // namespace

size_t HistContext::profileHash(const Profile &P) {
  size_t Seed = P.size();
  for (uint64_t V : P)
    hashCombineValue(Seed, V);
  return Seed;
}

size_t HistContext::ProfileHash::operator()(const Profile &P) const noexcept {
  return profileHash(P);
}

const Expr *HistContext::lookup(const Profile &P) const {
  auto It = Unique.find(P);
  return It == Unique.end() ? nullptr : It->second;
}

void HistContext::remember(Profile P, const Expr *E) {
  Unique.emplace(std::move(P), E);
}

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

const Expr *HistContext::empty() {
  Profile P = {static_cast<uint64_t>(ExprKind::Empty)};
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E = Nodes.create<EmptyExpr>(profileHash(P));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::var(Symbol Name) {
  assert(Name.isValid() && "variable requires a name");
  Profile P = {static_cast<uint64_t>(ExprKind::Var), Name.id()};
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E = Nodes.create<VarExpr>(Name, profileHash(P));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::mu(Symbol Var, const Expr *Body) {
  assert(Var.isValid() && "mu requires a variable name");
  if (!freeVars(Body).count(Var))
    return Body;
  Profile P = {static_cast<uint64_t>(ExprKind::Mu), Var.id(),
               encodePointer(Body)};
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E = Nodes.create<MuExpr>(Var, Body, profileHash(P));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::event(Event Ev) {
  assert(Ev.Name.isValid() && "event requires a name");
  Profile P = {static_cast<uint64_t>(ExprKind::Event), Ev.Name.id()};
  encodeValue(P, Ev.Arg);
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E = Nodes.create<EventExpr>(Ev, profileHash(P));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::seq(const Expr *Head, const Expr *Tail) {
  assert(Head && Tail && "seq of null expression");
  // Structural congruence: ε·H ≡ H ≡ H·ε.
  if (Head->isEmpty())
    return Tail;
  if (Tail->isEmpty())
    return Head;
  // Keep sequences right-nested: (A·B)·C = A·(B·C).
  if (const auto *HeadSeq = dyn_cast<SeqExpr>(Head))
    return seq(HeadSeq->head(), seq(HeadSeq->tail(), Tail));

  Profile P = {static_cast<uint64_t>(ExprKind::Seq), encodePointer(Head),
               encodePointer(Tail)};
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E = Nodes.create<SeqExpr>(Head, Tail, profileHash(P));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::seq(const std::vector<const Expr *> &Parts) {
  const Expr *Result = empty();
  for (auto It = Parts.rbegin(); It != Parts.rend(); ++It)
    Result = seq(*It, Result);
  return Result;
}

const Expr *HistContext::makeChoice(ExprKind Kind,
                                    std::vector<ChoiceBranch> Branches) {
  assert(!Branches.empty() && "choice requires at least one branch");
  // Canonicalize: sort by (guard, body identity) and drop duplicates.
  std::sort(Branches.begin(), Branches.end(),
            [](const ChoiceBranch &A, const ChoiceBranch &B) {
              if (A.Guard != B.Guard)
                return A.Guard < B.Guard;
              return A.Body < B.Body;
            });
  Branches.erase(std::unique(Branches.begin(), Branches.end()),
                 Branches.end());

  Profile P = {static_cast<uint64_t>(Kind), Branches.size()};
  for (const ChoiceBranch &B : Branches) {
    P.push_back(B.Guard.Channel.id());
    P.push_back(static_cast<uint64_t>(B.Guard.Pol));
    P.push_back(encodePointer(B.Body));
  }
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E =
      Kind == ExprKind::ExtChoice
          ? static_cast<const Expr *>(Nodes.create<ExtChoiceExpr>(
                std::move(Branches), profileHash(P)))
          : static_cast<const Expr *>(Nodes.create<IntChoiceExpr>(
                std::move(Branches), profileHash(P)));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::extChoice(std::vector<ChoiceBranch> Branches) {
#ifndef NDEBUG
  for (const ChoiceBranch &B : Branches)
    assert(B.Guard.isInput() && "external choice guards must be inputs");
#endif
  return makeChoice(ExprKind::ExtChoice, std::move(Branches));
}

const Expr *HistContext::intChoice(std::vector<ChoiceBranch> Branches) {
#ifndef NDEBUG
  for (const ChoiceBranch &B : Branches)
    assert(B.Guard.isOutput() && "internal choice guards must be outputs");
#endif
  return makeChoice(ExprKind::IntChoice, std::move(Branches));
}

const Expr *HistContext::prefix(CommAction Guard, const Expr *Body) {
  std::vector<ChoiceBranch> Branches = {{Guard, Body}};
  return Guard.isInput() ? extChoice(std::move(Branches))
                         : intChoice(std::move(Branches));
}

const Expr *HistContext::request(RequestId Request, PolicyRef Policy,
                                 const Expr *Body) {
  Profile P = {static_cast<uint64_t>(ExprKind::Request), Request};
  encodePolicy(P, Policy);
  P.push_back(encodePointer(Body));
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E = Nodes.create<RequestExpr>(Request, std::move(Policy), Body,
                                            profileHash(P));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::framing(PolicyRef Policy, const Expr *Body) {
  Profile P = {static_cast<uint64_t>(ExprKind::Framing)};
  encodePolicy(P, Policy);
  P.push_back(encodePointer(Body));
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E =
      Nodes.create<FramingExpr>(std::move(Policy), Body, profileHash(P));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::closeMark(RequestId Request, PolicyRef Policy) {
  Profile P = {static_cast<uint64_t>(ExprKind::CloseMark), Request};
  encodePolicy(P, Policy);
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E = Nodes.create<CloseMarkExpr>(Request, std::move(Policy),
                                              profileHash(P));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::frameOpen(PolicyRef Policy) {
  Profile P = {static_cast<uint64_t>(ExprKind::FrameOpen)};
  encodePolicy(P, Policy);
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E =
      Nodes.create<FrameOpenExpr>(std::move(Policy), profileHash(P));
  remember(std::move(P), E);
  return E;
}

const Expr *HistContext::frameClose(PolicyRef Policy) {
  Profile P = {static_cast<uint64_t>(ExprKind::FrameClose)};
  encodePolicy(P, Policy);
  if (const Expr *E = lookup(P))
    return E;
  const Expr *E =
      Nodes.create<FrameCloseExpr>(std::move(Policy), profileHash(P));
  remember(std::move(P), E);
  return E;
}

//===----------------------------------------------------------------------===//
// Substitution and free variables
//===----------------------------------------------------------------------===//

namespace {

/// Recursive substitution with per-call memoization; shadowing µs stop it.
class Substituter {
public:
  Substituter(HistContext &Ctx, Symbol Var, const Expr *Replacement)
      : Ctx(Ctx), Var(Var), Replacement(Replacement) {}

  const Expr *visit(const Expr *E) {
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;
    const Expr *Result = compute(E);
    Memo.emplace(E, Result);
    return Result;
  }

private:
  const Expr *compute(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Empty:
    case ExprKind::Event:
    case ExprKind::CloseMark:
    case ExprKind::FrameOpen:
    case ExprKind::FrameClose:
      return E;
    case ExprKind::Var:
      return cast<VarExpr>(E)->name() == Var ? Replacement : E;
    case ExprKind::Mu: {
      const auto *M = cast<MuExpr>(E);
      if (M->var() == Var)
        return E; // Shadowed.
      return Ctx.mu(M->var(), visit(M->body()));
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      return Ctx.seq(visit(S->head()), visit(S->tail()));
    }
    case ExprKind::ExtChoice:
    case ExprKind::IntChoice: {
      const auto *C = cast<ChoiceExpr>(E);
      std::vector<ChoiceBranch> Branches;
      Branches.reserve(C->numBranches());
      for (const ChoiceBranch &B : C->branches())
        Branches.push_back({B.Guard, visit(B.Body)});
      return E->kind() == ExprKind::ExtChoice
                 ? Ctx.extChoice(std::move(Branches))
                 : Ctx.intChoice(std::move(Branches));
    }
    case ExprKind::Request: {
      const auto *R = cast<RequestExpr>(E);
      return Ctx.request(R->request(), R->policy(), visit(R->body()));
    }
    case ExprKind::Framing: {
      const auto *F = cast<FramingExpr>(E);
      return Ctx.framing(F->policy(), visit(F->body()));
    }
    }
    assert(false && "unknown expression kind");
    return E;
  }

  HistContext &Ctx;
  Symbol Var;
  const Expr *Replacement;
  std::unordered_map<const Expr *, const Expr *> Memo;
};

void collectFreeVars(const Expr *E, std::set<Symbol> &Bound,
                     std::set<Symbol> &Free) {
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Event:
  case ExprKind::CloseMark:
  case ExprKind::FrameOpen:
  case ExprKind::FrameClose:
    return;
  case ExprKind::Var: {
    Symbol Name = cast<VarExpr>(E)->name();
    if (!Bound.count(Name))
      Free.insert(Name);
    return;
  }
  case ExprKind::Mu: {
    const auto *M = cast<MuExpr>(E);
    bool Inserted = Bound.insert(M->var()).second;
    collectFreeVars(M->body(), Bound, Free);
    if (Inserted)
      Bound.erase(M->var());
    return;
  }
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    collectFreeVars(S->head(), Bound, Free);
    collectFreeVars(S->tail(), Bound, Free);
    return;
  }
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice: {
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      collectFreeVars(B.Body, Bound, Free);
    return;
  }
  case ExprKind::Request:
    collectFreeVars(cast<RequestExpr>(E)->body(), Bound, Free);
    return;
  case ExprKind::Framing:
    collectFreeVars(cast<FramingExpr>(E)->body(), Bound, Free);
    return;
  }
}

} // namespace

const Expr *HistContext::substitute(const Expr *E, Symbol Var,
                                    const Expr *Replacement) {
  Substituter S(*this, Var, Replacement);
  return S.visit(E);
}

const Expr *HistContext::unfold(const MuExpr *Mu) {
  return substitute(Mu->body(), Mu->var(), Mu);
}

std::set<Symbol> HistContext::freeVars(const Expr *E) {
  std::set<Symbol> Bound, Free;
  collectFreeVars(E, Bound, Free);
  return Free;
}
