//===- hist/Derive.cpp - Stand-alone operational semantics ---------------===//

#include "hist/Derive.h"

#include "support/Casting.h"

#include <cassert>

using namespace sus;
using namespace sus::hist;

namespace {

/// Recursion fuel for µ-unfolding: a well-formed expression needs exactly
/// one unfolding to expose a guard; a few more tolerate benign nesting of
/// µs. This only bounds *nested immediate* unfoldings, not the (finite)
/// reachable state space.
constexpr unsigned MaxUnfoldDepth = 32;

void deriveInto(HistContext &Ctx, const Expr *E,
                std::vector<Transition> &Out, unsigned Fuel) {
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
    // ε is terminated; a free variable is stuck (ill-formed input).
    return;

  case ExprKind::Event: {
    // (α Acc): α --α--> ε.
    const auto *Ev = cast<EventExpr>(E);
    Out.push_back({Label::event(Ev->event()), Ctx.empty()});
    return;
  }

  case ExprKind::ExtChoice:
  case ExprKind::IntChoice: {
    // (E-Choice) / (I-Choice): Σ aᵢ.Hᵢ --aᵢ--> Hᵢ, ⊕ āᵢ.Hᵢ --āᵢ--> Hᵢ.
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      Out.push_back({Label::comm(B.Guard), B.Body});
    return;
  }

  case ExprKind::Request: {
    // (S-Open): open_{r,ϕ}.H.close_{r,ϕ} --open--> H·close_{r,ϕ}.
    const auto *R = cast<RequestExpr>(E);
    const Expr *Residual =
        Ctx.seq(R->body(), Ctx.closeMark(R->request(), R->policy()));
    Out.push_back({Label::open(R->request(), R->policy()), Residual});
    return;
  }

  case ExprKind::CloseMark: {
    const auto *C = cast<CloseMarkExpr>(E);
    Out.push_back({Label::close(C->request(), C->policy()), Ctx.empty()});
    return;
  }

  case ExprKind::Framing: {
    // (P-Open): ϕ⟦H⟧ --⌊ϕ--> H·⌋ϕ.
    const auto *F = cast<FramingExpr>(E);
    const Expr *Residual = Ctx.seq(F->body(), Ctx.frameClose(F->policy()));
    Out.push_back({Label::frameOpen(F->policy()), Residual});
    return;
  }

  case ExprKind::FrameOpen: {
    const auto *F = cast<FrameOpenExpr>(E);
    Out.push_back({Label::frameOpen(F->policy()), Ctx.empty()});
    return;
  }

  case ExprKind::FrameClose: {
    const auto *F = cast<FrameCloseExpr>(E);
    Out.push_back({Label::frameClose(F->policy()), Ctx.empty()});
    return;
  }

  case ExprKind::Seq: {
    // (Conc): H --λ--> H′ implies H·H″ --λ--> H′·H″.
    const auto *S = cast<SeqExpr>(E);
    std::vector<Transition> HeadSteps;
    deriveInto(Ctx, S->head(), HeadSteps, Fuel);
    for (Transition &T : HeadSteps)
      Out.push_back({T.L, Ctx.seq(T.Target, S->tail())});
    return;
  }

  case ExprKind::Mu: {
    // (Rec): H{µh.H/h} --λ--> H′ implies µh.H --λ--> H′.
    if (Fuel == 0)
      return; // Unguarded recursion: stuck rather than diverging.
    const auto *M = cast<MuExpr>(E);
    const Expr *Unfolded = Ctx.unfold(M);
    if (Unfolded == E)
      return; // µh.h — degenerate, no progress.
    deriveInto(Ctx, Unfolded, Out, Fuel - 1);
    return;
  }
  }
  assert(false && "unknown expression kind");
}

} // namespace

std::vector<Transition> sus::hist::derive(HistContext &Ctx, const Expr *E) {
  std::vector<Transition> Out;
  deriveInto(Ctx, E, Out, MaxUnfoldDepth);
  return Out;
}
