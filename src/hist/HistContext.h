//===- hist/HistContext.h - Hash-consing factory for Expr -------*- C++ -*-===//
///
/// \file
/// Owns every history-expression node of a verification session. All nodes
/// are created through the factory methods below, which apply the paper's
/// structural congruence (ε·H ≡ H ≡ H·ε), keep sequences right-nested and
/// canonicalize choice branches, then hash-cons: structurally equal
/// expressions are pointer-equal. That makes derivative sets finite for the
/// paper's guarded tail-recursive expressions and lets every analysis use
/// pointers as state identities.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_HISTCONTEXT_H
#define SUS_HIST_HISTCONTEXT_H

#include "hist/Expr.h"
#include "support/Arena.h"
#include "support/StringInterner.h"

#include <map>
#include <set>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sus {
namespace hist {

/// Factory and owner of hash-consed history expressions.
class HistContext {
public:
  HistContext() = default;
  HistContext(const HistContext &) = delete;
  HistContext &operator=(const HistContext &) = delete;

  /// The interner backing every name in this context.
  StringInterner &interner() { return Interner; }
  const StringInterner &interner() const { return Interner; }

  /// Interns \p Name (shorthand for interner().intern).
  Symbol symbol(std::string_view Name) { return Interner.intern(Name); }

  /// ε.
  const Expr *empty();

  /// Recursion variable h.
  const Expr *var(Symbol Name);
  const Expr *var(std::string_view Name) { return var(symbol(Name)); }

  /// µh.H. If h does not occur free in \p Body the µ is dropped.
  const Expr *mu(Symbol Var, const Expr *Body);
  const Expr *mu(std::string_view Var, const Expr *Body) {
    return mu(symbol(Var), Body);
  }

  /// Access event α.
  const Expr *event(Event Ev);
  const Expr *event(std::string_view Name) {
    return event(Event{symbol(Name), Value()});
  }
  const Expr *event(std::string_view Name, int64_t Arg) {
    return event(Event{symbol(Name), Value::integer(Arg)});
  }
  const Expr *event(std::string_view Name, std::string_view Arg) {
    return event(Event{symbol(Name), Value::name(symbol(Arg))});
  }

  /// H·H′ with ε-normalization and right-nesting.
  const Expr *seq(const Expr *Head, const Expr *Tail);

  /// Sequence of many expressions.
  const Expr *seq(const std::vector<const Expr *> &Parts);

  /// Σᵢ aᵢ.Hᵢ — all guards must be inputs. Branches are canonically sorted
  /// and exact duplicates dropped. A single-branch choice is the prefix
  /// form a.H.
  const Expr *extChoice(std::vector<ChoiceBranch> Branches);

  /// ⊕ᵢ āᵢ.Hᵢ — all guards must be outputs.
  const Expr *intChoice(std::vector<ChoiceBranch> Branches);

  /// Prefix form a.H / ā.H (a one-branch choice of matching kind).
  const Expr *prefix(CommAction Guard, const Expr *Body);

  /// Input prefix ch?.H.
  const Expr *receive(std::string_view Channel, const Expr *Body) {
    return prefix(CommAction::input(symbol(Channel)), Body);
  }

  /// Output prefix ch!.H.
  const Expr *send(std::string_view Channel, const Expr *Body) {
    return prefix(CommAction::output(symbol(Channel)), Body);
  }

  /// open_{r,ϕ} H close_{r,ϕ}.
  const Expr *request(RequestId Request, PolicyRef Policy, const Expr *Body);

  /// ϕ⟦H⟧.
  const Expr *framing(PolicyRef Policy, const Expr *Body);

  /// close_{r,ϕ} residual marker.
  const Expr *closeMark(RequestId Request, PolicyRef Policy);

  /// ⌊ϕ marker.
  const Expr *frameOpen(PolicyRef Policy);

  /// ⌋ϕ residual marker.
  const Expr *frameClose(PolicyRef Policy);

  /// Capture-avoiding substitution H{K/h}. Since expressions are closed at
  /// the top level and µ-bound names are used affinely in practice, an
  /// inner µ binding the same name simply shadows it.
  const Expr *substitute(const Expr *E, Symbol Var, const Expr *Replacement);

  /// One-step unfolding µh.H ↦ H{µh.H/h}.
  const Expr *unfold(const MuExpr *Mu);

  /// The free recursion variables of \p E.
  std::set<Symbol> freeVars(const Expr *E);

  /// True if \p E has no free recursion variables.
  bool isClosed(const Expr *E) { return freeVars(E).empty(); }

  /// Number of distinct nodes interned so far (diagnostics/benchmarks).
  size_t numNodes() const { return Unique.size(); }

private:
  using Profile = std::vector<uint64_t>;

  struct ProfileHash {
    size_t operator()(const Profile &P) const noexcept;
  };

  const Expr *lookup(const Profile &P) const;
  void remember(Profile P, const Expr *E);
  static size_t profileHash(const Profile &P);

  const Expr *makeChoice(ExprKind Kind, std::vector<ChoiceBranch> Branches);

  StringInterner Interner;
  Arena Nodes;
  std::unordered_map<Profile, const Expr *, ProfileHash> Unique;
};

} // namespace hist
} // namespace sus

#endif // SUS_HIST_HISTCONTEXT_H
