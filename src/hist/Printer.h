//===- hist/Printer.h - Rendering history expressions -----------*- C++ -*-===//
///
/// \file
/// Renders history expressions in the SUS surface syntax (parsed back by
/// syntax/HistParser, so print→parse round-trips to the same hash-consed
/// node). The grammar, in order of loosening precedence:
///
///   expr    := 'mu' IDENT '.' expr | choice
///   choice  := seq ( '+' seq )* | seq ( '<+>' seq )*
///   seq     := prefix ( ';' prefix )*
///   prefix  := IDENT ('?'|'!') '.' prefix | primary
///   primary := 'eps' | '%' IDENT [ '(' value ')' ]
///            | 'open' NUM [ '@' policyref ] '{' expr '}'
///            | 'close' NUM [ '@' policyref ]
///            | 'fopen' policyref | 'fclose' policyref
///            | policyref '[' expr ']' | IDENT | '(' expr ')'
///
//===----------------------------------------------------------------------===//

#ifndef SUS_HIST_PRINTER_H
#define SUS_HIST_PRINTER_H

#include "hist/Expr.h"
#include "hist/HistContext.h"
#include "hist/TransitionSystem.h"

#include <ostream>
#include <string>

namespace sus {
namespace hist {

/// Renders \p E in the surface syntax.
std::string print(const HistContext &Ctx, const Expr *E);

/// Stream variant of print().
void print(const HistContext &Ctx, const Expr *E, std::ostream &OS);

/// Emits the reachable LTS of an expression as a Graphviz digraph.
void printDot(const HistContext &Ctx, const TransitionSystem &Ts,
              std::ostream &OS, const std::string &Name = "lts");

} // namespace hist
} // namespace sus

#endif // SUS_HIST_PRINTER_H
