//===- tools/susd.cpp - The resident SUS verification daemon --------------===//
///
/// \file
/// susd — keep one parsed .sus session resident (repository, compiled
/// policy DFAs, ServiceIndex, VerifierCache) and serve verify/lint/churn
/// requests over a local AF_UNIX socket, so repeat verifications pay
/// memo-table lookups instead of cold re-analysis.
///
///   susd --listen /tmp/susd.sock file.sus      serve until shutdown
///   susd --warm file.sus                       one-shot verify (cold)
///   susd --snapshot s.bin --warm file.sus      one-shot verify (warm)
///   susd --warm --save-snapshot s.bin file.sus cut a snapshot
///
/// Clients talk to a listening daemon with `susc --connect SOCKET VERB
/// [key=value]...` and exit with the code the request earned (the plain
/// susc contract: 0 ok, 1 refuted, 2 usage/parse error, 3 inconclusive).
///
/// Exit codes for susd itself: the one-shot --warm verify code, 0 for a
/// clean daemon shutdown, and 2 on usage errors, unparsable input or a
/// rejected snapshot (wrong version, corrupt, or cut from a different
/// repository — never loaded partially).
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace sus;

namespace {

struct DaemonCliOptions {
  bool Help = false;
  std::string InputPath;
  std::string ListenPath;      ///< --listen: empty = one-shot mode.
  std::string SnapshotIn;      ///< --snapshot: load at startup.
  std::string SnapshotOut;     ///< --save-snapshot: write before exit/serve.
  bool Warm = false;           ///< --warm: verify every client at startup.
  bool UseIndex = true;        ///< --no-index clears.
  unsigned Jobs = 1;
  unsigned Workers = 2;        ///< Connection-handling threads.
  std::vector<std::string> TenantSpecs;
};

constexpr unsigned long MaxJobs = 256;

void printUsage(std::ostream &OS) {
  OS << "usage: susd [options] file.sus\n"
        "  --listen PATH       serve requests on an AF_UNIX socket at PATH\n"
        "                      until a shutdown request arrives; without\n"
        "                      --listen susd runs one-shot and exits\n"
        "  --warm              verify every client at startup (fills the\n"
        "                      memo tables; the one-shot exit code is the\n"
        "                      verify verdict)\n"
        "  --snapshot FILE     load a persistent cache snapshot before\n"
        "                      anything else; a wrong-version, corrupt or\n"
        "                      mismatched snapshot is rejected (exit 2)\n"
        "  --save-snapshot FILE\n"
        "                      write the cache snapshot after warming\n"
        "                      (one-shot) / before serving (daemon)\n"
        "  --jobs N            verifier worker threads (1..256)\n"
        "  --workers N         connection-handling threads (default 2)\n"
        "  --no-index          disable the ServiceIndex\n"
        "  --tenant SPEC       per-tenant budget NAME:DL_MS:PROD:SUB\n"
        "                      (empty fields = no limit; NAME '*' sets the\n"
        "                      default; repeatable)\n"
        "exit codes: one-shot verify verdict (0/1/3), 0 on clean daemon\n"
        "            shutdown, 2 on usage/parse/snapshot errors\n";
}

bool takeValue(int Argc, char **Argv, int &I, const std::string &Flag,
               std::string &Out) {
  if (I + 1 >= Argc) {
    std::cerr << "susd: missing value for '" << Flag << "'\n";
    return false;
  }
  Out = Argv[++I];
  return true;
}

bool parseUnsigned(const std::string &Flag, const std::string &Value,
                   unsigned long Max, unsigned &Out) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "susd: " << Flag << " expects a positive integer, got '"
              << Value << "'\n";
    return false;
  }
  errno = 0;
  unsigned long N = std::strtoul(Value.c_str(), nullptr, 10);
  if (errno == ERANGE || N > Max || N == 0) {
    std::cerr << "susd: " << Flag << " value '" << Value
              << "' is out of range (1.." << Max << ")\n";
    return false;
  }
  Out = static_cast<unsigned>(N);
  return true;
}

bool parseArgs(int Argc, char **Argv, DaemonCliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--listen") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.ListenPath))
        return false;
    } else if (Arg == "--snapshot") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.SnapshotIn))
        return false;
    } else if (Arg == "--save-snapshot") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.SnapshotOut))
        return false;
    } else if (Arg == "--warm") {
      Opts.Warm = true;
    } else if (Arg == "--no-index") {
      Opts.UseIndex = false;
    } else if (Arg == "--jobs") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseUnsigned(Arg, Value, MaxJobs, Opts.Jobs))
        return false;
    } else if (Arg == "--workers") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseUnsigned(Arg, Value, MaxJobs, Opts.Workers))
        return false;
    } else if (Arg == "--tenant") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value))
        return false;
      Opts.TenantSpecs.push_back(Value);
    } else if (Arg == "--help" || Arg == "-h") {
      Opts.Help = true;
      return true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "susd: unknown option '" << Arg << "'\n";
      printUsage(std::cerr);
      return false;
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::cerr << "susd: multiple input files\n";
      return false;
    }
  }
  if (Opts.InputPath.empty()) {
    printUsage(std::cerr);
    return false;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out, bool Binary) {
  std::ifstream In(Path, Binary ? std::ios::binary : std::ios::in);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  DaemonCliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;
  if (Opts.Help) {
    printUsage(std::cout);
    return 0;
  }

  daemon::EngineOptions EOpts;
  EOpts.Jobs = Opts.Jobs;
  EOpts.UseIndex = Opts.UseIndex;
  for (const std::string &Spec : Opts.TenantSpecs) {
    std::string Err;
    if (!EOpts.Tenants.addSpec(Spec, Err)) {
      std::cerr << "susd: " << Err << "\n";
      return 2;
    }
  }

  std::string Source;
  if (!readFile(Opts.InputPath, Source, /*Binary=*/false)) {
    std::cerr << "susd: cannot open '" << Opts.InputPath << "'\n";
    return 2;
  }

  std::string Err;
  std::unique_ptr<daemon::Engine> Engine =
      daemon::Engine::create(std::move(Source), Opts.InputPath, EOpts, Err);
  if (!Engine) {
    std::cerr << Err;
    return 2;
  }

  if (!Opts.SnapshotIn.empty()) {
    std::string Bytes;
    if (!readFile(Opts.SnapshotIn, Bytes, /*Binary=*/true)) {
      std::cerr << "susd: cannot open snapshot '" << Opts.SnapshotIn
                << "'\n";
      return 2;
    }
    core::SnapshotStats Stats;
    if (!Engine->loadSnapshotBytes(Bytes, Err, &Stats)) {
      // The rejection contract: a bad snapshot is a clean exit 2 with a
      // diagnostic, never a partial load (CI asserts on this).
      std::cerr << "susd: snapshot rejected: " << Err << "\n";
      return 2;
    }
    std::cerr << "susd: snapshot loaded (" << Stats.Compliances
              << " compliances, " << Stats.Validities << " validities, "
              << Stats.IndexEntries << " index entries, "
              << Stats.FusedMonitors << " fused monitors)\n";
  }

  int WarmCode = 0;
  if (Opts.Warm)
    WarmCode = Engine->warmAll(std::cout);

  if (!Opts.SnapshotOut.empty()) {
    core::SnapshotStats Stats;
    std::string Bytes = Engine->saveSnapshotBytes(&Stats);
    std::ofstream Out(Opts.SnapshotOut, std::ios::binary | std::ios::trunc);
    if (!Out ||
        !Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()))) {
      std::cerr << "susd: cannot write snapshot '" << Opts.SnapshotOut
                << "'\n";
      return 2;
    }
    Out.close();
    std::cerr << "susd: snapshot saved (" << Stats.Bytes << " bytes)\n";
  }

  if (Opts.ListenPath.empty())
    return WarmCode;

  daemon::ServeOptions SOpts;
  SOpts.SocketPath = Opts.ListenPath;
  SOpts.Workers = Opts.Workers;
  SOpts.Log = &std::cout;
  return daemon::serve(*Engine, SOpts);
}
