//===- tools/susc.cpp - The SUS command-line verifier ---------------------===//
///
/// \file
/// susc — parse a .sus file, verify every client against the repository
/// (declared plans first, then enumerated candidates), and report the
/// valid plans. Exit code 0 iff every client has at least one valid plan.
///
///   susc file.sus                verify everything
///   susc --plan pi1 file.sus    check one declared plan only
///   susc --run file.sus          also execute the first valid plan
///   susc --trace file.sus        print the execution trace with --run
///   susc --dot-policies file.sus print policy automata as Graphviz
///   susc lint file.sus           run the semantic lint passes
///
/// `susc lint` exits 0 when the file is clean, 1 when any finding was
/// reported (even warnings), and 2 on usage, I/O or parse errors — the
/// CI-friendly contract.
///
/// The verifier exits 0 when every client has a valid plan, 1 when some
/// client conclusively lacks one, 2 on usage/parse errors, and 3 when any
/// verdict is Inconclusive(resource) — a --deadline-ms / --max-*-states
/// budget tripped, or --explore truncated — so "out of budget" is never
/// mistaken for "refuted".
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "core/Repair.h"
#include "core/Verifier.h"
#include "daemon/Protocol.h"
#include "daemon/Socket.h"
#include "fuzz/Differential.h"
#include "monitor/Fused.h"
#include "policy/Compile.h"
#include "hist/Bisim.h"
#include "hist/Printer.h"
#include "hist/TransitionSystem.h"
#include "net/Explorer.h"
#include "net/Interpreter.h"
#include "support/Metrics.h"
#include "support/ResourceGovernor.h"
#include "support/Trace.h"
#include "syntax/FileParser.h"
#include "validity/CostAnalysis.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace sus;

namespace {

struct CliOptions {
  /// "Flag absent" sentinel for the resource limits below.
  static constexpr uint64_t NoLimit = ~uint64_t(0);

  /// --help/-h was seen: the caller prints usage and exits 0. Kept as a
  /// flag (instead of exiting inside the parser) so no library-level
  /// code calls std::exit — which is also what concurrency-mt-unsafe
  /// expects of functions that may one day run inside susd.
  bool Help = false;

  std::string InputPath;
  std::string OnlyPlan;
  std::string DotLts;
  std::string BisimA, BisimB;
  std::string TraceOut;   ///< Chrome trace_event JSON output path.
  std::string MetricsOut; ///< sus-metrics-v1 JSON output path.
  bool Run = false;
  bool FusedMonitor = false; ///< --monitor fused
  bool Trace = false;
  bool DotPolicies = false;
  bool Enumerate = true;
  bool Cost = false;
  bool Explore = false;
  unsigned Jobs = 1;
  uint64_t DeadlineMs = NoLimit;        ///< --deadline-ms
  uint64_t MaxProductStates = NoLimit;  ///< --max-product-states
  uint64_t MaxSubsetStates = NoLimit;   ///< --max-subset-states
  uint64_t MaxExploreStates = NoLimit;  ///< --max-states (--explore cap)
  DiagFormat Format = DiagFormat::Text;
};

/// Hard ceiling for --jobs: far above any sane machine, low enough that a
/// typo cannot ask for a million threads.
constexpr unsigned long MaxJobs = 256;

void printUsage(std::ostream &OS) {
  OS << "usage: susc [options] file.sus\n"
        "       susc lint [lint options] file.sus\n"
        "       susc plan [plan options] file.sus\n"
        "       susc fuzz [fuzz options]\n"
        "       susc --connect SOCKET VERB [key=value]...\n"
        "  --plan NAME      check only the declared plan NAME\n"
        "  --run            execute the first valid plan of each client\n"
        "  --monitor MODE   with --run, probe validity with 'probe' (the\n"
        "                   per-policy monitors, default) or 'fused' (one\n"
        "                   fused DFA per session; falls back to probe when\n"
        "                   fusion is refused — verdicts never change)\n"
        "  --trace          with --run, print every applied step\n"
        "  --dot-policies   print client policies as Graphviz\n"
        "  --dot-lts NAME   print the LTS of a declared behaviour\n"
        "  --bisim A B      check two declared behaviours bisimilar\n"
        "  --cost           worst-case event count per behaviour\n"
        "  --explore        exhaustively explore the network under the\n"
        "                   declared plans (capacity-deadlock search)\n"
        "  --no-enumerate   only check declared plans\n"
        "  --jobs N         verify candidate plans on N worker threads\n"
        "                   (1 <= N <= 256); the report is identical at\n"
        "                   any width\n"
        "  --deadline-ms N  stop verifying after N milliseconds; verdicts\n"
        "                   not reached in time are Inconclusive(resource)\n"
        "  --max-product-states N  per-check state budget for product /\n"
        "                   emptiness explorations\n"
        "  --max-subset-states N   per-check state budget for subset\n"
        "                   construction (determinization)\n"
        "  --max-states N   state cap for --explore (default 262144)\n"
        "  --trace-out F    write a Chrome trace_event JSON span trace to F\n"
        "  --metrics-out F  write pipeline metrics JSON (sus-metrics-v1) to F\n"
        "  --diag-format=F  render diagnostics as 'text' or 'json'\n"
        "exit codes: 0 all clients have valid plans, 1 some client has\n"
        "            none, 2 usage/parse error, 3 inconclusive (resource\n"
        "            budget tripped or exploration truncated)\n"
        "run 'susc lint --help' for the lint options\n";
}

void printLintUsage(std::ostream &OS) {
  OS << "usage: susc lint [options] file.sus\n"
        "  --diag-format=F  render findings as 'text' or 'json'\n"
        "  -Werror          promote every lint warning to an error\n"
        "  -Werror=ID       promote the pass ID to an error\n"
        "  --disable=ID     suppress the pass ID entirely\n"
        "  --list-passes    list every pass with its ID and exit\n"
        "  --trace-out F    write a Chrome trace_event JSON span trace to F\n"
        "  --metrics-out F  write pipeline metrics JSON (sus-metrics-v1) to F\n"
        "exit codes: 0 clean, 1 findings reported, 2 usage/parse error\n";
}

void printPlanUsage(std::ostream &OS) {
  OS << "usage: susc plan [options] file.sus\n"
        "  --index          enumerate through the ServiceIndex (candidate\n"
        "                   buckets + compliance pre-screens; default)\n"
        "  --no-index       scan the whole repository per request (the\n"
        "                   paper's baseline; identical plan sets)\n"
        "  --churn N        churn replay: N rounds, each removing and then\n"
        "                   re-publishing one seeded-randomly picked\n"
        "                   service, repairing the reports incrementally\n"
        "                   and reporting p50/p99 repair latency\n"
        "  --seed N         seed for the churn picks (default 1)\n"
        "  --jobs N         re-verify repaired plans on N worker threads\n"
        "  --deadline-ms N / --max-product-states N / --max-subset-states N\n"
        "                   resource budgets; cut-short repairs are\n"
        "                   Inconclusive(resource), never wrong\n"
        "  --trace-out F    write a Chrome trace_event JSON span trace to F\n"
        "  --metrics-out F  write pipeline metrics JSON (sus-metrics-v1) to F\n"
        "exit codes: 0 all clients have valid plans, 1 some client has\n"
        "            none, 2 usage/parse error, 3 inconclusive\n";
}

/// Consumes the value operand of \p Flag. Emits the "missing value"
/// diagnostic (rather than falling through to "unknown option" or silently
/// eating the next flag) when \p Flag is the last argument.
bool takeValue(int Argc, char **Argv, int &I, const std::string &Flag,
               std::string &Out) {
  if (I + 1 >= Argc) {
    std::cerr << "susc: missing value for '" << Flag << "'\n";
    return false;
  }
  Out = Argv[++I];
  return true;
}

/// Parses the --jobs operand: digits only, in [1, MaxJobs]. Rejects 0 (the
/// old "0 = one per hardware thread" shorthand was indistinguishable from a
/// typo) and negative values (which strtoul would silently wrap).
bool parseJobsValue(const std::string &Value, unsigned &Jobs) {
  if (Value.empty() || Value.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "susc: --jobs expects a positive integer, got '" << Value
              << "'\n";
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long N = std::strtoul(Value.c_str(), &End, 10);
  if (errno == ERANGE || N > MaxJobs) {
    std::cerr << "susc: --jobs value '" << Value << "' is out of range (max "
              << MaxJobs << ")\n";
    return false;
  }
  if (N == 0) {
    std::cerr << "susc: --jobs must be at least 1, got '" << Value << "'\n";
    return false;
  }
  Jobs = static_cast<unsigned>(N);
  return true;
}

/// Parses a non-negative integer operand of \p Flag (digits only, like
/// parseJobsValue; rejects the sign prefixes strtoull would silently
/// accept). \p MinValue guards flags where 0 is meaningless.
bool parseCountValue(const std::string &Flag, const std::string &Value,
                     uint64_t MinValue, uint64_t &Out) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "susc: " << Flag << " expects a non-negative integer, got '"
              << Value << "'\n";
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long long N = std::strtoull(Value.c_str(), &End, 10);
  if (errno == ERANGE) {
    std::cerr << "susc: " << Flag << " value '" << Value
              << "' is out of range\n";
    return false;
  }
  if (N < MinValue) {
    std::cerr << "susc: " << Flag << " must be at least " << MinValue
              << ", got '" << Value << "'\n";
    return false;
  }
  Out = N;
  return true;
}

/// Parses --diag-format=F; returns false (with a message) on a bad value.
bool parseDiagFormat(const std::string &Arg, DiagFormat &Format) {
  std::string Value = Arg.substr(Arg.find('=') + 1);
  if (Value == "text") {
    Format = DiagFormat::Text;
    return true;
  }
  if (Value == "json") {
    Format = DiagFormat::Json;
    return true;
  }
  std::cerr << "susc: --diag-format expects 'text' or 'json', got '" << Value
            << "'\n";
  return false;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--plan") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.OnlyPlan))
        return false;
    } else if (Arg == "--dot-lts") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.DotLts))
        return false;
    } else if (Arg == "--bisim") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.BisimA) ||
          !takeValue(Argc, Argv, I, Arg, Opts.BisimB))
        return false;
    } else if (Arg == "--jobs") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseJobsValue(Value, Opts.Jobs))
        return false;
    } else if (Arg == "--deadline-ms") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseCountValue(Arg, Value, /*MinValue=*/0, Opts.DeadlineMs))
        return false;
    } else if (Arg == "--max-product-states") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseCountValue(Arg, Value, /*MinValue=*/0, Opts.MaxProductStates))
        return false;
    } else if (Arg == "--max-subset-states") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseCountValue(Arg, Value, /*MinValue=*/0, Opts.MaxSubsetStates))
        return false;
    } else if (Arg == "--max-states") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseCountValue(Arg, Value, /*MinValue=*/1, Opts.MaxExploreStates))
        return false;
    } else if (Arg == "--trace-out") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.TraceOut))
        return false;
    } else if (Arg == "--metrics-out") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.MetricsOut))
        return false;
    } else if (Arg == "--cost") {
      Opts.Cost = true;
    } else if (Arg == "--explore") {
      Opts.Explore = true;
    } else if (Arg == "--run") {
      Opts.Run = true;
    } else if (Arg == "--monitor") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value))
        return false;
      if (Value == "fused") {
        Opts.FusedMonitor = true;
      } else if (Value == "probe") {
        Opts.FusedMonitor = false;
      } else {
        std::cerr << "susc: --monitor expects 'fused' or 'probe', got '"
                  << Value << "'\n";
        return false;
      }
    } else if (Arg == "--trace") {
      Opts.Trace = true;
    } else if (Arg == "--dot-policies") {
      Opts.DotPolicies = true;
    } else if (Arg == "--no-enumerate") {
      Opts.Enumerate = false;
    } else if (Arg.rfind("--diag-format=", 0) == 0) {
      if (!parseDiagFormat(Arg, Opts.Format))
        return false;
    } else if (Arg == "--help" || Arg == "-h") {
      Opts.Help = true;
      return true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "susc: unknown option '" << Arg << "'\n";
      printUsage(std::cerr);
      return false;
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::cerr << "susc: multiple input files\n";
      return false;
    }
  }
  if (Opts.InputPath.empty()) {
    printUsage(std::cerr);
    return false;
  }
  return true;
}

int runTool(const CliOptions &Opts) {
  // Arm the governor first thing, so --deadline-ms covers the whole run
  // (parsing included), not just the verification loops.
  std::shared_ptr<ResourceGovernor> Governor;
  if (Opts.DeadlineMs != CliOptions::NoLimit ||
      Opts.MaxProductStates != CliOptions::NoLimit ||
      Opts.MaxSubsetStates != CliOptions::NoLimit) {
    Governor = std::make_shared<ResourceGovernor>();
    if (Opts.MaxProductStates != CliOptions::NoLimit)
      Governor->setLimit(ResourceKind::ProductStates, Opts.MaxProductStates);
    if (Opts.MaxSubsetStates != CliOptions::NoLimit)
      Governor->setLimit(ResourceKind::SubsetStates, Opts.MaxSubsetStates);
    if (Opts.DeadlineMs != CliOptions::NoLimit)
      Governor->setDeadlineAfterMillis(Opts.DeadlineMs);
  }

  std::ifstream In(Opts.InputPath);
  if (!In) {
    std::cerr << "susc: cannot open '" << Opts.InputPath << "'\n";
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  hist::HistContext Ctx;
  DiagnosticEngine Diags;
  std::optional<syntax::SusFile> File =
      syntax::parseSusFile(Ctx, Source, Diags);
  Diags.print(std::cerr, Opts.Format);
  if (!File)
    return 2;

  // Resolve a declared behaviour by name (services first, then clients).
  auto FindBehavior = [&](const std::string &Name) -> const hist::Expr * {
    Symbol S = Ctx.interner().lookup(Name);
    if (!S.isValid())
      return nullptr;
    if (const hist::Expr *E = File->Repo.find(S))
      return E;
    return File->findClient(S);
  };

  if (!Opts.DotLts.empty()) {
    const hist::Expr *E = FindBehavior(Opts.DotLts);
    if (!E) {
      std::cerr << "susc: no service or client named '" << Opts.DotLts
                << "'\n";
      return 2;
    }
    hist::TransitionSystem Ts(Ctx, E);
    hist::printDot(Ctx, Ts, std::cout, Opts.DotLts);
    return 0;
  }

  if (!Opts.BisimA.empty()) {
    const hist::Expr *A = FindBehavior(Opts.BisimA);
    const hist::Expr *B = FindBehavior(Opts.BisimB);
    if (!A || !B) {
      std::cerr << "susc: unknown behaviour name\n";
      return 2;
    }
    bool Equal = hist::bisimilar(Ctx, A, B);
    std::cout << Opts.BisimA << (Equal ? " ~ " : " !~ ") << Opts.BisimB
              << "\n";
    return Equal ? 0 : 1;
  }

  if (Opts.Explore) {
    // Assemble the network from each client's first declared plan.
    std::vector<net::NetworkComponent> Components;
    for (const auto &[Name, Client] : File->Clients) {
      const syntax::PlanDecl *Found = nullptr;
      for (const syntax::PlanDecl &Decl : File->Plans)
        if (Decl.Client == Name) {
          Found = &Decl;
          break;
        }
      if (!Found) {
        std::cerr << "susc: client '" << Ctx.interner().text(Name)
                  << "' has no declared plan; --explore needs one\n";
        return 2;
      }
      Components.push_back({Name, Client, Found->Pi});
    }
    net::ExplorerOptions EOpts;
    if (Opts.MaxExploreStates != CliOptions::NoLimit)
      EOpts.MaxStates = static_cast<size_t>(Opts.MaxExploreStates);
    net::ExplorationResult R =
        net::exploreNetwork(Ctx, File->Repo, Components, EOpts);
    std::cout << "explored " << R.States << " network states"
              << (R.Exhaustive ? "" : " (truncated)") << "\n";
    std::cout << "all components can complete: "
              << (R.CanComplete ? "yes" : "NO") << "\n";
    std::cout << "deadlock reachable: "
              << (R.DeadlockReachable ? "YES" : "no") << "\n";
    for (const std::string &Line : R.DeadlockTrace)
      std::cout << "  --> " << Line << "\n";
    if (!R.Exhaustive) {
      // A truncated search proves nothing either way: its "no deadlock"
      // would be silently unsound, so report it loudly and distinctly.
      std::cerr << "susc: exploration truncated at " << R.States
                << " states; pass --max-states to raise the bound\n";
      return 3;
    }
    return (R.CanComplete && !R.DeadlockReachable) ? 0 : 1;
  }

  if (Opts.Cost) {
    // Uniform model: every access event costs 1 (worst-case event count).
    validity::CostModel Model;
    Model.DefaultCost = 1;
    auto Show = [&](Symbol Name, const hist::Expr *E) {
      validity::CostResult R = validity::maxEventCost(Ctx, E, Model);
      std::cout << Ctx.interner().text(Name) << ": ";
      if (R.Bounded)
        std::cout << "worst-case " << R.MaxCost << " event(s)\n";
      else
        std::cout << "unbounded (a costly loop is reachable)\n";
    };
    for (const auto &[Loc, Service] : File->Repo.services())
      Show(Loc, Service);
    for (const auto &[Name, Client] : File->Clients)
      Show(Name, Client);
    return 0;
  }

  if (Opts.DotPolicies) {
    // There is no registry iteration API by design (policies are looked
    // up by name); print the ones referenced by clients instead.
    for (const auto &[Name, Client] : File->Clients) {
      (void)Name;
      for (const plan::RequestSite &Site : plan::extractRequests(Client)) {
        if (Site.policy().isTrivial())
          continue;
        if (const policy::UsageAutomaton *A =
                File->Registry.find(Site.policy().Name))
          A->printDot(Ctx.interner(), std::cout);
      }
    }
  }

  core::VerifierOptions VOpts;
  VOpts.Jobs = Opts.Jobs;
  VOpts.Governor = Governor;
  core::Verifier Verifier(Ctx, File->Repo, File->Registry, VOpts);
  bool AllClientsOk = true;
  bool AnyInconclusive = false;

  for (const auto &[Name, Client] : File->Clients) {
    std::string ClientName(Ctx.interner().text(Name));
    std::cout << "== client " << ClientName << " ==\n";

    std::optional<plan::Plan> FirstValid;

    // Declared plans first.
    for (const syntax::PlanDecl &Decl : File->Plans) {
      if (Decl.Client != Name)
        continue;
      std::string PlanName(Ctx.interner().text(Decl.Name));
      if (!Opts.OnlyPlan.empty() && PlanName != Opts.OnlyPlan)
        continue;
      core::PlanVerdict Verdict =
          Verifier.checkPlan(Client, Name, Decl.Pi);
      std::cout << "plan " << PlanName << " "
                << Decl.Pi.str(Ctx.interner()) << ": ";
      if (Verdict.inconclusive()) {
        std::optional<ResourceExhausted> E = Verdict.exhaustedReason();
        std::cout << "Inconclusive(resource: "
                  << (E ? resourceKindName(E->Which) : "unknown") << ")\n";
        AnyInconclusive = true;
        continue;
      }
      std::cout << (Verdict.isValid() ? "VALID" : "invalid") << "\n";
      for (const core::RequestCheck &C : Verdict.RequestChecks)
        if (!C.Compliant && !C.Exhausted) {
          std::cout << "  request " << C.Request << ": not compliant";
          if (C.Witness)
            std::cout << " (" << C.Witness->str(Ctx) << ")";
          std::cout << "\n";
        }
      if (!Verdict.Security.Valid &&
          Verdict.Security.Failure !=
              validity::PlanFailureKind::None &&
          Verdict.Security.Failure !=
              validity::PlanFailureKind::ResourceExhausted) {
        std::cout << "  security: failed";
        if (Verdict.Security.Policy)
          std::cout << " (policy "
                    << Verdict.Security.Policy->str(Ctx.interner()) << ")";
        if (!Verdict.Security.Trace.empty()) {
          std::cout << " via";
          for (const std::string &L : Verdict.Security.Trace)
            std::cout << " " << L;
        }
        std::cout << "\n";
      }
      if (Verdict.isValid() && !FirstValid)
        FirstValid = Decl.Pi;
    }

    // Enumerated candidates.
    if (Opts.Enumerate && Opts.OnlyPlan.empty()) {
      core::VerificationReport Report = Verifier.verifyClient(Client, Name);
      core::printReport(Report, Ctx, std::cout);
      if (Report.anyInconclusive())
        AnyInconclusive = true;
      if (!FirstValid) {
        std::vector<plan::Plan> Valid = Report.validPlans();
        if (!Valid.empty())
          FirstValid = Valid.front();
      }
    }

    if (!FirstValid) {
      AllClientsOk = false;
      continue;
    }

    if (Opts.Run) {
      net::InterpreterOptions IOpts;
      // --monitor fused: fuse the policies of everything this run can
      // execute (shared via the verifier cache across clients). A refused
      // fusion leaves IOpts.FusedMonitor null and the interpreter on the
      // legacy probe — same verdicts either way.
      std::shared_ptr<const monitor::FusedPolicyAutomaton> Fused;
      if (Opts.FusedMonitor) {
        std::vector<const hist::Expr *> Behaviors{Client};
        for (plan::Loc L : File->Repo.locations())
          Behaviors.push_back(File->Repo.find(L));
        monitor::FuseOptions FO;
        FO.Gov = Governor.get();
        Fused = Verifier.cache()->fusedMonitors().fuse(
            File->Registry, Ctx.interner(),
            monitor::collectPolicyRefs(Behaviors),
            policy::eventUniverse(Behaviors), FO);
        IOpts.FusedMonitor = Fused.get();
      }
      net::Interpreter Interp(Ctx, File->Repo, File->Registry,
                              {{Name, Client, *FirstValid}}, IOpts);
      net::RunStats Stats = Interp.run(/*Seed=*/1);
      std::cout << "run: " << Stats.StepsTaken << " steps, "
                << (Stats.AllCompleted ? "completed" : "stuck")
                << ", history: "
                << Interp.history(0).str(Ctx.interner()) << "\n";
      if (Opts.Trace)
        for (const std::string &Line : Interp.trace())
          std::cout << "  " << Line << "\n";
    }
  }

  // Inconclusive outranks "no valid plan": a missing plan under a tripped
  // budget is not a refutation, and conflating the two would let CI treat
  // an under-provisioned run as a real verification failure.
  if (AnyInconclusive)
    return 3;
  return AllClientsOk ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// susc lint
//===----------------------------------------------------------------------===//

struct LintCliOptions {
  bool Help = false; ///< --help/-h: print usage, exit 0 (see CliOptions).
  std::string InputPath;
  analysis::LintOptions Lint;
  DiagFormat Format = DiagFormat::Text;
  std::string TraceOut;   ///< Chrome trace_event JSON output path.
  std::string MetricsOut; ///< sus-metrics-v1 JSON output path.
  bool ListPasses = false;
};

bool parseLintArgs(int Argc, char **Argv, LintCliOptions &Opts) {
  // Argv[1] is the "lint" subcommand itself.
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--trace-out") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.TraceOut))
        return false;
    } else if (Arg == "--metrics-out") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.MetricsOut))
        return false;
    } else if (Arg.rfind("--diag-format=", 0) == 0) {
      if (!parseDiagFormat(Arg, Opts.Format))
        return false;
    } else if (Arg == "-Werror") {
      Opts.Lint.WarningsAsErrors = true;
    } else if (Arg.rfind("-Werror=", 0) == 0) {
      Opts.Lint.ErrorIds.insert(Arg.substr(std::string("-Werror=").size()));
    } else if (Arg.rfind("--disable=", 0) == 0) {
      Opts.Lint.DisabledIds.insert(
          Arg.substr(std::string("--disable=").size()));
    } else if (Arg == "--list-passes") {
      Opts.ListPasses = true;
    } else if (Arg == "--help" || Arg == "-h") {
      Opts.Help = true;
      return true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "susc: unknown option '" << Arg << "'\n";
      printLintUsage(std::cerr);
      return false;
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::cerr << "susc: multiple input files\n";
      return false;
    }
  }
  if (Opts.InputPath.empty() && !Opts.ListPasses) {
    printLintUsage(std::cerr);
    return false;
  }
  return true;
}

int runLint(const LintCliOptions &Opts) {
  if (Opts.ListPasses) {
    for (const analysis::LintPass *Pass : analysis::allLintPasses())
      std::cout << Pass->id() << "  [" << Pass->category() << "]  "
                << Pass->description() << "\n";
    return 0;
  }

  std::ifstream In(Opts.InputPath);
  if (!In) {
    std::cerr << "susc: cannot open '" << Opts.InputPath << "'\n";
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  hist::HistContext Ctx;
  DiagnosticEngine Diags;
  std::optional<syntax::SusFile> File =
      syntax::parseSusFile(Ctx, Source, Diags, Opts.InputPath);
  if (!File) {
    Diags.print(std::cout, Opts.Format);
    return 2;
  }

  analysis::LintContext LC(Ctx, *File, Opts.InputPath, Opts.Lint, Diags);
  unsigned Findings = analysis::runLintPasses(LC);
  Diags.print(std::cout, Opts.Format);
  if (Opts.Format == DiagFormat::Text)
    std::cout << Opts.InputPath << ": " << Findings << " finding(s)\n";
  return Findings ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// susc plan
//===----------------------------------------------------------------------===//

struct PlanCliOptions {
  bool Help = false; ///< --help/-h: print usage, exit 0 (see CliOptions).
  std::string InputPath;
  std::string TraceOut;
  std::string MetricsOut;
  bool UseIndex = true;
  unsigned Jobs = 1;
  uint64_t ChurnRounds = 0;
  uint64_t Seed = 1;
  uint64_t DeadlineMs = CliOptions::NoLimit;
  uint64_t MaxProductStates = CliOptions::NoLimit;
  uint64_t MaxSubsetStates = CliOptions::NoLimit;
};

bool parsePlanArgs(int Argc, char **Argv, PlanCliOptions &Opts) {
  // Argv[1] is the "plan" subcommand itself.
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--index") {
      Opts.UseIndex = true;
    } else if (Arg == "--no-index") {
      Opts.UseIndex = false;
    } else if (Arg == "--churn") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseCountValue(Arg, Value, /*MinValue=*/1, Opts.ChurnRounds))
        return false;
    } else if (Arg == "--seed") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseCountValue(Arg, Value, /*MinValue=*/0, Opts.Seed))
        return false;
    } else if (Arg == "--jobs") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseJobsValue(Value, Opts.Jobs))
        return false;
    } else if (Arg == "--deadline-ms") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseCountValue(Arg, Value, /*MinValue=*/0, Opts.DeadlineMs))
        return false;
    } else if (Arg == "--max-product-states") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseCountValue(Arg, Value, /*MinValue=*/0, Opts.MaxProductStates))
        return false;
    } else if (Arg == "--max-subset-states") {
      std::string Value;
      if (!takeValue(Argc, Argv, I, Arg, Value) ||
          !parseCountValue(Arg, Value, /*MinValue=*/0, Opts.MaxSubsetStates))
        return false;
    } else if (Arg == "--trace-out") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.TraceOut))
        return false;
    } else if (Arg == "--metrics-out") {
      if (!takeValue(Argc, Argv, I, Arg, Opts.MetricsOut))
        return false;
    } else if (Arg == "--help" || Arg == "-h") {
      Opts.Help = true;
      return true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "susc: unknown option '" << Arg << "'\n";
      printPlanUsage(std::cerr);
      return false;
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::cerr << "susc: multiple input files\n";
      return false;
    }
  }
  if (Opts.InputPath.empty()) {
    printPlanUsage(std::cerr);
    return false;
  }
  return true;
}

/// A percentile over recorded repair latencies (rounded-down index, the
/// same convention as the benchmarks).
int64_t percentileUs(std::vector<int64_t> Sorted, size_t Pct) {
  if (Sorted.empty())
    return 0;
  std::sort(Sorted.begin(), Sorted.end());
  return Sorted[std::min(Sorted.size() - 1, Sorted.size() * Pct / 100)];
}

int runPlan(const PlanCliOptions &Opts) {
  std::shared_ptr<ResourceGovernor> Governor;
  if (Opts.DeadlineMs != CliOptions::NoLimit ||
      Opts.MaxProductStates != CliOptions::NoLimit ||
      Opts.MaxSubsetStates != CliOptions::NoLimit) {
    Governor = std::make_shared<ResourceGovernor>();
    if (Opts.MaxProductStates != CliOptions::NoLimit)
      Governor->setLimit(ResourceKind::ProductStates, Opts.MaxProductStates);
    if (Opts.MaxSubsetStates != CliOptions::NoLimit)
      Governor->setLimit(ResourceKind::SubsetStates, Opts.MaxSubsetStates);
    if (Opts.DeadlineMs != CliOptions::NoLimit)
      Governor->setDeadlineAfterMillis(Opts.DeadlineMs);
  }

  std::ifstream In(Opts.InputPath);
  if (!In) {
    std::cerr << "susc: cannot open '" << Opts.InputPath << "'\n";
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  hist::HistContext Ctx;
  DiagnosticEngine Diags;
  std::optional<syntax::SusFile> File =
      syntax::parseSusFile(Ctx, Source, Diags, Opts.InputPath);
  Diags.print(std::cerr, DiagFormat::Text);
  if (!File)
    return 2;

  core::VerifierOptions VOpts;
  VOpts.Jobs = Opts.Jobs;
  VOpts.Governor = Governor;
  VOpts.UseIndex = Opts.UseIndex;
  core::Verifier Verifier(Ctx, File->Repo, File->Registry, VOpts);

  bool AllClientsOk = true;
  bool AnyInconclusive = false;

  // Deterministic churn picks: a tiny LCG (constants from Numerical
  // Recipes) so replays are reproducible across runs and platforms.
  uint64_t Rng = Opts.Seed;
  auto NextRand = [&Rng]() {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return Rng >> 33;
  };

  for (const auto &[Name, Client] : File->Clients) {
    std::string ClientName(Ctx.interner().text(Name));
    std::cout << "== client " << ClientName << " ==\n";

    core::RepairSession Session(Verifier, Client, Name);
    const core::VerificationReport &Baseline = Session.verify();
    std::cout << "candidate plans: " << Baseline.CandidateCount
              << " (bindings tried: " << Baseline.BindingsTried << ")";
    if (Baseline.Truncated)
      std::cout << " [truncated]";
    if (Baseline.EnumerationExhausted)
      std::cout << " [enumeration inconclusive: "
                << resourceKindName(Baseline.EnumerationExhausted->Which)
                << "]";
    std::cout << "\n";
    std::cout << "valid plans: " << Baseline.validPlans().size() << "\n";
    if (const plan::ServiceIndex *Index = Verifier.index()) {
      plan::IndexStats IStats = Index->stats();
      std::cout << "index: " << Index->size() << " services, "
                << IStats.Lookups << " lookups (" << IStats.Hits
                << " memo hits), " << IStats.Candidates
                << " candidates, prescreen rejects: "
                << IStats.AlphabetRejects << " alphabet + "
                << IStats.FirstStepRejects << " first-step\n";
    }

    if (Opts.ChurnRounds > 0) {
      std::vector<plan::Loc> Locs = File->Repo.locations();
      if (Locs.empty()) {
        std::cerr << "susc: --churn needs a non-empty repository\n";
        return 2;
      }
      size_t Kept = 0, Dropped = 0, Reverified = 0, Repairs = 0;
      std::vector<int64_t> LatenciesUs;
      bool Tripped = false;
      for (uint64_t Round = 0; Round < Opts.ChurnRounds && !Tripped;
           ++Round) {
        plan::Loc L = Locs[NextRand() % Locs.size()];
        const hist::Expr *Service = File->Repo.find(L);
        unsigned Capacity = File->Repo.capacity(L);
        // One round = remove + re-publish: the repository ends the round
        // unchanged, and both delta directions get exercised.
        for (int Phase = 0; Phase < 2; ++Phase) {
          plan::RepositoryDelta Delta;
          Delta.Changes.push_back(
              Phase == 0
                  ? plan::applyRemove(File->Repo, L)
                  : plan::applyPublish(File->Repo, L, Service, Capacity));
          auto Start = std::chrono::steady_clock::now();
          Outcome<core::RepairStats> Repair = Session.applyDelta(Delta);
          auto End = std::chrono::steady_clock::now();
          LatenciesUs.push_back(
              std::chrono::duration_cast<std::chrono::microseconds>(End -
                                                                    Start)
                  .count());
          ++Repairs;
          if (!Repair.ok()) {
            std::cout << "churn: round " << Round
                      << " Inconclusive(resource: "
                      << resourceKindName(Repair.exhausted().Which) << ")\n";
            AnyInconclusive = true;
            Tripped = true;
            break;
          }
          Kept += Repair.value().PlansKept;
          Dropped += Repair.value().PlansDropped;
          Reverified += Repair.value().PlansReverified;
        }
      }
      std::cout << "churn: " << Repairs << " repairs over "
                << Opts.ChurnRounds << " round(s), plans kept " << Kept
                << ", dropped " << Dropped << ", reverified " << Reverified
                << "\n";
      std::cout << "repair latency: p50 " << percentileUs(LatenciesUs, 50)
                << " us, p99 " << percentileUs(LatenciesUs, 99) << " us\n";
      std::cout << "valid plans after churn: "
                << Session.report().validPlans().size() << "\n";
    }

    const core::VerificationReport &Final = Session.report();
    if (Final.anyInconclusive())
      AnyInconclusive = true;
    if (Final.validPlans().empty())
      AllClientsOk = false;
  }

  if (AnyInconclusive)
    return 3;
  return AllClientsOk ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// susc fuzz
//===----------------------------------------------------------------------===//

struct FuzzCliOptions {
  bool Help = false; ///< --help/-h: print usage, exit 0 (see CliOptions).
  uint64_t Seeds = 100;
  uint64_t BaseSeed = 0;
  bool SeedSet = false; ///< --seed was given explicitly.
  bool Replay = false;
  bool NoChaos = false;
  uint64_t Depth = 4;
  uint64_t Alphabet = 3;
  uint64_t Policies = 2;
  uint64_t Services = 3;
  uint64_t Clients = 2;
  uint64_t Width = 2;
  uint64_t TraceLen = 48;
};

void printFuzzUsage(std::ostream &OS) {
  OS << "usage: susc fuzz [options]\n"
        "  --seeds N        sweep N consecutive seeds (default 100)\n"
        "  --seed N         first (or, with --replay, only) seed\n"
        "  --replay         re-run just --seed (which must be given\n"
        "                   explicitly), printing the generated program\n"
        "                   and every oracle verdict\n"
        "  --no-chaos       skip the governor chaos soak\n"
        "  --depth N / --alphabet N / --policies N / --services N /\n"
        "  --clients N / --width N   generator difficulty knobs\n"
        "  --trace-len N    labels fed to the monitor pair (default 48)\n"
        "exit codes: 0 every seed clean, 1 divergence or parser-battery\n"
        "            failure, 2 usage error\n";
}

bool parseFuzzArgs(int Argc, char **Argv, FuzzCliOptions &Opts) {
  // Argv[1] is the "fuzz" subcommand itself.
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Count = [&](uint64_t MinValue, uint64_t &Out) {
      std::string Value;
      return takeValue(Argc, Argv, I, Arg, Value) &&
             parseCountValue(Arg, Value, MinValue, Out);
    };
    if (Arg == "--seeds") {
      if (!Count(1, Opts.Seeds))
        return false;
    } else if (Arg == "--seed") {
      if (!Count(0, Opts.BaseSeed))
        return false;
      Opts.SeedSet = true;
    } else if (Arg == "--replay") {
      Opts.Replay = true;
    } else if (Arg == "--no-chaos") {
      Opts.NoChaos = true;
    } else if (Arg == "--depth") {
      if (!Count(1, Opts.Depth))
        return false;
    } else if (Arg == "--alphabet") {
      if (!Count(1, Opts.Alphabet))
        return false;
    } else if (Arg == "--policies") {
      if (!Count(1, Opts.Policies))
        return false;
    } else if (Arg == "--services") {
      if (!Count(1, Opts.Services))
        return false;
    } else if (Arg == "--clients") {
      if (!Count(1, Opts.Clients))
        return false;
    } else if (Arg == "--width") {
      if (!Count(1, Opts.Width))
        return false;
    } else if (Arg == "--trace-len") {
      if (!Count(1, Opts.TraceLen))
        return false;
    } else if (Arg == "--help" || Arg == "-h") {
      Opts.Help = true;
      return true;
    } else {
      std::cerr << "susc: unknown option '" << Arg
                << "' (susc fuzz takes no input file)\n";
      printFuzzUsage(std::cerr);
      return false;
    }
  }
  // --replay without --seed used to silently replay the default seed 0 —
  // almost never what a bug report meant. Demand the seed explicitly.
  if (Opts.Replay && !Opts.SeedSet) {
    std::cerr << "susc: --replay requires an explicit --seed "
                 "(the failing seed printed by the sweep)\n";
    return false;
  }
  return true;
}

fuzz::FuzzOptions fuzzOptions(const FuzzCliOptions &Opts) {
  fuzz::FuzzOptions O;
  O.Gen.Depth = static_cast<unsigned>(Opts.Depth);
  O.Gen.AlphabetSize = static_cast<unsigned>(Opts.Alphabet);
  O.Gen.NumPolicies = static_cast<unsigned>(Opts.Policies);
  O.Gen.NumServices = static_cast<unsigned>(Opts.Services);
  O.Gen.NumClients = static_cast<unsigned>(Opts.Clients);
  O.Gen.ChoiceWidth = static_cast<unsigned>(Opts.Width);
  O.MonitorTraceLen = static_cast<unsigned>(Opts.TraceLen);
  O.Chaos = !Opts.NoChaos;
  return O;
}

void printDivergences(const std::vector<fuzz::Divergence> &Ds) {
  for (const fuzz::Divergence &D : Ds)
    std::cout << "  [" << D.Check << "] " << D.Detail << "\n";
}

int runFuzz(const FuzzCliOptions &Opts) {
  // The deterministic adversarial battery runs once per invocation: it is
  // what demonstrably catches the lexer-overflow and parser-depth bugs if
  // their fixes regress.
  std::vector<fuzz::Divergence> Battery = fuzz::parserTorture();
  if (!Battery.empty()) {
    std::cout << "fuzz: parser torture battery FAILED ("
              << Battery.size() << " finding(s)):\n";
    printDivergences(Battery);
    return 1;
  }

  fuzz::FuzzOptions O = fuzzOptions(Opts);

  if (Opts.Replay) {
    fuzz::SeedReport R = fuzz::runSeed(Opts.BaseSeed, O);
    std::cout << "=== seed " << R.Seed << " program ===\n"
              << R.Program.source() << "=== oracles ===\n";
    if (R.clean()) {
      std::cout << "seed " << R.Seed << ": all oracles agree\n";
      return 0;
    }
    std::cout << R.Divergences.size() << " divergence(s):\n";
    printDivergences(R.Divergences);
    std::cout << "=== minimized reproducer ===\n" << R.MinimizedSource;
    return 1;
  }

  for (uint64_t S = Opts.BaseSeed; S < Opts.BaseSeed + Opts.Seeds; ++S) {
    fuzz::SeedReport R = fuzz::runSeed(S, O);
    if (!R.clean()) {
      std::cout << "fuzz: seed " << S << " FAILED with "
                << R.Divergences.size() << " divergence(s):\n";
      printDivergences(R.Divergences);
      std::cout << "=== minimized reproducer ===\n"
                << R.MinimizedSource
                << "replay with: susc fuzz --seed " << S << " --replay\n";
      return 1;
    }
  }
  std::cout << "fuzz: " << Opts.Seeds << " seed(s) starting at "
            << Opts.BaseSeed << ", parser battery + differential oracles"
            << (O.Chaos ? " + chaos soak" : "") << ": all clean\n";
  return 0;
}

//===----------------------------------------------------------------------===//
// Observability plumbing
//===----------------------------------------------------------------------===//

/// Turns the tracer/registry on ahead of the tool run when the matching
/// output flag was given. With both flags absent this is a no-op and every
/// instrumentation point in the pipeline stays a single atomic load.
void enableObservability(const std::string &TraceOut,
                         const std::string &MetricsOut) {
  if (!TraceOut.empty())
    trace::enable();
  if (!MetricsOut.empty())
    metrics::enable();
}

/// Writes the trace/metrics files after the tool ran. Returns false (with a
/// diagnostic) if an output file cannot be written; the caller folds that
/// into exit code 2 unless the run itself already failed harder.
bool writeObservability(const std::string &TraceOut,
                        const std::string &MetricsOut) {
  bool Ok = true;
  auto WriteTo = [&Ok](const std::string &Path, auto &&Emit) {
    std::ofstream Out(Path);
    if (!Out) {
      std::cerr << "susc: cannot write '" << Path << "'\n";
      Ok = false;
      return;
    }
    Emit(Out);
    if (!Out.good()) {
      std::cerr << "susc: error writing '" << Path << "'\n";
      Ok = false;
    }
  };
  if (!TraceOut.empty())
    WriteTo(TraceOut, [](std::ostream &OS) { trace::writeChromeTrace(OS); });
  if (!MetricsOut.empty())
    WriteTo(MetricsOut, [](std::ostream &OS) { metrics::writeJson(OS); });
  return Ok;
}

//===----------------------------------------------------------------------===//
// susc --connect (daemon client mode)
//===----------------------------------------------------------------------===//

/// Ceiling on a daemon response payload the client will buffer. Far above
/// any real report; a garbage header cannot balloon the client.
constexpr uint64_t MaxResponsePayload = uint64_t(1) << 30;

void printConnectUsage(std::ostream &OS) {
  OS << "usage: susc --connect SOCKET VERB [key=value]...\n"
        "  sends one request to a listening susd and exits with the code\n"
        "  the daemon returns (the plain susc exit contract)\n"
        "  verbs: ping, stats, verify, lint, churn, snapshot, shutdown\n"
        "  common keys: client=NAME plan=NAME tenant=NAME deadline_ms=N\n"
        "               max_product_states=N max_subset_states=N\n"
        "               rounds=N seed=N file=PATH enumerate=0\n";
}

int runConnect(int Argc, char **Argv) {
  if (Argc >= 3 && (std::string(Argv[2]) == "--help" ||
                    std::string(Argv[2]) == "-h")) {
    printConnectUsage(std::cout);
    return 0;
  }
  if (Argc < 4) {
    printConnectUsage(std::cerr);
    return 2;
  }
  std::string SocketPath = Argv[2];
  daemon::Request Req;
  Req.Verb = Argv[3];
  for (int I = 4; I < Argc; ++I) {
    std::string Arg = Argv[I];
    size_t Eq = Arg.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      std::cerr << "susc: request parameter '" << Arg
                << "' is not key=value\n";
      return 2;
    }
    Req.Params[Arg.substr(0, Eq)] = Arg.substr(Eq + 1);
  }

  std::string Err;
  int Fd = daemon::connectTo(SocketPath, Err);
  if (Fd < 0) {
    std::cerr << "susc: " << Err << "\n";
    return 2;
  }
  int Code = 2;
  std::string Header, Body;
  int Exit = 2;
  uint64_t PayloadLen = 0;
  if (!daemon::writeAll(Fd, daemon::formatRequest(Req) + "\n", Err) ||
      !daemon::readLine(Fd, Header, /*MaxLen=*/4096, Err)) {
    std::cerr << "susc: " << Err << "\n";
  } else if (!daemon::parseResponseHeader(Header, Exit, PayloadLen, Err)) {
    std::cerr << "susc: " << Err << "\n";
  } else if (PayloadLen > MaxResponsePayload) {
    std::cerr << "susc: response payload of " << PayloadLen
              << " bytes exceeds the client cap\n";
  } else if (!daemon::readExact(Fd, PayloadLen, Body, Err)) {
    std::cerr << "susc: " << Err << "\n";
  } else {
    std::cout << Body;
    Code = Exit;
  }
  daemon::closeFd(Fd);
  return Code;
}

/// True when \p Arg was almost certainly meant as a subcommand, not an
/// input path: no option prefix, no path separator or extension, and no
/// file of that name exists. Keeps `susc plna file.sus` a crisp
/// "unknown subcommand" instead of "cannot open 'plna'", while
/// extensionless-but-real input files still verify.
bool looksLikeSubcommand(const std::string &Arg) {
  if (Arg.empty() || Arg[0] == '-')
    return false;
  if (Arg.find('/') != std::string::npos ||
      Arg.find('.') != std::string::npos)
    return false;
  return !std::ifstream(Arg).good();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1 && std::string(Argv[1]) == "--connect")
    return runConnect(Argc, Argv);
  if (Argc > 1 && std::string(Argv[1]) == "plan") {
    PlanCliOptions Opts;
    if (!parsePlanArgs(Argc, Argv, Opts))
      return 2;
    if (Opts.Help) {
      printPlanUsage(std::cout);
      return 0;
    }
    enableObservability(Opts.TraceOut, Opts.MetricsOut);
    int Code = runPlan(Opts);
    if (!writeObservability(Opts.TraceOut, Opts.MetricsOut) && Code == 0)
      Code = 2;
    return Code;
  }
  if (Argc > 1 && std::string(Argv[1]) == "lint") {
    LintCliOptions Opts;
    if (!parseLintArgs(Argc, Argv, Opts))
      return 2;
    if (Opts.Help) {
      printLintUsage(std::cout);
      return 0;
    }
    enableObservability(Opts.TraceOut, Opts.MetricsOut);
    int Code = runLint(Opts);
    if (!writeObservability(Opts.TraceOut, Opts.MetricsOut) && Code == 0)
      Code = 2;
    return Code;
  }
  if (Argc > 1 && std::string(Argv[1]) == "fuzz") {
    FuzzCliOptions Opts;
    if (!parseFuzzArgs(Argc, Argv, Opts))
      return 2;
    if (Opts.Help) {
      printFuzzUsage(std::cout);
      return 0;
    }
    return runFuzz(Opts);
  }
  if (Argc > 1 && looksLikeSubcommand(Argv[1])) {
    std::cerr << "susc: unknown subcommand '" << Argv[1]
              << "'; valid subcommands are 'fuzz', 'lint' and 'plan' (or "
                 "pass a .sus file to verify)\n";
    return 2;
  }
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;
  if (Opts.Help) {
    printUsage(std::cout);
    return 0;
  }
  enableObservability(Opts.TraceOut, Opts.MetricsOut);
  int Code = runTool(Opts);
  if (!writeObservability(Opts.TraceOut, Opts.MetricsOut) && Code == 0)
    Code = 2;
  return Code;
}
