//===- support/TenantBudget.cpp - Per-tenant resource budgets -------------===//

#include "support/TenantBudget.h"

#include <cerrno>
#include <cstdlib>
#include <vector>

using namespace sus;

TenantBudget TenantBudget::min(const TenantBudget &Other) const {
  TenantBudget Out;
  Out.DeadlineMs = std::min(DeadlineMs, Other.DeadlineMs);
  Out.MaxProductStates = std::min(MaxProductStates, Other.MaxProductStates);
  Out.MaxSubsetStates = std::min(MaxSubsetStates, Other.MaxSubsetStates);
  return Out;
}

namespace {

/// Parses one budget field: empty = NoLimit, else digits only (the same
/// discipline as the susc count flags — no signs, no silent wrapping).
bool parseField(const std::string &Field, uint64_t &Out, std::string &Err) {
  if (Field.empty()) {
    Out = TenantBudget::NoLimit;
    return true;
  }
  if (Field.find_first_not_of("0123456789") != std::string::npos) {
    Err = "budget field '" + Field + "' is not a non-negative integer";
    return false;
  }
  errno = 0;
  unsigned long long N = std::strtoull(Field.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    Err = "budget field '" + Field + "' is out of range";
    return false;
  }
  Out = N;
  return true;
}

} // namespace

bool TenantBudgetTable::addSpec(const std::string &Spec, std::string &Err) {
  std::vector<std::string> Fields;
  size_t Start = 0;
  while (true) {
    size_t Colon = Spec.find(':', Start);
    if (Colon == std::string::npos) {
      Fields.push_back(Spec.substr(Start));
      break;
    }
    Fields.push_back(Spec.substr(Start, Colon - Start));
    Start = Colon + 1;
  }
  if (Fields.size() != 4) {
    Err = "tenant spec '" + Spec +
          "' must be NAME:DEADLINE_MS:PRODUCT_STATES:SUBSET_STATES "
          "(empty fields mean no limit)";
    return false;
  }
  if (Fields[0].empty()) {
    Err = "tenant spec '" + Spec + "' has an empty tenant name";
    return false;
  }
  TenantBudget B;
  if (!parseField(Fields[1], B.DeadlineMs, Err) ||
      !parseField(Fields[2], B.MaxProductStates, Err) ||
      !parseField(Fields[3], B.MaxSubsetStates, Err))
    return false;
  if (Fields[0] == "*") {
    if (HaveDefault) {
      Err = "duplicate default tenant spec '*'";
      return false;
    }
    Default = B;
    HaveDefault = true;
    return true;
  }
  if (!Budgets.emplace(Fields[0], B).second) {
    Err = "duplicate tenant spec for '" + Fields[0] + "'";
    return false;
  }
  return true;
}

const TenantBudget &TenantBudgetTable::lookup(const std::string &Tenant) const {
  auto It = Budgets.find(Tenant);
  if (It != Budgets.end())
    return It->second;
  return Default; // Unlimited unless a "*" spec was given.
}

std::shared_ptr<ResourceGovernor>
TenantBudgetTable::governorFor(const std::string &Tenant,
                               const TenantBudget &Override) const {
  TenantBudget B = lookup(Tenant).min(Override);
  if (B.unlimited())
    return nullptr;
  auto Gov = std::make_shared<ResourceGovernor>();
  if (B.MaxProductStates != TenantBudget::NoLimit)
    Gov->setLimit(ResourceKind::ProductStates, B.MaxProductStates);
  if (B.MaxSubsetStates != TenantBudget::NoLimit)
    Gov->setLimit(ResourceKind::SubsetStates, B.MaxSubsetStates);
  if (B.DeadlineMs != TenantBudget::NoLimit)
    Gov->setDeadlineAfterMillis(B.DeadlineMs);
  return Gov;
}
