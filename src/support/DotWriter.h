//===- support/DotWriter.h - Graphviz DOT emission --------------*- C++ -*-===//
///
/// \file
/// Minimal builder for Graphviz DOT digraphs; used to visualize usage
/// automata, history-expression LTSs and compliance product automata.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_DOTWRITER_H
#define SUS_SUPPORT_DOTWRITER_H

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sus {

/// Accumulates nodes and edges, then renders a `digraph`.
class DotWriter {
public:
  explicit DotWriter(std::string GraphName) : Name(std::move(GraphName)) {}

  /// Adds a node; \p Attrs is a raw attribute list like
  /// `shape=doublecircle`. The label is escaped.
  void node(std::string_view Id, std::string_view Label,
            std::string_view Attrs = {});

  /// Adds an edge with an escaped label.
  void edge(std::string_view From, std::string_view To,
            std::string_view Label, std::string_view Attrs = {});

  /// Renders the whole digraph.
  void print(std::ostream &OS) const;

  /// Escapes a string for use inside a DOT double-quoted literal.
  static std::string escape(std::string_view Str);

private:
  std::string Name;
  std::vector<std::string> Lines;
};

} // namespace sus

#endif // SUS_SUPPORT_DOTWRITER_H
