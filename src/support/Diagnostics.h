//===- support/Diagnostics.h - Diagnostics engine ---------------*- C++ -*-===//
///
/// \file
/// Diagnostic collection for the DSL front end, the verifier and the lint
/// passes. Library code never prints or aborts on user errors: it reports
/// into a DiagnosticEngine and returns failure, letting tools decide how to
/// render. Diagnostics carry an optional stable identifier (e.g.
/// "sus-lint-unreachable-state"), a category, and attached notes; rendering
/// is stably sorted by (file, line, col, severity) with exact duplicates
/// removed, in either human-readable text or machine-readable JSON.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_DIAGNOSTICS_H
#define SUS_SUPPORT_DIAGNOSTICS_H

#include "support/Sync.h"

#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sus {

/// A location in a DSL source buffer (1-based; 0 means "unknown").
///
/// \c File names the buffer the location points into; it is a view so that
/// the thousands of tokens a parse produces share one owner. The string it
/// references (typically the driver's copy of the input path) must outlive
/// every diagnostic carrying the location.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;
  std::string_view File;

  bool isValid() const { return Line != 0; }
  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col && A.File == B.File;
  }
};

/// Severity of a diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// Renders a severity ("note", "warning", "error").
const char *severityName(DiagSeverity S);

/// A note attached to a primary diagnostic (extra context, e.g. the witness
/// trace of a doomed plan). Notes travel with their parent through sorting.
struct DiagNote {
  SourceLoc Loc;
  std::string Message;

  friend bool operator==(const DiagNote &A, const DiagNote &B) {
    return A.Loc == B.Loc && A.Message == B.Message;
  }
};

/// A single rendered diagnostic.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;

  /// Stable identifier, e.g. "sus-lint-unreachable-state"; empty for
  /// uncategorized diagnostics (parser errors and the like).
  std::string ID;

  /// Coarse grouping, e.g. "lint.policy"; empty when uncategorized.
  std::string Category;

  /// Attached notes, rendered right below the primary line.
  std::vector<DiagNote> Notes;

  /// Attaches a note; returns *this for chaining.
  Diagnostic &note(SourceLoc NoteLoc, std::string NoteMessage) {
    Notes.push_back({NoteLoc, std::move(NoteMessage)});
    return *this;
  }
};

/// How DiagnosticEngine::print renders.
enum class DiagFormat { Text, Json };

/// Accumulates diagnostics; owned by the tool or test driver.
///
/// Thread safety: report() and the query/render methods may be called
/// concurrently (lint passes fan out over the ThreadPool). The engine
/// serializes its own bookkeeping; the one caller obligation is to
/// finish decorating a returned Diagnostic& (ID, category, notes) before
/// the engine is rendered or cleared — decoration mutates the diagnostic
/// in place and is intentionally outside the lock.
class DiagnosticEngine {
public:
  /// Reports a diagnostic at \p Loc. Messages follow the LLVM style: start
  /// lowercase, no trailing period. The returned reference stays valid
  /// until clear() (storage is a deque: growth never moves elements); use
  /// it to set the ID/category or attach notes.
  Diagnostic &report(DiagSeverity Severity, SourceLoc Loc,
                     std::string Message);

  /// Reports an error with no location.
  Diagnostic &error(std::string Message) {
    return report(DiagSeverity::Error, SourceLoc(), std::move(Message));
  }

  /// Reports an error at \p Loc.
  Diagnostic &error(SourceLoc Loc, std::string Message) {
    return report(DiagSeverity::Error, Loc, std::move(Message));
  }

  /// Reports a warning at \p Loc.
  Diagnostic &warning(SourceLoc Loc, std::string Message) {
    return report(DiagSeverity::Warning, Loc, std::move(Message));
  }

  /// Reports a note at \p Loc.
  Diagnostic &note(SourceLoc Loc, std::string Message) {
    return report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return errorCount() != 0; }
  unsigned errorCount() const {
    MutexLock Lock(M);
    return NumErrors;
  }

  /// A snapshot of every collected diagnostic, in report order. Returned
  /// by value so no reference escapes the lock.
  std::vector<Diagnostic> diagnostics() const {
    MutexLock Lock(M);
    return std::vector<Diagnostic>(Diags.begin(), Diags.end());
  }

  /// Renders all diagnostics as "file:line:col: severity: message [id]"
  /// lines, stably sorted by (file, line, col, severity) — passes may
  /// interleave files, but the rendering groups them — with exact
  /// duplicates (same severity, location, message, ID) printed once.
  void print(std::ostream &OS) const;

  /// Renders all diagnostics as a JSON array (same order and dedup as
  /// print), one object per diagnostic:
  ///   {"file","line","col","severity","id","category","message","notes"}
  void printJson(std::ostream &OS) const;

  /// Dispatches on \p Format.
  void print(std::ostream &OS, DiagFormat Format) const {
    Format == DiagFormat::Json ? printJson(OS) : print(OS);
  }

  /// Drops all collected diagnostics (invalidates report() references).
  void clear() {
    MutexLock Lock(M);
    Diags.clear();
    NumErrors = 0;
  }

private:
  /// Indices into Diags, sorted for rendering, exact duplicates removed.
  std::vector<size_t> renderOrder() const SUS_REQUIRES(M);

  /// Leaf lock; never held while calling out of the engine.
  mutable Mutex M;
  /// A deque, not a vector: report() hands out references that must
  /// survive later reports.
  std::deque<Diagnostic> Diags SUS_GUARDED_BY(M);
  unsigned NumErrors SUS_GUARDED_BY(M) = 0;
};

} // namespace sus

#endif // SUS_SUPPORT_DIAGNOSTICS_H
