//===- support/Diagnostics.h - Diagnostics engine ---------------*- C++ -*-===//
///
/// \file
/// Diagnostic collection for the DSL front end and the verifier. Library
/// code never prints or aborts on user errors: it reports into a
/// DiagnosticEngine and returns failure, letting tools decide how to render.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_DIAGNOSTICS_H
#define SUS_SUPPORT_DIAGNOSTICS_H

#include <ostream>
#include <string>
#include <vector>

namespace sus {

/// A location in a DSL source buffer (1-based; 0 means "unknown").
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

/// Severity of a diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// A single rendered diagnostic.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics; owned by the tool or test driver.
class DiagnosticEngine {
public:
  /// Reports a diagnostic at \p Loc. Messages follow the LLVM style: start
  /// lowercase, no trailing period.
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message);

  /// Reports an error with no location.
  void error(std::string Message) {
    report(DiagSeverity::Error, SourceLoc(), std::move(Message));
  }

  /// Reports an error at \p Loc.
  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }

  /// Reports a warning at \p Loc.
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }

  /// Reports a note at \p Loc.
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines.
  void print(std::ostream &OS) const;

  /// Drops all collected diagnostics.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace sus

#endif // SUS_SUPPORT_DIAGNOSTICS_H
