//===- support/ResourceGovernor.cpp - Deadlines, budgets, cancel ----------===//

#include "support/ResourceGovernor.h"

#include "support/Metrics.h"

#include <chrono>

using namespace sus;

namespace {

/// Deadline clock reads are amortized: poll() touches the clock once per
/// stride of ticks (and on the first tick, so an already-expired deadline
/// trips deterministically at kernel entry).
constexpr uint64_t PollStride = 16;

metrics::Counter &deadlineHitsCounter() {
  static metrics::Counter &C = metrics::counter("governor.deadline_hits");
  return C;
}

metrics::Counter &budgetHitsCounter() {
  static metrics::Counter &C = metrics::counter("governor.budget_hits");
  return C;
}

metrics::Counter &cancelRequestsCounter() {
  static metrics::Counter &C = metrics::counter("governor.cancel_requests");
  return C;
}

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

const char *sus::resourceKindName(ResourceKind K) {
  switch (K) {
  case ResourceKind::Deadline:
    return "deadline";
  case ResourceKind::Cancelled:
    return "cancelled";
  case ResourceKind::SubsetStates:
    return "subset_states";
  case ResourceKind::ProductStates:
    return "product_states";
  }
  return "unknown";
}

std::string ResourceExhausted::str() const {
  switch (Which) {
  case ResourceKind::Deadline:
    return "deadline exceeded (" + std::to_string(Spent) + "ms > " +
           std::to_string(Limit) + "ms)";
  case ResourceKind::Cancelled:
    return "cancelled";
  case ResourceKind::SubsetStates:
    return "subset-state budget exhausted (" + std::to_string(Spent) + " > " +
           std::to_string(Limit) + ")";
  case ResourceKind::ProductStates:
    return "product-state budget exhausted (" + std::to_string(Spent) +
           " > " + std::to_string(Limit) + ")";
  }
  return "resource exhausted";
}

void ResourceGovernor::setDeadlineAfterMillis(uint64_t Millis) {
  StartNanos = nowNanos();
  BudgetMillis = Millis;
  // An absolute deadline of 0 means "none", so clamp an armed deadline to
  // at least 1ns past the epoch (in practice now() is always far larger).
  uint64_t Abs = StartNanos + Millis * 1'000'000u;
  DeadlineNanos = Abs == 0 ? 1 : Abs;
}

void ResourceGovernor::setLimit(ResourceKind K, uint64_t Limit) {
  if (K == ResourceKind::SubsetStates)
    SubsetLimit = Limit;
  else if (K == ResourceKind::ProductStates)
    ProductLimit = Limit;
  else
    assert(false && "only state budgets are limitable");
}

uint64_t ResourceGovernor::limit(ResourceKind K) const {
  if (K == ResourceKind::SubsetStates)
    return SubsetLimit;
  if (K == ResourceKind::ProductStates)
    return ProductLimit;
  return Unlimited;
}

void ResourceGovernor::requestCancel() {
  // Relaxed exchange: the flag only ever goes false→true, the RMW makes
  // the first-setter-counts-once bookkeeping exact, and cancellation is
  // advisory — a worker may legitimately run a few more poll strides
  // before noticing. Nothing is published through the flag.
  if (!CancelFlag.exchange(true, std::memory_order_relaxed))
    cancelRequestsCounter().add();
}

std::optional<ResourceExhausted>
ResourceGovernor::deadlineTrip() const {
  uint64_t ElapsedMs = (nowNanos() - StartNanos) / 1'000'000u;
  if (ElapsedMs <= BudgetMillis)
    ElapsedMs = BudgetMillis; // Report at least the budget itself.
  return ResourceExhausted{ResourceKind::Deadline, ElapsedMs, BudgetMillis};
}

std::optional<ResourceExhausted> ResourceGovernor::poll() const {
  // All loads/RMWs relaxed: CancelFlag and DeadlineHit are sticky
  // one-way flags whose only invariant is "eventually observed, then
  // observed forever" (stickiness comes from the flag itself, not from
  // ordering); Ticks merely amortizes clock reads, and a lost stride in
  // a racy modulo costs one extra/skipped clock read, nothing more. The
  // clock, not inter-thread ordering, decides the deadline.
  if (CancelFlag.load(std::memory_order_relaxed))
    return ResourceExhausted{ResourceKind::Cancelled, 0, 0};
  if (DeadlineNanos == 0)
    return std::nullopt;
  if (DeadlineHit.load(std::memory_order_relaxed))
    return deadlineTrip();
  if (Ticks.fetch_add(1, std::memory_order_relaxed) % PollStride != 0)
    return std::nullopt;
  if (nowNanos() < DeadlineNanos)
    return std::nullopt;
  if (!DeadlineHit.exchange(true, std::memory_order_relaxed))
    deadlineHitsCounter().add();
  return deadlineTrip();
}

std::optional<ResourceExhausted>
ResourceGovernor::charge(ResourceKind K, uint64_t Spent) const {
  uint64_t L = limit(K);
  if (Spent <= L)
    return std::nullopt;
  budgetHitsCounter().add();
  return ResourceExhausted{K, Spent, L};
}

std::optional<ResourceExhausted> ResourceGovernor::trip() const {
  if (CancelFlag.load(std::memory_order_relaxed))
    return ResourceExhausted{ResourceKind::Cancelled, 0, 0};
  if (DeadlineHit.load(std::memory_order_relaxed))
    return deadlineTrip();
  return std::nullopt;
}
