//===- support/Diagnostics.cpp - Diagnostics engine ----------------------===//

#include "support/Diagnostics.h"

using namespace sus;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back({Severity, Loc, std::move(Message)});
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc.Line << ":" << D.Loc.Col << ": ";
    OS << severityName(D.Severity) << ": " << D.Message << "\n";
  }
}
