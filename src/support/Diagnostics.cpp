//===- support/Diagnostics.cpp - Diagnostics engine ----------------------===//

#include "support/Diagnostics.h"

#include <algorithm>
#include <numeric>
#include <tuple>

using namespace sus;

const char *sus::severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

Diagnostic &DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                                     std::string Message) {
  MutexLock Lock(M);
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back({Severity, Loc, std::move(Message), {}, {}, {}});
  // Deque references are stable across push_back, so handing this out
  // past the unlock is safe; decorating it races only with rendering,
  // which the class contract forbids overlapping.
  Diagnostic &Reported = Diags.back();
  return Reported;
}

std::vector<size_t> DiagnosticEngine::renderOrder() const {
  std::vector<size_t> Order(Diags.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  auto Key = [&](size_t I) {
    const Diagnostic &D = Diags[I];
    return std::make_tuple(D.Loc.File, D.Loc.Line, D.Loc.Col, D.Severity);
  };
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t A, size_t B) { return Key(A) < Key(B); });

  // Drop exact duplicates: after the stable sort they are adjacent.
  auto SameDiag = [&](size_t A, size_t B) {
    const Diagnostic &X = Diags[A];
    const Diagnostic &Y = Diags[B];
    return X.Severity == Y.Severity && X.Loc == Y.Loc &&
           X.Message == Y.Message && X.ID == Y.ID && X.Notes == Y.Notes;
  };
  Order.erase(std::unique(Order.begin(), Order.end(), SameDiag), Order.end());
  return Order;
}

static void printLocPrefix(std::ostream &OS, const SourceLoc &Loc) {
  if (!Loc.File.empty())
    OS << Loc.File << ":";
  if (Loc.isValid())
    OS << Loc.Line << ":" << Loc.Col << ": ";
  else if (!Loc.File.empty())
    OS << " ";
}

void DiagnosticEngine::print(std::ostream &OS) const {
  MutexLock Lock(M);
  for (size_t I : renderOrder()) {
    const Diagnostic &D = Diags[I];
    printLocPrefix(OS, D.Loc);
    OS << severityName(D.Severity) << ": " << D.Message;
    if (!D.ID.empty())
      OS << " [" << D.ID << "]";
    OS << "\n";
    for (const DiagNote &N : D.Notes) {
      OS << "  ";
      printLocPrefix(OS, N.Loc);
      OS << "note: " << N.Message << "\n";
    }
  }
}

/// Escapes \p S for a JSON string literal.
static void printJsonString(std::ostream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        const char *Hex = "0123456789abcdef";
        OS << "\\u00" << Hex[(C >> 4) & 0xF] << Hex[C & 0xF];
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

static void printJsonDiag(std::ostream &OS, const DiagSeverity Severity,
                          const SourceLoc &Loc, const std::string &Message,
                          const std::string &ID, const std::string &Category) {
  OS << "{\"file\": ";
  printJsonString(OS, Loc.File);
  OS << ", \"line\": " << Loc.Line << ", \"col\": " << Loc.Col
     << ", \"severity\": ";
  printJsonString(OS, severityName(Severity));
  OS << ", \"id\": ";
  printJsonString(OS, ID);
  OS << ", \"category\": ";
  printJsonString(OS, Category);
  OS << ", \"message\": ";
  printJsonString(OS, Message);
}

void DiagnosticEngine::printJson(std::ostream &OS) const {
  MutexLock Lock(M);
  OS << "[";
  bool First = true;
  for (size_t I : renderOrder()) {
    const Diagnostic &D = Diags[I];
    if (!First)
      OS << ",";
    First = false;
    OS << "\n  ";
    printJsonDiag(OS, D.Severity, D.Loc, D.Message, D.ID, D.Category);
    OS << ", \"notes\": [";
    bool FirstNote = true;
    for (const DiagNote &N : D.Notes) {
      if (!FirstNote)
        OS << ",";
      FirstNote = false;
      OS << "\n    ";
      printJsonDiag(OS, DiagSeverity::Note, N.Loc, N.Message, "", "");
      OS << "}";
    }
    if (!FirstNote)
      OS << "\n  ";
    OS << "]}";
  }
  if (!First)
    OS << "\n";
  OS << "]\n";
}
