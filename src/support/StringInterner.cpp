//===- support/StringInterner.cpp - String interning table ---------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace sus;

Symbol StringInterner::intern(std::string_view Str) {
  auto It = Table.find(Str);
  if (It != Table.end())
    return It->second;

  assert(Storage.size() < ~0u && "interner overflow");
  Storage.emplace_back(Str);
  Symbol S(static_cast<uint32_t>(Storage.size() - 1));
  Table.emplace(std::string_view(Storage.back()), S);
  return S;
}

std::string_view StringInterner::text(Symbol S) const {
  assert(S.isValid() && S.id() < Storage.size() && "foreign symbol");
  return Storage[S.id()];
}

Symbol StringInterner::lookup(std::string_view Str) const {
  auto It = Table.find(Str);
  return It == Table.end() ? Symbol() : It->second;
}

void StringInterner::seedFrom(const StringInterner &Other) {
  assert(Storage.size() <= Other.Storage.size() &&
         "seed target must be a prefix of the source");
  for (uint32_t Id = 0; Id < Other.Storage.size(); ++Id) {
    Symbol S = intern(Other.Storage[Id]);
    (void)S;
    assert(S.id() == Id && "seed target diverged from the source");
  }
}
