//===- support/TenantBudget.h - Per-tenant resource budgets -----*- C++ -*-===//
///
/// \file
/// Per-tenant deadline and state-budget policy for the resident daemon
/// (susd). Every request names a tenant (default "*"); the table maps the
/// tenant to its budget, and a fresh ResourceGovernor is armed per
/// request so one tenant's runaway query cannot starve another: the
/// deadline always restarts from the moment the request is admitted.
///
/// A budget combines with per-request overrides by *minimum*: a tenant
/// capped at 100ms stays capped even when its request asks for 10s, while
/// a request asking for 5ms under a 100ms tenant gets 5ms. Absent fields
/// (NoLimit) are identities of the min.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_TENANTBUDGET_H
#define SUS_SUPPORT_TENANTBUDGET_H

#include "support/ResourceGovernor.h"

#include <map>
#include <memory>
#include <string>

namespace sus {

/// One tenant's resource ceiling. NoLimit fields are unconstrained.
struct TenantBudget {
  static constexpr uint64_t NoLimit = ~uint64_t(0);

  uint64_t DeadlineMs = NoLimit;
  uint64_t MaxProductStates = NoLimit;
  uint64_t MaxSubsetStates = NoLimit;

  bool unlimited() const {
    return DeadlineMs == NoLimit && MaxProductStates == NoLimit &&
           MaxSubsetStates == NoLimit;
  }

  /// Field-wise minimum (NoLimit = identity).
  TenantBudget min(const TenantBudget &Other) const;
};

/// The tenant → budget policy table, built from --tenant specs at daemon
/// startup and read-only afterwards (so no lock is needed at request
/// admission).
class TenantBudgetTable {
public:
  /// Parses one "NAME:DEADLINE_MS:PRODUCT_STATES:SUBSET_STATES" spec.
  /// Empty fields mean "no limit" ("web:100::" caps only the deadline);
  /// the name "*" sets the default budget for unlisted tenants. Returns
  /// false with a one-line diagnostic in \p Err on a malformed spec
  /// (missing fields, non-numeric values, duplicate tenant).
  bool addSpec(const std::string &Spec, std::string &Err);

  /// The budget of \p Tenant: its own row, else the "*" default, else
  /// unlimited.
  const TenantBudget &lookup(const std::string &Tenant) const;

  size_t size() const { return Budgets.size(); }

  /// Builds the per-request governor for \p Tenant, folding in the
  /// request's own \p Override budget by minimum and arming the deadline
  /// *now*. Null when the combined budget is unlimited (the ungoverned
  /// fast path).
  std::shared_ptr<ResourceGovernor>
  governorFor(const std::string &Tenant, const TenantBudget &Override) const;

private:
  std::map<std::string, TenantBudget> Budgets;
  TenantBudget Default;
  bool HaveDefault = false;
};

} // namespace sus

#endif // SUS_SUPPORT_TENANTBUDGET_H
