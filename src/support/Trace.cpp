//===- support/Trace.cpp - Low-overhead span tracing ----------------------===//

#include "support/Trace.h"

#include "support/Sync.h"

#include <chrono>
#include <thread>
#include <vector>

using namespace sus;

namespace {

struct SpanRecord {
  const char *Name;
  const char *Category;
  uint64_t StartNanos;
  uint64_t EndNanos;
  uint32_t Tid;
  const char *TagKey;
  const char *TagValue;
  const char *CountKey;
  int64_t CountValue;
};

/// The ring plus everything needed to drain it. One mutex serializes
/// writers; a span is recorded once, on destruction, so the critical
/// section is a handful of stores. M is a leaf lock: nothing else is
/// ever acquired while it is held.
struct Ring {
  Mutex M;
  std::vector<SpanRecord> Slots SUS_GUARDED_BY(M);
  size_t Capacity SUS_GUARDED_BY(M) = 0;
  size_t Next SUS_GUARDED_BY(M) = 0;    ///< Write cursor (wraps).
  size_t Count SUS_GUARDED_BY(M) = 0;   ///< Live records, <= Capacity.
  size_t Dropped SUS_GUARDED_BY(M) = 0; ///< Overwritten records.
};

Ring &ring() {
  static Ring *R = new Ring; // Leaked: spans may outlive static dtors.
  return *R;
}

/// Small dense thread ids for the trace output (std::thread::id values
/// are opaque and enormous).
std::atomic<uint32_t> NextTid{0};

uint32_t currentTid() {
  // Relaxed is enough: fetch_add is a single atomic RMW, so every thread
  // still draws a unique id — uniqueness is the only invariant; no other
  // data is published through this counter, so no ordering is needed.
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

/// Escapes a (trusted, literal) string for a JSON string literal. Names
/// are call-site literals, but a stray quote must not corrupt the file.
void writeJsonString(std::ostream &OS, const char *S) {
  OS << '"';
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (static_cast<unsigned char>(C) < 0x20)
      OS << "\\u00" << "0123456789abcdef"[(C >> 4) & 0xf]
         << "0123456789abcdef"[C & 0xf];
    else
      OS << C;
  }
  OS << '"';
}

} // namespace

std::atomic<bool> trace::detail::Enabled{false};

uint64_t trace::detail::nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void trace::detail::record(const char *Name, const char *Category,
                           uint64_t StartNanos, uint64_t EndNanos,
                           const char *TagKey, const char *TagValue,
                           const char *CountKey, int64_t CountValue) {
  uint32_t Tid = currentTid();
  Ring &R = ring();
  MutexLock Lock(R.M);
  if (R.Capacity == 0)
    return; // Disabled (or never enabled) between open and close.
  SpanRecord &Slot = R.Slots[R.Next];
  if (R.Count == R.Capacity)
    ++R.Dropped;
  else
    ++R.Count;
  Slot = {Name,   Category, StartNanos, EndNanos,  Tid,
          TagKey, TagValue, CountKey,   CountValue};
  R.Next = (R.Next + 1) % R.Capacity;
}

void trace::enable(size_t Capacity) {
  Ring &R = ring();
  {
    MutexLock Lock(R.M);
    R.Capacity = Capacity == 0 ? 1 : Capacity;
    R.Slots.assign(R.Capacity, SpanRecord{});
    R.Next = R.Count = R.Dropped = 0;
  }
  // Relaxed store is safe even though it publishes the gate *after* the
  // ring was initialized above: Enabled is only a hint. A recorder that
  // observes Enabled==true must still acquire R.M before touching the
  // ring, and that acquire synchronizes with the release of R.M in the
  // block above, making the initialized Capacity/Slots visible. A
  // recorder that races ahead of that handoff sees Capacity==0 under the
  // lock and drops the span — never a torn ring.
  detail::Enabled.store(true, std::memory_order_relaxed);
}

void trace::disable() {
  // Relaxed: disabling is advisory. In-flight spans that already loaded
  // Enabled==true still record through R.M, which is the real serializer.
  detail::Enabled.store(false, std::memory_order_relaxed);
}

void trace::reset() {
  Ring &R = ring();
  MutexLock Lock(R.M);
  R.Next = R.Count = R.Dropped = 0;
}

size_t trace::spanCount() {
  Ring &R = ring();
  MutexLock Lock(R.M);
  return R.Count;
}

size_t trace::droppedSpans() {
  Ring &R = ring();
  MutexLock Lock(R.M);
  return R.Dropped;
}

void trace::writeChromeTrace(std::ostream &OS) {
  Ring &R = ring();
  MutexLock Lock(R.M);
  // Chrome wants microseconds; keep nanosecond resolution as a
  // zero-padded fractional part.
  auto WriteMicros = [&OS](uint64_t Nanos) {
    OS << Nanos / 1000 << '.' << static_cast<char>('0' + (Nanos / 100) % 10)
       << static_cast<char>('0' + (Nanos / 10) % 10)
       << static_cast<char>('0' + Nanos % 10);
  };
  OS << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  // Oldest record first: when the ring has wrapped, the write cursor
  // points at it; otherwise it is slot 0.
  size_t First = R.Count == R.Capacity ? R.Next : 0;
  for (size_t I = 0; I < R.Count; ++I) {
    const SpanRecord &S = R.Slots[(First + I) % R.Capacity];
    if (I != 0)
      OS << ",";
    OS << "\n{\"name\":";
    writeJsonString(OS, S.Name);
    OS << ",\"cat\":";
    writeJsonString(OS, S.Category);
    OS << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << S.Tid;
    OS << ",\"ts\":";
    WriteMicros(S.StartNanos);
    OS << ",\"dur\":";
    WriteMicros(S.EndNanos - S.StartNanos);
    if (S.TagKey || S.CountKey) {
      OS << ",\"args\":{";
      if (S.TagKey) {
        writeJsonString(OS, S.TagKey);
        OS << ":";
        writeJsonString(OS, S.TagValue ? S.TagValue : "");
      }
      if (S.CountKey) {
        if (S.TagKey)
          OS << ",";
        writeJsonString(OS, S.CountKey);
        OS << ":" << S.CountValue;
      }
      OS << "}";
    }
    OS << "}";
  }
  OS << "\n]}\n";
}
