//===- support/Arena.h - Bump-pointer allocator -----------------*- C++ -*-===//
///
/// \file
/// A simple bump-pointer arena. AST nodes (history expressions, lambda
/// terms, BPA processes) are allocated here and live as long as their
/// owning context; they are never individually freed, which is what makes
/// hash-consed immutable nodes cheap to share.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_ARENA_H
#define SUS_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace sus {

/// Bump allocator with destructor tracking.
///
/// `create<T>(...)` constructs a T inside the arena; its destructor runs
/// when the arena is destroyed. Allocation never fails short of OOM.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena() {
    // Run destructors in reverse construction order.
    for (auto It = Dtors.rbegin(); It != Dtors.rend(); ++It)
      It->Destroy(It->Object);
  }

  /// Constructs a \p T in the arena and returns a pointer owned by it.
  template <typename T, typename... Args> T *create(Args &&...As) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(As)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Raw aligned allocation inside the arena.
  void *allocate(size_t Size, size_t Align) {
    assert(Align > 0 && (Align & (Align - 1)) == 0 && "non power-of-2 align");
    uintptr_t Cur = reinterpret_cast<uintptr_t>(Ptr);
    uintptr_t Aligned = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      grow(Size + Align);
      Cur = reinterpret_cast<uintptr_t>(Ptr);
      Aligned = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    }
    Ptr = reinterpret_cast<char *>(Aligned + Size);
    return reinterpret_cast<void *>(Aligned);
  }

  /// Total bytes reserved by the arena so far (diagnostics/benchmarks).
  size_t bytesReserved() const { return Reserved; }

private:
  void grow(size_t AtLeast) {
    size_t SlabSize = Slabs.empty() ? 4096 : Slabs.back().size() * 2;
    if (SlabSize < AtLeast)
      SlabSize = AtLeast;
    Slabs.emplace_back(SlabSize);
    Ptr = Slabs.back().data();
    End = Ptr + SlabSize;
    Reserved += SlabSize;
  }

  struct DtorEntry {
    void *Object;
    void (*Destroy)(void *);
  };

  std::vector<std::vector<char>> Slabs;
  std::vector<DtorEntry> Dtors;
  char *Ptr = nullptr;
  char *End = nullptr;
  size_t Reserved = 0;
};

} // namespace sus

#endif // SUS_SUPPORT_ARENA_H
