//===- support/Sync.h - Capability-annotated sync primitives ----*- C++ -*-===//
///
/// \file
/// Thread-safety building blocks for every concurrent subsystem in the
/// tree, annotated for Clang's static thread-safety analysis
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
///
/// The annotations turn the informal comments "guarded by M" that used to
/// decorate shared fields into compiler-checked facts: a dedicated CI leg
/// builds all of src/ with `-Wthread-safety -Wthread-safety-beta -Werror`,
/// so an unguarded access, a missing lock precondition, or a lock-order
/// inversion is a build break on every path — including cold paths no
/// differential seed exercises. On non-Clang compilers (the tier-1 GCC
/// build, MSVC) every macro degrades to nothing and the wrappers compile
/// down to the plain std types they hold.
///
/// Ground rules (DESIGN.md §11 has the full story):
///  - All lock-based shared state uses sus::Mutex + sus::MutexLock; raw
///    std::mutex members are banned outside this header.
///  - Every guarded field carries SUS_GUARDED_BY(M); every private
///    "...Locked" helper carries SUS_REQUIRES(M).
///  - Lock acquisition order is encoded with SUS_ACQUIRED_BEFORE/AFTER
///    where two locks genuinely nest (today: ThreadPool::StateMutex
///    before any WorkerQueue::M).
///  - No lock is ever held across user callbacks or task execution.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_SYNC_H
#define SUS_SUPPORT_SYNC_H

#include <condition_variable>
#include <mutex>

// Clang exposes the analysis attributes via __attribute__; GCC and MSVC
// parse but ignore (or reject) them, so everything vanishes elsewhere.
#if defined(__clang__)
#define SUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SUS_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/// Declares a class to be a capability ("mutex"-kind) the analysis tracks.
#define SUS_CAPABILITY(x) SUS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define SUS_SCOPED_CAPABILITY SUS_THREAD_ANNOTATION(scoped_lockable)

/// Field attribute: reads and writes require holding \p x.
#define SUS_GUARDED_BY(x) SUS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field attribute: dereferences require holding \p x (the
/// pointer itself is unguarded).
#define SUS_PT_GUARDED_BY(x) SUS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: callers must hold the listed capabilities.
#define SUS_REQUIRES(...) \
  SUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: the function acquires the listed capabilities
/// (which must not already be held).
#define SUS_ACQUIRE(...) \
  SUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: the function releases the listed capabilities.
#define SUS_RELEASE(...) \
  SUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the return value
/// equals the first argument.
#define SUS_TRY_ACQUIRE(...) \
  SUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function attribute: callers must NOT hold the listed capabilities
/// (guards against self-deadlock on non-reentrant locks).
#define SUS_EXCLUDES(...) SUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Field attribute on a capability: this lock is acquired before \p x
/// in the global lock order. Checked under -Wthread-safety-beta.
#define SUS_ACQUIRED_BEFORE(...) \
  SUS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Field attribute on a capability: this lock is acquired after \p x.
#define SUS_ACQUIRED_AFTER(...) \
  SUS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function attribute: asserts (without acquiring) that the capability is
/// held — for runtime-checked entry points.
#define SUS_ASSERT_CAPABILITY(x) SUS_THREAD_ANNOTATION(assert_capability(x))

/// Function attribute: the returned reference is guarded by \p x.
#define SUS_RETURN_CAPABILITY(x) SUS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment proving why the access is safe anyway.
#define SUS_NO_THREAD_SAFETY_ANALYSIS \
  SUS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sus {

class CondVar;
class MutexLock;

/// A std::mutex the analysis knows about. Prefer the scoped MutexLock;
/// the manual lock()/unlock() pair exists for the rare split-scope case.
class SUS_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() SUS_ACQUIRE() { M.lock(); }
  void unlock() SUS_RELEASE() { M.unlock(); }
  bool tryLock() SUS_TRY_ACQUIRE(true) { return M.try_lock(); }

private:
  friend class MutexLock;
  std::mutex M;
};

/// RAII lock over a Mutex. Wraps std::unique_lock so CondVar::wait can
/// release/reacquire it without giving up the std::condition_variable
/// fast path.
class SUS_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &Mu) SUS_ACQUIRE(Mu) : Inner(Mu.M) {}
  ~MutexLock() SUS_RELEASE() {}

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  friend class CondVar;
  std::unique_lock<std::mutex> Inner;
};

/// Condition variable paired with Mutex/MutexLock.
///
/// Deliberately has no predicate-lambda overload: Clang analyzes lambdas
/// as separate functions, so a predicate reading fields guarded by the
/// very lock wait() reacquires would be flagged as an unguarded access.
/// Callers write the classic explicit loop instead, which the analysis
/// checks precisely:
/// \code
///   MutexLock Lock(M);
///   while (!condition)  // fields guarded by M: OK, lock is held
///     CV.wait(Lock);
/// \endcode
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  /// Atomically releases \p Lock, blocks, reacquires before returning.
  /// The caller must hold the lock; spurious wakeups happen — always
  /// wait in a while loop.
  void wait(MutexLock &Lock) { CV.wait(Lock.Inner); }

  void notifyOne() { CV.notify_one(); }
  void notifyAll() { CV.notify_all(); }

private:
  std::condition_variable CV;
};

} // namespace sus

#endif // SUS_SUPPORT_SYNC_H
