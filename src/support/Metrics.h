//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
///
/// \file
/// A process-wide registry of named counters, gauges and histograms, plus
/// always-on wall-clock time accounts. Handles are obtained once (cache
/// them in a function-local static at the call site) and are stable for
/// the life of the process; the registry is intentionally leaked so
/// handles stay valid during static destruction.
///
/// Overhead contract: while metrics are disabled (the default), every
/// mutation bottoms out in one relaxed atomic load and a branch. Enabled
/// counters and histograms add into lock-free per-thread shards (relaxed
/// fetch_add on a cache-line-padded slot) that are only merged when a
/// report is written. Time accounts are the exception: they are always on
/// (one atomic add per outermost scope — the KernelStats contract) so
/// benchmark trajectories never depend on a flag.
///
/// writeJson() renders everything as one JSON object with a stable
/// "sus-metrics-v1" shape; tests/metrics_schema.json is the normative
/// schema.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_METRICS_H
#define SUS_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string_view>

namespace sus {
namespace metrics {

namespace detail {
extern std::atomic<bool> Enabled;

/// Shard fan-out for counters and histograms. Threads hash onto shards,
/// so this bounds contention, not thread count.
constexpr unsigned NumShards = 16;

/// The executing thread's shard index.
unsigned shardIndex();

struct alignas(64) Shard {
  std::atomic<uint64_t> Value{0};
};
} // namespace detail

/// True while metric mutation is on: the one-atomic-load gate.
///
/// Relaxed is sufficient: the gate publishes no data (instruments are
/// zero-initialized atomics, every mutation is itself atomic), so a
/// thread acting on a stale reading at worst skips or lands one extra
/// sample — never a race. See metrics::enable() in Metrics.cpp.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

void enable();
void disable();

/// Zeroes every counter, gauge and histogram (time accounts are reset
/// through their own reset(), as KernelStats always has been).
void reset();

/// A monotone counter, sharded per thread.
class Counter {
public:
  void add(uint64_t N = 1) {
    if (!enabled())
      return;
    // Relaxed fetch_add: each shard is an independent monotone
    // accumulator; no reader infers anything from one shard about
    // another, so no inter-shard ordering is needed — atomicity of the
    // RMW alone guarantees no increment is lost.
    Shards[detail::shardIndex()].Value.fetch_add(N,
                                                 std::memory_order_relaxed);
  }

  /// Merged value across shards. Relaxed loads: the merge is an
  /// eventually-consistent snapshot by contract — reports run after
  /// writers quiesce (waitIdle/process exit), where every relaxed add is
  /// already visible via the joins' synchronization.
  uint64_t value() const {
    uint64_t Sum = 0;
    for (const detail::Shard &S : Shards)
      Sum += S.Value.load(std::memory_order_relaxed);
    return Sum;
  }

  void resetValue() {
    for (detail::Shard &S : Shards)
      S.Value.store(0, std::memory_order_relaxed);
  }

private:
  detail::Shard Shards[detail::NumShards];
};

/// A last-write-wins (or running-max) signed gauge.
class Gauge {
public:
  void set(int64_t V) {
    if (enabled())
      Value.store(V, std::memory_order_relaxed);
  }

  /// Raises the gauge to \p V if larger (high-water marks).
  ///
  /// Relaxed CAS loop: the invariant — the gauge ends at the maximum of
  /// all setMax arguments once writers quiesce — only needs the CAS to
  /// be atomic; a stale initial load just retries. No other location is
  /// published through the gauge, so no ordering is owed.
  void setMax(int64_t V) {
    if (!enabled())
      return;
    int64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  int64_t value() const { return Value.load(std::memory_order_relaxed); }
  void resetValue() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// A log2-bucketed histogram of unsigned samples: bucket B counts samples
/// with bit_width(V) == B (bucket 0 holds zeros). Count and sum are
/// sharded; min/max are single CAS-updated atomics (updates are rare once
/// the envelope settles).
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void observe(uint64_t V);

  uint64_t count() const { return merged(CountShards); }
  uint64_t sum() const { return merged(SumShards); }
  /// Largest observed sample, 0 if empty.
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  /// Smallest observed sample, 0 if empty.
  uint64_t min() const {
    uint64_t M = Min.load(std::memory_order_relaxed);
    return M == ~uint64_t(0) ? 0 : M;
  }
  uint64_t bucket(unsigned B) const;
  void resetValue();

private:
  uint64_t merged(const detail::Shard *Shards) const {
    uint64_t Sum = 0;
    for (unsigned I = 0; I < detail::NumShards; ++I)
      Sum += Shards[I].Value.load(std::memory_order_relaxed);
    return Sum;
  }

  detail::Shard CountShards[detail::NumShards];
  detail::Shard SumShards[detail::NumShards];
  /// Buckets are plain atomics (not sharded): 64 × NumShards pads poorly,
  /// and bucket increments already spread across 64 lines.
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Min{~uint64_t(0)};
  std::atomic<uint64_t> Max{0};
};

/// An always-on wall-clock accumulator (nanoseconds). Unlike the gated
/// instruments above, adds always land: time accounts back KernelStats,
/// whose readings benches consume unconditionally.
class TimeAccount {
public:
  void add(uint64_t Nanos) {
    // Relaxed: a single monotone accumulator; atomic RMW loses nothing,
    // and readers (bench reports) run after the measured work joins.
    Value.fetch_add(Nanos, std::memory_order_relaxed);
  }
  uint64_t nanos() const { return Value.load(std::memory_order_relaxed); }
  void resetValue() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Interns \p Name and returns its process-wide instrument. The first
/// call for a name creates it; the registry lock makes this the one
/// non-lock-free path, so cache the reference at the call site.
Counter &counter(std::string_view Name);
Gauge &gauge(std::string_view Name);
Histogram &histogram(std::string_view Name);
TimeAccount &timeAccount(std::string_view Name);

/// Renders every registered instrument as the sus-metrics-v1 JSON object.
void writeJson(std::ostream &OS);

} // namespace metrics
} // namespace sus

#endif // SUS_SUPPORT_METRICS_H
