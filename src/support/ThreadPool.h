//===- support/ThreadPool.h - Small work-stealing thread pool ---*- C++ -*-===//
///
/// \file
/// A small fixed-size work-stealing thread pool for fanning independent
/// verification units out over the hardware. Each worker owns a deque:
/// new work is distributed round-robin, a worker pops its own deque LIFO
/// (cache-friendly) and steals FIFO from the others when it runs dry.
///
/// Tasks receive the id of the worker *executing* them, so callers can
/// keep per-worker scratch state (e.g. a per-shard HistContext) without
/// any synchronization: one worker runs one task at a time.
///
/// The pool itself makes no determinism promises — callers that need
/// deterministic output must make tasks independent and slot results by
/// index (see core::Verifier).
///
/// Lock order (checked statically, see DESIGN.md §11): StateMutex is
/// acquired before any WorkerQueue::M (submit, cancelPending, the
/// worker-loop recheck). grabTask takes queue mutexes alone. No lock is
/// ever held while a task executes.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_THREADPOOL_H
#define SUS_SUPPORT_THREADPOOL_H

#include "support/Sync.h"

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace sus {

/// A fixed-width work-stealing pool.
class ThreadPool {
public:
  /// A unit of work; receives the executing worker's id in [0, numWorkers).
  using Task = std::function<void(unsigned WorkerId)>;

  /// Spawns \p Workers threads (at least 1).
  explicit ThreadPool(unsigned Workers);

  /// Drains remaining work, then joins every worker. The drain *runs*
  /// queued-but-unstarted tasks to completion — destroying a pool never
  /// silently drops work. Call cancelPending() first for a fast shutdown
  /// that discards the backlog instead (reported via "pool.cancelled").
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numWorkers() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues one task (round-robin across worker deques).
  void submit(Task T);

  /// Blocks until every submitted task has finished executing.
  void waitIdle();

  /// Cooperative cancellation's pool half: discards every queued-but-
  /// unstarted task (in-flight tasks keep running — stopping them is the
  /// ResourceGovernor token's job) and wakes waiters whose work just
  /// vanished. Each discarded task is counted in the "pool.cancelled"
  /// metric, never silently dropped. Returns the number discarded.
  size_t cancelPending();

  /// A sensible default width: the hardware concurrency, at least 1.
  static unsigned defaultWorkers();

private:
  void workerLoop(unsigned Id);

  /// Executes \p T, accounting busy time to the metrics registry and a
  /// "pool.task" span when observability is on. Called with no pool lock
  /// held — tasks must never run under StateMutex or a queue mutex.
  void runTask(unsigned Id, Task &T);

  /// Pops work for worker \p Id: its own deque back first, then steals
  /// from the front of the others. Returns false when nothing is queued.
  /// Takes queue mutexes one at a time, never StateMutex.
  bool grabTask(unsigned Id, Task &Out);

  struct WorkerQueue {
    explicit WorkerQueue(ThreadPool &Parent) : Parent(Parent) {}

    /// Back-pointer so the lock-order annotation below can name the
    /// pool's StateMutex from inside the nested struct.
    ThreadPool &Parent;

    /// Leaf lock: nested inside StateMutex on the submit/cancel/recheck
    /// paths, taken alone by grabTask. Never wraps another lock.
    Mutex M SUS_ACQUIRED_AFTER(Parent.StateMutex);
    std::deque<Task> Q SUS_GUARDED_BY(M);
  };

  /// Written once in the constructor before any worker starts, immutable
  /// afterwards — the vector itself needs no guard, only each queue's Q.
  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Threads;

  Mutex StateMutex;
  CondVar WorkAvailable; ///< Signalled on submit/stop.
  CondVar AllDone;       ///< Signalled when Unfinished==0.
  /// Queued + currently executing tasks.
  size_t Unfinished SUS_GUARDED_BY(StateMutex) = 0;
  /// Round-robin submit cursor.
  size_t NextQueue SUS_GUARDED_BY(StateMutex) = 0;
  bool Stopping SUS_GUARDED_BY(StateMutex) = false;
};

} // namespace sus

#endif // SUS_SUPPORT_THREADPOOL_H
