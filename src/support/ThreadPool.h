//===- support/ThreadPool.h - Small work-stealing thread pool ---*- C++ -*-===//
///
/// \file
/// A small fixed-size work-stealing thread pool for fanning independent
/// verification units out over the hardware. Each worker owns a deque:
/// new work is distributed round-robin, a worker pops its own deque LIFO
/// (cache-friendly) and steals FIFO from the others when it runs dry.
///
/// Tasks receive the id of the worker *executing* them, so callers can
/// keep per-worker scratch state (e.g. a per-shard HistContext) without
/// any synchronization: one worker runs one task at a time.
///
/// The pool itself makes no determinism promises — callers that need
/// deterministic output must make tasks independent and slot results by
/// index (see core::Verifier).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_THREADPOOL_H
#define SUS_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sus {

/// A fixed-width work-stealing pool.
class ThreadPool {
public:
  /// A unit of work; receives the executing worker's id in [0, numWorkers).
  using Task = std::function<void(unsigned WorkerId)>;

  /// Spawns \p Workers threads (at least 1).
  explicit ThreadPool(unsigned Workers);

  /// Drains remaining work, then joins every worker. The drain *runs*
  /// queued-but-unstarted tasks to completion — destroying a pool never
  /// silently drops work. Call cancelPending() first for a fast shutdown
  /// that discards the backlog instead (reported via "pool.cancelled").
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numWorkers() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues one task (round-robin across worker deques).
  void submit(Task T);

  /// Blocks until every submitted task has finished executing.
  void waitIdle();

  /// Cooperative cancellation's pool half: discards every queued-but-
  /// unstarted task (in-flight tasks keep running — stopping them is the
  /// ResourceGovernor token's job) and wakes waiters whose work just
  /// vanished. Each discarded task is counted in the "pool.cancelled"
  /// metric, never silently dropped. Returns the number discarded.
  size_t cancelPending();

  /// A sensible default width: the hardware concurrency, at least 1.
  static unsigned defaultWorkers();

private:
  void workerLoop(unsigned Id);

  /// Executes \p T, accounting busy time to the metrics registry and a
  /// "pool.task" span when observability is on.
  void runTask(unsigned Id, Task &T);

  /// Pops work for worker \p Id: its own deque back first, then steals
  /// from the front of the others. Returns false when nothing is queued.
  bool grabTask(unsigned Id, Task &Out);

  struct WorkerQueue {
    std::mutex M;
    std::deque<Task> Q;
  };

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Threads;

  std::mutex StateMutex;
  std::condition_variable WorkAvailable; ///< Signalled on submit/stop.
  std::condition_variable AllDone;       ///< Signalled when Unfinished==0.
  size_t Unfinished = 0; ///< Queued + currently executing tasks.
  size_t NextQueue = 0;  ///< Round-robin submit cursor.
  bool Stopping = false;
};

} // namespace sus

#endif // SUS_SUPPORT_THREADPOOL_H
