//===- support/Trace.h - Low-overhead span tracing --------------*- C++ -*-===//
///
/// \file
/// A process-wide span tracer for the verification pipeline. Call sites
/// open an RAII Span naming the phase ("plan.verify", "net.explore", ...);
/// completed spans land in a fixed-capacity thread-safe ring buffer and
/// can be exported as Chrome trace_event JSON (loadable in
/// chrome://tracing and Perfetto) via writeChromeTrace().
///
/// Overhead contract: while tracing is disabled (the default), opening a
/// span costs exactly one relaxed atomic load and a branch — no clock
/// read, no allocation, no lock. Enabled spans take two clock reads plus
/// one short critical section on destruction. Names, categories and tag
/// values must be string literals (or otherwise outlive the trace); the
/// ring stores only the pointers, so the hot path never copies strings.
///
/// The ring keeps the most recent spans: once full, new spans overwrite
/// the oldest and droppedSpans() counts the casualties, so a runaway
/// workload degrades the trace instead of memory.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_TRACE_H
#define SUS_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <ostream>

namespace sus {
namespace trace {

namespace detail {
extern std::atomic<bool> Enabled;
uint64_t nowNanos();
void record(const char *Name, const char *Category, uint64_t StartNanos,
            uint64_t EndNanos, const char *TagKey, const char *TagValue,
            const char *CountKey, int64_t CountValue);
} // namespace detail

/// True while span collection is on. The one-atomic-load gate every
/// disabled span bottoms out in.
///
/// Relaxed is deliberate and sufficient: the gate carries no data. Every
/// recorder that acts on a true reading still takes the ring mutex, and
/// that mutex (released by enable() after initializing the ring) provides
/// the happens-before edge for the ring state itself. See
/// trace::enable() in Trace.cpp for the full argument.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Starts collecting spans into a fresh ring of \p Capacity slots.
void enable(size_t Capacity = 1 << 16);

/// Stops collection; already-recorded spans remain exportable.
void disable();

/// Discards every recorded span and the drop count (collection state is
/// left as-is).
void reset();

/// Completed spans currently held in the ring.
size_t spanCount();

/// Spans overwritten because the ring was full.
size_t droppedSpans();

/// Exports every retained span as Chrome trace_event JSON ("X" complete
/// events, microsecond timestamps), oldest first.
void writeChromeTrace(std::ostream &OS);

/// An RAII scoped span. The span covers the scope's lifetime; optional
/// tag()/count() attach one string and one integer argument rendered into
/// the trace_event "args" object.
class Span {
public:
  Span(const char *Name, const char *Category)
      : Name(Name), Category(Category),
        StartNanos(enabled() ? detail::nowNanos() : 0) {}

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  ~Span() {
    if (StartNanos != 0)
      detail::record(Name, Category, StartNanos, detail::nowNanos(), TagKey,
                     TagValue, CountKey, CountValue);
  }

  /// Attaches a string argument; both pointers must be string literals.
  void tag(const char *Key, const char *Value) {
    TagKey = Key;
    TagValue = Value;
  }

  /// Attaches an integer argument; \p Key must be a string literal.
  void count(const char *Key, int64_t Value) {
    CountKey = Key;
    CountValue = Value;
  }

private:
  const char *Name;
  const char *Category;
  uint64_t StartNanos; ///< 0 = tracing was off when the span opened.
  const char *TagKey = nullptr;
  const char *TagValue = nullptr;
  const char *CountKey = nullptr;
  int64_t CountValue = 0;
};

} // namespace trace
} // namespace sus

#endif // SUS_SUPPORT_TRACE_H
