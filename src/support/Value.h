//===- support/Value.h - Event/policy parameter values ----------*- C++ -*-===//
///
/// \file
/// The values that parameterize events and policies. The paper's example
/// uses both entity names (hotels in a black list) and numbers (prices,
/// ratings), so a Value is none, a 64-bit integer, or an interned name.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_VALUE_H
#define SUS_SUPPORT_VALUE_H

#include "support/HashUtil.h"
#include "support/StringInterner.h"
#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace sus {

/// A closed event/policy parameter: nothing, an integer, or a name.
class Value {
public:
  enum class Kind : uint8_t { None, Int, Name };

  /// The "no argument" value (events like `Req` carry it).
  Value() = default;

  /// An integer value (prices, ratings, thresholds).
  static Value integer(int64_t N) {
    Value V;
    V.ValueKind = Kind::Int;
    V.Int = N;
    return V;
  }

  /// A named value (service identities such as `s1`).
  static Value name(Symbol S) {
    assert(S.isValid() && "named value requires a valid symbol");
    Value V;
    V.ValueKind = Kind::Name;
    V.Sym = S;
    return V;
  }

  Kind kind() const { return ValueKind; }
  bool isNone() const { return ValueKind == Kind::None; }
  bool isInt() const { return ValueKind == Kind::Int; }
  bool isName() const { return ValueKind == Kind::Name; }

  int64_t asInt() const {
    assert(isInt() && "not an integer value");
    return Int;
  }

  Symbol asName() const {
    assert(isName() && "not a named value");
    return Sym;
  }

  friend bool operator==(const Value &A, const Value &B) {
    if (A.ValueKind != B.ValueKind)
      return false;
    switch (A.ValueKind) {
    case Kind::None:
      return true;
    case Kind::Int:
      return A.Int == B.Int;
    case Kind::Name:
      return A.Sym == B.Sym;
    }
    return false;
  }

  friend bool operator!=(const Value &A, const Value &B) { return !(A == B); }

  /// Total order (for canonical sorting inside sets); kinds order before
  /// payloads.
  friend bool operator<(const Value &A, const Value &B) {
    if (A.ValueKind != B.ValueKind)
      return static_cast<int>(A.ValueKind) < static_cast<int>(B.ValueKind);
    switch (A.ValueKind) {
    case Kind::None:
      return false;
    case Kind::Int:
      return A.Int < B.Int;
    case Kind::Name:
      return A.Sym < B.Sym;
    }
    return false;
  }

  size_t hash() const {
    size_t Seed = static_cast<size_t>(ValueKind);
    switch (ValueKind) {
    case Kind::None:
      break;
    case Kind::Int:
      hashCombineValue(Seed, Int);
      break;
    case Kind::Name:
      hashCombineValue(Seed, Sym.id());
      break;
    }
    return Seed;
  }

  /// Renders the value; names are resolved through \p Interner.
  std::string str(const StringInterner &Interner) const {
    switch (ValueKind) {
    case Kind::None:
      return "";
    case Kind::Int:
      return std::to_string(Int);
    case Kind::Name:
      return std::string(Interner.text(Sym));
    }
    return "";
  }

private:
  Kind ValueKind = Kind::None;
  int64_t Int = 0;
  Symbol Sym;
};

} // namespace sus

namespace std {
template <> struct hash<sus::Value> {
  size_t operator()(const sus::Value &V) const noexcept { return V.hash(); }
};
} // namespace std

#endif // SUS_SUPPORT_VALUE_H
