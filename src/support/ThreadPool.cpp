//===- support/ThreadPool.cpp - Small work-stealing thread pool -----------===//

#include "support/ThreadPool.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>
#include <chrono>
#include <string>

using namespace sus;

namespace {

/// Pool-wide instruments (all pools share them: the registry is process
/// scoped and susc owns at most one pool at a time).
metrics::Counter &tasksCounter() {
  static metrics::Counter &C = metrics::counter("pool.tasks");
  return C;
}

metrics::Counter &stealsCounter() {
  static metrics::Counter &C = metrics::counter("pool.steals");
  return C;
}

metrics::Counter &cancelledCounter() {
  static metrics::Counter &C = metrics::counter("pool.cancelled");
  return C;
}

metrics::Gauge &maxQueueDepthGauge() {
  static metrics::Gauge &G = metrics::gauge("pool.max_queue_depth");
  return G;
}

metrics::Histogram &taskNanosHistogram() {
  static metrics::Histogram &H = metrics::histogram("pool.task_ns");
  return H;
}

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

unsigned ThreadPool::defaultWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers == 0)
    Workers = 1;
  Queues.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>(*this));
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  waitIdle();
  {
    MutexLock Lock(StateMutex);
    Stopping = true;
  }
  WorkAvailable.notifyAll();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(Task T) {
  assert(T && "empty task");
  {
    MutexLock Lock(StateMutex);
    ++Unfinished;
    tasksCounter().add();
    maxQueueDepthGauge().setMax(static_cast<int64_t>(Unfinished));
    WorkerQueue &WQ = *Queues[NextQueue];
    NextQueue = (NextQueue + 1) % Queues.size();
    MutexLock QLock(WQ.M);
    WQ.Q.push_back(std::move(T));
  }
  WorkAvailable.notifyOne();
}

bool ThreadPool::grabTask(unsigned Id, Task &Out) {
  // Own deque first, newest-first: the task most likely still warm.
  {
    WorkerQueue &Own = *Queues[Id];
    MutexLock Lock(Own.M);
    if (!Own.Q.empty()) {
      Out = std::move(Own.Q.back());
      Own.Q.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the other workers.
  for (size_t Off = 1; Off < Queues.size(); ++Off) {
    WorkerQueue &Victim = *Queues[(Id + Off) % Queues.size()];
    MutexLock Lock(Victim.M);
    if (!Victim.Q.empty()) {
      Out = std::move(Victim.Q.front());
      Victim.Q.pop_front();
      stealsCounter().add();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Id) {
  for (;;) {
    Task T;
    if (grabTask(Id, T)) {
      runTask(Id, T);
      MutexLock Lock(StateMutex);
      assert(Unfinished > 0 && "task accounting underflow");
      if (--Unfinished == 0)
        AllDone.notifyAll();
      continue;
    }
    MutexLock Lock(StateMutex);
    if (Stopping)
      return;
    // Re-check under the lock: a task may have arrived between the failed
    // grab and acquiring the lock; sleeping then would miss its wakeup.
    // StateMutex → queue M, the one sanctioned nesting direction.
    bool Empty = true;
    for (auto &WQ : Queues) {
      MutexLock QLock(WQ->M);
      if (!WQ->Q.empty()) {
        Empty = false;
        break;
      }
    }
    if (!Empty)
      continue;
    WorkAvailable.wait(Lock);
  }
}

void ThreadPool::runTask(unsigned Id, Task &T) {
  // Gated clock reads: with metrics and tracing off, running a task costs
  // two relaxed atomic loads on top of the task itself.
  if (!metrics::enabled() && !trace::enabled()) {
    T(Id);
    return;
  }
  trace::Span Span("pool.task", "pool");
  Span.count("worker", Id);
  uint64_t Start = nowNanos();
  T(Id);
  uint64_t Nanos = nowNanos() - Start;
  taskNanosHistogram().observe(Nanos);
  metrics::counter("pool.worker" + std::to_string(Id) + ".busy_ns")
      .add(Nanos);
}

void ThreadPool::waitIdle() {
  MutexLock Lock(StateMutex);
  // Explicit wait loop rather than the predicate-lambda overload: the
  // analysis checks this form precisely (Unfinished is read with
  // StateMutex held on every iteration; a lambda would be analyzed as a
  // separate, lockless function).
  while (Unfinished != 0)
    AllDone.wait(Lock);
}

size_t ThreadPool::cancelPending() {
  size_t Discarded = 0;
  {
    // StateMutex first, then each queue mutex: same order as submit(), so
    // this cannot deadlock against concurrent submitters or workers.
    MutexLock Lock(StateMutex);
    for (auto &WQ : Queues) {
      MutexLock QLock(WQ->M);
      Discarded += WQ->Q.size();
      WQ->Q.clear();
    }
    assert(Unfinished >= Discarded && "task accounting underflow");
    Unfinished -= Discarded;
    if (Discarded > 0)
      cancelledCounter().add(Discarded);
    if (Unfinished == 0)
      AllDone.notifyAll();
  }
  // Wake every worker: the queues they were waiting on just emptied.
  WorkAvailable.notifyAll();
  return Discarded;
}
