//===- support/StringInterner.h - String interning table --------*- C++ -*-===//
///
/// \file
/// Uniquing table mapping strings to Symbols and back. All names in a
/// verification session live in one interner so symbol equality is identity.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_STRINGINTERNER_H
#define SUS_SUPPORT_STRINGINTERNER_H

#include "support/Symbol.h"

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sus {

/// Owns the storage for every interned string and hands out stable Symbols.
///
/// Not thread-safe; a verification session owns exactly one interner
/// (usually via hist::HistContext).
class StringInterner {
public:
  StringInterner() = default;
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Interns \p Str, returning the same Symbol for equal strings.
  Symbol intern(std::string_view Str);

  /// Returns the string for a symbol produced by this interner.
  std::string_view text(Symbol S) const;

  /// Returns the symbol for \p Str if already interned, else an invalid one.
  Symbol lookup(std::string_view Str) const;

  /// Interns every string of \p Other, in id order, so that afterwards
  /// every symbol of \p Other denotes the same string here *with the same
  /// id*. Requires this interner's current contents to be an id-aligned
  /// prefix of \p Other (the empty interner trivially is). Id equality is
  /// what lets verifier worker shards reuse symbols — and every canonical
  /// Symbol-based ordering — of the main session unchanged.
  void seedFrom(const StringInterner &Other);

  /// Number of distinct strings interned so far.
  size_t size() const { return Storage.size(); }

private:
  // Deque: element addresses are stable under growth, so the string_view
  // keys in Table remain valid (short strings live inline in std::string).
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, Symbol> Table;
};

} // namespace sus

#endif // SUS_SUPPORT_STRINGINTERNER_H
