//===- support/ResourceGovernor.h - Deadlines, budgets, cancel --*- C++ -*-===//
///
/// \file
/// Cooperative resource governance for the verification pipeline: one
/// governor object carries a monotonic deadline, per-kernel state budgets
/// and a cancellation token, and is threaded (as a nullable pointer — a
/// null governor costs one branch) through every unbounded loop in the
/// automata kernels, the compliance product, plan enumeration and static
/// validity.
///
/// The protocol has two verbs:
///
///  - poll()   — called at loop granularity; checks the cancellation flag
///               and (amortized over a tick stride) the deadline clock.
///               Deadline and cancellation trips are *sticky*: once
///               observed, every later poll on the same governor fails
///               fast, so an entire parallel run drains promptly.
///  - charge() — called when a kernel is about to materialize its
///               Spent-th state; checks Spent against the per-kind
///               budget. Budget trips are *per call*: one oversized plan
///               tripping its product budget does not poison the
///               verdicts of its siblings.
///
/// Exhaustion never throws. Kernels return Outcome<T> — either the
/// result or a typed ResourceExhausted{Which, Spent, Limit} — and the
/// layers above map that into an Inconclusive(resource) verdict while
/// keeping caches free of partial results.
///
/// Trips are counted in the metrics registry (`governor.deadline_hits`,
/// `governor.budget_hits`, `governor.cancel_requests`), each at most once
/// per trip event.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_RESOURCEGOVERNOR_H
#define SUS_SUPPORT_RESOURCEGOVERNOR_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace sus {

/// What ran out.
enum class ResourceKind : uint8_t {
  Deadline,      ///< The governor's wall-clock deadline passed.
  Cancelled,     ///< Somebody called requestCancel().
  SubsetStates,  ///< Subset-construction state budget (determinize).
  ProductStates, ///< Product/emptiness state budget (intersect family,
                 ///< compliance product, validity model checking).
};

/// Stable lower-case name for metrics/trace tags and diagnostics.
const char *resourceKindName(ResourceKind K);

/// The typed "budget exceeded" value kernels return instead of throwing.
/// For state budgets, Spent is the state count that would have been
/// materialized and Limit the configured cap; for the deadline, both are
/// in milliseconds (elapsed vs. budget); for cancellation both are 0.
struct ResourceExhausted {
  ResourceKind Which;
  uint64_t Spent = 0;
  uint64_t Limit = 0;

  /// Human-readable one-liner, e.g. "product-state budget exhausted
  /// (5 > 4)" or "deadline exceeded (12ms > 10ms)".
  std::string str() const;

  bool deadlineLike() const {
    return Which == ResourceKind::Deadline || Which == ResourceKind::Cancelled;
  }
};

/// Result-or-exhaustion sum type returned by governed kernels. No
/// exceptions cross kernel boundaries: callers branch on ok().
///
/// [[nodiscard]]: dropping an Outcome silently discards a possible
/// Inconclusive verdict — the caller would proceed as if the governed
/// computation had succeeded.
template <typename T> class [[nodiscard]] Outcome {
public:
  Outcome(T Value) : Storage(std::in_place_index<0>, std::move(Value)) {}
  Outcome(ResourceExhausted E) : Storage(std::in_place_index<1>, E) {}

  bool ok() const { return Storage.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T &value() const & {
    assert(ok() && "Outcome holds ResourceExhausted");
    return std::get<0>(Storage);
  }
  T &value() & {
    assert(ok() && "Outcome holds ResourceExhausted");
    return std::get<0>(Storage);
  }
  /// Moves the result out (for the ungoverned wrappers).
  T takeValue() {
    assert(ok() && "Outcome holds ResourceExhausted");
    return std::move(std::get<0>(Storage));
  }

  const ResourceExhausted &exhausted() const {
    assert(!ok() && "Outcome holds a value");
    return std::get<1>(Storage);
  }

private:
  std::variant<T, ResourceExhausted> Storage;
};

/// A shared budget-and-deadline token. One governor typically spans one
/// susc invocation and is observed concurrently by every worker; all
/// members are lock-free and poll() is safe from any thread.
class ResourceGovernor {
public:
  static constexpr uint64_t Unlimited = ~uint64_t(0);

  ResourceGovernor() = default;
  ResourceGovernor(const ResourceGovernor &) = delete;
  ResourceGovernor &operator=(const ResourceGovernor &) = delete;

  /// Arms the monotonic deadline \p Millis from now. 0 is legal and trips
  /// the very first poll (deterministic "already expired" semantics).
  void setDeadlineAfterMillis(uint64_t Millis);
  bool hasDeadline() const { return DeadlineNanos != 0; }

  /// Sets the state budget for \p K (SubsetStates or ProductStates only).
  void setLimit(ResourceKind K, uint64_t Limit);
  uint64_t limit(ResourceKind K) const;

  /// Requests cooperative cancellation: every subsequent poll() trips.
  void requestCancel();
  bool cancelRequested() const {
    return CancelFlag.load(std::memory_order_relaxed);
  }

  /// Loop-granularity check of the cancellation flag and the deadline.
  /// The clock is only read every few ticks (and always on the first
  /// tick), so polling per popped work item is cheap. Sticky: once a
  /// deadline/cancel trip is observed, every later poll returns it.
  std::optional<ResourceExhausted> poll() const;

  /// Charges \p Spent accumulated units against the \p K budget; returns
  /// the trip if Spent exceeds the configured limit. Not sticky — budget
  /// exhaustion is scoped to the kernel call that overran.
  std::optional<ResourceExhausted> charge(ResourceKind K,
                                          uint64_t Spent) const;

  /// The sticky deadline/cancel trip observed so far, if any. Used to
  /// synthesize verdicts for work that was drained without running.
  std::optional<ResourceExhausted> trip() const;

private:
  std::optional<ResourceExhausted> deadlineTrip() const;

  /// Configuration fields: written before workers start observing the
  /// governor (setup happens-before the fan-out via ThreadPool::submit's
  /// mutex), read-only afterwards — hence plain, not atomic.
  uint64_t StartNanos = 0;    ///< When the deadline was armed.
  uint64_t DeadlineNanos = 0; ///< Absolute steady-clock deadline; 0 = none.
  uint64_t BudgetMillis = 0;
  uint64_t SubsetLimit = Unlimited;
  uint64_t ProductLimit = Unlimited;

  // All three atomics are relaxed everywhere (ResourceGovernor.cpp):
  // they are advisory, sticky, one-way flags and a poll-amortization
  // counter. Cancellation/deadline semantics are "every poll *after* the
  // trip eventually observes it" — cooperative, not synchronizing — and
  // no data is published through any of them, so no acquire/release
  // pairing is owed; atomicity alone rules out torn reads.
  std::atomic<bool> CancelFlag{false};
  mutable std::atomic<bool> DeadlineHit{false};
  mutable std::atomic<uint64_t> Ticks{0};
};

} // namespace sus

#endif // SUS_SUPPORT_RESOURCEGOVERNOR_H
