//===- support/Metrics.cpp - Process-wide metrics registry ----------------===//

#include "support/Metrics.h"

#include "support/Sync.h"

#include <bit>
#include <map>
#include <memory>
#include <string>

using namespace sus;

namespace {

/// Name → instrument tables. Instruments are never destroyed or moved
/// once created (handles are cached at call sites), and the registry
/// itself leaks so handles survive static destruction. M is a leaf lock
/// guarding only the tables; mutating an instrument *through* a handle
/// is lock-free and deliberately outside its scope.
struct Registry {
  Mutex M;
  std::map<std::string, std::unique_ptr<metrics::Counter>, std::less<>>
      Counters SUS_GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<metrics::Gauge>, std::less<>>
      Gauges SUS_GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<metrics::Histogram>, std::less<>>
      Histograms SUS_GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<metrics::TimeAccount>, std::less<>>
      TimeAccounts SUS_GUARDED_BY(M);
};

Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

template <typename Map>
typename Map::mapped_type::element_type &findOrCreate(Map &Table,
                                                      std::string_view Name) {
  auto It = Table.find(Name);
  if (It == Table.end())
    It = Table
             .emplace(std::string(Name),
                      std::make_unique<
                          typename Map::mapped_type::element_type>())
             .first;
  return *It->second;
}

void writeJsonString(std::ostream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (static_cast<unsigned char>(C) < 0x20)
      OS << "\\u00" << "0123456789abcdef"[(C >> 4) & 0xf]
         << "0123456789abcdef"[C & 0xf];
    else
      OS << C;
  }
  OS << '"';
}

} // namespace

std::atomic<bool> metrics::detail::Enabled{false};

unsigned metrics::detail::shardIndex() {
  static std::atomic<unsigned> NextShard{0};
  // Relaxed fetch_add: the RMW is atomic, so concurrent threads still get
  // distinct tickets — an even spread over shards is the only goal (and
  // even a collision would only cost contention, not correctness). No
  // data is published through this counter.
  thread_local unsigned Shard =
      NextShard.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Shard;
}

void metrics::Histogram::observe(uint64_t V) {
  if (!enabled())
    return;
  // All relaxed: each shard slot and bucket is an independent monotone
  // accumulator, and readers (writeJson) only need an eventually-
  // consistent merged snapshot — no cross-variable ordering invariant
  // exists between count, sum and buckets, so no fences are owed. A
  // report racing an observe may see the count without the sum; that is
  // the documented snapshot semantics, not a data race (every access is
  // atomic).
  unsigned Shard = detail::shardIndex();
  CountShards[Shard].Value.fetch_add(1, std::memory_order_relaxed);
  SumShards[Shard].Value.fetch_add(V, std::memory_order_relaxed);
  Buckets[std::bit_width(V)].fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS max/min: the loop re-reads on failure, so the invariant
  // "Min/Max bound every observed sample once writers quiesce" holds
  // under any interleaving; a stale read only costs an extra iteration.
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (V < Cur &&
         !Min.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (V > Cur &&
         !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

uint64_t metrics::Histogram::bucket(unsigned B) const {
  return B < NumBuckets ? Buckets[B].load(std::memory_order_relaxed) : 0;
}

void metrics::Histogram::resetValue() {
  for (unsigned I = 0; I < detail::NumShards; ++I) {
    CountShards[I].Value.store(0, std::memory_order_relaxed);
    SumShards[I].Value.store(0, std::memory_order_relaxed);
  }
  for (std::atomic<uint64_t> &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Min.store(~uint64_t(0), std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

void metrics::enable() {
  // Relaxed: unlike trace::enable() there is no state to publish — the
  // instruments self-initialize (zeroed atomics) and every mutation is
  // itself atomic, so the gate flips without ordering obligations.
  detail::Enabled.store(true, std::memory_order_relaxed);
}

void metrics::disable() {
  detail::Enabled.store(false, std::memory_order_relaxed);
}

void metrics::reset() {
  Registry &R = registry();
  MutexLock Lock(R.M);
  for (auto &[Name, C] : R.Counters)
    C->resetValue();
  for (auto &[Name, G] : R.Gauges)
    G->resetValue();
  for (auto &[Name, H] : R.Histograms)
    H->resetValue();
}

metrics::Counter &metrics::counter(std::string_view Name) {
  Registry &R = registry();
  MutexLock Lock(R.M);
  return findOrCreate(R.Counters, Name);
}

metrics::Gauge &metrics::gauge(std::string_view Name) {
  Registry &R = registry();
  MutexLock Lock(R.M);
  return findOrCreate(R.Gauges, Name);
}

metrics::Histogram &metrics::histogram(std::string_view Name) {
  Registry &R = registry();
  MutexLock Lock(R.M);
  return findOrCreate(R.Histograms, Name);
}

metrics::TimeAccount &metrics::timeAccount(std::string_view Name) {
  Registry &R = registry();
  MutexLock Lock(R.M);
  return findOrCreate(R.TimeAccounts, Name);
}

void metrics::writeJson(std::ostream &OS) {
  Registry &R = registry();
  MutexLock Lock(R.M);
  OS << "{\n  \"schema\": \"sus-metrics-v1\",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : R.Counters) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    writeJsonString(OS, Name);
    OS << ": " << C->value();
  }
  OS << "\n  },\n  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : R.Gauges) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    writeJsonString(OS, Name);
    OS << ": " << G->value();
  }
  OS << "\n  },\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : R.Histograms) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    writeJsonString(OS, Name);
    OS << ": {\"count\": " << H->count() << ", \"sum\": " << H->sum()
       << ", \"min\": " << H->min() << ", \"max\": " << H->max()
       << ", \"buckets\": [";
    // Log2 buckets, trailing zeros trimmed to the highest non-empty one.
    unsigned Last = 0;
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B)
      if (H->bucket(B) != 0)
        Last = B;
    for (unsigned B = 0; B <= Last; ++B)
      OS << (B ? ", " : "") << H->bucket(B);
    OS << "]}";
  }
  OS << "\n  },\n  \"time_accounts\": {";
  First = true;
  for (const auto &[Name, T] : R.TimeAccounts) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    writeJsonString(OS, Name);
    OS << ": " << T->nanos();
  }
  OS << "\n  }\n}\n";
}
