//===- support/Metrics.cpp - Process-wide metrics registry ----------------===//

#include "support/Metrics.h"

#include <bit>
#include <map>
#include <memory>
#include <mutex>
#include <string>

using namespace sus;

namespace {

/// Name → instrument tables. Instruments are never destroyed or moved
/// once created (handles are cached at call sites), and the registry
/// itself leaks so handles survive static destruction.
struct Registry {
  std::mutex M;
  std::map<std::string, std::unique_ptr<metrics::Counter>, std::less<>>
      Counters;
  std::map<std::string, std::unique_ptr<metrics::Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<metrics::Histogram>, std::less<>>
      Histograms;
  std::map<std::string, std::unique_ptr<metrics::TimeAccount>, std::less<>>
      TimeAccounts;
};

Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

template <typename Map>
typename Map::mapped_type::element_type &findOrCreate(Map &Table,
                                                      std::string_view Name) {
  auto It = Table.find(Name);
  if (It == Table.end())
    It = Table
             .emplace(std::string(Name),
                      std::make_unique<
                          typename Map::mapped_type::element_type>())
             .first;
  return *It->second;
}

void writeJsonString(std::ostream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (static_cast<unsigned char>(C) < 0x20)
      OS << "\\u00" << "0123456789abcdef"[(C >> 4) & 0xf]
         << "0123456789abcdef"[C & 0xf];
    else
      OS << C;
  }
  OS << '"';
}

} // namespace

std::atomic<bool> metrics::detail::Enabled{false};

unsigned metrics::detail::shardIndex() {
  static std::atomic<unsigned> NextShard{0};
  thread_local unsigned Shard =
      NextShard.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Shard;
}

void metrics::Histogram::observe(uint64_t V) {
  if (!enabled())
    return;
  unsigned Shard = detail::shardIndex();
  CountShards[Shard].Value.fetch_add(1, std::memory_order_relaxed);
  SumShards[Shard].Value.fetch_add(V, std::memory_order_relaxed);
  Buckets[std::bit_width(V)].fetch_add(1, std::memory_order_relaxed);
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (V < Cur &&
         !Min.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (V > Cur &&
         !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

uint64_t metrics::Histogram::bucket(unsigned B) const {
  return B < NumBuckets ? Buckets[B].load(std::memory_order_relaxed) : 0;
}

void metrics::Histogram::resetValue() {
  for (unsigned I = 0; I < detail::NumShards; ++I) {
    CountShards[I].Value.store(0, std::memory_order_relaxed);
    SumShards[I].Value.store(0, std::memory_order_relaxed);
  }
  for (std::atomic<uint64_t> &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Min.store(~uint64_t(0), std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

void metrics::enable() {
  detail::Enabled.store(true, std::memory_order_relaxed);
}

void metrics::disable() {
  detail::Enabled.store(false, std::memory_order_relaxed);
}

void metrics::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &[Name, C] : R.Counters)
    C->resetValue();
  for (auto &[Name, G] : R.Gauges)
    G->resetValue();
  for (auto &[Name, H] : R.Histograms)
    H->resetValue();
}

metrics::Counter &metrics::counter(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return findOrCreate(R.Counters, Name);
}

metrics::Gauge &metrics::gauge(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return findOrCreate(R.Gauges, Name);
}

metrics::Histogram &metrics::histogram(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return findOrCreate(R.Histograms, Name);
}

metrics::TimeAccount &metrics::timeAccount(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return findOrCreate(R.TimeAccounts, Name);
}

void metrics::writeJson(std::ostream &OS) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  OS << "{\n  \"schema\": \"sus-metrics-v1\",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : R.Counters) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    writeJsonString(OS, Name);
    OS << ": " << C->value();
  }
  OS << "\n  },\n  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : R.Gauges) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    writeJsonString(OS, Name);
    OS << ": " << G->value();
  }
  OS << "\n  },\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : R.Histograms) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    writeJsonString(OS, Name);
    OS << ": {\"count\": " << H->count() << ", \"sum\": " << H->sum()
       << ", \"min\": " << H->min() << ", \"max\": " << H->max()
       << ", \"buckets\": [";
    // Log2 buckets, trailing zeros trimmed to the highest non-empty one.
    unsigned Last = 0;
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B)
      if (H->bucket(B) != 0)
        Last = B;
    for (unsigned B = 0; B <= Last; ++B)
      OS << (B ? ", " : "") << H->bucket(B);
    OS << "]}";
  }
  OS << "\n  },\n  \"time_accounts\": {";
  First = true;
  for (const auto &[Name, T] : R.TimeAccounts) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    writeJsonString(OS, Name);
    OS << ": " << T->nanos();
  }
  OS << "\n  }\n}\n";
}
