//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
///
/// \file
/// Hand-rolled replacement for C++ RTTI in the style of LLVM's
/// llvm/Support/Casting.h. A class hierarchy opts in by exposing a kind
/// discriminator and a static `classof(const Base *)` predicate on each
/// derived class; `isa<>`, `cast<>` and `dyn_cast<>` then dispatch on it.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_CASTING_H
#define SUS_SUPPORT_CASTING_H

#include <cassert>

namespace sus {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && To::classof(Val);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagates null).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return isa_and_present<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Like dyn_cast_if_present<>, const overload.
template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return isa_and_present<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace sus

#endif // SUS_SUPPORT_CASTING_H
