//===- support/Symbol.h - Interned string handles ---------------*- C++ -*-===//
///
/// \file
/// Interned identifiers. A Symbol is a 32-bit index into a StringInterner;
/// comparing two symbols from the same interner is O(1). Symbols identify
/// channels, events, locations, policies and recursion variables throughout
/// the library.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_SYMBOL_H
#define SUS_SUPPORT_SYMBOL_H

#include <cstdint>
#include <functional>

namespace sus {

/// A lightweight handle to an interned string.
///
/// The default-constructed symbol is the invalid sentinel; every symbol
/// produced by a StringInterner is valid.
class Symbol {
public:
  Symbol() = default;
  explicit Symbol(uint32_t Id) : Id(Id) {}

  /// Returns true if this symbol was produced by an interner.
  bool isValid() const { return Id != InvalidId; }

  /// Raw index into the owning interner's table.
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  static constexpr uint32_t InvalidId = ~0u;
  uint32_t Id = InvalidId;
};

} // namespace sus

namespace std {
template <> struct hash<sus::Symbol> {
  size_t operator()(sus::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.id());
  }
};
} // namespace std

#endif // SUS_SUPPORT_SYMBOL_H
