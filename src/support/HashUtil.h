//===- support/HashUtil.h - Hash combination helpers ------------*- C++ -*-===//
///
/// \file
/// Small deterministic hash-combining utilities used by hash-consing maps.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SUPPORT_HASHUTIL_H
#define SUS_SUPPORT_HASHUTIL_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace sus {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine-style,
/// with a 64-bit constant).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes \p V with std::hash and mixes it into \p Seed.
template <typename T> void hashCombineValue(size_t &Seed, const T &V) {
  hashCombine(Seed, std::hash<T>()(V));
}

/// Convenience: hash a parameter pack into one value.
template <typename... Ts> size_t hashAll(const Ts &...Vs) {
  size_t Seed = 0;
  (hashCombineValue(Seed, Vs), ...);
  return Seed;
}

} // namespace sus

#endif // SUS_SUPPORT_HASHUTIL_H
