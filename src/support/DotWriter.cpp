//===- support/DotWriter.cpp - Graphviz DOT emission ---------------------===//

#include "support/DotWriter.h"

using namespace sus;

std::string DotWriter::escape(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (size_t I = 0; I < Str.size(); ++I) {
    char C = Str[I];
    if (C == '"' || C == '\\') {
      Out.push_back('\\');
      Out.push_back(C);
      continue;
    }
    // Raw line breaks would terminate the quoted literal mid-string; fold
    // them (including CRLF as one break) into DOT's \n escape.
    if (C == '\n' || C == '\r') {
      if (C == '\r' && I + 1 < Str.size() && Str[I + 1] == '\n')
        ++I;
      Out += "\\n";
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

void DotWriter::node(std::string_view Id, std::string_view Label,
                     std::string_view Attrs) {
  std::string Line = "  \"" + escape(Id) + "\" [label=\"" + escape(Label) +
                     "\"";
  if (!Attrs.empty()) {
    Line += ", ";
    Line += Attrs;
  }
  Line += "];";
  Lines.push_back(std::move(Line));
}

void DotWriter::edge(std::string_view From, std::string_view To,
                     std::string_view Label, std::string_view Attrs) {
  std::string Line = "  \"" + escape(From) + "\" -> \"" + escape(To) +
                     "\" [label=\"" + escape(Label) + "\"";
  if (!Attrs.empty()) {
    Line += ", ";
    Line += Attrs;
  }
  Line += "];";
  Lines.push_back(std::move(Line));
}

void DotWriter::print(std::ostream &OS) const {
  OS << "digraph \"" << escape(Name) << "\" {\n";
  OS << "  rankdir=LR;\n";
  for (const std::string &Line : Lines)
    OS << Line << "\n";
  OS << "}\n";
}
