//===- support/DotWriter.cpp - Graphviz DOT emission ---------------------===//

#include "support/DotWriter.h"

using namespace sus;

std::string DotWriter::escape(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (char C : Str) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

void DotWriter::node(std::string_view Id, std::string_view Label,
                     std::string_view Attrs) {
  std::string Line = "  \"" + escape(Id) + "\" [label=\"" + escape(Label) +
                     "\"";
  if (!Attrs.empty()) {
    Line += ", ";
    Line += Attrs;
  }
  Line += "];";
  Lines.push_back(std::move(Line));
}

void DotWriter::edge(std::string_view From, std::string_view To,
                     std::string_view Label, std::string_view Attrs) {
  std::string Line = "  \"" + escape(From) + "\" -> \"" + escape(To) +
                     "\" [label=\"" + escape(Label) + "\"";
  if (!Attrs.empty()) {
    Line += ", ";
    Line += Attrs;
  }
  Line += "];";
  Lines.push_back(std::move(Line));
}

void DotWriter::print(std::ostream &OS) const {
  OS << "digraph \"" << escape(Name) << "\" {\n";
  OS << "  rankdir=LR;\n";
  for (const std::string &Line : Lines)
    OS << Line << "\n";
  OS << "}\n";
}
