//===- syntax/FileParser.cpp - .sus network file parser -------------------===//

#include "syntax/FileParser.h"

#include "support/Trace.h"

#include "hist/WellFormed.h"
#include "lambda/TypeEffect.h"
#include "syntax/HistParser.h"
#include "syntax/LambdaParser.h"

#include <algorithm>
#include <functional>
#include <map>

using namespace sus;
using namespace sus::hist;
using namespace sus::policy;
using namespace sus::syntax;

namespace {

class FileParser : public ParserBase {
public:
  FileParser(const std::vector<Token> &Tokens, HistContext &Ctx,
             DiagnosticEngine &Diags)
      : ParserBase(Tokens, Diags), Ctx(Ctx), Lambda(Ctx) {}

  std::optional<SusFile> parse() {
    SusFile File;
    while (!atEof()) {
      if (peek().isIdent("policy")) {
        if (!parsePolicy(File))
          return std::nullopt;
        continue;
      }
      if (peek().isIdent("service") || peek().isIdent("client")) {
        if (!parseBehavior(File))
          return std::nullopt;
        continue;
      }
      if (peek().isIdent("program")) {
        if (!parseProgram(File))
          return std::nullopt;
        continue;
      }
      if (peek().isIdent("plan")) {
        if (!parsePlan(File))
          return std::nullopt;
        continue;
      }
      error("expected 'policy', 'service', 'client', 'program' or 'plan'");
      return std::nullopt;
    }
    return File;
  }

private:
  //===--------------------------------------------------------------------===//
  // policy
  //===--------------------------------------------------------------------===//

  bool parsePolicy(SusFile &File) {
    next(); // 'policy'
    if (!peek().is(TokenKind::Ident)) {
      error("expected policy name");
      return false;
    }
    SourceLoc DeclLoc = peek().Loc;
    Symbol Name = Ctx.symbol(next().Text);
    File.PolicyLocs[Name] = DeclLoc;

    std::vector<PolicyParam> Params;
    if (accept(TokenKind::LParen) && !accept(TokenKind::RParen)) {
      do {
        if (!peek().is(TokenKind::Ident)) {
          error("expected parameter name");
          return false;
        }
        Symbol PName = Ctx.symbol(next().Text);
        if (!expect(TokenKind::Colon, "after parameter name"))
          return false;
        bool IsSet;
        if (acceptIdent("set")) {
          IsSet = true;
        } else if (acceptIdent("int")) {
          IsSet = false;
        } else {
          error("expected parameter kind 'set' or 'int'");
          return false;
        }
        Params.push_back({PName, IsSet});
      } while (accept(TokenKind::Comma));
      if (!expect(TokenKind::RParen, "to close parameter list"))
        return false;
    }

    UsageAutomaton A(Name, Params);
    std::map<Symbol, UStateId> States;
    auto StateOf = [&](Symbol S) -> UStateId {
      auto It = States.find(S);
      if (It != States.end())
        return It->second;
      UStateId Id = A.addState(std::string(Ctx.interner().text(S)));
      States.emplace(S, Id);
      return Id;
    };
    auto ParamIndex = [&](Symbol S) -> int {
      for (size_t I = 0; I < Params.size(); ++I)
        if (Params[I].Name == S)
          return static_cast<int>(I);
      return -1;
    };

    if (!expect(TokenKind::LBrace, "to open policy body"))
      return false;
    bool StartSet = false;
    while (!accept(TokenKind::RBrace)) {
      if (atEof()) {
        error("unterminated policy body");
        return false;
      }
      if (acceptIdent("states")) {
        while (peek().is(TokenKind::Ident))
          StateOf(Ctx.symbol(next().Text));
        if (!expect(TokenKind::Semi, "after state list"))
          return false;
        continue;
      }
      if (acceptIdent("start")) {
        if (!peek().is(TokenKind::Ident)) {
          error("expected state name after 'start'");
          return false;
        }
        A.setStart(StateOf(Ctx.symbol(next().Text)));
        StartSet = true;
        if (!expect(TokenKind::Semi, "after start state"))
          return false;
        continue;
      }
      if (acceptIdent("offending")) {
        do {
          if (!peek().is(TokenKind::Ident)) {
            error("expected state name after 'offending'");
            return false;
          }
          A.setOffending(StateOf(Ctx.symbol(next().Text)));
        } while (accept(TokenKind::Comma));
        if (!expect(TokenKind::Semi, "after offending list"))
          return false;
        continue;
      }
      // Edge: IDENT -> IDENT on (* | event[(var)] [when guard]) ;
      if (!peek().is(TokenKind::Ident)) {
        error("expected a policy statement or edge");
        return false;
      }
      UStateId From = StateOf(Ctx.symbol(next().Text));
      if (!expect(TokenKind::Arrow, "in policy edge"))
        return false;
      if (!peek().is(TokenKind::Ident)) {
        error("expected target state");
        return false;
      }
      UStateId To = StateOf(Ctx.symbol(next().Text));
      if (!acceptIdent("on")) {
        error("expected 'on' in policy edge");
        return false;
      }
      if (accept(TokenKind::Star)) {
        A.addWildcardEdge(From, To);
        if (!expect(TokenKind::Semi, "after policy edge"))
          return false;
        continue;
      }
      if (!peek().is(TokenKind::Ident)) {
        error("expected event name in policy edge");
        return false;
      }
      Symbol EventName = Ctx.symbol(next().Text);
      Symbol EventVar;
      if (accept(TokenKind::LParen)) {
        if (!peek().is(TokenKind::Ident)) {
          error("expected event parameter variable");
          return false;
        }
        EventVar = Ctx.symbol(next().Text);
        if (!expect(TokenKind::RParen, "to close event pattern"))
          return false;
      }
      Guard G = Guard::always();
      if (acceptIdent("when")) {
        std::optional<Guard> Parsed = parseGuard(EventVar, ParamIndex);
        if (!Parsed)
          return false;
        G = std::move(*Parsed);
      }
      A.addEdge(From, EventName, std::move(G), To);
      if (!expect(TokenKind::Semi, "after policy edge"))
        return false;
    }

    if (!StartSet && A.numStates() > 0)
      A.setStart(0);
    if (!A.verify(Ctx.interner(), Diags))
      return false;
    File.Registry.add(std::move(A));
    return true;
  }

  std::optional<Guard> parseGuard(Symbol EventVar,
                                  const std::function<int(Symbol)> &Param) {
    Guard G = Guard::always();
    do {
      // Atom: var (in|not in) set-or-param | var cmp value-or-param.
      if (!peek().is(TokenKind::Ident)) {
        error("expected guard variable");
        return std::nullopt;
      }
      Symbol Var = Ctx.symbol(next().Text);
      if (!EventVar.isValid() || Var != EventVar) {
        error("guard variable does not match the event parameter");
        return std::nullopt;
      }

      bool Negated = false;
      if (acceptIdent("not"))
        Negated = true;
      if (acceptIdent("in")) {
        if (peek().is(TokenKind::LBrace)) {
          next();
          std::vector<Value> Values;
          if (!peek().is(TokenKind::RBrace)) {
            do {
              std::optional<Value> V = parseGuardValue();
              if (!V)
                return std::nullopt;
              Values.push_back(*V);
            } while (accept(TokenKind::Comma));
          }
          if (!expect(TokenKind::RBrace, "to close value set"))
            return std::nullopt;
          G = G && (Negated ? Guard::notInConst(std::move(Values))
                            : Guard::inConst(std::move(Values)));
        } else if (peek().is(TokenKind::Ident)) {
          int I = Param(Ctx.symbol(next().Text));
          if (I < 0) {
            error("unknown policy parameter in guard");
            return std::nullopt;
          }
          G = G && (Negated ? Guard::notInParam(static_cast<unsigned>(I))
                            : Guard::inParam(static_cast<unsigned>(I)));
        } else {
          error("expected a set or a set-valued parameter after 'in'");
          return std::nullopt;
        }
      } else {
        if (Negated) {
          error("'not' must be followed by 'in'");
          return std::nullopt;
        }
        CmpOp Op;
        switch (peek().Kind) {
        case TokenKind::Lt:
          Op = CmpOp::LT;
          break;
        case TokenKind::Le:
          Op = CmpOp::LE;
          break;
        case TokenKind::Gt:
          Op = CmpOp::GT;
          break;
        case TokenKind::Ge:
          Op = CmpOp::GE;
          break;
        case TokenKind::EqEq:
          Op = CmpOp::EQ;
          break;
        case TokenKind::Ne:
          Op = CmpOp::NE;
          break;
        default:
          error("expected a comparison operator or 'in'");
          return std::nullopt;
        }
        next();
        if (peek().is(TokenKind::Number)) {
          G = G && Guard::cmpConst(Op, Value::integer(next().Number));
        } else if (peek().is(TokenKind::Ident)) {
          int I = Param(Ctx.symbol(next().Text));
          if (I < 0) {
            error("unknown policy parameter in guard");
            return std::nullopt;
          }
          G = G && Guard::cmpParam(Op, static_cast<unsigned>(I));
        } else {
          error("expected a number or a parameter after comparison");
          return std::nullopt;
        }
      }
    } while (acceptIdent("and"));
    return G;
  }

  std::optional<Value> parseGuardValue() {
    if (peek().is(TokenKind::Number))
      return Value::integer(next().Number);
    if (peek().is(TokenKind::Ident))
      return Value::name(Ctx.symbol(next().Text));
    error("expected a number or a name");
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===//
  // service / client
  //===--------------------------------------------------------------------===//

  bool parseBehavior(SusFile &File) {
    bool IsService = peek().isIdent("service");
    next();
    if (!peek().is(TokenKind::Ident)) {
      error("expected a name");
      return false;
    }
    SourceLoc DeclLoc = peek().Loc;
    Symbol Name = Ctx.symbol(next().Text);
    (IsService ? File.ServiceLocs : File.ClientLocs)[Name] = DeclLoc;
    if (!expect(TokenKind::LBrace, "to open behaviour"))
      return false;
    HistParser HP(Tokens, Ctx, Diags);
    // Continue from our position: re-synchronize the sub-parser.
    const Expr *E = parseExprHere(HP);
    if (!E)
      return false;
    if (!expect(TokenKind::RBrace, "to close behaviour"))
      return false;

    std::string NameStr(Ctx.interner().text(Name));
    if (!Ctx.isClosed(E)) {
      error("behaviour of '" + NameStr + "' has free recursion variables");
      return false;
    }
    if (!checkWellFormed(Ctx, E, Diags))
      return false;
    if (IsService)
      File.Repo.add(Name, E);
    else
      File.Clients.push_back({Name, E});
    return true;
  }

  /// Runs a HistParser starting at our cursor and adopts its end position.
  const Expr *parseExprHere(HistParser &HP) {
    HP.setPosition(Pos);
    const Expr *E = HP.parseExpr();
    Pos = HP.position();
    return E;
  }

  //===--------------------------------------------------------------------===//
  // program (λ service calculus; effect-extracted)
  //===--------------------------------------------------------------------===//

  bool parseProgram(SusFile &File) {
    next(); // 'program'
    bool IsService;
    if (acceptIdent("service")) {
      IsService = true;
    } else if (acceptIdent("client")) {
      IsService = false;
    } else {
      error("expected 'service' or 'client' after 'program'");
      return false;
    }
    if (!peek().is(TokenKind::Ident)) {
      error("expected a name");
      return false;
    }
    SourceLoc DeclLoc = peek().Loc;
    Symbol Name = Ctx.symbol(next().Text);
    (IsService ? File.ServiceLocs : File.ClientLocs)[Name] = DeclLoc;
    if (!expect(TokenKind::LBrace, "to open program body"))
      return false;

    LambdaParser LP(Tokens, Lambda, Diags);
    LP.setPosition(Pos);
    const lambda::Term *T = LP.parseTerm();
    Pos = LP.position();
    if (!T)
      return false;
    if (!expect(TokenKind::RBrace, "to close program body"))
      return false;

    // Extract the history expression through the type-and-effect system;
    // inferServiceEffect also checks closedness and well-formedness.
    lambda::EffectSystem Effects(Lambda, Diags);
    std::optional<const Expr *> Effect = Effects.inferServiceEffect(T);
    if (!Effect)
      return false;
    if (IsService)
      File.Repo.add(Name, *Effect);
    else
      File.Clients.push_back({Name, *Effect});
    return true;
  }

  //===--------------------------------------------------------------------===//
  // plan
  //===--------------------------------------------------------------------===//

  bool parsePlan(SusFile &File) {
    next(); // 'plan'
    if (!peek().is(TokenKind::Ident)) {
      error("expected plan name");
      return false;
    }
    PlanDecl Decl;
    Decl.Loc = peek().Loc;
    Decl.Name = Ctx.symbol(next().Text);
    if (!acceptIdent("for")) {
      error("expected 'for' after plan name");
      return false;
    }
    if (!peek().is(TokenKind::Ident)) {
      error("expected client name");
      return false;
    }
    Decl.Client = Ctx.symbol(next().Text);
    if (!expect(TokenKind::LBrace, "to open plan body"))
      return false;
    while (!accept(TokenKind::RBrace)) {
      if (atEof()) {
        error("unterminated plan body");
        return false;
      }
      if (!peek().is(TokenKind::Number)) {
        error("expected request id in plan binding");
        return false;
      }
      RequestId R = static_cast<RequestId>(next().Number);
      if (!expect(TokenKind::Arrow, "in plan binding"))
        return false;
      if (!peek().is(TokenKind::Ident)) {
        error("expected service location in plan binding");
        return false;
      }
      if (Decl.Pi.covers(R)) {
        // Plan::bind refuses silent replacement; a twice-bound request in
        // a declaration is almost certainly a typo, so reject it loudly
        // instead of keeping whichever line came last.
        error("request " + std::to_string(R) +
              " is already bound in this plan");
        return false;
      }
      Decl.Pi.bind(R, Ctx.symbol(next().Text));
      if (!expect(TokenKind::Semi, "after plan binding"))
        return false;
    }
    File.Plans.push_back(std::move(Decl));
    return true;
  }

  HistContext &Ctx;
  lambda::LambdaContext Lambda;
};

} // namespace

std::optional<SusFile> sus::syntax::parseSusFile(HistContext &Ctx,
                                                 std::string_view Buffer,
                                                 DiagnosticEngine &Diags,
                                                 std::string_view FileName) {
  trace::Span Span("parse", "pipeline");
  Span.count("bytes", static_cast<int64_t>(Buffer.size()));
  std::vector<Token> Tokens = tokenize(Buffer, Diags, FileName);
  if (Diags.hasErrors())
    return std::nullopt;
  FileParser P(Tokens, Ctx, Diags);
  std::optional<SusFile> File = P.parse();
  if (Diags.hasErrors())
    return std::nullopt;
  return File;
}
