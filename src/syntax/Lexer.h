//===- syntax/Lexer.h - Tokenizer for the SUS surface syntax ----*- C++ -*-===//
///
/// \file
/// A hand-written lexer for the SUS DSL (history expressions, policy
/// definitions and network declarations). Comments run from `//` or `#` to
/// end of line. Keywords are contextual: the lexer only produces Ident
/// tokens and the parsers match their spelling.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SYNTAX_LEXER_H
#define SUS_SYNTAX_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sus {
namespace syntax {

/// Token kinds of the surface syntax.
enum class TokenKind : uint8_t {
  Eof,
  Ident,    // names (also contextual keywords)
  Number,   // decimal integers, optionally negative
  LParen,   // (
  RParen,   // )
  LBrace,   // {
  RBrace,   // }
  LBracket, // [
  RBracket, // ]
  Semi,     // ;
  Colon,    // :
  Comma,    // ,
  Dot,      // .
  Question, // ?
  Bang,     // !
  Percent,  // %
  At,       // @
  Star,     // *
  Plus,     // +
  OPlus,    // <+>
  Arrow,    // ->
  Lt,       // <
  Le,       // <=
  Gt,       // >
  Ge,       // >=
  EqEq,     // ==
  Ne,       // !=
};

/// One token with its source range and payload.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string_view Text; // For Ident.
  int64_t Number = 0;    // For Number.

  bool is(TokenKind K) const { return Kind == K; }
  bool isIdent(std::string_view S) const {
    return Kind == TokenKind::Ident && Text == S;
  }
};

/// Renders a token kind for diagnostics ("';'", "identifier", ...).
const char *tokenKindName(TokenKind K);

/// Tokenizes a whole buffer. Errors (stray characters) are reported into
/// \p Diags and skipped; the result always ends with an Eof token. The
/// returned Text views point into \p Buffer, which must outlive them.
/// \p FileName, when given, is stamped into every token's SourceLoc; the
/// string it views must outlive the tokens and any diagnostics citing them.
std::vector<Token> tokenize(std::string_view Buffer, DiagnosticEngine &Diags,
                            std::string_view FileName = {});

} // namespace syntax
} // namespace sus

#endif // SUS_SYNTAX_LEXER_H
