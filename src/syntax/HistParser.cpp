//===- syntax/HistParser.cpp - History-expression parser ------------------===//

#include "syntax/HistParser.h"

#include "support/Casting.h"

#include <algorithm>

using namespace sus;
using namespace sus::hist;
using namespace sus::syntax;

const Expr *HistParser::parseExpr() {
  DepthGuard Guard(*this);
  if (!Guard)
    return nullptr;
  if (peek().isIdent("mu")) {
    next();
    if (!peek().is(TokenKind::Ident)) {
      error("expected recursion variable after 'mu'");
      return nullptr;
    }
    Symbol Var = Ctx.symbol(next().Text);
    if (!expect(TokenKind::Dot, "after mu binder"))
      return nullptr;
    const Expr *Body = parseExpr();
    if (!Body)
      return nullptr;
    return Ctx.mu(Var, Body);
  }
  return parseChoice();
}

bool HistParser::operandBranches(const Expr *E, bool WantInputs,
                                 std::vector<ChoiceBranch> &Out) {
  // Walk the left spine of sequential compositions iteratively (the spine
  // can be as long as the operand has ';' terms, so recursing here would
  // ride the native stack), collecting the continuations to distribute
  // into the guarded head: (a?.X); Y  ==>  a?.(X; Y).
  std::vector<const Expr *> Tails;
  while (const auto *S = dyn_cast<SeqExpr>(E)) {
    Tails.push_back(S->tail());
    E = S->head();
  }
  const auto *C = dyn_cast<ChoiceExpr>(E);
  if (!C) {
    error("choice operand must be guarded by a communication action");
    return false;
  }
  bool IsExt = E->kind() == ExprKind::ExtChoice;
  if (IsExt != WantInputs) {
    error(WantInputs
              ? "cannot mix output-guarded operand into external choice"
              : "cannot mix input-guarded operand into internal choice");
    return false;
  }
  for (const ChoiceBranch &B : C->branches()) {
    const Expr *Body = B.Body;
    for (auto It = Tails.rbegin(); It != Tails.rend(); ++It)
      Body = Ctx.seq(Body, *It);
    Out.push_back({B.Guard, Body});
  }
  return true;
}

const Expr *HistParser::parseChoice() {
  const Expr *First = parseSeq();
  if (!First)
    return nullptr;
  bool IsPlus = peek().is(TokenKind::Plus);
  bool IsOPlus = peek().is(TokenKind::OPlus);
  if (!IsPlus && !IsOPlus)
    return First;

  std::vector<ChoiceBranch> Branches;
  if (!operandBranches(First, /*WantInputs=*/IsPlus, Branches))
    return nullptr;
  TokenKind Sep = IsPlus ? TokenKind::Plus : TokenKind::OPlus;
  while (accept(Sep)) {
    const Expr *Operand = parseSeq();
    if (!Operand)
      return nullptr;
    if (!operandBranches(Operand, IsPlus, Branches))
      return nullptr;
  }
  if (peek().is(TokenKind::Plus) || peek().is(TokenKind::OPlus)) {
    error("cannot mix '+' and '<+>' in one choice");
    return nullptr;
  }
  return IsPlus ? Ctx.extChoice(std::move(Branches))
                : Ctx.intChoice(std::move(Branches));
}

const Expr *HistParser::parseSeq() {
  const Expr *Acc = parsePrefix();
  if (!Acc)
    return nullptr;
  while (accept(TokenKind::Semi)) {
    const Expr *Rhs = parsePrefix();
    if (!Rhs)
      return nullptr;
    Acc = Ctx.seq(Acc, Rhs);
  }
  return Acc;
}

const Expr *HistParser::parsePrefix() {
  DepthGuard Guard(*this);
  if (!Guard)
    return nullptr;
  // Action prefix: IDENT ('?'|'!') ['.' prefix].
  if (peek().is(TokenKind::Ident) &&
      (peek(1).is(TokenKind::Question) || peek(1).is(TokenKind::Bang))) {
    Symbol Channel = Ctx.symbol(next().Text);
    bool IsInput = next().is(TokenKind::Question);
    const Expr *Body = Ctx.empty();
    if (accept(TokenKind::Dot)) {
      Body = parsePrefix();
      if (!Body)
        return nullptr;
    }
    CommAction Act = IsInput ? CommAction::input(Channel)
                             : CommAction::output(Channel);
    return Ctx.prefix(Act, Body);
  }
  return parsePrimary();
}

std::optional<Value> HistParser::parseValue() {
  if (peek().is(TokenKind::Number))
    return Value::integer(next().Number);
  if (peek().is(TokenKind::Ident))
    return Value::name(Ctx.symbol(next().Text));
  error("expected a number or a name");
  return std::nullopt;
}

std::optional<PolicyRef> HistParser::parsePolicyRef() {
  if (!peek().is(TokenKind::Ident)) {
    error("expected policy name");
    return std::nullopt;
  }
  PolicyRef Ref;
  Ref.Name = Ctx.symbol(next().Text);
  if (!accept(TokenKind::LParen))
    return Ref;
  if (accept(TokenKind::RParen))
    return Ref;
  do {
    std::vector<Value> Arg;
    if (accept(TokenKind::LBrace)) {
      if (!accept(TokenKind::RBrace)) {
        do {
          std::optional<Value> V = parseValue();
          if (!V)
            return std::nullopt;
          Arg.push_back(*V);
        } while (accept(TokenKind::Comma));
        if (!expect(TokenKind::RBrace, "to close value set"))
          return std::nullopt;
      }
      std::sort(Arg.begin(), Arg.end());
      Arg.erase(std::unique(Arg.begin(), Arg.end()), Arg.end());
    } else {
      std::optional<Value> V = parseValue();
      if (!V)
        return std::nullopt;
      Arg.push_back(*V);
    }
    Ref.Args.push_back(std::move(Arg));
  } while (accept(TokenKind::Comma));
  if (!expect(TokenKind::RParen, "to close policy arguments"))
    return std::nullopt;
  return Ref;
}

const Expr *HistParser::parsePrimary() {
  const Token &T = peek();

  if (T.is(TokenKind::LParen)) {
    next();
    const Expr *Inner = parseExpr();
    if (!Inner)
      return nullptr;
    if (!expect(TokenKind::RParen))
      return nullptr;
    return Inner;
  }

  if (T.is(TokenKind::Percent)) {
    next();
    if (!peek().is(TokenKind::Ident)) {
      error("expected event name after '%'");
      return nullptr;
    }
    Symbol Name = Ctx.symbol(next().Text);
    Value Arg;
    if (accept(TokenKind::LParen)) {
      std::optional<Value> V = parseValue();
      if (!V)
        return nullptr;
      Arg = *V;
      if (!expect(TokenKind::RParen, "to close event argument"))
        return nullptr;
    }
    return Ctx.event(Event{Name, Arg});
  }

  if (T.isIdent("eps")) {
    next();
    return Ctx.empty();
  }

  if (T.isIdent("open")) {
    next();
    if (!peek().is(TokenKind::Number)) {
      error("expected request id after 'open'");
      return nullptr;
    }
    RequestId R = static_cast<RequestId>(next().Number);
    PolicyRef Policy;
    if (accept(TokenKind::At)) {
      std::optional<PolicyRef> P = parsePolicyRef();
      if (!P)
        return nullptr;
      Policy = std::move(*P);
    }
    if (!expect(TokenKind::LBrace, "to open session body"))
      return nullptr;
    const Expr *Body = parseExpr();
    if (!Body)
      return nullptr;
    if (!expect(TokenKind::RBrace, "to close session body"))
      return nullptr;
    return Ctx.request(R, std::move(Policy), Body);
  }

  if (T.isIdent("close")) {
    next();
    if (!peek().is(TokenKind::Number)) {
      error("expected request id after 'close'");
      return nullptr;
    }
    RequestId R = static_cast<RequestId>(next().Number);
    PolicyRef Policy;
    if (accept(TokenKind::At)) {
      std::optional<PolicyRef> P = parsePolicyRef();
      if (!P)
        return nullptr;
      Policy = std::move(*P);
    }
    return Ctx.closeMark(R, std::move(Policy));
  }

  if (T.isIdent("fopen") || T.isIdent("fclose")) {
    bool IsOpen = T.isIdent("fopen");
    next();
    std::optional<PolicyRef> P = parsePolicyRef();
    if (!P)
      return nullptr;
    return IsOpen ? Ctx.frameOpen(std::move(*P))
                  : Ctx.frameClose(std::move(*P));
  }

  if (T.is(TokenKind::Ident)) {
    // Policy framing (ident '[' or ident '(' ... ')' '[') vs. variable.
    if (peek(1).is(TokenKind::LBracket) || peek(1).is(TokenKind::LParen)) {
      std::optional<PolicyRef> P = parsePolicyRef();
      if (!P)
        return nullptr;
      if (!expect(TokenKind::LBracket, "to open framing body"))
        return nullptr;
      const Expr *Body = parseExpr();
      if (!Body)
        return nullptr;
      if (!expect(TokenKind::RBracket, "to close framing body"))
        return nullptr;
      return Ctx.framing(std::move(*P), Body);
    }
    return Ctx.var(Ctx.symbol(next().Text));
  }

  error(std::string("expected an expression, got ") +
        tokenKindName(T.Kind));
  return nullptr;
}

const Expr *sus::syntax::parseHistExpr(HistContext &Ctx,
                                       std::string_view Buffer,
                                       DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = tokenize(Buffer, Diags);
  if (Diags.hasErrors())
    return nullptr;
  HistParser P(Tokens, Ctx, Diags);
  const Expr *E = P.parseExpr();
  if (!E)
    return nullptr;
  if (!P.atEof()) {
    Diags.error(P.peek().Loc, "trailing input after expression");
    return nullptr;
  }
  return E;
}
