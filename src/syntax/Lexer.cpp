//===- syntax/Lexer.cpp - Tokenizer for the SUS surface syntax ------------===//

#include "syntax/Lexer.h"

#include <cctype>
#include <limits>

using namespace sus;
using namespace sus::syntax;

const char *sus::syntax::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::At:
    return "'@'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::OPlus:
    return "'<+>'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::Ne:
    return "'!='";
  }
  return "token";
}

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

} // namespace

std::vector<Token> sus::syntax::tokenize(std::string_view Buffer,
                                         DiagnosticEngine &Diags,
                                         std::string_view FileName) {
  std::vector<Token> Tokens;
  size_t I = 0;
  unsigned Line = 1, Col = 1;

  auto Advance = [&](size_t N = 1) {
    for (size_t K = 0; K < N && I < Buffer.size(); ++K) {
      if (Buffer[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
      ++I;
    }
  };

  auto Push = [&](TokenKind K, SourceLoc Loc, std::string_view Text = {},
                  int64_t Number = 0) {
    Tokens.push_back({K, Loc, Text, Number});
  };

  while (I < Buffer.size()) {
    char C = Buffer[I];
    SourceLoc Loc{Line, Col, FileName};

    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    // Comments: '//' or '#' to end of line.
    if (C == '#' || (C == '/' && I + 1 < Buffer.size() &&
                     Buffer[I + 1] == '/')) {
      while (I < Buffer.size() && Buffer[I] != '\n')
        Advance();
      continue;
    }
    if (isIdentStart(C)) {
      size_t Start = I;
      while (I < Buffer.size() && isIdentCont(Buffer[I]))
        Advance();
      Push(TokenKind::Ident, Loc, Buffer.substr(Start, I - Start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && I + 1 < Buffer.size() &&
         std::isdigit(static_cast<unsigned char>(Buffer[I + 1])))) {
      bool Negative = C == '-';
      if (Negative)
        Advance();
      // Checked accumulation: the magnitude must fit int64_t. (The most
      // negative value, whose magnitude is INT64_MAX+1, is also rejected —
      // no SUS construct needs it, and keeping the bound symmetric keeps
      // `Negative ? -N : N` free of overflow.)
      int64_t N = 0;
      bool Overflow = false;
      while (I < Buffer.size() &&
             std::isdigit(static_cast<unsigned char>(Buffer[I]))) {
        int64_t Digit = Buffer[I] - '0';
        if (N > (std::numeric_limits<int64_t>::max() - Digit) / 10)
          Overflow = true;
        else
          N = N * 10 + Digit;
        Advance();
      }
      if (Overflow) {
        Diags.error(Loc, "number literal out of range");
        continue;
      }
      Push(TokenKind::Number, Loc, {}, Negative ? -N : N);
      continue;
    }

    auto Two = [&](char A, char B) {
      return C == A && I + 1 < Buffer.size() && Buffer[I + 1] == B;
    };

    if (Two('<', '+') && I + 2 < Buffer.size() && Buffer[I + 2] == '>') {
      Push(TokenKind::OPlus, Loc);
      Advance(3);
      continue;
    }
    if (Two('-', '>')) {
      Push(TokenKind::Arrow, Loc);
      Advance(2);
      continue;
    }
    if (Two('<', '=')) {
      Push(TokenKind::Le, Loc);
      Advance(2);
      continue;
    }
    if (Two('>', '=')) {
      Push(TokenKind::Ge, Loc);
      Advance(2);
      continue;
    }
    if (Two('=', '=')) {
      Push(TokenKind::EqEq, Loc);
      Advance(2);
      continue;
    }
    if (Two('!', '=')) {
      Push(TokenKind::Ne, Loc);
      Advance(2);
      continue;
    }

    TokenKind K = TokenKind::Eof;
    switch (C) {
    case '(':
      K = TokenKind::LParen;
      break;
    case ')':
      K = TokenKind::RParen;
      break;
    case '{':
      K = TokenKind::LBrace;
      break;
    case '}':
      K = TokenKind::RBrace;
      break;
    case '[':
      K = TokenKind::LBracket;
      break;
    case ']':
      K = TokenKind::RBracket;
      break;
    case ';':
      K = TokenKind::Semi;
      break;
    case ':':
      K = TokenKind::Colon;
      break;
    case ',':
      K = TokenKind::Comma;
      break;
    case '.':
      K = TokenKind::Dot;
      break;
    case '?':
      K = TokenKind::Question;
      break;
    case '!':
      K = TokenKind::Bang;
      break;
    case '%':
      K = TokenKind::Percent;
      break;
    case '@':
      K = TokenKind::At;
      break;
    case '*':
      K = TokenKind::Star;
      break;
    case '+':
      K = TokenKind::Plus;
      break;
    case '<':
      K = TokenKind::Lt;
      break;
    case '>':
      K = TokenKind::Gt;
      break;
    default:
      Diags.error(Loc, std::string("stray character '") + C + "'");
      Advance();
      continue;
    }
    Push(K, Loc);
    Advance();
  }

  Tokens.push_back({TokenKind::Eof, SourceLoc{Line, Col, FileName}, {}, 0});
  return Tokens;
}
