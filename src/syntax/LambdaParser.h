//===- syntax/LambdaParser.h - λ service-calculus parser --------*- C++ -*-===//
///
/// \file
/// Parser for the λ service calculus (lambda/Term.h), so .sus files can
/// declare behaviours as *programs* whose history expressions are
/// extracted by the type-and-effect system:
///
///   lterm := 'unit' | 'true' | 'false' | IDENT
///          | 'fun' '(' IDENT ':' ltype ')' '.' lterm
///          | 'if' lterm 'then' lterm 'else' lterm
///          | '%' IDENT ['(' value ')']                  (event)
///          | 'snd' IDENT | 'rcv' IDENT                  (one message)
///          | 'select' '{' IDENT '->' lterm (',' …)* '}'
///          | 'branch' '{' IDENT '->' lterm (',' …)* '}'
///          | 'req' NUM ['@' policyref] '{' lterm '}'
///          | 'frame' policyref '{' lterm '}'
///          | 'rec' IDENT '{' lterm '}' | 'jump' IDENT
///          | lterm ';' lterm | lterm lterm (application)
///          | '(' lterm ')'
///   ltype := 'unit' | 'bool'       (first-order parameter annotations)
///
/// Sequencing binds loosest; application is juxtaposition and binds
/// tightest. Higher-order parameter annotations are not expressible in
/// the surface syntax (latent effects would need to be written down);
/// build such terms through the LambdaContext API instead.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SYNTAX_LAMBDAPARSER_H
#define SUS_SYNTAX_LAMBDAPARSER_H

#include "lambda/LambdaContext.h"
#include "syntax/ParserBase.h"

#include <optional>

namespace sus {
namespace syntax {

/// Parses λ terms out of a token stream.
class LambdaParser : public ParserBase {
public:
  LambdaParser(const std::vector<Token> &Tokens, lambda::LambdaContext &Ctx,
               DiagnosticEngine &Diags)
      : ParserBase(Tokens, Diags), Ctx(Ctx) {}

  /// Parses one term; null on error.
  const lambda::Term *parseTerm();

private:
  const lambda::Term *parseApp();
  const lambda::Term *parseAtom();
  const lambda::Type *parseType();
  std::optional<hist::PolicyRef> parsePolicyRef();
  std::optional<Value> parseValue();

  /// True if the current token can begin an atom (drives juxtaposition).
  bool startsAtom() const;

  lambda::LambdaContext &Ctx;
};

/// Convenience: parses a whole buffer as one λ term.
const lambda::Term *parseLambdaTerm(lambda::LambdaContext &Ctx,
                                    std::string_view Buffer,
                                    DiagnosticEngine &Diags);

} // namespace syntax
} // namespace sus

#endif // SUS_SYNTAX_LAMBDAPARSER_H
