//===- syntax/FileParser.h - .sus network file parser -----------*- C++ -*-===//
///
/// \file
/// Parses whole .sus files describing a verification problem:
///
///   policy phi(bl: set, p: int, t: int) {
///     start q1;
///     offending q6;
///     q1 -> q2 on sgn(x) when x not in bl;
///     q1 -> q6 on sgn(x) when x in bl;
///     q2 -> q3 on p(y) when y <= p;
///     q2 -> q4 on p(y) when y > p;
///     q4 -> q5 on ta(z) when z >= t;
///     q4 -> q6 on ta(z) when z < t;
///     q6 -> q6 on *;
///   }
///   service br { Req? . (open 3 { IdC! . (Bok? + UnA?) }; ...) }
///   client c1 { open 1 @ phi({s1},45,100) { ... } }
///   plan pi1 for c1 { 1 -> br; 3 -> s3; }
///
/// States are auto-registered on first mention; `start` defaults to the
/// first mentioned state. Parsed services/clients are checked closed and
/// well-formed, and policies are verified structurally.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SYNTAX_FILEPARSER_H
#define SUS_SYNTAX_FILEPARSER_H

#include "hist/HistContext.h"
#include "plan/Plan.h"
#include "policy/UsageAutomaton.h"
#include "syntax/Lexer.h"

#include <map>
#include <optional>
#include <vector>

namespace sus {
namespace syntax {

/// One named plan declaration bound to a client.
struct PlanDecl {
  Symbol Name;
  Symbol Client;
  plan::Plan Pi;
  SourceLoc Loc; ///< Location of the plan's name token.
};

/// Everything a .sus file declares.
struct SusFile {
  policy::PolicyRegistry Registry;
  plan::Repository Repo; ///< All `service` declarations.
  std::vector<std::pair<Symbol, const hist::Expr *>> Clients;
  std::vector<PlanDecl> Plans;

  /// Locations of the name tokens of the declarations, for diagnostics
  /// (services, clients and policies live in separate namespaces).
  std::map<Symbol, SourceLoc> PolicyLocs;
  std::map<Symbol, SourceLoc> ServiceLocs;
  std::map<Symbol, SourceLoc> ClientLocs;

  const hist::Expr *findClient(Symbol Name) const {
    for (const auto &[N, E] : Clients)
      if (N == Name)
        return E;
    return nullptr;
  }

  const PlanDecl *findPlan(Symbol Name) const {
    for (const PlanDecl &P : Plans)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }

  SourceLoc locOf(const std::map<Symbol, SourceLoc> &Locs, Symbol Name) const {
    auto It = Locs.find(Name);
    return It == Locs.end() ? SourceLoc() : It->second;
  }
};

/// Parses \p Buffer; std::nullopt (with diagnostics) on any error.
/// \p FileName, when given, is stamped into every source location (it must
/// outlive the diagnostics; see SourceLoc::File).
std::optional<SusFile> parseSusFile(hist::HistContext &Ctx,
                                    std::string_view Buffer,
                                    DiagnosticEngine &Diags,
                                    std::string_view FileName = {});

} // namespace syntax
} // namespace sus

#endif // SUS_SYNTAX_FILEPARSER_H
