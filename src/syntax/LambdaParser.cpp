//===- syntax/LambdaParser.cpp - λ service-calculus parser ----------------===//

#include "syntax/LambdaParser.h"

#include <algorithm>

using namespace sus;
using namespace sus::lambda;
using namespace sus::syntax;

namespace {

/// Contextual keywords that can never be bare variables.
bool isReservedWord(std::string_view S) {
  return S == "unit" || S == "true" || S == "false" || S == "fun" ||
         S == "if" || S == "then" || S == "else" || S == "snd" ||
         S == "rcv" || S == "select" || S == "branch" || S == "req" ||
         S == "frame" || S == "rec" || S == "jump" || S == "bool";
}

} // namespace

bool LambdaParser::startsAtom() const {
  const Token &T = peek();
  if (T.is(TokenKind::LParen) || T.is(TokenKind::Percent))
    return true;
  if (!T.is(TokenKind::Ident))
    return false;
  // 'then'/'else' terminate an application run inside an if.
  return T.Text != "then" && T.Text != "else";
}

const Term *LambdaParser::parseTerm() {
  const Term *Acc = parseApp();
  if (!Acc)
    return nullptr;
  while (accept(TokenKind::Semi)) {
    const Term *Rhs = parseApp();
    if (!Rhs)
      return nullptr;
    Acc = Ctx.seq(Acc, Rhs);
  }
  return Acc;
}

const Term *LambdaParser::parseApp() {
  const Term *Acc = parseAtom();
  if (!Acc)
    return nullptr;
  while (startsAtom()) {
    const Term *Arg = parseAtom();
    if (!Arg)
      return nullptr;
    Acc = Ctx.app(Acc, Arg);
  }
  return Acc;
}

const Type *LambdaParser::parseType() {
  if (acceptIdent("unit"))
    return Ctx.unitType();
  if (acceptIdent("bool"))
    return Ctx.boolType();
  error("expected parameter type 'unit' or 'bool'");
  return nullptr;
}

std::optional<Value> LambdaParser::parseValue() {
  if (peek().is(TokenKind::Number))
    return Value::integer(next().Number);
  if (peek().is(TokenKind::Ident))
    return Value::name(Ctx.symbol(next().Text));
  error("expected a number or a name");
  return std::nullopt;
}

std::optional<hist::PolicyRef> LambdaParser::parsePolicyRef() {
  if (!peek().is(TokenKind::Ident)) {
    error("expected policy name");
    return std::nullopt;
  }
  hist::PolicyRef Ref;
  Ref.Name = Ctx.symbol(next().Text);
  if (!accept(TokenKind::LParen))
    return Ref;
  if (accept(TokenKind::RParen))
    return Ref;
  do {
    std::vector<Value> Arg;
    if (accept(TokenKind::LBrace)) {
      if (!accept(TokenKind::RBrace)) {
        do {
          std::optional<Value> V = parseValue();
          if (!V)
            return std::nullopt;
          Arg.push_back(*V);
        } while (accept(TokenKind::Comma));
        if (!expect(TokenKind::RBrace, "to close value set"))
          return std::nullopt;
      }
      std::sort(Arg.begin(), Arg.end());
      Arg.erase(std::unique(Arg.begin(), Arg.end()), Arg.end());
    } else {
      std::optional<Value> V = parseValue();
      if (!V)
        return std::nullopt;
      Arg.push_back(*V);
    }
    Ref.Args.push_back(std::move(Arg));
  } while (accept(TokenKind::Comma));
  if (!expect(TokenKind::RParen, "to close policy arguments"))
    return std::nullopt;
  return Ref;
}

const Term *LambdaParser::parseAtom() {
  DepthGuard Guard(*this);
  if (!Guard)
    return nullptr;
  const Token &T = peek();

  if (T.is(TokenKind::LParen)) {
    next();
    const Term *Inner = parseTerm();
    if (!Inner)
      return nullptr;
    if (!expect(TokenKind::RParen))
      return nullptr;
    return Inner;
  }

  if (T.is(TokenKind::Percent)) {
    next();
    if (!peek().is(TokenKind::Ident)) {
      error("expected event name after '%'");
      return nullptr;
    }
    Symbol Name = Ctx.symbol(next().Text);
    Value Arg;
    if (accept(TokenKind::LParen)) {
      std::optional<Value> V = parseValue();
      if (!V)
        return nullptr;
      Arg = *V;
      if (!expect(TokenKind::RParen, "to close event argument"))
        return nullptr;
    }
    return Ctx.event(hist::Event{Name, Arg});
  }

  if (!T.is(TokenKind::Ident)) {
    error(std::string("expected a term, got ") + tokenKindName(T.Kind));
    return nullptr;
  }

  if (T.Text == "unit") {
    next();
    return Ctx.unit();
  }
  if (T.Text == "true" || T.Text == "false") {
    bool V = T.Text == "true";
    next();
    return Ctx.boolLit(V);
  }
  if (T.Text == "fun") {
    next();
    if (!expect(TokenKind::LParen, "after 'fun'"))
      return nullptr;
    if (!peek().is(TokenKind::Ident)) {
      error("expected parameter name");
      return nullptr;
    }
    std::string Param(next().Text);
    if (!expect(TokenKind::Colon, "after parameter name"))
      return nullptr;
    const Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close parameter"))
      return nullptr;
    if (!expect(TokenKind::Dot, "before function body"))
      return nullptr;
    const Term *Body = parseTerm();
    if (!Body)
      return nullptr;
    return Ctx.lambda(Param, Ty, Body);
  }
  if (T.Text == "if") {
    next();
    const Term *C = parseTerm();
    if (!C)
      return nullptr;
    if (!acceptIdent("then")) {
      error("expected 'then'");
      return nullptr;
    }
    const Term *Then = parseTerm();
    if (!Then)
      return nullptr;
    if (!acceptIdent("else")) {
      error("expected 'else'");
      return nullptr;
    }
    const Term *Else = parseApp();
    if (!Else)
      return nullptr;
    return Ctx.ifTerm(C, Then, Else);
  }
  if (T.Text == "snd" || T.Text == "rcv") {
    bool IsSend = T.Text == "snd";
    next();
    if (!peek().is(TokenKind::Ident)) {
      error("expected channel name");
      return nullptr;
    }
    std::string Ch(next().Text);
    return IsSend ? Ctx.send(Ch) : Ctx.recv(Ch);
  }
  if (T.Text == "select" || T.Text == "branch") {
    bool IsSelect = T.Text == "select";
    next();
    if (!expect(TokenKind::LBrace, "to open arms"))
      return nullptr;
    std::vector<CommArm> Arms;
    do {
      if (!peek().is(TokenKind::Ident)) {
        error("expected channel name in arm");
        return nullptr;
      }
      Symbol Ch = Ctx.symbol(next().Text);
      if (!expect(TokenKind::Arrow, "in arm"))
        return nullptr;
      const Term *Body = parseTerm();
      if (!Body)
        return nullptr;
      Arms.push_back({Ch, Body});
    } while (accept(TokenKind::Comma));
    if (!expect(TokenKind::RBrace, "to close arms"))
      return nullptr;
    return IsSelect ? Ctx.select(std::move(Arms))
                    : Ctx.branch(std::move(Arms));
  }
  if (T.Text == "req") {
    next();
    if (!peek().is(TokenKind::Number)) {
      error("expected request id after 'req'");
      return nullptr;
    }
    hist::RequestId R = static_cast<hist::RequestId>(next().Number);
    hist::PolicyRef Policy;
    if (accept(TokenKind::At)) {
      std::optional<hist::PolicyRef> P = parsePolicyRef();
      if (!P)
        return nullptr;
      Policy = std::move(*P);
    }
    if (!expect(TokenKind::LBrace, "to open session body"))
      return nullptr;
    const Term *Body = parseTerm();
    if (!Body)
      return nullptr;
    if (!expect(TokenKind::RBrace, "to close session body"))
      return nullptr;
    return Ctx.request(R, std::move(Policy), Body);
  }
  if (T.Text == "frame") {
    next();
    std::optional<hist::PolicyRef> P = parsePolicyRef();
    if (!P)
      return nullptr;
    if (!expect(TokenKind::LBrace, "to open framing body"))
      return nullptr;
    const Term *Body = parseTerm();
    if (!Body)
      return nullptr;
    if (!expect(TokenKind::RBrace, "to close framing body"))
      return nullptr;
    return Ctx.framing(std::move(*P), Body);
  }
  if (T.Text == "rec") {
    next();
    if (!peek().is(TokenKind::Ident)) {
      error("expected loop variable after 'rec'");
      return nullptr;
    }
    std::string Var(next().Text);
    if (!expect(TokenKind::LBrace, "to open rec body"))
      return nullptr;
    const Term *Body = parseTerm();
    if (!Body)
      return nullptr;
    if (!expect(TokenKind::RBrace, "to close rec body"))
      return nullptr;
    return Ctx.rec(Var, Body);
  }
  if (T.Text == "jump") {
    next();
    if (!peek().is(TokenKind::Ident)) {
      error("expected loop variable after 'jump'");
      return nullptr;
    }
    return Ctx.jump(std::string(next().Text));
  }

  if (isReservedWord(T.Text)) {
    error("'" + std::string(T.Text) + "' cannot be used here");
    return nullptr;
  }
  return Ctx.var(std::string(next().Text));
}

const Term *sus::syntax::parseLambdaTerm(LambdaContext &Ctx,
                                         std::string_view Buffer,
                                         DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = tokenize(Buffer, Diags);
  if (Diags.hasErrors())
    return nullptr;
  LambdaParser P(Tokens, Ctx, Diags);
  const Term *T = P.parseTerm();
  if (!T)
    return nullptr;
  if (!P.atEof()) {
    Diags.error(P.peek().Loc, "trailing input after term");
    return nullptr;
  }
  return T;
}
