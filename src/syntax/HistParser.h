//===- syntax/HistParser.h - History-expression parser ----------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for the history-expression surface syntax
/// emitted by hist::print (see hist/Printer.h for the grammar). Print and
/// parse round-trip to the same hash-consed node.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SYNTAX_HISTPARSER_H
#define SUS_SYNTAX_HISTPARSER_H

#include "hist/HistContext.h"
#include "syntax/ParserBase.h"

#include <optional>

namespace sus {
namespace syntax {

/// Parses one history expression out of a token stream (used standalone
/// and by the .sus file parser).
class HistParser : public ParserBase {
public:
  HistParser(const std::vector<Token> &Tokens, hist::HistContext &Ctx,
             DiagnosticEngine &Diags)
      : ParserBase(Tokens, Diags), Ctx(Ctx) {}

  /// expr := 'mu' IDENT '.' expr | choice. Null on error.
  const hist::Expr *parseExpr();

  /// Parses a policy reference IDENT ['(' args ')'].
  std::optional<hist::PolicyRef> parsePolicyRef();

private:
  const hist::Expr *parseChoice();
  const hist::Expr *parseSeq();
  const hist::Expr *parsePrefix();
  const hist::Expr *parsePrimary();
  std::optional<Value> parseValue();

  /// Turns a choice operand into guarded branches, distributing a trailing
  /// sequence into the branch bodies; reports when the operand is not
  /// communication-guarded.
  bool operandBranches(const hist::Expr *E, bool WantInputs,
                       std::vector<hist::ChoiceBranch> &Out);

  hist::HistContext &Ctx;
};

/// Convenience: parses a whole buffer as one expression (must consume all
/// input). Null on error (details in \p Diags).
const hist::Expr *parseHistExpr(hist::HistContext &Ctx,
                                std::string_view Buffer,
                                DiagnosticEngine &Diags);

} // namespace syntax
} // namespace sus

#endif // SUS_SYNTAX_HISTPARSER_H
