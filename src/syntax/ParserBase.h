//===- syntax/ParserBase.h - Token cursor shared by parsers -----*- C++ -*-===//
///
/// \file
/// A small token cursor with diagnostics, shared by the history-expression
/// parser and the .sus file parser.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_SYNTAX_PARSERBASE_H
#define SUS_SYNTAX_PARSERBASE_H

#include "syntax/Lexer.h"

#include <string>
#include <vector>

namespace sus {
namespace syntax {

/// Cursor over a token vector with error reporting helpers.
class ParserBase {
public:
  ParserBase(const std::vector<Token> &Tokens, DiagnosticEngine &Diags)
      : Tokens(Tokens), Diags(Diags) {}

  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  const Token &next() {
    const Token &T = peek();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  bool atEof() const { return peek().is(TokenKind::Eof); }

  /// Consumes a token of kind \p K if present.
  bool accept(TokenKind K) {
    if (!peek().is(K))
      return false;
    next();
    return true;
  }

  /// Consumes an identifier with exact spelling \p S if present.
  bool acceptIdent(std::string_view S) {
    if (!peek().isIdent(S))
      return false;
    next();
    return true;
  }

  /// Requires a token of kind \p K; reports and returns false otherwise.
  bool expect(TokenKind K, std::string_view What = {}) {
    if (accept(K))
      return true;
    std::string Msg = "expected ";
    Msg += tokenKindName(K);
    if (!What.empty()) {
      Msg += " ";
      Msg += What;
    }
    Msg += ", got ";
    Msg += tokenKindName(peek().Kind);
    Diags.error(peek().Loc, Msg);
    return false;
  }

  void error(std::string Message) { Diags.error(peek().Loc, Message); }

  DiagnosticEngine &diags() { return Diags; }

  /// Cursor position (for handing off between cooperating parsers over
  /// the same token vector).
  size_t position() const { return Pos; }
  void setPosition(size_t P) { Pos = P < Tokens.size() ? P : Tokens.size(); }

  /// Maximum recursive-descent nesting. Generous for real programs, small
  /// enough that the parser never rides the native stack to exhaustion on
  /// adversarial input (each level is a handful of frames).
  static constexpr unsigned MaxDepth = 256;

  /// RAII depth ticket for the recursive entry points. Construct one at
  /// the top of every function that can re-enter itself through the token
  /// stream; when it converts to false, the limit was exceeded, a
  /// diagnostic has been reported, and the caller must bail out with its
  /// failure value.
  class DepthGuard {
  public:
    explicit DepthGuard(ParserBase &P) : P(P) {
      Ok = ++P.Depth <= MaxDepth;
      if (!Ok)
        P.error("expression nesting too deep (limit " +
                std::to_string(MaxDepth) + ")");
    }
    ~DepthGuard() { --P.Depth; }
    DepthGuard(const DepthGuard &) = delete;
    DepthGuard &operator=(const DepthGuard &) = delete;
    explicit operator bool() const { return Ok; }

  private:
    ParserBase &P;
    bool Ok;
  };

protected:
  const std::vector<Token> &Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Depth = 0;
};

} // namespace syntax
} // namespace sus

#endif // SUS_SYNTAX_PARSERBASE_H
