//===- lambda/TypeEffect.h - The type-and-effect system ---------*- C++ -*-===//
///
/// \file
/// The type-and-effect system extracting history expressions from service
/// code (§3: "a type and effect system extracts their abstract behaviour,
/// in the form of history expressions"). Judgements have the shape
/// Γ ⊢ t : τ ▷ H. Effects compose sequentially; `if` requires its branches
/// to agree on both type and effect (nondeterminism is expressed with
/// select/branch, keeping effects inside the paper's Def. 1 grammar);
/// `rec h { … jump h … }` produces µh.H with the paper's guarded-tail
/// restriction checked on the result.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_LAMBDA_TYPEEFFECT_H
#define SUS_LAMBDA_TYPEEFFECT_H

#include "lambda/LambdaContext.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <set>

namespace sus {
namespace lambda {

/// The result of inferring one term.
struct TypeAndEffect {
  const Type *Ty = nullptr;
  const hist::Expr *Effect = nullptr;
};

/// Infers types and extracts effects; reports violations into Diags.
class EffectSystem {
public:
  EffectSystem(LambdaContext &Ctx, DiagnosticEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  /// Γ ⊢ t : τ ▷ H, with an empty initial Γ. std::nullopt on type error.
  std::optional<TypeAndEffect> infer(const Term *T);

  /// Infers a whole service: the term must be closed, its type Unit, and
  /// the extracted effect closed and well-formed (guarded tail
  /// recursion). Returns the effect.
  std::optional<const hist::Expr *> inferServiceEffect(const Term *T);

private:
  struct Env {
    std::map<Symbol, const Type *> Vars;
    std::set<Symbol> RecVars;
  };

  std::optional<TypeAndEffect> inferIn(const Term *T, Env &E);
  const char *typeName(const Type *T) const;

  LambdaContext &Ctx;
  DiagnosticEngine &Diags;
};

} // namespace lambda
} // namespace sus

#endif // SUS_LAMBDA_TYPEEFFECT_H
