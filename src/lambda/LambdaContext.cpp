//===- lambda/LambdaContext.cpp - Term/type factory ------------------------===//

#include "lambda/LambdaContext.h"

#include <cassert>

using namespace sus;
using namespace sus::lambda;

const Type *Type::param() const {
  assert(isArrow() && "param() on a non-arrow type");
  return Param;
}

const Type *Type::result() const {
  assert(isArrow() && "result() on a non-arrow type");
  return Result;
}

const hist::Expr *Type::latentEffect() const {
  assert(isArrow() && "latentEffect() on a non-arrow type");
  return Latent;
}

const Type *LambdaContext::unitType() {
  if (!UnitTy)
    UnitTy = Nodes.create<Type>(TypeKind::Unit, nullptr, nullptr, nullptr);
  return UnitTy;
}

const Type *LambdaContext::boolType() {
  if (!BoolTy)
    BoolTy = Nodes.create<Type>(TypeKind::Bool, nullptr, nullptr, nullptr);
  return BoolTy;
}

const Type *LambdaContext::arrow(const Type *Param, const Type *Result,
                                 const hist::Expr *Latent) {
  auto Key = std::make_tuple(Param, Result, Latent);
  auto It = Arrows.find(Key);
  if (It != Arrows.end())
    return It->second;
  const Type *T =
      Nodes.create<Type>(TypeKind::Arrow, Param, Result, Latent);
  Arrows.emplace(Key, T);
  return T;
}

const Term *LambdaContext::unit() { return Nodes.create<UnitTerm>(); }

const Term *LambdaContext::boolLit(bool V) {
  return Nodes.create<BoolLitTerm>(V);
}

const Term *LambdaContext::var(std::string_view Name) {
  return Nodes.create<VarTerm>(symbol(Name));
}

const Term *LambdaContext::lambda(std::string_view Param,
                                  const Type *ParamType, const Term *Body) {
  return Nodes.create<LambdaTerm>(symbol(Param), ParamType, Body);
}

const Term *LambdaContext::app(const Term *Fn, const Term *Arg) {
  return Nodes.create<AppTerm>(Fn, Arg);
}

const Term *LambdaContext::seq(const Term *A, const Term *B) {
  return Nodes.create<SeqTerm>(A, B);
}

const Term *LambdaContext::ifTerm(const Term *C, const Term *Then,
                                  const Term *Else) {
  return Nodes.create<IfTerm>(C, Then, Else);
}

const Term *LambdaContext::event(hist::Event Ev) {
  return Nodes.create<EventTerm>(Ev);
}

const Term *LambdaContext::event(std::string_view Name) {
  return Nodes.create<EventTerm>(hist::Event{symbol(Name), Value()});
}

const Term *LambdaContext::event(std::string_view Name, int64_t Arg) {
  return Nodes.create<EventTerm>(
      hist::Event{symbol(Name), Value::integer(Arg)});
}

const Term *LambdaContext::event(std::string_view Name,
                                 std::string_view Arg) {
  return Nodes.create<EventTerm>(
      hist::Event{symbol(Name), Value::name(symbol(Arg))});
}

const Term *LambdaContext::send(std::string_view Channel) {
  return Nodes.create<CommTerm>(TermKind::Send, symbol(Channel));
}

const Term *LambdaContext::recv(std::string_view Channel) {
  return Nodes.create<CommTerm>(TermKind::Recv, symbol(Channel));
}

const Term *LambdaContext::select(std::vector<CommArm> Arms) {
  assert(!Arms.empty() && "select requires at least one arm");
  return Nodes.create<ChoiceTerm>(TermKind::Select, std::move(Arms));
}

const Term *LambdaContext::branch(std::vector<CommArm> Arms) {
  assert(!Arms.empty() && "branch requires at least one arm");
  return Nodes.create<ChoiceTerm>(TermKind::Branch, std::move(Arms));
}

const Term *LambdaContext::request(hist::RequestId Request,
                                   hist::PolicyRef Policy,
                                   const Term *Body) {
  return Nodes.create<RequestTerm>(Request, std::move(Policy), Body);
}

const Term *LambdaContext::framing(hist::PolicyRef Policy,
                                   const Term *Body) {
  return Nodes.create<FramingTerm>(std::move(Policy), Body);
}

const Term *LambdaContext::rec(std::string_view Var, const Term *Body) {
  return Nodes.create<RecTerm>(symbol(Var), Body);
}

const Term *LambdaContext::jump(std::string_view Var) {
  return Nodes.create<JumpTerm>(symbol(Var));
}
