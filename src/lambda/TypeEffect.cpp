//===- lambda/TypeEffect.cpp - The type-and-effect system ------------------===//

#include "lambda/TypeEffect.h"

#include "hist/WellFormed.h"

using namespace sus;
using namespace sus::hist;
using namespace sus::lambda;

const char *EffectSystem::typeName(const Type *T) const {
  if (!T)
    return "<error>";
  switch (T->kind()) {
  case TypeKind::Unit:
    return "unit";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Arrow:
    return "function";
  }
  return "<unknown>";
}

std::optional<TypeAndEffect> EffectSystem::infer(const Term *T) {
  Env E;
  return inferIn(T, E);
}

std::optional<TypeAndEffect> EffectSystem::inferIn(const Term *T, Env &E) {
  HistContext &H = Ctx.hist();
  switch (T->kind()) {
  case TermKind::Unit:
    return TypeAndEffect{Ctx.unitType(), H.empty()};

  case TermKind::BoolLit:
    return TypeAndEffect{Ctx.boolType(), H.empty()};

  case TermKind::Var: {
    const auto *V = cast<VarTerm>(T);
    auto It = E.Vars.find(V->name());
    if (It == E.Vars.end()) {
      Diags.error("unbound variable '" +
                  std::string(Ctx.interner().text(V->name())) + "'");
      return std::nullopt;
    }
    return TypeAndEffect{It->second, H.empty()};
  }

  case TermKind::Lambda: {
    const auto *L = cast<LambdaTerm>(T);
    const Type *Saved = nullptr;
    bool HadOld = false;
    auto It = E.Vars.find(L->param());
    if (It != E.Vars.end()) {
      Saved = It->second;
      HadOld = true;
    }
    E.Vars[L->param()] = L->paramType();
    std::optional<TypeAndEffect> Body = inferIn(L->body(), E);
    if (HadOld)
      E.Vars[L->param()] = Saved;
    else
      E.Vars.erase(L->param());
    if (!Body)
      return std::nullopt;
    // The body's effect is latent: released at application time.
    return TypeAndEffect{
        Ctx.arrow(L->paramType(), Body->Ty, Body->Effect), H.empty()};
  }

  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    std::optional<TypeAndEffect> Fn = inferIn(A->fn(), E);
    std::optional<TypeAndEffect> Arg = inferIn(A->arg(), E);
    if (!Fn || !Arg)
      return std::nullopt;
    if (!Fn->Ty->isArrow()) {
      Diags.error(std::string("cannot apply a value of type ") +
                  typeName(Fn->Ty));
      return std::nullopt;
    }
    if (Fn->Ty->param() != Arg->Ty) {
      Diags.error(std::string("argument type mismatch: expected ") +
                  typeName(Fn->Ty->param()) + ", got " + typeName(Arg->Ty));
      return std::nullopt;
    }
    // H_fn · H_arg · latent.
    return TypeAndEffect{
        Fn->Ty->result(),
        H.seq(Fn->Effect, H.seq(Arg->Effect, Fn->Ty->latentEffect()))};
  }

  case TermKind::Seq: {
    const auto *S = cast<SeqTerm>(T);
    std::optional<TypeAndEffect> A = inferIn(S->first(), E);
    std::optional<TypeAndEffect> B = inferIn(S->second(), E);
    if (!A || !B)
      return std::nullopt;
    return TypeAndEffect{B->Ty, H.seq(A->Effect, B->Effect)};
  }

  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    std::optional<TypeAndEffect> C = inferIn(I->cond(), E);
    std::optional<TypeAndEffect> Then = inferIn(I->thenBranch(), E);
    std::optional<TypeAndEffect> Else = inferIn(I->elseBranch(), E);
    if (!C || !Then || !Else)
      return std::nullopt;
    if (!C->Ty->isBool()) {
      Diags.error(std::string("if condition must be bool, got ") +
                  typeName(C->Ty));
      return std::nullopt;
    }
    if (Then->Ty != Else->Ty) {
      Diags.error("if branches disagree on type");
      return std::nullopt;
    }
    if (Then->Effect != Else->Effect) {
      Diags.error("if branches disagree on effect; use select/branch for "
                  "observable nondeterminism");
      return std::nullopt;
    }
    return TypeAndEffect{Then->Ty, H.seq(C->Effect, Then->Effect)};
  }

  case TermKind::Event: {
    const auto *Ev = cast<EventTerm>(T);
    return TypeAndEffect{Ctx.unitType(), H.event(Ev->event())};
  }

  case TermKind::Send:
  case TermKind::Recv: {
    const auto *Cm = cast<CommTerm>(T);
    CommAction Act = Cm->isSend() ? CommAction::output(Cm->channel())
                                  : CommAction::input(Cm->channel());
    return TypeAndEffect{Ctx.unitType(), H.prefix(Act, H.empty())};
  }

  case TermKind::Select:
  case TermKind::Branch: {
    const auto *Ch = cast<ChoiceTerm>(T);
    bool IsSelect = Ch->isSelect();
    std::vector<ChoiceBranch> Branches;
    const Type *CommonTy = nullptr;
    for (const CommArm &Arm : Ch->arms()) {
      std::optional<TypeAndEffect> Body = inferIn(Arm.Body, E);
      if (!Body)
        return std::nullopt;
      if (CommonTy && Body->Ty != CommonTy) {
        Diags.error("select/branch arms disagree on type");
        return std::nullopt;
      }
      CommonTy = Body->Ty;
      CommAction Act = IsSelect ? CommAction::output(Arm.Channel)
                                : CommAction::input(Arm.Channel);
      Branches.push_back({Act, Body->Effect});
    }
    const Expr *Effect = IsSelect ? H.intChoice(std::move(Branches))
                                  : H.extChoice(std::move(Branches));
    return TypeAndEffect{CommonTy, Effect};
  }

  case TermKind::Request: {
    const auto *R = cast<RequestTerm>(T);
    std::optional<TypeAndEffect> Body = inferIn(R->body(), E);
    if (!Body)
      return std::nullopt;
    if (!Body->Ty->isUnit()) {
      Diags.error("a session body must have type unit");
      return std::nullopt;
    }
    return TypeAndEffect{
        Ctx.unitType(), H.request(R->request(), R->policy(), Body->Effect)};
  }

  case TermKind::Framing: {
    const auto *F = cast<FramingTerm>(T);
    std::optional<TypeAndEffect> Body = inferIn(F->body(), E);
    if (!Body)
      return std::nullopt;
    return TypeAndEffect{Body->Ty, H.framing(F->policy(), Body->Effect)};
  }

  case TermKind::Rec: {
    const auto *R = cast<RecTerm>(T);
    bool Inserted = E.RecVars.insert(R->var()).second;
    std::optional<TypeAndEffect> Body = inferIn(R->body(), E);
    if (Inserted)
      E.RecVars.erase(R->var());
    if (!Body)
      return std::nullopt;
    if (!Body->Ty->isUnit()) {
      Diags.error("a rec body must have type unit");
      return std::nullopt;
    }
    return TypeAndEffect{Ctx.unitType(), H.mu(R->var(), Body->Effect)};
  }

  case TermKind::Jump: {
    const auto *J = cast<JumpTerm>(T);
    if (!E.RecVars.count(J->var())) {
      Diags.error("jump target '" +
                  std::string(Ctx.interner().text(J->var())) +
                  "' is not an enclosing rec");
      return std::nullopt;
    }
    // A jump never returns; give it type unit (it may only appear in tail
    // position, which the effect well-formedness check enforces).
    return TypeAndEffect{Ctx.unitType(), H.var(J->var())};
  }
  }
  return std::nullopt;
}

std::optional<const Expr *>
EffectSystem::inferServiceEffect(const Term *T) {
  std::optional<TypeAndEffect> R = infer(T);
  if (!R)
    return std::nullopt;
  if (!R->Ty->isUnit()) {
    Diags.error(std::string("a service must have type unit, got ") +
                typeName(R->Ty));
    return std::nullopt;
  }
  if (!Ctx.hist().isClosed(R->Effect)) {
    Diags.error("service effect has free recursion variables");
    return std::nullopt;
  }
  if (!checkWellFormed(Ctx.hist(), R->Effect, Diags))
    return std::nullopt;
  return R->Effect;
}
