//===- lambda/LambdaContext.h - Term/type factory ----------------*- C++ -*-===//
///
/// \file
/// Owns λ terms and (hash-consed) types. Shares the StringInterner of the
/// associated hist::HistContext so channel and event names agree between
/// the calculus and its extracted effects.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_LAMBDA_LAMBDACONTEXT_H
#define SUS_LAMBDA_LAMBDACONTEXT_H

#include "hist/HistContext.h"
#include "lambda/Term.h"
#include "lambda/Type.h"

#include <map>
#include <string_view>
#include <vector>

namespace sus {
namespace lambda {

/// Factory/owner of λ terms and types for one verification session.
class LambdaContext {
public:
  explicit LambdaContext(hist::HistContext &Hist) : Hist(Hist) {}
  LambdaContext(const LambdaContext &) = delete;
  LambdaContext &operator=(const LambdaContext &) = delete;

  hist::HistContext &hist() { return Hist; }
  StringInterner &interner() { return Hist.interner(); }
  Symbol symbol(std::string_view Name) { return Hist.symbol(Name); }

  // Types (hash-consed).
  const Type *unitType();
  const Type *boolType();
  const Type *arrow(const Type *Param, const Type *Result,
                    const hist::Expr *Latent);

  // Terms.
  const Term *unit();
  const Term *boolLit(bool V);
  const Term *var(std::string_view Name);
  const Term *lambda(std::string_view Param, const Type *ParamType,
                     const Term *Body);
  const Term *app(const Term *Fn, const Term *Arg);
  const Term *seq(const Term *A, const Term *B);
  const Term *ifTerm(const Term *C, const Term *Then, const Term *Else);
  const Term *event(hist::Event Ev);
  const Term *event(std::string_view Name);
  const Term *event(std::string_view Name, int64_t Arg);
  const Term *event(std::string_view Name, std::string_view Arg);
  const Term *send(std::string_view Channel);
  const Term *recv(std::string_view Channel);
  const Term *select(std::vector<CommArm> Arms);
  const Term *branch(std::vector<CommArm> Arms);
  const Term *request(hist::RequestId Request, hist::PolicyRef Policy,
                      const Term *Body);
  const Term *framing(hist::PolicyRef Policy, const Term *Body);
  const Term *rec(std::string_view Var, const Term *Body);
  const Term *jump(std::string_view Var);

  /// Convenience: a select/branch arm.
  CommArm arm(std::string_view Channel, const Term *Body) {
    return CommArm{symbol(Channel), Body};
  }

private:
  hist::HistContext &Hist;
  Arena Nodes;

  const Type *UnitTy = nullptr;
  const Type *BoolTy = nullptr;
  std::map<std::tuple<const Type *, const Type *, const hist::Expr *>,
           const Type *>
      Arrows;
};

} // namespace lambda
} // namespace sus

#endif // SUS_LAMBDA_LAMBDACONTEXT_H
