//===- lambda/Type.h - Types with latent effects ----------------*- C++ -*-===//
///
/// \file
/// The simple types of the service calculus. Function types carry a
/// *latent effect*: the history expression released when the function is
/// applied (τ --H--> τ′ in [Bartoletti–Degano–Ferrari]). Types are
/// hash-consed by LambdaContext, so type equality is pointer equality —
/// and latent-effect equality is hash-consed expression equality.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_LAMBDA_TYPE_H
#define SUS_LAMBDA_TYPE_H

#include "hist/Expr.h"

#include <cstdint>

namespace sus {
namespace lambda {

class LambdaContext;

/// Kind discriminator for types.
enum class TypeKind : uint8_t {
  Unit,
  Bool,
  Arrow, ///< τ --H--> τ′ with latent effect H.
};

/// A hash-consed simple type.
class Type {
public:
  Type(const Type &) = delete;
  Type &operator=(const Type &) = delete;

  TypeKind kind() const { return Kind; }
  bool isUnit() const { return Kind == TypeKind::Unit; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isArrow() const { return Kind == TypeKind::Arrow; }

  /// Arrow accessors (assert on other kinds).
  const Type *param() const;
  const Type *result() const;
  const hist::Expr *latentEffect() const;

private:
  friend class LambdaContext;
  friend class sus::Arena;
  Type(TypeKind K, const Type *Param, const Type *Result,
       const hist::Expr *Latent)
      : Kind(K), Param(Param), Result(Result), Latent(Latent) {}

  TypeKind Kind;
  const Type *Param;
  const Type *Result;
  const hist::Expr *Latent;
};

} // namespace lambda
} // namespace sus

#endif // SUS_LAMBDA_TYPE_H
