//===- lambda/Eval.h - Executing service programs ---------------*- C++ -*-===//
///
/// \file
/// A definitional evaluator for the λ service calculus. Execution emits
/// the labels the program performs — events, communications, session
/// open/close, framings — against an *oracle* that resolves the choices
/// the environment makes (which message arrives at a branch, which branch
/// a select commits to).
///
/// The point is the [Bartoletti–Degano–Ferrari] effect-soundness theorem
/// the paper's §3 relies on: every trace a well-typed program emits is a
/// trace of its extracted history expression. The test suite checks this
/// property over random programs and oracles (see canPerform() in
/// hist/TraceEquiv.h for the trace-membership side).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_LAMBDA_EVAL_H
#define SUS_LAMBDA_EVAL_H

#include "hist/Action.h"
#include "lambda/LambdaContext.h"

#include <functional>
#include <memory>
#include <vector>

namespace sus {
namespace lambda {

/// Resolves environment-driven choices during evaluation.
class EvalOracle {
public:
  virtual ~EvalOracle() = default;

  /// The arm a `select` commits to (the program's own choice, but left to
  /// the oracle so tests can explore schedules).
  virtual size_t chooseSelect(const std::vector<Symbol> &Channels) = 0;

  /// The arm of a `branch` the environment's message selects.
  virtual size_t chooseBranch(const std::vector<Symbol> &Channels) = 0;
};

/// An oracle driven by a callback (handy for tests and tools).
class CallbackOracle : public EvalOracle {
public:
  using Chooser = std::function<size_t(const std::vector<Symbol> &)>;
  CallbackOracle(Chooser Select, Chooser Branch)
      : Select(std::move(Select)), Branch(std::move(Branch)) {}

  size_t chooseSelect(const std::vector<Symbol> &Channels) override {
    return Select(Channels);
  }
  size_t chooseBranch(const std::vector<Symbol> &Channels) override {
    return Branch(Channels);
  }

private:
  Chooser Select;
  Chooser Branch;
};

/// Why an evaluation stopped.
enum class EvalStatus {
  Completed,  ///< Reduced to a value.
  OutOfFuel,  ///< Step budget exhausted (e.g. a productive infinite loop).
  Error,      ///< Dynamic type error (impossible for well-typed programs).
};

/// The observable outcome of a run.
struct EvalOutcome {
  EvalStatus Status = EvalStatus::Error;
  /// The emitted labels, in order (a history-expression trace).
  std::vector<hist::Label> Trace;
};

/// Evaluates the closed term \p T, consulting \p Oracle, emitting at most
/// \p Fuel labels.
EvalOutcome evaluate(LambdaContext &Ctx, const Term *T, EvalOracle &Oracle,
                     size_t Fuel = 4096);

} // namespace lambda
} // namespace sus

#endif // SUS_LAMBDA_EVAL_H
