//===- lambda/Eval.cpp - Executing service programs ------------------------===//

#include "lambda/Eval.h"

#include "support/Casting.h"

#include <map>

using namespace sus;
using namespace sus::hist;
using namespace sus::lambda;

namespace {

struct Closure;

/// Run-time values: unit, booleans and closures.
struct RtValue {
  enum class Kind { Unit, Bool, Closure } K = Kind::Unit;
  bool B = false;
  std::shared_ptr<Closure> C;
};

/// An environment frame (persistent, shared between closures).
struct EnvNode {
  Symbol Name;
  RtValue V;
  std::shared_ptr<EnvNode> Next;
};
using Env = std::shared_ptr<EnvNode>;

struct Closure {
  Symbol Param;
  const Term *Body;
  Env Captured;
};

const RtValue *lookup(const Env &E, Symbol Name) {
  for (const EnvNode *N = E.get(); N; N = N->Next.get())
    if (N->Name == Name)
      return &N->V;
  return nullptr;
}

Env bind(Env E, Symbol Name, RtValue V) {
  return std::make_shared<EnvNode>(EnvNode{Name, std::move(V), std::move(E)});
}

/// Evaluation result: a value, a pending jump, or failure.
struct StepResult {
  enum class Kind { Value, Jump, Error, OutOfFuel } K = Kind::Error;
  RtValue V;
  Symbol JumpTarget;

  static StepResult value(RtValue V) {
    StepResult R;
    R.K = Kind::Value;
    R.V = std::move(V);
    return R;
  }
  static StepResult jump(Symbol Target) {
    StepResult R;
    R.K = Kind::Jump;
    R.JumpTarget = Target;
    return R;
  }
  static StepResult error() { return StepResult(); }
  static StepResult outOfFuel() {
    StepResult R;
    R.K = Kind::OutOfFuel;
    return R;
  }
};

class Evaluator {
public:
  Evaluator(EvalOracle &Oracle, std::vector<Label> &Trace, size_t Fuel)
      : Oracle(Oracle), Trace(Trace), Fuel(Fuel) {}

  StepResult eval(const Term *T, Env E) {
    switch (T->kind()) {
    case TermKind::Unit:
      return StepResult::value(RtValue{});

    case TermKind::BoolLit: {
      RtValue V;
      V.K = RtValue::Kind::Bool;
      V.B = cast<BoolLitTerm>(T)->value();
      return StepResult::value(std::move(V));
    }

    case TermKind::Var: {
      const RtValue *V = lookup(E, cast<VarTerm>(T)->name());
      if (!V)
        return StepResult::error();
      return StepResult::value(*V);
    }

    case TermKind::Lambda: {
      const auto *L = cast<LambdaTerm>(T);
      RtValue V;
      V.K = RtValue::Kind::Closure;
      V.C = std::make_shared<Closure>(Closure{L->param(), L->body(), E});
      return StepResult::value(std::move(V));
    }

    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      StepResult Fn = eval(A->fn(), E);
      if (Fn.K != StepResult::Kind::Value)
        return Fn;
      StepResult Arg = eval(A->arg(), E);
      if (Arg.K != StepResult::Kind::Value)
        return Arg;
      if (Fn.V.K != RtValue::Kind::Closure)
        return StepResult::error();
      Env Inner = bind(Fn.V.C->Captured, Fn.V.C->Param, std::move(Arg.V));
      return eval(Fn.V.C->Body, Inner);
    }

    case TermKind::Seq: {
      const auto *S = cast<SeqTerm>(T);
      StepResult A = eval(S->first(), E);
      if (A.K != StepResult::Kind::Value)
        return A;
      return eval(S->second(), E);
    }

    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      StepResult C = eval(I->cond(), E);
      if (C.K != StepResult::Kind::Value)
        return C;
      if (C.V.K != RtValue::Kind::Bool)
        return StepResult::error();
      return eval(C.V.B ? I->thenBranch() : I->elseBranch(), E);
    }

    case TermKind::Event: {
      if (!emit(Label::event(cast<EventTerm>(T)->event())))
        return StepResult::outOfFuel();
      return StepResult::value(RtValue{});
    }

    case TermKind::Send:
    case TermKind::Recv: {
      const auto *Cm = cast<CommTerm>(T);
      CommAction Act = Cm->isSend() ? CommAction::output(Cm->channel())
                                    : CommAction::input(Cm->channel());
      if (!emit(Label::comm(Act)))
        return StepResult::outOfFuel();
      return StepResult::value(RtValue{});
    }

    case TermKind::Select:
    case TermKind::Branch: {
      const auto *Ch = cast<ChoiceTerm>(T);
      std::vector<Symbol> Channels;
      Channels.reserve(Ch->arms().size());
      for (const CommArm &Arm : Ch->arms())
        Channels.push_back(Arm.Channel);
      size_t Pick = Ch->isSelect() ? Oracle.chooseSelect(Channels)
                                   : Oracle.chooseBranch(Channels);
      if (Pick >= Channels.size())
        return StepResult::error();
      CommAction Act = Ch->isSelect()
                           ? CommAction::output(Channels[Pick])
                           : CommAction::input(Channels[Pick]);
      if (!emit(Label::comm(Act)))
        return StepResult::outOfFuel();
      return eval(Ch->arms()[Pick].Body, E);
    }

    case TermKind::Request: {
      const auto *R = cast<RequestTerm>(T);
      if (!emit(Label::open(R->request(), R->policy())))
        return StepResult::outOfFuel();
      StepResult Body = eval(R->body(), E);
      if (Body.K != StepResult::Kind::Value)
        return Body;
      if (!emit(Label::close(R->request(), R->policy())))
        return StepResult::outOfFuel();
      return StepResult::value(RtValue{});
    }

    case TermKind::Framing: {
      const auto *F = cast<FramingTerm>(T);
      if (!emit(Label::frameOpen(F->policy())))
        return StepResult::outOfFuel();
      StepResult Body = eval(F->body(), E);
      if (Body.K != StepResult::Kind::Value)
        return Body;
      if (!emit(Label::frameClose(F->policy())))
        return StepResult::outOfFuel();
      return Body;
    }

    case TermKind::Rec: {
      const auto *R = cast<RecTerm>(T);
      while (true) {
        StepResult Body = eval(R->body(), E);
        if (Body.K == StepResult::Kind::Jump &&
            Body.JumpTarget == R->var())
          continue; // Loop.
        return Body; // Value, error, fuel, or an outer jump.
      }
    }

    case TermKind::Jump:
      return StepResult::jump(cast<JumpTerm>(T)->var());
    }
    return StepResult::error();
  }

private:
  /// Appends a label; false when the fuel budget is exhausted.
  bool emit(Label L) {
    if (Trace.size() >= Fuel)
      return false;
    Trace.push_back(std::move(L));
    return true;
  }

  EvalOracle &Oracle;
  std::vector<Label> &Trace;
  size_t Fuel;
};

} // namespace

EvalOutcome sus::lambda::evaluate(LambdaContext &Ctx, const Term *T,
                                  EvalOracle &Oracle, size_t Fuel) {
  (void)Ctx;
  EvalOutcome Outcome;
  Evaluator Ev(Oracle, Outcome.Trace, Fuel);
  StepResult R = Ev.eval(T, nullptr);
  switch (R.K) {
  case StepResult::Kind::Value:
    Outcome.Status = EvalStatus::Completed;
    break;
  case StepResult::Kind::OutOfFuel:
    Outcome.Status = EvalStatus::OutOfFuel;
    break;
  case StepResult::Kind::Jump:
  case StepResult::Kind::Error:
    Outcome.Status = EvalStatus::Error;
    break;
  }
  return Outcome;
}
