//===- lambda/Term.h - The service calculus ---------------------*- C++ -*-===//
///
/// \file
/// The λ-calculus service language of [Bartoletti–Degano–Ferrari], which
/// the paper's §3 builds on ("services are represented by λ-expressions,
/// and a type and effect system extracts their abstract behaviour, in the
/// form of history expressions"). The calculus offers access events,
/// security framings, service requests, message passing with select/branch
/// (mapping exactly onto ⊕/Σ) and explicit tail recursion:
///
///   t ::= unit | true | false | x | λx:τ. t | t t | t ; t
///       | if t then t else t | event[α(v)] | send[ch] | recv[ch]
///       | select { chᵢ! → tᵢ } | branch { chᵢ? → tᵢ }
///       | req[r,ϕ]{ t } | frame[ϕ]{ t } | rec h { t } | jump h
///
//===----------------------------------------------------------------------===//

#ifndef SUS_LAMBDA_TERM_H
#define SUS_LAMBDA_TERM_H

#include "hist/Action.h"
#include "support/Arena.h"
#include "support/Casting.h"

#include <string>
#include <vector>

namespace sus {
namespace lambda {

class LambdaContext;
class Type;

/// Kind discriminator for terms.
enum class TermKind : uint8_t {
  Unit,
  BoolLit,
  Var,
  Lambda,
  App,
  Seq,
  If,
  Event,
  Send,
  Recv,
  Select,
  Branch,
  Request,
  Framing,
  Rec,
  Jump,
};

/// Base class of all λ terms. Terms are immutable and arena-allocated by
/// LambdaContext (no hash-consing: identity does not matter here).
class Term {
public:
  Term(const Term &) = delete;
  Term &operator=(const Term &) = delete;

  TermKind kind() const { return Kind; }

protected:
  explicit Term(TermKind K) : Kind(K) {}
  ~Term() = default;

private:
  TermKind Kind;
};

/// unit.
class UnitTerm : public Term {
public:
  static bool classof(const Term *T) { return T->kind() == TermKind::Unit; }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  UnitTerm() : Term(TermKind::Unit) {}
};

/// true / false.
class BoolLitTerm : public Term {
public:
  bool value() const { return V; }
  static bool classof(const Term *T) {
    return T->kind() == TermKind::BoolLit;
  }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  explicit BoolLitTerm(bool V) : Term(TermKind::BoolLit), V(V) {}
  bool V;
};

/// x.
class VarTerm : public Term {
public:
  Symbol name() const { return Name; }
  static bool classof(const Term *T) { return T->kind() == TermKind::Var; }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  explicit VarTerm(Symbol Name) : Term(TermKind::Var), Name(Name) {}
  Symbol Name;
};

/// λx:τ. body.
class LambdaTerm : public Term {
public:
  Symbol param() const { return Param; }
  const Type *paramType() const { return ParamType; }
  const Term *body() const { return Body; }
  static bool classof(const Term *T) {
    return T->kind() == TermKind::Lambda;
  }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  LambdaTerm(Symbol Param, const Type *ParamType, const Term *Body)
      : Term(TermKind::Lambda), Param(Param), ParamType(ParamType),
        Body(Body) {}
  Symbol Param;
  const Type *ParamType;
  const Term *Body;
};

/// f a.
class AppTerm : public Term {
public:
  const Term *fn() const { return Fn; }
  const Term *arg() const { return Arg; }
  static bool classof(const Term *T) { return T->kind() == TermKind::App; }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  AppTerm(const Term *Fn, const Term *Arg)
      : Term(TermKind::App), Fn(Fn), Arg(Arg) {}
  const Term *Fn;
  const Term *Arg;
};

/// a ; b.
class SeqTerm : public Term {
public:
  const Term *first() const { return A; }
  const Term *second() const { return B; }
  static bool classof(const Term *T) { return T->kind() == TermKind::Seq; }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  SeqTerm(const Term *A, const Term *B) : Term(TermKind::Seq), A(A), B(B) {}
  const Term *A;
  const Term *B;
};

/// if c then t else e.
class IfTerm : public Term {
public:
  const Term *cond() const { return C; }
  const Term *thenBranch() const { return T_; }
  const Term *elseBranch() const { return E; }
  static bool classof(const Term *T) { return T->kind() == TermKind::If; }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  IfTerm(const Term *C, const Term *T, const Term *E)
      : Term(TermKind::If), C(C), T_(T), E(E) {}
  const Term *C;
  const Term *T_;
  const Term *E;
};

/// event[α(v)].
class EventTerm : public Term {
public:
  const hist::Event &event() const { return Ev; }
  static bool classof(const Term *T) {
    return T->kind() == TermKind::Event;
  }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  explicit EventTerm(hist::Event Ev) : Term(TermKind::Event), Ev(Ev) {}
  hist::Event Ev;
};

/// send[ch] / recv[ch] — one message, unit payload.
class CommTerm : public Term {
public:
  Symbol channel() const { return Channel; }
  bool isSend() const { return kind() == TermKind::Send; }
  static bool classof(const Term *T) {
    return T->kind() == TermKind::Send || T->kind() == TermKind::Recv;
  }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  CommTerm(TermKind K, Symbol Channel) : Term(K), Channel(Channel) {}
  Symbol Channel;
};

/// One arm of a select/branch.
struct CommArm {
  Symbol Channel;
  const Term *Body;
};

/// select { chᵢ! → tᵢ } / branch { chᵢ? → tᵢ }.
class ChoiceTerm : public Term {
public:
  const std::vector<CommArm> &arms() const { return Arms; }
  bool isSelect() const { return kind() == TermKind::Select; }
  static bool classof(const Term *T) {
    return T->kind() == TermKind::Select || T->kind() == TermKind::Branch;
  }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  ChoiceTerm(TermKind K, std::vector<CommArm> Arms)
      : Term(K), Arms(std::move(Arms)) {}
  std::vector<CommArm> Arms;
};

/// req[r,ϕ]{ body }.
class RequestTerm : public Term {
public:
  hist::RequestId request() const { return Request; }
  const hist::PolicyRef &policy() const { return Policy; }
  const Term *body() const { return Body; }
  static bool classof(const Term *T) {
    return T->kind() == TermKind::Request;
  }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  RequestTerm(hist::RequestId Request, hist::PolicyRef Policy,
              const Term *Body)
      : Term(TermKind::Request), Request(Request),
        Policy(std::move(Policy)), Body(Body) {}
  hist::RequestId Request;
  hist::PolicyRef Policy;
  const Term *Body;
};

/// frame[ϕ]{ body }.
class FramingTerm : public Term {
public:
  const hist::PolicyRef &policy() const { return Policy; }
  const Term *body() const { return Body; }
  static bool classof(const Term *T) {
    return T->kind() == TermKind::Framing;
  }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  FramingTerm(hist::PolicyRef Policy, const Term *Body)
      : Term(TermKind::Framing), Policy(std::move(Policy)), Body(Body) {}
  hist::PolicyRef Policy;
  const Term *Body;
};

/// rec h { body } — explicit tail loop.
class RecTerm : public Term {
public:
  Symbol var() const { return Var; }
  const Term *body() const { return Body; }
  static bool classof(const Term *T) { return T->kind() == TermKind::Rec; }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  RecTerm(Symbol Var, const Term *Body)
      : Term(TermKind::Rec), Var(Var), Body(Body) {}
  Symbol Var;
  const Term *Body;
};

/// jump h — continue the enclosing rec h loop.
class JumpTerm : public Term {
public:
  Symbol var() const { return Var; }
  static bool classof(const Term *T) { return T->kind() == TermKind::Jump; }

private:
  friend class LambdaContext;
  friend class sus::Arena;
  explicit JumpTerm(Symbol Var) : Term(TermKind::Jump), Var(Var) {}
  Symbol Var;
};

} // namespace lambda
} // namespace sus

#endif // SUS_LAMBDA_TERM_H
