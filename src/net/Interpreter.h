//===- net/Interpreter.h - Network operational semantics --------*- C++ -*-===//
///
/// \file
/// An executable implementation of the network semantics of §3 (rules
/// Open, Close, Session, Net, Access, Synch). A network is a parallel
/// composition of components, each a session tree with its own execution
/// history η; services are drawn from a repository R and requests are
/// bound through per-component plans π.
///
/// The interpreter implements the paper's *angelic* run-time monitor: when
/// monitoring is enabled, a step whose history extension would break
/// |= η is simply not enabled. With a valid plan the monitor never blocks
/// anything — which is precisely why it can be switched off (§5); the
/// bench bench_network quantifies the saved work.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_NET_INTERPRETER_H
#define SUS_NET_INTERPRETER_H

#include "hist/HistContext.h"
#include "monitor/SessionMonitor.h"
#include "net/Session.h"
#include "plan/Plan.h"
#include "policy/Validity.h"

#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

namespace sus {
namespace net {

/// A top-level network component: a located client plus its plan.
struct NetworkComponent {
  plan::Loc Location;
  const hist::Expr *Client;
  plan::Plan Pi;
};

/// One enabled (or blocked) step of the network.
struct Step {
  enum class Kind {
    Access, ///< Rule Access: fire γ ∈ Ev ∪ Frm at a leaf.
    Open,   ///< Rule Open: open a session with the planned service.
    Synch,  ///< Rule Synch: complementary actions meet (τ).
    Close,  ///< Rule Close: the opener ends the session.
    Commit, ///< CommittedInternalChoice mode: resolve a ⊕ to one branch.
  };

  size_t Component = 0;
  Kind K = Kind::Access;
  /// Path from the component root to the affected node (false = left).
  std::vector<bool> Path;

  // New residuals (computed at enumeration time).
  const hist::Expr *NewBehavior = nullptr;  ///< Access/Open/Close: actor.
  const hist::Expr *PartnerResidual = nullptr; ///< Synch: the receiver.
  plan::Loc ServiceLoc;                     ///< Open: chosen service.
  const hist::Expr *ServiceBehavior = nullptr; ///< Open: its expression.
  bool ActorIsLeft = true; ///< Synch/Close: which side acts.

  /// History labels this step appends to the component history.
  std::vector<hist::Label> HistoryAppend;

  /// Human-readable rendering (Fig. 3-style).
  std::string Desc;

  /// Monitor verdict: the step would make the history invalid. Blocked
  /// steps are reported but cannot be applied while monitoring is on.
  bool Blocked = false;

  /// Open steps that cannot fire because the plan or repository has no
  /// binding; never applicable.
  bool PlanGap = false;

  /// Open steps waiting for a replication slot of a capacity-bounded
  /// service (§5 future work); they become applicable once another
  /// session at that location closes.
  bool CapacityBlocked = false;
};

/// Aggregate outcome of a scheduled run.
struct RunStats {
  size_t StepsTaken = 0;      ///< Successfully applied steps only.
  size_t BlockedAttempts = 0; ///< Steps the monitor refused (angelic).
  size_t CapacityWaits = 0;   ///< Opens deferred by full services.
  size_t Violations = 0;      ///< Invalid histories (monitor off only).
  /// Steps that were enumerated as applicable but failed to apply. Always
  /// 0 unless the step/apply contract is broken; a failed apply stops the
  /// run and leaves the acting component in StuckComponents rather than
  /// silently counting the step as taken.
  size_t FailedApplies = 0;
  bool AllCompleted = false;
  std::vector<size_t> StuckComponents;
};

/// Interpreter configuration.
struct InterpreterOptions {
  bool MonitorEnabled = true;

  /// The paper's semantics is *angelic*: an internal choice only ever
  /// resolves to a branch the partner can receive, so a non-compliant
  /// service never deadlocks operationally. Real senders commit first.
  /// With this flag a multi-branch internal choice must take an explicit
  /// Commit step before synchronizing — the mode under which the Del
  /// message of §2 actually wedges the session.
  bool CommittedInternalChoice = false;

  /// Optional fused-DFA monitor (see monitor/Fused.h): when set and
  /// MonitorEnabled, each component's per-step validity probe becomes one
  /// DFA walk instead of re-running every PolicyMonitor. The interpreter
  /// validates coverage up front — every event any client or published
  /// service can fire must be inside the fused universe, and every policy
  /// they reference must be fused — and silently falls back to the legacy
  /// probe on any gap ("monitor.coverage_fallbacks"), so enabling this can
  /// change performance but never verdicts. The caller keeps the fused
  /// automaton alive for the interpreter's lifetime.
  const monitor::FusedPolicyAutomaton *FusedMonitor = nullptr;
};

/// The executable network.
class Interpreter {
public:
  using Options = InterpreterOptions;

  Interpreter(hist::HistContext &Ctx, const plan::Repository &Repo,
              const policy::PolicyRegistry &Registry,
              std::vector<NetworkComponent> Components,
              Options Opts = Options());

  /// Enumerates every step currently offered by the network, including
  /// blocked ones (marked).
  std::vector<Step> steps();

  /// Applies \p S (must have been produced by the latest steps() call and
  /// be applicable: not PlanGap, and not Blocked while monitoring).
  /// Returns false if the step is not applicable.
  bool apply(const Step &S);

  /// Runs a uniformly random scheduler until quiescence or \p MaxSteps.
  RunStats run(uint64_t Seed = 1, size_t MaxSteps = 1 << 20);

  size_t numComponents() const { return Components.size(); }
  const policy::History &history(size_t I) const { return Histories[I]; }
  const Session &tree(size_t I) const { return *Trees[I]; }
  bool isDone(size_t I) const { return Trees[I]->isTerminated(); }

  /// True if the component history has become invalid (possible only with
  /// the monitor off).
  bool isViolated(size_t I) const { return Violated[I]; }

  /// Renders the full configuration, one component per line, Fig. 3-style:
  /// "eta, [l: H, ...]".
  std::string configStr() const;

  /// The descriptions of every step applied so far, in order.
  const std::vector<std::string> &trace() const { return TraceLog; }

  const Options &options() const { return Opts; }

  /// True when monitor probes run on the fused DFA (Options::FusedMonitor
  /// set, monitoring on, and coverage validation passed).
  bool fusedMonitorActive() const { return UseFused; }

  /// Sessions currently served by the service at ℓ (capacity accounting).
  unsigned sessionsInUse(plan::Loc Location) const {
    auto It = InUse.find(Location);
    return It == InUse.end() ? 0 : It->second;
  }

private:
  Session *resolve(size_t Component, const std::vector<bool> &Path);
  void stepsOf(size_t Component, Session *Node, std::vector<bool> &Path,
               std::vector<Step> &Out);
  void finalizeHistoryLabels(size_t Component, Step &S);

  hist::HistContext &Ctx;
  const plan::Repository &Repo;
  const policy::PolicyRegistry &Registry;
  Options Opts;

  std::vector<NetworkComponent> Components;
  std::vector<std::unique_ptr<Session>> Trees;
  std::vector<policy::History> Histories;
  std::vector<policy::ValidityChecker> Checkers;
  /// One fused cursor per component; populated only when UseFused.
  std::vector<monitor::SessionMonitor> FusedMonitors;
  bool UseFused = false;
  std::vector<bool> Violated;
  std::vector<std::string> TraceLog;
  std::map<plan::Loc, unsigned> InUse;
};

} // namespace net
} // namespace sus

#endif // SUS_NET_INTERPRETER_H
