//===- net/Interpreter.cpp - Network operational semantics ---------------===//

#include "net/Interpreter.h"

#include "hist/Derive.h"
#include "hist/Printer.h"
#include "policy/Compile.h"
#include "support/Casting.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>

using namespace sus;
using namespace sus::hist;
using namespace sus::net;

namespace {

/// Φ(H): pending ⌋ϕ markers along the sequential spine (rule Close).
void pendingFrameCloses(const Expr *E, std::vector<PolicyRef> &Out) {
  if (const auto *S = dyn_cast<SeqExpr>(E)) {
    pendingFrameCloses(S->head(), Out);
    pendingFrameCloses(S->tail(), Out);
    return;
  }
  if (const auto *F = dyn_cast<FrameCloseExpr>(E))
    Out.push_back(F->policy());
}

/// If E ≡ (⊕ᵢ āᵢ.Hᵢ)·K with more than one branch, returns the choice and
/// the continuation K (unfolding a leading µ if needed).
std::optional<std::pair<const IntChoiceExpr *, const Expr *>>
splitMultiOutputHead(HistContext &Ctx, const Expr *E, unsigned Fuel = 8) {
  if (Fuel == 0)
    return std::nullopt;
  if (const auto *C = dyn_cast<IntChoiceExpr>(E))
    return C->numBranches() > 1
               ? std::make_optional(std::make_pair(C, Ctx.empty()))
               : std::nullopt;
  if (const auto *S = dyn_cast<SeqExpr>(E)) {
    auto Head = splitMultiOutputHead(Ctx, S->head(), Fuel - 1);
    if (!Head)
      return std::nullopt;
    return std::make_pair(Head->first, Ctx.seq(Head->second, S->tail()));
  }
  if (const auto *M = dyn_cast<MuExpr>(E)) {
    const Expr *Unfolded = Ctx.unfold(M);
    if (Unfolded == E)
      return std::nullopt;
    return splitMultiOutputHead(Ctx, Unfolded, Fuel - 1);
  }
  return std::nullopt;
}

/// Soundness gate for the fused fast path: the fused universe must contain
/// every event any behaviour in the network can fire (an out-of-universe
/// event could match wildcard/guard edges the DFA never saw), and every
/// referenced policy must be fused or known-uninstantiable. Any gap means
/// the legacy probe must be used — wholesale, so the two paths never mix.
static bool fusedCoversNetwork(const monitor::FusedPolicyAutomaton &F,
                               const plan::Repository &Repo,
                               const std::vector<NetworkComponent> &Comps) {
  std::vector<const Expr *> Behaviors;
  for (const NetworkComponent &C : Comps)
    Behaviors.push_back(C.Client);
  for (plan::Loc L : Repo.locations())
    Behaviors.push_back(Repo.find(L));
  for (const hist::Event &Ev : policy::eventUniverse(Behaviors))
    if (F.eventIndexOf(Ev) == monitor::FusedPolicyAutomaton::NoEvent)
      return false;
  for (const PolicyRef &Ref : monitor::collectPolicyRefs(Behaviors))
    if (!F.covers(Ref))
      return false;
  return true;
}

} // namespace

Interpreter::Interpreter(HistContext &Ctx, const plan::Repository &Repo,
                         const policy::PolicyRegistry &Registry,
                         std::vector<NetworkComponent> Comps, Options Opts)
    : Ctx(Ctx), Repo(Repo), Registry(Registry), Opts(Opts),
      Components(std::move(Comps)) {
  if (this->Opts.FusedMonitor && this->Opts.MonitorEnabled) {
    UseFused =
        fusedCoversNetwork(*this->Opts.FusedMonitor, Repo, Components);
    if (!UseFused && metrics::enabled())
      metrics::counter("monitor.coverage_fallbacks").add();
  }
  for (const NetworkComponent &C : Components) {
    Trees.push_back(Session::leaf(C.Location, C.Client));
    Histories.emplace_back();
    Checkers.emplace_back(Registry, Ctx.interner(), nullptr);
    if (UseFused)
      FusedMonitors.emplace_back(*this->Opts.FusedMonitor);
    Violated.push_back(false);
  }
}

Session *Interpreter::resolve(size_t Component,
                              const std::vector<bool> &Path) {
  Session *Node = Trees[Component].get();
  for (bool Right : Path) {
    Node = Right ? Node->Right.get() : Node->Left.get();
    assert(Node && "stale step path");
  }
  return Node;
}

void Interpreter::stepsOf(size_t Component, Session *Node,
                          std::vector<bool> &Path, std::vector<Step> &Out) {
  const std::string LocPrefix =
      std::string(Ctx.interner().text(Node->IsLeaf
                                          ? Node->Location
                                          : Components[Component].Location));
  if (Node->IsLeaf) {
    // Committed-choice mode: a multi-branch ⊕ must resolve first.
    if (Opts.CommittedInternalChoice) {
      if (auto Split = splitMultiOutputHead(Ctx, Node->Behavior)) {
        for (const ChoiceBranch &B : Split->first->branches()) {
          Step S;
          S.Component = Component;
          S.K = Step::Kind::Commit;
          S.Path = Path;
          S.NewBehavior =
              Ctx.seq(Ctx.prefix(B.Guard, B.Body), Split->second);
          S.Desc = std::string(Ctx.interner().text(Node->Location)) +
                   ": commit " + B.Guard.str(Ctx.interner());
          Out.push_back(std::move(S));
        }
        return; // No other step until the commitment is made.
      }
    }
    for (const Transition &T : derive(Ctx, Node->Behavior)) {
      switch (T.L.kind()) {
      case LabelKind::Event:
      case LabelKind::FrameOpen:
      case LabelKind::FrameClose: {
        Step S;
        S.Component = Component;
        S.K = Step::Kind::Access;
        S.Path = Path;
        S.NewBehavior = T.Target;
        S.HistoryAppend.push_back(T.L);
        S.Desc = LocPrefix + ": " + T.L.str(Ctx.interner());
        Out.push_back(std::move(S));
        break;
      }
      case LabelKind::Open: {
        Step S;
        S.Component = Component;
        S.K = Step::Kind::Open;
        S.Path = Path;
        S.NewBehavior = T.Target;
        S.Desc = LocPrefix + ": " + T.L.str(Ctx.interner());
        std::optional<plan::Loc> L =
            Components[Component].Pi.lookup(T.L.request());
        const Expr *Service = L ? Repo.find(*L) : nullptr;
        if (!L || !Service) {
          S.PlanGap = true;
          Out.push_back(std::move(S));
          break;
        }
        S.ServiceLoc = *L;
        S.ServiceBehavior = Service;
        unsigned Cap = Repo.capacity(*L);
        if (Cap != 0) {
          auto It = InUse.find(*L);
          if (It != InUse.end() && It->second >= Cap)
            S.CapacityBlocked = true;
        }
        if (!T.L.policy().isTrivial())
          S.HistoryAppend.push_back(Label::frameOpen(T.L.policy()));
        Out.push_back(std::move(S));
        break;
      }
      case LabelKind::Close:
        // Handled at the enclosing pair (rule Close discards the partner).
        break;
      case LabelKind::Input:
      case LabelKind::Output:
      case LabelKind::Tau:
        // Communication needs the enclosing pair (rule Synch).
        break;
      }
    }
    return;
  }

  // Rule Session: explore both sides.
  Path.push_back(false);
  stepsOf(Component, Node->Left.get(), Path, Out);
  Path.back() = true;
  stepsOf(Component, Node->Right.get(), Path, Out);
  Path.pop_back();

  // Rules Synch and Close at this pair (both relevant sides leaves).
  auto TryActor = [&](Session *X, Session *Y, bool XIsLeft) {
    if (!X->IsLeaf)
      return;
    // In committed-choice mode an unresolved ⊕ cannot act yet.
    if (Opts.CommittedInternalChoice &&
        splitMultiOutputHead(Ctx, X->Behavior))
      return;
    for (const Transition &TX : derive(Ctx, X->Behavior)) {
      if (TX.L.isClose() && Y->IsLeaf) {
        Step S;
        S.Component = Component;
        S.K = Step::Kind::Close;
        S.Path = Path;
        S.ActorIsLeft = XIsLeft;
        S.NewBehavior = TX.Target;
        std::vector<PolicyRef> Pending;
        pendingFrameCloses(Y->Behavior, Pending);
        for (const PolicyRef &Ref : Pending)
          if (!Ref.isTrivial())
            S.HistoryAppend.push_back(Label::frameClose(Ref));
        if (!TX.L.policy().isTrivial())
          S.HistoryAppend.push_back(Label::frameClose(TX.L.policy()));
        S.Desc = std::string(Ctx.interner().text(X->Location)) + ": " +
                 TX.L.str(Ctx.interner());
        Out.push_back(std::move(S));
        continue;
      }
      if (!TX.L.isComm() || !Y->IsLeaf)
        continue;
      CommAction AX = TX.L.asComm();
      if (!AX.isOutput())
        continue; // Enumerate each synchronization from the sender side.
      for (const Transition &TY : derive(Ctx, Y->Behavior)) {
        if (!TY.L.isComm() || TY.L.asComm() != AX.complement())
          continue;
        Step S;
        S.Component = Component;
        S.K = Step::Kind::Synch;
        S.Path = Path;
        S.ActorIsLeft = XIsLeft;
        S.NewBehavior = TX.Target;
        S.PartnerResidual = TY.Target;
        S.Desc = "tau: " + std::string(Ctx.interner().text(X->Location)) +
                 " " + AX.str(Ctx.interner()) + " -> " +
                 std::string(Ctx.interner().text(Y->Location));
        Out.push_back(std::move(S));
      }
    }
  };
  TryActor(Node->Left.get(), Node->Right.get(), /*XIsLeft=*/true);
  TryActor(Node->Right.get(), Node->Left.get(), /*XIsLeft=*/false);
}

std::vector<Step> Interpreter::steps() {
  std::vector<Step> Out;
  for (size_t C = 0; C < Components.size(); ++C) {
    std::vector<bool> Path;
    stepsOf(C, Trees[C].get(), Path, Out);
  }
  // Monitor verdicts: a step is blocked if its history extension breaks
  // validity (rule Access / Open / Close premises |= η'). This is the
  // work a verified plan saves: with the monitor off (§5), no step is
  // ever probed.
  if (Opts.MonitorEnabled) {
    for (Step &S : Out) {
      if (S.PlanGap || S.HistoryAppend.empty())
        continue;
      // Fused: one DFA walk per label. Legacy: an append/rollback probe
      // against the component's own checker — no O(history) copy.
      S.Blocked =
          UseFused
              ? !FusedMonitors[S.Component].wouldAdmitAll(S.HistoryAppend)
              : !Checkers[S.Component].wouldRemainValidAll(S.HistoryAppend);
    }
  }
  return Out;
}

bool Interpreter::apply(const Step &S) {
  if (S.PlanGap || S.CapacityBlocked)
    return false;
  if (Opts.MonitorEnabled && S.Blocked)
    return false;

  Session *Node = resolve(S.Component, S.Path);
  switch (S.K) {
  case Step::Kind::Access:
  case Step::Kind::Commit:
    assert(Node->IsLeaf && "access/commit step targets a leaf");
    Node->Behavior = S.NewBehavior;
    break;
  case Step::Kind::Open: {
    assert(Node->IsLeaf && "open step targets a leaf");
    auto Opener = Session::leaf(Node->Location, S.NewBehavior);
    auto Server = Session::leaf(S.ServiceLoc, S.ServiceBehavior);
    Node->IsLeaf = false;
    Node->Behavior = nullptr;
    Node->Left = std::move(Opener);
    Node->Right = std::move(Server);
    ++InUse[S.ServiceLoc];
    break;
  }
  case Step::Kind::Synch: {
    assert(!Node->IsLeaf && "synch step targets a pair");
    Session *Actor = S.ActorIsLeft ? Node->Left.get() : Node->Right.get();
    Session *Partner = S.ActorIsLeft ? Node->Right.get() : Node->Left.get();
    Actor->Behavior = S.NewBehavior;
    Partner->Behavior = S.PartnerResidual;
    break;
  }
  case Step::Kind::Close: {
    assert(!Node->IsLeaf && "close step targets a pair");
    Session *Actor = S.ActorIsLeft ? Node->Left.get() : Node->Right.get();
    Session *Partner = S.ActorIsLeft ? Node->Right.get() : Node->Left.get();
    // The discarded partner releases its replication slot.
    auto It = InUse.find(Partner->Location);
    if (It != InUse.end() && It->second > 0)
      --It->second;
    plan::Loc L = Actor->Location;
    Node->IsLeaf = true;
    Node->Location = L;
    Node->Behavior = S.NewBehavior;
    Node->Left.reset();
    Node->Right.reset();
    break;
  }
  }

  for (const Label &L : S.HistoryAppend) {
    Histories[S.Component].append(L);
    bool StillValid = UseFused ? FusedMonitors[S.Component].advance(L)
                               : Checkers[S.Component].append(L);
    if (!StillValid)
      Violated[S.Component] = true;
  }
  TraceLog.push_back(S.Desc);
  return true;
}

RunStats Interpreter::run(uint64_t Seed, size_t MaxSteps) {
  trace::Span RunSpan("net.run", "net");
  RunStats Stats;
  std::mt19937_64 Rng(Seed);
  for (size_t N = 0; N < MaxSteps; ++N) {
    std::vector<Step> All = steps();
    std::vector<const Step *> Applicable;
    for (const Step &S : All) {
      if (S.PlanGap)
        continue;
      if (S.CapacityBlocked) {
        ++Stats.CapacityWaits;
        continue;
      }
      if (Opts.MonitorEnabled && S.Blocked) {
        ++Stats.BlockedAttempts;
        continue;
      }
      Applicable.push_back(&S);
    }
    if (Applicable.empty())
      break;
    size_t Pick = std::uniform_int_distribution<size_t>(
        0, Applicable.size() - 1)(Rng);
    if (!apply(*Applicable[Pick])) {
      // The step was enumerated as applicable yet refused to apply: the
      // step/apply contract is broken. The old assert-only check silently
      // swallowed this in NDEBUG builds *and* counted the phantom step;
      // record the failure, leave the component stuck, and stop instead
      // of spinning on a step that will never fire.
      ++Stats.FailedApplies;
      if (metrics::enabled())
        metrics::counter("net.interpreter.failed_applies").add();
      break;
    }
    ++Stats.StepsTaken;
  }

  Stats.AllCompleted = true;
  for (size_t C = 0; C < Components.size(); ++C) {
    if (Violated[C])
      ++Stats.Violations;
    if (!isDone(C)) {
      Stats.AllCompleted = false;
      Stats.StuckComponents.push_back(C);
    }
  }
  // Bumped once per run, not per step, so the registry lookup is off the
  // hot path (and skipped entirely while metrics are off).
  if (metrics::enabled()) {
    metrics::counter("net.interpreter.steps").add(Stats.StepsTaken);
    metrics::counter("net.interpreter.monitor_blocks")
        .add(Stats.BlockedAttempts);
    metrics::counter("net.interpreter.capacity_waits")
        .add(Stats.CapacityWaits);
  }
  RunSpan.count("steps", static_cast<int64_t>(Stats.StepsTaken));
  RunSpan.tag("outcome", Stats.AllCompleted ? "completed" : "stuck");
  return Stats;
}

std::string Interpreter::configStr() const {
  std::string Out;
  for (size_t C = 0; C < Components.size(); ++C) {
    if (C != 0)
      Out += " || ";
    std::string Eta = Histories[C].str(Ctx.interner());
    Out += Eta.empty() ? "e" : Eta;
    Out += ", ";
    Out += Trees[C]->str(Ctx);
  }
  return Out;
}
