//===- net/Session.h - Run-time session trees -------------------*- C++ -*-===//
///
/// \file
/// The run-time counterpart of Definition 2's sessions: S ::= ℓ:H | [S,S].
/// Unlike the hash-consed trees of the static checker, these are mutable
/// owned trees — the interpreter updates them in place as the network
/// evolves.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_NET_SESSION_H
#define SUS_NET_SESSION_H

#include "hist/Expr.h"
#include "hist/HistContext.h"
#include "plan/Plan.h"

#include <memory>
#include <string>

namespace sus {
namespace net {

/// A node of a session tree.
struct Session {
  bool IsLeaf = true;
  plan::Loc Location;                 ///< Leaf: where the behaviour runs.
  const hist::Expr *Behavior = nullptr; ///< Leaf: the residual expression.
  std::unique_ptr<Session> Left;      ///< Pair: the session opener side.
  std::unique_ptr<Session> Right;     ///< Pair: the serving side.

  static std::unique_ptr<Session> leaf(plan::Loc L, const hist::Expr *H) {
    auto S = std::make_unique<Session>();
    S->IsLeaf = true;
    S->Location = L;
    S->Behavior = H;
    return S;
  }

  static std::unique_ptr<Session> pair(std::unique_ptr<Session> A,
                                       std::unique_ptr<Session> B) {
    auto S = std::make_unique<Session>();
    S->IsLeaf = false;
    S->Left = std::move(A);
    S->Right = std::move(B);
    return S;
  }

  std::unique_ptr<Session> clone() const;

  /// True when the tree is a single leaf whose behaviour is ε.
  bool isTerminated() const {
    return IsLeaf && Behavior && Behavior->isEmpty();
  }

  /// Renders like the paper's configurations: "[l_c1: H, [l_br: H', ...]]".
  std::string str(const hist::HistContext &Ctx) const;
};

} // namespace net
} // namespace sus

#endif // SUS_NET_SESSION_H
