//===- net/Explorer.h - Whole-network state-space exploration ---*- C++ -*-===//
///
/// \file
/// Exhaustive exploration of a network's reachable configurations.
///
/// The paper verifies one client at a time (§5), which is complete
/// because components never interact — *until* the §5 future-work
/// extension of bounded service replication is added: capacity-bounded
/// services couple otherwise-independent components through resource
/// contention, and two individually-valid clients can deadlock each other
/// (the dining-philosophers pattern over service slots). The explorer
/// searches every interleaving, reporting whether all components can
/// complete and whether a deadlock is reachable, with a shortest witness
/// schedule.
///
/// Policies are not tracked here (security is per component — use
/// validity::checkPlanValidity); the explorer covers exactly the
/// progress-with-capacities dimension.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_NET_EXPLORER_H
#define SUS_NET_EXPLORER_H

#include "net/Interpreter.h"

#include <string>
#include <vector>

namespace sus {
namespace net {

/// Outcome of a network exploration.
struct ExplorationResult {
  /// The whole reachable space fit under MaxStates.
  bool Exhaustive = false;

  /// Some schedule completes every component.
  bool CanComplete = false;

  /// Some schedule reaches a configuration with residual work and no
  /// enabled step (missing communication, plan gap, or capacity wait).
  bool DeadlockReachable = false;

  /// A shortest schedule to a deadlock (step descriptions), if any.
  std::vector<std::string> DeadlockTrace;

  size_t States = 0;
};

/// Explorer configuration.
struct ExplorerOptions {
  size_t MaxStates = 1 << 18;
  /// Model committed internal choice (senders pick a branch first), as in
  /// InterpreterOptions::CommittedInternalChoice.
  bool CommittedInternalChoice = false;
};

/// Explores every interleaving of \p Components over \p Repo.
ExplorationResult exploreNetwork(hist::HistContext &Ctx,
                                 const plan::Repository &Repo,
                                 const std::vector<NetworkComponent> &Components,
                                 const ExplorerOptions &Options = {});

} // namespace net
} // namespace sus

#endif // SUS_NET_EXPLORER_H
