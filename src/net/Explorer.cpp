//===- net/Explorer.cpp - Whole-network state-space exploration -----------===//

#include "net/Explorer.h"

#include "hist/Derive.h"
#include "support/Casting.h"
#include "support/HashUtil.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

using namespace sus;
using namespace sus::hist;
using namespace sus::net;

namespace {

//===----------------------------------------------------------------------===//
// Canonical (hash-consed) session trees
//===----------------------------------------------------------------------===//

struct CNode {
  bool IsLeaf;
  plan::Loc Location;
  const Expr *Behavior = nullptr;
  const CNode *Left = nullptr;
  const CNode *Right = nullptr;
};

class CTreeFactory {
public:
  const CNode *leaf(plan::Loc L, const Expr *H) {
    return intern({1, L.id(), reinterpret_cast<uint64_t>(H)},
                  CNode{true, L, H, nullptr, nullptr});
  }
  const CNode *pair(const CNode *A, const CNode *B) {
    return intern({2, reinterpret_cast<uint64_t>(A),
                   reinterpret_cast<uint64_t>(B)},
                  CNode{false, plan::Loc(), nullptr, A, B});
  }

private:
  struct VecHash {
    size_t operator()(const std::vector<uint64_t> &V) const noexcept {
      size_t Seed = V.size();
      for (uint64_t X : V)
        hashCombineValue(Seed, X);
      return Seed;
    }
  };

  const CNode *intern(std::vector<uint64_t> Key, CNode Node) {
    auto It = Unique.find(Key);
    if (It != Unique.end())
      return It->second;
    Storage.push_back(Node);
    const CNode *P = &Storage.back();
    Unique.emplace(std::move(Key), P);
    return P;
  }

  std::deque<CNode> Storage;
  std::unordered_map<std::vector<uint64_t>, const CNode *, VecHash> Unique;
};

/// A network configuration: one tree per component plus the slot usage of
/// every capacity-bounded location.
struct NetState {
  std::vector<const CNode *> Trees;
  std::map<plan::Loc, unsigned> InUse;
};

std::vector<uint64_t> encode(const NetState &S) {
  std::vector<uint64_t> Key;
  Key.reserve(S.Trees.size() + 2 * S.InUse.size() + 1);
  for (const CNode *T : S.Trees)
    Key.push_back(reinterpret_cast<uint64_t>(T));
  Key.push_back(~0ull);
  for (const auto &[L, N] : S.InUse) {
    Key.push_back(L.id());
    Key.push_back(N);
  }
  return Key;
}

/// One enabled move of one component.
struct CMove {
  const CNode *NewTree = nullptr;
  plan::Loc OpensAt;   ///< Valid when IsOpen.
  plan::Loc ClosesAt;  ///< Valid when IsClose (the discarded partner).
  bool IsOpen = false;
  bool IsClose = false;
  std::string Desc;
};

/// Splits a leading multi-branch ⊕ (as in Interpreter's committed mode).
std::optional<std::pair<const IntChoiceExpr *, const Expr *>>
splitMultiOutputHead(HistContext &Ctx, const Expr *E, unsigned Fuel = 8) {
  if (Fuel == 0)
    return std::nullopt;
  if (const auto *C = dyn_cast<IntChoiceExpr>(E))
    return C->numBranches() > 1
               ? std::make_optional(std::make_pair(C, Ctx.empty()))
               : std::nullopt;
  if (const auto *S = dyn_cast<SeqExpr>(E)) {
    auto Head = splitMultiOutputHead(Ctx, S->head(), Fuel - 1);
    if (!Head)
      return std::nullopt;
    return std::make_pair(Head->first, Ctx.seq(Head->second, S->tail()));
  }
  if (const auto *M = dyn_cast<MuExpr>(E)) {
    const Expr *Unfolded = Ctx.unfold(M);
    if (Unfolded == E)
      return std::nullopt;
    return splitMultiOutputHead(Ctx, Unfolded, Fuel - 1);
  }
  return std::nullopt;
}

class Explorer {
public:
  Explorer(HistContext &Ctx, const plan::Repository &Repo,
           const std::vector<NetworkComponent> &Components,
           const ExplorerOptions &Options)
      : Ctx(Ctx), Repo(Repo), Components(Components), Options(Options) {}

  ExplorationResult run();

private:
  void movesOf(size_t Component, const CNode *Node, const NetState &S,
               std::vector<CMove> &Out);

  HistContext &Ctx;
  const plan::Repository &Repo;
  const std::vector<NetworkComponent> &Components;
  const ExplorerOptions &Options;
  CTreeFactory Trees;
};

void Explorer::movesOf(size_t Component, const CNode *Node,
                       const NetState &S, std::vector<CMove> &Out) {
  const StringInterner &In = Ctx.interner();
  if (Node->IsLeaf) {
    if (Options.CommittedInternalChoice) {
      if (auto Split = splitMultiOutputHead(Ctx, Node->Behavior)) {
        for (const ChoiceBranch &B : Split->first->branches()) {
          CMove M;
          M.NewTree = Trees.leaf(
              Node->Location,
              Ctx.seq(Ctx.prefix(B.Guard, B.Body), Split->second));
          M.Desc = "commit " + B.Guard.str(In);
          Out.push_back(std::move(M));
        }
        return;
      }
    }
    for (const Transition &T : derive(Ctx, Node->Behavior)) {
      switch (T.L.kind()) {
      case LabelKind::Event:
      case LabelKind::FrameOpen:
      case LabelKind::FrameClose: {
        CMove M;
        M.NewTree = Trees.leaf(Node->Location, T.Target);
        M.Desc = T.L.str(In);
        Out.push_back(std::move(M));
        break;
      }
      case LabelKind::Open: {
        std::optional<plan::Loc> L =
            Components[Component].Pi.lookup(T.L.request());
        if (!L)
          break; // Plan gap: the open can never fire.
        const Expr *Service = Repo.find(*L);
        if (!Service)
          break;
        unsigned Cap = Repo.capacity(*L);
        if (Cap != 0) {
          auto It = S.InUse.find(*L);
          if (It != S.InUse.end() && It->second >= Cap)
            break; // Capacity wait: not enabled in this configuration.
        }
        CMove M;
        M.NewTree = Trees.pair(Trees.leaf(Node->Location, T.Target),
                               Trees.leaf(*L, Service));
        M.IsOpen = true;
        M.OpensAt = *L;
        M.Desc = T.L.str(In);
        Out.push_back(std::move(M));
        break;
      }
      default:
        break;
      }
    }
    return;
  }

  // Session rule: lift both sides.
  std::vector<CMove> Left, Right;
  movesOf(Component, Node->Left, S, Left);
  movesOf(Component, Node->Right, S, Right);
  for (CMove &M : Left) {
    M.NewTree = Trees.pair(M.NewTree, Node->Right);
    Out.push_back(std::move(M));
  }
  for (CMove &M : Right) {
    M.NewTree = Trees.pair(Node->Left, M.NewTree);
    Out.push_back(std::move(M));
  }

  auto TryActor = [&](const CNode *X, const CNode *Y, bool XIsLeft) {
    if (!X->IsLeaf)
      return;
    if (Options.CommittedInternalChoice &&
        splitMultiOutputHead(Ctx, X->Behavior))
      return;
    for (const Transition &TX : derive(Ctx, X->Behavior)) {
      if (TX.L.isClose() && Y->IsLeaf) {
        CMove M;
        M.NewTree = Trees.leaf(X->Location, TX.Target);
        M.IsClose = true;
        M.ClosesAt = Y->Location;
        M.Desc = TX.L.str(In);
        Out.push_back(std::move(M));
        continue;
      }
      if (!TX.L.isComm() || !Y->IsLeaf)
        continue;
      CommAction AX = TX.L.asComm();
      if (!AX.isOutput())
        continue;
      for (const Transition &TY : derive(Ctx, Y->Behavior)) {
        if (!TY.L.isComm() || TY.L.asComm() != AX.complement())
          continue;
        CMove M;
        const CNode *NX = Trees.leaf(X->Location, TX.Target);
        const CNode *NY = Trees.leaf(Y->Location, TY.Target);
        M.NewTree = XIsLeft ? Trees.pair(NX, NY) : Trees.pair(NY, NX);
        M.Desc = "tau(" + AX.str(In) + ")";
        Out.push_back(std::move(M));
      }
    }
  };
  TryActor(Node->Left, Node->Right, true);
  TryActor(Node->Right, Node->Left, false);
}

ExplorationResult Explorer::run() {
  trace::Span ExploreSpan("net.explore", "net");
  ExplorationResult Result;
  size_t Expanded = 0, DedupHits = 0, MovesGenerated = 0;

  struct VecHash {
    size_t operator()(const std::vector<uint64_t> &V) const noexcept {
      size_t Seed = V.size();
      for (uint64_t X : V)
        hashCombineValue(Seed, X);
      return Seed;
    }
  };

  std::vector<NetState> States;
  std::vector<std::optional<std::pair<uint32_t, std::string>>> Pred;
  std::unordered_map<std::vector<uint64_t>, uint32_t, VecHash> Index;
  std::deque<uint32_t> Work;
  bool Truncated = false;

  auto Intern = [&](NetState S,
                    std::optional<std::pair<uint32_t, std::string>> From) {
    std::vector<uint64_t> Key = encode(S);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      ++DedupHits;
      return;
    }
    if (States.size() >= Options.MaxStates) {
      Truncated = true;
      return;
    }
    uint32_t I = static_cast<uint32_t>(States.size());
    States.push_back(std::move(S));
    Pred.push_back(std::move(From));
    Index.emplace(std::move(Key), I);
    Work.push_back(I);
  };

  NetState Init;
  for (const NetworkComponent &C : Components)
    Init.Trees.push_back(Trees.leaf(C.Location, C.Client));
  Intern(std::move(Init), std::nullopt);

  auto AllDone = [](const NetState &S) {
    for (const CNode *T : S.Trees)
      if (!(T->IsLeaf && T->Behavior->isEmpty()))
        return false;
    return true;
  };

  while (!Work.empty()) {
    uint32_t I = Work.front();
    Work.pop_front();
    ++Expanded;
    NetState Current = States[I]; // Copy: States may reallocate below.

    if (AllDone(Current)) {
      Result.CanComplete = true;
      continue;
    }

    size_t MovesSeen = 0;
    for (size_t C = 0; C < Current.Trees.size(); ++C) {
      std::vector<CMove> Moves;
      movesOf(C, Current.Trees[C], Current, Moves);
      MovesSeen += Moves.size();
      MovesGenerated += Moves.size();
      for (const CMove &M : Moves) {
        NetState Next = Current;
        Next.Trees[C] = M.NewTree;
        if (M.IsOpen)
          ++Next.InUse[M.OpensAt];
        if (M.IsClose) {
          auto It = Next.InUse.find(M.ClosesAt);
          if (It != Next.InUse.end() && It->second > 0 && --It->second == 0)
            Next.InUse.erase(It);
        }
        Intern(std::move(Next),
               std::make_pair(I, "c" + std::to_string(C) + ": " + M.Desc));
      }
    }

    if (MovesSeen == 0 && !Result.DeadlockReachable) {
      Result.DeadlockReachable = true;
      std::vector<std::string> Trace;
      for (uint32_t S = I; Pred[S]; S = Pred[S]->first)
        Trace.push_back(Pred[S]->second);
      std::reverse(Trace.begin(), Trace.end());
      Result.DeadlockTrace = std::move(Trace);
    }
  }

  Result.States = States.size();
  Result.Exhaustive = !Truncated;
  ExploreSpan.count("states", static_cast<int64_t>(Result.States));
  ExploreSpan.tag("coverage", Truncated ? "truncated" : "exhaustive");
  if (metrics::enabled()) {
    metrics::counter("net.explorer.states_expanded").add(Expanded);
    metrics::counter("net.explorer.dedup_hits").add(DedupHits);
    metrics::counter("net.explorer.moves_generated").add(MovesGenerated);
    metrics::gauge("net.explorer.states_peak")
        .setMax(static_cast<int64_t>(Result.States));
  }
  return Result;
}

} // namespace

ExplorationResult
sus::net::exploreNetwork(HistContext &Ctx, const plan::Repository &Repo,
                         const std::vector<NetworkComponent> &Components,
                         const ExplorerOptions &Options) {
  Explorer E(Ctx, Repo, Components, Options);
  return E.run();
}
