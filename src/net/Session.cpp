//===- net/Session.cpp - Run-time session trees ---------------------------===//

#include "net/Session.h"

#include "hist/Printer.h"

using namespace sus;
using namespace sus::net;

std::unique_ptr<Session> Session::clone() const {
  auto S = std::make_unique<Session>();
  S->IsLeaf = IsLeaf;
  S->Location = Location;
  S->Behavior = Behavior;
  if (Left)
    S->Left = Left->clone();
  if (Right)
    S->Right = Right->clone();
  return S;
}

std::string Session::str(const hist::HistContext &Ctx) const {
  if (IsLeaf) {
    std::string Out(Ctx.interner().text(Location));
    Out += ": ";
    Out += hist::print(Ctx, Behavior);
    return Out;
  }
  return "[" + Left->str(Ctx) + ", " + Right->str(Ctx) + "]";
}
