//===- policy/Compile.cpp - Policies as classical DFAs ---------------------===//

#include "policy/Compile.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include "automata/Ops.h"
#include "support/Casting.h"
#include "support/HashUtil.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

using namespace sus;
using namespace sus::hist;
using namespace sus::policy;

automata::SymbolCode
CompiledPolicy::codeOf(const hist::Event &Ev) const {
  for (size_t I = 0; I < Universe.size(); ++I)
    if (Universe[I] == Ev)
      return static_cast<automata::SymbolCode>(I);
  return ~0u;
}

CompiledPolicy sus::policy::compilePolicy(const PolicyInstance &Instance,
                                          std::vector<hist::Event> Universe) {
  trace::Span Span("policy.compile", "pipeline");
  Span.count("universe", static_cast<int64_t>(Universe.size()));
  static metrics::Counter &Compiles = metrics::counter("policy.compiles");
  Compiles.add();
  // Deduplicate the universe, preserving first occurrence.
  std::vector<hist::Event> Unique;
  for (const hist::Event &Ev : Universe)
    if (std::find(Unique.begin(), Unique.end(), Ev) == Unique.end())
      Unique.push_back(Ev);

  CompiledPolicy Result;
  Result.Universe = std::move(Unique);

  // Hashed interning; state numbering is the BFS discovery order (a
  // property of the Intern call sequence, not of the map's ordering).
  struct SetHash {
    size_t operator()(const std::vector<UStateId> &V) const noexcept {
      size_t Seed = V.size();
      for (UStateId S : V)
        hashCombineValue(Seed, S);
      return Seed;
    }
  };
  std::unordered_map<std::vector<UStateId>, automata::StateId, SetHash> Index;
  std::deque<std::vector<UStateId>> Work;

  auto Offending = [&](const std::vector<UStateId> &Set) {
    for (UStateId S : Set)
      if (Instance.shape().isOffending(S))
        return true;
    return false;
  };

  auto Intern = [&](std::vector<UStateId> Set) -> automata::StateId {
    auto It = Index.find(Set);
    if (It != Index.end())
      return It->second;
    automata::StateId Id = Result.Automaton.addState(Offending(Set));
    Index.emplace(Set, Id);
    Work.push_back(std::move(Set));
    return Id;
  };

  Result.Automaton.setStart(Intern({Instance.shape().start()}));
  while (!Work.empty()) {
    std::vector<UStateId> Set = Work.front();
    Work.pop_front();
    automata::StateId From = Index.at(Set);
    for (size_t Code = 0; Code < Result.Universe.size(); ++Code) {
      std::vector<UStateId> Next;
      for (UStateId S : Set)
        for (UStateId T : Instance.step(S, Result.Universe[Code]))
          Next.push_back(T);
      std::sort(Next.begin(), Next.end());
      Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
      automata::StateId To = Intern(std::move(Next));
      Result.Automaton.setEdge(From,
                               static_cast<automata::SymbolCode>(Code), To);
    }
  }
  return Result;
}

bool sus::policy::equivalentOn(const PolicyInstance &A,
                               const PolicyInstance &B,
                               const std::vector<hist::Event> &Universe) {
  CompiledPolicy CA = compilePolicy(A, Universe);
  CompiledPolicy CB = compilePolicy(B, Universe);
  // Both are compiled over the same (deduplicated) universe in the same
  // order, so symbol codes agree.
  return automata::equivalent(CA.Automaton, CB.Automaton);
}

namespace {

void collectEvents(const Expr *E, std::vector<hist::Event> &Out) {
  switch (E->kind()) {
  case ExprKind::Empty:
  case ExprKind::Var:
  case ExprKind::CloseMark:
  case ExprKind::FrameOpen:
  case ExprKind::FrameClose:
    return;
  case ExprKind::Event: {
    const hist::Event &Ev = cast<EventExpr>(E)->event();
    if (std::find(Out.begin(), Out.end(), Ev) == Out.end())
      Out.push_back(Ev);
    return;
  }
  case ExprKind::Mu:
    collectEvents(cast<MuExpr>(E)->body(), Out);
    return;
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    collectEvents(S->head(), Out);
    collectEvents(S->tail(), Out);
    return;
  }
  case ExprKind::ExtChoice:
  case ExprKind::IntChoice:
    for (const ChoiceBranch &B : cast<ChoiceExpr>(E)->branches())
      collectEvents(B.Body, Out);
    return;
  case ExprKind::Request:
    collectEvents(cast<RequestExpr>(E)->body(), Out);
    return;
  case ExprKind::Framing:
    collectEvents(cast<FramingExpr>(E)->body(), Out);
    return;
  }
}

} // namespace

std::vector<hist::Event> sus::policy::eventUniverse(const Expr *E) {
  std::vector<hist::Event> Out;
  collectEvents(E, Out);
  return Out;
}

std::vector<hist::Event>
sus::policy::eventUniverse(const std::vector<const Expr *> &Exprs) {
  std::vector<hist::Event> Out;
  for (const Expr *E : Exprs)
    collectEvents(E, Out);
  return Out;
}
