//===- policy/UsageAutomaton.cpp - Parametric policy automata ------------===//

#include "policy/UsageAutomaton.h"

#include "support/DotWriter.h"

#include <algorithm>
#include <cassert>

using namespace sus;
using namespace sus::policy;

//===----------------------------------------------------------------------===//
// UsageAutomaton
//===----------------------------------------------------------------------===//

UStateId UsageAutomaton::addState(std::string Label, bool IsOffending) {
  Labels.push_back(std::move(Label));
  Offending.push_back(IsOffending);
  return static_cast<UStateId>(Labels.size() - 1);
}

void UsageAutomaton::setOffending(UStateId S, bool IsOffending) {
  assert(S < Offending.size() && "state out of range");
  Offending[S] = IsOffending;
}

void UsageAutomaton::addEdge(UStateId From, Symbol EventName, Guard G,
                             UStateId To) {
  assert(From < numStates() && To < numStates() && "state out of range");
  UsageEdge E;
  E.From = From;
  E.To = To;
  E.Wildcard = false;
  E.EventName = EventName;
  E.G = std::move(G);
  Edges.push_back(std::move(E));
}

void UsageAutomaton::addWildcardEdge(UStateId From, UStateId To) {
  assert(From < numStates() && To < numStates() && "state out of range");
  UsageEdge E;
  E.From = From;
  E.To = To;
  E.Wildcard = true;
  Edges.push_back(std::move(E));
}

bool UsageAutomaton::verify(const StringInterner &Interner,
                            DiagnosticEngine &Diags) const {
  bool Ok = true;
  std::string PolicyName(Interner.text(Name));
  if (numStates() == 0) {
    Diags.error("policy '" + PolicyName + "' has no states");
    return false;
  }
  for (const UsageEdge &E : Edges) {
    int MaxParam = E.G.maxParamIndex();
    if (MaxParam >= static_cast<int>(Params.size())) {
      Diags.error("policy '" + PolicyName +
                  "': guard references parameter #" +
                  std::to_string(MaxParam) + " but only " +
                  std::to_string(Params.size()) + " are declared");
      Ok = false;
    }
    if (!E.Wildcard && !E.EventName.isValid()) {
      Diags.error("policy '" + PolicyName + "': edge without event name");
      Ok = false;
    }
  }
  return Ok;
}

void UsageAutomaton::printDot(const StringInterner &Interner,
                              std::ostream &OS) const {
  std::vector<Symbol> ParamNames;
  ParamNames.reserve(Params.size());
  for (const PolicyParam &P : Params)
    ParamNames.push_back(P.Name);

  DotWriter W(std::string(Interner.text(Name)));
  for (UStateId S = 0; S < numStates(); ++S)
    W.node("q" + std::to_string(S), Labels[S],
           Offending[S] ? "shape=doublecircle, color=red" : "shape=circle");
  for (const UsageEdge &E : Edges) {
    std::string Label;
    if (E.Wildcard) {
      Label = "*";
    } else {
      Label = std::string(Interner.text(E.EventName));
      if (!E.G.isAlwaysTrue())
        Label += " [" + E.G.str(Interner, ParamNames) + "]";
    }
    W.edge("q" + std::to_string(E.From), "q" + std::to_string(E.To), Label);
  }
  W.print(OS);
}

//===----------------------------------------------------------------------===//
// PolicyInstance / PolicyMonitor
//===----------------------------------------------------------------------===//

std::vector<UStateId> PolicyInstance::step(UStateId S,
                                           const hist::Event &Ev) const {
  // Offending states are absorbing: once a violation, always a violation
  // (safety).
  if (Shape->isOffending(S))
    return {S};

  std::vector<UStateId> Next;
  for (const UsageEdge &E : Shape->edges()) {
    if (E.From != S)
      continue;
    if (!E.Wildcard && E.EventName != Ev.Name)
      continue;
    if (!E.Wildcard && !E.G.eval(Ev.Arg, Args))
      continue;
    Next.push_back(E.To);
  }
  // Implicit self-loop: events the automaton does not mention leave the
  // state unchanged.
  if (Next.empty())
    Next.push_back(S);
  std::sort(Next.begin(), Next.end());
  Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
  return Next;
}

PolicyMonitor::PolicyMonitor(PolicyInstance Inst) : Instance(std::move(Inst)) {
  reset();
}

void PolicyMonitor::reset() {
  Current = {Instance.shape().start()};
  Violated = Instance.shape().isOffending(Instance.shape().start());
}

void PolicyMonitor::step(const hist::Event &Ev) {
  std::vector<UStateId> Next;
  for (UStateId S : Current)
    for (UStateId T : Instance.step(S, Ev))
      Next.push_back(T);
  std::sort(Next.begin(), Next.end());
  Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
  Current = std::move(Next);
  for (UStateId S : Current)
    if (Instance.shape().isOffending(S)) {
      Violated = true;
      break;
    }
}

void PolicyMonitor::run(const std::vector<hist::Event> &Events) {
  for (const hist::Event &Ev : Events)
    step(Ev);
}

bool sus::policy::respects(const std::vector<hist::Event> &Events,
                           const PolicyInstance &Instance) {
  PolicyMonitor M(Instance);
  M.run(Events);
  return !M.isOffending();
}

//===----------------------------------------------------------------------===//
// PolicyRegistry
//===----------------------------------------------------------------------===//

void PolicyRegistry::add(UsageAutomaton Automaton) {
  Symbol Name = Automaton.name();
  Shapes.insert_or_assign(Name, std::move(Automaton));
}

const UsageAutomaton *PolicyRegistry::find(Symbol Name) const {
  auto It = Shapes.find(Name);
  return It == Shapes.end() ? nullptr : &It->second;
}

std::optional<PolicyInstance>
PolicyRegistry::instantiate(const hist::PolicyRef &Ref,
                            const StringInterner &Interner,
                            DiagnosticEngine *Diags) const {
  if (Ref.isTrivial())
    return std::nullopt;
  const UsageAutomaton *Shape = find(Ref.Name);
  if (!Shape) {
    if (Diags)
      Diags->error("unknown policy '" + std::string(Interner.text(Ref.Name)) +
                   "'");
    return std::nullopt;
  }
  if (Ref.Args.size() != Shape->params().size()) {
    if (Diags)
      Diags->error("policy '" + std::string(Interner.text(Ref.Name)) +
                   "' expects " + std::to_string(Shape->params().size()) +
                   " parameter(s) but got " + std::to_string(Ref.Args.size()));
    return std::nullopt;
  }
  return PolicyInstance(Shape, Ref.Args);
}
