//===- policy/Prelude.cpp - Canonical policy shapes -----------------------===//

#include "policy/Prelude.h"

using namespace sus;
using namespace sus::policy;

UsageAutomaton sus::policy::makeHotelPolicy(StringInterner &Interner,
                                            std::string_view Name) {
  std::vector<PolicyParam> Params = {
      {Interner.intern("bl"), /*IsSet=*/true},
      {Interner.intern("p"), /*IsSet=*/false},
      {Interner.intern("t"), /*IsSet=*/false},
  };
  UsageAutomaton A(Interner.intern(Name), std::move(Params));

  // States follow Fig. 1's q1..q6; q6 is the offending sink.
  UStateId Q1 = A.addState("q1");
  UStateId Q2 = A.addState("q2");
  UStateId Q3 = A.addState("q3");
  UStateId Q4 = A.addState("q4");
  UStateId Q5 = A.addState("q5");
  UStateId Q6 = A.addState("q6", /*Offending=*/true);
  A.setStart(Q1);

  Symbol Sgn = Interner.intern("sgn");
  Symbol Price = Interner.intern("p");
  Symbol Rating = Interner.intern("ta");

  // q1 --sgn(x), x∉bl--> q2 ; q1 --sgn(x), x∈bl--> q6.
  A.addEdge(Q1, Sgn, Guard::notInParam(0), Q2);
  A.addEdge(Q1, Sgn, Guard::inParam(0), Q6);
  // q2 --p(y), y≤p--> q3 ; q2 --p(y), y>p--> q4.
  A.addEdge(Q2, Price, Guard::cmpParam(CmpOp::LE, 1), Q3);
  A.addEdge(Q2, Price, Guard::cmpParam(CmpOp::GT, 1), Q4);
  // q3 --*--> q3 (explicit in Fig. 1; also the implicit self-loop).
  A.addWildcardEdge(Q3, Q3);
  // q4 --ta(z), z≥t--> q5 ; q4 --ta(z), z<t--> q6.
  A.addEdge(Q4, Rating, Guard::cmpParam(CmpOp::GE, 2), Q5);
  A.addEdge(Q4, Rating, Guard::cmpParam(CmpOp::LT, 2), Q6);
  // q5 --*--> q5 ; q6 --*--> q6.
  A.addWildcardEdge(Q5, Q5);
  A.addWildcardEdge(Q6, Q6);
  return A;
}

UsageAutomaton sus::policy::makeNeverAfterPolicy(StringInterner &Interner,
                                                 std::string_view Name,
                                                 std::string_view Before,
                                                 std::string_view After) {
  UsageAutomaton A(Interner.intern(Name), {});
  UStateId Q0 = A.addState("idle");
  UStateId Q1 = A.addState("seen");
  UStateId Q2 = A.addState("bad", /*Offending=*/true);
  A.setStart(Q0);
  A.addEdge(Q0, Interner.intern(Before), Guard::always(), Q1);
  A.addEdge(Q1, Interner.intern(After), Guard::always(), Q2);
  A.addWildcardEdge(Q2, Q2);
  return A;
}

UsageAutomaton sus::policy::makeAtMostPolicy(StringInterner &Interner,
                                             std::string_view Name,
                                             std::string_view EventName,
                                             unsigned Limit) {
  UsageAutomaton A(Interner.intern(Name), {});
  Symbol Ev = Interner.intern(EventName);
  // Limit+2 states: counts 0..Limit, then the offending overflow state.
  std::vector<UStateId> Counts;
  for (unsigned I = 0; I <= Limit; ++I)
    Counts.push_back(A.addState("count" + std::to_string(I)));
  UStateId Bad = A.addState("overflow", /*Offending=*/true);
  A.setStart(Counts.front());
  for (unsigned I = 0; I < Limit; ++I)
    A.addEdge(Counts[I], Ev, Guard::always(), Counts[I + 1]);
  A.addEdge(Counts[Limit], Ev, Guard::always(), Bad);
  A.addWildcardEdge(Bad, Bad);
  return A;
}
