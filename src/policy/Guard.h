//===- policy/Guard.h - Usage-automaton edge guards -------------*- C++ -*-===//
///
/// \file
/// Guards on usage-automaton edges (Fig. 1): predicates over the event's
/// parameter, possibly referring to the policy's formal parameters (e.g.
/// `x ∈ bl`, `y ≤ p`, `z < t`). A guard is a conjunction of atoms; it is
/// evaluated against the concrete event argument once the policy is
/// instantiated with actual parameter values.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_POLICY_GUARD_H
#define SUS_POLICY_GUARD_H

#include "support/StringInterner.h"
#include "support/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sus {
namespace policy {

/// Comparison operators usable in guard atoms.
enum class CmpOp : uint8_t { LT, LE, GT, GE, EQ, NE };

/// Evaluates `A Op B` over two integer values.
bool evalCmp(CmpOp Op, int64_t A, int64_t B);

/// Renders an operator ("<", "<=", ...).
const char *cmpOpSpelling(CmpOp Op);

/// The actual arguments of an instantiated policy: one (sorted) value list
/// per formal parameter; scalar parameters are singleton lists.
using PolicyArgs = std::vector<std::vector<Value>>;

/// One atomic predicate over the event argument.
struct GuardAtom {
  enum class Kind : uint8_t {
    True,       ///< Always satisfied.
    InParam,    ///< arg ∈ P_i (set-valued parameter).
    NotInParam, ///< arg ∉ P_i.
    CmpParam,   ///< arg Op P_i (scalar integer parameter).
    CmpConst,   ///< arg Op constant.
    InConst,    ///< arg ∈ {constants}.
    NotInConst, ///< arg ∉ {constants}.
  };

  Kind K = Kind::True;
  unsigned ParamIndex = 0;      ///< For *Param kinds.
  CmpOp Op = CmpOp::EQ;         ///< For Cmp* kinds.
  std::vector<Value> Constants; ///< For *Const kinds.

  /// Evaluates the atom; a type mismatch (e.g. comparing a name with a
  /// number) makes the atom false rather than an error.
  bool eval(const Value &Arg, const PolicyArgs &Args) const;

  std::string str(const StringInterner &Interner,
                  const std::vector<Symbol> &ParamNames) const;
};

/// A conjunction of atoms; the empty conjunction is `true`.
class Guard {
public:
  Guard() = default;

  /// The trivially-true guard.
  static Guard always() { return Guard(); }

  /// arg ∈ parameter \p ParamIndex.
  static Guard inParam(unsigned ParamIndex);
  /// arg ∉ parameter \p ParamIndex.
  static Guard notInParam(unsigned ParamIndex);
  /// arg Op parameter \p ParamIndex.
  static Guard cmpParam(CmpOp Op, unsigned ParamIndex);
  /// arg Op constant.
  static Guard cmpConst(CmpOp Op, Value Constant);
  /// arg ∈ constant set.
  static Guard inConst(std::vector<Value> Constants);
  /// arg ∉ constant set.
  static Guard notInConst(std::vector<Value> Constants);

  /// Conjunction of this guard with \p Other.
  Guard operator&&(const Guard &Other) const;

  bool eval(const Value &Arg, const PolicyArgs &Args) const;

  bool isAlwaysTrue() const { return Atoms.empty(); }
  const std::vector<GuardAtom> &atoms() const { return Atoms; }

  /// Largest parameter index mentioned, or -1 if none.
  int maxParamIndex() const;

  std::string str(const StringInterner &Interner,
                  const std::vector<Symbol> &ParamNames) const;

private:
  std::vector<GuardAtom> Atoms;
};

} // namespace policy
} // namespace sus

#endif // SUS_POLICY_GUARD_H
