//===- policy/FramedAutomaton.cpp - The framed monitors of §3.1 -----------===//

#include "policy/FramedAutomaton.h"

#include "support/HashUtil.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>

using namespace sus;
using namespace sus::hist;
using namespace sus::policy;

bool FramedAutomaton::encode(const History &Eta, const PolicyRef &Phi,
                             std::vector<automata::SymbolCode> &Out) const {
  Out.clear();
  for (const Label &L : Eta.items()) {
    switch (L.kind()) {
    case LabelKind::Event: {
      auto It = std::find(Universe.begin(), Universe.end(), L.asEvent());
      if (It == Universe.end())
        return false;
      Out.push_back(
          static_cast<automata::SymbolCode>(It - Universe.begin()));
      break;
    }
    case LabelKind::FrameOpen:
      if (L.policy() == Phi)
        Out.push_back(openCode());
      break;
    case LabelKind::FrameClose:
      if (L.policy() == Phi)
        Out.push_back(closeCode());
      break;
    default:
      break;
    }
  }
  return true;
}

bool FramedAutomaton::violates(const History &Eta,
                               const PolicyRef &Phi) const {
  std::vector<automata::SymbolCode> Word;
  bool Ok = encode(Eta, Phi, Word);
  assert(Ok && "history mentions events outside the universe");
  (void)Ok;
  // The violation language is prefix-detecting: the violation state is
  // absorbing and accepting, so membership of the whole word suffices.
  return Automaton.accepts(Word);
}

FramedAutomaton
sus::policy::buildFramedAutomaton(const PolicyInstance &Instance,
                                  std::vector<hist::Event> Universe,
                                  unsigned MaxActivation) {
  assert(MaxActivation >= 1 && "need at least one activation level");

  // Reuse the subset compilation for the event part.
  CompiledPolicy Compiled = compilePolicy(Instance, std::move(Universe));

  FramedAutomaton Result;
  Result.Universe = Compiled.Universe;

  const size_t NumEvents = Result.Universe.size();
  const automata::SymbolCode Open = Result.openCode();
  const automata::SymbolCode Close = Result.closeCode();

  // States: (compiled state, activation count 0..MaxActivation) plus an
  // absorbing violation state.
  // Hashed interning; numbering is the BFS discovery order, independent of
  // the map's iteration order.
  struct KeyHash {
    size_t
    operator()(const std::pair<automata::StateId, unsigned> &K) const noexcept {
      return hashAll(K.first, K.second);
    }
  };
  std::unordered_map<std::pair<automata::StateId, unsigned>,
                     automata::StateId, KeyHash>
      Index;
  std::deque<std::pair<automata::StateId, unsigned>> Work;

  automata::StateId Violation = Result.Automaton.addState(true);
  for (size_t C = 0; C <= NumEvents + 1; ++C)
    Result.Automaton.setEdge(Violation, static_cast<automata::SymbolCode>(C),
                             Violation);

  auto Intern = [&](automata::StateId Q, unsigned Act) {
    auto Key = std::make_pair(Q, Act);
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    automata::StateId Id = Result.Automaton.addState(false);
    Index.emplace(Key, Id);
    Work.push_back(Key);
    return Id;
  };

  Result.Automaton.setStart(Intern(Compiled.Automaton.start(), 0));
  while (!Work.empty()) {
    auto [Q, Act] = Work.front();
    Work.pop_front();
    automata::StateId From = Index.at({Q, Act});
    bool Offending = Compiled.Automaton.isAccepting(Q);

    // Events: step the policy automaton; while active, stepping into an
    // offending state is a violation.
    for (size_t C = 0; C < NumEvents; ++C) {
      automata::StateId QNext =
          Compiled.Automaton.step(Q, static_cast<automata::SymbolCode>(C));
      assert(QNext != automata::Dfa::NoState && "compiled DFA is total");
      bool NextOffending = Compiled.Automaton.isAccepting(QNext);
      automata::StateId To = (Act > 0 && NextOffending)
                                 ? Violation
                                 : Intern(QNext, Act);
      Result.Automaton.setEdge(From, static_cast<automata::SymbolCode>(C),
                               To);
    }

    // ⌊ϕ: history dependence — activating over an already-offending past
    // violates immediately.
    unsigned Raised = Act < MaxActivation ? Act + 1 : MaxActivation;
    Result.Automaton.setEdge(From, Open,
                             Offending ? Violation : Intern(Q, Raised));

    // ⌋ϕ.
    unsigned Lowered = Act > 0 ? Act - 1 : 0;
    Result.Automaton.setEdge(From, Close, Intern(Q, Lowered));
  }
  return Result;
}
