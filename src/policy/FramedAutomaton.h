//===- policy/FramedAutomaton.h - The framed monitors of §3.1 ---*- C++ -*-===//
///
/// \file
/// The "specially-tailored finite state automata" of §3.1: for a policy
/// instance ϕ, the framed automaton Aϕ[] reads whole histories — events
/// *and* the framing actions ⌊ϕ/⌋ϕ — and accepts exactly the histories
/// that violate ϕ-validity. Its states pair the (subset-constructed)
/// usage-automaton state with the current activation count of ϕ, plus an
/// absorbing violation state; validity of η is then ordinary automaton
/// language membership:
///
///   |= η   iff   for every mentioned ϕ, η ∉ L(Aϕ[])
///
/// Framing depth is finite after the [4] regularization (0/1 per policy);
/// the construction tracks counts up to a configurable bound to also
/// handle dynamically re-opened frames.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_POLICY_FRAMEDAUTOMATON_H
#define SUS_POLICY_FRAMEDAUTOMATON_H

#include "automata/Nfa.h"
#include "policy/Compile.h"
#include "policy/History.h"

#include <vector>

namespace sus {
namespace policy {

/// A framed monitor Aϕ[] over the alphabet  Universe ∪ {⌊ϕ, ⌋ϕ}.
struct FramedAutomaton {
  automata::Dfa Automaton; ///< Accepting = history violates ϕ-validity.
  std::vector<hist::Event> Universe;

  /// Symbol codes: events are [0, Universe.size()); then ⌊ϕ and ⌋ϕ.
  automata::SymbolCode openCode() const {
    return static_cast<automata::SymbolCode>(Universe.size());
  }
  automata::SymbolCode closeCode() const {
    return static_cast<automata::SymbolCode>(Universe.size() + 1);
  }

  /// Encodes a history for this automaton. Events must come from the
  /// universe; framings of *other* policies are skipped (they do not
  /// affect ϕ-validity). Returns false if an event is outside the
  /// universe.
  bool encode(const History &Eta, const hist::PolicyRef &Phi,
              std::vector<automata::SymbolCode> &Out) const;

  /// True if \p Eta violates ϕ-validity according to the automaton.
  /// Events outside the universe make this fail an assert.
  bool violates(const History &Eta, const hist::PolicyRef &Phi) const;
};

/// Builds Aϕ[] for \p Instance over \p Universe. \p MaxActivation bounds
/// the tracked nesting of ϕ frames (deeper re-openings saturate, which is
/// exact as long as real nesting stays below the bound; regularized
/// expressions need only 1).
FramedAutomaton buildFramedAutomaton(const PolicyInstance &Instance,
                                     std::vector<hist::Event> Universe,
                                     unsigned MaxActivation = 8);

} // namespace policy
} // namespace sus

#endif // SUS_POLICY_FRAMEDAUTOMATON_H
