//===- policy/Validity.cpp - The validity relation |= η -------------------===//

#include "policy/Validity.h"

#include <cassert>

using namespace sus;
using namespace sus::policy;
using hist::Label;
using hist::LabelKind;
using hist::PolicyRef;

ValidityChecker::TrackedPolicy *
ValidityChecker::track(const PolicyRef &Ref) {
  for (TrackedPolicy &T : Tracked)
    if (T.Ref == Ref)
      return &T;
  std::optional<PolicyInstance> Inst =
      Registry.instantiate(Ref, Interner, Diags);
  if (!Inst)
    return nullptr;
  Tracked.push_back({Ref, PolicyMonitor(std::move(*Inst)), 0});
  // History dependence: the new monitor must account for every event that
  // happened before its frame first opened.
  Tracked.back().Monitor.run(EventsSoFar);
  return &Tracked.back();
}

const ValidityChecker::TrackedPolicy *
ValidityChecker::findTracked(const PolicyRef &Ref) const {
  for (const TrackedPolicy &T : Tracked)
    if (T.Ref == Ref)
      return &T;
  return nullptr;
}

bool ValidityChecker::append(const Label &L) {
  assert(L.isHistoryRelevant() && "validity consumes events and framings");
  size_t Index = Position++;
  if (Violation)
    return false;

  switch (L.kind()) {
  case LabelKind::Event: {
    EventsSoFar.push_back(L.asEvent());
    for (TrackedPolicy &T : Tracked) {
      // Every monitor tracks the full history, active or not.
      T.Monitor.step(L.asEvent());
      if (T.ActiveCount > 0 && T.Monitor.isOffending()) {
        Violation = ValidityViolation{Index, T.Ref};
        return false;
      }
    }
    return true;
  }

  case LabelKind::FrameOpen: {
    if (L.policy().isTrivial())
      return true; // The ∅ policy constrains nothing.
    TrackedPolicy *T = track(L.policy());
    if (!T) {
      Violation = ValidityViolation{Index, L.policy()};
      return false;
    }
    ++T->ActiveCount;
    // History dependence: all the actions performed so far must already
    // respect the newly-activated policy.
    if (T->Monitor.isOffending()) {
      Violation = ValidityViolation{Index, T->Ref};
      return false;
    }
    return true;
  }

  case LabelKind::FrameClose: {
    if (L.policy().isTrivial())
      return true;
    for (TrackedPolicy &T : Tracked)
      if (T.Ref == L.policy() && T.ActiveCount > 0) {
        --T.ActiveCount;
        break;
      }
    return true;
  }

  default:
    break;
  }
  return true;
}

bool ValidityChecker::wouldRemainValid(const Label &L) const {
  if (Violation)
    return false;

  switch (L.kind()) {
  case LabelKind::Event: {
    for (const TrackedPolicy &T : Tracked) {
      if (T.ActiveCount == 0)
        continue;
      PolicyMonitor Probe = T.Monitor;
      Probe.step(L.asEvent());
      if (Probe.isOffending())
        return false;
    }
    return true;
  }

  case LabelKind::FrameOpen: {
    if (L.policy().isTrivial())
      return true;
    if (const TrackedPolicy *T = findTracked(L.policy()))
      return !T->Monitor.isOffending();
    std::optional<PolicyInstance> Inst =
        Registry.instantiate(L.policy(), Interner, nullptr);
    if (!Inst)
      return false;
    PolicyMonitor Probe(std::move(*Inst));
    Probe.run(EventsSoFar);
    return !Probe.isOffending();
  }

  case LabelKind::FrameClose:
    return true;

  default:
    assert(L.isHistoryRelevant() && "validity consumes events and framings");
    return true;
  }
}

bool ValidityChecker::wouldRemainValidAll(const std::vector<Label> &Ls) {
  if (Ls.size() == 1)
    return wouldRemainValid(Ls.front());
  if (Violation)
    return false;

  // Snapshot the mutable state, append for real, then roll back. Policies
  // tracked during the probe are simply dropped; pre-existing monitors are
  // restored from their saved state sets.
  struct MonitorSnapshot {
    std::vector<UStateId> States;
    bool Violated;
    unsigned ActiveCount;
  };
  const size_t NumTracked = Tracked.size();
  const size_t NumEvents = EventsSoFar.size();
  const size_t SavedPosition = Position;
  std::vector<MonitorSnapshot> Saved;
  Saved.reserve(NumTracked);
  for (const TrackedPolicy &T : Tracked)
    Saved.push_back({T.Monitor.states(), T.Monitor.isOffending(),
                     T.ActiveCount});

  bool Ok = true;
  for (const Label &L : Ls)
    if (!append(L)) {
      Ok = false;
      break;
    }

  Tracked.erase(Tracked.begin() + NumTracked, Tracked.end());
  EventsSoFar.resize(NumEvents);
  for (size_t I = 0; I != NumTracked; ++I) {
    Tracked[I].Monitor.restore(std::move(Saved[I].States),
                               Saved[I].Violated);
    Tracked[I].ActiveCount = Saved[I].ActiveCount;
  }
  Position = SavedPosition;
  Violation.reset();
  return Ok;
}

ValidityResult sus::policy::checkValidity(const History &Eta,
                                          const PolicyRegistry &Registry,
                                          const StringInterner &Interner,
                                          DiagnosticEngine *Diags) {
  ValidityChecker Checker(Registry, Interner, Diags);
  for (const Label &L : Eta.items())
    Checker.append(L);
  ValidityResult Result;
  Result.Valid = Checker.isValid();
  Result.Violation = Checker.violation();
  return Result;
}
