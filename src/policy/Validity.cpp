//===- policy/Validity.cpp - The validity relation |= η -------------------===//

#include "policy/Validity.h"

#include <cassert>

using namespace sus;
using namespace sus::policy;
using hist::Label;
using hist::LabelKind;
using hist::PolicyRef;

ValidityChecker::TrackedPolicy *
ValidityChecker::track(const PolicyRef &Ref) {
  for (TrackedPolicy &T : Tracked)
    if (T.Ref == Ref)
      return &T;
  std::optional<PolicyInstance> Inst =
      Registry.instantiate(Ref, Interner, Diags);
  if (!Inst)
    return nullptr;
  Tracked.push_back({Ref, PolicyMonitor(std::move(*Inst)), 0});
  // History dependence: the new monitor must account for every event that
  // happened before its frame first opened.
  Tracked.back().Monitor.run(EventsSoFar);
  return &Tracked.back();
}

const ValidityChecker::TrackedPolicy *
ValidityChecker::findTracked(const PolicyRef &Ref) const {
  for (const TrackedPolicy &T : Tracked)
    if (T.Ref == Ref)
      return &T;
  return nullptr;
}

bool ValidityChecker::append(const Label &L) {
  assert(L.isHistoryRelevant() && "validity consumes events and framings");
  size_t Index = Position++;
  if (Violation)
    return false;

  switch (L.kind()) {
  case LabelKind::Event: {
    EventsSoFar.push_back(L.asEvent());
    for (TrackedPolicy &T : Tracked) {
      // Every monitor tracks the full history, active or not.
      T.Monitor.step(L.asEvent());
      if (T.ActiveCount > 0 && T.Monitor.isOffending()) {
        Violation = ValidityViolation{Index, T.Ref};
        return false;
      }
    }
    return true;
  }

  case LabelKind::FrameOpen: {
    if (L.policy().isTrivial())
      return true; // The ∅ policy constrains nothing.
    TrackedPolicy *T = track(L.policy());
    if (!T) {
      Violation = ValidityViolation{Index, L.policy()};
      return false;
    }
    ++T->ActiveCount;
    // History dependence: all the actions performed so far must already
    // respect the newly-activated policy.
    if (T->Monitor.isOffending()) {
      Violation = ValidityViolation{Index, T->Ref};
      return false;
    }
    return true;
  }

  case LabelKind::FrameClose: {
    if (L.policy().isTrivial())
      return true;
    for (TrackedPolicy &T : Tracked)
      if (T.Ref == L.policy() && T.ActiveCount > 0) {
        --T.ActiveCount;
        break;
      }
    return true;
  }

  default:
    break;
  }
  return true;
}

bool ValidityChecker::wouldRemainValid(const Label &L) const {
  if (Violation)
    return false;

  switch (L.kind()) {
  case LabelKind::Event: {
    for (const TrackedPolicy &T : Tracked) {
      if (T.ActiveCount == 0)
        continue;
      PolicyMonitor Probe = T.Monitor;
      Probe.step(L.asEvent());
      if (Probe.isOffending())
        return false;
    }
    return true;
  }

  case LabelKind::FrameOpen: {
    if (L.policy().isTrivial())
      return true;
    if (const TrackedPolicy *T = findTracked(L.policy()))
      return !T->Monitor.isOffending();
    std::optional<PolicyInstance> Inst =
        Registry.instantiate(L.policy(), Interner, nullptr);
    if (!Inst)
      return false;
    PolicyMonitor Probe(std::move(*Inst));
    Probe.run(EventsSoFar);
    return !Probe.isOffending();
  }

  case LabelKind::FrameClose:
    return true;

  default:
    assert(L.isHistoryRelevant() && "validity consumes events and framings");
    return true;
  }
}

ValidityResult sus::policy::checkValidity(const History &Eta,
                                          const PolicyRegistry &Registry,
                                          const StringInterner &Interner,
                                          DiagnosticEngine *Diags) {
  ValidityChecker Checker(Registry, Interner, Diags);
  for (const Label &L : Eta.items())
    Checker.append(L);
  ValidityResult Result;
  Result.Valid = Checker.isValid();
  Result.Violation = Checker.violation();
  return Result;
}
