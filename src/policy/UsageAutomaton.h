//===- policy/UsageAutomaton.h - Parametric policy automata -----*- C++ -*-===//
///
/// \file
/// Usage automata [Bartoletti 2009]: parametric finite-state automata that
/// specify security policies over access events, in the default-accept
/// paradigm — *accepted* (offending) states mark traces that violate the
/// policy. Events that match no outgoing edge leave the state unchanged
/// (the implicit self-loop of usage automata), and offending states are
/// absorbing.
///
/// A UsageAutomaton is the parametric shape (Fig. 1's ϕ(bl,p,t)); a
/// PolicyInstance binds actual parameters; a PolicyMonitor runs an instance
/// over a concrete event stream.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_POLICY_USAGEAUTOMATON_H
#define SUS_POLICY_USAGEAUTOMATON_H

#include "hist/Action.h"
#include "policy/Guard.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace sus {
namespace policy {

/// A state index inside a usage automaton.
using UStateId = uint32_t;

/// One formal parameter of a parametric policy.
struct PolicyParam {
  Symbol Name;
  bool IsSet; ///< Set-valued (black lists) vs scalar (thresholds).
};

/// One edge: matches events named \p EventName whose argument satisfies
/// \p G; a wildcard edge matches any event.
struct UsageEdge {
  UStateId From = 0;
  UStateId To = 0;
  bool Wildcard = false;
  Symbol EventName; ///< Ignored for wildcard edges.
  Guard G;          ///< Evaluated on the event argument.
};

/// The parametric automaton shape.
class UsageAutomaton {
public:
  UsageAutomaton(Symbol Name, std::vector<PolicyParam> Params)
      : Name(Name), Params(std::move(Params)) {}

  Symbol name() const { return Name; }
  const std::vector<PolicyParam> &params() const { return Params; }

  /// Adds a state; the first state added becomes the start state.
  UStateId addState(std::string Label, bool Offending = false);

  /// Marks \p S offending (an accepting state of the violation language).
  void setOffending(UStateId S, bool Offending = true);

  /// Adds an edge matching events named \p EventName under guard \p G.
  void addEdge(UStateId From, Symbol EventName, Guard G, UStateId To);

  /// Adds a wildcard (`*`) edge matching every event.
  void addWildcardEdge(UStateId From, UStateId To);

  UStateId start() const { return Start; }
  void setStart(UStateId S) { Start = S; }
  size_t numStates() const { return Offending.size(); }
  bool isOffending(UStateId S) const { return Offending[S]; }
  const std::string &stateLabel(UStateId S) const { return Labels[S]; }
  const std::vector<UsageEdge> &edges() const { return Edges; }

  /// Structural sanity: guard parameter indices in range, states valid.
  /// Reports problems into \p Diags; returns true when sound.
  bool verify(const StringInterner &Interner,
              DiagnosticEngine &Diags) const;

  /// Emits the automaton as a Graphviz digraph (Fig. 1 rendering).
  void printDot(const StringInterner &Interner, std::ostream &OS) const;

private:
  Symbol Name;
  std::vector<PolicyParam> Params;
  std::vector<std::string> Labels;
  std::vector<bool> Offending;
  std::vector<UsageEdge> Edges;
  UStateId Start = 0;
};

/// A usage automaton with actual parameters bound: the ϕ({s1},45,100) of
/// the paper.
class PolicyInstance {
public:
  PolicyInstance(const UsageAutomaton *Shape, PolicyArgs Args)
      : Shape(Shape), Args(std::move(Args)) {}

  const UsageAutomaton &shape() const { return *Shape; }
  const PolicyArgs &args() const { return Args; }

  /// The successor states of \p S on event \p Ev (nondeterministic step).
  /// When no edge matches, the result is {S} (implicit self-loop); an
  /// offending state is absorbing.
  std::vector<UStateId> step(UStateId S, const hist::Event &Ev) const;

private:
  const UsageAutomaton *Shape;
  PolicyArgs Args;
};

/// Runs a policy instance over a concrete event stream, tracking the set
/// of reachable states (usage automata may be nondeterministic).
class PolicyMonitor {
public:
  explicit PolicyMonitor(PolicyInstance Instance);

  /// Feeds one event.
  void step(const hist::Event &Ev);

  /// Feeds a whole event sequence.
  void run(const std::vector<hist::Event> &Events);

  /// True if some run has reached an offending state: the (flattened)
  /// history consumed so far does NOT respect the policy.
  bool isOffending() const { return Violated; }

  /// The current reachable state set (sorted).
  const std::vector<UStateId> &states() const { return Current; }

  const PolicyInstance &instance() const { return Instance; }

  /// Restores the monitor to the automaton's start state.
  void reset();

  /// Restores a state snapshot taken via states()/isOffending() — the
  /// rollback half of ValidityChecker's append/rollback probe.
  void restore(std::vector<UStateId> States, bool WasViolated) {
    Current = std::move(States);
    Violated = WasViolated;
  }

private:
  PolicyInstance Instance;
  std::vector<UStateId> Current;
  bool Violated = false;
};

/// Checks η♭ |= ϕ: returns true if the event sequence respects the policy
/// instance (never reaches an offending state, at any prefix — offending
/// states are absorbing so checking at the end suffices).
bool respects(const std::vector<hist::Event> &Events,
              const PolicyInstance &Instance);

/// Maps policy names to their parametric shapes and resolves PolicyRefs.
class PolicyRegistry {
public:
  /// Registers a shape under its name; later registrations replace.
  void add(UsageAutomaton Automaton);

  /// Finds a shape by name; null if unknown.
  const UsageAutomaton *find(Symbol Name) const;

  /// Resolves ϕ(v…) to an instance; the trivial policy and unknown or
  /// arity-mismatched references yield std::nullopt (unknown/mismatched
  /// additionally reports into \p Diags when provided).
  std::optional<PolicyInstance>
  instantiate(const hist::PolicyRef &Ref, const StringInterner &Interner,
              DiagnosticEngine *Diags = nullptr) const;

  size_t size() const { return Shapes.size(); }

private:
  std::map<Symbol, UsageAutomaton> Shapes;
};

} // namespace policy
} // namespace sus

#endif // SUS_POLICY_USAGEAUTOMATON_H
