//===- policy/History.h - Execution histories η -----------------*- C++ -*-===//
///
/// \file
/// Execution histories η ∈ (Ev ∪ Frm)∗ (§3.1): the sequence of access
/// events and policy framings logged by a computation. Provides the
/// flattening η♭ (erasing framings), the balance predicates, and the
/// active-policies multiset AP(η).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_POLICY_HISTORY_H
#define SUS_POLICY_HISTORY_H

#include "hist/Action.h"

#include <map>
#include <string>
#include <vector>

namespace sus {
namespace policy {

/// A history: a sequence of labels drawn from Ev ∪ Frm.
class History {
public:
  History() = default;

  /// Appends a label; must be an event or a framing.
  void append(const hist::Label &L);

  void appendEvent(hist::Event Ev) { Items.push_back(hist::Label::event(Ev)); }
  void appendFrameOpen(hist::PolicyRef P) {
    Items.push_back(hist::Label::frameOpen(std::move(P)));
  }
  void appendFrameClose(hist::PolicyRef P) {
    Items.push_back(hist::Label::frameClose(std::move(P)));
  }

  size_t size() const { return Items.size(); }
  bool empty() const { return Items.empty(); }
  const std::vector<hist::Label> &items() const { return Items; }
  const hist::Label &operator[](size_t I) const { return Items[I]; }

  /// η♭ — the history with all framing events erased.
  std::vector<hist::Event> flatten() const;

  /// True if framings nest and match exactly (the paper's balanced
  /// histories).
  bool isBalanced() const;

  /// True if the history is a prefix of some balanced history, i.e. no
  /// ⌋ϕ ever closes a frame that is not open. Run-time histories always
  /// satisfy this.
  bool isBalancedPrefix() const;

  /// AP(η) — the multiset of active (opened, not yet closed) policies.
  std::map<hist::PolicyRef, unsigned> activePolicies() const;

  /// Every distinct policy mentioned by a framing in the history.
  std::vector<hist::PolicyRef> mentionedPolicies() const;

  /// Renders the history, e.g. "[phi alpha_sgn(3) phi]".
  std::string str(const StringInterner &Interner) const;

private:
  std::vector<hist::Label> Items;
};

} // namespace policy
} // namespace sus

#endif // SUS_POLICY_HISTORY_H
