//===- policy/History.cpp - Execution histories η ------------------------===//

#include "policy/History.h"

#include <algorithm>
#include <cassert>

using namespace sus;
using namespace sus::policy;
using hist::Label;
using hist::LabelKind;
using hist::PolicyRef;

void History::append(const Label &L) {
  assert(L.isHistoryRelevant() &&
         "histories only record events and framings");
  Items.push_back(L);
}

std::vector<hist::Event> History::flatten() const {
  std::vector<hist::Event> Events;
  Events.reserve(Items.size());
  for (const Label &L : Items)
    if (L.isEvent())
      Events.push_back(L.asEvent());
  return Events;
}

bool History::isBalanced() const {
  std::vector<const PolicyRef *> Stack;
  for (const Label &L : Items) {
    if (L.kind() == LabelKind::FrameOpen) {
      Stack.push_back(&L.policy());
      continue;
    }
    if (L.kind() == LabelKind::FrameClose) {
      if (Stack.empty() || !(*Stack.back() == L.policy()))
        return false;
      Stack.pop_back();
    }
  }
  return Stack.empty();
}

bool History::isBalancedPrefix() const {
  std::vector<const PolicyRef *> Stack;
  for (const Label &L : Items) {
    if (L.kind() == LabelKind::FrameOpen) {
      Stack.push_back(&L.policy());
      continue;
    }
    if (L.kind() == LabelKind::FrameClose) {
      if (Stack.empty() || !(*Stack.back() == L.policy()))
        return false;
      Stack.pop_back();
    }
  }
  return true;
}

std::map<PolicyRef, unsigned> History::activePolicies() const {
  std::map<PolicyRef, unsigned> Active;
  for (const Label &L : Items) {
    if (L.kind() == LabelKind::FrameOpen)
      ++Active[L.policy()];
    else if (L.kind() == LabelKind::FrameClose) {
      auto It = Active.find(L.policy());
      if (It != Active.end() && It->second > 0 && --It->second == 0)
        Active.erase(It);
    }
  }
  return Active;
}

std::vector<PolicyRef> History::mentionedPolicies() const {
  std::vector<PolicyRef> Result;
  for (const Label &L : Items) {
    if (!L.isFraming())
      continue;
    if (std::find(Result.begin(), Result.end(), L.policy()) == Result.end())
      Result.push_back(L.policy());
  }
  return Result;
}

std::string History::str(const StringInterner &Interner) const {
  std::string Out;
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I != 0)
      Out += " ";
    Out += Items[I].str(Interner);
  }
  return Out;
}
