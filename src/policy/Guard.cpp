//===- policy/Guard.cpp - Usage-automaton edge guards --------------------===//

#include "policy/Guard.h"

#include <algorithm>
#include <cassert>

using namespace sus;
using namespace sus::policy;

bool sus::policy::evalCmp(CmpOp Op, int64_t A, int64_t B) {
  switch (Op) {
  case CmpOp::LT:
    return A < B;
  case CmpOp::LE:
    return A <= B;
  case CmpOp::GT:
    return A > B;
  case CmpOp::GE:
    return A >= B;
  case CmpOp::EQ:
    return A == B;
  case CmpOp::NE:
    return A != B;
  }
  return false;
}

const char *sus::policy::cmpOpSpelling(CmpOp Op) {
  switch (Op) {
  case CmpOp::LT:
    return "<";
  case CmpOp::LE:
    return "<=";
  case CmpOp::GT:
    return ">";
  case CmpOp::GE:
    return ">=";
  case CmpOp::EQ:
    return "==";
  case CmpOp::NE:
    return "!=";
  }
  return "?";
}

namespace {

bool valueInList(const Value &V, const std::vector<Value> &Values) {
  return std::find(Values.begin(), Values.end(), V) != Values.end();
}

} // namespace

bool GuardAtom::eval(const Value &Arg, const PolicyArgs &Args) const {
  switch (K) {
  case Kind::True:
    return true;
  case Kind::InParam:
  case Kind::NotInParam: {
    if (ParamIndex >= Args.size())
      return false;
    bool In = valueInList(Arg, Args[ParamIndex]);
    return K == Kind::InParam ? In : !In;
  }
  case Kind::CmpParam: {
    if (ParamIndex >= Args.size() || Args[ParamIndex].size() != 1)
      return false;
    const Value &Param = Args[ParamIndex].front();
    if (!Arg.isInt() || !Param.isInt())
      return false;
    return evalCmp(Op, Arg.asInt(), Param.asInt());
  }
  case Kind::CmpConst: {
    assert(Constants.size() == 1 && "CmpConst takes one constant");
    if (!Arg.isInt() || !Constants.front().isInt())
      return false;
    return evalCmp(Op, Arg.asInt(), Constants.front().asInt());
  }
  case Kind::InConst:
    return valueInList(Arg, Constants);
  case Kind::NotInConst:
    return !valueInList(Arg, Constants);
  }
  return false;
}

std::string GuardAtom::str(const StringInterner &Interner,
                           const std::vector<Symbol> &ParamNames) const {
  auto ParamName = [&](unsigned I) -> std::string {
    if (I < ParamNames.size())
      return std::string(Interner.text(ParamNames[I]));
    return "$" + std::to_string(I);
  };
  auto ConstList = [&]() {
    std::string Out = "{";
    for (size_t I = 0; I < Constants.size(); ++I) {
      if (I != 0)
        Out += ",";
      Out += Constants[I].str(Interner);
    }
    return Out + "}";
  };

  switch (K) {
  case Kind::True:
    return "true";
  case Kind::InParam:
    return "x in " + ParamName(ParamIndex);
  case Kind::NotInParam:
    return "x not in " + ParamName(ParamIndex);
  case Kind::CmpParam:
    return std::string("x ") + cmpOpSpelling(Op) + " " +
           ParamName(ParamIndex);
  case Kind::CmpConst:
    return std::string("x ") + cmpOpSpelling(Op) + " " +
           Constants.front().str(Interner);
  case Kind::InConst:
    return "x in " + ConstList();
  case Kind::NotInConst:
    return "x not in " + ConstList();
  }
  return "?";
}

Guard Guard::inParam(unsigned ParamIndex) {
  Guard G;
  GuardAtom A;
  A.K = GuardAtom::Kind::InParam;
  A.ParamIndex = ParamIndex;
  G.Atoms.push_back(std::move(A));
  return G;
}

Guard Guard::notInParam(unsigned ParamIndex) {
  Guard G;
  GuardAtom A;
  A.K = GuardAtom::Kind::NotInParam;
  A.ParamIndex = ParamIndex;
  G.Atoms.push_back(std::move(A));
  return G;
}

Guard Guard::cmpParam(CmpOp Op, unsigned ParamIndex) {
  Guard G;
  GuardAtom A;
  A.K = GuardAtom::Kind::CmpParam;
  A.Op = Op;
  A.ParamIndex = ParamIndex;
  G.Atoms.push_back(std::move(A));
  return G;
}

Guard Guard::cmpConst(CmpOp Op, Value Constant) {
  Guard G;
  GuardAtom A;
  A.K = GuardAtom::Kind::CmpConst;
  A.Op = Op;
  A.Constants.push_back(Constant);
  G.Atoms.push_back(std::move(A));
  return G;
}

Guard Guard::inConst(std::vector<Value> Constants) {
  Guard G;
  GuardAtom A;
  A.K = GuardAtom::Kind::InConst;
  A.Constants = std::move(Constants);
  G.Atoms.push_back(std::move(A));
  return G;
}

Guard Guard::notInConst(std::vector<Value> Constants) {
  Guard G;
  GuardAtom A;
  A.K = GuardAtom::Kind::NotInConst;
  A.Constants = std::move(Constants);
  G.Atoms.push_back(std::move(A));
  return G;
}

Guard Guard::operator&&(const Guard &Other) const {
  Guard G = *this;
  G.Atoms.insert(G.Atoms.end(), Other.Atoms.begin(), Other.Atoms.end());
  return G;
}

bool Guard::eval(const Value &Arg, const PolicyArgs &Args) const {
  for (const GuardAtom &A : Atoms)
    if (!A.eval(Arg, Args))
      return false;
  return true;
}

int Guard::maxParamIndex() const {
  int Max = -1;
  for (const GuardAtom &A : Atoms) {
    if (A.K == GuardAtom::Kind::InParam ||
        A.K == GuardAtom::Kind::NotInParam ||
        A.K == GuardAtom::Kind::CmpParam)
      Max = std::max(Max, static_cast<int>(A.ParamIndex));
  }
  return Max;
}

std::string Guard::str(const StringInterner &Interner,
                       const std::vector<Symbol> &ParamNames) const {
  if (Atoms.empty())
    return "true";
  std::string Out;
  for (size_t I = 0; I < Atoms.size(); ++I) {
    if (I != 0)
      Out += " and ";
    Out += Atoms[I].str(Interner, ParamNames);
  }
  return Out;
}
