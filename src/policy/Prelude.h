//===- policy/Prelude.h - Canonical policy shapes ---------------*- C++ -*-===//
///
/// \file
/// Ready-made usage automata used throughout the examples, tests and
/// benchmarks:
///  - the paper's Fig. 1 hotel-booking policy ϕ(bl, p, t);
///  - "never e2 after e1" (the §3 running example);
///  - "at most N occurrences of e".
///
//===----------------------------------------------------------------------===//

#ifndef SUS_POLICY_PRELUDE_H
#define SUS_POLICY_PRELUDE_H

#include "policy/UsageAutomaton.h"
#include "support/StringInterner.h"

namespace sus {
namespace policy {

/// Builds Fig. 1's ϕ(bl, p, t):
///  - signing a black-listed hotel (α_sgn(x), x ∈ bl) violates;
///  - a price above p (α_p(y), y > p) followed by a rating below t
///    (α_ta(z), z < t) violates.
/// Parameters: bl (set), p (scalar), t (scalar).
/// Events: α_sgn, α_p, α_ta (names are interned as "sgn", "p", "ta").
UsageAutomaton makeHotelPolicy(StringInterner &Interner,
                               std::string_view Name = "phi");

/// "Never \p After after \p Before": e.g. never write after read.
/// No parameters.
UsageAutomaton makeNeverAfterPolicy(StringInterner &Interner,
                                    std::string_view Name,
                                    std::string_view Before,
                                    std::string_view After);

/// "At most \p Limit occurrences of event \p EventName". No parameters.
UsageAutomaton makeAtMostPolicy(StringInterner &Interner,
                                std::string_view Name,
                                std::string_view EventName, unsigned Limit);

} // namespace policy
} // namespace sus

#endif // SUS_POLICY_PRELUDE_H
