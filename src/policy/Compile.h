//===- policy/Compile.h - Policies as classical DFAs ------------*- C++ -*-===//
///
/// \file
/// Compiles an *instantiated* usage automaton into a classical DFA over a
/// finite universe of concrete events. This is the bridge to the automata
/// substrate: once compiled, policies can be minimized, complemented and
/// compared for exact language equivalence (e.g. a parsed policy against
/// a programmatically built one).
///
/// Usage automata are nondeterministic and implicitly complete (unmatched
/// events self-loop), so compilation is a subset construction relative to
/// the chosen universe; accepting DFA states are the offending ones.
/// Events outside the universe are not represented — callers must supply
/// every event their system can fire (see eventUniverse()).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_POLICY_COMPILE_H
#define SUS_POLICY_COMPILE_H

#include "automata/Nfa.h"
#include "hist/Expr.h"
#include "policy/UsageAutomaton.h"

#include <vector>

namespace sus {
namespace policy {

/// A policy compiled over a fixed event universe.
struct CompiledPolicy {
  automata::Dfa Automaton;           ///< Accepting states = offending.
  std::vector<hist::Event> Universe; ///< Symbol code -> concrete event.

  /// The symbol code of \p Ev, or automata's max if absent.
  automata::SymbolCode codeOf(const hist::Event &Ev) const;
};

/// Subset-compiles \p Instance over \p Universe (deduplicated, order
/// preserved).
CompiledPolicy compilePolicy(const PolicyInstance &Instance,
                             std::vector<hist::Event> Universe);

/// Exact language equivalence of two instances over a shared universe:
/// they flag exactly the same event sequences as violations.
bool equivalentOn(const PolicyInstance &A, const PolicyInstance &B,
                  const std::vector<hist::Event> &Universe);

/// Collects every concrete event occurring in \p E (deduplicated,
/// left-to-right).
std::vector<hist::Event> eventUniverse(const hist::Expr *E);

/// Collects the events of several expressions at once.
std::vector<hist::Event>
eventUniverse(const std::vector<const hist::Expr *> &Exprs);

} // namespace policy
} // namespace sus

#endif // SUS_POLICY_COMPILE_H
