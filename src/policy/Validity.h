//===- policy/Validity.h - The validity relation |= η -----------*- C++ -*-===//
///
/// \file
/// The history validity relation of §3.1:
///
///   η is valid (|= η) when ∀ η0 η1 with η0η1 = η and ∀ ϕ ∈ AP(η0),
///   η0♭ |= ϕ.
///
/// Security is history-dependent: each policy monitor consumes the whole
/// flattened history from the start, and a violation occurs whenever a
/// monitor is offending while its policy is active — including at the very
/// instant the framing opens (the paper's γ α ⌊ϕ β ⌋ϕ example).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_POLICY_VALIDITY_H
#define SUS_POLICY_VALIDITY_H

#include "policy/History.h"
#include "policy/UsageAutomaton.h"
#include "support/Diagnostics.h"

#include <optional>

namespace sus {
namespace policy {

/// Where and why a history fails validity.
struct ValidityViolation {
  size_t Index;           ///< Position in η of the offending prefix end.
  hist::PolicyRef Policy; ///< The violated active policy.
};

/// Outcome of a validity check.
struct ValidityResult {
  bool Valid = true;
  std::optional<ValidityViolation> Violation;

  explicit operator bool() const { return Valid; }
};

/// Incrementally checks |= η as a history grows. Wraps one monitor per
/// policy instance mentioned so far plus the active-policy multiset; each
/// appended label is processed in O(#policies · |automaton|).
class ValidityChecker {
public:
  ValidityChecker(const PolicyRegistry &Registry,
                  const StringInterner &Interner,
                  DiagnosticEngine *Diags = nullptr)
      : Registry(Registry), Interner(Interner), Diags(Diags) {}

  /// Feeds the next label of η. Returns false if validity is (now)
  /// broken; once broken, stays broken.
  bool append(const hist::Label &L);

  /// True while every prefix seen so far is valid.
  bool isValid() const { return !Violation.has_value(); }

  const std::optional<ValidityViolation> &violation() const {
    return Violation;
  }

  /// Number of labels consumed.
  size_t position() const { return Position; }

  /// Would appending \p L keep the history valid? (No state change.)
  bool wouldRemainValid(const hist::Label &L) const;

  /// Would appending the whole sequence \p Ls, in order, keep the history
  /// valid? Probes by appending against this checker's own state and then
  /// rolling back — O(probe) instead of the O(history) cost of copying
  /// the checker — so the net observable state never changes.
  bool wouldRemainValidAll(const std::vector<hist::Label> &Ls);

private:
  struct TrackedPolicy {
    hist::PolicyRef Ref;
    PolicyMonitor Monitor;
    unsigned ActiveCount = 0;
  };

  TrackedPolicy *track(const hist::PolicyRef &Ref);
  const TrackedPolicy *findTracked(const hist::PolicyRef &Ref) const;

  const PolicyRegistry &Registry;
  const StringInterner &Interner;
  DiagnosticEngine *Diags;
  std::vector<TrackedPolicy> Tracked;
  std::vector<hist::Event> EventsSoFar;
  std::optional<ValidityViolation> Violation;
  size_t Position = 0;
};

/// Checks |= η for a complete history. \p Diags (optional) receives
/// resolution errors for unknown policies; an unresolvable framing makes
/// the history invalid at that index.
ValidityResult checkValidity(const History &Eta,
                             const PolicyRegistry &Registry,
                             const StringInterner &Interner,
                             DiagnosticEngine *Diags = nullptr);

} // namespace policy
} // namespace sus

#endif // SUS_POLICY_VALIDITY_H
