//===- fuzz/Chaos.h - Governor chaos soak -----------------------*- C++ -*-===//
///
/// \file
/// Injects random resource-governor failures — tiny state budgets,
/// already-expired deadlines, and cancellation requests fired from a
/// second thread mid-verification — into repeated verification runs that
/// share a VerifierCache, then checks the two invariants the governor
/// design promises:
///
///   1. Inconclusive-or-correct: a governed verdict is either
///      inconclusive() or identical to the ungoverned verdict for the
///      same plan. A tripped run may know less, never something wrong.
///   2. No cache pollution: after any number of tripped runs, a clean
///      verifier sharing the same cache reproduces the ungoverned report
///      element-wise; and a fusion refused under a tripped governor is
///      never recorded in the FusedCache.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_FUZZ_CHAOS_H
#define SUS_FUZZ_CHAOS_H

#include "fuzz/Differential.h"
#include "syntax/FileParser.h"

#include <cstdint>
#include <vector>

namespace sus {
namespace fuzz {

/// Soaks every client of \p File as described above. \p Seed keys the
/// chaos schedule (which budgets, which deadlines, when to cancel);
/// violations are appended to \p Out as "chaos" divergences.
void chaosSoak(hist::HistContext &Ctx, const syntax::SusFile &File,
               uint64_t Seed, unsigned Rounds, std::vector<Divergence> &Out);

} // namespace fuzz
} // namespace sus

#endif // SUS_FUZZ_CHAOS_H
