//===- fuzz/Chaos.cpp - Governor chaos soak -------------------------------===//

#include "fuzz/Chaos.h"

#include "core/Verifier.h"
#include "core/VerifierCache.h"
#include "monitor/Fused.h"
#include "monitor/SessionMonitor.h"
#include "plan/RequestExtract.h"
#include "policy/Compile.h"
#include "policy/Validity.h"
#include "support/ResourceGovernor.h"

#include <chrono>
#include <memory>
#include <random>
#include <sstream>
#include <thread>

using namespace sus;
using namespace sus::fuzz;

namespace {

/// Keeps plan enumeration identical (and small) across the reference,
/// governed and clean runs, so reports are comparable element-wise.
core::VerifierOptions baseOptions() {
  core::VerifierOptions O;
  O.MaxPlans = 256;
  O.Jobs = 1;
  return O;
}

/// Looks up the reference verdict for plan \p Pi; null when the reference
/// run never enumerated it.
const core::PlanVerdict *findVerdict(const core::VerificationReport &Report,
                                     const plan::Plan &Pi) {
  for (const core::PlanVerdict &V : Report.Verdicts)
    if (V.Pi == Pi)
      return &V;
  return nullptr;
}

void soakClient(hist::HistContext &Ctx, const syntax::SusFile &File,
                Symbol ClientName, const hist::Expr *Client,
                std::mt19937_64 &Rng, unsigned Rounds,
                std::vector<Divergence> &Out) {
  // Very request-heavy clients make the plan space explode; the soak is
  // about governor behavior, not enumeration scale.
  if (plan::extractRequests(Client).size() > 5)
    return;

  std::string Name(Ctx.interner().text(ClientName));

  core::Verifier Reference(Ctx, File.Repo, File.Registry, baseOptions());
  core::VerificationReport Want = Reference.verifyClient(Client, ClientName);
  if (Want.anyInconclusive()) {
    Out.push_back({"chaos", "ungoverned reference run for " + Name +
                                " reported an inconclusive verdict"});
    return;
  }

  auto Shared = std::make_shared<core::VerifierCache>();
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    auto Gov = std::make_shared<ResourceGovernor>();
    std::thread Canceller;
    switch (Rng() % 4) {
    case 0:
      Gov->setLimit(ResourceKind::ProductStates, 1 + Rng() % 8);
      break;
    case 1:
      Gov->setLimit(ResourceKind::SubsetStates, 1 + Rng() % 8);
      Gov->setLimit(ResourceKind::ProductStates, 1 + Rng() % 64);
      break;
    case 2:
      Gov->setDeadlineAfterMillis(0); // Trips the very first poll.
      break;
    default: { // Genuine mid-run cancellation from a second thread.
      unsigned DelayMicros = Rng() % 400;
      Canceller = std::thread([Gov, DelayMicros] {
        std::this_thread::sleep_for(std::chrono::microseconds(DelayMicros));
        Gov->requestCancel();
      });
      break;
    }
    }

    core::VerifierOptions GovernedOptions = baseOptions();
    GovernedOptions.Governor = Gov;
    core::Verifier Governed(Ctx, File.Repo, File.Registry, GovernedOptions,
                            Shared);
    core::VerificationReport Partial =
        Governed.verifyClient(Client, ClientName);
    if (Canceller.joinable())
      Canceller.join();

    // Invariant 1: Inconclusive-or-correct. A tripped run may fail to
    // decide a plan, but a decided verdict must match the reference.
    for (const core::PlanVerdict &V : Partial.Verdicts) {
      if (V.inconclusive())
        continue;
      const core::PlanVerdict *W = findVerdict(Want, V.Pi);
      std::ostringstream OS;
      if (!W) {
        OS << "governed run for " << Name << " decided plan "
           << V.Pi.str(Ctx.interner())
           << " that the reference never enumerated";
        Out.push_back({"chaos", OS.str()});
      } else if (V.isValid() != W->isValid()) {
        OS << "governed run for " << Name << " called plan "
           << V.Pi.str(Ctx.interner()) << " "
           << (V.isValid() ? "valid" : "invalid")
           << " but the ungoverned reference says the opposite";
        Out.push_back({"chaos", OS.str()});
      }
    }
  }

  // Invariant 2: no cache pollution. A clean verifier sharing the cache
  // every tripped run wrote through must reproduce the reference
  // element-wise.
  core::Verifier Clean(Ctx, File.Repo, File.Registry, baseOptions(), Shared);
  core::VerificationReport Got = Clean.verifyClient(Client, ClientName);
  bool Match = Got.Verdicts.size() == Want.Verdicts.size() &&
               !Got.anyInconclusive();
  for (size_t I = 0; Match && I < Got.Verdicts.size(); ++I)
    Match = Got.Verdicts[I].Pi == Want.Verdicts[I].Pi &&
            Got.Verdicts[I].isValid() == Want.Verdicts[I].isValid();
  if (!Match)
    Out.push_back(
        {"chaos", "verdicts for " + Name +
                      " changed after tripped runs shared the cache"});
}

/// A fusion refused under a tripped governor must not be recorded; the
/// next ungoverned fuse through the same cache must compute it fresh and
/// agree with the legacy probe.
void soakFusedCache(hist::HistContext &Ctx, const syntax::SusFile &File,
                    std::mt19937_64 &Rng, std::vector<Divergence> &Out) {
  std::vector<const hist::Expr *> Behaviors;
  for (plan::Loc L : File.Repo.locations())
    Behaviors.push_back(File.Repo.find(L));
  for (const auto &[N, E] : File.Clients)
    Behaviors.push_back(E);
  std::vector<hist::PolicyRef> Refs = monitor::collectPolicyRefs(Behaviors);
  std::vector<hist::Event> Universe = policy::eventUniverse(Behaviors);
  if (Refs.empty() || Universe.empty())
    return;

  monitor::FusedCache Cache;
  ResourceGovernor Tripped;
  Tripped.setDeadlineAfterMillis(0);
  monitor::FuseOptions TrippedOpts;
  TrippedOpts.Gov = &Tripped;
  auto Refused =
      Cache.fuse(File.Registry, Ctx.interner(), Refs, Universe, TrippedOpts);
  if (Refused != nullptr) {
    Out.push_back({"chaos", "fusion succeeded under an already-expired "
                            "deadline governor"});
    return;
  }
  if (Cache.stats().Fusions != 0) {
    Out.push_back({"chaos", "refused fusion was recorded in the FusedCache"});
    return;
  }

  auto Full = Cache.fuse(File.Registry, Ctx.interner(), Refs, Universe);
  if (!Full)
    return; // Ungoverned refusal = genuine capacity limit, not pollution.
  if (Cache.stats().Fusions != 1) {
    Out.push_back(
        {"chaos", "ungoverned fuse after a refusal did not compute fresh"});
    return;
  }

  // The post-refusal fusion must still agree with the legacy probe.
  monitor::SessionMonitor Monitor(*Full);
  policy::ValidityChecker Legacy(File.Registry, Ctx.interner());
  for (unsigned I = 0; I < 16; ++I) {
    hist::Label L =
        hist::Label::event(Universe[Rng() % Universe.size()]);
    Legacy.append(L);
    Monitor.advance(L);
    if (Legacy.isValid() != !Monitor.isViolated()) {
      Out.push_back({"chaos", "post-refusal fused DFA disagrees with the "
                              "legacy probe"});
      return;
    }
  }
}

} // namespace

void sus::fuzz::chaosSoak(hist::HistContext &Ctx, const syntax::SusFile &File,
                          uint64_t Seed, unsigned Rounds,
                          std::vector<Divergence> &Out) {
  std::mt19937_64 Rng(Seed * 0xbf58476d1ce4e5b9ull + 7);
  for (const auto &[Name, Client] : File.Clients)
    soakClient(Ctx, File, Name, Client, Rng, Rounds, Out);
  soakFusedCache(Ctx, File, Rng, Out);
}
