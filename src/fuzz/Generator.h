//===- fuzz/Generator.h - Seeded random .sus program generator --*- C++ -*-===//
///
/// \file
/// Generates random but always-parseable .sus programs: usage policies,
/// services and clients (history expressions that are closed, tail-
/// recursive and comm-guarded by construction), and plan declarations.
/// Knobs control nesting depth, alphabet size and choice width so sweeps
/// can dial difficulty. The same seed always yields the same program.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_FUZZ_GENERATOR_H
#define SUS_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace sus {
namespace fuzz {

/// Difficulty knobs for the program generator. All counts are clamped to
/// sane ranges so a hostile CLI invocation cannot make generation blow up.
struct GeneratorOptions {
  unsigned Depth = 4;        ///< Max behavior nesting depth (1..12).
  unsigned AlphabetSize = 3; ///< Distinct channels and event names (1..16).
  unsigned NumPolicies = 2;  ///< Usage policies to declare (1..8).
  unsigned NumServices = 3;  ///< Service declarations (1..12).
  unsigned NumClients = 2;   ///< Client declarations (1..8).
  unsigned ChoiceWidth = 2;  ///< Max branches per choice (1..4).
  unsigned MaxValue = 3;     ///< Event/policy argument values are 1..MaxValue.
};

/// A generated program, kept as one string per top-level declaration so a
/// failure can be minimized by dropping whole declarations.
struct GeneratedProgram {
  std::vector<std::string> Decls;

  /// The full .sus source (declarations joined by blank lines).
  std::string source() const;
};

/// Joins an arbitrary declaration subset back into a source buffer (the
/// minimizer re-parses candidate subsets through this).
std::string joinDecls(const std::vector<std::string> &Decls);

/// Generates the program for \p Seed. Deterministic: equal seed and
/// options yield byte-identical output. The result always parses with
/// parseSusFile (behaviors are closed and well-formed by construction and
/// the printer round-trips).
GeneratedProgram generateProgram(uint64_t Seed,
                                 const GeneratorOptions &Opts = {});

} // namespace fuzz
} // namespace sus

#endif // SUS_FUZZ_GENERATOR_H
