//===- fuzz/Torture.cpp - Deterministic adversarial parser battery --------===//

#include "fuzz/Differential.h"

#include "hist/HistContext.h"
#include "lambda/LambdaContext.h"
#include "support/Diagnostics.h"
#include "syntax/FileParser.h"
#include "syntax/HistParser.h"
#include "syntax/LambdaParser.h"

#include <random>
#include <string>

using namespace sus;
using namespace sus::fuzz;

namespace {

bool diagsContain(const DiagnosticEngine &Diags, std::string_view Needle) {
  if (Needle.empty())
    return true;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

enum class Via { Hist, Lambda, File };

bool parseVia(Via V, const std::string &Src, DiagnosticEngine &Diags) {
  hist::HistContext Ctx;
  switch (V) {
  case Via::Hist:
    return syntax::parseHistExpr(Ctx, Src, Diags) != nullptr;
  case Via::Lambda: {
    lambda::LambdaContext L(Ctx);
    return syntax::parseLambdaTerm(L, Src, Diags) != nullptr;
  }
  case Via::File:
    return syntax::parseSusFile(Ctx, Src, Diags).has_value();
  }
  return false;
}

const char *viaName(Via V) {
  switch (V) {
  case Via::Hist:
    return "hist parser";
  case Via::Lambda:
    return "lambda parser";
  case Via::File:
    return "file parser";
  }
  return "?";
}

struct Battery {
  std::vector<Divergence> Out;

  void mustParse(Via V, const std::string &Src, const std::string &What) {
    DiagnosticEngine Diags;
    if (!parseVia(V, Src, Diags))
      Out.push_back({"torture", std::string(viaName(V)) + " rejected " +
                                    What});
  }

  void mustFail(Via V, const std::string &Src, std::string_view Needle,
                const std::string &What) {
    DiagnosticEngine Diags;
    if (parseVia(V, Src, Diags)) {
      Out.push_back({"torture", std::string(viaName(V)) + " accepted " +
                                    What});
      return;
    }
    if (!diagsContain(Diags, Needle))
      Out.push_back({"torture",
                     std::string(viaName(V)) + " rejected " + What +
                         " without the expected \"" + std::string(Needle) +
                         "\" diagnostic"});
  }
};

std::string repeat(const std::string &S, unsigned N) {
  std::string Out;
  Out.reserve(S.size() * N);
  for (unsigned I = 0; I < N; ++I)
    Out += S;
  return Out;
}

std::string parens(const std::string &Core, unsigned N) {
  return repeat("(", N) + Core + repeat(")", N);
}

} // namespace

std::vector<Divergence> sus::fuzz::parserTorture() {
  Battery B;

  // --- Number-literal overflow (the Lexer checked-accumulation fix). ---
  B.mustParse(Via::Hist, "%e(9223372036854775807)",
              "an INT64_MAX event argument");
  B.mustParse(Via::Hist, "%e(-9223372036854775807)",
              "a near-INT64_MIN event argument");
  B.mustFail(Via::Hist, "%e(9223372036854775808)",
             "number literal out of range", "an INT64_MAX+1 literal");
  B.mustFail(Via::Hist, "%e(" + repeat("9", 80) + ")",
             "number literal out of range", "an 80-digit literal");
  B.mustFail(Via::File,
             "policy p(t: int) {\n  start q0;\n  q0 -> q0 on e(x) when x <= " +
                 repeat("9", 40) + ";\n}\nservice s { eps }",
             "number literal out of range",
             "a policy with a 40-digit guard constant");

  // --- Nesting ladders (the ParserBase depth-guard fix). Under the limit
  // they must parse; far over it they must fail with a clean diagnostic
  // instead of overflowing the native stack. ---
  B.mustParse(Via::Hist, parens("eps", 100), "a 100-deep paren ladder");
  B.mustFail(Via::Hist, parens("eps", 400), "nesting too deep",
             "a 400-deep paren ladder");
  B.mustFail(Via::Hist, parens("eps", 100000), "nesting too deep",
             "a 100000-deep paren ladder");
  B.mustParse(Via::Hist, repeat("a?.", 120) + "eps",
              "a 120-long prefix chain");
  B.mustFail(Via::Hist, repeat("a?.", 5000) + "eps", "nesting too deep",
             "a 5000-long prefix chain");
  B.mustParse(Via::Lambda, parens("unit", 100),
              "a 100-deep lambda paren ladder");
  B.mustFail(Via::Lambda, parens("unit", 600), "nesting too deep",
             "a 600-deep lambda paren ladder");
  B.mustFail(Via::File, "service s { " + parens("eps", 600) + " }",
             "nesting too deep", "a service with a 600-deep ladder");
  {
    std::string Opens, Closes;
    for (unsigned I = 1; I <= 300; ++I) {
      Opens += "open " + std::to_string(I) + " { ";
      Closes += " }";
    }
    B.mustFail(Via::File, "client c { " + Opens + "eps" + Closes + " }",
               "nesting too deep", "a client with 300 nested sessions");
  }

  // --- Long flat spines must stay iterative (no depth limit applies):
  // a ';'-chain inside a choice operand walks an arbitrarily long
  // already-parsed seq spine when distributing the guard. ---
  B.mustParse(Via::Hist, "a?.%e" + repeat("; %e", 1500) + " + b?.eps",
              "a choice operand with a 1500-term seq spine");
  B.mustParse(Via::Hist, "%e" + repeat("; %e", 5000),
              "a flat 5000-term sequence");

  // --- Seeded token soup through all three parsers: any outcome is fine,
  // crashing is not (a crash kills the process; sanitizer legs catch
  // latent UB on the same inputs). ---
  static const char *Vocab[] = {
      "(",    ")",    "{",    "}",     "[",      "]",     ";",    ":",
      ",",    ".",    "?",    "!",     "%",      "@",     "*",    "+",
      "<+>",  "->",   "<=",   ">=",    "==",     "!=",    "<",    ">",
      "mu",   "eps",  "open", "close", "fopen",  "fclose", "policy",
      "service", "client", "plan", "for", "start", "offending", "on",
      "when", "in",   "not",  "fun",   "if",     "then",  "else", "req",
      "frame", "rec", "jump", "snd",   "rcv",    "select", "branch",
      "unit", "true", "false", "x",    "ch0",    "ev0",   "phi0", "42",
      "9999999999999999999999", "-7"};
  std::mt19937_64 Rng(0x5eed5eed);
  for (unsigned Round = 0; Round < 60; ++Round) {
    std::string Soup;
    unsigned Len = 1 + Rng() % 120;
    for (unsigned I = 0; I < Len; ++I) {
      Soup += Vocab[Rng() % (sizeof(Vocab) / sizeof(Vocab[0]))];
      Soup += ' ';
    }
    DiagnosticEngine D1, D2, D3;
    parseVia(Via::Hist, Soup, D1);
    parseVia(Via::Lambda, Soup, D2);
    parseVia(Via::File, Soup, D3);
  }

  return std::move(B.Out);
}
