//===- fuzz/Generator.cpp - Seeded random .sus program generator ----------===//

#include "fuzz/Generator.h"

#include "hist/HistContext.h"
#include "hist/Printer.h"
#include "hist/WellFormed.h"

#include <algorithm>
#include <cassert>
#include <random>
#include <sstream>

using namespace sus;
using namespace sus::fuzz;
using namespace sus::hist;

std::string GeneratedProgram::source() const { return joinDecls(Decls); }

std::string sus::fuzz::joinDecls(const std::vector<std::string> &Decls) {
  std::string Out;
  for (const std::string &D : Decls) {
    if (!Out.empty())
      Out += "\n\n";
    Out += D;
  }
  Out += "\n";
  return Out;
}

namespace {

GeneratorOptions clamped(GeneratorOptions O) {
  auto Clamp = [](unsigned V, unsigned Lo, unsigned Hi) {
    return std::min(std::max(V, Lo), Hi);
  };
  O.Depth = Clamp(O.Depth, 1, 12);
  O.AlphabetSize = Clamp(O.AlphabetSize, 1, 16);
  O.NumPolicies = Clamp(O.NumPolicies, 1, 8);
  O.NumServices = Clamp(O.NumServices, 1, 12);
  O.NumClients = Clamp(O.NumClients, 1, 8);
  O.ChoiceWidth = Clamp(O.ChoiceWidth, 1, 4);
  O.MaxValue = Clamp(O.MaxValue, 1, 16);
  return O;
}

/// One generation run. Owns the scratch HistContext the behaviors are
/// built in; everything leaves as rendered text, so the context dies with
/// the run.
class Gen {
public:
  Gen(uint64_t Seed, const GeneratorOptions &Opts)
      : O(clamped(Opts)), Rng(Seed) {}

  GeneratedProgram run();

private:
  unsigned pick(unsigned N) { return static_cast<unsigned>(Rng() % N); }
  bool chance(unsigned Percent) { return pick(100) < Percent; }
  int64_t value() { return 1 + pick(O.MaxValue); }

  std::string eventName(unsigned I) {
    return "ev" + std::to_string(I % O.AlphabetSize);
  }
  std::string channelName(unsigned I) {
    return "ch" + std::to_string(I % O.AlphabetSize);
  }

  PolicyRef somePolicyRef() {
    PolicyRef Ref;
    Ref.Name = Ctx.symbol("phi" + std::to_string(pick(O.NumPolicies)));
    Ref.Args.push_back({Value::integer(value())});
    return Ref;
  }

  CommAction someComm() {
    Symbol Ch = Ctx.symbol(channelName(pick(O.AlphabetSize)));
    return chance(50) ? CommAction::input(Ch) : CommAction::output(Ch);
  }

  const Expr *leaf() {
    switch (pick(3)) {
    case 0:
      return Ctx.empty();
    case 1:
      return Ctx.event(eventName(pick(O.AlphabetSize)));
    default:
      return Ctx.event(eventName(pick(O.AlphabetSize)), value());
    }
  }

  const Expr *behavior(unsigned Depth, bool AllowRequests,
                       std::vector<RequestId> &Requests);

  std::string policyDecl(unsigned Index);
  std::string guardText();

  GeneratorOptions O;
  std::mt19937_64 Rng;
  hist::HistContext Ctx;
  RequestId NextRequest = 1;
  unsigned NextMuVar = 0;
};

/// Builds a random closed, tail-recursive, comm-guarded behavior. The
/// shape mirrors the grammar the parsers accept; every construct that can
/// break well-formedness (recursion) is emitted only in its guarded-tail
/// form, so the result always passes checkWellFormed.
const Expr *Gen::behavior(unsigned Depth, bool AllowRequests,
                          std::vector<RequestId> &Requests) {
  if (Depth == 0)
    return leaf();
  switch (pick(8)) {
  case 0: // Sequential composition.
    return Ctx.seq(behavior(Depth - 1, AllowRequests, Requests),
                   behavior(Depth - 1, AllowRequests, Requests));
  case 1:   // External choice: distinct input guards.
  case 2: { // Internal choice: distinct output guards.
    bool Ext = pick(2) == 0;
    unsigned Width = 1 + pick(std::min(O.ChoiceWidth, O.AlphabetSize));
    unsigned Base = pick(O.AlphabetSize);
    std::vector<ChoiceBranch> Branches;
    for (unsigned I = 0; I < Width; ++I) {
      Symbol Ch = Ctx.symbol(channelName(Base + I));
      CommAction G = Ext ? CommAction::input(Ch) : CommAction::output(Ch);
      Branches.push_back({G, behavior(Depth - 1, AllowRequests, Requests)});
    }
    return Ext ? Ctx.extChoice(std::move(Branches))
               : Ctx.intChoice(std::move(Branches));
  }
  case 3: // Policy framing.
    return Ctx.framing(somePolicyRef(),
                       behavior(Depth - 1, AllowRequests, Requests));
  case 4: // Service request (client side only).
    if (AllowRequests) {
      RequestId R = NextRequest++;
      Requests.push_back(R);
      PolicyRef Policy = chance(70) ? somePolicyRef() : PolicyRef();
      return Ctx.request(R, std::move(Policy),
                         behavior(Depth - 1, AllowRequests, Requests));
    }
    [[fallthrough]];
  case 5: { // Guarded tail recursion: mu h. a?.(... ; h).
    std::string Var = "h" + std::to_string(NextMuVar++);
    const Expr *Tail = Ctx.var(Var);
    if (chance(50))
      Tail = Ctx.seq(leaf(), Tail);
    const Expr *Body = Ctx.prefix(someComm(), Tail);
    return Ctx.mu(Var, Body);
  }
  case 6: // Communication prefix.
    return Ctx.prefix(someComm(),
                      behavior(Depth - 1, AllowRequests, Requests));
  default:
    return behavior(Depth - 1, AllowRequests, Requests);
  }
}

std::string Gen::guardText() {
  static const char *CmpOps[] = {"<", "<=", ">", ">=", "==", "!="};
  switch (pick(4)) {
  case 0:
    return std::string(" when x ") + CmpOps[pick(6)] + " " +
           std::to_string(value());
  case 1: // Compare against the policy's scalar parameter.
    return std::string(" when x ") + CmpOps[pick(6)] + " t";
  case 2:
    return " when x in {" + std::to_string(value()) + "," +
           std::to_string(value()) + "}";
  default:
    return " when x not in {" + std::to_string(value()) + "}";
  }
}

std::string Gen::policyDecl(unsigned Index) {
  unsigned NumStates = 2 + pick(3); // q0..q{NumStates-1}; last offending.
  unsigned NumEdges = 2 + pick(5);
  std::ostringstream OS;
  OS << "policy phi" << Index << "(t: int) {\n";
  OS << "  start q0;\n";
  OS << "  offending q" << (NumStates - 1) << ";\n";
  for (unsigned I = 0; I < NumEdges; ++I) {
    OS << "  q" << pick(NumStates) << " -> q" << pick(NumStates) << " on ";
    if (chance(20)) {
      OS << "*";
    } else {
      OS << eventName(pick(O.AlphabetSize));
      if (chance(70))
        OS << "(x)" << guardText();
    }
    OS << ";\n";
  }
  OS << "}";
  return OS.str();
}

GeneratedProgram Gen::run() {
  GeneratedProgram P;

  for (unsigned I = 0; I < O.NumPolicies; ++I)
    P.Decls.push_back(policyDecl(I));

  // Services carry no requests of their own, so generated plans stay
  // one-level and every request the verifier sees belongs to a client.
  for (unsigned I = 0; I < O.NumServices; ++I) {
    std::vector<RequestId> Ignored;
    const Expr *S = behavior(O.Depth, /*AllowRequests=*/false, Ignored);
    assert(Ctx.isClosed(S) && isWellFormed(Ctx, S) &&
           "generator emitted an ill-formed service");
    P.Decls.push_back("service s" + std::to_string(I) + " { " +
                      print(Ctx, S) + " }");
  }

  std::vector<std::vector<RequestId>> ClientRequests(O.NumClients);
  for (unsigned I = 0; I < O.NumClients; ++I) {
    std::vector<RequestId> &Requests = ClientRequests[I];
    const Expr *C = behavior(O.Depth, /*AllowRequests=*/true, Requests);
    if (Requests.empty()) { // Every client opens at least one session.
      RequestId R = NextRequest++;
      Requests.push_back(R);
      C = Ctx.request(R, somePolicyRef(), C);
    }
    assert(Ctx.isClosed(C) && isWellFormed(Ctx, C) &&
           "generator emitted an ill-formed client");
    P.Decls.push_back("client c" + std::to_string(I) + " { " +
                      print(Ctx, C) + " }");
  }

  // One declared plan per client, binding every request it opens to some
  // service (the verifier enumerates its own candidates; these exercise
  // the plan-declaration surface).
  for (unsigned I = 0; I < O.NumClients; ++I) {
    std::ostringstream OS;
    OS << "plan p" << I << " for c" << I << " {";
    for (RequestId R : ClientRequests[I])
      OS << " " << R << " -> s" << pick(O.NumServices) << ";";
    OS << " }";
    P.Decls.push_back(OS.str());
  }

  return P;
}

} // namespace

GeneratedProgram sus::fuzz::generateProgram(uint64_t Seed,
                                            const GeneratorOptions &Opts) {
  return Gen(Seed, Opts).run();
}
