//===- fuzz/Differential.cpp - Differential fuzzing oracles ---------------===//

#include "fuzz/Differential.h"

#include "bpa/Bpa.h"
#include "bpa/FromHist.h"
#include "contract/Compliance.h"
#include "contract/Project.h"
#include "core/Snapshot.h"
#include "core/Verifier.h"
#include "fuzz/Chaos.h"
#include "hist/Derive.h"
#include "hist/HistContext.h"
#include "hist/Printer.h"
#include "hist/TraceEquiv.h"
#include "monitor/Fused.h"
#include "monitor/SessionMonitor.h"
#include "plan/RequestExtract.h"
#include "policy/Compile.h"
#include "policy/Validity.h"
#include "support/Diagnostics.h"
#include "syntax/FileParser.h"

#include <memory>
#include <random>
#include <set>
#include <sstream>

using namespace sus;
using namespace sus::fuzz;

namespace {

std::string renderDiags(const DiagnosticEngine &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags.diagnostics()) {
    if (!Out.empty())
      Out += "; ";
    Out += D.Message;
  }
  return Out;
}

/// All behaviors of a parsed file: services first (repository order),
/// then clients (declaration order).
std::vector<const hist::Expr *> allBehaviors(const syntax::SusFile &File) {
  std::vector<const hist::Expr *> Out;
  for (plan::Loc L : File.Repo.locations())
    Out.push_back(File.Repo.find(L));
  for (const auto &[Name, E] : File.Clients)
    Out.push_back(E);
  return Out;
}

/// Oracle 1: the product-automaton compliance checker (Thm. 1) and the
/// literal Def. 4 ready-set procedure must return the same verdict for
/// every request-body/service pair (Lemma 1 says they coincide).
void complianceOracle(hist::HistContext &Ctx, const syntax::SusFile &File,
                      std::vector<Divergence> &Out) {
  constexpr size_t MaxPairs = 128;
  size_t Pairs = 0;
  std::vector<plan::Loc> Locs = File.Repo.locations();
  for (const auto &[ClientName, Client] : File.Clients) {
    for (const plan::RequestSite &Site : plan::extractRequests(Client)) {
      for (plan::Loc L : Locs) {
        if (++Pairs > MaxPairs)
          return;
        const hist::Expr *Service = File.Repo.find(L);
        contract::ComplianceResult Product =
            contract::checkServiceCompliance(Ctx, Site.body(), Service);
        bool Direct = contract::checkComplianceDirect(
            Ctx, contract::project(Ctx, Site.body()),
            contract::project(Ctx, Service));
        if (Product.Exhausted)
          continue; // Ungoverned runs should never trip, but an
                    // inconclusive product verdict is not a divergence.
        if (Product.Compliant != Direct) {
          std::ostringstream OS;
          OS << "request " << Site.id() << " of "
             << Ctx.interner().text(ClientName) << " vs "
             << Ctx.interner().text(L) << ": product says "
             << (Product.Compliant ? "compliant" : "non-compliant")
             << ", ready-set procedure says the opposite";
          Out.push_back({"compliance", OS.str()});
        }
      }
    }
  }
}

/// Depth-bounded prefix-closed trace set of a history expression under
/// hist::derive.
void histTracesInto(hist::HistContext &Ctx, const hist::Expr *E,
                    unsigned Depth, std::vector<std::string> &Prefix,
                    std::set<std::vector<std::string>> &Out) {
  if (Depth == 0)
    return;
  for (const hist::Transition &T : hist::derive(Ctx, E)) {
    Prefix.push_back(T.L.str(Ctx.interner()));
    Out.insert(Prefix);
    histTracesInto(Ctx, T.Target, Depth - 1, Prefix, Out);
    Prefix.pop_back();
  }
}

/// The same under the BPA operational semantics; also samples full-depth
/// label words for the canPerform cross-check.
void bpaTracesInto(bpa::BpaContext &Bpa, const StringInterner &Interner,
                   const bpa::Term *T, unsigned Depth,
                   std::vector<std::string> &Prefix,
                   std::vector<hist::Label> &Labels,
                   std::set<std::vector<std::string>> &Out,
                   std::vector<std::vector<hist::Label>> &Words) {
  if (Depth == 0) {
    if (!Labels.empty() && Words.size() < 16)
      Words.push_back(Labels);
    return;
  }
  for (const bpa::BpaTransition &Tr : bpa::deriveBpa(Bpa, T)) {
    Prefix.push_back(Tr.L.str(Interner));
    Labels.push_back(Tr.L);
    Out.insert(Prefix);
    bpaTracesInto(Bpa, Interner, Tr.Target, Depth - 1, Prefix, Labels, Out,
                  Words);
    Labels.pop_back();
    Prefix.pop_back();
  }
}

/// Oracle 2: hist::derive and the BPA translation must generate the same
/// depth-bounded trace prefixes, and every sampled BPA word must be
/// performable by the original expression (subset-walk canPerform).
void bpaOracle(hist::HistContext &Ctx, const syntax::SusFile &File,
               unsigned Depth, std::vector<Divergence> &Out) {
  unsigned Index = 0;
  for (const hist::Expr *E : allBehaviors(File)) {
    ++Index;
    std::set<std::vector<std::string>> FromDerive;
    std::vector<std::string> Prefix;
    histTracesInto(Ctx, E, Depth, Prefix, FromDerive);

    bpa::BpaContext Bpa;
    const bpa::Term *Root = bpa::fromHist(Bpa, Ctx, E);
    std::set<std::vector<std::string>> FromBpa;
    std::vector<hist::Label> Labels;
    std::vector<std::vector<hist::Label>> Words;
    bpaTracesInto(Bpa, Ctx.interner(), Root, Depth, Prefix, Labels, FromBpa,
                  Words);

    if (FromDerive != FromBpa) {
      std::ostringstream OS;
      OS << "behavior #" << Index << " (" << hist::print(Ctx, E)
         << "): derive yields " << FromDerive.size()
         << " trace prefixes at depth " << Depth << ", BPA yields "
         << FromBpa.size() << ", and the sets differ";
      Out.push_back({"bpa", OS.str()});
      continue;
    }
    for (const std::vector<hist::Label> &W : Words) {
      if (!hist::canPerform(Ctx, E, W)) {
        std::ostringstream OS;
        OS << "behavior #" << Index
           << ": BPA admits a word of length " << W.size()
           << " that canPerform rejects";
        Out.push_back({"bpa", OS.str()});
        break;
      }
    }
  }
}

/// Oracle 3: the fused-DFA session monitor and the legacy per-policy
/// validity probe must agree on every label of a random trace — both on
/// the would-admit probes and on the committed verdicts.
void monitorOracle(hist::HistContext &Ctx, const syntax::SusFile &File,
                   uint64_t Seed, unsigned TraceLen,
                   std::vector<Divergence> &Out) {
  std::vector<const hist::Expr *> Behaviors = allBehaviors(File);
  std::vector<hist::PolicyRef> Refs = monitor::collectPolicyRefs(Behaviors);
  std::vector<hist::Event> Universe = policy::eventUniverse(Behaviors);
  if (Refs.empty() || Universe.empty())
    return;

  Outcome<monitor::FusedPolicyAutomaton> Fused =
      monitor::fusePolicies(File.Registry, Ctx.interner(), Refs, Universe);
  if (!Fused.ok())
    return; // Refusal (width/budget) is a capacity decision, not a bug.

  // Pool of framing refs to open/close mid-trace: every collected ref,
  // one "ghost" naming an undeclared policy, and one trivial ref.
  std::vector<hist::PolicyRef> OpenPool = Refs;
  hist::PolicyRef Ghost;
  Ghost.Name = Ctx.symbol("ghost_policy");
  Ghost.Args.push_back({Value::integer(1)});
  OpenPool.push_back(Ghost);
  OpenPool.push_back(hist::PolicyRef());

  std::mt19937_64 Rng(Seed * 0x9e3779b97f4a7c15ull + 1);
  monitor::SessionMonitor Monitor(Fused.value());
  policy::ValidityChecker Legacy(File.Registry, Ctx.interner());

  for (unsigned I = 0; I < TraceLen; ++I) {
    hist::Label L = [&] {
      unsigned Roll = Rng() % 10;
      if (Roll < 6)
        return hist::Label::event(Universe[Rng() % Universe.size()]);
      const hist::PolicyRef &Ref = OpenPool[Rng() % OpenPool.size()];
      return Roll < 8 ? hist::Label::frameOpen(Ref)
                      : hist::Label::frameClose(Ref);
    }();

    bool LegacyProbe = Legacy.wouldRemainValid(L);
    bool FusedProbe = Monitor.wouldAdmit(L);
    if (LegacyProbe != FusedProbe) {
      Out.push_back({"monitor",
                     "probe disagreement at step " + std::to_string(I) +
                         " on " + L.str(Ctx.interner()) + ": legacy says " +
                         (LegacyProbe ? "admit" : "reject") +
                         ", fused says the opposite"});
      return;
    }

    Legacy.append(L);
    Monitor.advance(L);
    if (Legacy.isValid() != !Monitor.isViolated()) {
      Out.push_back({"monitor",
                     "verdict disagreement after step " + std::to_string(I) +
                         " (" + L.str(Ctx.interner()) + "): legacy " +
                         (Legacy.isValid() ? "valid" : "violated") +
                         ", fused the opposite"});
      return;
    }
  }

  // Chunked probe: the multi-label lookahead must agree too.
  std::vector<hist::Label> Chunk;
  for (unsigned I = 0; I < 6; ++I)
    Chunk.push_back(hist::Label::event(Universe[Rng() % Universe.size()]));
  if (Legacy.wouldRemainValidAll(Chunk) != Monitor.wouldAdmitAll(Chunk))
    Out.push_back(
        {"monitor", "chunked probe disagreement on a 6-label lookahead"});
}

/// Verifies every client through a dedicated verifier over \p Cache and
/// renders the full report stream. Byte equality of this string across a
/// snapshot round trip is the warm-restart contract (DESIGN.md §13).
std::string verifyAllInto(hist::HistContext &Ctx, const syntax::SusFile &File,
                          core::Verifier &V) {
  std::ostringstream OS;
  for (const auto &[Name, Client] : File.Clients) {
    core::VerificationReport Report = V.verifyClient(Client, Name);
    core::printReport(Report, Ctx, OS);
  }
  return OS.str();
}

/// Oracle 4: persistence. A snapshot cut after a cold verification must
/// reload into a *fresh* context (simulating a restarted process) and the
/// warm verifier must reproduce the cold verdict stream byte for byte.
/// Then a seeded corruption battery — single-bit flips and truncations of
/// the blob — must be rejected cleanly every time: loadSnapshot returns
/// !Ok with a diagnostic, never crashes, never absorbs a partial load.
void snapshotOracle(hist::HistContext &Ctx, const syntax::SusFile &File,
                    const std::string &Source, uint64_t Seed,
                    const FuzzOptions &Opts, std::vector<Divergence> &Out) {
  // Cold run: fill a cache, render the reports, cut the snapshot.
  core::VerifierOptions VOpts;
  VOpts.UseIndex = true;
  auto ColdCache = std::make_shared<core::VerifierCache>();
  core::Verifier Cold(Ctx, File.Repo, File.Registry, VOpts, ColdCache);
  std::string ColdText = verifyAllInto(Ctx, File, Cold);
  std::string Bytes =
      core::saveSnapshot(Ctx, File.Repo, *ColdCache, Cold.index());
  if (Bytes.empty()) {
    Out.push_back({"snapshot", "saveSnapshot produced an empty blob"});
    return;
  }

  // Warm run: fresh context + re-parse stands in for the new process.
  hist::HistContext Ctx2;
  DiagnosticEngine Diags2;
  std::optional<syntax::SusFile> File2 =
      syntax::parseSusFile(Ctx2, Source, Diags2, "fuzz.sus");
  if (!File2) {
    Out.push_back({"snapshot", "re-parse failed: " + renderDiags(Diags2)});
    return;
  }
  auto WarmCache = std::make_shared<core::VerifierCache>();
  core::SnapshotLoadResult Load =
      core::loadSnapshot(Bytes, Ctx2, File2->Repo, *WarmCache);
  if (!Load.Ok) {
    Out.push_back({"snapshot", "round trip rejected: " + Load.Error});
    return;
  }
  core::Verifier Warm(Ctx2, File2->Repo, File2->Registry, VOpts, WarmCache);
  if (!Load.IndexEntries.empty())
    Warm.adoptIndex(std::make_unique<plan::ServiceIndex>(
        Ctx2, File2->Repo, Load.IndexEntries));
  std::string WarmText = verifyAllInto(Ctx2, *File2, Warm);
  if (WarmText != ColdText) {
    Out.push_back({"snapshot",
                   "warm-restart verdicts differ from the cold run (cold " +
                       std::to_string(ColdText.size()) + " bytes, warm " +
                       std::to_string(WarmText.size()) + " bytes)"});
    return;
  }

  // Corruption battery. Every mutant targets a scratch cache so a buggy
  // partial absorb cannot poison later probes.
  auto mustReject = [&](const std::string &Mutant, const std::string &What) {
    core::VerifierCache Scratch;
    core::SnapshotLoadResult C =
        core::loadSnapshot(Mutant, Ctx2, File2->Repo, Scratch);
    if (C.Ok)
      Out.push_back({"snapshot", "corrupt blob accepted: " + What});
    else if (C.Error.empty())
      Out.push_back(
          {"snapshot", "corrupt blob rejected without a diagnostic: " + What});
  };

  std::mt19937_64 Rng(Seed * 0x9e3779b97f4a7c15ull + 7);
  for (unsigned I = 0; I < Opts.SnapshotFlips; ++I) {
    std::string Mutant = Bytes;
    size_t Pos = Rng() % Mutant.size();
    Mutant[Pos] = static_cast<char>(
        static_cast<unsigned char>(Mutant[Pos]) ^ (1u << (Rng() % 8)));
    mustReject(Mutant, "bit flip at offset " + std::to_string(Pos));
  }
  for (unsigned I = 0; I < Opts.SnapshotCuts; ++I) {
    size_t Len = Rng() % Bytes.size();
    mustReject(Bytes.substr(0, Len),
               "truncation to " + std::to_string(Len) + " bytes");
  }
  mustReject(Bytes + std::string(1, '\0'), "one trailing garbage byte");

  // The pristine blob must still load after all that (rejections are
  // side-effect free), including into the cache that already absorbed it.
  core::SnapshotLoadResult Again =
      core::loadSnapshot(Bytes, Ctx2, File2->Repo, *WarmCache);
  if (!Again.Ok)
    Out.push_back(
        {"snapshot", "pristine blob no longer loads: " + Again.Error});
}

} // namespace

bool sus::fuzz::checkSource(const std::string &Source, uint64_t Seed,
                            const FuzzOptions &Opts,
                            std::vector<Divergence> &Out) {
  auto Ctx = std::make_unique<hist::HistContext>();
  DiagnosticEngine Diags;
  std::optional<syntax::SusFile> File =
      syntax::parseSusFile(*Ctx, Source, Diags, "fuzz.sus");
  if (!File) {
    Out.push_back({"parse", renderDiags(Diags)});
    return false;
  }

  complianceOracle(*Ctx, *File, Out);
  bpaOracle(*Ctx, *File, Opts.BpaTraceDepth, Out);
  monitorOracle(*Ctx, *File, Seed, Opts.MonitorTraceLen, Out);
  if (Opts.Snapshot)
    snapshotOracle(*Ctx, *File, Source, Seed, Opts, Out);
  if (Opts.Chaos)
    chaosSoak(*Ctx, *File, Seed, Opts.ChaosRounds, Out);
  return true;
}

SeedReport sus::fuzz::runSeed(uint64_t Seed, const FuzzOptions &Opts) {
  SeedReport R;
  R.Seed = Seed;
  R.Program = generateProgram(Seed, Opts.Gen);
  checkSource(R.Program.source(), Seed, Opts, R.Divergences);
  if (!R.Divergences.empty()) {
    auto StillFails = [&](const std::vector<std::string> &Decls) {
      std::vector<Divergence> D;
      checkSource(joinDecls(Decls), Seed, Opts, D);
      return !D.empty();
    };
    R.MinimizedSource = joinDecls(minimizeDecls(R.Program.Decls, StillFails));
  }
  return R;
}

std::vector<std::string> sus::fuzz::minimizeDecls(
    std::vector<std::string> Decls,
    const std::function<bool(const std::vector<std::string> &)> &StillFails) {
  bool Progress = true;
  while (Progress && Decls.size() > 1) {
    Progress = false;
    for (size_t I = 0; I < Decls.size(); ++I) {
      std::vector<std::string> Candidate;
      Candidate.reserve(Decls.size() - 1);
      for (size_t J = 0; J < Decls.size(); ++J)
        if (J != I)
          Candidate.push_back(Decls[J]);
      if (StillFails(Candidate)) {
        Decls = std::move(Candidate);
        Progress = true;
        break;
      }
    }
  }
  return Decls;
}
