//===- fuzz/Differential.cpp - Differential fuzzing oracles ---------------===//

#include "fuzz/Differential.h"

#include "bpa/Bpa.h"
#include "bpa/FromHist.h"
#include "contract/Compliance.h"
#include "contract/Project.h"
#include "fuzz/Chaos.h"
#include "hist/Derive.h"
#include "hist/HistContext.h"
#include "hist/Printer.h"
#include "hist/TraceEquiv.h"
#include "monitor/Fused.h"
#include "monitor/SessionMonitor.h"
#include "plan/RequestExtract.h"
#include "policy/Compile.h"
#include "policy/Validity.h"
#include "support/Diagnostics.h"
#include "syntax/FileParser.h"

#include <memory>
#include <random>
#include <set>
#include <sstream>

using namespace sus;
using namespace sus::fuzz;

namespace {

std::string renderDiags(const DiagnosticEngine &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags.diagnostics()) {
    if (!Out.empty())
      Out += "; ";
    Out += D.Message;
  }
  return Out;
}

/// All behaviors of a parsed file: services first (repository order),
/// then clients (declaration order).
std::vector<const hist::Expr *> allBehaviors(const syntax::SusFile &File) {
  std::vector<const hist::Expr *> Out;
  for (plan::Loc L : File.Repo.locations())
    Out.push_back(File.Repo.find(L));
  for (const auto &[Name, E] : File.Clients)
    Out.push_back(E);
  return Out;
}

/// Oracle 1: the product-automaton compliance checker (Thm. 1) and the
/// literal Def. 4 ready-set procedure must return the same verdict for
/// every request-body/service pair (Lemma 1 says they coincide).
void complianceOracle(hist::HistContext &Ctx, const syntax::SusFile &File,
                      std::vector<Divergence> &Out) {
  constexpr size_t MaxPairs = 128;
  size_t Pairs = 0;
  std::vector<plan::Loc> Locs = File.Repo.locations();
  for (const auto &[ClientName, Client] : File.Clients) {
    for (const plan::RequestSite &Site : plan::extractRequests(Client)) {
      for (plan::Loc L : Locs) {
        if (++Pairs > MaxPairs)
          return;
        const hist::Expr *Service = File.Repo.find(L);
        contract::ComplianceResult Product =
            contract::checkServiceCompliance(Ctx, Site.body(), Service);
        bool Direct = contract::checkComplianceDirect(
            Ctx, contract::project(Ctx, Site.body()),
            contract::project(Ctx, Service));
        if (Product.Exhausted)
          continue; // Ungoverned runs should never trip, but an
                    // inconclusive product verdict is not a divergence.
        if (Product.Compliant != Direct) {
          std::ostringstream OS;
          OS << "request " << Site.id() << " of "
             << Ctx.interner().text(ClientName) << " vs "
             << Ctx.interner().text(L) << ": product says "
             << (Product.Compliant ? "compliant" : "non-compliant")
             << ", ready-set procedure says the opposite";
          Out.push_back({"compliance", OS.str()});
        }
      }
    }
  }
}

/// Depth-bounded prefix-closed trace set of a history expression under
/// hist::derive.
void histTracesInto(hist::HistContext &Ctx, const hist::Expr *E,
                    unsigned Depth, std::vector<std::string> &Prefix,
                    std::set<std::vector<std::string>> &Out) {
  if (Depth == 0)
    return;
  for (const hist::Transition &T : hist::derive(Ctx, E)) {
    Prefix.push_back(T.L.str(Ctx.interner()));
    Out.insert(Prefix);
    histTracesInto(Ctx, T.Target, Depth - 1, Prefix, Out);
    Prefix.pop_back();
  }
}

/// The same under the BPA operational semantics; also samples full-depth
/// label words for the canPerform cross-check.
void bpaTracesInto(bpa::BpaContext &Bpa, const StringInterner &Interner,
                   const bpa::Term *T, unsigned Depth,
                   std::vector<std::string> &Prefix,
                   std::vector<hist::Label> &Labels,
                   std::set<std::vector<std::string>> &Out,
                   std::vector<std::vector<hist::Label>> &Words) {
  if (Depth == 0) {
    if (!Labels.empty() && Words.size() < 16)
      Words.push_back(Labels);
    return;
  }
  for (const bpa::BpaTransition &Tr : bpa::deriveBpa(Bpa, T)) {
    Prefix.push_back(Tr.L.str(Interner));
    Labels.push_back(Tr.L);
    Out.insert(Prefix);
    bpaTracesInto(Bpa, Interner, Tr.Target, Depth - 1, Prefix, Labels, Out,
                  Words);
    Labels.pop_back();
    Prefix.pop_back();
  }
}

/// Oracle 2: hist::derive and the BPA translation must generate the same
/// depth-bounded trace prefixes, and every sampled BPA word must be
/// performable by the original expression (subset-walk canPerform).
void bpaOracle(hist::HistContext &Ctx, const syntax::SusFile &File,
               unsigned Depth, std::vector<Divergence> &Out) {
  unsigned Index = 0;
  for (const hist::Expr *E : allBehaviors(File)) {
    ++Index;
    std::set<std::vector<std::string>> FromDerive;
    std::vector<std::string> Prefix;
    histTracesInto(Ctx, E, Depth, Prefix, FromDerive);

    bpa::BpaContext Bpa;
    const bpa::Term *Root = bpa::fromHist(Bpa, Ctx, E);
    std::set<std::vector<std::string>> FromBpa;
    std::vector<hist::Label> Labels;
    std::vector<std::vector<hist::Label>> Words;
    bpaTracesInto(Bpa, Ctx.interner(), Root, Depth, Prefix, Labels, FromBpa,
                  Words);

    if (FromDerive != FromBpa) {
      std::ostringstream OS;
      OS << "behavior #" << Index << " (" << hist::print(Ctx, E)
         << "): derive yields " << FromDerive.size()
         << " trace prefixes at depth " << Depth << ", BPA yields "
         << FromBpa.size() << ", and the sets differ";
      Out.push_back({"bpa", OS.str()});
      continue;
    }
    for (const std::vector<hist::Label> &W : Words) {
      if (!hist::canPerform(Ctx, E, W)) {
        std::ostringstream OS;
        OS << "behavior #" << Index
           << ": BPA admits a word of length " << W.size()
           << " that canPerform rejects";
        Out.push_back({"bpa", OS.str()});
        break;
      }
    }
  }
}

/// Oracle 3: the fused-DFA session monitor and the legacy per-policy
/// validity probe must agree on every label of a random trace — both on
/// the would-admit probes and on the committed verdicts.
void monitorOracle(hist::HistContext &Ctx, const syntax::SusFile &File,
                   uint64_t Seed, unsigned TraceLen,
                   std::vector<Divergence> &Out) {
  std::vector<const hist::Expr *> Behaviors = allBehaviors(File);
  std::vector<hist::PolicyRef> Refs = monitor::collectPolicyRefs(Behaviors);
  std::vector<hist::Event> Universe = policy::eventUniverse(Behaviors);
  if (Refs.empty() || Universe.empty())
    return;

  Outcome<monitor::FusedPolicyAutomaton> Fused =
      monitor::fusePolicies(File.Registry, Ctx.interner(), Refs, Universe);
  if (!Fused.ok())
    return; // Refusal (width/budget) is a capacity decision, not a bug.

  // Pool of framing refs to open/close mid-trace: every collected ref,
  // one "ghost" naming an undeclared policy, and one trivial ref.
  std::vector<hist::PolicyRef> OpenPool = Refs;
  hist::PolicyRef Ghost;
  Ghost.Name = Ctx.symbol("ghost_policy");
  Ghost.Args.push_back({Value::integer(1)});
  OpenPool.push_back(Ghost);
  OpenPool.push_back(hist::PolicyRef());

  std::mt19937_64 Rng(Seed * 0x9e3779b97f4a7c15ull + 1);
  monitor::SessionMonitor Monitor(Fused.value());
  policy::ValidityChecker Legacy(File.Registry, Ctx.interner());

  for (unsigned I = 0; I < TraceLen; ++I) {
    hist::Label L = [&] {
      unsigned Roll = Rng() % 10;
      if (Roll < 6)
        return hist::Label::event(Universe[Rng() % Universe.size()]);
      const hist::PolicyRef &Ref = OpenPool[Rng() % OpenPool.size()];
      return Roll < 8 ? hist::Label::frameOpen(Ref)
                      : hist::Label::frameClose(Ref);
    }();

    bool LegacyProbe = Legacy.wouldRemainValid(L);
    bool FusedProbe = Monitor.wouldAdmit(L);
    if (LegacyProbe != FusedProbe) {
      Out.push_back({"monitor",
                     "probe disagreement at step " + std::to_string(I) +
                         " on " + L.str(Ctx.interner()) + ": legacy says " +
                         (LegacyProbe ? "admit" : "reject") +
                         ", fused says the opposite"});
      return;
    }

    Legacy.append(L);
    Monitor.advance(L);
    if (Legacy.isValid() != !Monitor.isViolated()) {
      Out.push_back({"monitor",
                     "verdict disagreement after step " + std::to_string(I) +
                         " (" + L.str(Ctx.interner()) + "): legacy " +
                         (Legacy.isValid() ? "valid" : "violated") +
                         ", fused the opposite"});
      return;
    }
  }

  // Chunked probe: the multi-label lookahead must agree too.
  std::vector<hist::Label> Chunk;
  for (unsigned I = 0; I < 6; ++I)
    Chunk.push_back(hist::Label::event(Universe[Rng() % Universe.size()]));
  if (Legacy.wouldRemainValidAll(Chunk) != Monitor.wouldAdmitAll(Chunk))
    Out.push_back(
        {"monitor", "chunked probe disagreement on a 6-label lookahead"});
}

} // namespace

bool sus::fuzz::checkSource(const std::string &Source, uint64_t Seed,
                            const FuzzOptions &Opts,
                            std::vector<Divergence> &Out) {
  auto Ctx = std::make_unique<hist::HistContext>();
  DiagnosticEngine Diags;
  std::optional<syntax::SusFile> File =
      syntax::parseSusFile(*Ctx, Source, Diags, "fuzz.sus");
  if (!File) {
    Out.push_back({"parse", renderDiags(Diags)});
    return false;
  }

  complianceOracle(*Ctx, *File, Out);
  bpaOracle(*Ctx, *File, Opts.BpaTraceDepth, Out);
  monitorOracle(*Ctx, *File, Seed, Opts.MonitorTraceLen, Out);
  if (Opts.Chaos)
    chaosSoak(*Ctx, *File, Seed, Opts.ChaosRounds, Out);
  return true;
}

SeedReport sus::fuzz::runSeed(uint64_t Seed, const FuzzOptions &Opts) {
  SeedReport R;
  R.Seed = Seed;
  R.Program = generateProgram(Seed, Opts.Gen);
  checkSource(R.Program.source(), Seed, Opts, R.Divergences);
  if (!R.Divergences.empty()) {
    auto StillFails = [&](const std::vector<std::string> &Decls) {
      std::vector<Divergence> D;
      checkSource(joinDecls(Decls), Seed, Opts, D);
      return !D.empty();
    };
    R.MinimizedSource = joinDecls(minimizeDecls(R.Program.Decls, StillFails));
  }
  return R;
}

std::vector<std::string> sus::fuzz::minimizeDecls(
    std::vector<std::string> Decls,
    const std::function<bool(const std::vector<std::string> &)> &StillFails) {
  bool Progress = true;
  while (Progress && Decls.size() > 1) {
    Progress = false;
    for (size_t I = 0; I < Decls.size(); ++I) {
      std::vector<std::string> Candidate;
      Candidate.reserve(Decls.size() - 1);
      for (size_t J = 0; J < Decls.size(); ++J)
        if (J != I)
          Candidate.push_back(Decls[J]);
      if (StillFails(Candidate)) {
        Decls = std::move(Candidate);
        Progress = true;
        break;
      }
    }
  }
  return Decls;
}
