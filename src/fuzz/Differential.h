//===- fuzz/Differential.h - Differential fuzzing oracles -------*- C++ -*-===//
///
/// \file
/// The differential harness: every generated program is pushed through a
/// hierarchy of independent implementations that must agree —
///
///   parse        the program must parse (the generator promises this);
///   compliance   product-automaton checker (Thm. 1) vs. the literal
///                Def. 4 ready-set procedure, per request/service pair;
///   bpa          hist::derive trace prefixes vs. the BPA translation's
///                (plus canPerform spot checks on sampled BPA traces);
///   monitor      fused-DFA session monitor vs. the legacy per-policy
///                validity probe, label by label over a random trace;
///   snapshot     a cache snapshot cut after a cold verification must
///                reload into a fresh context and reproduce the exact
///                verdict stream — and seeded bit-flips / truncations
///                of the blob must all be rejected cleanly;
///   chaos        governed re-verification must be Inconclusive-or-
///                correct and must never pollute shared caches.
///
/// Any disagreement is reported as a Divergence and the failing program
/// is minimized declaration-by-declaration into a replayable reproducer.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_FUZZ_DIFFERENTIAL_H
#define SUS_FUZZ_DIFFERENTIAL_H

#include "fuzz/Generator.h"

#include <functional>
#include <string>
#include <vector>

namespace sus {
namespace fuzz {

/// Knobs for one differential run.
struct FuzzOptions {
  GeneratorOptions Gen;
  unsigned BpaTraceDepth = 4;   ///< Trace-prefix comparison depth.
  unsigned MonitorTraceLen = 48; ///< Labels fed to the monitor pair.
  bool Chaos = true;            ///< Run the governor chaos soak too.
  unsigned ChaosRounds = 2;     ///< Governed rounds per client.
  bool Snapshot = true;         ///< Run the snapshot round-trip oracle.
  unsigned SnapshotFlips = 16;  ///< Seeded single-bit corruptions tried.
  unsigned SnapshotCuts = 6;    ///< Seeded truncations tried.
};

/// One oracle disagreement (or unexpected parser outcome).
struct Divergence {
  std::string Check; ///< "parse", "compliance", "bpa", "monitor",
                     ///< "snapshot", "chaos".
  std::string Detail;
};

/// Everything learned about one seed.
struct SeedReport {
  uint64_t Seed = 0;
  GeneratedProgram Program;
  std::vector<Divergence> Divergences;
  /// Declaration-minimized reproducer; only set when divergences exist.
  std::string MinimizedSource;

  bool clean() const { return Divergences.empty(); }
};

/// Runs every oracle over \p Source (any .sus text, not necessarily
/// generated). \p Seed keys the random traces and chaos schedules.
/// Returns false when the program did not even parse.
bool checkSource(const std::string &Source, uint64_t Seed,
                 const FuzzOptions &Opts, std::vector<Divergence> &Out);

/// Generates the program for \p Seed, runs the oracles, and minimizes on
/// failure.
SeedReport runSeed(uint64_t Seed, const FuzzOptions &Opts = {});

/// Greedy ddmin-style declaration minimization: repeatedly drops any
/// declaration whose removal keeps \p StillFails true. Deterministic and
/// O(n²) predicate calls in the worst case, which is fine for the handful
/// of declarations a generated program has.
std::vector<std::string> minimizeDecls(
    std::vector<std::string> Decls,
    const std::function<bool(const std::vector<std::string> &)> &StillFails);

/// Deterministic adversarial parser battery: oversized number literals,
/// nesting ladders at and beyond the ParserBase depth limit, very long
/// prefix/sequence spines, and seeded token soup, pushed through the
/// lexer and all three parsers. Inputs that must parse have to parse;
/// inputs that must be rejected have to fail with the expected
/// diagnostic — and nothing may crash (stack overflow and signed-overflow
/// UB show up as process death under the sanitizer legs). Returns the
/// violations found.
std::vector<Divergence> parserTorture();

} // namespace fuzz
} // namespace sus

#endif // SUS_FUZZ_DIFFERENTIAL_H
