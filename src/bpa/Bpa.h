//===- bpa/Bpa.h - Basic Process Algebra terms ------------------*- C++ -*-===//
///
/// \file
/// Basic Process Algebra (BPA) with guarded recursion: the process-algebra
/// rendering of history expressions used by §3.1 ("the history expression
/// Ĥ is naturally rendered as a BPA process"). Terms are:
///
///   p ::= 0 | a | p·p | p + p | X        with definitions  X ≝ p
///
/// where the atomic actions a are history-expression transition labels.
/// For the paper's guarded tail-recursive expressions the generated BPA is
/// regular, so its transition system is finite and can be handed to the
/// finite-state model checker; ToAutomaton performs that extraction and
/// detects when the fragment is *not* regular (growing stacks).
///
//===----------------------------------------------------------------------===//

#ifndef SUS_BPA_BPA_H
#define SUS_BPA_BPA_H

#include "hist/Action.h"
#include "support/Arena.h"
#include "support/Casting.h"

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace sus {
namespace bpa {

class BpaContext;

/// Kind discriminator for BPA terms.
enum class TermKind : uint8_t {
  Nil,    ///< 0 — successful termination.
  Action, ///< a — one atomic action.
  Seq,    ///< p·q.
  Sum,    ///< p + q.
  Var,    ///< X — a defined process variable.
};

/// An immutable, hash-consed BPA term.
class Term {
public:
  Term(const Term &) = delete;
  Term &operator=(const Term &) = delete;

  TermKind kind() const { return Kind; }
  bool isNil() const { return Kind == TermKind::Nil; }

protected:
  explicit Term(TermKind K) : Kind(K) {}
  ~Term() = default;

private:
  TermKind Kind;
};

/// 0.
class NilTerm : public Term {
public:
  static bool classof(const Term *T) { return T->kind() == TermKind::Nil; }

private:
  friend class BpaContext;
  friend class sus::Arena;
  NilTerm() : Term(TermKind::Nil) {}
};

/// An atomic action.
class ActionTerm : public Term {
public:
  const hist::Label &label() const { return L; }

  static bool classof(const Term *T) {
    return T->kind() == TermKind::Action;
  }

private:
  friend class BpaContext;
  friend class sus::Arena;
  explicit ActionTerm(hist::Label L) : Term(TermKind::Action), L(std::move(L)) {}
  hist::Label L;
};

/// p·q.
class SeqTerm : public Term {
public:
  const Term *left() const { return Lhs; }
  const Term *right() const { return Rhs; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Seq; }

private:
  friend class BpaContext;
  friend class sus::Arena;
  SeqTerm(const Term *Lhs, const Term *Rhs)
      : Term(TermKind::Seq), Lhs(Lhs), Rhs(Rhs) {}
  const Term *Lhs;
  const Term *Rhs;
};

/// p + q.
class SumTerm : public Term {
public:
  const Term *left() const { return Lhs; }
  const Term *right() const { return Rhs; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Sum; }

private:
  friend class BpaContext;
  friend class sus::Arena;
  SumTerm(const Term *Lhs, const Term *Rhs)
      : Term(TermKind::Sum), Lhs(Lhs), Rhs(Rhs) {}
  const Term *Lhs;
  const Term *Rhs;
};

/// X — resolved through the context's definition table.
class VarTerm : public Term {
public:
  Symbol name() const { return Name; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Var; }

private:
  friend class BpaContext;
  friend class sus::Arena;
  explicit VarTerm(Symbol Name) : Term(TermKind::Var), Name(Name) {}
  Symbol Name;
};

/// Factory/owner of BPA terms plus the definition environment Δ.
class BpaContext {
public:
  BpaContext() = default;
  BpaContext(const BpaContext &) = delete;
  BpaContext &operator=(const BpaContext &) = delete;

  const Term *nil();
  const Term *action(hist::Label L);
  /// p·q with 0·p = p·0 = p and right-nesting.
  const Term *seq(const Term *Lhs, const Term *Rhs);
  const Term *sum(const Term *Lhs, const Term *Rhs);
  const Term *var(Symbol Name);

  /// Defines X ≝ Body (replacing any previous definition).
  void define(Symbol Name, const Term *Body);

  /// The body of X, or null.
  const Term *definition(Symbol Name) const;

  /// Fresh variable names for the FromHist translation.
  Symbol freshVar(StringInterner &Interner);

  size_t numDefinitions() const { return Defs.size(); }

private:
  const Term *intern(std::vector<uint64_t> Key, const Term *Candidate);

  template <typename T, typename... Args>
  const Term *make(std::vector<uint64_t> Key, Args &&...As);

  struct VecHash {
    size_t operator()(const std::vector<uint64_t> &V) const noexcept;
  };

  Arena Terms;
  std::unordered_map<std::vector<uint64_t>, const Term *, VecHash> Unique;
  std::map<Symbol, const Term *> Defs;
  unsigned FreshCounter = 0;
};

/// One BPA transition p --λ--> p′.
struct BpaTransition {
  hist::Label L;
  const Term *Target;
};

/// The BPA operational semantics:
///   a --a--> 0;  p+q steps as p or q;  p·q steps via p (and via q when p
///   can terminate);  X steps as its definition.
std::vector<BpaTransition> deriveBpa(BpaContext &Ctx, const Term *T);

/// Whether p can terminate immediately (0, or compositions thereof).
bool canTerminate(const BpaContext &Ctx, const Term *T);

/// Renders a term, e.g. "(a . X) + b".
std::string printTerm(const BpaContext &Ctx, const StringInterner &Interner,
                      const Term *T);

} // namespace bpa
} // namespace sus

#endif // SUS_BPA_BPA_H
