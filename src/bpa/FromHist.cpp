//===- bpa/FromHist.cpp - Rendering history expressions as BPA ------------===//

#include "bpa/FromHist.h"

#include "support/Casting.h"

#include <deque>
#include <map>
#include <unordered_map>

using namespace sus;
using namespace sus::bpa;
using namespace sus::hist;

namespace {

class Translator {
public:
  Translator(BpaContext &Bpa, HistContext &Ctx) : Bpa(Bpa), Ctx(Ctx) {}

  const Term *visit(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Empty:
      return Bpa.nil();
    case ExprKind::Var: {
      auto It = VarMap.find(cast<VarExpr>(E)->name());
      // Free history variables map to an undefined (stuck) BPA variable.
      if (It == VarMap.end())
        return Bpa.var(cast<VarExpr>(E)->name());
      return Bpa.var(It->second);
    }
    case ExprKind::Mu: {
      const auto *M = cast<MuExpr>(E);
      Symbol X = Bpa.freshVar(Ctx.interner());
      Symbol Saved;
      bool HadOld = false;
      auto It = VarMap.find(M->var());
      if (It != VarMap.end()) {
        Saved = It->second;
        HadOld = true;
      }
      VarMap[M->var()] = X;
      const Term *Body = visit(M->body());
      if (HadOld)
        VarMap[M->var()] = Saved;
      else
        VarMap.erase(M->var());
      Bpa.define(X, Body);
      return Bpa.var(X);
    }
    case ExprKind::Event:
      return Bpa.action(Label::event(cast<EventExpr>(E)->event()));
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      return Bpa.seq(visit(S->head()), visit(S->tail()));
    }
    case ExprKind::ExtChoice:
    case ExprKind::IntChoice: {
      const auto *C = cast<ChoiceExpr>(E);
      const Term *Acc = nullptr;
      for (const ChoiceBranch &B : C->branches()) {
        const Term *Guarded =
            Bpa.seq(Bpa.action(Label::comm(B.Guard)), visit(B.Body));
        Acc = Acc ? Bpa.sum(Acc, Guarded) : Guarded;
      }
      return Acc ? Acc : Bpa.nil();
    }
    case ExprKind::Request: {
      const auto *R = cast<RequestExpr>(E);
      return Bpa.seq(
          Bpa.action(Label::open(R->request(), R->policy())),
          Bpa.seq(visit(R->body()),
                  Bpa.action(Label::close(R->request(), R->policy()))));
    }
    case ExprKind::Framing: {
      const auto *F = cast<FramingExpr>(E);
      return Bpa.seq(
          Bpa.action(Label::frameOpen(F->policy())),
          Bpa.seq(visit(F->body()),
                  Bpa.action(Label::frameClose(F->policy()))));
    }
    case ExprKind::CloseMark: {
      const auto *C = cast<CloseMarkExpr>(E);
      return Bpa.action(Label::close(C->request(), C->policy()));
    }
    case ExprKind::FrameOpen:
      return Bpa.action(
          Label::frameOpen(cast<FrameOpenExpr>(E)->policy()));
    case ExprKind::FrameClose:
      return Bpa.action(
          Label::frameClose(cast<FrameCloseExpr>(E)->policy()));
    }
    return Bpa.nil();
  }

private:
  BpaContext &Bpa;
  HistContext &Ctx;
  std::map<Symbol, Symbol> VarMap;
};

} // namespace

const Term *sus::bpa::fromHist(BpaContext &Bpa, HistContext &Ctx,
                               const Expr *E) {
  Translator T(Bpa, Ctx);
  return T.visit(E);
}

BpaLts sus::bpa::toLts(BpaContext &Bpa, const Term *Root, size_t MaxStates) {
  BpaLts Lts;
  std::unordered_map<const Term *, uint32_t> Index;
  std::deque<const Term *> Work;

  auto Intern = [&](const Term *T) -> uint32_t {
    auto It = Index.find(T);
    if (It != Index.end())
      return It->second;
    uint32_t I = static_cast<uint32_t>(Lts.States.size());
    Lts.States.push_back(T);
    Lts.Edges.emplace_back();
    Index.emplace(T, I);
    Work.push_back(T);
    return I;
  };

  Intern(Root);
  while (!Work.empty()) {
    const Term *T = Work.front();
    Work.pop_front();
    uint32_t From = Index.at(T);
    for (BpaTransition &Tr : deriveBpa(Bpa, T)) {
      if (Lts.States.size() >= MaxStates && !Index.count(Tr.Target)) {
        Lts.Regular = false;
        continue;
      }
      uint32_t To = Intern(Tr.Target);
      Lts.Edges[From].push_back({Tr.L, To});
    }
  }
  return Lts;
}
