//===- bpa/Bpa.cpp - Basic Process Algebra terms ---------------------------===//

#include "bpa/Bpa.h"

#include "support/HashUtil.h"

#include <cassert>

using namespace sus;
using namespace sus::bpa;

size_t BpaContext::VecHash::operator()(
    const std::vector<uint64_t> &V) const noexcept {
  size_t Seed = V.size();
  for (uint64_t X : V)
    hashCombineValue(Seed, X);
  return Seed;
}

const Term *BpaContext::nil() {
  std::vector<uint64_t> Key = {static_cast<uint64_t>(TermKind::Nil)};
  auto It = Unique.find(Key);
  if (It != Unique.end())
    return It->second;
  const Term *T = Terms.create<NilTerm>();
  Unique.emplace(std::move(Key), T);
  return T;
}

const Term *BpaContext::action(hist::Label L) {
  std::vector<uint64_t> Key = {static_cast<uint64_t>(TermKind::Action),
                               L.hash()};
  // Label hashes may collide in principle; disambiguate by a linear scan
  // over the bucket on a miss of the exact label.
  auto It = Unique.find(Key);
  if (It != Unique.end()) {
    const auto *A = cast<ActionTerm>(It->second);
    if (A->label() == L)
      return A;
    // Extremely unlikely collision: extend the key deterministically.
    Key.push_back(0x9e3779b9);
    It = Unique.find(Key);
    if (It != Unique.end())
      return It->second;
  }
  const Term *T = Terms.create<ActionTerm>(std::move(L));
  Unique.emplace(std::move(Key), T);
  return T;
}

const Term *BpaContext::seq(const Term *Lhs, const Term *Rhs) {
  assert(Lhs && Rhs && "seq of null term");
  if (Lhs->isNil())
    return Rhs;
  if (Rhs->isNil())
    return Lhs;
  if (const auto *S = dyn_cast<SeqTerm>(Lhs))
    return seq(S->left(), seq(S->right(), Rhs));
  std::vector<uint64_t> Key = {static_cast<uint64_t>(TermKind::Seq),
                               reinterpret_cast<uint64_t>(Lhs),
                               reinterpret_cast<uint64_t>(Rhs)};
  auto It = Unique.find(Key);
  if (It != Unique.end())
    return It->second;
  const Term *T = Terms.create<SeqTerm>(Lhs, Rhs);
  Unique.emplace(std::move(Key), T);
  return T;
}

const Term *BpaContext::sum(const Term *Lhs, const Term *Rhs) {
  assert(Lhs && Rhs && "sum of null term");
  if (Lhs == Rhs)
    return Lhs;
  // Canonical order for commutativity.
  if (Rhs < Lhs)
    std::swap(Lhs, Rhs);
  std::vector<uint64_t> Key = {static_cast<uint64_t>(TermKind::Sum),
                               reinterpret_cast<uint64_t>(Lhs),
                               reinterpret_cast<uint64_t>(Rhs)};
  auto It = Unique.find(Key);
  if (It != Unique.end())
    return It->second;
  const Term *T = Terms.create<SumTerm>(Lhs, Rhs);
  Unique.emplace(std::move(Key), T);
  return T;
}

const Term *BpaContext::var(Symbol Name) {
  assert(Name.isValid() && "variable requires a name");
  std::vector<uint64_t> Key = {static_cast<uint64_t>(TermKind::Var),
                               Name.id()};
  auto It = Unique.find(Key);
  if (It != Unique.end())
    return It->second;
  const Term *T = Terms.create<VarTerm>(Name);
  Unique.emplace(std::move(Key), T);
  return T;
}

void BpaContext::define(Symbol Name, const Term *Body) {
  Defs.insert_or_assign(Name, Body);
}

const Term *BpaContext::definition(Symbol Name) const {
  auto It = Defs.find(Name);
  return It == Defs.end() ? nullptr : It->second;
}

Symbol BpaContext::freshVar(StringInterner &Interner) {
  return Interner.intern("X" + std::to_string(FreshCounter++));
}

bool sus::bpa::canTerminate(const BpaContext &Ctx, const Term *T) {
  switch (T->kind()) {
  case TermKind::Nil:
    return true;
  case TermKind::Action:
    return false;
  case TermKind::Seq: {
    const auto *S = cast<SeqTerm>(T);
    return canTerminate(Ctx, S->left()) && canTerminate(Ctx, S->right());
  }
  case TermKind::Sum: {
    const auto *S = cast<SumTerm>(T);
    return canTerminate(Ctx, S->left()) || canTerminate(Ctx, S->right());
  }
  case TermKind::Var:
    // Guarded definitions never terminate silently (they must act first);
    // we conservatively say no. Recursion in our fragment is guarded.
    return false;
  }
  return false;
}

namespace {

void deriveInto(BpaContext &Ctx, const Term *T,
                std::vector<BpaTransition> &Out, unsigned Fuel) {
  if (Fuel == 0)
    return;
  switch (T->kind()) {
  case TermKind::Nil:
    return;
  case TermKind::Action:
    Out.push_back({cast<ActionTerm>(T)->label(), Ctx.nil()});
    return;
  case TermKind::Sum: {
    const auto *S = cast<SumTerm>(T);
    deriveInto(Ctx, S->left(), Out, Fuel);
    deriveInto(Ctx, S->right(), Out, Fuel);
    return;
  }
  case TermKind::Seq: {
    const auto *S = cast<SeqTerm>(T);
    std::vector<BpaTransition> Left;
    deriveInto(Ctx, S->left(), Left, Fuel);
    for (BpaTransition &Tr : Left)
      Out.push_back({Tr.L, Ctx.seq(Tr.Target, S->right())});
    if (canTerminate(Ctx, S->left()))
      deriveInto(Ctx, S->right(), Out, Fuel);
    return;
  }
  case TermKind::Var: {
    const Term *Body = Ctx.definition(cast<VarTerm>(T)->name());
    if (!Body)
      return; // Undefined variable: stuck.
    deriveInto(Ctx, Body, Out, Fuel - 1);
    return;
  }
  }
}

} // namespace

std::vector<BpaTransition> sus::bpa::deriveBpa(BpaContext &Ctx,
                                               const Term *T) {
  std::vector<BpaTransition> Out;
  deriveInto(Ctx, T, Out, /*Fuel=*/64);
  return Out;
}

std::string sus::bpa::printTerm(const BpaContext &Ctx,
                                const StringInterner &Interner,
                                const Term *T) {
  switch (T->kind()) {
  case TermKind::Nil:
    return "0";
  case TermKind::Action:
    return cast<ActionTerm>(T)->label().str(Interner);
  case TermKind::Seq: {
    const auto *S = cast<SeqTerm>(T);
    return "(" + printTerm(Ctx, Interner, S->left()) + " . " +
           printTerm(Ctx, Interner, S->right()) + ")";
  }
  case TermKind::Sum: {
    const auto *S = cast<SumTerm>(T);
    return "(" + printTerm(Ctx, Interner, S->left()) + " + " +
           printTerm(Ctx, Interner, S->right()) + ")";
  }
  case TermKind::Var:
    return std::string(Interner.text(cast<VarTerm>(T)->name()));
  }
  return "?";
}
