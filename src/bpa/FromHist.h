//===- bpa/FromHist.h - Rendering history expressions as BPA ----*- C++ -*-===//
///
/// \file
/// The §3.1 rendering: a history expression becomes a BPA process whose
/// traces are exactly the expression's label sequences. µ-binders become
/// process-variable definitions; requests and framings expand to their
/// open/close action sandwiches.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_BPA_FROMHIST_H
#define SUS_BPA_FROMHIST_H

#include "bpa/Bpa.h"
#include "hist/HistContext.h"

namespace sus {
namespace bpa {

/// Translates \p E into \p Bpa (installing definitions for every µ) and
/// returns the root term.
const Term *fromHist(BpaContext &Bpa, hist::HistContext &Ctx,
                     const hist::Expr *E);

/// The finite-state extraction: explores the BPA transition system up to
/// \p MaxStates states.
struct BpaLts {
  std::vector<const Term *> States;
  std::vector<std::vector<std::pair<hist::Label, uint32_t>>> Edges;
  bool Regular = true; ///< False when MaxStates was hit (non-regular or
                       ///< too large to extract).
};

BpaLts toLts(BpaContext &Bpa, const Term *Root, size_t MaxStates = 1 << 16);

} // namespace bpa
} // namespace sus

#endif // SUS_BPA_FROMHIST_H
