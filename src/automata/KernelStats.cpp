//===- automata/KernelStats.cpp - Automata kernel accounting -------------===//

#include "automata/KernelStats.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <chrono>

using namespace sus;
using namespace sus::automata;

namespace {

thread_local unsigned Depth = 0;

metrics::TimeAccount &account() {
  static metrics::TimeAccount &A =
      metrics::timeAccount(KernelTimeAccountName);
  return A;
}

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

uint64_t sus::automata::kernelNanos() { return account().nanos(); }

void sus::automata::resetKernelNanos() { account().resetValue(); }

KernelTimerScope::KernelTimerScope(const char *Name)
    : StartNanos(0), Name(Name) {
  if (Depth++ == 0)
    StartNanos = nowNanos();
}

KernelTimerScope::~KernelTimerScope() {
  if (--Depth != 0)
    return;
  uint64_t EndNanos = nowNanos();
  account().add(EndNanos - StartNanos);
  if (trace::enabled())
    trace::detail::record(Name, "automata", StartNanos, EndNanos, nullptr,
                          nullptr, nullptr, 0);
}
