//===- automata/KernelStats.cpp - Automata kernel accounting -------------===//

#include "automata/KernelStats.h"

#include <atomic>
#include <chrono>

using namespace sus;
using namespace sus::automata;

namespace {

std::atomic<uint64_t> TotalNanos{0};
thread_local unsigned Depth = 0;

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

uint64_t sus::automata::kernelNanos() {
  return TotalNanos.load(std::memory_order_relaxed);
}

void sus::automata::resetKernelNanos() {
  TotalNanos.store(0, std::memory_order_relaxed);
}

KernelTimerScope::KernelTimerScope() : StartNanos(0) {
  if (Depth++ == 0)
    StartNanos = nowNanos();
}

KernelTimerScope::~KernelTimerScope() {
  if (--Depth == 0)
    TotalNanos.fetch_add(nowNanos() - StartNanos,
                         std::memory_order_relaxed);
}
