//===- automata/Ops.cpp - Automata algorithms ----------------------------===//

#include "automata/Ops.h"

#include "support/HashUtil.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <unordered_map>

using namespace sus;
using namespace sus::automata;

Dfa sus::automata::determinize(const Nfa &N) {
  Dfa Result;
  std::map<std::vector<StateId>, StateId> Index;
  std::deque<std::vector<StateId>> Work;

  auto InternState = [&](std::vector<StateId> Set) -> StateId {
    auto It = Index.find(Set);
    if (It != Index.end())
      return It->second;
    bool Accepting = false;
    for (StateId S : Set)
      if (N.isAccepting(S)) {
        Accepting = true;
        break;
      }
    StateId Id = Result.addState(Accepting);
    Index.emplace(Set, Id);
    Work.push_back(std::move(Set));
    return Id;
  };

  StateId StartId = InternState(N.epsilonClosure({N.start()}));
  Result.setStart(StartId);

  while (!Work.empty()) {
    std::vector<StateId> Set = Work.front();
    Work.pop_front();
    StateId From = Index.at(Set);

    // Group successors by symbol.
    std::map<SymbolCode, std::vector<StateId>> BySymbol;
    for (StateId S : Set)
      for (const NfaEdge &E : N.edges(S))
        BySymbol[E.Symbol].push_back(E.Target);

    for (auto &[Sym, Targets] : BySymbol) {
      StateId To = InternState(N.epsilonClosure(std::move(Targets)));
      Result.setEdge(From, Sym, To);
    }
  }
  return Result;
}

Dfa sus::automata::complete(const Dfa &D,
                            const std::set<SymbolCode> &Alphabet) {
  Dfa Result;
  for (StateId S = 0; S < D.numStates(); ++S)
    Result.addState(D.isAccepting(S));
  StateId Sink = Result.addState(false);
  Result.setStart(D.start());

  for (StateId S = 0; S < D.numStates(); ++S) {
    for (const NfaEdge &E : D.edges(S))
      Result.setEdge(S, E.Symbol, E.Target);
    for (SymbolCode Sym : Alphabet)
      if (D.step(S, Sym) == Dfa::NoState)
        Result.setEdge(S, Sym, Sink);
  }
  for (SymbolCode Sym : Alphabet)
    Result.setEdge(Sink, Sym, Sink);
  return Result;
}

Dfa sus::automata::complement(const Dfa &D,
                              const std::set<SymbolCode> &Alphabet) {
  std::set<SymbolCode> Joint = Alphabet;
  for (SymbolCode Sym : D.alphabet())
    Joint.insert(Sym);
  Dfa Completed = complete(D, Joint);
  for (StateId S = 0; S < Completed.numStates(); ++S)
    Completed.setAccepting(S, !Completed.isAccepting(S));
  return Completed;
}

namespace {

/// Shared reachable-product construction; acceptance is a callback so
/// intersection and union reuse it.
template <typename AcceptFn>
Dfa productImpl(const Dfa &A, const Dfa &B, AcceptFn Accept) {
  Dfa Result;
  std::map<std::pair<StateId, StateId>, StateId> Index;
  std::deque<std::pair<StateId, StateId>> Work;

  auto InternState = [&](StateId SA, StateId SB) -> StateId {
    auto Key = std::make_pair(SA, SB);
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    StateId Id = Result.addState(Accept(SA, SB));
    Index.emplace(Key, Id);
    Work.push_back(Key);
    return Id;
  };

  Result.setStart(InternState(A.start(), B.start()));
  while (!Work.empty()) {
    auto [SA, SB] = Work.front();
    Work.pop_front();
    StateId From = Index.at({SA, SB});
    for (const NfaEdge &E : A.edges(SA)) {
      StateId TB = B.step(SB, E.Symbol);
      if (TB == Dfa::NoState)
        continue;
      Result.setEdge(From, E.Symbol, InternState(E.Target, TB));
    }
  }
  return Result;
}

} // namespace

Dfa sus::automata::intersect(const Dfa &A, const Dfa &B) {
  return productImpl(A, B, [&](StateId SA, StateId SB) {
    return A.isAccepting(SA) && B.isAccepting(SB);
  });
}

Dfa sus::automata::unite(const Dfa &A, const Dfa &B) {
  std::set<SymbolCode> Joint = A.alphabet();
  for (SymbolCode Sym : B.alphabet())
    Joint.insert(Sym);
  Dfa CA = complete(A, Joint);
  Dfa CB = complete(B, Joint);
  return productImpl(CA, CB, [&](StateId SA, StateId SB) {
    return CA.isAccepting(SA) || CB.isAccepting(SB);
  });
}

std::optional<std::vector<SymbolCode>>
sus::automata::shortestWitness(const Dfa &D) {
  struct Pred {
    StateId From;
    SymbolCode Symbol;
  };
  std::vector<std::optional<Pred>> Preds(D.numStates());
  std::vector<bool> Seen(D.numStates(), false);
  std::deque<StateId> Work;
  Seen[D.start()] = true;
  Work.push_back(D.start());

  StateId Found = Dfa::NoState;
  if (D.isAccepting(D.start()))
    Found = D.start();

  while (Found == Dfa::NoState && !Work.empty()) {
    StateId S = Work.front();
    Work.pop_front();
    for (const NfaEdge &E : D.edges(S)) {
      if (Seen[E.Target])
        continue;
      Seen[E.Target] = true;
      Preds[E.Target] = Pred{S, E.Symbol};
      if (D.isAccepting(E.Target)) {
        Found = E.Target;
        break;
      }
      Work.push_back(E.Target);
    }
  }
  if (Found == Dfa::NoState)
    return std::nullopt;

  std::vector<SymbolCode> Word;
  for (StateId S = Found; Preds[S]; S = Preds[S]->From)
    Word.push_back(Preds[S]->Symbol);
  std::reverse(Word.begin(), Word.end());
  return Word;
}

bool sus::automata::isEmpty(const Dfa &D) {
  return !shortestWitness(D).has_value();
}

Dfa sus::automata::minimize(const Dfa &D) {
  std::set<SymbolCode> Alphabet = D.alphabet();
  Dfa C = complete(D, Alphabet);
  // Re-collect: completion may have added a sink but no new symbols.
  std::vector<SymbolCode> Syms(Alphabet.begin(), Alphabet.end());
  size_t N = C.numStates();

  // Drop unreachable states first so the partition refinement only sees the
  // live part.
  std::vector<bool> Reach(N, false);
  std::deque<StateId> Work;
  Reach[C.start()] = true;
  Work.push_back(C.start());
  while (!Work.empty()) {
    StateId S = Work.front();
    Work.pop_front();
    for (const NfaEdge &E : C.edges(S))
      if (!Reach[E.Target]) {
        Reach[E.Target] = true;
        Work.push_back(E.Target);
      }
  }

  // Moore-style partition refinement (O(n^2 * |Σ|) worst case, simple and
  // deterministic; automata here are small).
  std::vector<unsigned> Class(N, 0);
  for (StateId S = 0; S < N; ++S)
    Class[S] = C.isAccepting(S) ? 1 : 0;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Signature of a state: (class, class of successor per symbol).
    std::map<std::vector<unsigned>, unsigned> SigIndex;
    std::vector<unsigned> NewClass(N, 0);
    for (StateId S = 0; S < N; ++S) {
      if (!Reach[S])
        continue;
      std::vector<unsigned> Sig;
      Sig.reserve(Syms.size() + 1);
      Sig.push_back(Class[S]);
      for (SymbolCode Sym : Syms) {
        StateId T = C.step(S, Sym);
        assert(T != Dfa::NoState && "completed DFA must be total");
        Sig.push_back(Class[T]);
      }
      auto [It, Inserted] =
          SigIndex.emplace(std::move(Sig), SigIndex.size());
      (void)Inserted;
      NewClass[S] = It->second;
    }
    for (StateId S = 0; S < N; ++S)
      if (Reach[S] && NewClass[S] != Class[S])
        Changed = true;
    Class = std::move(NewClass);
  }

  // Build the quotient automaton over reachable classes.
  std::map<unsigned, StateId> ClassState;
  Dfa Result;
  auto InternClass = [&](StateId Rep) -> StateId {
    unsigned Cl = Class[Rep];
    auto It = ClassState.find(Cl);
    if (It != ClassState.end())
      return It->second;
    StateId Id = Result.addState(C.isAccepting(Rep));
    ClassState.emplace(Cl, Id);
    return Id;
  };

  Result.setStart(InternClass(C.start()));
  for (StateId S = 0; S < N; ++S) {
    if (!Reach[S])
      continue;
    StateId From = InternClass(S);
    for (SymbolCode Sym : Syms) {
      StateId T = C.step(S, Sym);
      Result.setEdge(From, Sym, InternClass(T));
    }
  }
  return Result;
}

bool sus::automata::equivalent(const Dfa &A, const Dfa &B) {
  std::set<SymbolCode> Joint = A.alphabet();
  for (SymbolCode Sym : B.alphabet())
    Joint.insert(Sym);
  Dfa NotB = complement(B, Joint);
  if (!isEmpty(intersect(A, NotB)))
    return false;
  Dfa NotA = complement(A, Joint);
  return isEmpty(intersect(B, NotA));
}
