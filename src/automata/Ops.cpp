//===- automata/Ops.cpp - Automata algorithms ----------------------------===//

#include "automata/Ops.h"

#include "automata/KernelStats.h"
#include "support/HashUtil.h"
#include "support/ResourceGovernor.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace sus;
using namespace sus::automata;

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

/// Hash for bitset keys (state sets as packed words).
struct WordsHash {
  size_t operator()(const std::vector<uint64_t> &V) const noexcept {
    size_t Seed = V.size();
    for (uint64_t X : V)
      hashCombineValue(Seed, X);
    return Seed;
  }
};

/// Hash for packed (StateId, StateId) product keys.
struct PairKeyHash {
  size_t operator()(uint64_t Key) const noexcept { return hashAll(Key); }
};

inline bool testBit(const uint64_t *Words, StateId S) {
  return (Words[S >> 6] >> (S & 63)) & 1;
}

inline void setBit(uint64_t *Words, StateId S) {
  Words[S >> 6] |= uint64_t(1) << (S & 63);
}

/// Calls \p F with every set bit, ascending.
template <typename Fn>
void forEachBit(const uint64_t *Words, size_t NumWords, Fn F) {
  for (size_t W = 0; W < NumWords; ++W) {
    uint64_t Bits = Words[W];
    while (Bits) {
      unsigned B = static_cast<unsigned>(__builtin_ctzll(Bits));
      Bits &= Bits - 1;
      F(static_cast<StateId>(W * 64 + B));
    }
  }
}

/// Packs a product pair into one hash-map key. The second component may be
/// Dfa::NoState (the implicit dead state of a virtual completion).
inline uint64_t packPair(StateId SA, StateId SB) {
  return (uint64_t(SA) << 32) | SB;
}

/// Loop-granularity governor poll; a null governor costs one branch.
inline std::optional<ResourceExhausted> pollGov(const ResourceGovernor *Gov) {
  return Gov ? Gov->poll() : std::nullopt;
}

/// Charges the \p Spent-th materialized state against the \p K budget.
inline std::optional<ResourceExhausted>
chargeGov(const ResourceGovernor *Gov, ResourceKind K, uint64_t Spent) {
  return Gov ? Gov->charge(K, Spent) : std::nullopt;
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinization
//===----------------------------------------------------------------------===//

namespace {

Outcome<Dfa> determinizeImpl(const Nfa &N, const ResourceGovernor *Gov) {
  SUS_AUDIT_AUTOMATON(N);
  KernelTimerScope Timer("automata.determinize");
  if (auto E = pollGov(Gov))
    return *E;
  Dfa Result;
  const std::vector<SymbolCode> &Syms = N.alphabet();
  const uint32_t K = static_cast<uint32_t>(Syms.size());
  Result.reserveAlphabet(Syms);

  const size_t NS = N.numStates();
  if (NS == 0) {
    // Empty automaton: the empty language, as a single rejecting state.
    Result.setStart(Result.addState(false));
    return Result;
  }
  const size_t W64 = (NS + 63) / 64;

  // Dense symbol index per NFA edge, flattened per state (CSR). Symbols are
  // ranked by code, so index order == symbol order.
  std::vector<uint32_t> EdgeOff(NS + 1, 0);
  for (StateId S = 0; S < NS; ++S)
    EdgeOff[S + 1] =
        EdgeOff[S] + static_cast<uint32_t>(N.edges(S).size());
  std::vector<std::pair<uint32_t, StateId>> EdgeDat(EdgeOff[NS]);
  {
    const AlphabetMap &Map = Result.alphabetMap();
    for (StateId S = 0; S < NS; ++S) {
      uint32_t Cursor = EdgeOff[S];
      for (const NfaEdge &E : N.edges(S))
        EdgeDat[Cursor++] = {Map.indexOf(E.Symbol), E.Target};
    }
  }

  // Accepting states as a bitset.
  std::vector<uint64_t> AccBits(W64, 0);
  for (StateId S = 0; S < NS; ++S)
    if (N.isAccepting(S))
      setBit(AccBits.data(), S);

  bool HasEps = false;
  for (StateId S = 0; S < NS && !HasEps; ++S)
    HasEps = !N.epsilons(S).empty();

  // In-place epsilon closure over a bitset.
  std::vector<StateId> CloseWork;
  auto Close = [&](std::vector<uint64_t> &Set) {
    if (!HasEps)
      return;
    CloseWork.clear();
    forEachBit(Set.data(), W64, [&](StateId S) { CloseWork.push_back(S); });
    while (!CloseWork.empty()) {
      StateId S = CloseWork.back();
      CloseWork.pop_back();
      for (StateId T : N.epsilons(S))
        if (!testBit(Set.data(), T)) {
          setBit(Set.data(), T);
          CloseWork.push_back(T);
        }
    }
  };

  auto IsAcceptingSet = [&](const std::vector<uint64_t> &Set) {
    for (size_t W = 0; W < W64; ++W)
      if (Set[W] & AccBits[W])
        return true;
    return false;
  };

  std::unordered_map<std::vector<uint64_t>, StateId, WordsHash> Index;
  std::deque<std::vector<uint64_t>> Work;

  std::optional<ResourceExhausted> Trip;
  auto InternState = [&](std::vector<uint64_t> Set) -> StateId {
    auto It = Index.find(Set);
    if (It != Index.end())
      return It->second;
    if (auto E = chargeGov(Gov, ResourceKind::SubsetStates,
                           Result.numStates() + 1)) {
      Trip = E;
      return Dfa::NoState;
    }
    StateId Id = Result.addState(IsAcceptingSet(Set));
    Index.emplace(Set, Id);
    Work.push_back(std::move(Set));
    return Id;
  };

  std::vector<uint64_t> StartSet(W64, 0);
  setBit(StartSet.data(), N.start());
  Close(StartSet);
  StateId StartId = InternState(std::move(StartSet));
  if (Trip)
    return *Trip;
  Result.setStart(StartId);

  // Per-symbol successor buffers, reused across iterations; only the
  // touched slices are cleared.
  std::vector<uint64_t> Buf(size_t(K) * W64, 0);
  std::vector<uint8_t> SymTouched(K, 0);
  std::vector<uint32_t> Touched;

  while (!Work.empty()) {
    if (auto E = pollGov(Gov))
      return *E;
    std::vector<uint64_t> Set = std::move(Work.front());
    Work.pop_front();
    StateId From = Index.at(Set);

    Touched.clear();
    forEachBit(Set.data(), W64, [&](StateId S) {
      for (uint32_t E = EdgeOff[S]; E < EdgeOff[S + 1]; ++E) {
        auto [SymIdx, Target] = EdgeDat[E];
        if (!SymTouched[SymIdx]) {
          SymTouched[SymIdx] = 1;
          Touched.push_back(SymIdx);
        }
        setBit(Buf.data() + size_t(SymIdx) * W64, Target);
      }
    });
    // Ascending symbol order keeps the discovery numbering deterministic
    // (and identical to the classic by-symbol-map construction).
    std::sort(Touched.begin(), Touched.end());

    for (uint32_t SymIdx : Touched) {
      uint64_t *Slice = Buf.data() + size_t(SymIdx) * W64;
      std::vector<uint64_t> Next(Slice, Slice + W64);
      std::fill(Slice, Slice + W64, 0);
      SymTouched[SymIdx] = 0;
      Close(Next);
      StateId To = InternState(std::move(Next));
      if (Trip)
        return *Trip;
      Result.setEdge(From, Syms[SymIdx], To);
    }
  }
  return Result;
}

} // namespace

Dfa sus::automata::determinize(const Nfa &N) {
  return determinizeImpl(N, nullptr).takeValue();
}

Outcome<Dfa> sus::automata::determinize(const Nfa &N,
                                        const ResourceGovernor &Gov) {
  return determinizeImpl(N, &Gov);
}

//===----------------------------------------------------------------------===//
// Completion and complement
//===----------------------------------------------------------------------===//

Dfa sus::automata::complete(const Dfa &D,
                            const std::vector<SymbolCode> &Alphabet) {
  SUS_AUDIT_AUTOMATON(D);
  assert(std::is_sorted(Alphabet.begin(), Alphabet.end()) &&
         "alphabet must be sorted");
  KernelTimerScope Timer("automata.complete");
  Dfa Result;
  std::vector<SymbolCode> All;
  std::set_union(Alphabet.begin(), Alphabet.end(), D.alphabet().begin(),
                 D.alphabet().end(), std::back_inserter(All));
  Result.reserveAlphabet(All);

  const StateId N = static_cast<StateId>(D.numStates());
  for (StateId S = 0; S < N; ++S)
    Result.addState(D.isAccepting(S));
  StateId Sink = Result.addState(false);
  Result.setStart(D.start());

  for (StateId S = 0; S < N; ++S) {
    for (const NfaEdge &E : D.edges(S))
      Result.setEdge(S, E.Symbol, E.Target);
    for (SymbolCode Sym : Alphabet)
      if (D.step(S, Sym) == Dfa::NoState)
        Result.setEdge(S, Sym, Sink);
  }
  for (SymbolCode Sym : Alphabet)
    Result.setEdge(Sink, Sym, Sink);
  return Result;
}

Dfa sus::automata::complement(const Dfa &D,
                              const std::vector<SymbolCode> &Alphabet) {
  SUS_AUDIT_AUTOMATON(D);
  assert(std::is_sorted(Alphabet.begin(), Alphabet.end()) &&
         "alphabet must be sorted");
  KernelTimerScope Timer("automata.complement");
  std::vector<SymbolCode> Joint;
  std::set_union(Alphabet.begin(), Alphabet.end(), D.alphabet().begin(),
                 D.alphabet().end(), std::back_inserter(Joint));
  Dfa Completed = complete(D, Joint);
  for (StateId S = 0; S < Completed.numStates(); ++S)
    Completed.setAccepting(S, !Completed.isAccepting(S));
  return Completed;
}

//===----------------------------------------------------------------------===//
// Products
//===----------------------------------------------------------------------===//

namespace {

/// Shared reachable-product construction; acceptance is a callback so
/// intersection and union reuse it. Pairs are interned through a hashed
/// index; the BFS follows A's edges in ascending symbol order, so the
/// result numbering is the deterministic discovery order.
template <typename AcceptFn>
Outcome<Dfa> productImpl(const Dfa &A, const Dfa &B, AcceptFn Accept,
                         const ResourceGovernor *Gov) {
  if (auto E = pollGov(Gov))
    return *E;
  Dfa Result;
  Result.reserveAlphabet(A.alphabet());
  if (A.numStates() == 0 || B.numStates() == 0) {
    // One operand is the empty automaton: the intersection is empty.
    Result.setStart(Result.addState(false));
    return Result;
  }

  std::unordered_map<uint64_t, StateId, PairKeyHash> Index;
  std::deque<uint64_t> Work;

  std::optional<ResourceExhausted> Trip;
  auto InternState = [&](StateId SA, StateId SB) -> StateId {
    uint64_t Key = packPair(SA, SB);
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    if (auto E = chargeGov(Gov, ResourceKind::ProductStates,
                           Result.numStates() + 1)) {
      Trip = E;
      return Dfa::NoState;
    }
    StateId Id = Result.addState(Accept(SA, SB));
    Index.emplace(Key, Id);
    Work.push_back(Key);
    return Id;
  };

  StateId StartId = InternState(A.start(), B.start());
  if (Trip)
    return *Trip;
  Result.setStart(StartId);
  while (!Work.empty()) {
    if (auto E = pollGov(Gov))
      return *E;
    uint64_t Key = Work.front();
    Work.pop_front();
    StateId SA = static_cast<StateId>(Key >> 32);
    StateId SB = static_cast<StateId>(Key);
    StateId From = Index.at(Key);
    for (const NfaEdge &E : A.edges(SA)) {
      StateId TB = B.step(SB, E.Symbol);
      if (TB == Dfa::NoState)
        continue;
      StateId To = InternState(E.Target, TB);
      if (Trip)
        return *Trip;
      Result.setEdge(From, E.Symbol, To);
    }
  }
  return Result;
}

template <typename AcceptFn>
Outcome<Dfa> intersectImpl(const Dfa &A, const Dfa &B, AcceptFn Accept,
                           const ResourceGovernor *Gov) {
  SUS_AUDIT_AUTOMATON(A);
  SUS_AUDIT_AUTOMATON(B);
  KernelTimerScope Timer("automata.intersect");
  return productImpl(A, B, Accept, Gov);
}

} // namespace

Dfa sus::automata::intersect(const Dfa &A, const Dfa &B) {
  auto Accept = [&](StateId SA, StateId SB) {
    return A.isAccepting(SA) && B.isAccepting(SB);
  };
  return intersectImpl(A, B, Accept, nullptr).takeValue();
}

Outcome<Dfa> sus::automata::intersect(const Dfa &A, const Dfa &B,
                                      const ResourceGovernor &Gov) {
  auto Accept = [&](StateId SA, StateId SB) {
    return A.isAccepting(SA) && B.isAccepting(SB);
  };
  return intersectImpl(A, B, Accept, &Gov);
}

Dfa sus::automata::unite(const Dfa &A, const Dfa &B) {
  SUS_AUDIT_AUTOMATON(A);
  SUS_AUDIT_AUTOMATON(B);
  KernelTimerScope Timer("automata.unite");
  std::vector<SymbolCode> Joint;
  std::set_union(A.alphabet().begin(), A.alphabet().end(),
                 B.alphabet().begin(), B.alphabet().end(),
                 std::back_inserter(Joint));
  Dfa CA = complete(A, Joint);
  Dfa CB = complete(B, Joint);
  return productImpl(
             CA, CB,
             [&](StateId SA, StateId SB) {
               return CA.isAccepting(SA) || CB.isAccepting(SB);
             },
             nullptr)
      .takeValue();
}

//===----------------------------------------------------------------------===//
// Emptiness and witnesses
//===----------------------------------------------------------------------===//

std::optional<std::vector<SymbolCode>>
sus::automata::shortestWitness(const Dfa &D) {
  SUS_AUDIT_AUTOMATON(D);
  KernelTimerScope Timer("automata.shortestWitness");
  if (D.numStates() == 0)
    return std::nullopt;
  struct Pred {
    StateId From;
    SymbolCode Symbol;
  };
  std::vector<std::optional<Pred>> Preds(D.numStates());
  std::vector<bool> Seen(D.numStates(), false);
  std::deque<StateId> Work;
  Seen[D.start()] = true;
  Work.push_back(D.start());

  StateId Found = Dfa::NoState;
  if (D.isAccepting(D.start()))
    Found = D.start();

  while (Found == Dfa::NoState && !Work.empty()) {
    StateId S = Work.front();
    Work.pop_front();
    for (const NfaEdge &E : D.edges(S)) {
      if (Seen[E.Target])
        continue;
      Seen[E.Target] = true;
      Preds[E.Target] = Pred{S, E.Symbol};
      if (D.isAccepting(E.Target)) {
        Found = E.Target;
        break;
      }
      Work.push_back(E.Target);
    }
  }
  if (Found == Dfa::NoState)
    return std::nullopt;

  std::vector<SymbolCode> Word;
  for (StateId S = Found; Preds[S]; S = Preds[S]->From)
    Word.push_back(Preds[S]->Symbol);
  std::reverse(Word.begin(), Word.end());
  return Word;
}

bool sus::automata::isEmpty(const Dfa &D) {
  SUS_AUDIT_AUTOMATON(D);
  KernelTimerScope Timer("automata.isEmpty");
  if (D.numStates() == 0)
    return true;
  if (D.isAccepting(D.start()))
    return false;
  std::vector<bool> Seen(D.numStates(), false);
  std::deque<StateId> Work;
  Seen[D.start()] = true;
  Work.push_back(D.start());
  while (!Work.empty()) {
    StateId S = Work.front();
    Work.pop_front();
    for (const NfaEdge &E : D.edges(S)) {
      if (Seen[E.Target])
        continue;
      if (D.isAccepting(E.Target))
        return false;
      Seen[E.Target] = true;
      Work.push_back(E.Target);
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// On-the-fly product emptiness
//===----------------------------------------------------------------------===//

namespace {

/// The implicit dead state of a virtually-completed operand: a pair's
/// second component is DeadSide once B fell off its transition table.
constexpr StateId DeadSide = Dfa::NoState;

} // namespace

namespace {

Outcome<bool> intersectIsEmptyImpl(const Dfa &A, const Dfa &B,
                                   const ResourceGovernor *Gov) {
  SUS_AUDIT_AUTOMATON(A);
  SUS_AUDIT_AUTOMATON(B);
  KernelTimerScope Timer("automata.intersectIsEmpty");
  if (auto E = pollGov(Gov))
    return *E;
  if (A.numStates() == 0 || B.numStates() == 0)
    return true;
  if (A.isAccepting(A.start()) && B.isAccepting(B.start()))
    return false;
  std::unordered_set<uint64_t, PairKeyHash> Seen;
  std::deque<uint64_t> Work;
  Seen.insert(packPair(A.start(), B.start()));
  Work.push_back(packPair(A.start(), B.start()));
  while (!Work.empty()) {
    if (auto E = pollGov(Gov))
      return *E;
    uint64_t Key = Work.front();
    Work.pop_front();
    StateId SA = static_cast<StateId>(Key >> 32);
    StateId SB = static_cast<StateId>(Key);
    for (const NfaEdge &E : A.edges(SA)) {
      StateId TB = B.step(SB, E.Symbol);
      if (TB == Dfa::NoState)
        continue;
      uint64_t Next = packPair(E.Target, TB);
      if (!Seen.insert(Next).second)
        continue;
      if (auto Ex = chargeGov(Gov, ResourceKind::ProductStates, Seen.size()))
        return *Ex;
      if (A.isAccepting(E.Target) && B.isAccepting(TB))
        return false;
      Work.push_back(Next);
    }
  }
  return true;
}

} // namespace

bool sus::automata::intersectIsEmpty(const Dfa &A, const Dfa &B) {
  return intersectIsEmptyImpl(A, B, nullptr).takeValue();
}

Outcome<bool> sus::automata::intersectIsEmpty(const Dfa &A, const Dfa &B,
                                              const ResourceGovernor &Gov) {
  return intersectIsEmptyImpl(A, B, &Gov);
}

namespace {

Outcome<std::optional<std::vector<SymbolCode>>>
intersectWitnessImpl(const Dfa &A, const Dfa &B, const ResourceGovernor *Gov) {
  using Witness = std::optional<std::vector<SymbolCode>>;
  SUS_AUDIT_AUTOMATON(A);
  SUS_AUDIT_AUTOMATON(B);
  KernelTimerScope Timer("automata.intersectWitness");
  if (auto E = pollGov(Gov))
    return *E;
  if (A.numStates() == 0 || B.numStates() == 0)
    return Witness(std::nullopt);

  // Mirrors shortestWitness over the materialized product: same BFS
  // discovery order (A's edges ascending), same predecessor tree, hence
  // bit-for-bit the same shortest word.
  struct Node {
    uint64_t Key;
    uint32_t Pred; ///< Index of the predecessor node, or ~0u at the start.
    SymbolCode Symbol;
  };
  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, uint32_t, PairKeyHash> Index;
  std::deque<uint32_t> Work;

  uint64_t StartKey = packPair(A.start(), B.start());
  Nodes.push_back({StartKey, ~0u, 0});
  Index.emplace(StartKey, 0);
  Work.push_back(0);

  uint32_t Found = ~0u;
  if (A.isAccepting(A.start()) && B.isAccepting(B.start()))
    Found = 0;

  while (Found == ~0u && !Work.empty()) {
    if (auto E = pollGov(Gov))
      return *E;
    uint32_t I = Work.front();
    Work.pop_front();
    uint64_t Key = Nodes[I].Key;
    StateId SA = static_cast<StateId>(Key >> 32);
    StateId SB = static_cast<StateId>(Key);
    for (const NfaEdge &E : A.edges(SA)) {
      StateId TB = B.step(SB, E.Symbol);
      if (TB == Dfa::NoState)
        continue;
      uint64_t Next = packPair(E.Target, TB);
      if (Index.find(Next) != Index.end())
        continue;
      if (auto Ex = chargeGov(Gov, ResourceKind::ProductStates,
                              Nodes.size() + 1))
        return *Ex;
      uint32_t J = static_cast<uint32_t>(Nodes.size());
      Nodes.push_back({Next, I, E.Symbol});
      Index.emplace(Next, J);
      if (A.isAccepting(E.Target) && B.isAccepting(TB)) {
        Found = J;
        break;
      }
      Work.push_back(J);
    }
  }
  if (Found == ~0u)
    return Witness(std::nullopt);

  std::vector<SymbolCode> Word;
  for (uint32_t I = Found; Nodes[I].Pred != ~0u; I = Nodes[I].Pred)
    Word.push_back(Nodes[I].Symbol);
  std::reverse(Word.begin(), Word.end());
  return Witness(std::move(Word));
}

} // namespace

std::optional<std::vector<SymbolCode>>
sus::automata::intersectWitness(const Dfa &A, const Dfa &B) {
  return intersectWitnessImpl(A, B, nullptr).takeValue();
}

Outcome<std::optional<std::vector<SymbolCode>>>
sus::automata::intersectWitness(const Dfa &A, const Dfa &B,
                                const ResourceGovernor &Gov) {
  return intersectWitnessImpl(A, B, &Gov);
}

namespace {

Outcome<bool> containedInImpl(const Dfa &A, const Dfa &B,
                              const ResourceGovernor *Gov) {
  SUS_AUDIT_AUTOMATON(A);
  SUS_AUDIT_AUTOMATON(B);
  KernelTimerScope Timer("automata.containedIn");
  if (auto E = pollGov(Gov))
    return *E;
  if (A.numStates() == 0)
    return true;

  // Pairs (a, b) of the implicit product A ⊗ ¬B, where b == DeadSide once
  // B has fallen off (the virtual completion's sink, which ¬B accepts).
  auto Counterexample = [&](StateId SA, StateId SB) {
    return A.isAccepting(SA) && (SB == DeadSide || !B.isAccepting(SB));
  };

  StateId SB0 = B.numStates() == 0 ? DeadSide : B.start();
  if (Counterexample(A.start(), SB0))
    return false;
  std::unordered_set<uint64_t, PairKeyHash> Seen;
  std::deque<uint64_t> Work;
  Seen.insert(packPair(A.start(), SB0));
  Work.push_back(packPair(A.start(), SB0));
  while (!Work.empty()) {
    if (auto E = pollGov(Gov))
      return *E;
    uint64_t Key = Work.front();
    Work.pop_front();
    StateId SA = static_cast<StateId>(Key >> 32);
    StateId SB = static_cast<StateId>(Key);
    for (const NfaEdge &E : A.edges(SA)) {
      StateId TB = SB == DeadSide ? DeadSide : B.step(SB, E.Symbol);
      uint64_t Next = packPair(E.Target, TB);
      if (!Seen.insert(Next).second)
        continue;
      if (auto Ex = chargeGov(Gov, ResourceKind::ProductStates, Seen.size()))
        return *Ex;
      if (Counterexample(E.Target, TB))
        return false;
      Work.push_back(Next);
    }
  }
  return true;
}

} // namespace

bool sus::automata::containedIn(const Dfa &A, const Dfa &B) {
  return containedInImpl(A, B, nullptr).takeValue();
}

Outcome<bool> sus::automata::containedIn(const Dfa &A, const Dfa &B,
                                         const ResourceGovernor &Gov) {
  return containedInImpl(A, B, &Gov);
}

namespace {

Outcome<std::optional<std::vector<SymbolCode>>>
differenceWitnessImpl(const Dfa &A, const Dfa &B, const ResourceGovernor *Gov) {
  using Witness = std::optional<std::vector<SymbolCode>>;
  SUS_AUDIT_AUTOMATON(A);
  SUS_AUDIT_AUTOMATON(B);
  KernelTimerScope Timer("automata.differenceWitness");
  if (auto E = pollGov(Gov))
    return *E;
  if (A.numStates() == 0)
    return Witness(std::nullopt);

  auto Counterexample = [&](StateId SA, StateId SB) {
    return A.isAccepting(SA) && (SB == DeadSide || !B.isAccepting(SB));
  };

  struct Node {
    uint64_t Key;
    uint32_t Pred;
    SymbolCode Symbol;
  };
  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, uint32_t, PairKeyHash> Index;
  std::deque<uint32_t> Work;

  StateId SB0 = B.numStates() == 0 ? DeadSide : B.start();
  uint64_t StartKey = packPair(A.start(), SB0);
  Nodes.push_back({StartKey, ~0u, 0});
  Index.emplace(StartKey, 0);
  Work.push_back(0);

  uint32_t Found = ~0u;
  if (Counterexample(A.start(), SB0))
    Found = 0;

  while (Found == ~0u && !Work.empty()) {
    if (auto E = pollGov(Gov))
      return *E;
    uint32_t I = Work.front();
    Work.pop_front();
    uint64_t Key = Nodes[I].Key;
    StateId SA = static_cast<StateId>(Key >> 32);
    StateId SB = static_cast<StateId>(Key);
    for (const NfaEdge &E : A.edges(SA)) {
      StateId TB = SB == DeadSide ? DeadSide : B.step(SB, E.Symbol);
      uint64_t Next = packPair(E.Target, TB);
      if (Index.find(Next) != Index.end())
        continue;
      if (auto Ex = chargeGov(Gov, ResourceKind::ProductStates,
                              Nodes.size() + 1))
        return *Ex;
      uint32_t J = static_cast<uint32_t>(Nodes.size());
      Nodes.push_back({Next, I, E.Symbol});
      Index.emplace(Next, J);
      if (Counterexample(E.Target, TB)) {
        Found = J;
        break;
      }
      Work.push_back(J);
    }
  }
  if (Found == ~0u)
    return Witness(std::nullopt);

  std::vector<SymbolCode> Word;
  for (uint32_t I = Found; Nodes[I].Pred != ~0u; I = Nodes[I].Pred)
    Word.push_back(Nodes[I].Symbol);
  std::reverse(Word.begin(), Word.end());
  return Witness(std::move(Word));
}

} // namespace

std::optional<std::vector<SymbolCode>>
sus::automata::differenceWitness(const Dfa &A, const Dfa &B) {
  return differenceWitnessImpl(A, B, nullptr).takeValue();
}

Outcome<std::optional<std::vector<SymbolCode>>>
sus::automata::differenceWitness(const Dfa &A, const Dfa &B,
                                 const ResourceGovernor &Gov) {
  return differenceWitnessImpl(A, B, &Gov);
}

//===----------------------------------------------------------------------===//
// Minimization (Hopcroft)
//===----------------------------------------------------------------------===//

namespace {

/// Hopcroft partition refinement over a complete DFA given as a dense
/// next-state table (\p Next, M states × K symbols). Returns the block id
/// of every state; blocks are the Myhill–Nerode classes. O(K·M·log M).
std::vector<uint32_t> hopcroftPartition(uint32_t M, uint32_t K,
                                        const std::vector<uint32_t> &Next,
                                        const std::vector<bool> &Acc,
                                        const ResourceGovernor *Gov,
                                        std::optional<ResourceExhausted> &Trip) {
  // Inverse transitions, CSR per symbol: bucket (a, t) holds the states s
  // with Next[s·K + a] == t.
  std::vector<uint32_t> InvOff(size_t(K) * M + 1, 0);
  for (uint32_t S = 0; S < M; ++S)
    for (uint32_t A = 0; A < K; ++A)
      ++InvOff[size_t(A) * M + Next[size_t(S) * K + A] + 1];
  for (size_t I = 1; I < InvOff.size(); ++I)
    InvOff[I] += InvOff[I - 1];
  std::vector<uint32_t> InvDat(size_t(M) * K);
  {
    std::vector<uint32_t> Cursor(InvOff.begin(), InvOff.end() - 1);
    for (uint32_t S = 0; S < M; ++S)
      for (uint32_t A = 0; A < K; ++A)
        InvDat[Cursor[size_t(A) * M + Next[size_t(S) * K + A]]++] = S;
  }

  // Refinable partition: Elems is a permutation of states grouped by
  // block; each block is the range [First[b], Past[b]) with a marked
  // prefix of MarkedCnt[b] elements.
  std::vector<uint32_t> Elems(M), Loc(M), Blk(M);
  std::vector<uint32_t> First, Past, MarkedCnt;

  uint32_t NumAcc = 0;
  for (uint32_t S = 0; S < M; ++S)
    NumAcc += Acc[S];
  {
    uint32_t NonPos = 0, AccPos = M - NumAcc;
    for (uint32_t S = 0; S < M; ++S) {
      uint32_t P = Acc[S] ? AccPos++ : NonPos++;
      Elems[P] = S;
      Loc[S] = P;
    }
  }
  if (NumAcc == 0 || NumAcc == M) {
    First = {0};
    Past = {M};
    MarkedCnt = {0};
    for (uint32_t S = 0; S < M; ++S)
      Blk[S] = 0;
    return Blk; // No observation distinguishes any two states.
  }
  First = {0, M - NumAcc};
  Past = {M - NumAcc, M};
  MarkedCnt = {0, 0};
  for (uint32_t S = 0; S < M; ++S)
    Blk[S] = Acc[S] ? 1 : 0;

  // Splitter worklist, encoded block·K + symbol.
  std::vector<uint8_t> InW(size_t(M) * K, 0);
  std::vector<uint64_t> WL;
  uint32_t Smaller = NumAcc <= M - NumAcc ? 1 : 0;
  for (uint32_t A = 0; A < K; ++A) {
    InW[size_t(Smaller) * K + A] = 1;
    WL.push_back(uint64_t(Smaller) * K + A);
  }

  std::vector<uint32_t> Pre, TouchedBlocks;
  while (!WL.empty()) {
    if (auto E = pollGov(Gov)) {
      Trip = E;
      return Blk;
    }
    uint64_t Enc = WL.back();
    WL.pop_back();
    uint32_t B = static_cast<uint32_t>(Enc / K);
    uint32_t A = static_cast<uint32_t>(Enc % K);
    InW[Enc] = 0;

    // Gather the preimage of block B under symbol A before any swapping.
    Pre.clear();
    for (uint32_t I = First[B]; I < Past[B]; ++I) {
      uint32_t T = Elems[I];
      for (uint32_t J = InvOff[size_t(A) * M + T];
           J < InvOff[size_t(A) * M + T + 1]; ++J)
        Pre.push_back(InvDat[J]);
    }

    // Mark: move preimage members to the front of their blocks.
    for (uint32_t S : Pre) {
      uint32_t SB = Blk[S];
      uint32_t MPos = First[SB] + MarkedCnt[SB];
      if (Loc[S] < MPos)
        continue; // Already marked.
      if (MarkedCnt[SB] == 0)
        TouchedBlocks.push_back(SB);
      uint32_t Other = Elems[MPos];
      Elems[MPos] = S;
      Elems[Loc[S]] = Other;
      Loc[Other] = Loc[S];
      Loc[S] = MPos;
      ++MarkedCnt[SB];
    }

    // Split every touched block into (marked | unmarked).
    for (uint32_t SB : TouchedBlocks) {
      uint32_t Cnt = MarkedCnt[SB];
      MarkedCnt[SB] = 0;
      if (Cnt == Past[SB] - First[SB])
        continue; // Whole block in the preimage: nothing to split.
      uint32_t NB = static_cast<uint32_t>(First.size());
      First.push_back(First[SB]);
      Past.push_back(First[SB] + Cnt);
      MarkedCnt.push_back(0);
      First[SB] += Cnt; // Old id keeps the unmarked part.
      for (uint32_t I = First[NB]; I < Past[NB]; ++I)
        Blk[Elems[I]] = NB;

      uint32_t SizeOld = Past[SB] - First[SB];
      uint32_t SizeNew = Cnt;
      for (uint32_t C = 0; C < K; ++C) {
        uint64_t EncOld = uint64_t(SB) * K + C;
        uint64_t EncNew = uint64_t(NB) * K + C;
        if (InW[EncOld]) {
          // (old block, C) is pending: both halves must be processed.
          InW[EncNew] = 1;
          WL.push_back(EncNew);
        } else {
          // Hopcroft's trick: the smaller half suffices.
          uint64_t EncSmall = SizeNew <= SizeOld ? EncNew : EncOld;
          InW[EncSmall] = 1;
          WL.push_back(EncSmall);
        }
      }
    }
    TouchedBlocks.clear();
  }
  return Blk;
}

} // namespace

namespace {

Outcome<Dfa> minimizeImpl(const Dfa &D, const ResourceGovernor *Gov) {
  SUS_AUDIT_AUTOMATON(D);
  KernelTimerScope Timer("automata.minimize");
  if (auto E = pollGov(Gov))
    return *E;
  const std::vector<SymbolCode> &Alphabet = D.alphabet();
  Dfa C = complete(D, Alphabet);
  const uint32_t K = static_cast<uint32_t>(Alphabet.size());
  const uint32_t N = static_cast<uint32_t>(C.numStates());

  // Drop unreachable states first so the partition refinement only sees
  // the live part.
  std::vector<bool> Reach(N, false);
  std::deque<StateId> BfsWork;
  Reach[C.start()] = true;
  BfsWork.push_back(C.start());
  while (!BfsWork.empty()) {
    if (auto E = pollGov(Gov))
      return *E;
    StateId S = BfsWork.front();
    BfsWork.pop_front();
    for (const NfaEdge &E : C.edges(S))
      if (!Reach[E.Target]) {
        Reach[E.Target] = true;
        BfsWork.push_back(E.Target);
      }
  }

  // Compact the reachable part (ascending id order, for determinism).
  std::vector<StateId> Compact;
  std::vector<uint32_t> ToCompact(N, ~0u);
  for (StateId S = 0; S < N; ++S)
    if (Reach[S]) {
      ToCompact[S] = static_cast<uint32_t>(Compact.size());
      Compact.push_back(S);
    }
  const uint32_t M = static_cast<uint32_t>(Compact.size());

  std::vector<uint32_t> Next(size_t(M) * K);
  std::vector<bool> Acc(M);
  for (uint32_t I = 0; I < M; ++I) {
    Acc[I] = C.isAccepting(Compact[I]);
    for (uint32_t A = 0; A < K; ++A) {
      StateId T = C.stepIndex(Compact[I], A);
      assert(T != Dfa::NoState && "completed DFA must be total");
      Next[size_t(I) * K + A] = ToCompact[T];
    }
  }

  std::optional<ResourceExhausted> Trip;
  std::vector<uint32_t> Blk = hopcroftPartition(M, K, Next, Acc, Gov, Trip);
  if (Trip)
    return *Trip;

  // Build the quotient automaton over reachable classes, interned in
  // first-occurrence scan order (start first) for a deterministic result.
  Dfa Result;
  Result.reserveAlphabet(Alphabet);
  std::vector<StateId> ClassState(M, Dfa::NoState);
  auto InternClass = [&](uint32_t CompactId) -> StateId {
    uint32_t B = Blk[CompactId];
    if (ClassState[B] != Dfa::NoState)
      return ClassState[B];
    StateId Id = Result.addState(Acc[CompactId]);
    ClassState[B] = Id;
    return Id;
  };

  Result.setStart(InternClass(ToCompact[C.start()]));
  std::vector<bool> Expanded(M, false);
  for (uint32_t I = 0; I < M; ++I) {
    uint32_t B = Blk[I];
    if (Expanded[B])
      continue;
    Expanded[B] = true;
    StateId From = InternClass(I);
    for (uint32_t A = 0; A < K; ++A)
      Result.setEdge(From, Alphabet[A], InternClass(Next[size_t(I) * K + A]));
  }
  return Result;
}

} // namespace

Dfa sus::automata::minimize(const Dfa &D) {
  return minimizeImpl(D, nullptr).takeValue();
}

Outcome<Dfa> sus::automata::minimize(const Dfa &D,
                                     const ResourceGovernor &Gov) {
  return minimizeImpl(D, &Gov);
}

//===----------------------------------------------------------------------===//
// Equivalence
//===----------------------------------------------------------------------===//

bool sus::automata::equivalent(const Dfa &A, const Dfa &B) {
  KernelTimerScope Timer("automata.equivalent");
  return containedIn(A, B) && containedIn(B, A);
}

Outcome<bool> sus::automata::equivalent(const Dfa &A, const Dfa &B,
                                        const ResourceGovernor &Gov) {
  KernelTimerScope Timer("automata.equivalent");
  Outcome<bool> Forward = containedInImpl(A, B, &Gov);
  if (!Forward.ok() || !Forward.value())
    return Forward;
  return containedInImpl(B, A, &Gov);
}
