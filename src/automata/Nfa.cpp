//===- automata/Nfa.cpp - Nondeterministic finite automata ---------------===//

#include "automata/Nfa.h"

#include <algorithm>

using namespace sus;
using namespace sus::automata;

//===----------------------------------------------------------------------===//
// AlphabetMap
//===----------------------------------------------------------------------===//

std::pair<uint32_t, bool> AlphabetMap::insert(SymbolCode Sym) {
  uint32_t Existing = indexOf(Sym);
  if (Existing != NoIndex)
    return {Existing, false};

  auto It = std::lower_bound(Syms.begin(), Syms.end(), Sym);
  uint32_t Rank = static_cast<uint32_t>(It - Syms.begin());
  Syms.insert(It, Sym);

  // Shift the indices of every larger symbol up by one.
  if (Sym < DirectLimit) {
    if (Sym >= Direct.size())
      Direct.resize(size_t(Sym) + 1, NoIndex);
    Direct[Sym] = Rank;
  } else {
    Sparse.emplace(Sym, Rank);
  }
  for (uint32_t I = Rank + 1; I < Syms.size(); ++I) {
    SymbolCode S = Syms[I];
    if (S < DirectLimit)
      Direct[S] = I;
    else
      Sparse[S] = I;
  }
  return {Rank, true};
}

bool AlphabetMap::audit() const {
  for (size_t I = 0; I < Syms.size(); ++I) {
    if (I > 0 && Syms[I - 1] >= Syms[I])
      return false; // Not strictly ascending.
    if (indexOf(Syms[I]) != I)
      return false; // Lookup tables disagree with the symbol list.
  }
  // No stale entries: every direct/sparse slot must point back into Syms.
  size_t Live = 0;
  for (SymbolCode S = 0; S < Direct.size(); ++S)
    if (Direct[S] != NoIndex) {
      if (Direct[S] >= Syms.size() || Syms[Direct[S]] != S)
        return false;
      ++Live;
    }
  for (const auto &[S, Idx] : Sparse) {
    if (Idx >= Syms.size() || Syms[Idx] != S)
      return false;
    ++Live;
  }
  return Live == Syms.size();
}

//===----------------------------------------------------------------------===//
// Nfa
//===----------------------------------------------------------------------===//

StateId Nfa::addState(bool IsAccepting) {
  Edges.emplace_back();
  Eps.emplace_back();
  Accepting.push_back(IsAccepting);
  return static_cast<StateId>(Edges.size() - 1);
}

void Nfa::setAccepting(StateId S, bool IsAccepting) {
  assert(S < Accepting.size() && "state out of range");
  Accepting[S] = IsAccepting;
}

void Nfa::addEdge(StateId S, SymbolCode Sym, StateId T) {
  assert(S < Edges.size() && T < Edges.size() && "state out of range");
  Edges[S].push_back({Sym, T});
  auto It = std::lower_bound(Alpha.begin(), Alpha.end(), Sym);
  if (It == Alpha.end() || *It != Sym)
    Alpha.insert(It, Sym);
}

void Nfa::addEpsilon(StateId S, StateId T) {
  assert(S < Eps.size() && T < Eps.size() && "state out of range");
  Eps[S].push_back(T);
}

std::vector<StateId> Nfa::epsilonClosure(std::vector<StateId> States) const {
  std::vector<bool> Seen(Edges.size(), false);
  std::vector<StateId> Work = States;
  for (StateId S : States)
    Seen[S] = true;
  while (!Work.empty()) {
    StateId S = Work.back();
    Work.pop_back();
    for (StateId T : Eps[S]) {
      if (Seen[T])
        continue;
      Seen[T] = true;
      States.push_back(T);
      Work.push_back(T);
    }
  }
  std::sort(States.begin(), States.end());
  States.erase(std::unique(States.begin(), States.end()), States.end());
  return States;
}

bool Nfa::audit() const {
  size_t N = Edges.size();
  if (Eps.size() != N || Accepting.size() != N)
    return false;
  if (N > 0 && Start >= N)
    return false;
  for (size_t I = 1; I < Alpha.size(); ++I)
    if (Alpha[I - 1] >= Alpha[I])
      return false;
  std::vector<bool> SymbolUsed(Alpha.size(), false);
  for (size_t S = 0; S < N; ++S) {
    for (const NfaEdge &E : Edges[S]) {
      if (E.Target >= N)
        return false;
      auto It = std::lower_bound(Alpha.begin(), Alpha.end(), E.Symbol);
      if (It == Alpha.end() || *It != E.Symbol)
        return false; // Edge symbol missing from the cached alphabet.
      SymbolUsed[It - Alpha.begin()] = true;
    }
    for (StateId T : Eps[S])
      if (T >= N)
        return false;
  }
  // The cached alphabet must not claim symbols no edge carries.
  return std::all_of(SymbolUsed.begin(), SymbolUsed.end(),
                     [](bool Used) { return Used; });
}

bool Nfa::accepts(const std::vector<SymbolCode> &Word) const {
  std::vector<StateId> Current = epsilonClosure({Start});
  for (SymbolCode Sym : Word) {
    std::vector<StateId> Next;
    for (StateId S : Current)
      for (const NfaEdge &E : Edges[S])
        if (E.Symbol == Sym)
          Next.push_back(E.Target);
    Current = epsilonClosure(std::move(Next));
    if (Current.empty())
      return false;
  }
  for (StateId S : Current)
    if (Accepting[S])
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Dfa
//===----------------------------------------------------------------------===//

StateId Dfa::addState(bool IsAccepting) {
  AcceptingStates.push_back(IsAccepting);
  Table.resize(Table.size() + Width, NoState);
  return static_cast<StateId>(AcceptingStates.size() - 1);
}

void Dfa::setAccepting(StateId S, bool IsAccepting) {
  assert(S < AcceptingStates.size() && "state out of range");
  AcceptingStates[S] = IsAccepting;
}

void Dfa::relayout(size_t NewSyms, uint32_t InsertedAt) {
  size_t N = numStates();
  if (NewSyms <= Width) {
    // Capacity suffices: shift each row's columns at/after the insertion
    // rank right by one (the freed cell becomes the new symbol's column).
    if (InsertedAt + 1 < NewSyms)
      for (size_t S = 0; S < N; ++S) {
        StateId *Row = Table.data() + S * Width;
        std::move_backward(Row + InsertedAt, Row + (NewSyms - 1),
                           Row + NewSyms);
      }
    for (size_t S = 0; S < N; ++S)
      Table[S * Width + InsertedAt] = NoState;
    return;
  }

  // Grow geometrically so appending symbols is amortized O(states).
  size_t NewWidth = std::max<size_t>(NewSyms, std::max<size_t>(4, Width * 2));
  std::vector<StateId> NewTable(N * NewWidth, NoState);
  for (size_t S = 0; S < N; ++S) {
    const StateId *Src = Table.data() + S * Width;
    StateId *Dst = NewTable.data() + S * NewWidth;
    for (size_t I = 0; I < InsertedAt; ++I)
      Dst[I] = Src[I];
    for (size_t I = InsertedAt; I + 1 < NewSyms; ++I)
      Dst[I + 1] = Src[I];
  }
  Table = std::move(NewTable);
  Width = NewWidth;
}

void Dfa::setEdge(StateId S, SymbolCode Sym, StateId T) {
  assert(S < numStates() && T < numStates() && "state out of range");
  auto [Idx, Inserted] = Alpha.insert(Sym);
  if (Inserted)
    relayout(Alpha.size(), Idx);
  // Last write wins on a duplicate (state, symbol) pair.
  Table[size_t(S) * Width + Idx] = T;
}

void Dfa::reserveAlphabet(const std::vector<SymbolCode> &Syms) {
  for (SymbolCode Sym : Syms) {
    auto [Idx, Inserted] = Alpha.insert(Sym);
    if (Inserted)
      relayout(Alpha.size(), Idx);
  }
}

bool Dfa::audit() const {
  if (!Alpha.audit())
    return false;
  size_t N = numStates();
  size_t NumSyms = Alpha.size();
  if (Width < NumSyms || Table.size() != N * Width)
    return false;
  if (N > 0 && Start >= N)
    return false;
  for (size_t S = 0; S < N; ++S) {
    const StateId *Row = Table.data() + S * Width;
    for (size_t I = 0; I < NumSyms; ++I)
      if (Row[I] != NoState && Row[I] >= N)
        return false;
    // Padding columns beyond the alphabet must stay empty; relayout and
    // addState rely on it when a new symbol slots in without a regrow.
    for (size_t I = NumSyms; I < Width; ++I)
      if (Row[I] != NoState)
        return false;
  }
  return true;
}

StateId Dfa::run(const std::vector<SymbolCode> &Word) const {
  StateId S = Start;
  for (SymbolCode Sym : Word) {
    S = step(S, Sym);
    if (S == NoState)
      return NoState;
  }
  return S;
}

bool Dfa::accepts(const std::vector<SymbolCode> &Word) const {
  StateId S = run(Word);
  return S != NoState && AcceptingStates[S];
}

namespace sus {
namespace automata {

bool operator==(const Dfa &A, const Dfa &B) {
  if (A.numStates() != B.numStates() || A.start() != B.start() ||
      A.alphabet() != B.alphabet())
    return false;
  size_t N = A.numStates();
  size_t NumSyms = A.numSymbols();
  for (StateId S = 0; S < N; ++S) {
    if (A.isAccepting(S) != B.isAccepting(S))
      return false;
    for (uint32_t Idx = 0; Idx < NumSyms; ++Idx)
      if (A.stepIndex(S, Idx) != B.stepIndex(S, Idx))
        return false;
  }
  return true;
}

} // namespace automata
} // namespace sus
