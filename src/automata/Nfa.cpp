//===- automata/Nfa.cpp - Nondeterministic finite automata ---------------===//

#include "automata/Nfa.h"

#include <algorithm>
#include <cassert>

using namespace sus;
using namespace sus::automata;

StateId Nfa::addState(bool IsAccepting) {
  Edges.emplace_back();
  Eps.emplace_back();
  Accepting.push_back(IsAccepting);
  return static_cast<StateId>(Edges.size() - 1);
}

void Nfa::setAccepting(StateId S, bool IsAccepting) {
  assert(S < Accepting.size() && "state out of range");
  Accepting[S] = IsAccepting;
}

void Nfa::addEdge(StateId S, SymbolCode Sym, StateId T) {
  assert(S < Edges.size() && T < Edges.size() && "state out of range");
  Edges[S].push_back({Sym, T});
}

void Nfa::addEpsilon(StateId S, StateId T) {
  assert(S < Eps.size() && T < Eps.size() && "state out of range");
  Eps[S].push_back(T);
}

std::set<SymbolCode> Nfa::alphabet() const {
  std::set<SymbolCode> Result;
  for (const auto &Out : Edges)
    for (const NfaEdge &E : Out)
      Result.insert(E.Symbol);
  return Result;
}

std::vector<StateId> Nfa::epsilonClosure(std::vector<StateId> States) const {
  std::vector<bool> Seen(Edges.size(), false);
  std::vector<StateId> Work = States;
  for (StateId S : States)
    Seen[S] = true;
  while (!Work.empty()) {
    StateId S = Work.back();
    Work.pop_back();
    for (StateId T : Eps[S]) {
      if (Seen[T])
        continue;
      Seen[T] = true;
      States.push_back(T);
      Work.push_back(T);
    }
  }
  std::sort(States.begin(), States.end());
  States.erase(std::unique(States.begin(), States.end()), States.end());
  return States;
}

bool Nfa::accepts(const std::vector<SymbolCode> &Word) const {
  std::vector<StateId> Current = epsilonClosure({Start});
  for (SymbolCode Sym : Word) {
    std::vector<StateId> Next;
    for (StateId S : Current)
      for (const NfaEdge &E : Edges[S])
        if (E.Symbol == Sym)
          Next.push_back(E.Target);
    Current = epsilonClosure(std::move(Next));
    if (Current.empty())
      return false;
  }
  for (StateId S : Current)
    if (Accepting[S])
      return true;
  return false;
}

StateId Dfa::addState(bool IsAccepting) {
  Trans.emplace_back();
  AcceptingStates.push_back(IsAccepting);
  return static_cast<StateId>(Trans.size() - 1);
}

void Dfa::setAccepting(StateId S, bool IsAccepting) {
  assert(S < AcceptingStates.size() && "state out of range");
  AcceptingStates[S] = IsAccepting;
}

void Dfa::setEdge(StateId S, SymbolCode Sym, StateId T) {
  assert(S < Trans.size() && T < Trans.size() && "state out of range");
  auto &Out = Trans[S];
  auto It = std::lower_bound(
      Out.begin(), Out.end(), Sym,
      [](const NfaEdge &E, SymbolCode C) { return E.Symbol < C; });
  if (It != Out.end() && It->Symbol == Sym) {
    It->Target = T;
    return;
  }
  Out.insert(It, {Sym, T});
}

StateId Dfa::step(StateId S, SymbolCode Sym) const {
  assert(S < Trans.size() && "state out of range");
  const auto &Out = Trans[S];
  auto It = std::lower_bound(
      Out.begin(), Out.end(), Sym,
      [](const NfaEdge &E, SymbolCode C) { return E.Symbol < C; });
  if (It == Out.end() || It->Symbol != Sym)
    return NoState;
  return It->Target;
}

StateId Dfa::run(const std::vector<SymbolCode> &Word) const {
  StateId S = Start;
  for (SymbolCode Sym : Word) {
    S = step(S, Sym);
    if (S == NoState)
      return NoState;
  }
  return S;
}

bool Dfa::accepts(const std::vector<SymbolCode> &Word) const {
  StateId S = run(Word);
  return S != NoState && AcceptingStates[S];
}

std::vector<NfaEdge> Dfa::edges(StateId S) const {
  assert(S < Trans.size() && "state out of range");
  return Trans[S];
}

std::set<SymbolCode> Dfa::alphabet() const {
  std::set<SymbolCode> Result;
  for (const auto &Out : Trans)
    for (const NfaEdge &E : Out)
      Result.insert(E.Symbol);
  return Result;
}
