//===- automata/Nfa.h - Nondeterministic finite automata --------*- C++ -*-===//
///
/// \file
/// A generic NFA over a 32-bit symbol alphabet, with epsilon moves. Symbols
/// are opaque codes; callers (policies, compliance products, the BPA
/// rendering) map their labels onto them. This substrate backs the
/// model-checking machinery of §3.1 and §4 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_AUTOMATA_NFA_H
#define SUS_AUTOMATA_NFA_H

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

namespace sus {
namespace automata {

/// Index of a state inside an Nfa or Dfa.
using StateId = uint32_t;

/// Alphabet symbol code.
using SymbolCode = uint32_t;

/// One labelled transition.
struct NfaEdge {
  SymbolCode Symbol;
  StateId Target;
};

/// Nondeterministic finite automaton with a single start state and a set of
/// accepting states. Epsilon transitions are kept separately.
class Nfa {
public:
  /// Creates a fresh state; returns its id.
  StateId addState(bool Accepting = false);

  /// Marks or unmarks \p S as accepting.
  void setAccepting(StateId S, bool Accepting = true);

  /// Sets the unique start state.
  void setStart(StateId S) { Start = S; }

  /// Adds a transition S --Sym--> T.
  void addEdge(StateId S, SymbolCode Sym, StateId T);

  /// Adds an epsilon transition S --ε--> T.
  void addEpsilon(StateId S, StateId T);

  StateId start() const { return Start; }
  size_t numStates() const { return Edges.size(); }
  bool isAccepting(StateId S) const { return Accepting[S]; }
  const std::vector<NfaEdge> &edges(StateId S) const { return Edges[S]; }
  const std::vector<StateId> &epsilons(StateId S) const { return Eps[S]; }

  /// The set of symbols that appear on any edge (the effective alphabet).
  std::set<SymbolCode> alphabet() const;

  /// Returns true if the automaton accepts \p Word.
  bool accepts(const std::vector<SymbolCode> &Word) const;

  /// Epsilon closure of a state set (in-place canonical sorted form).
  std::vector<StateId> epsilonClosure(std::vector<StateId> States) const;

private:
  std::vector<std::vector<NfaEdge>> Edges;
  std::vector<std::vector<StateId>> Eps;
  std::vector<bool> Accepting;
  StateId Start = 0;
};

/// Deterministic finite automaton. Transitions are total only if the
/// builder completed them; `step` returns `NoState` on a missing edge.
class Dfa {
public:
  /// Sentinel for "no transition".
  static constexpr StateId NoState = ~0u;

  StateId addState(bool IsAccepting = false);
  void setAccepting(StateId S, bool IsAccepting = true);
  void setStart(StateId S) { Start = S; }
  void setEdge(StateId S, SymbolCode Sym, StateId T);

  StateId start() const { return Start; }
  size_t numStates() const { return AcceptingStates.size(); }
  bool isAccepting(StateId S) const { return AcceptingStates[S]; }

  /// Follows one transition; NoState when undefined.
  StateId step(StateId S, SymbolCode Sym) const;

  /// Runs the whole word from the start state; NoState if it falls off.
  StateId run(const std::vector<SymbolCode> &Word) const;

  /// Returns true if the automaton accepts \p Word (missing edge rejects).
  bool accepts(const std::vector<SymbolCode> &Word) const;

  /// All (symbol, target) pairs out of \p S, sorted by symbol.
  std::vector<NfaEdge> edges(StateId S) const;

  /// The set of symbols that appear on any edge.
  std::set<SymbolCode> alphabet() const;

private:
  // Per-state sorted (symbol -> target) vectors.
  std::vector<std::vector<NfaEdge>> Trans;
  std::vector<bool> AcceptingStates;
  StateId Start = 0;
};

} // namespace automata
} // namespace sus

#endif // SUS_AUTOMATA_NFA_H
