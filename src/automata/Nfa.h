//===- automata/Nfa.h - Nondeterministic finite automata --------*- C++ -*-===//
///
/// \file
/// A generic NFA over a 32-bit symbol alphabet, with epsilon moves, and a
/// cache-friendly DFA. Symbols are opaque codes; callers (policies,
/// compliance products, the BPA rendering) map their labels onto them. This
/// substrate backs the model-checking machinery of §3.1 and §4 of the paper.
///
/// Representation notes (the perf-critical parts):
///  - Every automaton maintains its *effective alphabet* (the sorted set of
///    symbols appearing on any edge) eagerly, updated on edge insertion, so
///    `alphabet()` is a free const-ref instead of a full edge scan.
///  - `Dfa` maps sparse symbol codes through a dense `AlphabetMap`
///    (SymbolCode → compact index) and stores transitions in one flat
///    row-major table (`numStates × numSymbols`), so `step` is two array
///    loads and `stepIndex` — the kernel hot path, taking a pre-translated
///    symbol index — is a single branch-free load.
///  - `Dfa::edges(S)` is a zero-copy view over the state's table row,
///    iterating present transitions in ascending symbol order.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_AUTOMATA_NFA_H
#define SUS_AUTOMATA_NFA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sus {
namespace automata {

/// Index of a state inside an Nfa or Dfa.
using StateId = uint32_t;

/// Alphabet symbol code.
using SymbolCode = uint32_t;

/// One labelled transition.
struct NfaEdge {
  SymbolCode Symbol;
  StateId Target;
};

/// Dense alphabet mapping: a bijection between the sparse 32-bit symbol
/// codes in use and the compact indices 0..size()-1, in ascending symbol
/// order (so index order == symbol order). Small codes — the common case
/// throughout this codebase, where label tables hand out 0,1,2,… — resolve
/// through a direct-mapped array; large codes fall back to a hash map.
class AlphabetMap {
public:
  /// Sentinel for "symbol not in the alphabet".
  static constexpr uint32_t NoIndex = ~0u;

  /// Compact index of \p Sym, or NoIndex if absent. O(1).
  uint32_t indexOf(SymbolCode Sym) const {
    if (Sym < Direct.size())
      return Direct[Sym];
    if (Sparse.empty())
      return NoIndex;
    auto It = Sparse.find(Sym);
    return It == Sparse.end() ? NoIndex : It->second;
  }

  /// Interns \p Sym; returns (index, inserted). A newly inserted symbol
  /// gets its rank in the sorted symbol list, shifting the indices of all
  /// larger symbols up by one (the owner must re-layout accordingly).
  std::pair<uint32_t, bool> insert(SymbolCode Sym);

  size_t size() const { return Syms.size(); }

  /// Inverse mapping: the symbol at compact index \p Idx.
  SymbolCode symbol(uint32_t Idx) const {
    assert(Idx < Syms.size() && "index out of range");
    return Syms[Idx];
  }

  /// All symbols, ascending.
  const std::vector<SymbolCode> &symbols() const { return Syms; }

  /// Structural self-check: Syms sorted and duplicate-free, and the
  /// direct/sparse lookup tables an exact inverse of it. Returns true
  /// when sound. See SUS_AUDIT below.
  bool audit() const;

private:
  /// Largest code kept in the direct-mapped table; beyond this, codes go
  /// to the Sparse fallback so a stray huge code cannot blow up memory.
  static constexpr SymbolCode DirectLimit = 1u << 16;

  std::vector<SymbolCode> Syms;  ///< Sorted ascending; index == rank.
  std::vector<uint32_t> Direct;  ///< code → index (NoIndex = absent).
  std::unordered_map<SymbolCode, uint32_t> Sparse; ///< codes ≥ DirectLimit.
};

/// Nondeterministic finite automaton with a single start state and a set of
/// accepting states. Epsilon transitions are kept separately.
class Nfa {
public:
  /// Creates a fresh state; returns its id.
  StateId addState(bool Accepting = false);

  /// Marks or unmarks \p S as accepting.
  void setAccepting(StateId S, bool Accepting = true);

  /// Sets the unique start state.
  void setStart(StateId S) { Start = S; }

  /// Adds a transition S --Sym--> T.
  void addEdge(StateId S, SymbolCode Sym, StateId T);

  /// Adds an epsilon transition S --ε--> T.
  void addEpsilon(StateId S, StateId T);

  StateId start() const { return Start; }
  size_t numStates() const { return Edges.size(); }
  bool isAccepting(StateId S) const { return Accepting[S]; }
  const std::vector<NfaEdge> &edges(StateId S) const { return Edges[S]; }
  const std::vector<StateId> &epsilons(StateId S) const { return Eps[S]; }

  /// The sorted set of symbols that appear on any edge (the effective
  /// alphabet). Maintained eagerly on edge insertion; this is a free
  /// accessor, never a scan.
  const std::vector<SymbolCode> &alphabet() const { return Alpha; }

  /// Returns true if the automaton accepts \p Word.
  bool accepts(const std::vector<SymbolCode> &Word) const;

  /// Epsilon closure of a state set (in-place canonical sorted form).
  std::vector<StateId> epsilonClosure(std::vector<StateId> States) const;

  /// Structural self-check: parallel per-state vectors in sync, start and
  /// every edge/epsilon target in range, and the cached effective
  /// alphabet exactly the set of symbols on edges. Returns true when
  /// sound. See SUS_AUDIT below.
  bool audit() const;

private:
  std::vector<std::vector<NfaEdge>> Edges;
  std::vector<std::vector<StateId>> Eps;
  std::vector<bool> Accepting;
  std::vector<SymbolCode> Alpha; ///< Sorted effective alphabet.
  StateId Start = 0;
};

/// Deterministic finite automaton over a dense-mapped alphabet, transitions
/// in one flat row-major table. Transitions are total only if the builder
/// completed them; `step` returns `NoState` on a missing edge.
class Dfa {
public:
  /// Sentinel for "no transition".
  static constexpr StateId NoState = ~0u;

  StateId addState(bool IsAccepting = false);
  void setAccepting(StateId S, bool IsAccepting = true);
  void setStart(StateId S) { Start = S; }

  /// Sets the transition S --Sym--> T. Duplicate (state, symbol) pairs
  /// overwrite: the last write wins, and the state keeps exactly one edge
  /// on Sym (tested in AutomataTest.SetEdgeOverwritesDuplicate).
  void setEdge(StateId S, SymbolCode Sym, StateId T);

  /// Pre-interns \p Syms (any order) into the alphabet. Builders that know
  /// their alphabet up front call this once so no later setEdge ever has
  /// to re-layout the transition table.
  void reserveAlphabet(const std::vector<SymbolCode> &Syms);

  StateId start() const { return Start; }
  size_t numStates() const { return AcceptingStates.size(); }
  bool isAccepting(StateId S) const { return AcceptingStates[S]; }

  /// Follows one transition; NoState when undefined. Two array loads.
  StateId step(StateId S, SymbolCode Sym) const {
    assert(S < numStates() && "state out of range");
    uint32_t Idx = Alpha.indexOf(Sym);
    if (Idx == AlphabetMap::NoIndex)
      return NoState;
    return Table[size_t(S) * Width + Idx];
  }

  /// The kernel hot path: follows the transition on a pre-translated
  /// compact symbol index (see alphabetMap()). One branch-free load;
  /// returns NoState when undefined.
  StateId stepIndex(StateId S, uint32_t SymIdx) const {
    assert(S < numStates() && SymIdx < Alpha.size() && "out of range");
    return Table[size_t(S) * Width + SymIdx];
  }

  /// Runs the whole word from the start state; NoState if it falls off.
  StateId run(const std::vector<SymbolCode> &Word) const;

  /// Returns true if the automaton accepts \p Word (missing edge rejects).
  bool accepts(const std::vector<SymbolCode> &Word) const;

  /// Zero-copy view over the transitions out of one state, in ascending
  /// symbol order. Iterators yield NfaEdge values materialized from the
  /// table row; no allocation, no copying of edge vectors.
  class EdgeRange {
  public:
    class iterator {
    public:
      iterator(const StateId *Row, const SymbolCode *Syms, uint32_t Idx,
               uint32_t End)
          : Row(Row), Syms(Syms), Idx(Idx), End(End) {
        skipAbsent();
      }
      NfaEdge operator*() const { return {Syms[Idx], Row[Idx]}; }
      iterator &operator++() {
        ++Idx;
        skipAbsent();
        return *this;
      }
      bool operator!=(const iterator &O) const { return Idx != O.Idx; }
      bool operator==(const iterator &O) const { return Idx == O.Idx; }

    private:
      void skipAbsent() {
        while (Idx != End && Row[Idx] == NoState)
          ++Idx;
      }
      const StateId *Row;
      const SymbolCode *Syms;
      uint32_t Idx, End;
    };

    EdgeRange(const StateId *Row, const SymbolCode *Syms, uint32_t End)
        : Row(Row), Syms(Syms), End(End) {}
    iterator begin() const { return iterator(Row, Syms, 0, End); }
    iterator end() const { return iterator(Row, Syms, End, End); }
    bool empty() const { return !(begin() != this->end()); }

  private:
    const StateId *Row;
    const SymbolCode *Syms;
    uint32_t End;
  };

  /// All (symbol, target) pairs out of \p S, ascending by symbol, as a
  /// zero-copy view over the state's table row.
  EdgeRange edges(StateId S) const {
    assert(S < numStates() && "state out of range");
    return EdgeRange(Table.data() + size_t(S) * Width,
                     Alpha.symbols().data(),
                     static_cast<uint32_t>(Alpha.size()));
  }

  /// The sorted set of symbols that appear in the alphabet (effective
  /// alphabet plus anything pre-reserved). Free accessor.
  const std::vector<SymbolCode> &alphabet() const { return Alpha.symbols(); }

  /// The dense symbol mapping, for kernels that pre-translate symbols once
  /// and then run on compact indices via stepIndex().
  const AlphabetMap &alphabetMap() const { return Alpha; }
  size_t numSymbols() const { return Alpha.size(); }

  /// Structural self-check: the flat table sized numStates × Width with
  /// Width ≥ |Σ|, every defined transition in range, padding columns
  /// empty, and the alphabet map internally consistent. Returns true
  /// when sound. See SUS_AUDIT below.
  bool audit() const;

  /// Observable structural equality: same states, start, acceptance,
  /// alphabet and transition function (padding width is ignored — it is
  /// a layout artifact). The serialization round-trip tests rely on this.
  friend bool operator==(const Dfa &A, const Dfa &B);
  friend bool operator!=(const Dfa &A, const Dfa &B) { return !(A == B); }

private:
  /// Grows the table to cover \p NewSyms columns; \p InsertedAt is the
  /// rank the newest symbol received (columns at/after it shift right).
  void relayout(size_t NewSyms, uint32_t InsertedAt);

  AlphabetMap Alpha;
  size_t Width = 0;               ///< Allocated columns per row (≥ |Σ|).
  std::vector<StateId> Table;     ///< numStates × Width, NoState = absent.
  std::vector<bool> AcceptingStates;
  StateId Start = 0;
};

} // namespace automata
} // namespace sus

/// SUS_AUDIT: when the build enables the SUS_AUDIT CMake option, the
/// automata kernels (automata/Ops.cpp) run the structural audit of every
/// input automaton at entry and abort on corruption. The audits are
/// O(states × symbols) scans — far too slow for release hot paths, and
/// invaluable under sanitizers, so the ASan CI job turns them on.
#ifdef SUS_AUDIT
#define SUS_AUDIT_AUTOMATON(A)                                                 \
  assert((A).audit() && "automaton structural audit failed")
#else
#define SUS_AUDIT_AUTOMATON(A) ((void)0)
#endif

#endif // SUS_AUTOMATA_NFA_H
