//===- automata/KernelStats.h - Automata kernel accounting ------*- C++ -*-===//
///
/// \file
/// Wall-clock accounting for time spent inside the automata kernels the
/// verifier bottoms out in: every entry point of automata/Ops.h plus the
/// ComplianceProduct construction (the Thm. 1 emptiness kernel).
/// bench_verifier (B7) reads it to report kernel time separately from
/// pipeline time, so kernel and pipeline speedups stay distinguishable
/// across PRs.
///
/// Since the observability PR the storage lives in the process-wide
/// metrics registry (support/Metrics.h) as the always-on time account
/// "automata.kernel_ns" — one home for wall-time accounting, and the
/// account shows up in every --metrics-out report. This header remains
/// the automata-layer facade: re-entrancy aware (nested kernel calls are
/// counted once, at the outermost scope) and thread-safe (workers
/// accumulate into one atomic). The cost is two clock reads per
/// outermost kernel call, which is noise next to any kernel's actual
/// work. When span tracing is on, each outermost kernel call additionally
/// emits an "automata"-category span named after the kernel.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_AUTOMATA_KERNELSTATS_H
#define SUS_AUTOMATA_KERNELSTATS_H

#include <cstdint>

namespace sus {
namespace automata {

/// The registry name of the kernel time account.
inline constexpr const char *KernelTimeAccountName = "automata.kernel_ns";

/// Cumulative nanoseconds spent inside automata-kernel entry points since
/// process start (or the last resetKernelNanos), summed over all threads.
uint64_t kernelNanos();

/// Resets the accumulator to zero.
void resetKernelNanos();

/// RAII guard placed at every kernel entry point. Only the outermost scope
/// on each thread accumulates (and traces), so nested kernels (e.g.
/// minimize calling complete) are not double-counted. \p Name must be a
/// string literal; it becomes the trace span name.
class KernelTimerScope {
public:
  explicit KernelTimerScope(const char *Name = "automata.kernel");
  ~KernelTimerScope();
  KernelTimerScope(const KernelTimerScope &) = delete;
  KernelTimerScope &operator=(const KernelTimerScope &) = delete;

private:
  uint64_t StartNanos; ///< Only meaningful for the outermost scope.
  const char *Name;
};

} // namespace automata
} // namespace sus

#endif // SUS_AUTOMATA_KERNELSTATS_H
