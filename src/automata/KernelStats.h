//===- automata/KernelStats.h - Automata kernel accounting ------*- C++ -*-===//
///
/// \file
/// A process-wide wall-clock accumulator for time spent inside the automata
/// kernels the verifier bottoms out in: every entry point of automata/Ops.h
/// plus the ComplianceProduct construction (the Thm. 1 emptiness kernel).
/// bench_verifier (B7) reads it to report kernel time separately from
/// pipeline time, so kernel and pipeline speedups stay distinguishable
/// across PRs.
///
/// The accounting is re-entrancy aware (nested kernel calls are counted
/// once, at the outermost scope) and thread-safe (workers accumulate into
/// one atomic); the cost is two clock reads per outermost kernel call,
/// which is noise next to any kernel's actual work.
///
//===----------------------------------------------------------------------===//

#ifndef SUS_AUTOMATA_KERNELSTATS_H
#define SUS_AUTOMATA_KERNELSTATS_H

#include <cstdint>

namespace sus {
namespace automata {

/// Cumulative nanoseconds spent inside automata-kernel entry points since
/// process start (or the last resetKernelNanos), summed over all threads.
uint64_t kernelNanos();

/// Resets the accumulator to zero.
void resetKernelNanos();

/// RAII guard placed at every kernel entry point. Only the outermost scope
/// on each thread accumulates, so nested kernels (e.g. minimize calling
/// complete) are not double-counted.
class KernelTimerScope {
public:
  KernelTimerScope();
  ~KernelTimerScope();
  KernelTimerScope(const KernelTimerScope &) = delete;
  KernelTimerScope &operator=(const KernelTimerScope &) = delete;

private:
  uint64_t StartNanos; ///< Only meaningful for the outermost scope.
};

} // namespace automata
} // namespace sus

#endif // SUS_AUTOMATA_KERNELSTATS_H
